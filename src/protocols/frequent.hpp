// Bookkeeping for the randomized protocols' received segment strings, and
// the paper's F(S, tau) operator: the set of "tau-frequent" strings — values
// reported identically by at least tau distinct peers for the same segment.
#pragma once

#include <cstddef>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/bitvec.hpp"
#include "sim/types.hpp"

namespace asyncdr::proto {

/// Per-segment multiset of received (peer, string) reports.
///
/// One vote per (peer, segment): a Byzantine peer re-sending different
/// strings for the same segment cannot stack the count — only its first
/// report is kept, mirroring the model where a peer sends one finding.
class StringBank {
 public:
  explicit StringBank(std::size_t segment_count);

  [[nodiscard]] std::size_t segment_count() const { return per_segment_.size(); }

  /// Records `from`'s report of `value` for segment `seg`. Returns true if
  /// the vote was counted (first report by this peer for this segment).
  bool record(std::size_t seg, sim::PeerId from, const BitVec& value);

  /// Number of distinct peers that reported anything for `seg` — the
  /// paper's R_i, which bounds the decision-tree cost for the segment.
  [[nodiscard]] std::size_t votes(std::size_t seg) const;

  /// Number of distinct strings reported for `seg`.
  [[nodiscard]] std::size_t distinct(std::size_t seg) const;

  /// Count of peers that reported exactly `value` for `seg`.
  [[nodiscard]] std::size_t support(std::size_t seg, const BitVec& value) const;

  /// F(S, tau): all strings reported for `seg` by >= tau distinct peers.
  /// Deterministic order (by string content) so runs are reproducible.
  [[nodiscard]] std::vector<BitVec> frequent(std::size_t seg, std::size_t tau) const;

 private:
  struct SegmentVotes {
    std::unordered_map<BitVec, std::unordered_set<sim::PeerId>, BitVecHash>
        by_string;
    std::unordered_set<sim::PeerId> voters;
  };
  std::vector<SegmentVotes> per_segment_;
};

}  // namespace asyncdr::proto
