// Theorem 3.4: deterministic asynchronous Download under Byzantine faults
// with beta < 1/2. A committee of c = 2t+1 peers is assigned to every bit in
// round-robin order; each member queries its bits and broadcasts the values;
// every peer decides bit j on the first value reported by t+1 distinct
// members of j's committee. Since a committee has at least t+1 honest
// members and at most t Byzantine ones, the t+1 threshold is reachable only
// by the true value, and is always eventually reached.
//
// Q = (number of committees per peer) = ceil(n*c/k) ~ 2*beta*n + n/k.
#pragma once

#include <cstdint>
#include <vector>

#include "common/bitvec.hpp"
#include "dr/peer.hpp"
#include "sim/message.hpp"

namespace asyncdr::proto {

/// Round-robin committee structure: committee of bit j is the c consecutive
/// peer IDs starting at (j*c) mod k.
class CommitteeAssignment {
 public:
  CommitteeAssignment(std::size_t n, std::size_t k, std::size_t t);

  [[nodiscard]] std::size_t committee_size() const { return c_; }
  [[nodiscard]] std::size_t threshold() const { return t_ + 1; }

  [[nodiscard]] bool is_member(sim::PeerId p, std::size_t bit) const;
  /// Position of p within bit's committee (0..c-1). p must be a member.
  [[nodiscard]] std::size_t position(sim::PeerId p, std::size_t bit) const;
  /// Bits whose committee contains p, in increasing order.
  [[nodiscard]] std::vector<std::size_t> bits_of(sim::PeerId p) const;
  /// The committee of a bit, in position order.
  [[nodiscard]] std::vector<sim::PeerId> members_of(std::size_t bit) const;

 private:
  std::size_t n_, k_, t_, c_;
};

namespace committee {

/// One batched broadcast per peer: the values of every bit the sender's
/// committees cover, in increasing bit order. Receivers recompute the bit
/// list from the sender ID (the assignment is deterministic), so only the
/// values are charged.
struct Votes final : sim::Payload {
  BitVec values;

  explicit Votes(BitVec v) : values(std::move(v)) {}
  [[nodiscard]] std::size_t size_bits() const override { return values.size() + 64; }
  [[nodiscard]] std::string type_name() const override { return "committee::Votes"; }
};

}  // namespace committee

/// An honest peer of the committee protocol. Requires beta < 1/2.
class CommitteePeer final : public dr::Peer {
 public:
  struct Options {
    /// FAULT INJECTION, never set outside tests/chaos sweeps: accept a bit
    /// on t matching votes instead of t+1. The off-by-one lets a full
    /// Byzantine coalition inside one committee outvote the honest members
    /// — exactly the class of bug the chaos sweep must catch and shrink.
    bool buggy_vote_threshold = false;
  };

  CommitteePeer() = default;
  explicit CommitteePeer(Options opts) : opts_(opts) {}

  void on_start() override;
  [[nodiscard]] std::string status() const override;

 protected:
  void on_message(sim::PeerId from, const sim::Payload& payload) override;

 private:
  void init();
  void process_votes(sim::PeerId from, const committee::Votes& votes);
  void decide(std::size_t bit, bool value);
  void maybe_finish();
  [[nodiscard]] std::size_t accept_threshold() const;

  Options opts_;
  std::unique_ptr<CommitteeAssignment> assignment_;
  BitVec out_;
  std::vector<bool> decided_;
  std::size_t decided_count_ = 0;
  // Per bit: votes received for value 0 / value 1 from distinct members.
  std::vector<std::uint32_t> votes0_, votes1_;
  // Per bit: which committee positions have voted (dedup).
  std::vector<std::vector<bool>> voted_;
  bool started_ = false;
  // Termination is gated on having broadcast my own votes: an honest member
  // that finished early but silently would strand other peers below the
  // t+1 threshold.
  bool votes_sent_ = false;
};

}  // namespace asyncdr::proto
