// A BitChunk is a self-describing set of (index, value) pairs — the unit of
// bit-value transfer in every Download protocol here. Indices travel as
// interval sets, so contiguous assignments stay compact.
#pragma once

#include "common/bitvec.hpp"
#include "common/interval_set.hpp"

namespace asyncdr::proto {

/// Bit values for an explicit index set. values.get(j) is the value of the
/// j-th smallest index in `indices`.
struct BitChunk {
  IntervalSet indices;
  BitVec values;

  BitChunk() = default;
  BitChunk(IntervalSet idx, BitVec vals);

  [[nodiscard]] std::size_t count() const { return indices.count(); }
  [[nodiscard]] bool empty() const { return indices.empty(); }

  /// Wire size: one bit per value plus two 64-bit bounds per interval.
  [[nodiscard]] std::size_t size_bits() const;

  /// True if this chunk provides a value for every index in `wanted`.
  [[nodiscard]] bool covers(const IntervalSet& wanted) const;

  /// Writes the chunk's values into `out` and adds the indices to `known`.
  void apply_to(BitVec& out, IntervalSet& known) const;

  /// Builds the chunk carrying src's values at `idx`.
  static BitChunk extract(const BitVec& src, const IntervalSet& idx);
};

/// Bit values for a mask-described index set, used by the multi-crash
/// protocol, whose index sets are residue classes and fragment too much for
/// intervals. The mask is never charged on the wire: in Algorithm 2 every
/// index set is deducible from the protocol's shared rules plus the short
/// unheard-peer history the requests already carry, so only the data bits
/// (plus a small header) count — exactly the paper's accounting.
struct MaskChunk {
  BitVec mask;    ///< length-n mask: 1 = value present
  BitVec values;  ///< mask.popcount() values, in increasing index order

  MaskChunk() = default;
  MaskChunk(BitVec m, BitVec vals);

  [[nodiscard]] std::size_t count() const { return values.size(); }
  [[nodiscard]] bool empty() const { return values.empty(); }

  /// Wire size: data bits + constant header (see struct comment).
  [[nodiscard]] std::size_t size_bits() const { return values.size() + 64; }

  /// Writes values into `out`, sets the corresponding bits of `known_mask`.
  void apply_to(BitVec& out, BitVec& known_mask) const;

  /// Builds the chunk of src's values at the mask's set positions.
  static MaskChunk extract(const BitVec& src, const BitVec& mask);
};

}  // namespace asyncdr::proto
