#include "protocols/frequent.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace asyncdr::proto {

StringBank::StringBank(std::size_t segment_count)
    : per_segment_(segment_count) {
  ASYNCDR_EXPECTS(segment_count >= 1);
}

bool StringBank::record(std::size_t seg, sim::PeerId from,
                        const BitVec& value) {
  ASYNCDR_EXPECTS(seg < per_segment_.size());
  SegmentVotes& sv = per_segment_[seg];
  if (!sv.voters.insert(from).second) return false;
  sv.by_string[value].insert(from);
  return true;
}

std::size_t StringBank::votes(std::size_t seg) const {
  ASYNCDR_EXPECTS(seg < per_segment_.size());
  return per_segment_[seg].voters.size();
}

std::size_t StringBank::distinct(std::size_t seg) const {
  ASYNCDR_EXPECTS(seg < per_segment_.size());
  return per_segment_[seg].by_string.size();
}

std::size_t StringBank::support(std::size_t seg, const BitVec& value) const {
  ASYNCDR_EXPECTS(seg < per_segment_.size());
  const auto& by_string = per_segment_[seg].by_string;
  const auto it = by_string.find(value);
  return it == by_string.end() ? 0 : it->second.size();
}

std::vector<BitVec> StringBank::frequent(std::size_t seg,
                                         std::size_t tau) const {
  ASYNCDR_EXPECTS(seg < per_segment_.size());
  ASYNCDR_EXPECTS(tau >= 1);
  std::vector<BitVec> out;
  for (const auto& [value, supporters] : per_segment_[seg].by_string) {
    if (supporters.size() >= tau) out.push_back(value);
  }
  std::sort(out.begin(), out.end(), [](const BitVec& a, const BitVec& b) {
    return a.to_string() < b.to_string();
  });
  return out;
}

}  // namespace asyncdr::proto
