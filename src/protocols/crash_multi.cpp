#include "protocols/crash_multi.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <mutex>
#include <sstream>
#include <tuple>

#include "common/check.hpp"
#include "dr/world.hpp"
#include "protocols/segments.hpp"

namespace asyncdr::proto {

using crashm::Full;
using crashm::Req1;
using crashm::Req2;
using crashm::Resp1;
using crashm::Resp2;

namespace crashm {

sim::PeerId hashed_owner(std::size_t b, std::size_t r, std::size_t k) {
  // SplitMix64-style finalizer over (b, r); any fixed high-quality mix
  // works — it only has to be the SAME function at every peer and
  // decorrelated across phases.
  std::uint64_t z = (static_cast<std::uint64_t>(b) + 0x9e3779b97f4a7c15ull *
                                                         static_cast<std::uint64_t>(r));
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  z ^= z >> 31;
  return static_cast<sim::PeerId>(z % k);
}

const std::vector<BitVec>& owner_masks(std::size_t n, std::size_t k,
                                       std::size_t r) {
  // One world is single-threaded, but chaos sweeps fan independent worlds
  // across a thread pool, so the shared cache takes a lock. Returned
  // references stay valid under later insertions (node-based map) and the
  // cached vectors are never mutated after construction.
  // asyncdr-lint: allow(DR010) shared read-only mask cache across worlds;
  // lock protects construction only, never schedule-dependent state.
  static std::mutex cache_mutex;
  static std::map<std::tuple<std::size_t, std::size_t, std::size_t>,
                  std::vector<BitVec>>
      cache;
  // asyncdr-lint: allow(DR010) see cache_mutex rationale above.
  std::scoped_lock lock(cache_mutex);
  auto [it, inserted] = cache.try_emplace(std::tuple{n, k, r});
  if (inserted) {
    std::vector<BitVec> masks(k, BitVec(n));
    if (r == 1) {
      const SegmentLayout blocks(n, k);
      for (sim::PeerId q = 0; q < k; ++q) {
        const Interval b = blocks.bounds(q);
        if (b.length() > 0) {
          for (std::size_t i = b.lo; i < b.hi; ++i) masks[q].set(i, true);
        }
      }
    } else {
      for (std::size_t b = 0; b < n; ++b) {
        masks[hashed_owner(b, r, k)].set(b, true);
      }
    }
    it->second = std::move(masks);
  }
  return it->second;
}

}  // namespace crashm

CrashMultiPeer::CrashMultiPeer() : CrashMultiPeer(Options{}) {}

CrashMultiPeer::CrashMultiPeer(Options opts) : opts_(opts) {}

std::size_t CrashMultiPeer::quorum() const {
  return world().config().min_honest();
}

std::size_t CrashMultiPeer::direct_threshold() const {
  if (opts_.direct_threshold > 0) return opts_.direct_threshold;
  return std::max<std::size_t>((n() + k() - 1) / k(), 2 * k());
}

std::size_t CrashMultiPeer::max_phases() const {
  if (opts_.max_phases > 0) return opts_.max_phases;
  const std::size_t t = world().config().max_faulty();
  if (t == 0) return 1;
  // Unknown bits shrink by ~t/k per phase; log_{k/t}(n) phases reach the
  // direct-query threshold. +3 slack for rounding stalls.
  const double ratio = static_cast<double>(k()) / static_cast<double>(t);
  const double phases =
      std::log(static_cast<double>(n()) + 2.0) / std::log(std::max(ratio, 1.01));
  return std::min<std::size_t>(200, static_cast<std::size_t>(phases) + 3);
}

BitVec CrashMultiPeer::owned_share(const BitVec& base, std::size_t r,
                                   sim::PeerId who) const {
  BitVec share = crashm::owner_masks(n(), k(), r)[who];
  share.and_with(base);
  return share;
}

void CrashMultiPeer::on_start() {
  ensure_init();
  start_phase(1);
}

void CrashMultiPeer::on_restart(const dr::RecoveryState& state) {
  ensure_init();
  // Reconcile the CRC-verified journal into protocol state: every replayed
  // interval was downloaded (and persisted) by a previous incarnation.
  const dr::JournalReplay& journal = state.journal;
  for (const Interval& iv : journal.intervals.intervals()) {
    for (std::size_t b = iv.lo; b < iv.hi; ++b) {
      out_.set(b, journal.bits.get(b));
      known_.set(b, true);
    }
  }
  credit_queries_saved(known_.popcount());
  begin_phase("recovery");
  // The other peers may all have terminated while this one was down (their
  // FULL rescue was dropped at the crashed port), so recovery must not wait
  // on anyone: query exactly the bits the journal does not cover, push the
  // FULL rescue, and terminate.
  BitVec rest(n(), true);
  rest.andnot_with(known_);
  if (!query_mask(rest)) return;  // killed at a sentinel again
  progress_ = Progress::kDone;
  if (!full_sent_) {
    full_sent_ = true;
    broadcast(std::make_shared<Full>(out_));
  }
  finish(out_);
}

std::string CrashMultiPeer::status() const {
  if (terminated()) return "terminated";
  std::ostringstream os;
  os << "phase " << phase_ << ", ";
  switch (progress_) {
    case Progress::kIdle: os << "idle (not started)"; break;
    case Progress::kWait1:
      os << "stage 2: waiting for RESP1 quorum ("
         << (phase_ >= 1 && phase_ <= heard_.size() ? heard_[phase_ - 1].size()
                                                    : 0)
         << "/" << quorum() << " heard)";
      break;
    case Progress::kWait2:
      os << "stage 3: waiting for RESP2 quorum (" << resp2_count_ << "/"
         << quorum() << ", " << missing_.size() << " peers missing)";
      break;
    case Progress::kDone: os << "done stage reached"; break;
  }
  os << "; " << known_.popcount() << "/" << n() << " bits known";
  return os.str();
}

void CrashMultiPeer::ensure_init() {
  // Messages may arrive before this peer's (adversary-chosen) start time.
  if (out_.size() != n()) {
    out_ = BitVec(n());
    known_ = BitVec(n());
  }
}

void CrashMultiPeer::start_phase(std::size_t r) {
  phase_ = r;
  begin_phase("round-" + std::to_string(r));
  if (!journal_checkpoint("round", r)) return;  // killed at the sentinel
  const std::size_t unknown_count = n() - known_.popcount();
  if (unknown_count <= direct_threshold() || r > max_phases()) {
    complete_now();
    return;
  }

  // Snapshot the unknown set: the phase's assignment is defined on it.
  BitVec all_unknown(n(), true);
  all_unknown.andnot_with(known_);
  phase_unknown_ = std::move(all_unknown);

  // Stage 1: query my own share and pull everyone else's.
  if (!query_mask(owned_share(phase_unknown_, r, id()))) return;
  if (heard_.size() < r) heard_.resize(r);
  heard_[r - 1].insert(id());
  missing_.clear();
  resp2_count_ = 0;
  progress_ = Progress::kWait1;
  broadcast(std::make_shared<Req1>(r, phase_unknown_));
  process_deferred();
  try_advance();
}

bool CrashMultiPeer::query_mask(const BitVec& mask) {
  BitVec to_query = mask;
  to_query.andnot_with(known_);
  std::vector<std::size_t> idx;
  idx.reserve(to_query.popcount());
  to_query.for_each_set([&](std::size_t b) { idx.push_back(b); });
  if (idx.empty()) return true;
  const BitVec values = query_indices(idx);
  for (std::size_t j = 0; j < idx.size(); ++j) {
    out_.set(idx[j], values.get(j));
    known_.set(idx[j], true);
  }
  // Single query funnel = single journal funnel: everything this protocol
  // ever downloads is persisted here, right after it was learned.
  return journal_indices(idx, values);
}

void CrashMultiPeer::on_message(sim::PeerId from, const sim::Payload& payload) {
  ensure_init();
  if (const auto* full = sim::payload_as<Full>(payload)) {
    // Claim 2's rescue: adopt, re-push once (so peers waiting on *me* are
    // rescued too), terminate.
    if (full->all.size() != n()) return;
    out_ = full->all;
    known_ = BitVec(n(), true);
    complete_now();
    return;
  }
  if (const auto* resp1 = sim::payload_as<Resp1>(payload)) {
    if (resp1->chunk.mask.size() == n()) {
      resp1->chunk.apply_to(out_, known_);
      if (heard_.size() < resp1->phase) heard_.resize(resp1->phase);
      heard_[resp1->phase - 1].insert(from);
    }
    try_advance();
    return;
  }
  if (const auto* resp2 = sim::payload_as<Resp2>(payload)) {
    for (const auto& [peer, chunk] : resp2->answers) {
      if (chunk && chunk->mask.size() == n()) chunk->apply_to(out_, known_);
    }
    if (resp2->phase == phase_ && progress_ == Progress::kWait2) {
      ++resp2_count_;
    }
    try_advance();
    return;
  }
  if (const auto* req1 = sim::payload_as<Req1>(payload)) {
    if (req1->unknown.size() != n()) return;
    if (req1_eligible(*req1)) {
      handle_req1(from, *req1);
    } else {
      deferred_.push_back(Deferred{from, *req1, std::nullopt});
    }
    return;
  }
  if (const auto* req2 = sim::payload_as<Req2>(payload)) {
    if (req2->unknown.size() != n()) return;
    if (req2_eligible(*req2)) {
      handle_req2(from, *req2);
    } else {
      deferred_.push_back(Deferred{from, std::nullopt, *req2});
    }
    return;
  }
}

bool CrashMultiPeer::req1_eligible(const Req1& req) const {
  // Answerable once I have done my own stage-1 queries of that phase.
  return phase_ > req.phase ||
         (phase_ == req.phase && progress_ != Progress::kIdle);
}

bool CrashMultiPeer::req2_eligible(const Req2& req) const {
  // Answerable once I reached stage 3 of that phase.
  return phase_ > req.phase ||
         (phase_ == req.phase && progress_ == Progress::kWait2);
}

void CrashMultiPeer::handle_req1(sim::PeerId from, const Req1& req) {
  const BitVec wanted = owned_share(req.unknown, req.phase, id());
  // Claim 1 (structural under the canonical assignment): every bit the
  // requester assigned to me and still lacks is a bit I either knew
  // already or queried in my own stage 1 of that phase.
  ASYNCDR_INVARIANT_MSG(wanted.is_subset_of(known_),
                        "Claim 1 violated: asked for a bit I don't know");
  send(from,
       std::make_shared<Resp1>(req.phase, MaskChunk::extract(out_, wanted)));
}

void CrashMultiPeer::handle_req2(sim::PeerId from, const Req2& req) {
  const bool have_phase = heard_.size() >= req.phase;
  std::vector<std::pair<sim::PeerId, std::optional<MaskChunk>>> answers;
  answers.reserve(req.missing.size());
  for (sim::PeerId absent : req.missing) {
    if (absent >= k()) continue;
    const bool i_heard = have_phase && heard_[req.phase - 1].contains(absent);
    if (i_heard) {
      const BitVec wanted = owned_share(req.unknown, req.phase, absent);
      ASYNCDR_INVARIANT_MSG(
          wanted.is_subset_of(known_),
          "Claim 1 violated: heard the absent peer but lack its bits");
      answers.emplace_back(absent, MaskChunk::extract(out_, wanted));
    } else {
      answers.emplace_back(absent, std::nullopt);  // "me neither"
    }
  }
  send(from, std::make_shared<Resp2>(req.phase, std::move(answers)));
}

void CrashMultiPeer::try_advance() {
  if (progress_ == Progress::kWait1) {
    // Thm 2.13 refinement: stop waiting the moment late answers already
    // cover everything. The base protocol (fast_cancel off) waits strictly
    // for its quorum, as Algorithm 2 is written.
    if (opts_.fast_cancel && known_.popcount() == n()) {
      complete_now();
      return;
    }
    if (heard_[phase_ - 1].size() >= quorum()) {
      // Stage 2 -> 3: name the unheard peers.
      missing_.clear();
      for (sim::PeerId q = 0; q < k(); ++q) {
        if (!heard_[phase_ - 1].contains(q)) missing_.push_back(q);
      }
      progress_ = Progress::kWait2;
      resp2_count_ = 1;  // my own implicit all-"me neither" response
      if (!missing_.empty()) {
        broadcast(std::make_shared<Req2>(phase_, missing_, phase_unknown_));
      }
      process_deferred();
      try_advance();
    }
    return;
  }

  if (progress_ == Progress::kWait2) {
    // In stage 3 the remaining unknown bits are exactly the missing peers'
    // shares, so "every missing peer covered" coincides with full
    // knowledge — one popcount decides the Thm 2.13 release.
    if (opts_.fast_cancel && known_.popcount() == n()) {
      complete_now();
      return;
    }
    if (missing_.empty() || resp2_count_ >= quorum()) advance_phase();
    return;
  }
}

void CrashMultiPeer::advance_phase() {
  progress_ = Progress::kIdle;
  start_phase(phase_ + 1);
}

void CrashMultiPeer::complete_now() {
  if (progress_ == Progress::kDone) return;
  begin_phase("complete");
  // Query whatever is still unknown directly.
  BitVec rest(n(), true);
  rest.andnot_with(known_);
  if (!query_mask(rest)) return;  // killed at a sentinel: no rescue, no finish
  progress_ = Progress::kDone;
  if (!full_sent_) {
    full_sent_ = true;
    broadcast(std::make_shared<Full>(out_));
  }
  finish(out_);
}

void CrashMultiPeer::process_deferred() {
  std::vector<Deferred> keep;
  auto pending = std::move(deferred_);
  deferred_.clear();
  for (auto& d : pending) {
    if (d.req1) {
      if (req1_eligible(*d.req1)) {
        handle_req1(d.from, *d.req1);
      } else {
        keep.push_back(std::move(d));
      }
    } else if (d.req2) {
      if (req2_eligible(*d.req2)) {
        handle_req2(d.from, *d.req2);
      } else {
        keep.push_back(std::move(d));
      }
    }
  }
  for (auto& d : keep) deferred_.push_back(std::move(d));
}

}  // namespace asyncdr::proto
