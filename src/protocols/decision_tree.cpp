#include "protocols/decision_tree.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace asyncdr::proto {

DecisionTree::DecisionTree(std::vector<BitVec> candidates)
    : candidates_(std::move(candidates)) {
  ASYNCDR_EXPECTS_MSG(!candidates_.empty(),
                      "decision tree needs at least one candidate");
  for (std::size_t i = 1; i < candidates_.size(); ++i) {
    ASYNCDR_EXPECTS_MSG(candidates_[i].size() == candidates_[0].size(),
                        "candidates must have equal length");
  }
  std::vector<std::size_t> all(candidates_.size());
  for (std::size_t i = 0; i < all.size(); ++i) all[i] = i;
  root_ = build(std::move(all), 0);
}

std::size_t DecisionTree::build(std::vector<std::size_t> members,
                                std::size_t depth) {
  ASYNCDR_INVARIANT(!members.empty());
  depth_ = std::max(depth_, depth);
  if (members.size() == 1) {
    nodes_.push_back(Node{-1, {0, 0}, members[0]});
    return nodes_.size() - 1;
  }
  // Pick two members and their first separating index (they are distinct
  // strings, so one exists).
  const auto sep =
      candidates_[members[0]].first_difference(candidates_[members[1]]);
  ASYNCDR_INVARIANT_MSG(sep.has_value(), "candidates must be pairwise distinct");
  const std::size_t i = *sep;

  std::vector<std::size_t> zero, one;
  for (std::size_t m : members) {
    (candidates_[m].get(i) ? one : zero).push_back(m);
  }
  ASYNCDR_INVARIANT(!zero.empty() && !one.empty());

  const std::size_t zero_node = build(std::move(zero), depth + 1);
  const std::size_t one_node = build(std::move(one), depth + 1);
  Node node;
  node.sep_index = static_cast<std::ptrdiff_t>(i);
  node.child[0] = zero_node;
  node.child[1] = one_node;
  nodes_.push_back(node);
  ++internal_count_;
  return nodes_.size() - 1;
}

const BitVec& DecisionTree::determine(
    const std::function<bool(std::size_t)>& query_bit,
    std::size_t index_offset) const {
  std::size_t at = root_;
  while (nodes_[at].sep_index >= 0) {
    const auto local = static_cast<std::size_t>(nodes_[at].sep_index);
    const bool bit = query_bit(index_offset + local);
    at = nodes_[at].child[bit ? 1 : 0];
  }
  return candidates_[nodes_[at].candidate];
}

}  // namespace asyncdr::proto
