#include "protocols/runner.hpp"

#include <algorithm>
#include <unordered_set>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "obs/causal.hpp"

namespace asyncdr::proto {

BitVec random_input(std::size_t n, std::uint64_t seed) {
  Rng rng = Rng(seed).split(0xda7aull);
  return BitVec::generate(n, [&] { return rng.flip(); });
}

std::vector<sim::PeerId> pick_faulty(const dr::Config& cfg, std::size_t count,
                                     std::uint64_t salt) {
  ASYNCDR_EXPECTS(count <= cfg.max_faulty());
  Rng rng = Rng(cfg.seed).split(0xfa017ull + salt);
  return rng.sample_without_replacement(cfg.k, count);
}

dr::RunReport run_scenario(const Scenario& scenario) {
  ASYNCDR_EXPECTS_MSG(scenario.honest != nullptr,
                      "scenario needs an honest-peer factory");
  const dr::Config& cfg = scenario.cfg;
  BitVec input = scenario.input.value_or(random_input(cfg.n, cfg.seed));
  dr::World world(cfg, std::move(input));

  if (scenario.latency) {
    world.network().set_latency_policy(scenario.latency(cfg));
  } else {
    world.network().set_latency_policy(std::make_unique<adv::UniformLatency>(
        world.adversary_rng(0x1a7ull), 0.05, 1.0));
  }

  if (scenario.stressor) {
    world.network().set_delivery_stressor(scenario.stressor(cfg));
  }

  const std::unordered_set<sim::PeerId> byz(scenario.byz_ids.begin(),
                                            scenario.byz_ids.end());
  ASYNCDR_EXPECTS_MSG(byz.empty() || scenario.byzantine != nullptr,
                      "byz_ids set but no byzantine factory");
  for (sim::PeerId id = 0; id < cfg.k; ++id) {
    if (byz.contains(id)) {
      world.set_peer(id, scenario.byzantine(cfg, id));
      world.mark_faulty(id);
    } else {
      world.set_peer(id, scenario.honest(cfg, id));
    }
  }
  if (scenario.recovery.enabled()) {
    world.enable_recovery(
        [factory = scenario.recovery.factory](const dr::Config& c,
                                              sim::PeerId id) {
          return factory(c, id);
        },
        scenario.recovery.options);
    for (const RecoveryPlan::CrashPointKill& kill : scenario.recovery.kills) {
      world.mark_faulty(kill.peer);  // budget-checked up front
      world.kill_at_crash_point(kill.peer, kill.point, kill.nth);
      if (kill.restart_delay >= 0) {
        world.restart_on_crash(kill.peer, kill.restart_delay);
      }
    }
    dr::JournalStore& store = world.journal_store();
    for (const RecoveryPlan::Corruption& c : scenario.recovery.corruptions) {
      world.engine().schedule_at(c.at, [&store, c] {
        switch (c.mode) {
          case RecoveryPlan::Corruption::Mode::kTruncateTail:
            store.truncate_tail(c.peer, c.amount);
            break;
          case RecoveryPlan::Corruption::Mode::kFlipBit:
            store.flip_bit(c.peer, c.amount);
            break;
          case RecoveryPlan::Corruption::Mode::kClear:
            store.clear(c.peer);
            break;
        }
      });
    }
  } else {
    ASYNCDR_EXPECTS_MSG(!scenario.crashes.has_restarts(),
                        "restart instructions need a recovery factory");
  }
  scenario.crashes.apply(world);
  for (const auto& [id, t] : scenario.start_times) world.set_start_time(id, t);

  if (scenario.instrument) scenario.instrument(world);
  dr::RunReport report = world.run(scenario.max_events);
  // Traced runs get the causal analysis for free: the critical path lands
  // in the report (and stall diagnostics gain the critical prefix) before
  // post_run sees either.
  obs::embed_critical_path(world, report);
  if (scenario.post_run) scenario.post_run(world, report);
  return report;
}

PeerFactory make_naive() {
  return [](const dr::Config&, sim::PeerId) {
    return std::make_unique<NaivePeer>();
  };
}

PeerFactory make_crash_one() {
  return [](const dr::Config&, sim::PeerId) {
    return std::make_unique<CrashOnePeer>();
  };
}

PeerFactory make_crash_multi(CrashMultiPeer::Options opts) {
  return [opts](const dr::Config&, sim::PeerId) {
    return std::make_unique<CrashMultiPeer>(opts);
  };
}

PeerFactory make_committee(CommitteePeer::Options opts) {
  return [opts](const dr::Config&, sim::PeerId) {
    return std::make_unique<CommitteePeer>(opts);
  };
}

PeerFactory make_two_cycle(double concentration, double tau_margin) {
  return [concentration, tau_margin](const dr::Config& cfg, sim::PeerId) {
    return std::make_unique<TwoCyclePeer>(
        RandParams::derive(cfg, concentration, tau_margin));
  };
}

PeerFactory make_multi_cycle(double concentration, double tau_margin) {
  return [concentration, tau_margin](const dr::Config& cfg, sim::PeerId) {
    return std::make_unique<MultiCyclePeer>(
        RandParams::derive(cfg, concentration, tau_margin));
  };
}

PeerFactory make_two_cycle_with(RandParams params) {
  return [params](const dr::Config&, sim::PeerId) {
    return std::make_unique<TwoCyclePeer>(params);
  };
}

PeerFactory make_multi_cycle_with(RandParams params) {
  return [params](const dr::Config&, sim::PeerId) {
    return std::make_unique<MultiCyclePeer>(params);
  };
}

PeerFactory make_silent_byz() {
  return [](const dr::Config&, sim::PeerId) {
    return std::make_unique<SilentByzPeer>();
  };
}

PeerFactory make_garbage_byz() {
  return [](const dr::Config&, sim::PeerId) {
    return std::make_unique<GarbageByzPeer>();
  };
}

PeerFactory make_committee_liar(CommitteeLiarPeer::Mode mode) {
  return [mode](const dr::Config&, sim::PeerId) {
    return std::make_unique<CommitteeLiarPeer>(mode);
  };
}

PeerFactory make_vote_stuffer(double concentration,
                              std::size_t target_segment) {
  return [concentration, target_segment](const dr::Config& cfg, sim::PeerId) {
    return std::make_unique<VoteStuffPeer>(
        RandParams::derive(cfg, concentration), target_segment);
  };
}

PeerFactory make_equivocator(double concentration) {
  return [concentration](const dr::Config& cfg, sim::PeerId) {
    return std::make_unique<EquivocatorPeer>(
        RandParams::derive(cfg, concentration));
  };
}

PeerFactory make_comb_stuffer(double concentration,
                              std::size_t target_segment) {
  return [concentration, target_segment](const dr::Config& cfg, sim::PeerId) {
    return std::make_unique<CombStuffPeer>(
        RandParams::derive(cfg, concentration), target_segment);
  };
}

PeerFactory make_quorum_rusher(double concentration) {
  return [concentration](const dr::Config& cfg, sim::PeerId) {
    return std::make_unique<QuorumRusherPeer>(
        RandParams::derive(cfg, concentration));
  };
}

LatencyFactory uniform_latency(sim::Time lo, sim::Time hi) {
  return [lo, hi](const dr::Config& cfg) {
    return std::make_unique<adv::UniformLatency>(
        Rng(cfg.seed).split(0x1a7ull), lo, hi);
  };
}

LatencyFactory fixed_latency(sim::Time delay) {
  return [delay](const dr::Config&) {
    return std::make_unique<sim::FixedLatency>(delay);
  };
}

LatencyFactory seniority_latency() {
  return [](const dr::Config& cfg) {
    return std::make_unique<adv::SeniorityLatency>(cfg.k);
  };
}

LatencyFactory sender_delay_latency(std::vector<sim::PeerId> slow_senders,
                                    sim::Time slow, sim::Time fast) {
  return [slow_senders = std::move(slow_senders), slow,
          fast](const dr::Config&) {
    return std::make_unique<adv::SenderDelayLatency>(
        std::unordered_set<sim::PeerId>(slow_senders.begin(),
                                        slow_senders.end()),
        slow, fast);
  };
}

}  // namespace asyncdr::proto
