#include "protocols/params.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/check.hpp"

namespace asyncdr::proto {

RandParams RandParams::derive(const dr::Config& cfg, double concentration,
                              double tau_margin) {
  ASYNCDR_EXPECTS(concentration > 0);
  ASYNCDR_EXPECTS(tau_margin >= 1.0);
  RandParams p;
  p.concentration = concentration;
  p.tau_margin = tau_margin;
  const std::size_t t = cfg.max_faulty();
  if (2 * t >= cfg.k) {
    // Case 3: majority Byzantine — Theorem 3.2 says no protocol can beat
    // the naive one anyway.
    p.naive_fallback = true;
    return p;
  }
  p.eta = cfg.k - 2 * t;
  const double log_term =
      std::log(static_cast<double>(std::max({cfg.n, cfg.k, std::size_t{3}})));
  const auto s = static_cast<std::size_t>(
      std::floor(static_cast<double>(p.eta) / (concentration * log_term)));
  if (s < 2) {
    // Case 2 degenerates at this scale: a single segment means everyone
    // queries everything, i.e. the naive protocol.
    p.naive_fallback = true;
    return p;
  }
  p.segments = std::min(s, cfg.n);
  p.tau = p.tau_for(p.segments);
  return p;
}

std::size_t RandParams::tau_for(std::size_t segment_count) const {
  ASYNCDR_EXPECTS(segment_count >= 1);
  // Expected picks per segment among eta honest peers is eta/s; the w.h.p.
  // floor is that divided by tau_margin (Claim 5 uses margin 2).
  return std::max<std::size_t>(
      1, static_cast<std::size_t>(
             static_cast<double>(eta) /
             (tau_margin * static_cast<double>(segment_count))));
}

std::string RandParams::to_string() const {
  std::ostringstream os;
  if (naive_fallback) return "RandParams{naive fallback}";
  os << "RandParams{s=" << segments << ", tau=" << tau << ", eta=" << eta
     << ", C=" << concentration << "}";
  return os.str();
}

}  // namespace asyncdr::proto
