// Closed-form query-complexity bounds from the paper's theorems, evaluated
// with explicit constants. Tests assert "measured <= bound"; benches print
// measured next to bound so the reproduction's shape is auditable.
#pragma once

#include <cstddef>

#include "dr/config.hpp"
#include "protocols/params.hpp"

namespace asyncdr::proto::bounds {

/// Naive protocol: exactly n.
std::size_t naive_q(const dr::Config& cfg);

/// Theorem 2.3 (Algorithm 1): ceil(n/k) + ceil(ceil(n/k)/(k-1)).
std::size_t crash_one_q(const dr::Config& cfg);

/// Lemma 2.11 / Theorem 2.13 (Algorithm 2): the geometric phase sum
/// sum_r (beta'^{r} * n / k) with beta' = t/k, each term carrying the
/// hashed-assignment balls-in-bins concentration slack, plus the
/// direct-query tail max(ceil(n/k), 2k).
std::size_t crash_multi_q(const dr::Config& cfg);

/// Theorem 3.4 (committee protocol): number of committees containing one
/// peer = ceil(n * (2t+1) / k) + 1 slack.
std::size_t committee_q(const dr::Config& cfg);

/// Committee protocol message complexity: every peer broadcasts one batched
/// vote payload of ceil(n(2t+1)/k)+64 bits = that many B-bit unit messages
/// to k-1 peers.
std::size_t committee_m(const dr::Config& cfg);

/// Committee protocol time complexity: one batched broadcast serialized on
/// each link (the paper's n(2t+1)/(kB) term) plus one latency unit.
double committee_t(const dr::Config& cfg);

/// Theorem 3.7 (2-cycle): segment + decision-tree cost, n/s + k, with a
/// explicit constant-factor allowance for separator queries.
std::size_t two_cycle_q(const dr::Config& cfg, const RandParams& params);

/// Theorem 3.12 (multi-cycle): expected cost n/s + O(k log s); the bound
/// here is the w.h.p. per-run allowance used by tests.
std::size_t multi_cycle_q(const dr::Config& cfg, const RandParams& params);

/// Theorem 3.2: with beta >= 1/2, any protocol where every peer queries at
/// most q bits fails with probability >= (1 - q/n) against the two-world
/// adversary (up to the quiescence term). Returns that lower bound on the
/// attack success probability.
double majority_attack_success_lb(std::size_t q, std::size_t n);

}  // namespace asyncdr::proto::bounds
