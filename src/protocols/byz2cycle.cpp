#include "dr/world.hpp"
#include "protocols/byz2cycle.hpp"

#include "common/check.hpp"
#include "protocols/decision_tree.hpp"

namespace asyncdr::proto {

TwoCyclePeer::TwoCyclePeer(RandParams params) : params_(params) {}

void TwoCyclePeer::on_start() {
  if (params_.naive_fallback) {
    begin_phase("bulk-download");
    finish(query_range(0, n()));
    return;
  }
  begin_phase("cycle1:sample-report");
  layout_ = std::make_unique<SegmentLayout>(n(), params_.segments);
  bank_ = std::make_unique<StringBank>(params_.segments);

  my_pick_ = static_cast<std::size_t>(rng().below(params_.segments));
  const Interval b = layout_->bounds(my_pick_);
  my_value_ = query_range(b.lo, b.length());
  bank_->record(my_pick_, id(), my_value_);
  reporters_.insert(id());
  broadcast(std::make_shared<rnd::Report>(1, my_pick_, my_value_));
  started_ = true;
  try_decide();
}

void TwoCyclePeer::on_message(sim::PeerId from, const sim::Payload& payload) {
  if (params_.naive_fallback) return;
  const auto* report = sim::payload_as<rnd::Report>(payload);
  if (report == nullptr) return;  // garbage payload
  // Reports may legitimately arrive before my own start (no simultaneous
  // start in the model) — buffer them in the bank either way.
  if (layout_ == nullptr) {
    layout_ = std::make_unique<SegmentLayout>(n(), params_.segments);
    bank_ = std::make_unique<StringBank>(params_.segments);
  }
  if (report->cycle != 1 || report->seg >= params_.segments) return;
  if (report->value.size() != layout_->length(report->seg)) return;
  bank_->record(report->seg, from, report->value);
  reporters_.insert(from);
  try_decide();
}

void TwoCyclePeer::try_decide() {
  if (terminated() || !started_) return;
  const std::size_t quorum = k() - world().config().max_faulty();
  if (reporters_.size() < quorum) return;

  begin_phase("cycle2:decide");
  BitVec out(n());
  for (std::size_t seg = 0; seg < params_.segments; ++seg) {
    const Interval b = layout_->bounds(seg);
    if (seg == my_pick_) {
      out.splice(b.lo, my_value_);
      continue;
    }
    const std::vector<BitVec> candidates = bank_->frequent(seg, params_.tau);
    if (candidates.empty()) {
      // The w.h.p. event failed for this segment: fall back to querying it
      // directly. Correctness is preserved; the cost shows up in Q.
      ++fallback_segments_;
      out.splice(b.lo, query_range(b.lo, b.length()));
      continue;
    }
    const DecisionTree tree(candidates);
    std::size_t spent = 0;
    const BitVec& winner = tree.determine(
        [&](std::size_t index) {
          ++spent;
          return query(index);
        },
        b.lo);
    tree_queries_ += spent;
    out.splice(b.lo, winner);
  }
  finish(out);
}

}  // namespace asyncdr::proto
