// Algorithm 1 of the paper: deterministic asynchronous Download tolerating a
// single crash fault (t = 1). Two phases of three stages each:
//
//   Phase r, stage 1 — query the bits assigned to me that are still unknown
//     and push their values to everyone.
//   Phase r, stage 2 — wait until stage-1 coverage from >= k-1 peers
//     (counting myself); name the one peer I am missing and broadcast a
//     stage-2 request for its bits.
//   Phase r, stage 3 — wait for >= k-1 stage-2 responses (counting my own
//     implicit "me neither"). If anyone supplied the missing bits, enter
//     completion mode; otherwise reassign the missing peer's block evenly
//     over the k-1 remaining peers for phase 2.
//
// In phase 2, a completion-mode peer pushes ALL bits (acting as a full-array
// fallback for peers stuck waiting on a terminated peer) and a lacking peer
// pushes its reassigned share, then both terminate once their output is
// complete. Lemma 2.1 (via the Overlap Lemma) guarantees all lacking peers
// agree on the missing peer, so the phase-2 reassignments coincide.
//
// Query complexity: ceil(n/k) in phase 1 plus at most
// ceil(ceil(n/k)/(k-1)) in phase 2 — the Theorem 2.3 bound.
#pragma once

#include <map>
#include <optional>
#include <vector>

#include "common/interval_set.hpp"
#include "dr/peer.hpp"
#include "protocols/chunk.hpp"
#include "protocols/segments.hpp"
#include "sim/message.hpp"

namespace asyncdr::proto {

/// Payloads of Algorithm 1.
namespace crash1 {

/// Stage-1 push: the sender's (re)assigned bit values for `phase`.
struct Stage1 final : sim::Payload {
  std::size_t phase;
  BitChunk chunk;

  Stage1(std::size_t ph, BitChunk c) : phase(ph), chunk(std::move(c)) {}
  [[nodiscard]] std::size_t size_bits() const override { return 8 + chunk.size_bits(); }
  [[nodiscard]] std::string type_name() const override { return "crash1::Stage1"; }
};

/// Stage-2 request: "I am missing peer `missing`; send me `needed`".
struct Stage2Req final : sim::Payload {
  std::size_t phase;
  sim::PeerId missing;
  IntervalSet needed;

  Stage2Req(std::size_t ph, sim::PeerId m, IntervalSet idx)
      : phase(ph), missing(m), needed(std::move(idx)) {}
  [[nodiscard]] std::size_t size_bits() const override {
    return 8 + 64 + 128 * needed.intervals().size();
  }
  [[nodiscard]] std::string type_name() const override { return "crash1::Stage2Req"; }
};

/// Stage-2 response: the requested bits, or "me neither".
struct Stage2Resp final : sim::Payload {
  std::size_t phase;
  sim::PeerId missing;
  bool has_bits;
  BitChunk chunk;  // empty when has_bits is false

  Stage2Resp(std::size_t ph, sim::PeerId m, bool has, BitChunk c)
      : phase(ph), missing(m), has_bits(has), chunk(std::move(c)) {}
  [[nodiscard]] std::size_t size_bits() const override {
    return 8 + 64 + 1 + chunk.size_bits();
  }
  [[nodiscard]] std::string type_name() const override { return "crash1::Stage2Resp"; }
};

}  // namespace crash1

/// A nonfaulty peer of Algorithm 1. Requires k >= 3.
class CrashOnePeer final : public dr::Peer {
 public:
  void on_start() override;
  /// Crash-recovery resume: seeds out_/known_ from the replayed journal,
  /// queries only the missing bits, then acts as a completion-mode peer
  /// (full-array push) so it terminates even if everyone else already has.
  void on_restart(const dr::RecoveryState& state) override;

 protected:
  void on_message(sim::PeerId from, const sim::Payload& payload) override;

 private:
  enum class Progress {
    kStart,
    kPhase1Wait1,   // stage 2 of phase 1: waiting for stage-1 coverage
    kPhase1Wait2,   // stage 3 of phase 1: waiting for stage-2 responses
    kPhase2,        // phase-2 share broadcast; waiting for full knowledge
    kDone,
  };

  // The fixed phase-1 assignment: peer q owns block q.
  [[nodiscard]] SegmentLayout blocks() const { return SegmentLayout(n(), k()); }

  void ensure_init();
  void start_phase1();
  void try_advance();
  void answer_pending_requests();
  void answer_request(sim::PeerId from, const crash1::Stage2Req& req);
  void enter_phase2();
  void maybe_finish();

  /// Phase-2 share of `missing`'s block owned by `owner` (canonical rule
  /// shared by every peer: the block split evenly over peers != missing in
  /// increasing ID order).
  [[nodiscard]] IntervalSet phase2_share(sim::PeerId missing, sim::PeerId owner) const;

  Progress progress_ = Progress::kStart;
  BitVec out_;
  IntervalSet known_;

  // Stage-1 coverage received per phase, per sender.
  std::map<std::pair<std::size_t, sim::PeerId>, IntervalSet> coverage_;
  std::optional<sim::PeerId> missing_;
  std::size_t responses_ = 1;  // my own implicit "me neither"
  bool got_missing_bits_ = false;
  bool phase2_broadcast_done_ = false;

  // Stage-2 requests that arrived before I finished my own stage-2 wait.
  std::vector<std::pair<sim::PeerId, crash1::Stage2Req>> pending_requests_;
};

}  // namespace asyncdr::proto
