#include "dr/world.hpp"
#include "protocols/attacks.hpp"

#include "protocols/byz2cycle.hpp"
#include "protocols/segments.hpp"

namespace asyncdr::proto {

void GarbageByzPeer::on_start() {
  broadcast(std::make_shared<Noise>());
  // A malformed committee vote vector (wrong length) for good measure.
  broadcast(std::make_shared<committee::Votes>(BitVec(1)));
  // A malformed randomized-protocol report (out-of-range segment).
  broadcast(std::make_shared<rnd::Report>(1, n() + 17, BitVec(3)));
}

void GarbageByzPeer::on_message(sim::PeerId, const sim::Payload&) {
  // Reply to every message with more noise (bounded, to keep runs finite).
  if (sent_ < 4 * k()) {
    ++sent_;
    broadcast(std::make_shared<Noise>());
  }
}

void CommitteeLiarPeer::on_start() {
  const std::size_t t = world().config().max_faulty();
  const CommitteeAssignment assignment(n(), k(), t);
  const std::vector<std::size_t> mine = assignment.bits_of(id());
  // Byzantine peers may query freely; their cost is not measured.
  const BitVec truth = query_indices(mine);

  switch (mode_) {
    case Mode::kFlipAll: {
      BitVec lie = truth;
      for (std::size_t j = 0; j < lie.size(); ++j) lie.flip(j);
      broadcast(std::make_shared<committee::Votes>(std::move(lie)));
      break;
    }
    case Mode::kRandom: {
      const BitVec lie =
          BitVec::generate(truth.size(), [&] { return rng().flip(); });
      broadcast(std::make_shared<committee::Votes>(lie));
      break;
    }
    case Mode::kEquivocate: {
      BitVec lie = truth;
      for (std::size_t j = 0; j < lie.size(); ++j) lie.flip(j);
      for (sim::PeerId to = 0; to < k(); ++to) {
        if (to == id()) continue;
        send(to, std::make_shared<committee::Votes>(to % 2 == 0 ? truth : lie));
      }
      break;
    }
  }
}

VoteStuffPeer::VoteStuffPeer(RandParams params, std::size_t target_segment)
    : params_(params), target_(target_segment) {}

void VoteStuffPeer::on_start() {
  if (params_.naive_fallback) return;
  // Stuff the same complement-of-truth fake for the target segment of every
  // cycle's layout, all at once (asynchrony permits arbitrarily early
  // sends). All Byzantine instances fabricate identically, so the fake
  // accumulates t supporting votes at every honest receiver.
  SegmentLayout layout(n(), params_.segments);
  std::size_t cycle = 1;
  while (true) {
    const std::size_t seg = target_ % layout.count();
    const Interval b = layout.bounds(seg);
    BitVec fake = query_range(b.lo, b.length());
    for (std::size_t j = 0; j < fake.size(); ++j) fake.flip(j);
    broadcast(std::make_shared<rnd::Report>(cycle, seg, std::move(fake)));
    if (layout.count() == 1) break;
    layout = layout.coarsen();
    ++cycle;
  }
}

EquivocatorPeer::EquivocatorPeer(RandParams params) : params_(params) {}

void EquivocatorPeer::on_start() {
  if (params_.naive_fallback) return;
  SegmentLayout layout(n(), params_.segments);
  std::size_t cycle = 1;
  while (true) {
    for (sim::PeerId to = 0; to < k(); ++to) {
      if (to == id()) continue;
      const auto seg = static_cast<std::size_t>(rng().below(layout.count()));
      const BitVec fake = BitVec::generate(layout.length(seg),
                                           [&] { return rng().flip(); });
      send(to, std::make_shared<rnd::Report>(cycle, seg, fake));
    }
    if (layout.count() == 1) break;
    layout = layout.coarsen();
    ++cycle;
  }
}

}  // namespace asyncdr::proto
