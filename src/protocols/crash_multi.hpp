// Algorithm 2 of the paper: deterministic asynchronous Download tolerating
// t = floor(beta*k) crash faults for ANY beta < 1, with optimal query
// complexity O(n / ((1-beta) k)) (Theorems 2.13 / Lemma 2.11).
//
// Execution proceeds in phases of three stages:
//   stage 1 — query my share of my unknown bits and ask every other peer
//             for its share (pull request REQ1);
//   stage 2 — wait for complete answers (RESP1) from >= (1-beta)k peers
//             (counting myself); broadcast REQ2 naming the unheard peers;
//   stage 3 — wait for >= (1-beta)k REQ2 responses (counting my own
//             implicit "me neither"); learn what arrived; the still-unknown
//             bits carry into the next phase under a fresh assignment.
//
// Assignment rule. Phase 1 assigns peer q the q-th contiguous block. For
// phase r >= 2, bit b is owned by peer hash(b, r) mod k — a CANONICAL
// pseudorandom rule every peer evaluates identically. This deviates from
// the paper's Line 20 (each peer re-splits its missing peers' sets evenly):
// the local-splitting rule needs all reassigning peers to hold identical
// per-missing-peer sets, which fails once responses resolve different
// subsets at different peers (positions misalign and two peers route the
// same unknown bit to different owners). The canonical rule makes the
// paper's Claim 1 — any two peers agree on every bit's owner — structural,
// keeps the per-phase load balanced (u/k +- O(sqrt(u/k log k)) by standard
// balls-in-bins concentration), and, because the hash decorrelates phases,
// shrinks the unknown set by a ~beta factor per phase against ANY crash
// set. bounds::crash_multi_q() accounts for the concentration slack.
//
// Termination: once the unknown set is at most max(ceil(n/k), 2k) bits (or
// a phase cap is hit), the peer queries the remainder directly, pushes its
// full output to everyone (the FULL rescue of Claim 2 that keeps slower
// peers from waiting on terminated ones), and terminates.
//
// The Theorem 2.13 "fast cancel" refinement is on by default: a peer stuck
// in stage 3 is released as soon as late RESP1s cover everything it was
// waiting for, instead of having to collect the full response quorum.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <vector>

#include "dr/peer.hpp"
#include "protocols/chunk.hpp"
#include "sim/message.hpp"

namespace asyncdr::proto {

/// Payloads and assignment mechanics of Algorithm 2.
namespace crashm {

/// Canonical owner of bit b in phase r >= 2 of a k-peer instance.
sim::PeerId hashed_owner(std::size_t b, std::size_t r, std::size_t k);

/// Per-peer ownership masks of one phase: masks[q].get(b) iff q owns bit b
/// in phase r. Depends only on (n, k, r), so instances are shared
/// process-wide; shares then reduce to word-level AND operations.
const std::vector<BitVec>& owner_masks(std::size_t n, std::size_t k,
                                       std::size_t r);

/// Request header charge: the index sets a request describes are
/// reconstructible from the requester's per-phase unheard lists (at most k
/// peer IDs per phase), so requests are charged O(k) header bits rather
/// than one bit per index — the paper's accounting.
inline std::size_t request_header_bits(std::size_t k) { return 64 + 16 * k; }

/// Stage-1 pull request: "send me your share of my unknown bits".
struct Req1 final : sim::Payload {
  std::size_t phase;
  BitVec unknown;  ///< requester's unknown-bit mask at phase start

  Req1(std::size_t ph, BitVec u) : phase(ph), unknown(std::move(u)) {}
  [[nodiscard]] std::size_t size_bits() const override {
    return 8 + request_header_bits(16);
  }
  [[nodiscard]] std::string type_name() const override { return "crashm::Req1"; }
};

/// Answer to Req1: the requested bit values.
struct Resp1 final : sim::Payload {
  std::size_t phase;
  MaskChunk chunk;

  Resp1(std::size_t ph, MaskChunk c) : phase(ph), chunk(std::move(c)) {}
  [[nodiscard]] std::size_t size_bits() const override { return 8 + chunk.size_bits(); }
  [[nodiscard]] std::string type_name() const override { return "crashm::Resp1"; }
};

/// Stage-2 request: "these peers never answered me — did they answer you?"
struct Req2 final : sim::Payload {
  std::size_t phase;
  std::vector<sim::PeerId> missing;
  BitVec unknown;  ///< requester's unknown-bit mask at phase start

  Req2(std::size_t ph, std::vector<sim::PeerId> m, BitVec u)
      : phase(ph), missing(std::move(m)), unknown(std::move(u)) {}
  [[nodiscard]] std::size_t size_bits() const override {
    return 8 + request_header_bits(16) + 16 * missing.size();
  }
  [[nodiscard]] std::string type_name() const override { return "crashm::Req2"; }
};

/// Answer to Req2: per missing peer, either its bits or "me neither".
struct Resp2 final : sim::Payload {
  std::size_t phase;
  std::vector<std::pair<sim::PeerId, std::optional<MaskChunk>>> answers;

  Resp2(std::size_t ph,
        std::vector<std::pair<sim::PeerId, std::optional<MaskChunk>>> a)
      : phase(ph), answers(std::move(a)) {}
  [[nodiscard]] std::size_t size_bits() const override {
    std::size_t bits = 8;
    for (const auto& [peer, chunk] : answers) {
      bits += 17;  // peer id + me-neither flag
      if (chunk) bits += chunk->size_bits();
    }
    return bits;
  }
  [[nodiscard]] std::string type_name() const override { return "crashm::Resp2"; }
};

/// Terminating push of the full output array (Claim 2's rescue).
struct Full final : sim::Payload {
  BitVec all;

  explicit Full(BitVec a) : all(std::move(a)) {}
  [[nodiscard]] std::size_t size_bits() const override { return 8 + all.size(); }
  [[nodiscard]] std::string type_name() const override { return "crashm::Full"; }
};

}  // namespace crashm

/// A nonfaulty peer of Algorithm 2.
class CrashMultiPeer final : public dr::Peer {
 public:
  struct Options {
    /// Thm 2.13 optimization: release the stage-3 wait as soon as late
    /// RESP1s cover every pending peer. Ablated in bench_crash.
    bool fast_cancel = true;
    /// Stop phasing and query the rest directly once the unknown count is
    /// at most this. 0 = auto: max(ceil(n/k), 2k).
    std::size_t direct_threshold = 0;
    /// Hard cap on phases. 0 = auto from beta.
    std::size_t max_phases = 0;
  };

  CrashMultiPeer();
  explicit CrashMultiPeer(Options opts);

  void on_start() override;
  /// Crash-recovery resume: seeds out_/known_ from the replayed journal,
  /// queries only the still-unknown bits, then pushes the FULL rescue and
  /// terminates (the other peers may all be done and unable to help).
  void on_restart(const dr::RecoveryState& state) override;
  [[nodiscard]] std::string status() const override;

  /// Phases entered before terminating (diagnostics for benches/tests).
  [[nodiscard]] std::size_t phases_run() const { return phase_; }

 protected:
  void on_message(sim::PeerId from, const sim::Payload& payload) override;

 private:
  enum class Progress { kIdle, kWait1, kWait2, kDone };

  [[nodiscard]] std::size_t quorum() const;  // (1-beta)k = k - t
  [[nodiscard]] std::size_t direct_threshold() const;
  [[nodiscard]] std::size_t max_phases() const;

  /// Mask of bits in `base` owned by `who` in phase r (word-level AND with
  /// the shared ownership masks).
  [[nodiscard]] BitVec owned_share(const BitVec& base, std::size_t r, sim::PeerId who) const;

  void ensure_init();
  void start_phase(std::size_t r);
  void try_advance();
  void advance_phase();
  void complete_now();
  void process_deferred();

  void handle_req1(sim::PeerId from, const crashm::Req1& req);
  void handle_req2(sim::PeerId from, const crashm::Req2& req);
  [[nodiscard]] bool req1_eligible(const crashm::Req1& req) const;
  [[nodiscard]] bool req2_eligible(const crashm::Req2& req) const;

  /// Queries (and journals) the unknown bits of `mask`. Returns false iff a
  /// journal crash-point sentinel killed this peer mid-append — the caller
  /// must stop immediately.
  bool query_mask(const BitVec& mask);

  Options opts_;
  Progress progress_ = Progress::kIdle;
  std::size_t phase_ = 0;

  BitVec out_;
  BitVec known_;  // mask

  BitVec phase_unknown_;  // unknown mask snapshot at current phase start
  std::vector<std::set<sim::PeerId>> heard_;  // C_r per phase (index r-1)
  std::vector<sim::PeerId> missing_;          // D of the current phase
  std::size_t resp2_count_ = 0;

  bool full_sent_ = false;

  struct Deferred {
    sim::PeerId from;
    std::optional<crashm::Req1> req1;
    std::optional<crashm::Req2> req2;
  };
  std::vector<Deferred> deferred_;
};

}  // namespace asyncdr::proto
