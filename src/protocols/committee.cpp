#include "dr/world.hpp"
#include "protocols/committee.hpp"

#include <sstream>

#include "common/check.hpp"

namespace asyncdr::proto {

CommitteeAssignment::CommitteeAssignment(std::size_t n, std::size_t k,
                                         std::size_t t)
    : n_(n), k_(k), t_(t), c_(2 * t + 1) {
  ASYNCDR_EXPECTS_MSG(c_ <= k_,
                      "committee protocol needs beta < 1/2 (2t+1 <= k)");
}

bool CommitteeAssignment::is_member(sim::PeerId p, std::size_t bit) const {
  ASYNCDR_EXPECTS(p < k_ && bit < n_);
  return ((p + k_ - (bit * c_) % k_) % k_) < c_;
}

std::size_t CommitteeAssignment::position(sim::PeerId p, std::size_t bit) const {
  ASYNCDR_EXPECTS(is_member(p, bit));
  return (p + k_ - (bit * c_) % k_) % k_;
}

std::vector<std::size_t> CommitteeAssignment::bits_of(sim::PeerId p) const {
  std::vector<std::size_t> bits;
  for (std::size_t j = 0; j < n_; ++j) {
    if (is_member(p, j)) bits.push_back(j);
  }
  return bits;
}

std::vector<sim::PeerId> CommitteeAssignment::members_of(std::size_t bit) const {
  ASYNCDR_EXPECTS(bit < n_);
  std::vector<sim::PeerId> members;
  members.reserve(c_);
  for (std::size_t i = 0; i < c_; ++i) members.push_back((bit * c_ + i) % k_);
  return members;
}

void CommitteePeer::on_start() {
  init();
  begin_phase("committee-query+vote");
  // Query every bit of my committees; my own queries are ground truth, so
  // those bits decide immediately.
  const std::vector<std::size_t> mine = assignment_->bits_of(id());
  const BitVec values = query_indices(mine);
  for (std::size_t j = 0; j < mine.size(); ++j) {
    decide(mine[j], values.get(j));
  }
  broadcast(std::make_shared<committee::Votes>(values));
  votes_sent_ = true;
  begin_phase("vote-collection");
  maybe_finish();
}

void CommitteePeer::on_message(sim::PeerId from, const sim::Payload& payload) {
  const auto* votes = sim::payload_as<committee::Votes>(payload);
  if (votes == nullptr) return;  // foreign/garbage payload: ignore
  init();
  process_votes(from, *votes);
  maybe_finish();
}

void CommitteePeer::init() {
  if (started_) return;
  started_ = true;
  const std::size_t t = world().config().max_faulty();
  assignment_ = std::make_unique<CommitteeAssignment>(n(), k(), t);
  out_ = BitVec(n());
  decided_.assign(n(), false);
  votes0_.assign(n(), 0);
  votes1_.assign(n(), 0);
  voted_.assign(n(), std::vector<bool>(assignment_->committee_size(), false));
}

void CommitteePeer::process_votes(sim::PeerId from,
                                  const committee::Votes& votes) {
  if (from >= k()) return;
  const std::vector<std::size_t> bits = assignment_->bits_of(from);
  // A malformed (wrong-length) vote vector can only come from a Byzantine
  // sender; drop it entirely.
  if (votes.values.size() != bits.size()) return;

  for (std::size_t j = 0; j < bits.size(); ++j) {
    const std::size_t bit = bits[j];
    if (decided_[bit]) continue;
    const std::size_t pos = assignment_->position(from, bit);
    if (voted_[bit][pos]) continue;  // duplicate vote from this member
    voted_[bit][pos] = true;
    const bool value = votes.values.get(j);
    const std::uint32_t count = value ? ++votes1_[bit] : ++votes0_[bit];
    if (count >= accept_threshold()) decide(bit, value);
  }
}

std::size_t CommitteePeer::accept_threshold() const {
  const std::size_t threshold = assignment_->threshold();
  // The injected off-by-one: t votes suffice, so t colluding liars can
  // decide a bit. Guarded so the bug cannot fire accidentally.
  if (opts_.buggy_vote_threshold && threshold > 1) return threshold - 1;
  return threshold;
}

std::string CommitteePeer::status() const {
  if (terminated()) return "terminated";
  if (!started_) return "not started";
  std::ostringstream os;
  os << "decided " << decided_count_ << "/" << n() << " bits, votes "
     << (votes_sent_ ? "sent" : "NOT sent")
     << "; waiting for committee votes on the undecided bits";
  return os.str();
}

void CommitteePeer::decide(std::size_t bit, bool value) {
  if (decided_[bit]) return;
  decided_[bit] = true;
  ++decided_count_;
  out_.set(bit, value);
}

void CommitteePeer::maybe_finish() {
  if (!terminated() && votes_sent_ && decided_count_ == n()) finish(out_);
}

}  // namespace asyncdr::proto
