// Protocol 3 of the paper: the decision tree over a set of conflicting
// candidate strings for one segment. Internal nodes hold separating bit
// indices; querying the source at those indices walks the tree down to the
// unique candidate consistent with the true input — the correct string, as
// long as it is among the candidates.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "common/bitvec.hpp"

namespace asyncdr::proto {

/// Conflict-resolution tree over candidate bit strings of equal length.
class DecisionTree {
 public:
  /// Candidates must be non-empty, pairwise distinct, and of equal length.
  explicit DecisionTree(std::vector<BitVec> candidates);

  [[nodiscard]] std::size_t leaf_count() const { return candidates_.size(); }
  /// Number of separating indices on the worst root-to-leaf path.
  [[nodiscard]] std::size_t depth() const { return depth_; }
  /// Total internal nodes — the paper's bound on determine()'s query cost
  /// (= leaf_count() - 1).
  [[nodiscard]] std::size_t internal_nodes() const { return internal_count_; }

  /// Resolves the tree against the true input. `query_bit` receives an
  /// absolute index (node separating index + `index_offset`) and must return
  /// the true input bit there; it is called once per internal node on the
  /// resolution path. Returns the surviving candidate.
  ///
  /// If the true string is among the candidates, the result *is* the true
  /// string; otherwise the result is some candidate agreeing with the truth
  /// on all queried separators (the caller must guard against that case, as
  /// the protocols do via the tau-frequency threshold).
  [[nodiscard]] const BitVec& determine(
      const std::function<bool(std::size_t)>& query_bit,
      std::size_t index_offset = 0) const;

 private:
  struct Node {
    // Internal node: sep_index >= 0, children index into nodes_.
    // Leaf: sep_index == -1, candidate indexes into candidates_.
    std::ptrdiff_t sep_index = -1;
    std::size_t child[2] = {0, 0};
    std::size_t candidate = 0;
  };

  std::size_t build(std::vector<std::size_t> members, std::size_t depth);

  std::vector<BitVec> candidates_;
  std::vector<Node> nodes_;
  std::size_t root_ = 0;
  std::size_t depth_ = 0;
  std::size_t internal_count_ = 0;
};

}  // namespace asyncdr::proto
