// Protocol 4 / Theorem 3.7: the 2-cycle randomized Download protocol for
// Byzantine faults with beta < 1/2.
//
// Cycle 1 — every peer picks one of s segments uniformly at random, queries
//   it in full, and broadcasts (segment, string).
// Cycle 2 — after hearing reports from >= k - t distinct peers, every peer
//   resolves each segment by building the decision tree over the
//   tau-frequent strings reported for it and querying the source at the
//   tree's separating indices. A vote-stuffed fake string costs extra
//   separator queries but can never be selected: the true string is in the
//   candidate set w.h.p. (Claim 5) and survives every separator query.
//
// Q = n/s + O(k) ~ O~(n / ((1-2 beta) k) + k) with high probability.
#pragma once

#include <set>

#include "dr/peer.hpp"
#include "protocols/frequent.hpp"
#include "protocols/params.hpp"
#include "protocols/segments.hpp"
#include "sim/message.hpp"

namespace asyncdr::proto {

namespace rnd {

/// A segment report: "I queried segment `seg` (of the cycle's layout) and
/// saw `value`".
struct Report final : sim::Payload {
  std::size_t cycle;
  std::size_t seg;
  BitVec value;

  Report(std::size_t cy, std::size_t sg, BitVec v)
      : cycle(cy), seg(sg), value(std::move(v)) {}
  [[nodiscard]] std::size_t size_bits() const override { return value.size() + 64; }
  [[nodiscard]] std::string type_name() const override { return "rnd::Report"; }
};

}  // namespace rnd

/// An honest peer of the 2-cycle protocol.
class TwoCyclePeer final : public dr::Peer {
 public:
  explicit TwoCyclePeer(RandParams params);

  void on_start() override;

  /// Bits spent on decision-tree separators (diagnostics for the benches;
  /// also part of the regular query accounting).
  [[nodiscard]] std::size_t tree_queries() const { return tree_queries_; }
  /// Segments that had no tau-frequent candidate and were re-queried in
  /// full (the w.h.p. failure path; benches report its frequency).
  [[nodiscard]] std::size_t fallback_segments() const { return fallback_segments_; }

 protected:
  void on_message(sim::PeerId from, const sim::Payload& payload) override;

 private:
  void try_decide();

  RandParams params_;
  std::unique_ptr<SegmentLayout> layout_;
  std::unique_ptr<StringBank> bank_;
  std::set<sim::PeerId> reporters_;
  std::size_t my_pick_ = 0;
  BitVec my_value_;
  bool started_ = false;
  std::size_t tree_queries_ = 0;
  std::size_t fallback_segments_ = 0;
};

}  // namespace asyncdr::proto
