// The naive Download protocol: every peer queries the entire input directly.
// Q = n, M = 0. This is the only deterministic option once beta >= 1/2
// (Theorem 3.1), and the generic fallback of the randomized protocols'
// parameter derivation (case 3 of Theorem 3.7).
#pragma once

#include "dr/peer.hpp"

namespace asyncdr::proto {

/// Queries all n bits and terminates; ignores all messages.
class NaivePeer final : public dr::Peer {
 public:
  void on_start() override;

 protected:
  void on_message(sim::PeerId from, const sim::Payload& payload) override;
};

}  // namespace asyncdr::proto
