// Segment partition arithmetic for the randomized protocols: the input is
// split into s segments of (almost) equal length; the multi-cycle protocol
// then repeatedly pairs adjacent segments, doubling segment length, until a
// single segment covers the whole input.
#pragma once

#include <cstddef>
#include <vector>

#include "common/interval_set.hpp"

namespace asyncdr::proto {

/// Partition of [0, n) into contiguous segments. The (n, count) constructor
/// builds an equal split (lengths differ by at most one); coarsen() pairs
/// adjacent segments so that every coarse segment is exactly the
/// concatenation of one or two fine segments — the invariant the multi-cycle
/// protocol's decision trees rely on.
class SegmentLayout {
 public:
  SegmentLayout(std::size_t n, std::size_t count);

  [[nodiscard]] std::size_t n() const { return n_; }
  [[nodiscard]] std::size_t count() const { return bounds_.size() - 1; }

  /// Inclusive-exclusive bit range of segment `id`.
  [[nodiscard]] Interval bounds(std::size_t id) const;
  [[nodiscard]] std::size_t length(std::size_t id) const { return bounds(id).length(); }

  /// The segment containing bit index `i`.
  [[nodiscard]] std::size_t segment_of(std::size_t i) const;

  /// Pairs adjacent segments: new segment j = old segments {2j, 2j+1}
  /// (just {2j} when the count is odd and 2j is last).
  [[nodiscard]] SegmentLayout coarsen() const;

  /// The fine-segment IDs composing coarse segment `j` of coarsen().
  [[nodiscard]] std::vector<std::size_t> children_of(std::size_t coarse_id) const;

  bool operator==(const SegmentLayout&) const = default;

 private:
  explicit SegmentLayout(std::vector<std::size_t> boundary_points);

  std::size_t n_ = 0;
  std::vector<std::size_t> bounds_;  // count()+1 boundary points, 0..n
};

}  // namespace asyncdr::proto
