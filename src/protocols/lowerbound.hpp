// Executable lower-bound constructions for the Byzantine-majority regime
// (beta >= 1/2), Section 3.1 of the paper.
//
// Theorem 3.1 (deterministic): probe a synchronous execution with the
// honest group S silenced to find a bit i* the victim never queries, then
// re-run on the flipped input X' with the corrupted majority B simulating
// the X-world (they run the honest code against an overlay source). The two
// executions are indistinguishable to the victim, which therefore outputs
// the wrong value at i* — proving any deterministic protocol with Q < n
// fails.
//
// Theorem 3.2 (randomized): the adversary cannot probe a randomized
// victim's query set, so it plants i* at random; the attack then succeeds
// whenever the victim's random choices did not cover i*. Measured success
// rate is compared against the theorem's 1 - q/n floor.
#pragma once

#include <cstddef>
#include <string>

#include "dr/config.hpp"
#include "protocols/runner.hpp"

namespace asyncdr::proto {

/// Outcome of one Theorem 3.1 attack.
struct DetAttackResult {
  bool attackable = false;   ///< the probe found an unqueried bit
  bool succeeded = false;    ///< victim output the X-value at the planted bit
  sim::PeerId victim = 0;
  std::size_t planted_bit = 0;
  std::size_t victim_probe_queries = 0;  ///< q: bits the victim queried
  bool victim_terminated = false;
  std::string detail;
};

/// Runs the Theorem 3.1 two-world construction against a deterministic
/// protocol. Requires beta >= 1/2 head-room: t >= (k-1)/2 so the corrupted
/// coalition B (size t) plus the victim can satisfy any k-t quorum.
DetAttackResult run_deterministic_majority_attack(const dr::Config& cfg,
                                                  const PeerFactory& honest);

/// Aggregate of the Theorem 3.2 randomized measurement.
struct RandAttackStats {
  std::size_t trials = 0;
  std::size_t succeeded = 0;          ///< victim wrong at the planted bit
  std::size_t victim_unterminated = 0;
  double mean_victim_queries = 0;     ///< measured q
  [[nodiscard]] double success_rate() const {
    return trials == 0 ? 0.0
                       : static_cast<double>(succeeded) /
                             static_cast<double>(trials);
  }
  /// Theorem 3.2's floor: 1 - q/n with the measured mean q.
  [[nodiscard]] double predicted_floor(std::size_t n) const;
};

/// Runs `trials` independent random-bit attacks against a (randomized)
/// protocol. Each trial uses a fresh seed derived from cfg.seed.
RandAttackStats run_randomized_majority_attack(const dr::Config& cfg,
                                               const PeerFactory& honest,
                                               std::size_t trials);

}  // namespace asyncdr::proto
