#include "protocols/attacks2.hpp"

#include "dr/world.hpp"
#include "protocols/byz2cycle.hpp"
#include "protocols/segments.hpp"

namespace asyncdr::proto {

CombStuffPeer::CombStuffPeer(RandParams params, std::size_t target_segment)
    : params_(params), target_(target_segment) {}

void CombStuffPeer::on_start() {
  if (params_.naive_fallback) return;
  SegmentLayout layout(n(), params_.segments);
  std::size_t cycle = 1;
  while (true) {
    const std::size_t seg = target_ % layout.count();
    const Interval b = layout.bounds(seg);
    if (b.length() > 0) {
      BitVec fake = query_range(b.lo, b.length());
      // Flip one position unique to this attacker: distinct candidates
      // maximize the decision tree.
      fake.flip((b.length() - 1 - id() % b.length()) % b.length());
      broadcast(std::make_shared<rnd::Report>(cycle, seg, std::move(fake)));
    }
    if (layout.count() == 1) break;
    layout = layout.coarsen();
    ++cycle;
  }
}

QuorumRusherPeer::QuorumRusherPeer(RandParams params) : params_(params) {}

void QuorumRusherPeer::on_start() {
  if (params_.naive_fallback) return;
  SegmentLayout layout(n(), params_.segments);
  std::size_t cycle = 1;
  while (true) {
    // A zero-string for segment 0 of every cycle, sent instantly: counts
    // toward quorums, says nothing useful.
    broadcast(std::make_shared<rnd::Report>(cycle, 0, BitVec(layout.length(0))));
    if (layout.count() == 1) break;
    layout = layout.coarsen();
    ++cycle;
  }
}

}  // namespace asyncdr::proto
