#include "protocols/lowerbound.hpp"

#include <algorithm>

#include "adversary/latency.hpp"
#include "common/check.hpp"

namespace asyncdr::proto {

namespace {

struct Coalitions {
  sim::PeerId victim;
  std::vector<sim::PeerId> corrupted;  // B, size t
  std::vector<sim::PeerId> delayed;    // S, size k - t - 1 (honest but slow)
};

Coalitions split_coalitions(const dr::Config& cfg) {
  const std::size_t t = cfg.max_faulty();
  ASYNCDR_EXPECTS_MSG(
      2 * t + 1 >= cfg.k,
      "majority attack needs t >= (k-1)/2 so B + victim covers any quorum");
  Coalitions c;
  c.victim = 0;
  for (sim::PeerId id = 1; id <= t; ++id) c.corrupted.push_back(id);
  for (sim::PeerId id = t + 1; id < cfg.k; ++id) c.delayed.push_back(id);
  return c;
}

/// First index of [0, n) not contained in `queried`; nullopt if full.
std::optional<std::size_t> first_unqueried(const IntervalSet& queried,
                                           std::size_t n) {
  std::size_t at = 0;
  for (const Interval& iv : queried.intervals()) {
    if (iv.lo > at) return at;
    at = std::max(at, iv.hi);
  }
  return at < n ? std::optional<std::size_t>(at) : std::nullopt;
}

/// Builds and runs the two-world attack execution: input X' (truth), the
/// corrupted coalition simulating input X via source overlays, the honest
/// group S slowed beyond the victim's horizon.
dr::RunReport run_attack_world(const dr::Config& cfg, const BitVec& x_prime,
                               const BitVec& x_fake,
                               const Coalitions& coalitions,
                               const PeerFactory& honest, sim::Time slow) {
  dr::World world(cfg, x_prime);
  // asyncdr-lint: allow(DR003) Theorem 3.1/3.2 adversary: index recording and
  // the per-peer overlay ARE the two-world construction; queries stay
  // accounted.
  world.source().enable_index_recording(true);
  for (sim::PeerId id = 0; id < cfg.k; ++id) {
    world.set_peer(id, honest(cfg, id));
  }
  for (sim::PeerId b : coalitions.corrupted) {
    world.mark_faulty(b);
    // asyncdr-lint: allow(DR003) corrupted coalition runs honest code against
    // the other world's input (still query-accounted).
    world.source().set_overlay(b, x_fake);
  }
  world.network().set_latency_policy(std::make_unique<adv::SenderDelayLatency>(
      std::unordered_set<sim::PeerId>(coalitions.delayed.begin(),
                                      coalitions.delayed.end()),
      slow, 0.5));
  return world.run();
}

}  // namespace

DetAttackResult run_deterministic_majority_attack(const dr::Config& cfg,
                                                  const PeerFactory& honest) {
  const Coalitions coalitions = split_coalitions(cfg);
  DetAttackResult result;
  result.victim = coalitions.victim;

  const BitVec x = random_input(cfg.n, cfg.seed);

  // ---- Probe execution E_S: S silent from the start, input X. ----
  sim::Time probe_horizon = 0;
  {
    dr::World probe(cfg, x);
    // asyncdr-lint: allow(DR003) probe execution records indices to find a
    // bit the victim never queried; accounting is untouched.
    probe.source().enable_index_recording(true);
    for (sim::PeerId id = 0; id < cfg.k; ++id) probe.set_peer(id, honest(cfg, id));
    for (sim::PeerId s : coalitions.delayed) probe.schedule_crash_at(s, 0.0);
    probe.network().set_latency_policy(std::make_unique<sim::FixedLatency>(0.5));
    const dr::RunReport report = probe.run();

    const dr::Peer& victim = probe.peer(coalitions.victim);
    if (!victim.terminated()) {
      result.detail = "victim did not terminate in the probe (protocol is "
                      "S-vulnerable; Download already fails)";
      result.attackable = true;
      result.succeeded = true;  // non-termination is already a failure
      return result;
    }
    probe_horizon = victim.termination_time();
    result.victim_probe_queries = report.per_peer_queries[coalitions.victim];
    const auto bit = first_unqueried(
        probe.source().queried_indices(coalitions.victim), cfg.n);
    if (!bit) {
      result.detail = "victim queried every bit (Q = n): not attackable — "
                      "the Theorem 3.1 bound is tight";
      return result;
    }
    result.planted_bit = *bit;
    result.attackable = true;
  }

  // ---- Attack execution: input X' (flipped at i*), B simulates X. ----
  BitVec x_prime = x;
  x_prime.flip(result.planted_bit);
  const sim::Time slow = probe_horizon * 4 + 1000.0;
  const dr::RunReport attack =
      run_attack_world(cfg, x_prime, x, coalitions, honest, slow);

  result.victim_terminated =
      attack.outputs[coalitions.victim].size() == cfg.n;
  if (result.victim_terminated) {
    const bool victim_value =
        attack.outputs[coalitions.victim].get(result.planted_bit);
    result.succeeded = victim_value == x.get(result.planted_bit);
    result.detail = result.succeeded
                        ? "victim adopted the simulated world's value"
                        : "victim got the planted bit right";
  } else {
    // The victim hung: also a Download failure (termination violated).
    result.succeeded = true;
    result.detail = "victim did not terminate under the attack";
  }
  return result;
}

double RandAttackStats::predicted_floor(std::size_t n) const {
  if (n == 0) return 0.0;
  return std::max(0.0, 1.0 - mean_victim_queries / static_cast<double>(n));
}

RandAttackStats run_randomized_majority_attack(const dr::Config& cfg,
                                               const PeerFactory& honest,
                                               std::size_t trials) {
  const Coalitions coalitions = split_coalitions(cfg);
  RandAttackStats stats;
  stats.trials = trials;
  double total_queries = 0;

  for (std::size_t trial = 0; trial < trials; ++trial) {
    dr::Config trial_cfg = cfg;
    trial_cfg.seed = cfg.seed + 7717 * (trial + 1);
    Rng rng = Rng(trial_cfg.seed).split(0xa77ac4ull);

    const BitVec x = random_input(trial_cfg.n, trial_cfg.seed);
    const auto planted = static_cast<std::size_t>(rng.below(trial_cfg.n));
    BitVec x_prime = x;
    x_prime.flip(planted);

    const dr::RunReport attack = run_attack_world(
        trial_cfg, x_prime, x, coalitions, honest, /*slow=*/100000.0);

    total_queries +=
        static_cast<double>(attack.per_peer_queries[coalitions.victim]);
    if (attack.outputs[coalitions.victim].size() != trial_cfg.n) {
      ++stats.victim_unterminated;
      ++stats.succeeded;  // non-termination is a Download failure too
    } else if (attack.outputs[coalitions.victim].get(planted) ==
               x.get(planted)) {
      ++stats.succeeded;
    }
  }
  stats.mean_victim_queries =
      trials == 0 ? 0.0 : total_queries / static_cast<double>(trials);
  return stats;
}

}  // namespace asyncdr::proto
