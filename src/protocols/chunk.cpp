#include "protocols/chunk.hpp"

#include "common/check.hpp"

namespace asyncdr::proto {

BitChunk::BitChunk(IntervalSet idx, BitVec vals)
    : indices(std::move(idx)), values(std::move(vals)) {
  ASYNCDR_EXPECTS(indices.count() == values.size());
}

std::size_t BitChunk::size_bits() const {
  return values.size() + 128 * indices.intervals().size();
}

bool BitChunk::covers(const IntervalSet& wanted) const {
  IntervalSet missing = wanted;
  missing.subtract(indices);
  return missing.empty();
}

void BitChunk::apply_to(BitVec& out, IntervalSet& known) const {
  std::size_t j = 0;
  for (const Interval& iv : indices.intervals()) {
    for (std::size_t i = iv.lo; i < iv.hi; ++i) {
      ASYNCDR_EXPECTS(i < out.size());
      out.set(i, values.get(j++));
    }
  }
  known.unite(indices);
}

MaskChunk::MaskChunk(BitVec m, BitVec vals)
    : mask(std::move(m)), values(std::move(vals)) {
  ASYNCDR_EXPECTS(mask.popcount() == values.size());
}

void MaskChunk::apply_to(BitVec& out, BitVec& known_mask) const {
  ASYNCDR_EXPECTS(mask.size() == out.size());
  ASYNCDR_EXPECTS(mask.size() == known_mask.size());
  std::size_t j = 0;
  mask.for_each_set([&](std::size_t i) { out.set(i, values.get(j++)); });
  known_mask.or_with(mask);
}

MaskChunk MaskChunk::extract(const BitVec& src, const BitVec& mask) {
  ASYNCDR_EXPECTS(src.size() == mask.size());
  BitVec vals(mask.popcount());
  std::size_t j = 0;
  mask.for_each_set([&](std::size_t i) { vals.set(j++, src.get(i)); });
  return MaskChunk(mask, std::move(vals));
}

BitChunk BitChunk::extract(const BitVec& src, const IntervalSet& idx) {
  BitVec vals(idx.count());
  std::size_t j = 0;
  for (const Interval& iv : idx.intervals()) {
    for (std::size_t i = iv.lo; i < iv.hi; ++i) vals.set(j++, src.get(i));
  }
  return BitChunk(idx, std::move(vals));
}

}  // namespace asyncdr::proto
