// Second-wave Byzantine attacks: sharper strategies aimed at the
// randomized protocols' decision trees and quorum waits.
#pragma once

#include "dr/peer.hpp"
#include "protocols/params.hpp"

namespace asyncdr::proto {

/// "Comb" attack on the decision tree: Byzantine instance i reports, for
/// the target segment, a fake that equals the truth except at position
/// (len-1-i). Distinct fakes each earn their sender's single vote, so with
/// tau = 1-ish thresholds every fake becomes a candidate and the tree
/// degenerates to its worst-case depth — the attack that realizes the
/// paper's sum_i R_i cost bound. With tau > 1 the fakes dilute below the
/// threshold and the attack collapses to noise; both regimes are measured
/// in bench_randomized.
class CombStuffPeer final : public dr::Peer {
 public:
  CombStuffPeer(RandParams params, std::size_t target_segment);

  void on_start() override;

 protected:
  void on_message(sim::PeerId, const sim::Payload&) override {}

 private:
  RandParams params_;
  std::size_t target_;
};

/// Quorum-rusher: floods syntactically valid but useless reports the
/// instant it starts, trying to fill honest peers' k-t quorums with
/// garbage before honest reports arrive. Tests the eta = k-2t analysis:
/// even if all t Byzantine reports count toward the quorum, at least
/// k-2t honest reports are in every quorum.
class QuorumRusherPeer final : public dr::Peer {
 public:
  explicit QuorumRusherPeer(RandParams params);

  void on_start() override;

 protected:
  void on_message(sim::PeerId, const sim::Payload&) override {}

 private:
  RandParams params_;
};

}  // namespace asyncdr::proto
