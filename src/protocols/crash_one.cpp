#include "dr/world.hpp"
#include "protocols/crash_one.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace asyncdr::proto {

using crash1::Stage1;
using crash1::Stage2Req;
using crash1::Stage2Resp;

void CrashOnePeer::on_start() {
  ASYNCDR_EXPECTS_MSG(k() >= 3, "Algorithm 1 needs k >= 3");
  ensure_init();
  begin_phase("p1:own-block");
  start_phase1();
}

void CrashOnePeer::on_restart(const dr::RecoveryState& state) {
  ensure_init();
  // Reconcile the CRC-verified journal into protocol state: every replayed
  // interval was queried (and persisted) by a previous incarnation.
  const dr::JournalReplay& journal = state.journal;
  for (const Interval& iv : journal.intervals.intervals()) {
    out_.splice(iv.lo, journal.bits.slice(iv.lo, iv.length()));
  }
  known_.unite(journal.intervals);
  credit_queries_saved(known_.count());
  begin_phase("recovery");
  // Resume by querying only the bits the journal does not cover. The other
  // peers may all have terminated while this one was down, so recovery
  // cannot wait on anyone: complete directly, then push the full array
  // (the same completion-mode rescue as phase 2) and terminate.
  IntervalSet missing = IntervalSet::full(n());
  missing.subtract(known_);
  if (!missing.empty()) {
    const std::vector<std::size_t> idx = missing.to_indices();
    const BitVec values = query_indices(idx);
    for (std::size_t j = 0; j < idx.size(); ++j) out_.set(idx[j], values.get(j));
    known_.unite(missing);
    if (!journal_indices(idx, values)) return;  // killed at a sentinel again
  }
  if (crashed()) return;
  broadcast(std::make_shared<Stage1>(
      2, BitChunk::extract(out_, IntervalSet::full(n()))));
  progress_ = Progress::kDone;
  finish(out_);
}

void CrashOnePeer::ensure_init() {
  // Messages may arrive before this peer's (adversary-chosen) start time.
  if (out_.size() != n()) out_ = BitVec(n());
}

void CrashOnePeer::start_phase1() {
  if (!journal_checkpoint("phase", 1)) return;  // killed at the sentinel
  const Interval mine = blocks().bounds(id());
  if (mine.length() > 0) {
    const BitVec values = query_range(mine.lo, mine.length());
    out_.splice(mine.lo, values);
    known_.insert(mine.lo, mine.hi);
    if (!journal_bits(mine.lo, values)) return;  // killed mid-append
  }
  const IntervalSet mine_set = IntervalSet::of(mine.lo, mine.hi);
  coverage_[{1, id()}] = mine_set;
  broadcast(std::make_shared<Stage1>(1, BitChunk::extract(out_, mine_set)));
  progress_ = Progress::kPhase1Wait1;
  try_advance();
}

void CrashOnePeer::on_message(sim::PeerId from, const sim::Payload& payload) {
  ensure_init();
  if (const auto* s1 = sim::payload_as<Stage1>(payload)) {
    s1->chunk.apply_to(out_, known_);
    coverage_[{s1->phase, from}].unite(s1->chunk.indices);
    try_advance();
    return;
  }
  if (const auto* req = sim::payload_as<Stage2Req>(payload)) {
    if (progress_ == Progress::kStart || progress_ == Progress::kPhase1Wait1) {
      // The paper: delay the response until my own stage-2 wait finished.
      pending_requests_.emplace_back(from, *req);
    } else {
      answer_request(from, *req);
    }
    return;
  }
  if (const auto* resp = sim::payload_as<Stage2Resp>(payload)) {
    if (resp->has_bits) resp->chunk.apply_to(out_, known_);
    if (missing_ && resp->missing == *missing_) {
      ++responses_;
      if (resp->has_bits) got_missing_bits_ = true;
    }
    try_advance();
    return;
  }
}

void CrashOnePeer::try_advance() {
  if (progress_ == Progress::kPhase1Wait1) {
    // Stage 2 of phase 1: wait for full phase-1 stage-1 coverage from at
    // least k-1 peers (counting myself).
    std::size_t heard = 0;
    sim::PeerId unheard = sim::kNoPeer;
    const SegmentLayout layout = blocks();
    for (sim::PeerId q = 0; q < k(); ++q) {
      const Interval b = layout.bounds(q);
      const auto it = coverage_.find({1, q});
      const bool covered =
          b.length() == 0 ||
          (it != coverage_.end() &&
           it->second.count() >= b.length() &&
           [&] {
             IntervalSet want = IntervalSet::of(b.lo, b.hi);
             want.subtract(it->second);
             return want.empty();
           }());
      if (covered) {
        ++heard;
      } else {
        unheard = q;
      }
    }
    if (known_.count() == n()) {
      enter_phase2();
    } else if (heard >= k() - 1) {
      if (heard == k()) {
        enter_phase2();  // heard everyone: all bits known
      } else {
        missing_ = unheard;
        IntervalSet needed = IntervalSet::of(layout.bounds(unheard).lo,
                                             layout.bounds(unheard).hi);
        needed.subtract(known_);
        progress_ = Progress::kPhase1Wait2;
        begin_phase("p1:missing-request");
        broadcast(std::make_shared<Stage2Req>(1, unheard, needed));
        answer_pending_requests();
        try_advance();
      }
    }
    return;
  }

  if (progress_ == Progress::kPhase1Wait2) {
    // Stage 3 of phase 1: wait for k-1 responses (counting my own implicit
    // "me neither"), or any response carrying the missing bits, or full
    // knowledge through late/full messages.
    if (known_.count() == n() || got_missing_bits_ ||
        responses_ >= k() - 1) {
      enter_phase2();
    }
    return;
  }

  if (progress_ == Progress::kPhase2) {
    maybe_finish();
  }
}

void CrashOnePeer::answer_pending_requests() {
  auto pending = std::move(pending_requests_);
  pending_requests_.clear();
  for (auto& [from, req] : pending) answer_request(from, req);
}

void CrashOnePeer::answer_request(sim::PeerId from, const Stage2Req& req) {
  IntervalSet lacking = req.needed;
  lacking.subtract(known_);
  if (lacking.empty()) {
    send(from, std::make_shared<Stage2Resp>(
                   req.phase, req.missing, true,
                   BitChunk::extract(out_, req.needed)));
  } else {
    send(from,
         std::make_shared<Stage2Resp>(req.phase, req.missing, false, BitChunk{}));
  }
}

void CrashOnePeer::enter_phase2() {
  ASYNCDR_INVARIANT(progress_ == Progress::kPhase1Wait1 ||
                    progress_ == Progress::kPhase1Wait2);
  progress_ = Progress::kPhase2;
  begin_phase("p2:reassign");
  if (!journal_checkpoint("phase", 2)) return;
  answer_pending_requests();

  if (known_.count() == n()) {
    // Completion mode: push everything (the full-array fallback that keeps
    // peers stuck on a terminated peer alive).
    broadcast(std::make_shared<Stage1>(
        2, BitChunk::extract(out_, IntervalSet::full(n()))));
  } else {
    // Lacking mode: all lacking peers share the same missing peer m
    // (Lemma 2.1); query and push my reassigned share of m's block.
    ASYNCDR_INVARIANT_MSG(missing_.has_value(),
                          "lacking peer must know its missing peer");
    const IntervalSet share = phase2_share(*missing_, id());
    IntervalSet to_query = share;
    to_query.subtract(known_);
    if (!to_query.empty()) {
      const std::vector<std::size_t> idx = to_query.to_indices();
      const BitVec values = query_indices(idx);
      for (std::size_t j = 0; j < idx.size(); ++j) out_.set(idx[j], values.get(j));
      known_.unite(to_query);
      if (!journal_indices(idx, values)) return;
    }
    broadcast(std::make_shared<Stage1>(2, BitChunk::extract(out_, share)));
  }
  phase2_broadcast_done_ = true;
  maybe_finish();
}

void CrashOnePeer::maybe_finish() {
  if (progress_ == Progress::kPhase2 && phase2_broadcast_done_ &&
      known_.count() == n()) {
    progress_ = Progress::kDone;
    finish(out_);
  }
}

IntervalSet CrashOnePeer::phase2_share(sim::PeerId missing,
                                       sim::PeerId owner) const {
  ASYNCDR_EXPECTS(owner != missing);
  const Interval block = blocks().bounds(missing);
  const auto parts =
      IntervalSet::of(block.lo, block.hi).split_evenly(k() - 1);
  // Owner's index among peers != missing, in increasing ID order — a rule
  // every peer evaluates identically, so the reassignments agree.
  const std::size_t slot = owner < missing ? owner : owner - 1;
  return parts[slot];
}

}  // namespace asyncdr::proto
