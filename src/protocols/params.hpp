// Parameter derivation for the randomized Byzantine protocols (Theorems 3.7
// and 3.12), following the proof's case analysis. eta = k - 2t is the
// guaranteed number of honest peers among any quorum of k - t received
// reports; segments and thresholds are sized so every segment is picked by
// at least tau of them with high probability (Claim 5 / Lemma 3.8).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "dr/config.hpp"

namespace asyncdr::proto {

/// Derived parameters shared by the 2-cycle and multi-cycle protocols.
struct RandParams {
  std::size_t segments = 1;  ///< s: cycle-1 segment count
  std::size_t tau = 1;       ///< cycle-1 frequency threshold
  std::size_t eta = 0;       ///< k - 2t
  bool naive_fallback = false;  ///< case 3: beta >= 1/2 or k too small

  /// The paper's concentration constant (Claim 5 uses a large one for the
  /// asymptotic w.h.p. claim; at simulation scale smaller values trade the
  /// union-bound slack for non-degenerate segment counts — failure rates
  /// are *measured* in the benches instead of assumed).
  double concentration = 3.0;

  /// Divisor between the expected picks-per-segment (eta/s) and the
  /// frequency threshold tau. The paper's Claim 5 uses 2 (tau = eta/(2s));
  /// larger margins make the w.h.p. event safer at small scale for the
  /// price of admitting more (adversarial) candidates into the decision
  /// trees — extra separator queries, never wrong outputs.
  double tau_margin = 2.0;

  /// Derives (s, tau) from the model parameters per Thm 3.7's cases.
  static RandParams derive(const dr::Config& cfg, double concentration = 3.0,
                           double tau_margin = 2.0);

  /// Threshold for coarser segment counts (multi-cycle): tau_j for a cycle
  /// with `segment_count` segments.
  [[nodiscard]] std::size_t tau_for(std::size_t segment_count) const;

  [[nodiscard]] std::string to_string() const;
};

}  // namespace asyncdr::proto
