#include "protocols/naive.hpp"

namespace asyncdr::proto {

void NaivePeer::on_start() {
  begin_phase("bulk-download");
  finish(query_range(0, n()));
}

void NaivePeer::on_message(sim::PeerId, const sim::Payload&) {
  // The naive protocol is non-interactive.
}

}  // namespace asyncdr::proto
