// Byzantine attack peers. Each implements dr::Peer with adversarial
// behaviour targeted at one of the protocols; the upper-bound tests and
// benches run every protocol against the whole applicable family. Attack
// peers are always marked faulty in the World, so their queries and
// messages never count toward the reported complexities.
#pragma once

#include <memory>

#include "dr/peer.hpp"
#include "protocols/committee.hpp"
#include "protocols/params.hpp"
#include "sim/message.hpp"

namespace asyncdr::proto {

/// Sends nothing, queries nothing — indistinguishable from an immediate
/// crash, the baseline Byzantine behaviour.
class SilentByzPeer final : public dr::Peer {
 public:
  void on_start() override {}

 protected:
  void on_message(sim::PeerId, const sim::Payload&) override {}
};

/// Broadcasts syntactically valid payloads of a foreign type plus
/// malformed-size protocol payloads; honest peers must ignore both.
class GarbageByzPeer final : public dr::Peer {
 public:
  void on_start() override;

 protected:
  void on_message(sim::PeerId, const sim::Payload&) override;

 private:
  struct Noise final : sim::Payload {
    [[nodiscard]] std::size_t size_bits() const override { return 64; }
    [[nodiscard]] std::string type_name() const override { return "attack::Noise"; }
  };
  std::size_t sent_ = 0;
};

/// Committee-protocol attacker: votes wrong values on its committee bits.
class CommitteeLiarPeer final : public dr::Peer {
 public:
  enum class Mode {
    kFlipAll,      ///< the exact complement of the truth on every bit
    kRandom,       ///< random values
    kEquivocate,   ///< truth to even-ID receivers, complement to odd
  };
  explicit CommitteeLiarPeer(Mode mode) : mode_(mode) {}

  void on_start() override;

 protected:
  void on_message(sim::PeerId, const sim::Payload&) override {}

 private:
  Mode mode_;
};

/// Randomized-protocol attacker: every Byzantine instance reports the SAME
/// fabricated string for a target segment in every cycle (vote stuffing —
/// with t >= tau the fake enters every honest decision tree). The fake is
/// the bitwise complement of the truth, maximizing separator queries.
class VoteStuffPeer final : public dr::Peer {
 public:
  /// cycles = 1 for the 2-cycle protocol, total-1 for the multi-cycle one.
  VoteStuffPeer(RandParams params, std::size_t target_segment);

  void on_start() override;

 protected:
  void on_message(sim::PeerId, const sim::Payload&) override {}

 private:
  RandParams params_;
  std::size_t target_;
};

/// Randomized-protocol attacker: sends a DIFFERENT random fake string to
/// every receiver for a random segment each cycle (equivocation). Each fake
/// gets one vote per honest receiver, so it dilutes below tau — honest
/// peers should shrug it off.
class EquivocatorPeer final : public dr::Peer {
 public:
  explicit EquivocatorPeer(RandParams params);

  void on_start() override;

 protected:
  void on_message(sim::PeerId, const sim::Payload&) override {}

 private:
  RandParams params_;
};

}  // namespace asyncdr::proto
