#include "dr/world.hpp"
#include "protocols/byzmulti.hpp"

#include "common/check.hpp"
#include "protocols/decision_tree.hpp"

namespace asyncdr::proto {

MultiCyclePeer::MultiCyclePeer(RandParams params) : params_(params) {}

void MultiCyclePeer::init_structures() {
  if (!layouts_.empty()) return;
  layouts_.emplace_back(n(), params_.segments);
  while (layouts_.back().count() > 1) {
    layouts_.push_back(layouts_.back().coarsen());
  }
  total_cycles_ = layouts_.size();
  for (const SegmentLayout& layout : layouts_) {
    banks_.emplace_back(layout.count());
  }
  reporters_.resize(total_cycles_);
}

void MultiCyclePeer::on_start() {
  if (params_.naive_fallback) {
    begin_phase("bulk-download");
    finish(query_range(0, n()));
    return;
  }
  init_structures();

  // Cycle 1 = Protocol 4's first cycle: pick, query in full, report.
  begin_phase("cycle-1");
  cycle_ = 1;
  my_pick_ = static_cast<std::size_t>(rng().below(layouts_[0].count()));
  const Interval b = layouts_[0].bounds(my_pick_);
  my_value_ = query_range(b.lo, b.length());
  banks_[0].record(my_pick_, id(), my_value_);
  reporters_[0].insert(id());
  broadcast(std::make_shared<rnd::Report>(1, my_pick_, my_value_));
  started_ = true;
  try_advance();
}

void MultiCyclePeer::on_message(sim::PeerId from, const sim::Payload& payload) {
  if (params_.naive_fallback) return;
  const auto* report = sim::payload_as<rnd::Report>(payload);
  if (report == nullptr) return;
  init_structures();
  // Reports are broadcast in cycles 1 .. total-1 only (nobody consumes a
  // final-cycle report).
  if (report->cycle < 1 || report->cycle >= total_cycles_) return;
  const SegmentLayout& layout = layouts_[report->cycle - 1];
  if (report->seg >= layout.count()) return;
  if (report->value.size() != layout.length(report->seg)) return;
  banks_[report->cycle - 1].record(report->seg, from, report->value);
  reporters_[report->cycle - 1].insert(from);
  try_advance();
}

void MultiCyclePeer::try_advance() {
  if (terminated() || !started_) return;
  const std::size_t quorum = k() - world().config().max_faulty();
  while (cycle_ < total_cycles_ &&
         reporters_[cycle_ - 1].size() >= quorum) {
    start_cycle(cycle_ + 1);
    if (terminated()) return;
  }
}

void MultiCyclePeer::start_cycle(std::size_t j) {
  ASYNCDR_INVARIANT(j >= 2 && j <= total_cycles_);
  begin_phase("cycle-" + std::to_string(j));
  const SegmentLayout& layout = layouts_[j - 1];
  const SegmentLayout& finer = layouts_[j - 2];

  const auto pick = static_cast<std::size_t>(rng().below(layout.count()));

  // Determine the picked coarse segment from its cycle-(j-1) halves.
  BitVec value(layout.length(pick));
  std::size_t at = 0;
  for (std::size_t child : finer.children_of(pick)) {
    const BitVec part = determine_segment(j - 1, child);
    value.splice(at, part);
    at += part.size();
  }
  ASYNCDR_INVARIANT(at == value.size());

  cycle_ = j;
  my_pick_ = pick;
  my_value_ = value;

  if (j < total_cycles_) {
    banks_[j - 1].record(pick, id(), value);
    reporters_[j - 1].insert(id());
    broadcast(std::make_shared<rnd::Report>(j, pick, value));
    return;
  }
  // Final cycle: the single segment is the whole input.
  finish(my_value_);
}

BitVec MultiCyclePeer::determine_segment(std::size_t j, std::size_t seg) {
  const SegmentLayout& layout = layouts_[j - 1];
  const Interval b = layout.bounds(seg);
  // My own previous pick needs no resolution.
  if (j == cycle_ && seg == my_pick_) return my_value_;

  const std::size_t tau = params_.tau_for(layout.count());
  const std::vector<BitVec> candidates = banks_[j - 1].frequent(seg, tau);
  if (candidates.empty()) {
    ++fallback_segments_;
    return query_range(b.lo, b.length());
  }
  const DecisionTree tree(candidates);
  const BitVec& winner = tree.determine(
      [&](std::size_t index) {
        ++tree_queries_;
        return query(index);
      },
      b.lo);
  return winner;
}

}  // namespace asyncdr::proto
