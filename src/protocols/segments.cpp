#include "protocols/segments.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace asyncdr::proto {

SegmentLayout::SegmentLayout(std::size_t n, std::size_t count) : n_(n) {
  ASYNCDR_EXPECTS(n >= 1);
  // count may exceed n, in which case trailing segments are empty (the
  // crash protocols hand every peer a block even when k > n).
  ASYNCDR_EXPECTS(count >= 1);
  bounds_.reserve(count + 1);
  // Equal split: the first (n mod count) segments get one extra bit.
  const std::size_t base = n / count;
  const std::size_t extra = n % count;
  std::size_t pos = 0;
  bounds_.push_back(0);
  for (std::size_t i = 0; i < count; ++i) {
    pos += base + (i < extra ? 1 : 0);
    bounds_.push_back(pos);
  }
  ASYNCDR_ENSURES(pos == n);
}

SegmentLayout::SegmentLayout(std::vector<std::size_t> boundary_points)
    : n_(boundary_points.back()), bounds_(std::move(boundary_points)) {}

Interval SegmentLayout::bounds(std::size_t id) const {
  ASYNCDR_EXPECTS(id < count());
  return Interval{bounds_[id], bounds_[id + 1]};
}

std::size_t SegmentLayout::segment_of(std::size_t i) const {
  ASYNCDR_EXPECTS(i < n_);
  const auto it = std::upper_bound(bounds_.begin(), bounds_.end(), i);
  return static_cast<std::size_t>(it - bounds_.begin()) - 1;
}

SegmentLayout SegmentLayout::coarsen() const {
  ASYNCDR_EXPECTS_MSG(count() > 1, "cannot coarsen a single segment");
  std::vector<std::size_t> pts;
  pts.reserve(count() / 2 + 2);
  for (std::size_t i = 0; i < bounds_.size(); i += 2) pts.push_back(bounds_[i]);
  if (pts.back() != n_) pts.push_back(n_);
  return SegmentLayout(std::move(pts));
}

std::vector<std::size_t> SegmentLayout::children_of(std::size_t coarse_id) const {
  ASYNCDR_EXPECTS(coarse_id < coarsen().count());
  std::vector<std::size_t> kids{2 * coarse_id};
  if (2 * coarse_id + 1 < count()) kids.push_back(2 * coarse_id + 1);
  return kids;
}

}  // namespace asyncdr::proto
