// One-stop harness: declare a Scenario (model parameters, protocol factory,
// fault pattern, scheduling adversary), run it, get a RunReport. Tests and
// benches are thin layers over this.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "adversary/crash_plan.hpp"
#include "adversary/latency.hpp"
#include "common/bitvec.hpp"
#include "dr/world.hpp"
#include "protocols/attacks.hpp"
#include "protocols/attacks2.hpp"
#include "protocols/byz2cycle.hpp"
#include "protocols/byzmulti.hpp"
#include "protocols/committee.hpp"
#include "protocols/crash_multi.hpp"
#include "protocols/crash_one.hpp"
#include "protocols/naive.hpp"
#include "protocols/params.hpp"

namespace asyncdr::proto {

/// Builds one peer for the given world configuration and ID.
using PeerFactory =
    std::function<std::unique_ptr<dr::Peer>(const dr::Config&, sim::PeerId)>;

/// Builds the scheduling adversary for a world (given access to the config
/// so it can derive a seeded RNG).
using LatencyFactory =
    std::function<std::unique_ptr<sim::LatencyPolicy>(const dr::Config&)>;

/// Builds a beyond-model delivery stressor (chaos layer). A scenario with a
/// stressor installed runs OUTSIDE the paper's model: its outcome measures
/// graceful degradation, not in-model correctness.
using StressorFactory =
    std::function<std::unique_ptr<sim::DeliveryStressor>(const dr::Config&)>;

/// Crash-recovery side of a scenario. When `factory` is set the world runs
/// with enable_recovery: restart instructions in the crash plan become
/// valid, and the plan below can additionally kill peers at journal
/// crash-point sentinels and corrupt journals mid-run.
struct RecoveryPlan {
  PeerFactory factory;  ///< null = crash-stop world (default)
  dr::RecoveryOptions options;

  /// Kill `peer` the nth time it hits the given journal sentinel; revive it
  /// `restart_delay` later (plus backoff/jitter), or leave it dead if the
  /// delay is negative. The victim counts against the fault budget.
  struct CrashPointKill {
    sim::PeerId peer = sim::kNoPeer;
    dr::CrashPoint point = dr::CrashPoint::kAppendCommit;
    std::size_t nth = 1;
    sim::Time restart_delay = 1.0;
  };
  std::vector<CrashPointKill> kills;

  /// Journal corruption injected at virtual time `at`: the revived peer
  /// must detect it and fall back toward cold start without over-claiming.
  struct Corruption {
    enum class Mode { kTruncateTail, kFlipBit, kClear };
    sim::PeerId peer = sim::kNoPeer;
    Mode mode = Mode::kTruncateTail;
    std::size_t amount = 0;  ///< bytes to drop / bit index to flip
    sim::Time at = 0;
  };
  std::vector<Corruption> corruptions;

  [[nodiscard]] bool enabled() const { return factory != nullptr; }
};

/// A complete experiment description.
struct Scenario {
  dr::Config cfg;
  std::optional<BitVec> input;  ///< default: random, derived from cfg.seed

  PeerFactory honest;             ///< required
  PeerFactory byzantine;          ///< required iff byz_ids non-empty
  std::vector<sim::PeerId> byz_ids;

  adv::CrashPlan crashes;
  RecoveryPlan recovery;   ///< crash-recovery model; default: crash-stop
  LatencyFactory latency;  ///< default: seeded UniformLatency
  StressorFactory stressor;  ///< beyond-model; default: none
  std::map<sim::PeerId, sim::Time> start_times;

  std::size_t max_events = sim::Engine::kDefaultEventBudget;

  /// Instrumentation hook: called on the fully assembled world (peers,
  /// crashes, start times installed) just before run(). Enable tracing or
  /// attach metrics collectors here.
  std::function<void(dr::World&)> instrument;
  /// Called with the world still alive and the finished report — the only
  /// way to read world-owned state (the trace, source counters) through a
  /// run_scenario call.
  std::function<void(dr::World&, const dr::RunReport&)> post_run;
};

/// Deterministic pseudo-random input array.
BitVec random_input(std::size_t n, std::uint64_t seed);

/// Samples `count` distinct Byzantine peer IDs from [0, cfg.k).
std::vector<sim::PeerId> pick_faulty(const dr::Config& cfg, std::size_t count,
                                     std::uint64_t salt = 0);

/// Assembles the world and runs it.
dr::RunReport run_scenario(const Scenario& scenario);

// ---- Honest-protocol factories ----
PeerFactory make_naive();
PeerFactory make_crash_one();
PeerFactory make_crash_multi(CrashMultiPeer::Options opts = {});
PeerFactory make_committee(CommitteePeer::Options opts = {});
/// Derives RandParams from the config with the given concentration constant.
PeerFactory make_two_cycle(double concentration = 3.0, double tau_margin = 2.0);
PeerFactory make_multi_cycle(double concentration = 3.0, double tau_margin = 2.0);
/// Explicit-parameter variants (used by the lower-bound experiments to force
/// a sub-n-query protocol into the majority-Byzantine regime, and by the
/// threshold-sensitivity ablation).
PeerFactory make_two_cycle_with(RandParams params);
PeerFactory make_multi_cycle_with(RandParams params);

// ---- Byzantine attack factories ----
PeerFactory make_silent_byz();
PeerFactory make_garbage_byz();
PeerFactory make_committee_liar(CommitteeLiarPeer::Mode mode);
PeerFactory make_vote_stuffer(double concentration = 3.0,
                              std::size_t target_segment = 0);
PeerFactory make_equivocator(double concentration = 3.0);
PeerFactory make_comb_stuffer(double concentration = 3.0,
                              std::size_t target_segment = 0);
PeerFactory make_quorum_rusher(double concentration = 3.0);

// ---- Scheduling adversary factories ----
LatencyFactory uniform_latency(sim::Time lo = 0.05, sim::Time hi = 1.0);
LatencyFactory fixed_latency(sim::Time delay = 1.0);
LatencyFactory seniority_latency();
LatencyFactory sender_delay_latency(std::vector<sim::PeerId> slow_senders,
                                    sim::Time slow, sim::Time fast = 0.01);

}  // namespace asyncdr::proto
