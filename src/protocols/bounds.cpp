#include "protocols/bounds.hpp"

#include <algorithm>
#include <cmath>

namespace asyncdr::proto::bounds {

namespace {
std::size_t ceil_div(std::size_t a, std::size_t b) { return (a + b - 1) / b; }
}  // namespace

std::size_t naive_q(const dr::Config& cfg) { return cfg.n; }

std::size_t crash_one_q(const dr::Config& cfg) {
  const std::size_t block = ceil_div(cfg.n, cfg.k);
  return block + ceil_div(block, cfg.k - 1);
}

std::size_t crash_multi_q(const dr::Config& cfg) {
  const std::size_t t = cfg.max_faulty();
  const std::size_t threshold = std::max(ceil_div(cfg.n, cfg.k), 2 * cfg.k);
  // Phase r: each peer's share is its 1/k cut of every dead peer's
  // reassigned set — at most ceil(u_r/k) plus one rounding bit per dead set
  // (<= t of them). At most t peers go unheard, so
  // u_{r+1} <= t * (ceil(u_r/k) + t). The protocol stops phasing at the
  // direct-query threshold (or its phase cap) and queries the rest.
  // Per phase, the hashed assignment gives each peer a near-u/k share and
  // leaves at most ~u*t/k bits with the <= t unheard peers, both up to
  // balls-in-bins concentration slack (3 sigma + a small additive floor).
  // The recurrence majorizes the real execution phase by phase; since the
  // real protocol may exit at ANY phase whose unknown count dipped below
  // the threshold — paying up to `threshold` direct queries — the bound
  // adds max(threshold, final unknown) rather than the final unknown alone.
  const auto slack = [](double mean) { return 3.0 * std::sqrt(mean) + 8.0; };
  double unknown = static_cast<double>(cfg.n);
  double total = 0;
  const double kd = static_cast<double>(cfg.k);
  const double td = static_cast<double>(t);
  for (std::size_t r = 0; r < 220 && unknown > static_cast<double>(threshold);
       ++r) {
    const double share_mean = unknown / kd;
    total += share_mean + slack(share_mean);
    const double next_mean = unknown * td / kd;
    const double next = next_mean + slack(next_mean);
    if (next >= unknown) break;  // stall: protocol caps and queries the rest
    unknown = next;
  }
  return static_cast<std::size_t>(std::ceil(total)) +
         std::max(threshold, static_cast<std::size_t>(std::ceil(unknown)));
}

std::size_t committee_q(const dr::Config& cfg) {
  const std::size_t c = 2 * cfg.max_faulty() + 1;
  return ceil_div(cfg.n * c, cfg.k) + 1;
}

std::size_t committee_m(const dr::Config& cfg) {
  const std::size_t payload_bits = committee_q(cfg) + 64;
  const std::size_t units = ceil_div(payload_bits, cfg.message_bits);
  return cfg.k * (cfg.k - 1) * units;
}

double committee_t(const dr::Config& cfg) {
  const std::size_t payload_bits = committee_q(cfg) + 64;
  const std::size_t units = ceil_div(payload_bits, cfg.message_bits);
  return static_cast<double>(units - 1) + 1.0;
}

std::size_t two_cycle_q(const dr::Config& cfg, const RandParams& params) {
  if (params.naive_fallback) return cfg.n;
  // Segment query + decision-tree separators. Every received string can
  // contribute at most one separator per tree level it survives; the
  // paper's bound is sum_i R_i <= k (one report per peer). Allow the k
  // Byzantine-free reports plus the t stuffed ones per segment in the worst
  // case: 2k is a comfortable whp allowance.
  return ceil_div(cfg.n, params.segments) + 2 * cfg.k + 1;
}

std::size_t multi_cycle_q(const dr::Config& cfg, const RandParams& params) {
  if (params.naive_fallback) return cfg.n;
  const auto cycles = static_cast<std::size_t>(
      std::ceil(std::log2(static_cast<double>(params.segments)))) + 1;
  // n/s for cycle 1, then at most (reports-per-cycle) separators per cycle.
  return ceil_div(cfg.n, params.segments) + 2 * cfg.k * cycles + 1;
}

double majority_attack_success_lb(std::size_t q, std::size_t n) {
  if (q >= n) return 0.0;
  return 1.0 - static_cast<double>(q) / static_cast<double>(n);
}

}  // namespace asyncdr::proto::bounds
