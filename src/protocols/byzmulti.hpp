// Theorem 3.12: the multi-cycle randomized Download protocol. Cycle 1 is
// Protocol 4's first cycle (s segments). In every later cycle j, segments
// double in length (adjacent pairs merge); each peer picks one cycle-j
// segment uniformly at random, *determines* it by resolving the decision
// trees of its two cycle-(j-1) halves against the tau-frequent strings of
// the previous cycle, and broadcasts the result. After ~log2(s) cycles one
// segment spans the whole input and every peer determines — and therefore
// learns — all of X, w.h.p. (Lemmas 3.8 and 3.10).
//
// Expected Q = O~(n/s + k); no peer ever queries a full segment after
// cycle 1 except on the (measured, w.h.p.-rare) fallback path.
#pragma once

#include <map>
#include <set>
#include <vector>

#include "dr/peer.hpp"
#include "protocols/byz2cycle.hpp"
#include "protocols/frequent.hpp"
#include "protocols/params.hpp"
#include "protocols/segments.hpp"

namespace asyncdr::proto {

/// An honest peer of the multi-cycle protocol.
class MultiCyclePeer final : public dr::Peer {
 public:
  explicit MultiCyclePeer(RandParams params);

  void on_start() override;

  [[nodiscard]] std::size_t tree_queries() const { return tree_queries_; }
  [[nodiscard]] std::size_t fallback_segments() const { return fallback_segments_; }
  [[nodiscard]] std::size_t cycles_run() const { return cycle_; }

 protected:
  void on_message(sim::PeerId from, const sim::Payload& payload) override;

 private:
  void init_structures();
  void try_advance();
  void start_cycle(std::size_t j);
  /// Resolves one cycle-`j` segment from the cycle-j reports (1-based j).
  BitVec determine_segment(std::size_t j, std::size_t seg);

  RandParams params_;
  // layouts_[j-1] is the layout of cycle j; the last one has one segment.
  std::vector<SegmentLayout> layouts_;
  std::vector<StringBank> banks_;               // banks_[j-1]: cycle-j reports
  std::vector<std::set<sim::PeerId>> reporters_;  // per cycle
  std::size_t total_cycles_ = 0;

  std::size_t cycle_ = 0;  // current cycle (1-based); 0 = not started
  std::size_t my_pick_ = 0;
  BitVec my_value_;
  bool started_ = false;
  std::size_t tree_queries_ = 0;
  std::size_t fallback_segments_ = 0;
};

}  // namespace asyncdr::proto
