// Multi-threaded chaos sweeps. Each dr::World is fully independent (a run
// is a pure function of its Scenario), so the protocol × seed grid fans out
// over the campaign substrate (src/campaign): work-stealing workers claim
// cases off a shared cursor and results are re-assembled in grid order,
// making the rendered report a deterministic function of the sweep options
// alone — byte-identical regardless of thread count or interleaving. The
// substrate's telemetry (JSONL event stream, progress line, summary JSON)
// is available through SweepOptions::telemetry.
//
// Every failing case is shrunk before reporting: the shrinker tightens the
// sampling caps (input length, peer count, fault count, latency spread) one
// dimension at a time, keeping a candidate only if the failure persists,
// until no dimension can shrink further. The result is a one-line repro
// (CLI flags) for the smallest failing member of the original sample space.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "campaign/runner.hpp"
#include "chaos/injectors.hpp"
#include "dr/world.hpp"

namespace asyncdr::chaos {

/// One executed case.
struct CaseResult {
  std::string protocol;
  std::uint64_t seed = 0;
  std::string description;
  dr::RunReport report;
  /// Empty = pass. Otherwise names the violated guarantee ("download
  /// predicate violated: ...", "Q 812 > bound 640", ...).
  std::string violation;
  /// Beyond-model case that degraded (tracked apart from violations).
  bool degraded = false;
};

/// The minimal failing configuration a violation shrank to.
struct ShrunkRepro {
  std::string protocol;
  std::uint64_t seed = 0;
  ChaosOptions options;   ///< tightened caps
  dr::Config cfg;         ///< shape of the shrunk case
  std::string violation;  ///< violation observed at the shrunk point
  std::size_t shrink_runs = 0;  ///< executions the shrinker spent
  /// The one-line repro: `asyncdr_cli chaos ...` flags reproducing this
  /// exact case.
  std::string command_line;
  /// Metrics snapshot (asyncdr-metrics-v1 JSON) from one rerun of the
  /// shrunk case with a collector attached — the machine-readable side of
  /// the failure report (CI uploads these as artifacts).
  std::string metrics_json;
  /// Critical-path analysis of the same traced rerun: the rendered text
  /// tree and its JSON form. On stalls this is the critical prefix of the
  /// stuck run — the "what chain got it here" artifact. Empty only if the
  /// rerun recorded no trace.
  std::string critpath_text;
  std::string critpath_json;
};

struct SweepOptions {
  /// Registry names to sweep. Empty = the deterministic default grid
  /// (naive, crash_one, crash_multi, committee).
  std::vector<std::string> protocols;
  std::uint64_t seed_base = 1;
  std::size_t seeds = 100;
  /// 0 = auto: ASYNCDR_THREADS env override if set, else clamped hardware
  /// concurrency (see common/threads.hpp).
  std::size_t threads = 0;
  ChaosOptions chaos;
  bool shrink = true;
  /// Per-run event budget. Sweeps use a tighter budget than the default so
  /// a runaway case fails fast into a stall report.
  std::size_t max_events = 2'000'000;
  /// Campaign observability opt-ins (progress line, JSONL event stream,
  /// summary JSON); all off by default.
  campaign::TelemetryOptions telemetry;
};

struct SweepReport {
  std::size_t cases = 0;
  std::size_t passed = 0;
  std::size_t degraded = 0;  ///< beyond-model cases that failed gracefully
  std::vector<CaseResult> failures;  ///< in grid order
  std::vector<ShrunkRepro> repros;   ///< parallel to failures (if shrink)
  /// Pass/fail counts per protocol, in grid order.
  std::vector<std::pair<std::string, std::pair<std::size_t, std::size_t>>>
      per_protocol;
  /// Every executed case, in grid order (verbose rendering / tests).
  std::vector<CaseResult> cases_detail;

  /// Deterministic rendering (the CLI's output).
  [[nodiscard]] std::string to_string(bool verbose = false) const;
};

class ChaosRunner {
 public:
  explicit ChaosRunner(SweepOptions options);

  /// Runs the sweep: fan out, collect, shrink failures.
  [[nodiscard]] SweepReport run() const;

  /// Samples and executes one case.
  static CaseResult run_case(const ProtocolProfile& profile,
                             std::uint64_t seed, const ChaosOptions& options,
                             std::size_t max_events);

  /// Greedily shrinks a failing (profile, seed) to minimal caps. With an
  /// event stream attached, every accepted shrink step and the final repro
  /// line are emitted into the campaign log.
  static ShrunkRepro shrink_failure(const ProtocolProfile& profile,
                                    std::uint64_t seed, ChaosOptions options,
                                    std::size_t max_events,
                                    campaign::EventStream* events = nullptr);

  /// The default deterministic protocol grid.
  static std::vector<std::string> default_protocols();

 private:
  SweepOptions options_;
};

}  // namespace asyncdr::chaos
