#include "chaos/runner.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <utility>

#include "campaign/runner.hpp"
#include "common/check.hpp"
#include "obs/collect.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"

namespace asyncdr::chaos {

namespace {

std::string fmt(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  return buf;
}

std::string join_ids(const std::vector<sim::PeerId>& ids, std::size_t cap = 8) {
  std::ostringstream os;
  for (std::size_t i = 0; i < ids.size() && i < cap; ++i) {
    if (i > 0) os << ',';
    os << ids[i];
  }
  if (ids.size() > cap) os << ",... (" << ids.size() << " total)";
  return os.str();
}

/// Classifies a finished run against the Download predicate and the
/// profile's closed-form bounds. Empty = pass. At most one violation is
/// reported, most fundamental first (a stalled run's Q is meaningless).
std::string classify(const ProtocolProfile& profile, const ChaosCase& cs,
                     const dr::RunReport& report) {
  std::ostringstream os;
  if (report.budget_exhausted) {
    os << "stalled: event budget exhausted after " << report.events
       << " events";
  } else if (!report.all_terminated) {
    os << "download predicate violated: " << report.unterminated_peers.size()
       << " nonfaulty peer(s) never terminated (peers "
       << join_ids(report.unterminated_peers) << ")";
  } else if (!report.all_correct) {
    os << "download predicate violated: " << report.incorrect_peers.size()
       << " nonfaulty peer(s) output a wrong array (peers "
       << join_ids(report.incorrect_peers) << ")";
  } else if (cs.q_bound > 0 && report.query_complexity > cs.q_bound) {
    os << "Q " << report.query_complexity << " > bound " << cs.q_bound;
  } else if (cs.m_bound > 0 && report.message_complexity > cs.m_bound) {
    os << "M " << report.message_complexity << " > bound " << cs.m_bound;
  } else if (cs.t_bound > 0 && cs.timing_faithful &&
             report.time_complexity > cs.t_bound + 1e-9) {
    os << "T " << fmt(report.time_complexity) << " > bound "
       << fmt(cs.t_bound);
  } else {
    return {};
  }
  if (profile.whp) {
    os << " [whp guarantee: may be a rare legitimate failure]";
  }
  return os.str();
}

std::string repro_command(const std::string& protocol, std::uint64_t seed,
                          const ChaosOptions& options) {
  std::ostringstream os;
  os << "asyncdr_cli chaos --protocols " << protocol << " --seed-base " << seed
     << " --seeds 1 --no-shrink 1 " << options.to_flags();
  return os.str();
}

}  // namespace

ChaosRunner::ChaosRunner(SweepOptions options) : options_(std::move(options)) {
  ASYNCDR_EXPECTS_MSG(options_.seeds > 0, "SweepOptions::seeds must be > 0");
  ASYNCDR_EXPECTS_MSG(options_.max_events > 0,
                      "SweepOptions::max_events must be > 0");
}

std::vector<std::string> ChaosRunner::default_protocols() {
  return {"naive", "crash_one", "crash_multi", "committee"};
}

CaseResult ChaosRunner::run_case(const ProtocolProfile& profile,
                                 std::uint64_t seed,
                                 const ChaosOptions& options,
                                 std::size_t max_events) {
  ChaosCase cs = sample_case(profile, seed, options);
  cs.scenario.max_events = max_events;

  CaseResult out;
  out.protocol = profile.name;
  out.seed = seed;
  out.description = cs.description;
  out.report = proto::run_scenario(cs.scenario);

  const std::string violation = classify(profile, cs, out.report);
  if (violation.empty()) return out;
  if (cs.beyond_model) {
    // Outside the paper's model the guarantees don't apply; the failure is
    // recorded as graceful-degradation data, not a correctness violation.
    out.degraded = true;
  } else {
    out.violation = violation;
  }
  return out;
}

ShrunkRepro ChaosRunner::shrink_failure(const ProtocolProfile& profile,
                                        std::uint64_t seed,
                                        ChaosOptions options,
                                        std::size_t max_events,
                                        campaign::EventStream* events) {
  ShrunkRepro out;
  out.protocol = profile.name;
  out.seed = seed;

  // Accepted shrink steps stream into the campaign log (when attached), so
  // an operator tailing the JSONL sees the minimisation converge live.
  const auto emit_step = [&](const char* dimension, double value) {
    if (events == nullptr) return;
    obs::Json fields = obs::Json::object();
    fields["protocol"] = profile.name;
    fields["seed"] = seed;
    fields["dimension"] = dimension;
    fields["value"] = value;
    fields["shrink_runs"] = static_cast<std::uint64_t>(out.shrink_runs);
    events->emit("shrink_step", fields);
  };

  // Sampling only reads the caps through clamps, so tightening a cap to the
  // currently sampled value is a free first shrink step: it cannot change
  // the case, and it gives each dimension a tight starting point.
  {
    const ChaosCase cs = sample_case(profile, seed, options);
    options.n_cap = std::min(options.n_cap, cs.cfg.n);
    options.k_cap = std::min(options.k_cap, cs.cfg.k);
    if (cs.faults > 0) options.fault_cap = std::min(options.fault_cap, cs.faults);
  }

  // A candidate counts as still-failing if it produces ANY violation — the
  // classic shrinking rule: chase the smallest failure, not this failure.
  const auto still_fails = [&](const ChaosOptions& candidate,
                               std::string* violation) {
    ++out.shrink_runs;
    const CaseResult r = run_case(profile, seed, candidate, max_events);
    if (r.violation.empty()) return false;
    *violation = r.violation;
    return true;
  };

  std::string violation;
  ASYNCDR_EXPECTS_MSG(still_fails(options, &violation),
                      "shrink_failure called on a case that does not fail");

  bool progressed = true;
  while (progressed) {
    progressed = false;

    // Input length: halve toward the 16-bit floor.
    while (options.n_cap > 16) {
      ChaosOptions candidate = options;
      candidate.n_cap = std::max<std::size_t>(16, candidate.n_cap / 2);
      if (!still_fails(candidate, &violation)) break;
      options = candidate;
      progressed = true;
      emit_step("n_cap", static_cast<double>(options.n_cap));
    }

    // Peer count: halve, then single steps, toward the 3-peer floor.
    while (options.k_cap > 3) {
      ChaosOptions candidate = options;
      candidate.k_cap = std::max<std::size_t>(3, candidate.k_cap / 2);
      if (still_fails(candidate, &violation)) {
        options = candidate;
        progressed = true;
        emit_step("k_cap", static_cast<double>(options.k_cap));
        continue;
      }
      candidate = options;
      candidate.k_cap -= 1;
      if (!still_fails(candidate, &violation)) break;
      options = candidate;
      progressed = true;
      emit_step("k_cap", static_cast<double>(options.k_cap));
    }

    // Fault count: one victim at a time.
    while (options.fault_cap > 1 &&
           options.fault_cap != std::numeric_limits<std::size_t>::max()) {
      ChaosOptions candidate = options;
      candidate.fault_cap -= 1;
      if (!still_fails(candidate, &violation)) break;
      options = candidate;
      progressed = true;
      emit_step("fault_cap", static_cast<double>(options.fault_cap));
    }

    // Latency spread: halve, then snap to the fully synchronous schedule.
    while (options.latency_spread > 0) {
      ChaosOptions candidate = options;
      candidate.latency_spread =
          candidate.latency_spread < 0.05 ? 0.0 : candidate.latency_spread / 2;
      if (!still_fails(candidate, &violation)) break;
      options = candidate;
      progressed = true;
      emit_step("latency_spread", options.latency_spread);
    }
  }

  out.options = options;
  out.violation = violation;
  out.cfg = sample_case(profile, seed, options).cfg;
  out.command_line = repro_command(profile.name, seed, options);
  if (events != nullptr) {
    obs::Json fields = obs::Json::object();
    fields["protocol"] = profile.name;
    fields["seed"] = seed;
    fields["violation"] = out.violation;
    fields["shrink_runs"] = static_cast<std::uint64_t>(out.shrink_runs);
    fields["command"] = out.command_line;
    events->emit("repro", fields);
  }

  // One more run of the shrunk case with a collector and tracing attached,
  // so the repro ships with a machine-readable metrics snapshot AND the
  // causal analysis of the failure (critical path, or the critical prefix
  // when the case stalls). Observers are passive: the instrumented rerun is
  // the same execution the shrinker just classified.
  {
    ChaosCase cs = sample_case(profile, seed, options);
    cs.scenario.max_events = max_events;
    obs::MetricsRegistry registry;
    obs::RunMetricsCollector collector(registry);
    cs.scenario.instrument = [&](dr::World& world) {
      collector.attach(world);
      world.enable_trace();
    };
    cs.scenario.post_run = [&](dr::World&, const dr::RunReport& report) {
      collector.finalize(report);
    };
    const dr::RunReport rerun = proto::run_scenario(cs.scenario);
    out.metrics_json = registry.to_json_string();
    if (rerun.critical_path.has_value()) {
      out.critpath_text = rerun.critical_path->to_string();
      out.critpath_json = obs::critical_path_json(*rerun.critical_path).dump(1);
      out.critpath_json.push_back('\n');
    }
  }
  return out;
}

SweepReport ChaosRunner::run() const {
  std::vector<std::string> names = options_.protocols;
  if (names.empty()) names = default_protocols();
  std::vector<const ProtocolProfile*> profiles;
  profiles.reserve(names.size());
  for (const std::string& name : names) {
    const ProtocolProfile* p = find_protocol(name);
    ASYNCDR_EXPECTS_MSG(p != nullptr, "unknown chaos protocol: " + name);
    profiles.push_back(p);
  }

  const std::size_t seeds = options_.seeds;
  const std::size_t total = profiles.size() * seeds;
  std::vector<CaseResult> results(total);

  // Fan the protocol-major grid over the campaign substrate. Each case
  // builds its own dr::World, so workers share nothing but the substrate's
  // cursor; results land at their grid index, making the report order (and
  // bytes) independent of scheduling. The substrate also carries the
  // sweep's telemetry: event stream, progress line, summary JSON.
  campaign::CampaignOptions copts;
  copts.name = "chaos";
  copts.total = total;
  copts.threads = options_.threads;
  copts.seed_base = options_.seed_base;
  const std::uint64_t seed_base = options_.seed_base;
  copts.seed_fn = [seed_base, seeds](std::size_t i) {
    return seed_base + static_cast<std::uint64_t>(i % seeds);
  };
  copts.telemetry = options_.telemetry;
  campaign::Campaign camp(std::move(copts));
  camp.run([&](std::size_t i, std::uint64_t seed) {
    const ProtocolProfile& profile = *profiles[i / seeds];
    CaseResult r = run_case(profile, seed, options_.chaos, options_.max_events);
    campaign::RunOutcome outcome;
    outcome.label = profile.name;
    outcome.status = !r.violation.empty() ? obs::RunStatus::kFailed
                     : r.degraded         ? obs::RunStatus::kDegraded
                                          : obs::RunStatus::kOk;
    outcome.detail = r.violation;
    outcome.report = r.report;
    results[i] = std::move(r);
    return outcome;
  });

  SweepReport report;
  report.cases = total;
  for (std::size_t p = 0; p < profiles.size(); ++p) {
    std::size_t passed = 0;
    std::size_t failed = 0;
    for (std::size_t s = 0; s < seeds; ++s) {
      CaseResult& r = results[p * seeds + s];
      if (!r.violation.empty()) {
        ++failed;
        report.failures.push_back(r);
      } else {
        ++passed;
        if (r.degraded) ++report.degraded;
      }
    }
    report.passed += passed;
    report.per_protocol.emplace_back(profiles[p]->name,
                                     std::pair{passed, failed});
  }

  // Shrinking runs serially, in grid order: it is rare (failures only) and
  // determinism matters more than latency here. Shrink steps stream into
  // the campaign log before its campaign_finished terminator.
  if (options_.shrink) {
    for (const CaseResult& failure : report.failures) {
      report.repros.push_back(shrink_failure(*find_protocol(failure.protocol),
                                             failure.seed, options_.chaos,
                                             options_.max_events,
                                             camp.events()));
    }
  }
  camp.finish();
  report.cases_detail = std::move(results);
  return report;
}

std::string SweepReport::to_string(bool verbose) const {
  std::ostringstream os;
  os << "chaos sweep: " << cases << " cases, " << passed << " passed, "
     << failures.size() << " failed";
  if (degraded > 0) {
    os << " (" << degraded << " beyond-model case(s) degraded gracefully)";
  }
  os << '\n';
  for (const auto& [name, counts] : per_protocol) {
    os << "  " << name << ": " << counts.first << " passed, " << counts.second
       << " failed\n";
  }
  if (verbose) {
    for (const CaseResult& r : cases_detail) {
      os << "  "
         << (r.violation.empty() ? (r.degraded ? "DEGRADED" : "ok") : "FAIL")
         << "  " << r.description << '\n';
    }
  }
  for (std::size_t i = 0; i < failures.size(); ++i) {
    const CaseResult& f = failures[i];
    os << "failure " << (i + 1) << ": " << f.protocol << " seed=" << f.seed
       << "\n  " << f.violation << "\n  case: " << f.description << '\n';
    if (!f.report.stall.empty()) {
      std::istringstream stall(f.report.stall);
      for (std::string line; std::getline(stall, line);) {
        os << "  | " << line << '\n';
      }
    }
    if (i < repros.size()) {
      const ShrunkRepro& r = repros[i];
      os << "  shrunk (" << r.shrink_runs << " runs) to n=" << r.cfg.n
         << " k=" << r.cfg.k << " beta=" << fmt(r.cfg.beta) << ": "
         << r.violation << "\n  repro: " << r.command_line << '\n';
    }
  }
  return os.str();
}

}  // namespace asyncdr::chaos
