#include "chaos/stressors.hpp"

#include "common/check.hpp"

namespace asyncdr::chaos {

ChaosStressor::ChaosStressor(Rng rng, Knobs knobs)
    : rng_(rng), knobs_(knobs) {
  ASYNCDR_EXPECTS(knobs.duplicate_prob >= 0 && knobs.duplicate_prob <= 1);
  ASYNCDR_EXPECTS(knobs.burst_prob >= 0 && knobs.burst_prob <= 1);
  ASYNCDR_EXPECTS(knobs.hold_max >= 0);
}

std::size_t ChaosStressor::copies(const sim::Message&) {
  return rng_.flip(knobs_.duplicate_prob) ? 2 : 1;
}

sim::Time ChaosStressor::extra_delay(const sim::Message&, std::size_t copy) {
  if (copy == 0) {
    return rng_.flip(knobs_.burst_prob) ? rng_.uniform(0.0, knobs_.hold_max)
                                        : 0.0;
  }
  // Duplicate copies always trail the primary by a random hold.
  return rng_.uniform(0.0, knobs_.hold_max);
}

proto::StressorFactory make_chaos_stressor(ChaosStressor::Knobs knobs) {
  return [knobs](const dr::Config& cfg) {
    return std::make_unique<ChaosStressor>(Rng(cfg.seed).split(0xc4a05ull),
                                           knobs);
  };
}

}  // namespace asyncdr::chaos
