#include "chaos/injectors.hpp"

#include <algorithm>
#include <cstdio>
#include <map>
#include <sstream>

#include "adversary/latency.hpp"
#include "chaos/stressors.hpp"
#include "common/check.hpp"
#include "common/rng.hpp"
#include "dr/journal.hpp"
#include "protocols/bounds.hpp"

namespace asyncdr::chaos {

namespace {

std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 1469598103934665603ull;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

/// Fixed-precision, locale-independent float rendering so descriptions and
/// repro lines are byte-identical across runs and platforms.
std::string fmt(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  return buf;
}

std::size_t clamp_size(std::size_t v, std::size_t lo, std::size_t hi) {
  return std::max(lo, std::min(v, hi));
}

proto::PeerFactory attack_factory(const std::string& kind) {
  if (kind == "silent") return proto::make_silent_byz();
  if (kind == "garbage") return proto::make_garbage_byz();
  if (kind == "liar_flip") {
    return proto::make_committee_liar(proto::CommitteeLiarPeer::Mode::kFlipAll);
  }
  if (kind == "liar_random") {
    return proto::make_committee_liar(proto::CommitteeLiarPeer::Mode::kRandom);
  }
  if (kind == "liar_equiv") {
    return proto::make_committee_liar(
        proto::CommitteeLiarPeer::Mode::kEquivocate);
  }
  if (kind == "vote_stuff") return proto::make_vote_stuffer();
  if (kind == "equivocate") return proto::make_equivocator();
  if (kind == "comb_stuff") return proto::make_comb_stuffer();
  if (kind == "quorum_rush") return proto::make_quorum_rusher();
  ASYNCDR_EXPECTS_MSG(false, "unknown attack kind: " + kind);
  return {};
}

}  // namespace

std::string ChaosOptions::to_flags() const {
  std::ostringstream os;
  os << "--n-cap " << n_cap << " --k-cap " << k_cap;
  if (fault_cap != std::numeric_limits<std::size_t>::max()) {
    os << " --fault-cap " << fault_cap;
  }
  os << " --latency-spread " << fmt(latency_spread);
  if (beyond_model) os << " --beyond-model 1";
  if (inject_committee_bug) os << " --inject-bug committee-threshold";
  if (recovery) os << " --recovery 1";
  return os.str();
}

const std::vector<ProtocolProfile>& protocol_registry() {
  static const std::vector<ProtocolProfile> registry = [] {
    std::vector<ProtocolProfile> r;

    ProtocolProfile naive;
    naive.name = "naive";
    naive.honest = [](const ChaosOptions&) { return proto::make_naive(); };
    naive.q_bound = proto::bounds::naive_q;
    naive.beta_min = 0.0;
    naive.beta_max = 0.95;
    naive.byzantine = true;
    naive.attack_pool = {"silent", "garbage"};
    r.push_back(std::move(naive));

    ProtocolProfile crash_one;
    crash_one.name = "crash_one";
    crash_one.honest = [](const ChaosOptions&) {
      return proto::make_crash_one();
    };
    crash_one.q_bound = proto::bounds::crash_one_q;
    crash_one.single_crash = true;
    crash_one.recoverable = true;
    r.push_back(std::move(crash_one));

    ProtocolProfile crash_multi;
    crash_multi.name = "crash_multi";
    crash_multi.honest = [](const ChaosOptions&) {
      return proto::make_crash_multi();
    };
    crash_multi.q_bound = proto::bounds::crash_multi_q;
    crash_multi.beta_min = 0.0;
    crash_multi.beta_max = 0.85;
    crash_multi.recoverable = true;
    r.push_back(std::move(crash_multi));

    ProtocolProfile committee;
    committee.name = "committee";
    committee.honest = [](const ChaosOptions& options) {
      return proto::make_committee(
          {.buggy_vote_threshold = options.inject_committee_bug});
    };
    committee.q_bound = proto::bounds::committee_q;
    committee.m_bound = proto::bounds::committee_m;
    committee.t_bound = proto::bounds::committee_t;
    committee.beta_min = 0.05;
    committee.beta_max = 0.49;
    committee.byzantine = true;
    committee.attack_pool = {"silent", "garbage", "liar_flip", "liar_random",
                             "liar_equiv"};
    r.push_back(std::move(committee));

    ProtocolProfile two_cycle;
    two_cycle.name = "two_cycle";
    two_cycle.honest = [](const ChaosOptions&) {
      return proto::make_two_cycle();
    };
    two_cycle.q_bound = [](const dr::Config& cfg) {
      return proto::bounds::two_cycle_q(cfg, proto::RandParams::derive(cfg));
    };
    two_cycle.beta_min = 0.05;
    two_cycle.beta_max = 0.49;
    two_cycle.byzantine = true;
    two_cycle.whp = true;
    two_cycle.attack_pool = {"silent", "garbage", "vote_stuff", "equivocate",
                             "quorum_rush"};
    r.push_back(std::move(two_cycle));

    ProtocolProfile multi_cycle;
    multi_cycle.name = "multi_cycle";
    multi_cycle.honest = [](const ChaosOptions&) {
      return proto::make_multi_cycle();
    };
    multi_cycle.q_bound = [](const dr::Config& cfg) {
      return proto::bounds::multi_cycle_q(cfg, proto::RandParams::derive(cfg));
    };
    multi_cycle.beta_min = 0.05;
    multi_cycle.beta_max = 0.49;
    multi_cycle.byzantine = true;
    multi_cycle.whp = true;
    multi_cycle.attack_pool = {"silent",     "garbage",   "vote_stuff",
                               "equivocate", "comb_stuff", "quorum_rush"};
    r.push_back(std::move(multi_cycle));

    return r;
  }();
  return registry;
}

const ProtocolProfile* find_protocol(const std::string& name) {
  for (const ProtocolProfile& p : protocol_registry()) {
    if (p.name == name) return &p;
  }
  return nullptr;
}

ChaosCase sample_case(const ProtocolProfile& profile, std::uint64_t seed,
                      const ChaosOptions& options) {
  Rng rng = Rng(seed * 0x9e3779b97f4a7c15ull + 0xc4a05eedull)
                .split(fnv1a(profile.name));

  ChaosCase out;
  dr::Config& cfg = out.cfg;
  cfg.n = clamp_size(256u << rng.below(5), 16, options.n_cap);
  cfg.k = clamp_size(6 + 2 * rng.below(10), 3, options.k_cap);
  cfg.message_bits = 64u << rng.below(5);
  cfg.seed = seed;
  if (profile.single_crash) {
    cfg.beta = 1.0 / static_cast<double>(cfg.k);
  } else {
    cfg.beta = rng.uniform(profile.beta_min, profile.beta_max);
  }

  proto::Scenario& s = out.scenario;
  s.cfg = cfg;
  s.honest = profile.honest(options);

  std::ostringstream desc;
  desc << profile.name << " n=" << cfg.n << " k=" << cfg.k
       << " beta=" << fmt(cfg.beta) << " B=" << cfg.message_bits
       << " seed=" << seed;

  // ---- Fault composition: coalition size, then per-victim flavour. ----
  const std::size_t t = cfg.max_faulty();
  std::size_t faults = t > 0 ? 1 + rng.below(t) : 0;
  faults = std::min(faults, options.fault_cap);
  out.faults = faults;

  if (faults > 0) {
    std::vector<std::size_t> victims =
        rng.sample_without_replacement(cfg.k, faults);
    std::sort(victims.begin(), victims.end());

    std::map<sim::PeerId, std::string> byz_kinds;
    std::ostringstream crash_desc;
    for (const std::size_t victim : victims) {
      const bool go_byzantine =
          profile.byzantine && !profile.attack_pool.empty() && rng.flip(0.6);
      if (go_byzantine) {
        byz_kinds[victim] =
            profile.attack_pool[rng.below(profile.attack_pool.size())];
      } else if (rng.flip(0.4)) {
        // Mid-broadcast death: the victim gets an exact number of sends out.
        const std::uint64_t sends = rng.below(2 * cfg.k);
        s.crashes.add_after_sends(victim, sends);
        crash_desc << " p" << victim << "@sends=" << sends;
      } else {
        const sim::Time at = rng.uniform(0.0, 8.0);
        s.crashes.add_at_time(victim, at);
        crash_desc << " p" << victim << "@t=" << fmt(at);
      }
    }
    if (!byz_kinds.empty()) {
      std::map<sim::PeerId, proto::PeerFactory> factories;
      desc << " | byz{";
      bool first = true;
      for (const auto& [id, kind] : byz_kinds) {
        factories[id] = attack_factory(kind);
        s.byz_ids.push_back(id);
        if (!first) desc << ' ';
        first = false;
        desc << 'p' << id << ':' << kind;
      }
      desc << '}';
      s.byzantine = [factories](const dr::Config& c, sim::PeerId id) {
        return factories.at(id)(c, id);
      };
    }
    if (s.crashes.size() > 0) desc << " | crash{" << crash_desc.str() << " }";
  }

  // ---- Scheduling adversary, scaled by the latency-spread knob. ----
  const double spread = std::clamp(options.latency_spread, 0.0, 1.0);
  switch (rng.below(4)) {
    case 0: {
      s.latency = proto::fixed_latency(1.0);
      desc << " | latency=fixed(1)";
      break;
    }
    case 1: {
      const sim::Time lo = 1.0 - 0.95 * spread;
      s.latency = proto::uniform_latency(lo, 1.0);
      desc << " | latency=uniform[" << fmt(lo) << ",1]";
      break;
    }
    case 2: {
      const sim::Time lo = 1.0 - 0.9 * spread;
      s.latency = [lo](const dr::Config& c) {
        return std::make_unique<adv::SeniorityLatency>(c.k, lo, 1.0);
      };
      desc << " | latency=seniority[" << fmt(lo) << ",1]";
      break;
    }
    default: {
      std::vector<sim::PeerId> slow;
      for (sim::PeerId id = 0; id < cfg.k; ++id) {
        if (rng.flip(0.3)) slow.push_back(id);
      }
      const sim::Time fast = 1.0 - 0.99 * spread;
      s.latency = proto::sender_delay_latency(slow, 1.0, fast);
      desc << " | latency=sender_delay(" << slow.size()
           << " slow, fast=" << fmt(fast) << ")";
      break;
    }
  }

  // ---- Adversarial start-time skew (also under the spread knob). ----
  out.timing_faithful = true;
  const double skew_max = 4.0 * spread;
  if (skew_max > 0) {
    for (sim::PeerId id = 0; id < cfg.k; ++id) {
      if (rng.flip(0.25)) {
        s.start_times[id] = rng.uniform(0.0, skew_max);
      }
    }
    if (!s.start_times.empty()) {
      out.timing_faithful = false;
      desc << " | skew{" << s.start_times.size() << " peers, max<"
           << fmt(skew_max) << "}";
    }
  }

  // ---- Beyond-model stressors (opt-in). ----
  if (options.beyond_model) {
    ChaosStressor::Knobs knobs;
    knobs.duplicate_prob = rng.uniform(0.1, 0.5);
    knobs.burst_prob = rng.uniform(0.0, 0.3);
    knobs.hold_max = rng.uniform(1.0, 4.0);
    s.stressor = make_chaos_stressor(knobs);
    out.beyond_model = true;
    out.timing_faithful = false;
    desc << " | stress{dup=" << fmt(knobs.duplicate_prob)
         << " burst=" << fmt(knobs.burst_prob)
         << " hold=" << fmt(knobs.hold_max) << "}";
  }

  if (profile.q_bound) out.q_bound = profile.q_bound(cfg);
  if (profile.m_bound) out.m_bound = profile.m_bound(cfg);
  if (profile.t_bound) out.t_bound = profile.t_bound(cfg);

  // ---- Crash-recovery sampling (opt-in; recoverable profiles only). ----
  // Crashed peers come back through the journal/restart path; the sampler
  // may additionally arm a kill-at-crash-point sentinel and corrupt a
  // journal mid-run. Complexity bounds assume crash-stop, so recovery cases
  // zero them and keep only the correctness predicate.
  if (options.recovery && profile.recoverable) {
    s.recovery.factory = profile.honest(options);
    std::ostringstream rec;

    // Every timed crash victim may come back; a copy of the specs, because
    // the restart instructions below append to the same plan.
    const std::vector<adv::CrashSpec> base = s.crashes.specs();
    for (const adv::CrashSpec& spec : base) {
      if (spec.kind != adv::CrashSpec::Kind::kAtTime) continue;
      if (!rng.flip(0.8)) continue;  // some victims stay down
      const sim::Time delay = spec.at + rng.uniform(0.5, 4.0);
      s.crashes.add_restart_after(spec.peer, delay);
      rec << " p" << spec.peer << "+restart+" << fmt(delay);
      if (rng.flip(0.35)) {
        proto::RecoveryPlan::Corruption c;
        c.peer = spec.peer;
        c.at = spec.at + 0.1;  // after the crash, before any revival
        switch (rng.below(3)) {
          case 0:
            c.mode = proto::RecoveryPlan::Corruption::Mode::kTruncateTail;
            c.amount = 1 + rng.below(64);
            rec << " corrupt{p" << c.peer << ":trunc=" << c.amount << '}';
            break;
          case 1:
            c.mode = proto::RecoveryPlan::Corruption::Mode::kFlipBit;
            c.amount = rng.below(4096);
            rec << " corrupt{p" << c.peer << ":flip=" << c.amount << '}';
            break;
          default:
            c.mode = proto::RecoveryPlan::Corruption::Mode::kClear;
            rec << " corrupt{p" << c.peer << ":clear}";
            break;
        }
        s.recovery.corruptions.push_back(c);
      }
    }

    // With leftover fault budget, kill one fresh peer mid-journal-write at
    // a sampled sentinel (the torn-record case the framing CRC exists for).
    if (out.faults < std::min(t, options.fault_cap)) {
      std::vector<sim::PeerId> free_ids;
      for (sim::PeerId id = 0; id < cfg.k; ++id) {
        bool used = false;
        for (const adv::CrashSpec& spec : base) used |= spec.peer == id;
        for (const sim::PeerId byz_id : s.byz_ids) used |= byz_id == id;
        if (!used) free_ids.push_back(id);
      }
      if (!free_ids.empty() && rng.flip(0.6)) {
        static constexpr dr::CrashPoint kPoints[] = {
            dr::CrashPoint::kAppendStart, dr::CrashPoint::kMidRecord,
            dr::CrashPoint::kAppendCommit, dr::CrashPoint::kCheckpoint};
        proto::RecoveryPlan::CrashPointKill kill;
        kill.peer = free_ids[rng.below(free_ids.size())];
        kill.point = kPoints[rng.below(4)];
        kill.nth = 1 + rng.below(2);
        kill.restart_delay = rng.flip(0.85) ? rng.uniform(0.5, 3.0) : -1.0;
        s.recovery.kills.push_back(kill);
        out.faults += 1;
        rec << " kill{p" << kill.peer << '@' << dr::to_string(kill.point)
            << " nth=" << kill.nth;
        if (kill.restart_delay >= 0) {
          rec << " restart+" << fmt(kill.restart_delay);
        } else {
          rec << " dead";
        }
        rec << '}';
      }
    }

    out.q_bound = 0;
    out.m_bound = 0;
    out.t_bound = 0;
    desc << " | recovery{" << rec.str() << " }";
  }

  out.description = desc.str();
  return out;
}

}  // namespace asyncdr::chaos
