// Adversary-composition sampling: turn one (protocol, seed, caps) triple
// into a complete proto::Scenario — model shape, crash schedule (including
// mid-broadcast crash_after_sends), Byzantine coalition with a per-peer
// attack mix, scheduling adversary, start-time skew, and (opt-in)
// beyond-model stressors. Sampling is a pure function of its inputs, so a
// failing case is reproduced by its (protocol, seed, options) alone — that
// triple IS the repro line, and the shrinker minimizes it by tightening the
// caps in `ChaosOptions` while the failure persists.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <string>
#include <vector>

#include "dr/config.hpp"
#include "protocols/runner.hpp"

namespace asyncdr::chaos {

/// Caps and toggles that parameterize case sampling. The shrinker only ever
/// tightens these, so every shrink step stays inside the original sweep's
/// sample space.
struct ChaosOptions {
  std::size_t n_cap = 4096;  ///< input length is clamped to [16, n_cap]
  std::size_t k_cap = 24;    ///< peer count is clamped to [3, k_cap]
  /// Cap on the number of faulty peers (on top of the model's t = beta*k).
  std::size_t fault_cap = std::numeric_limits<std::size_t>::max();
  /// Schedule adversarialness in [0, 1]: scales latency randomness (0 =
  /// every policy collapses to the fixed max-latency schedule) and the
  /// start-time skew the adversary may impose.
  double latency_spread = 1.0;
  /// Enable beyond-model stressors (duplication, burst holds). Cases then
  /// measure graceful degradation instead of in-model correctness.
  bool beyond_model = false;
  /// Arm the committee protocol's injected vote-threshold off-by-one
  /// (CommitteePeer::Options::buggy_vote_threshold) — the planted bug chaos
  /// sweeps are validated against.
  bool inject_committee_bug = false;
  /// Sample crash-RECOVERY cases on recoverable profiles: crashed peers come
  /// back via the journal/restart path, and the sampler may additionally arm
  /// a kill-at-crash-point sentinel or corrupt a journal mid-run. Recovery
  /// cases check the correctness predicate only (complexity bounds assume
  /// crash-stop and are zeroed out).
  bool recovery = false;

  /// Renders the options as CLI flags (part of the one-line repro).
  [[nodiscard]] std::string to_flags() const;
};

/// Static description of one protocol the chaos grid can sweep: how to
/// build it, which fault flavours are in-model for it, the beta regime it
/// supports, and the closed-form bounds to check measured complexities
/// against (null = unchecked).
struct ProtocolProfile {
  std::string name;
  std::function<proto::PeerFactory(const ChaosOptions&)> honest;
  std::function<std::size_t(const dr::Config&)> q_bound;
  std::function<std::size_t(const dr::Config&)> m_bound;
  std::function<double(const dr::Config&)> t_bound;
  double beta_min = 0.0;
  double beta_max = 0.95;
  /// Byzantine coalitions are in-model (else the sampler only crashes).
  bool byzantine = false;
  /// Protocol tolerates exactly one crash (beta pinned to 1/k).
  bool single_crash = false;
  /// Guarantees are with-high-probability; rare failures are genuine
  /// low-probability events, not necessarily bugs.
  bool whp = false;
  /// Byzantine attack kinds the sampler may draw for this protocol (names
  /// understood by the sampler; empty unless `byzantine`).
  std::vector<std::string> attack_pool;
  /// Protocol implements the on_restart resume path, so the sampler may
  /// turn its crashes into crash+restart pairs when options.recovery is on.
  bool recoverable = false;
};

/// The sweepable protocols: naive, crash_one, crash_multi, committee (the
/// deterministic default grid), plus two_cycle and multi_cycle (whp).
const std::vector<ProtocolProfile>& protocol_registry();

/// Looks a profile up by name; nullptr if unknown.
const ProtocolProfile* find_protocol(const std::string& name);

/// One fully sampled case.
struct ChaosCase {
  dr::Config cfg;
  proto::Scenario scenario;
  std::string description;  ///< composed adversary, deterministic text
  std::size_t q_bound = 0;  ///< 0 = unchecked
  std::size_t m_bound = 0;  ///< 0 = unchecked
  double t_bound = 0;       ///< 0 = unchecked
  /// True iff the sampled schedule keeps the asynchronous-time
  /// normalization (no start skew, no beyond-model holds), so the T bound
  /// is meaningful.
  bool timing_faithful = false;
  std::size_t faults = 0;   ///< sampled faulty-peer count
  bool beyond_model = false;
};

/// Samples the case for (profile, seed, options). Deterministic.
ChaosCase sample_case(const ProtocolProfile& profile, std::uint64_t seed,
                      const ChaosOptions& options);

}  // namespace asyncdr::chaos
