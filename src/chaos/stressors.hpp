// Beyond-model network stressors. The DR model's adversary already owns
// scheduling (any latency in (0,1]) and crashes; real deployments also see
// duplicated deliveries (retransmit races) and messages held far past any
// latency bound (route flaps, GC pauses). Protocol guarantees say nothing
// about those, so the stressors here are explicit OPT-IN: a run with one
// installed measures graceful degradation and is reported separately from
// in-model correctness (see DESIGN.md, "In-model vs. beyond-model").
#pragma once

#include "common/rng.hpp"
#include "protocols/runner.hpp"
#include "sim/network.hpp"

namespace asyncdr::chaos {

/// Seeded composite stressor: with probability `duplicate_prob` a message is
/// delivered twice (the duplicate trailing by up to `hold_max`), and with
/// probability `burst_prob` the primary delivery itself is held back by up
/// to `hold_max` — which may exceed the normalized latency bound of 1,
/// reordering bursts across everything sent meanwhile.
class ChaosStressor final : public sim::DeliveryStressor {
 public:
  struct Knobs {
    double duplicate_prob = 0.0;
    double burst_prob = 0.0;
    sim::Time hold_max = 3.0;
  };

  ChaosStressor(Rng rng, Knobs knobs);

  std::size_t copies(const sim::Message& msg) override;
  sim::Time extra_delay(const sim::Message& msg, std::size_t copy) override;

 private:
  Rng rng_;
  Knobs knobs_;
};

/// Scenario-level factory; the stressor's stream is split off the config
/// seed so runs stay pure functions of (config, scenario).
proto::StressorFactory make_chaos_stressor(ChaosStressor::Knobs knobs);

}  // namespace asyncdr::chaos
