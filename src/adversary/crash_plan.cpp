#include "adversary/crash_plan.hpp"

#include <sstream>

#include "common/check.hpp"

namespace asyncdr::adv {

void CrashPlan::add_at_time(sim::PeerId peer, sim::Time at) {
  specs_.push_back(CrashSpec{peer, CrashSpec::Kind::kAtTime, at, 0});
}

void CrashPlan::add_after_sends(sim::PeerId peer, std::uint64_t sends) {
  specs_.push_back(CrashSpec{peer, CrashSpec::Kind::kAfterSends, 0, sends});
}

void CrashPlan::add_restart_at(sim::PeerId peer, sim::Time at) {
  specs_.push_back(CrashSpec{peer, CrashSpec::Kind::kRestartAt, at, 0});
}

void CrashPlan::add_restart_after(sim::PeerId peer, sim::Time delay) {
  specs_.push_back(CrashSpec{peer, CrashSpec::Kind::kRestartAfter, delay, 0});
}

bool CrashPlan::has_restarts() const {
  for (const CrashSpec& spec : specs_) {
    if (spec.kind == CrashSpec::Kind::kRestartAt ||
        spec.kind == CrashSpec::Kind::kRestartAfter) {
      return true;
    }
  }
  return false;
}

void CrashPlan::apply(dr::World& world) const {
  for (const CrashSpec& spec : specs_) {
    switch (spec.kind) {
      case CrashSpec::Kind::kAtTime:
        world.schedule_crash_at(spec.peer, spec.at);
        break;
      case CrashSpec::Kind::kAfterSends:
        world.crash_after_sends(spec.peer, spec.sends);
        break;
      case CrashSpec::Kind::kRestartAt:
        world.schedule_restart_at(spec.peer, spec.at);
        break;
      case CrashSpec::Kind::kRestartAfter:
        world.restart_after_delay(spec.peer, spec.at);
        break;
    }
  }
}

std::string CrashPlan::to_string() const {
  std::ostringstream os;
  os << "CrashPlan{";
  for (const CrashSpec& spec : specs_) {
    os << "p" << spec.peer;
    switch (spec.kind) {
      case CrashSpec::Kind::kAtTime: os << "@t=" << spec.at << ' '; break;
      case CrashSpec::Kind::kAfterSends:
        os << "@sends=" << spec.sends << ' ';
        break;
      case CrashSpec::Kind::kRestartAt:
        os << "@restart=" << spec.at << ' ';
        break;
      case CrashSpec::Kind::kRestartAfter:
        os << "@restart+" << spec.at << ' ';
        break;
    }
  }
  os << '}';
  return os.str();
}

CrashPlan CrashPlan::random(const dr::Config& cfg, Rng& rng, std::size_t count,
                            sim::Time horizon, double partial_send_prob) {
  ASYNCDR_EXPECTS(count <= cfg.max_faulty());
  CrashPlan plan;
  for (std::size_t victim : rng.sample_without_replacement(cfg.k, count)) {
    if (rng.flip(partial_send_prob)) {
      plan.add_after_sends(victim, rng.below(cfg.k));
    } else {
      plan.add_at_time(victim, rng.uniform(0.0, horizon));
    }
  }
  return plan;
}

CrashPlan CrashPlan::silent_prefix(std::size_t count) {
  CrashPlan plan;
  for (std::size_t i = 0; i < count; ++i) plan.add_at_time(i, 0.0);
  return plan;
}

CrashPlan CrashPlan::staggered(const dr::Config& cfg, Rng& rng,
                               std::size_t count, sim::Time spacing) {
  ASYNCDR_EXPECTS(count <= cfg.max_faulty());
  CrashPlan plan;
  const auto victims = rng.sample_without_replacement(cfg.k, count);
  for (std::size_t i = 0; i < victims.size(); ++i) {
    plan.add_at_time(victims[i], spacing * static_cast<sim::Time>(i + 1));
  }
  return plan;
}

CrashPlan CrashPlan::partial_broadcast(const dr::Config& cfg, Rng& rng,
                                       std::size_t count,
                                       std::uint64_t sends) {
  ASYNCDR_EXPECTS(count <= cfg.max_faulty());
  CrashPlan plan;
  for (std::size_t victim : rng.sample_without_replacement(cfg.k, count)) {
    plan.add_after_sends(victim, sends);
  }
  return plan;
}

CrashPlan CrashPlan::restart_storm(const dr::Config& cfg, Rng& rng,
                                   std::size_t count, sim::Time spacing,
                                   sim::Time storm_at, sim::Time window) {
  ASYNCDR_EXPECTS(count <= cfg.max_faulty());
  ASYNCDR_EXPECTS(spacing >= 0 && window >= 0);
  ASYNCDR_EXPECTS_MSG(storm_at >= spacing * static_cast<sim::Time>(count),
                      "the storm must start after the last crash");
  CrashPlan plan;
  const auto victims = rng.sample_without_replacement(cfg.k, count);
  for (std::size_t i = 0; i < victims.size(); ++i) {
    plan.add_at_time(victims[i], spacing * static_cast<sim::Time>(i + 1));
  }
  // Revivals land in one tight burst — deliberately synchronized, so the
  // World-side backoff/jitter is what keeps re-registration from stampeding.
  for (std::size_t victim : victims) {
    plan.add_restart_after(victim,
                           storm_at + (window > 0 ? rng.uniform(0.0, window)
                                                  : 0.0));
  }
  return plan;
}

CrashPlan CrashPlan::flapping(const dr::Config& cfg, Rng& rng,
                              std::size_t count, std::size_t cycles,
                              sim::Time period, sim::Time up_delay,
                              sim::Time jitter) {
  ASYNCDR_EXPECTS(count <= cfg.max_faulty());
  ASYNCDR_EXPECTS(cycles >= 1);
  ASYNCDR_EXPECTS_MSG(up_delay + jitter < period,
                      "a flap must revive before its next kill");
  CrashPlan plan;
  const auto victims = rng.sample_without_replacement(cfg.k, count);
  for (std::size_t i = 0; i < victims.size(); ++i) {
    // Stagger the victims' cycle origins so flaps interleave across peers.
    const sim::Time start =
        period * static_cast<sim::Time>(i + 1) / static_cast<sim::Time>(count + 1);
    for (std::size_t j = 0; j < cycles; ++j) {
      const sim::Time down = start + period * static_cast<sim::Time>(j);
      plan.add_at_time(victims[i], down);
      const sim::Time extra = jitter > 0 ? rng.uniform(0.0, jitter) : 0.0;
      plan.add_restart_at(victims[i], down + up_delay + extra);
    }
  }
  return plan;
}

}  // namespace asyncdr::adv
