#include "adversary/crash_plan.hpp"

#include <sstream>

#include "common/check.hpp"

namespace asyncdr::adv {

void CrashPlan::add_at_time(sim::PeerId peer, sim::Time at) {
  specs_.push_back(CrashSpec{peer, CrashSpec::Kind::kAtTime, at, 0});
}

void CrashPlan::add_after_sends(sim::PeerId peer, std::uint64_t sends) {
  specs_.push_back(CrashSpec{peer, CrashSpec::Kind::kAfterSends, 0, sends});
}

void CrashPlan::apply(dr::World& world) const {
  for (const CrashSpec& spec : specs_) {
    switch (spec.kind) {
      case CrashSpec::Kind::kAtTime:
        world.schedule_crash_at(spec.peer, spec.at);
        break;
      case CrashSpec::Kind::kAfterSends:
        world.crash_after_sends(spec.peer, spec.sends);
        break;
    }
  }
}

std::string CrashPlan::to_string() const {
  std::ostringstream os;
  os << "CrashPlan{";
  for (const CrashSpec& spec : specs_) {
    os << "p" << spec.peer;
    if (spec.kind == CrashSpec::Kind::kAtTime) {
      os << "@t=" << spec.at << ' ';
    } else {
      os << "@sends=" << spec.sends << ' ';
    }
  }
  os << '}';
  return os.str();
}

CrashPlan CrashPlan::random(const dr::Config& cfg, Rng& rng, std::size_t count,
                            sim::Time horizon, double partial_send_prob) {
  ASYNCDR_EXPECTS(count <= cfg.max_faulty());
  CrashPlan plan;
  for (std::size_t victim : rng.sample_without_replacement(cfg.k, count)) {
    if (rng.flip(partial_send_prob)) {
      plan.add_after_sends(victim, rng.below(cfg.k));
    } else {
      plan.add_at_time(victim, rng.uniform(0.0, horizon));
    }
  }
  return plan;
}

CrashPlan CrashPlan::silent_prefix(std::size_t count) {
  CrashPlan plan;
  for (std::size_t i = 0; i < count; ++i) plan.add_at_time(i, 0.0);
  return plan;
}

CrashPlan CrashPlan::staggered(const dr::Config& cfg, Rng& rng,
                               std::size_t count, sim::Time spacing) {
  ASYNCDR_EXPECTS(count <= cfg.max_faulty());
  CrashPlan plan;
  const auto victims = rng.sample_without_replacement(cfg.k, count);
  for (std::size_t i = 0; i < victims.size(); ++i) {
    plan.add_at_time(victims[i], spacing * static_cast<sim::Time>(i + 1));
  }
  return plan;
}

CrashPlan CrashPlan::partial_broadcast(const dr::Config& cfg, Rng& rng,
                                       std::size_t count,
                                       std::uint64_t sends) {
  ASYNCDR_EXPECTS(count <= cfg.max_faulty());
  CrashPlan plan;
  for (std::size_t victim : rng.sample_without_replacement(cfg.k, count)) {
    plan.add_after_sends(victim, sends);
  }
  return plan;
}

}  // namespace asyncdr::adv
