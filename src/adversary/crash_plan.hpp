// Crash-fault adversary strategies. A CrashPlan is a declarative list of
// crash events applied to a World before it runs; generators build the plans
// the crash-fault analysis cares about (random, early, staggered, and
// mid-broadcast partial sends).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "dr/config.hpp"
#include "dr/world.hpp"

namespace asyncdr::adv {

/// One crash (or, on crash-recovery worlds, restart) instruction.
struct CrashSpec {
  enum class Kind {
    kAtTime,        ///< crash at absolute virtual time `at`
    kAfterSends,    ///< crash just before the (sends+1)-th send
    kRestartAt,     ///< revive at absolute virtual time `at` (exact)
    kRestartAfter,  ///< revive after delay `at` + re-registration backoff
  };
  sim::PeerId peer = sim::kNoPeer;
  Kind kind = Kind::kAtTime;
  sim::Time at = 0;
  std::uint64_t sends = 0;
};

/// A set of crash instructions for distinct peers.
class CrashPlan {
 public:
  CrashPlan() = default;

  void add_at_time(sim::PeerId peer, sim::Time at);
  void add_after_sends(sim::PeerId peer, std::uint64_t sends);
  /// Restart instructions (the world must have recovery enabled at apply
  /// time). kRestartAt revives at an exact instant; kRestartAfter goes
  /// through World::restart_after_delay and picks up the anti-storm
  /// backoff + jitter. Both delays are measured from plan-apply time (t=0),
  /// not from the crash: a restart that fires while its peer is still up is
  /// a deliberate no-op, so schedule revivals after the matching crash.
  void add_restart_at(sim::PeerId peer, sim::Time at);
  void add_restart_after(sim::PeerId peer, sim::Time delay);

  [[nodiscard]] std::size_t size() const { return specs_.size(); }
  [[nodiscard]] const std::vector<CrashSpec>& specs() const { return specs_; }
  /// True iff the plan contains restart instructions (and therefore needs a
  /// recovery-enabled world).
  [[nodiscard]] bool has_restarts() const;

  /// Registers every crash with the world (marks the peers faulty).
  void apply(dr::World& world) const;

  [[nodiscard]] std::string to_string() const;

  // ---- Generators. All crash exactly `count` distinct peers. ----

  /// Uniformly random victims; each crashes at a uniform time in
  /// [0, horizon], or (with probability partial_send_prob) after a random
  /// small number of sends — the mid-broadcast case.
  static CrashPlan random(const dr::Config& cfg, Rng& rng, std::size_t count,
                          sim::Time horizon, double partial_send_prob = 0.3);

  /// The first `count` peers never take a single step (silent from t=0).
  /// Worst case for protocols whose phase-1 assignment leans on low IDs.
  static CrashPlan silent_prefix(std::size_t count);

  /// Victims crash one per `spacing` time units, so every protocol phase
  /// can lose a fresh peer.
  static CrashPlan staggered(const dr::Config& cfg, Rng& rng,
                             std::size_t count, sim::Time spacing);

  /// Every victim dies mid-broadcast after `sends` messages of its first
  /// broadcast — the adversarially partial stage-1 delivery.
  static CrashPlan partial_broadcast(const dr::Config& cfg, Rng& rng,
                                     std::size_t count, std::uint64_t sends);

  // ---- Crash-recovery generators (world needs enable_recovery). ----

  /// Restart storm: victims crash one per `spacing` time units (like
  /// staggered) and are ALL revived inside the `window`-wide burst starting
  /// at `storm_at`, spread by rng jitter — the synchronized-comeback case
  /// the re-registration backoff exists to de-correlate. `storm_at` must be
  /// past the last crash.
  static CrashPlan restart_storm(const dr::Config& cfg, Rng& rng,
                                 std::size_t count, sim::Time spacing,
                                 sim::Time storm_at, sim::Time window);

  /// Flapping: each victim cycles crash -> revive `cycles` times. Cycle j
  /// of victim i kills at start_i + j*period and revives `up_delay` (plus
  /// rng jitter of up to `jitter`) later; up_delay + jitter must stay below
  /// period so the instructions alternate.
  static CrashPlan flapping(const dr::Config& cfg, Rng& rng,
                            std::size_t count, std::size_t cycles,
                            sim::Time period, sim::Time up_delay,
                            sim::Time jitter = 0);

 private:
  std::vector<CrashSpec> specs_;
};

}  // namespace asyncdr::adv
