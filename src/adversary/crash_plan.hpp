// Crash-fault adversary strategies. A CrashPlan is a declarative list of
// crash events applied to a World before it runs; generators build the plans
// the crash-fault analysis cares about (random, early, staggered, and
// mid-broadcast partial sends).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "dr/config.hpp"
#include "dr/world.hpp"

namespace asyncdr::adv {

/// One crash instruction.
struct CrashSpec {
  enum class Kind {
    kAtTime,      ///< crash at absolute virtual time `at`
    kAfterSends,  ///< crash just before the (sends+1)-th send
  };
  sim::PeerId peer = sim::kNoPeer;
  Kind kind = Kind::kAtTime;
  sim::Time at = 0;
  std::uint64_t sends = 0;
};

/// A set of crash instructions for distinct peers.
class CrashPlan {
 public:
  CrashPlan() = default;

  void add_at_time(sim::PeerId peer, sim::Time at);
  void add_after_sends(sim::PeerId peer, std::uint64_t sends);

  [[nodiscard]] std::size_t size() const { return specs_.size(); }
  [[nodiscard]] const std::vector<CrashSpec>& specs() const { return specs_; }

  /// Registers every crash with the world (marks the peers faulty).
  void apply(dr::World& world) const;

  [[nodiscard]] std::string to_string() const;

  // ---- Generators. All crash exactly `count` distinct peers. ----

  /// Uniformly random victims; each crashes at a uniform time in
  /// [0, horizon], or (with probability partial_send_prob) after a random
  /// small number of sends — the mid-broadcast case.
  static CrashPlan random(const dr::Config& cfg, Rng& rng, std::size_t count,
                          sim::Time horizon, double partial_send_prob = 0.3);

  /// The first `count` peers never take a single step (silent from t=0).
  /// Worst case for protocols whose phase-1 assignment leans on low IDs.
  static CrashPlan silent_prefix(std::size_t count);

  /// Victims crash one per `spacing` time units, so every protocol phase
  /// can lose a fresh peer.
  static CrashPlan staggered(const dr::Config& cfg, Rng& rng,
                             std::size_t count, sim::Time spacing);

  /// Every victim dies mid-broadcast after `sends` messages of its first
  /// broadcast — the adversarially partial stage-1 delivery.
  static CrashPlan partial_broadcast(const dr::Config& cfg, Rng& rng,
                                     std::size_t count, std::uint64_t sends);

 private:
  std::vector<CrashSpec> specs_;
};

}  // namespace asyncdr::adv
