// Scheduling-adversary strategies: concrete LatencyPolicy implementations.
// Upper-bound protocols must stay correct under every one of these; the
// lower-bound constructions use the targeted policies to build the paper's
// indistinguishable executions.
#pragma once

#include <functional>
#include <unordered_set>

#include "common/rng.hpp"
#include "sim/message.hpp"
#include "sim/network.hpp"

namespace asyncdr::adv {

/// Independent uniform latencies in [lo, hi]. The classic "random
/// asynchrony" schedule.
class UniformLatency final : public sim::LatencyPolicy {
 public:
  UniformLatency(Rng rng, sim::Time lo = 0.05, sim::Time hi = 1.0);
  sim::Time propagation(const sim::Message& msg) override;

 private:
  Rng rng_;
  sim::Time lo_, hi_;
};

/// Messages *from* a designated set of peers are delayed by `slow`; all
/// other traffic travels at `fast`. This is the paper's lower-bound
/// adversary move: hold back one honest group until the victim terminates.
class SenderDelayLatency final : public sim::LatencyPolicy {
 public:
  SenderDelayLatency(std::unordered_set<sim::PeerId> slow_senders,
                     sim::Time slow, sim::Time fast = 0.01);
  sim::Time propagation(const sim::Message& msg) override;

  void set_slow(sim::Time slow) { slow_ = slow; }

 private:
  std::unordered_set<sim::PeerId> slow_senders_;
  sim::Time slow_, fast_;
};

/// Deterministic order-inversion: the higher the sender ID, the faster its
/// messages. Stresses protocols that implicitly assume FIFO-ish arrival
/// across peers.
class SeniorityLatency final : public sim::LatencyPolicy {
 public:
  SeniorityLatency(std::size_t k, sim::Time lo = 0.1, sim::Time hi = 1.0);
  sim::Time propagation(const sim::Message& msg) override;

 private:
  std::size_t k_;
  sim::Time lo_, hi_;
};

/// Arbitrary per-message latency via a callback — the fully general
/// adversary for one-off constructions and tests.
class CallbackLatency final : public sim::LatencyPolicy {
 public:
  using Fn = std::function<sim::Time(const sim::Message&)>;
  explicit CallbackLatency(Fn fn);
  sim::Time propagation(const sim::Message& msg) override;

 private:
  Fn fn_;
};

}  // namespace asyncdr::adv
