#include "adversary/latency.hpp"

#include "common/check.hpp"

namespace asyncdr::adv {

UniformLatency::UniformLatency(Rng rng, sim::Time lo, sim::Time hi)
    : rng_(rng), lo_(lo), hi_(hi) {
  ASYNCDR_EXPECTS(lo > 0 && lo <= hi && hi <= 1.0);
}

sim::Time UniformLatency::propagation(const sim::Message&) {
  return rng_.uniform(lo_, hi_);
}

SenderDelayLatency::SenderDelayLatency(
    std::unordered_set<sim::PeerId> slow_senders, sim::Time slow,
    sim::Time fast)
    : slow_senders_(std::move(slow_senders)), slow_(slow), fast_(fast) {
  ASYNCDR_EXPECTS(fast > 0 && slow >= fast);
}

sim::Time SenderDelayLatency::propagation(const sim::Message& msg) {
  return slow_senders_.contains(msg.from) ? slow_ : fast_;
}

SeniorityLatency::SeniorityLatency(std::size_t k, sim::Time lo, sim::Time hi)
    : k_(k), lo_(lo), hi_(hi) {
  ASYNCDR_EXPECTS(k >= 1);
  ASYNCDR_EXPECTS(lo > 0 && lo <= hi && hi <= 1.0);
}

sim::Time SeniorityLatency::propagation(const sim::Message& msg) {
  const double rank =
      static_cast<double>(k_ - 1 - msg.from) / static_cast<double>(k_);
  return lo_ + (hi_ - lo_) * rank;
}

CallbackLatency::CallbackLatency(Fn fn) : fn_(std::move(fn)) {
  ASYNCDR_EXPECTS(fn_ != nullptr);
}

sim::Time CallbackLatency::propagation(const sim::Message& msg) {
  const sim::Time t = fn_(msg);
  ASYNCDR_EXPECTS(t > 0);
  return t;
}

}  // namespace asyncdr::adv
