#include "obs/metrics.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace asyncdr::obs {

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  ASYNCDR_EXPECTS_MSG(std::is_sorted(bounds_.begin(), bounds_.end()) &&
                          std::adjacent_find(bounds_.begin(), bounds_.end()) ==
                              bounds_.end(),
                      "histogram bounds must be strictly increasing");
  counts_.assign(bounds_.size() + 1, 0);
}

void Histogram::observe(double v) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  ++counts_[static_cast<std::size_t>(it - bounds_.begin())];
  if (count_ == 0 || v < min_) min_ = v;
  if (count_ == 0 || v > max_) max_ = v;
  ++count_;
  sum_ += v;
}

std::vector<double> Histogram::pow2_bounds(std::size_t buckets) {
  std::vector<double> bounds;
  bounds.reserve(buckets);
  double b = 1;
  for (std::size_t i = 0; i < buckets; ++i, b *= 2) bounds.push_back(b);
  return bounds;
}

MetricsRegistry::Key MetricsRegistry::make_key(const std::string& name,
                                               const Labels& labels) {
  std::string encoded;
  for (const auto& [k, v] : labels) {
    encoded += k;
    encoded.push_back('=');
    encoded += v;
    encoded.push_back(',');
  }
  return {name, encoded};
}

Counter& MetricsRegistry::counter(const std::string& name,
                                  const Labels& labels) {
  Series& s = series_[make_key(name, labels)];
  if (!s.counter) {
    ASYNCDR_EXPECTS_MSG(!s.gauge && !s.histogram,
                        "metric series registered with another type: " + name);
    s.labels = labels;
    s.counter = std::make_unique<Counter>();
  }
  return *s.counter;
}

Gauge& MetricsRegistry::gauge(const std::string& name, const Labels& labels) {
  Series& s = series_[make_key(name, labels)];
  if (!s.gauge) {
    ASYNCDR_EXPECTS_MSG(!s.counter && !s.histogram,
                        "metric series registered with another type: " + name);
    s.labels = labels;
    s.gauge = std::make_unique<Gauge>();
  }
  return *s.gauge;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> bounds,
                                      const Labels& labels) {
  Series& s = series_[make_key(name, labels)];
  if (!s.histogram) {
    ASYNCDR_EXPECTS_MSG(!s.counter && !s.gauge,
                        "metric series registered with another type: " + name);
    s.labels = labels;
    s.histogram = std::make_unique<Histogram>(std::move(bounds));
  }
  return *s.histogram;
}

namespace {

Json labels_json(const Labels& labels) {
  Json obj = Json::object();
  for (const auto& [k, v] : labels) obj[k] = v;
  return obj;
}

}  // namespace

Json MetricsRegistry::snapshot() const {
  Json counters = Json::array();
  Json gauges = Json::array();
  Json histograms = Json::array();
  for (const auto& [key, s] : series_) {
    Json entry = Json::object();
    entry["name"] = key.first;
    entry["labels"] = labels_json(s.labels);
    if (s.counter) {
      entry["value"] = s.counter->value();
      counters.push_back(std::move(entry));
    } else if (s.gauge) {
      entry["value"] = s.gauge->value();
      gauges.push_back(std::move(entry));
    } else if (s.histogram) {
      const Histogram& h = *s.histogram;
      entry["count"] = h.count();
      entry["sum"] = h.sum();
      entry["min"] = h.min();
      entry["max"] = h.max();
      Json buckets = Json::array();
      for (std::size_t i = 0; i < h.bucket_counts().size(); ++i) {
        Json b = Json::object();
        if (i < h.bounds().size()) {
          b["le"] = h.bounds()[i];
        } else {
          b["le"] = "inf";
        }
        b["count"] = h.bucket_counts()[i];
        buckets.push_back(std::move(b));
      }
      entry["buckets"] = std::move(buckets);
      histograms.push_back(std::move(entry));
    }
  }
  Json out = Json::object();
  out["schema"] = "asyncdr-metrics-v1";
  out["counters"] = std::move(counters);
  out["gauges"] = std::move(gauges);
  out["histograms"] = std::move(histograms);
  return out;
}

std::string MetricsRegistry::to_json_string(int indent) const {
  return snapshot().dump(indent);
}

}  // namespace asyncdr::obs
