// Labeled metrics for simulation runs: counters, gauges and fixed-bucket
// histograms, snapshot-able to JSON. Naming convention (see DESIGN.md):
// `<subsystem>_<quantity>_<unit>` with `_total` for monotone counters, e.g.
// `source_query_bits_total{peer="3"}` or `net_link_latency{from="0",to="1"}`.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "obs/json.hpp"

namespace asyncdr::obs {

/// Label set attached to one metric series, e.g. {{"peer", "3"}}.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Monotone counter.
class Counter {
 public:
  void add(std::uint64_t n = 1) { value_ += n; }
  [[nodiscard]] std::uint64_t value() const { return value_; }

 private:
  std::uint64_t value_ = 0;
};

/// Last-value gauge.
class Gauge {
 public:
  void set(double v) { value_ = v; }
  [[nodiscard]] double value() const { return value_; }

 private:
  double value_ = 0;
};

/// Histogram over fixed upper-bound buckets (non-cumulative counts; the
/// final implicit bucket catches everything above the last bound).
class Histogram {
 public:
  /// `bounds` must be strictly increasing upper bounds.
  explicit Histogram(std::vector<double> bounds);

  void observe(double v);

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] double sum() const { return sum_; }
  [[nodiscard]] double min() const { return min_; }  ///< 0 when empty
  [[nodiscard]] double max() const { return max_; }  ///< 0 when empty
  [[nodiscard]] const std::vector<double>& bounds() const { return bounds_; }
  /// bounds().size() + 1 entries; the last is the overflow bucket.
  [[nodiscard]] const std::vector<std::uint64_t>& bucket_counts() const { return counts_; }

  /// Power-of-two bounds 1, 2, 4, ... (`buckets` of them) — the default
  /// shape for bit/byte size distributions.
  static std::vector<double> pow2_bounds(std::size_t buckets);

 private:
  std::vector<double> bounds_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t count_ = 0;
  double sum_ = 0;
  double min_ = 0;
  double max_ = 0;
};

/// Registry of named metric series. Lookup creates the series on first use;
/// a (name, labels) pair always maps to the same object, whose reference
/// stays valid for the registry's lifetime (callers cache the pointer on
/// hot paths).
class MetricsRegistry {
 public:
  Counter& counter(const std::string& name, const Labels& labels = {});
  Gauge& gauge(const std::string& name, const Labels& labels = {});
  /// `bounds` is used only on first creation of the series.
  Histogram& histogram(const std::string& name, std::vector<double> bounds,
                       const Labels& labels = {});

  /// Full dump: {"schema": "asyncdr-metrics-v1", "counters": [...],
  /// "gauges": [...], "histograms": [...]}, series sorted by (name, labels).
  [[nodiscard]] Json snapshot() const;
  [[nodiscard]] std::string to_json_string(int indent = 2) const;

 private:
  using Key = std::pair<std::string, std::string>;  // (name, encoded labels)
  static Key make_key(const std::string& name, const Labels& labels);

  struct Series {
    Labels labels;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  std::map<Key, Series> series_;
};

}  // namespace asyncdr::obs
