#include "obs/critpath.hpp"

#include <iomanip>
#include <sstream>

#include "common/table.hpp"

namespace asyncdr::obs {

const char* causal_edge_name(CausalEdge edge) {
  switch (edge) {
    case CausalEdge::kRoot: return "root";
    case CausalEdge::kLink: return "link";
    case CausalEdge::kQuery: return "query";
    case CausalEdge::kLocal: return "local";
    case CausalEdge::kSequence: return "sequence";
  }
  return "?";
}

namespace {

std::string attribution_table(const char* header,
                              const std::vector<CriticalPathReport::Attribution>&
                                  rows,
                              sim::Time total) {
  Table table({header, "time", "edges", "share"});
  for (const CriticalPathReport::Attribution& a : rows) {
    std::ostringstream share;
    share << std::fixed << std::setprecision(1)
          << (total > 0 ? 100.0 * a.time / total : 0.0) << '%';
    table.add(a.key, a.time, a.edges, share.str());
  }
  return table.render();
}

}  // namespace

std::string CriticalPathReport::to_string(std::size_t max_steps) const {
  std::ostringstream os;
  os.precision(3);
  os << std::fixed;
  os << "critical path: T=" << reported_t << " path=" << path_length
     << " steps=" << steps.size() << " reconciled=" << (reconciled ? "yes" : "no");
  if (terminal_peer != sim::kNoPeer) os << " terminal=p" << terminal_peer;
  os << '\n';
  if (!complete) os << "  incomplete: " << incomplete_reason << '\n';
  if (start_offset > 0) {
    os << "  start offset: " << start_offset << " (root acts late)\n";
  }
  if (!by_edge_kind.empty()) {
    os << attribution_table("edge kind", by_edge_kind, path_length);
  }
  if (!by_phase.empty()) os << attribution_table("phase", by_phase, path_length);
  if (!by_peer.empty()) os << attribution_table("peer", by_peer, path_length);
  if (!slack.empty()) {
    constexpr std::size_t kMaxSlackLines = 8;
    os << "slack (T - own termination, most critical first):\n";
    for (std::size_t i = 0; i < slack.size() && i < kMaxSlackLines; ++i) {
      os << "  p" << slack[i].peer << ": terminated at " << slack[i].termination
         << ", slack " << slack[i].slack << '\n';
    }
    if (slack.size() > kMaxSlackLines) {
      os << "  ... (" << (slack.size() - kMaxSlackLines) << " more peers)\n";
    }
  }
  if (!steps.empty()) {
    os << "path (root -> terminal):\n";
    std::size_t first = 0;
    if (steps.size() > max_steps) {
      first = steps.size() - max_steps;
      os << "  ... (" << first << " earlier steps)\n";
    }
    for (std::size_t i = first; i < steps.size(); ++i) {
      const Step& s = steps[i];
      os << "  ";
      if (s.in_edge == CausalEdge::kRoot) {
        os << "root      ";
      } else {
        std::ostringstream edge;
        edge.precision(3);
        edge << std::fixed << '+' << s.in_weight << ' '
             << causal_edge_name(s.in_edge);
        os << std::left << std::setw(16) << edge.str();
      }
      os << ' ' << s.label;
      if (!s.phase.empty()) os << "  {" << s.phase << '}';
      os << '\n';
    }
  }
  return os.str();
}

}  // namespace asyncdr::obs
