// Happens-before reconstruction over a sim::Trace: every recorded event
// gets a causal parent (the send behind a delivery, the previous action of
// the acting peer, or nothing for roots), giving a DAG whose edge weights
// telescope — any root-to-terminal chain sums to the terminal's timestamp.
// The critical path extractor walks that DAG backwards from the last
// nonfaulty termination, which by construction *is* the chain realizing the
// run's T, and attributes its length per phase / peer / edge kind.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "dr/phase.hpp"
#include "dr/world.hpp"
#include "obs/critpath.hpp"
#include "sim/trace.hpp"

namespace asyncdr::obs {

/// The happens-before DAG, one node per trace event (parallel arrays).
struct CausalGraph {
  struct Node {
    /// Index of the causal parent in the trace's event log, or -1 for roots
    /// (peer starts, injected crashes). Always < the node's own index: the
    /// log is time-ordered, so the graph is acyclic by construction.
    std::ptrdiff_t parent = -1;
    CausalEdge edge = CausalEdge::kRoot;
  };
  std::vector<Node> nodes;
};

/// Builds the DAG. Rules (see DESIGN.md, "Causal analysis"): deliver/drop
/// events point at their send via the message id (kLink); every other event
/// points at the acting peer's previous action — kQuery if that action was
/// a source query, kLocal at the same instant, kSequence across idle time;
/// kStart and kCrash events are roots.
[[nodiscard]] CausalGraph build_causal_graph(const sim::Trace& trace);

/// Extracts the critical path: the parent chain of the latest nonfaulty
/// kTerminate event (ties broken toward the earliest log index). `faulty`
/// is indexed by peer id; `reported_t` is the run's measured T. On stalled
/// or overflowed traces the report is marked incomplete and covers the
/// critical prefix of the latest recorded nonfaulty action instead.
[[nodiscard]] CriticalPathReport extract_critical_path(
    const sim::Trace& trace, const CausalGraph& graph,
    const std::vector<dr::PhaseSpan>& phase_spans,
    const std::vector<bool>& faulty, sim::Time reported_t);

/// Renders the last `max_steps` causal steps leading to `peer`'s most
/// recent recorded event — the "what chain got it here" view of a stuck
/// peer for stall diagnostics.
[[nodiscard]] std::string render_critical_prefix(const sim::Trace& trace,
                                                 const CausalGraph& graph,
                                                 sim::PeerId peer,
                                                 std::size_t max_steps = 8);

/// Convenience wiring for run harnesses: when `world` ran with tracing
/// enabled, builds the DAG, fills `report.critical_path`, and appends the
/// critical prefix of every stuck peer to `report.stall`. No-op without a
/// trace.
void embed_critical_path(dr::World& world, dr::RunReport& report);

}  // namespace asyncdr::obs
