#include "obs/export.hpp"

#include <string>

namespace asyncdr::obs {

namespace {

const char* kind_name(sim::TraceEvent::Kind kind) {
  using Kind = sim::TraceEvent::Kind;
  switch (kind) {
    case Kind::kSend: return "send";
    case Kind::kDeliver: return "deliver";
    case Kind::kDrop: return "drop";
    case Kind::kCrash: return "crash";
    case Kind::kQuery: return "query";
    case Kind::kTerminate: return "terminate";
    case Kind::kNote: return "note";
    case Kind::kStart: return "start";
  }
  return "unknown";
}

}  // namespace

Json trace_event_json(const sim::TraceEvent& ev) {
  Json obj = Json::object();
  obj["kind"] = kind_name(ev.kind);
  obj["t"] = ev.at;
  if (ev.from != sim::kNoPeer) obj["from"] = ev.from;
  if (ev.to != sim::kNoPeer) obj["to"] = ev.to;
  if (!ev.payload_type.empty()) obj["payload"] = ev.payload_type;
  if (ev.detail_a != 0) obj["detail"] = ev.detail_a;
  if (!ev.note.empty()) obj["note"] = ev.note;
  return obj;
}

std::string to_jsonl(const sim::Trace& trace) {
  std::string out;
  for (const sim::TraceEvent& ev : trace.events()) {
    out += trace_event_json(ev).dump();
    out.push_back('\n');
  }
  if (trace.dropped_events() > 0) {
    Json meta = Json::object();
    meta["kind"] = "meta";
    meta["dropped_events"] = static_cast<std::uint64_t>(trace.dropped_events());
    meta["first_dropped_at"] = trace.first_dropped_at();
    out += meta.dump();
    out.push_back('\n');
  }
  return out;
}

namespace {

Json base_event(const std::string& name, const char* ph, double ts,
                std::size_t tid) {
  Json ev = Json::object();
  ev["name"] = name;
  ev["ph"] = ph;
  ev["ts"] = ts;
  ev["pid"] = 0;
  ev["tid"] = tid;
  return ev;
}

Json instant(const std::string& name, double ts, std::size_t tid) {
  Json ev = base_event(name, "i", ts, tid);
  ev["s"] = "t";  // thread-scoped instant
  return ev;
}

}  // namespace

Json to_perfetto(const sim::Trace& trace,
                 const std::vector<dr::PhaseSpan>& phase_spans, std::size_t k,
                 const PerfettoOptions& opts) {
  const double scale = opts.us_per_time_unit;
  Json events = Json::array();

  // Track names: one "thread" per peer under a single process.
  {
    Json proc = Json::object();
    proc["name"] = "process_name";
    proc["ph"] = "M";
    proc["pid"] = 0;
    Json args = Json::object();
    args["name"] = "asyncdr run";
    proc["args"] = std::move(args);
    events.push_back(std::move(proc));
  }
  for (std::size_t p = 0; p < k; ++p) {
    Json thread = Json::object();
    thread["name"] = "thread_name";
    thread["ph"] = "M";
    thread["pid"] = 0;
    thread["tid"] = p;
    Json args = Json::object();
    args["name"] = "peer " + std::to_string(p);
    thread["args"] = std::move(args);
    events.push_back(std::move(thread));
  }

  // Phase spans as complete slices.
  for (const dr::PhaseSpan& span : phase_spans) {
    if (span.peer == sim::kNoPeer) continue;
    Json ev = base_event(span.name, "X", span.begin * scale, span.peer);
    const sim::Time end = span.end < span.begin ? span.begin : span.end;
    ev["dur"] = (end - span.begin) * scale;
    Json args = Json::object();
    args["bits_queried"] = span.bits_queried;
    args["unit_messages"] = span.unit_messages;
    args["payload_messages"] = span.payload_messages;
    ev["args"] = std::move(args);
    events.push_back(std::move(ev));
  }

  // Instants from the trace.
  using Kind = sim::TraceEvent::Kind;
  for (const sim::TraceEvent& ev : trace.events()) {
    switch (ev.kind) {
      case Kind::kQuery: {
        Json q = instant("query " + std::to_string(ev.detail_a) + "b",
                         ev.at * scale, ev.from);
        Json args = Json::object();
        args["bits"] = ev.detail_a;
        q["args"] = std::move(args);
        events.push_back(std::move(q));
        break;
      }
      case Kind::kCrash:
        events.push_back(instant("crash", ev.at * scale, ev.from));
        break;
      case Kind::kTerminate:
        events.push_back(instant("terminate", ev.at * scale, ev.from));
        break;
      case Kind::kSend:
      case Kind::kDeliver:
        if (opts.include_messages) {
          const char* name = ev.kind == Kind::kSend ? "send " : "recv ";
          const std::size_t tid =
              ev.kind == Kind::kSend ? ev.from : ev.to;
          if (tid == sim::kNoPeer) break;
          events.push_back(
              instant(name + ev.payload_type, ev.at * scale, tid));
        }
        break;
      case Kind::kDrop:
      case Kind::kNote:
      case Kind::kStart:
        break;  // notes already show up as phase slices
    }
  }

  // Critical-path link edges as flow events: one "s"/"f" pair per cross-peer
  // hop, binding to the enclosing phase slices ("bp": "e") so viewers draw
  // the chain as arcs over the timeline. Endpoints that fall outside every
  // slice of their track (a faulty sender that never opened a phase, say)
  // are skipped — an unbound flow event is invalid trace-event JSON.
  if (opts.critical_path != nullptr) {
    const auto enclosed = [&](std::size_t tid, sim::Time at) {
      for (const dr::PhaseSpan& span : phase_spans) {
        if (span.peer != tid) continue;
        const sim::Time end = span.end < span.begin ? span.begin : span.end;
        if (span.begin <= at && at <= end) return true;
      }
      return false;
    };
    const auto flow_event = [&](const char* ph, std::size_t id,
                                const CriticalPathReport::Step& step) {
      Json ev = base_event("critical-path", ph, step.at * scale, step.peer);
      ev["cat"] = "critpath";
      ev["id"] = id;
      if (ph[0] == 'f') ev["bp"] = "e";
      return ev;
    };
    const std::vector<CriticalPathReport::Step>& steps =
        opts.critical_path->steps;
    for (std::size_t i = 1; i < steps.size(); ++i) {
      if (steps[i].in_edge != CausalEdge::kLink) continue;
      const CriticalPathReport::Step& src = steps[i - 1];
      const CriticalPathReport::Step& dst = steps[i];
      if (src.peer == sim::kNoPeer || dst.peer == sim::kNoPeer) continue;
      if (!enclosed(src.peer, src.at) || !enclosed(dst.peer, dst.at)) continue;
      events.push_back(flow_event("s", dst.event_index, src));
      events.push_back(flow_event("f", dst.event_index, dst));
    }
  }

  Json doc = Json::object();
  doc["traceEvents"] = std::move(events);
  doc["displayTimeUnit"] = "ms";
  return doc;
}

Json critical_path_json(const CriticalPathReport& report) {
  const auto attribution = [](const std::vector<
                               CriticalPathReport::Attribution>& rows) {
    Json arr = Json::array();
    for (const CriticalPathReport::Attribution& a : rows) {
      Json row = Json::object();
      row["key"] = a.key;
      row["time"] = a.time;
      row["edges"] = static_cast<std::uint64_t>(a.edges);
      arr.push_back(std::move(row));
    }
    return arr;
  };

  Json doc = Json::object();
  doc["complete"] = report.complete;
  doc["reconciled"] = report.reconciled;
  if (!report.incomplete_reason.empty()) {
    doc["incomplete_reason"] = report.incomplete_reason;
  }
  doc["reported_t"] = report.reported_t;
  doc["path_length"] = report.path_length;
  doc["start_offset"] = report.start_offset;
  if (report.terminal_peer != sim::kNoPeer) {
    doc["terminal_peer"] = report.terminal_peer;
  }
  doc["by_phase"] = attribution(report.by_phase);
  doc["by_peer"] = attribution(report.by_peer);
  doc["by_edge_kind"] = attribution(report.by_edge_kind);

  Json slack = Json::array();
  for (const CriticalPathReport::PeerSlack& s : report.slack) {
    Json row = Json::object();
    row["peer"] = s.peer;
    row["termination"] = s.termination;
    row["slack"] = s.slack;
    slack.push_back(std::move(row));
  }
  doc["slack"] = std::move(slack);

  Json steps = Json::array();
  for (const CriticalPathReport::Step& step : report.steps) {
    Json row = Json::object();
    row["event_index"] = static_cast<std::uint64_t>(step.event_index);
    if (step.peer != sim::kNoPeer) row["peer"] = step.peer;
    row["t"] = step.at;
    row["label"] = step.label;
    row["edge"] = causal_edge_name(step.in_edge);
    row["weight"] = step.in_weight;
    row["phase"] = step.phase;
    steps.push_back(std::move(row));
  }
  doc["steps"] = std::move(steps);
  return doc;
}

}  // namespace asyncdr::obs
