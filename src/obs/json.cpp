#include "obs/json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

#include "common/check.hpp"

namespace asyncdr::obs {

void Json::push_back(Json v) {
  if (type_ == Type::kNull) type_ = Type::kArray;
  ASYNCDR_EXPECTS_MSG(type_ == Type::kArray, "push_back on a non-array");
  items_.emplace_back(std::string{}, std::move(v));
}

Json& Json::operator[](const std::string& key) {
  if (type_ == Type::kNull) type_ = Type::kObject;
  ASYNCDR_EXPECTS_MSG(type_ == Type::kObject, "operator[] on a non-object");
  for (auto& [k, v] : items_) {
    if (k == key) return v;
  }
  items_.emplace_back(key, Json{});
  return items_.back().second;
}

const Json* Json::find(const std::string& key) const {
  if (type_ != Type::kObject) return nullptr;
  for (const auto& [k, v] : items_) {
    if (k == key) return &v;
  }
  return nullptr;
}

std::string Json::escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

namespace {

std::string number_to_string(double v) {
  // Shortest representation that round-trips a double.
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  double back = 0;
  for (int prec = 1; prec < 17; ++prec) {
    char probe[32];
    std::snprintf(probe, sizeof probe, "%.*g", prec, v);
    std::sscanf(probe, "%lf", &back);
    if (back == v) return probe;
  }
  return buf;
}

}  // namespace

void Json::write(std::string& out, int indent, int depth) const {
  const auto newline = [&](int d) {
    if (indent < 0) return;
    out.push_back('\n');
    out.append(static_cast<std::size_t>(indent) * d, ' ');
  };
  switch (type_) {
    case Type::kNull: out += "null"; return;
    case Type::kBool: out += bool_ ? "true" : "false"; return;
    case Type::kNumber:
      if (int_valued_) {
        out += std::to_string(int_);
      } else {
        ASYNCDR_EXPECTS_MSG(std::isfinite(num_),
                            "JSON cannot represent NaN/Inf");
        out += number_to_string(num_);
      }
      return;
    case Type::kString: out += escape(str_); return;
    case Type::kArray:
    case Type::kObject: {
      const char open = type_ == Type::kArray ? '[' : '{';
      const char close = type_ == Type::kArray ? ']' : '}';
      out.push_back(open);
      for (std::size_t i = 0; i < items_.size(); ++i) {
        if (i > 0) out.push_back(',');
        newline(depth + 1);
        if (type_ == Type::kObject) {
          out += escape(items_[i].first);
          out += indent < 0 ? ":" : ": ";
        }
        items_[i].second.write(out, indent, depth + 1);
      }
      if (!items_.empty()) newline(depth);
      out.push_back(close);
      return;
    }
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  write(out, indent, 0);
  return out;
}

namespace {

/// Recursive-descent parser over a string_view. No recursion-depth guard
/// beyond a fixed cap; observability files are machine-written and shallow.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  std::optional<Json> parse_document() {
    std::optional<Json> v = parse_value(0);
    if (!v) return std::nullopt;
    skip_ws();
    if (pos_ != text_.size()) return std::nullopt;  // trailing garbage
    return v;
  }

 private:
  static constexpr int kMaxDepth = 64;

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool consume(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) == word) {
      pos_ += word.size();
      return true;
    }
    return false;
  }

  std::optional<std::string> parse_string() {
    if (!consume('"')) return std::nullopt;
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) return std::nullopt;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return std::nullopt;
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else return std::nullopt;
          }
          // Encode the code point as UTF-8 (surrogate pairs unsupported;
          // the emitter never produces them).
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default: return std::nullopt;
      }
    }
    return std::nullopt;  // unterminated
  }

  std::optional<Json> parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    bool integral = true;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (std::isdigit(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        integral = false;
        ++pos_;
      } else {
        break;
      }
    }
    const std::string_view tok = text_.substr(start, pos_ - start);
    if (tok.empty()) return std::nullopt;
    if (integral) {
      std::int64_t iv = 0;
      const auto [p, ec] =
          std::from_chars(tok.data(), tok.data() + tok.size(), iv);
      if (ec == std::errc{} && p == tok.data() + tok.size()) return Json(iv);
    }
    double dv = 0;
    const auto [p, ec] = std::from_chars(tok.data(), tok.data() + tok.size(), dv);
    if (ec != std::errc{} || p != tok.data() + tok.size()) return std::nullopt;
    return Json(dv);
  }

  std::optional<Json> parse_value(int depth) {
    if (depth > kMaxDepth) return std::nullopt;
    skip_ws();
    if (pos_ >= text_.size()) return std::nullopt;
    const char c = text_[pos_];
    if (c == 'n') return literal("null") ? std::optional<Json>(Json{}) : std::nullopt;
    if (c == 't') return literal("true") ? std::optional<Json>(Json(true)) : std::nullopt;
    if (c == 'f') return literal("false") ? std::optional<Json>(Json(false)) : std::nullopt;
    if (c == '"') {
      auto s = parse_string();
      if (!s) return std::nullopt;
      return Json(std::move(*s));
    }
    if (c == '[') {
      ++pos_;
      Json arr = Json::array();
      skip_ws();
      if (consume(']')) return arr;
      while (true) {
        auto v = parse_value(depth + 1);
        if (!v) return std::nullopt;
        arr.push_back(std::move(*v));
        if (consume(']')) return arr;
        if (!consume(',')) return std::nullopt;
      }
    }
    if (c == '{') {
      ++pos_;
      Json obj = Json::object();
      skip_ws();
      if (consume('}')) return obj;
      while (true) {
        skip_ws();
        auto key = parse_string();
        if (!key || !consume(':')) return std::nullopt;
        auto v = parse_value(depth + 1);
        if (!v) return std::nullopt;
        obj[*key] = std::move(*v);
        if (consume('}')) return obj;
        if (!consume(',')) return std::nullopt;
      }
    }
    return parse_number();
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

std::optional<Json> Json::parse(std::string_view text) {
  return Parser(text).parse_document();
}

}  // namespace asyncdr::obs
