#include "obs/campaign.hpp"

#include <algorithm>

namespace asyncdr::obs {

const char* run_status_name(RunStatus status) {
  switch (status) {
    case RunStatus::kOk: return "ok";
    case RunStatus::kFailed: return "failed";
    case RunStatus::kDegraded: return "degraded";
  }
  return "unknown";
}

void CampaignCollector::MetricSet::add(RunStatus status,
                                       const dr::RunReport& report) {
  ++runs;
  switch (status) {
    case RunStatus::kOk: ++ok; break;
    case RunStatus::kFailed: ++failed; break;
    case RunStatus::kDegraded: ++degraded; break;
  }
  q.observe(static_cast<double>(report.query_complexity));
  t.observe(report.time_complexity);
  m.observe(static_cast<double>(report.message_complexity));
  events.observe(static_cast<double>(report.events));
  if (report.recovery.restarts > 0 || report.recovery.journal_replays > 0) {
    any_recovery = true;
  }
  restarts.observe(static_cast<double>(report.recovery.restarts));
  queries_saved.observe(static_cast<double>(report.recovery.queries_saved));
}

void CampaignCollector::MetricSet::merge(const MetricSet& other) {
  runs += other.runs;
  ok += other.ok;
  failed += other.failed;
  degraded += other.degraded;
  q.merge(other.q);
  t.merge(other.t);
  m.merge(other.m);
  events.merge(other.events);
  restarts.merge(other.restarts);
  queries_saved.merge(other.queries_saved);
  any_recovery = any_recovery || other.any_recovery;
}

Json CampaignCollector::MetricSet::to_json() const {
  Json j = Json::object();
  j["runs"] = static_cast<std::uint64_t>(runs);
  j["ok"] = static_cast<std::uint64_t>(ok);
  j["failed"] = static_cast<std::uint64_t>(failed);
  j["degraded"] = static_cast<std::uint64_t>(degraded);
  j["q"] = q.snapshot_json();
  j["t"] = t.snapshot_json();
  j["m"] = m.snapshot_json();
  j["events"] = events.snapshot_json();
  // Recovery histograms only when some run actually exercised the restart
  // path — an all-zero distribution says nothing and bloats summaries.
  if (any_recovery) {
    j["restarts"] = restarts.snapshot_json();
    j["queries_saved"] = queries_saved.snapshot_json();
  }
  return j;
}

void CampaignCollector::add_run(std::size_t index, std::uint64_t seed,
                                const std::string& label, RunStatus status,
                                const std::string& detail,
                                const dr::RunReport& report) {
  totals_.add(status, report);
  by_label_[label].add(status, report);
  if (status == RunStatus::kFailed) {
    failures_.push_back({index, seed, label, detail});
  }
  const std::size_t run_q = report.query_complexity;
  if (!have_worst_ || run_q > worst_q_ ||
      (run_q == worst_q_ && index < worst_index_)) {
    have_worst_ = true;
    worst_index_ = index;
    worst_seed_ = seed;
    worst_q_ = run_q;
  }
}

void CampaignCollector::add_timing(double wall_ms, double rss_mb) {
  wall_ms_.observe(wall_ms);
  if (rss_mb > 0) rss_mb_.observe(rss_mb);
}

void CampaignCollector::merge(const CampaignCollector& other) {
  totals_.merge(other.totals_);
  for (const auto& [label, set] : other.by_label_) {
    by_label_[label].merge(set);
  }
  failures_.insert(failures_.end(), other.failures_.begin(),
                   other.failures_.end());
  if (other.have_worst_ &&
      (!have_worst_ || other.worst_q_ > worst_q_ ||
       (other.worst_q_ == worst_q_ && other.worst_index_ < worst_index_))) {
    have_worst_ = true;
    worst_index_ = other.worst_index_;
    worst_seed_ = other.worst_seed_;
    worst_q_ = other.worst_q_;
  }
  wall_ms_.merge(other.wall_ms_);
  rss_mb_.merge(other.rss_mb_);
}

Json CampaignCollector::summary_json() const {
  Json j = Json::object();
  Json runs = Json::object();
  runs["total"] = static_cast<std::uint64_t>(totals_.runs);
  runs["ok"] = static_cast<std::uint64_t>(totals_.ok);
  runs["failed"] = static_cast<std::uint64_t>(totals_.failed);
  runs["degraded"] = static_cast<std::uint64_t>(totals_.degraded);
  j["runs"] = std::move(runs);
  j["metrics"] = totals_.to_json();

  Json by_label = Json::object();
  for (const auto& [label, set] : by_label_) {
    by_label[label] = set.to_json();
  }
  j["by_label"] = std::move(by_label);

  Json worst = Json::object();
  if (have_worst_) {
    Json w = Json::object();
    w["index"] = static_cast<std::uint64_t>(worst_index_);
    w["seed"] = worst_seed_;
    w["q"] = static_cast<std::uint64_t>(worst_q_);
    worst["max_q"] = std::move(w);
  }
  std::vector<FailureEntry> sorted = failures_;
  std::sort(sorted.begin(), sorted.end(),
            [](const FailureEntry& a, const FailureEntry& b) {
              return a.index < b.index;
            });
  Json listed = Json::array();
  for (std::size_t i = 0; i < sorted.size() && i < kMaxListedFailures; ++i) {
    Json f = Json::object();
    f["index"] = static_cast<std::uint64_t>(sorted[i].index);
    f["seed"] = sorted[i].seed;
    f["label"] = sorted[i].label;
    f["detail"] = sorted[i].detail;
    listed.push_back(std::move(f));
  }
  worst["failure_count"] = static_cast<std::uint64_t>(sorted.size());
  worst["failures"] = std::move(listed);
  j["worst"] = std::move(worst);
  return j;
}

Json CampaignCollector::timing_json() const {
  Json j = Json::object();
  j["wall_ms"] = wall_ms_.snapshot_json();
  j["rss_mb"] = rss_mb_.snapshot_json();
  return j;
}

}  // namespace asyncdr::obs
