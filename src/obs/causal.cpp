#include "obs/causal.hpp"

#include <algorithm>
#include <sstream>
#include <unordered_map>

#include "common/check.hpp"

namespace asyncdr::obs {

namespace {

using Kind = sim::TraceEvent::Kind;

/// The peer whose program order an event belongs to: the recipient for
/// deliveries and drops, the actor (`from`) for everything else.
sim::PeerId acting_peer(const sim::TraceEvent& ev) {
  return (ev.kind == Kind::kDeliver || ev.kind == Kind::kDrop) ? ev.to
                                                               : ev.from;
}

}  // namespace

CausalGraph build_causal_graph(const sim::Trace& trace) {
  const std::vector<sim::TraceEvent>& events = trace.events();
  CausalGraph graph;
  graph.nodes.resize(events.size());

  // Index of the send event per in-flight message id, and of the latest
  // action per peer. The log is time-ordered, so both always point backwards.
  std::unordered_map<std::uint64_t, std::size_t> send_of_msg;
  std::unordered_map<sim::PeerId, std::size_t> last_of_peer;

  for (std::size_t i = 0; i < events.size(); ++i) {
    const sim::TraceEvent& ev = events[i];
    CausalGraph::Node& node = graph.nodes[i];
    const sim::PeerId actor = acting_peer(ev);

    const auto link_to_program_order = [&] {
      const auto it =
          actor == sim::kNoPeer ? last_of_peer.end() : last_of_peer.find(actor);
      if (it == last_of_peer.end()) {
        // Nothing earlier on this peer: a defensive root (normally kStart
        // precedes all of a peer's actions).
        node.parent = -1;
        node.edge = CausalEdge::kRoot;
        return;
      }
      node.parent = static_cast<std::ptrdiff_t>(it->second);
      const sim::TraceEvent& parent = events[it->second];
      if (parent.kind == Kind::kQuery) {
        node.edge = CausalEdge::kQuery;
      } else if (parent.at == ev.at) {
        node.edge = CausalEdge::kLocal;
      } else {
        node.edge = CausalEdge::kSequence;
      }
    };

    switch (ev.kind) {
      case Kind::kStart:
      case Kind::kCrash:
        node.parent = -1;
        node.edge = CausalEdge::kRoot;
        break;
      case Kind::kDeliver:
      case Kind::kDrop: {
        const auto it = ev.msg_id == sim::kNoMessageId
                            ? send_of_msg.end()
                            : send_of_msg.find(ev.msg_id);
        if (it != send_of_msg.end()) {
          node.parent = static_cast<std::ptrdiff_t>(it->second);
          node.edge = CausalEdge::kLink;
        } else {
          link_to_program_order();  // send fell off a truncated trace
        }
        break;
      }
      case Kind::kSend:
      case Kind::kQuery:
      case Kind::kTerminate:
      case Kind::kNote:
        link_to_program_order();
        break;
    }

    if (ev.kind == Kind::kSend && ev.msg_id != sim::kNoMessageId) {
      send_of_msg[ev.msg_id] = i;
    }
    if (actor != sim::kNoPeer) last_of_peer[actor] = i;
  }
  return graph;
}

namespace {

/// Walks parent pointers from `from` back to a root; returns the chain in
/// root-to-`from` order. Parents always have smaller indices, so this
/// terminates and never cycles.
std::vector<std::size_t> chain_to_root(const CausalGraph& graph,
                                       std::size_t from) {
  std::vector<std::size_t> chain;
  std::ptrdiff_t cur = static_cast<std::ptrdiff_t>(from);
  while (cur >= 0) {
    chain.push_back(static_cast<std::size_t>(cur));
    const std::ptrdiff_t parent = graph.nodes[static_cast<std::size_t>(cur)].parent;
    ASYNCDR_EXPECTS_MSG(parent < cur, "causal parent must precede its child");
    cur = parent;
  }
  std::reverse(chain.begin(), chain.end());
  return chain;
}

/// Name of the phase span of `peer` covering time `at` (the latest span
/// beginning at or before `at`); kUnphased when the peer has none.
std::string phase_at(
    const std::unordered_map<sim::PeerId, std::vector<const dr::PhaseSpan*>>&
        spans_of,
    sim::PeerId peer, sim::Time at) {
  const auto it = spans_of.find(peer);
  if (it == spans_of.end()) return dr::kUnphased;
  const dr::PhaseSpan* covering = nullptr;
  for (const dr::PhaseSpan* span : it->second) {
    if (span->begin <= at) covering = span;  // spans are in open order
  }
  return covering == nullptr ? dr::kUnphased : covering->name;
}

void accumulate(std::vector<CriticalPathReport::Attribution>& rows,
                const std::string& key, sim::Time weight) {
  for (CriticalPathReport::Attribution& row : rows) {
    if (row.key == key) {
      row.time += weight;
      ++row.edges;
      return;
    }
  }
  rows.push_back({key, weight, 1});
}

bool nonfaulty(const std::vector<bool>& faulty, sim::PeerId peer) {
  return peer != sim::kNoPeer && peer < faulty.size() && !faulty[peer];
}

}  // namespace

CriticalPathReport extract_critical_path(
    const sim::Trace& trace, const CausalGraph& graph,
    const std::vector<dr::PhaseSpan>& phase_spans,
    const std::vector<bool>& faulty, sim::Time reported_t) {
  const std::vector<sim::TraceEvent>& events = trace.events();
  ASYNCDR_EXPECTS_MSG(graph.nodes.size() == events.size(),
                      "graph was built over a different trace");

  CriticalPathReport report;
  report.reported_t = reported_t;

  // Anchor: the latest nonfaulty termination (first log index on a tie —
  // the peer whose finish defines T).
  std::ptrdiff_t terminal = -1;
  for (std::size_t i = 0; i < events.size(); ++i) {
    const sim::TraceEvent& ev = events[i];
    if (ev.kind != Kind::kTerminate || !nonfaulty(faulty, ev.from)) continue;
    if (terminal < 0 || ev.at > events[static_cast<std::size_t>(terminal)].at) {
      terminal = static_cast<std::ptrdiff_t>(i);
    }
    report.slack.push_back({ev.from, ev.at, reported_t - ev.at});
  }
  std::sort(report.slack.begin(), report.slack.end(),
            [](const CriticalPathReport::PeerSlack& a,
               const CriticalPathReport::PeerSlack& b) {
              return a.slack != b.slack ? a.slack < b.slack : a.peer < b.peer;
            });

  if (trace.dropped_events() > 0) {
    std::ostringstream os;
    os.precision(3);
    os << std::fixed << "trace overflowed at t=" << trace.first_dropped_at()
       << "; the log covers only a prefix of the run";
    report.incomplete_reason = os.str();
  } else if (terminal >= 0) {
    report.complete = true;
  }
  if (terminal < 0) {
    // Stalled (or truncated-before-any-finish) run: anchor at the latest
    // recorded nonfaulty action so the path is the critical prefix.
    for (std::size_t i = 0; i < events.size(); ++i) {
      if (nonfaulty(faulty, acting_peer(events[i]))) {
        terminal = static_cast<std::ptrdiff_t>(i);
      }
    }
    if (report.incomplete_reason.empty()) {
      report.incomplete_reason =
          "no nonfaulty peer terminated (run stalled); the path is the "
          "critical prefix of the stuck run";
    }
  }
  if (terminal < 0) {
    report.incomplete_reason = "trace recorded no nonfaulty activity";
    return report;
  }

  std::unordered_map<sim::PeerId, std::vector<const dr::PhaseSpan*>> spans_of;
  for (const dr::PhaseSpan& span : phase_spans) {
    spans_of[span.peer].push_back(&span);
  }

  const std::vector<std::size_t> chain =
      chain_to_root(graph, static_cast<std::size_t>(terminal));

  // Phase per chain event, by program order: a "phase: X" note switches the
  // acting peer's phase for everything after (and including) it, which is
  // exact even when several phases begin at the same instant. Events before
  // a peer's first note fall back to the span lookup. The chain is index-
  // ascending, so one pass over the log labels every step.
  std::vector<std::string> chain_phase(chain.size());
  {
    constexpr const char* kPhasePrefix = "phase: ";
    constexpr std::size_t kPhasePrefixLen = 7;
    std::unordered_map<sim::PeerId, std::string> current;
    std::size_t next = 0;
    for (std::size_t i = 0; i < events.size() && next < chain.size(); ++i) {
      const sim::TraceEvent& ev = events[i];
      if (ev.kind == Kind::kNote && ev.from != sim::kNoPeer &&
          ev.note.rfind(kPhasePrefix, 0) == 0) {
        current[ev.from] = ev.note.substr(kPhasePrefixLen);
      }
      if (i != chain[next]) continue;
      const sim::PeerId actor = acting_peer(ev);
      const auto it =
          actor == sim::kNoPeer ? current.end() : current.find(actor);
      chain_phase[next] = it != current.end()
                              ? it->second
                              : phase_at(spans_of, actor, ev.at);
      ++next;
    }
  }

  report.terminal_peer = acting_peer(events[chain.back()]);
  report.start_offset = events[chain.front()].at;
  report.path_length = report.start_offset;
  report.steps.reserve(chain.size());
  for (std::size_t j = 0; j < chain.size(); ++j) {
    const sim::TraceEvent& ev = events[chain[j]];
    CriticalPathReport::Step step;
    step.event_index = chain[j];
    step.peer = acting_peer(ev);
    step.at = ev.at;
    step.label = ev.to_string();
    step.phase = chain_phase[j];
    if (j > 0) {
      const sim::TraceEvent& parent = events[chain[j - 1]];
      step.in_edge = graph.nodes[chain[j]].edge;
      step.in_weight = ev.at - parent.at;
      ASYNCDR_EXPECTS_MSG(step.in_weight >= 0,
                          "causal edge weights must be non-negative");
      report.path_length += step.in_weight;
      accumulate(report.by_phase, step.phase, step.in_weight);
      accumulate(report.by_peer, "p" + std::to_string(step.peer),
                 step.in_weight);
      accumulate(report.by_edge_kind, causal_edge_name(step.in_edge),
                 step.in_weight);
    }
    report.steps.push_back(std::move(step));
  }

  // The reconciliation invariant: weights telescope, so a correctly wired
  // DAG makes the path length land on the measured T *exactly* (both sides
  // copy the same termination timestamp; this is an equality check on
  // doubles by design, like the phase-accounting reconciliation).
  report.reconciled = report.complete && report.path_length == reported_t;
  return report;
}

std::string render_critical_prefix(const sim::Trace& trace,
                                   const CausalGraph& graph, sim::PeerId peer,
                                   std::size_t max_steps) {
  const sim::TraceEvent* last = trace.last_event_involving(peer);
  if (last == nullptr || trace.events().empty()) return {};
  const std::size_t anchor =
      static_cast<std::size_t>(last - trace.events().data());
  const std::vector<std::size_t> chain = chain_to_root(graph, anchor);

  std::ostringstream os;
  os.precision(3);
  os << std::fixed << "  critical prefix of p" << peer << " (last "
     << std::min(max_steps, chain.size()) << " of " << chain.size()
     << " causal steps):\n";
  const std::size_t first =
      chain.size() > max_steps ? chain.size() - max_steps : 0;
  for (std::size_t j = first; j < chain.size(); ++j) {
    const sim::TraceEvent& ev = trace.events()[chain[j]];
    os << "    ";
    if (j == 0) {
      os << "root";
    } else {
      os << '+' << (ev.at - trace.events()[chain[j - 1]].at) << ' '
         << causal_edge_name(graph.nodes[chain[j]].edge);
    }
    os << ' ' << ev.to_string() << '\n';
  }
  return os.str();
}

void embed_critical_path(dr::World& world, dr::RunReport& report) {
  sim::Trace* trace = world.trace();
  if (trace == nullptr) return;
  const CausalGraph graph = build_causal_graph(*trace);
  const std::size_t k = world.config().k;
  std::vector<bool> faulty(k, false);
  for (sim::PeerId id = 0; id < k; ++id) faulty[id] = world.is_faulty(id);
  report.critical_path = extract_critical_path(
      *trace, graph, report.phase_spans, faulty, report.time_complexity);
  if (!report.stall.empty()) {
    constexpr std::size_t kMaxStuckPrefixes = 4;
    for (std::size_t i = 0;
         i < report.unterminated_peers.size() && i < kMaxStuckPrefixes; ++i) {
      report.stall +=
          render_critical_prefix(*trace, graph, report.unterminated_peers[i]);
    }
  }
}

}  // namespace asyncdr::obs
