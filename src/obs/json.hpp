// Minimal JSON value type used by the observability layer: enough of a
// writer to emit metrics snapshots, bench baselines, JSONL event streams and
// Chrome trace-event files, and enough of a parser for tests and the bench
// comparison tooling to read them back. Deliberately not a general-purpose
// JSON library (no comments, no NaN/Inf literals, UTF-8 passthrough).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace asyncdr::obs {

/// An owned JSON value (null, bool, number, string, array or object).
/// Objects preserve insertion order so emitted files diff cleanly.
class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Json() = default;
  Json(bool b) : type_(Type::kBool), bool_(b) {}
  Json(double v) : type_(Type::kNumber), num_(v) {}
  Json(std::int64_t v)
      : type_(Type::kNumber), num_(static_cast<double>(v)), int_(v),
        int_valued_(true) {}
  Json(std::uint64_t v)
      : type_(Type::kNumber), num_(static_cast<double>(v)),
        int_(static_cast<std::int64_t>(v)), int_valued_(true) {}
  Json(int v) : Json(static_cast<std::int64_t>(v)) {}
  Json(std::string s) : type_(Type::kString), str_(std::move(s)) {}
  Json(const char* s) : Json(std::string(s)) {}

  static Json array() { Json j; j.type_ = Type::kArray; return j; }
  static Json object() { Json j; j.type_ = Type::kObject; return j; }

  [[nodiscard]] Type type() const { return type_; }
  [[nodiscard]] bool is_null() const { return type_ == Type::kNull; }
  [[nodiscard]] bool is_number() const { return type_ == Type::kNumber; }
  [[nodiscard]] bool is_string() const { return type_ == Type::kString; }
  [[nodiscard]] bool is_array() const { return type_ == Type::kArray; }
  [[nodiscard]] bool is_object() const { return type_ == Type::kObject; }

  [[nodiscard]] bool as_bool() const { return bool_; }
  [[nodiscard]] double as_number() const { return num_; }
  [[nodiscard]] std::int64_t as_int() const {
    return int_valued_ ? int_ : static_cast<std::int64_t>(num_);
  }
  [[nodiscard]] const std::string& as_string() const { return str_; }

  /// Array ops. push_back converts null values into arrays on first use.
  void push_back(Json v);
  [[nodiscard]] std::size_t size() const { return items_.size(); }
  [[nodiscard]] const Json& at(std::size_t i) const { return items_[i].second; }
  [[nodiscard]] const std::vector<std::pair<std::string, Json>>& members() const {
    return items_;
  }

  /// Object ops. operator[] inserts a null member when absent (and converts
  /// a null value into an object on first use); find returns nullptr.
  Json& operator[](const std::string& key);
  [[nodiscard]] const Json* find(const std::string& key) const;

  /// Serializes. indent < 0 emits a single line; otherwise pretty-prints
  /// with that many spaces per level. Numbers that were constructed from
  /// integers print without a decimal point.
  [[nodiscard]] std::string dump(int indent = -1) const;

  /// Parses a complete JSON document (trailing garbage is an error).
  static std::optional<Json> parse(std::string_view text);

  /// Escapes one string as a JSON string literal, quotes included. Exposed
  /// for streaming emitters (JSONL) that bypass the value type.
  static std::string escape(std::string_view s);

 private:
  void write(std::string& out, int indent, int depth) const;

  Type type_ = Type::kNull;
  bool bool_ = false;
  double num_ = 0;
  std::int64_t int_ = 0;
  bool int_valued_ = false;
  std::string str_;
  /// Array elements use an empty key; object members carry theirs.
  std::vector<std::pair<std::string, Json>> items_;
};

}  // namespace asyncdr::obs
