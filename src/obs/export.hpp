// Structured exporters over sim::Trace and the phase spans: a JSONL event
// stream (one JSON object per line, grep/jq-friendly) and a Chrome
// trace-event JSON file loadable in Perfetto / chrome://tracing with one
// track per peer, phase slices, and query/crash/terminate instants.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "dr/phase.hpp"
#include "obs/critpath.hpp"
#include "obs/json.hpp"
#include "sim/trace.hpp"

namespace asyncdr::obs {

/// One trace event as a JSON object: {"kind", "t", "from", "to", "payload",
/// "detail", "note"} with absent-as-null peers omitted.
Json trace_event_json(const sim::TraceEvent& ev);

/// The whole trace, one event per line, newline-terminated. A trailing
/// meta line reports overflow when events were dropped.
std::string to_jsonl(const sim::Trace& trace);

/// Chrome trace-event export options.
struct PerfettoOptions {
  /// Microseconds per virtual time unit. The default maps 1 virtual time
  /// unit (the paper's max message latency) to 1ms of timeline.
  double us_per_time_unit = 1000.0;
  /// Include per-message send/deliver instants (can dwarf the phase slices
  /// on large runs; off keeps only queries, crashes and terminations).
  bool include_messages = false;
  /// When set, the critical path's cross-peer (link) edges are exported as
  /// flow events ("s"/"f" pairs, cat "critpath") arcing across the peer
  /// tracks. Flow endpoints outside every phase slice of their track are
  /// skipped: trace-event flows must bind to an enclosing slice. Not owned;
  /// must outlive the call.
  const CriticalPathReport* critical_path = nullptr;
};

/// Builds the Chrome trace-event document: {"traceEvents": [...],
/// "displayTimeUnit": "ms"}. Tracks: pid 0, tid = peer id (named via
/// thread_name metadata); phase spans become complete ("X") slices;
/// queries, crashes and terminations become thread-scoped instants ("i").
Json to_perfetto(const sim::Trace& trace,
                 const std::vector<dr::PhaseSpan>& phase_spans, std::size_t k,
                 const PerfettoOptions& opts = {});

/// The critical-path report as JSON: verdict fields, the per-phase / peer /
/// edge-kind attributions, slack, and the path steps (the `critpath` CLI's
/// --format json output and the chaos artifact payload).
Json critical_path_json(const CriticalPathReport& report);

}  // namespace asyncdr::obs
