#include "obs/collect.hpp"

#include <string>

#include "common/check.hpp"

namespace asyncdr::obs {

namespace {

std::vector<double> latency_bounds() {
  // Propagation delays live in (0, 1]; serialized multi-unit transfers and
  // beyond-model stressors push past that.
  return {0.1, 0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0};
}

}  // namespace

void RunMetricsCollector::attach(dr::World& world) {
  ASYNCDR_EXPECTS_MSG(world_ == nullptr, "collector already attached");
  world_ = &world;
  const std::size_t k = world.config().k;

  query_bits_ =
      &registry_.histogram("source_query_bits", Histogram::pow2_bounds(16));
  payload_bits_ =
      &registry_.histogram("net_payload_bits", Histogram::pow2_bounds(20));
  queue_depth_ =
      &registry_.histogram("sim_event_queue_depth", Histogram::pow2_bounds(16));
  dropped_ = &registry_.counter("net_dropped_messages_total");

  peer_query_bits_.resize(k);
  peer_queries_.resize(k);
  peer_unit_messages_.resize(k);
  peer_payload_messages_.resize(k);
  for (std::size_t p = 0; p < k; ++p) {
    const Labels peer{{"peer", std::to_string(p)}};
    peer_query_bits_[p] =
        &registry_.counter("source_query_bits_total", peer);
    peer_queries_[p] = &registry_.counter("source_queries_total", peer);
    peer_unit_messages_[p] =
        &registry_.counter("net_unit_messages_total", peer);
    peer_payload_messages_[p] =
        &registry_.counter("net_payload_messages_total", peer);
  }
  // Per-link latency series (and their map slots) are created lazily on
  // first delivery: k^2 of them exist in principle, most never carry a
  // message, and attach() must not pay for the quiet ones.

  world.add_observer(this);
  world.add_query_listener([this](sim::PeerId peer, std::size_t bits) {
    peer_query_bits_[peer]->add(bits);
    peer_queries_[peer]->add(1);
    query_bits_->observe(static_cast<double>(bits));
  });
}

void RunMetricsCollector::sample_queue_depth() {
  queue_depth_->observe(static_cast<double>(world_->engine().pending()));
}

void RunMetricsCollector::on_send(const sim::Message& msg,
                                  std::size_t unit_messages) {
  peer_unit_messages_[msg.from]->add(unit_messages);
  peer_payload_messages_[msg.from]->add(1);
  payload_bits_->observe(static_cast<double>(msg.payload->size_bits()));
  sample_queue_depth();
}

void RunMetricsCollector::on_deliver(const sim::Message& msg) {
  const std::size_t k = world_->config().k;
  Histogram*& h =
      link_latency_[static_cast<std::uint64_t>(msg.from) * k + msg.to];
  if (h == nullptr) {
    h = &registry_.histogram("net_link_latency", latency_bounds(),
                             {{"from", std::to_string(msg.from)},
                              {"to", std::to_string(msg.to)}});
  }
  h->observe(world_->engine().now() - msg.sent_at);
  sample_queue_depth();
}

void RunMetricsCollector::on_drop(const sim::Message& msg) {
  (void)msg;
  dropped_->add(1);
}

void RunMetricsCollector::finalize(const dr::RunReport& report) {
  registry_.gauge("run_query_complexity_bits")
      .set(static_cast<double>(report.query_complexity));
  registry_.gauge("run_time_complexity").set(report.time_complexity);
  registry_.gauge("run_message_complexity_units")
      .set(static_cast<double>(report.message_complexity));
  registry_.gauge("run_total_query_bits")
      .set(static_cast<double>(report.total_queries));
  registry_.gauge("run_events").set(static_cast<double>(report.events));
  registry_.gauge("run_ok").set(report.ok() ? 1 : 0);
  registry_.gauge("source_bits_served_total")
      .set(static_cast<double>(world_->source().total_bits_served()));
  // The substrate's actual link-state footprint: directed links that ever
  // carried traffic. Under the sparse layout this is what was allocated
  // (the dense equivalent would be k*k regardless of traffic).
  registry_.gauge("net_active_links")
      .set(static_cast<double>(world_->network().active_links()));
  for (const dr::RunReport::PhaseBreakdown& ph : report.phases) {
    const Labels labels{{"phase", ph.name}};
    registry_.gauge("phase_query_bits", labels)
        .set(static_cast<double>(ph.bits_queried));
    registry_.gauge("phase_unit_messages", labels)
        .set(static_cast<double>(ph.unit_messages));
    registry_.gauge("phase_max_span", labels).set(ph.max_span);
  }
  // Crash-recovery accounting (all zero on crash-stop worlds). The resume
  // path runs inside the "recovery" protocol phase, so its Q/T/M share also
  // shows up in the per-phase gauges above; these totals say how much of the
  // work the journal avoided re-doing.
  const dr::RecoveryStats& rec = report.recovery;
  registry_.gauge("recovery_restarts")
      .set(static_cast<double>(rec.restarts));
  registry_.gauge("recovery_journal_replays")
      .set(static_cast<double>(rec.journal_replays));
  registry_.gauge("recovery_cold_fallbacks")
      .set(static_cast<double>(rec.cold_fallbacks));
  registry_.gauge("recovery_torn_tails")
      .set(static_cast<double>(rec.torn_tails));
  registry_.gauge("recovery_bits_recovered")
      .set(static_cast<double>(rec.bits_recovered));
  registry_.gauge("recovery_queries_saved")
      .set(static_cast<double>(rec.queries_saved));
}

}  // namespace asyncdr::obs
