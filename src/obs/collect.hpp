// Live metrics collection for one dr::World run: a NetworkObserver plus a
// source-query listener that populate a MetricsRegistry with the standard
// series (query bits, payload sizes, per-link latency, event-queue depth).
// Attach before run(), finalize(report) after; snapshot via the registry.
#pragma once

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "dr/world.hpp"
#include "obs/metrics.hpp"
#include "sim/network.hpp"

namespace asyncdr::obs {

/// Collects the standard run metrics into a registry it does not own. The
/// collector must outlive the world's run() call.
class RunMetricsCollector final : public sim::NetworkObserver {
 public:
  explicit RunMetricsCollector(MetricsRegistry& registry)
      : registry_(registry) {}

  /// Registers with the world (network observer + query listener) and
  /// pre-creates the per-peer series so hot paths are pointer bumps.
  void attach(dr::World& world);

  // sim::NetworkObserver
  void on_send(const sim::Message& msg, std::size_t unit_messages) override;
  void on_deliver(const sim::Message& msg) override;
  void on_drop(const sim::Message& msg) override;

  /// Folds the run's headline measures (Q/T/M, verdicts) into gauges. Call
  /// once after run().
  void finalize(const dr::RunReport& report);

 private:
  void sample_queue_depth();

  MetricsRegistry& registry_;
  dr::World* world_ = nullptr;

  // Cached series (valid for the registry's lifetime).
  Histogram* query_bits_ = nullptr;
  Histogram* payload_bits_ = nullptr;
  Histogram* queue_depth_ = nullptr;
  std::vector<Counter*> peer_query_bits_;
  std::vector<Counter*> peer_queries_;
  std::vector<Counter*> peer_unit_messages_;
  std::vector<Counter*> peer_payload_messages_;
  /// Per-link latency histograms keyed from * k + to, populated on a link's
  /// first delivery. A map, not a k*k vector: most of the k^2 links never
  /// carry a message, and attach() must stay cheap at large k.
  std::unordered_map<std::uint64_t, Histogram*> link_latency_;
  Counter* dropped_ = nullptr;
};

}  // namespace asyncdr::obs
