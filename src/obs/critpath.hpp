// The critical-path report: the longest happens-before chain realizing a
// run's time complexity T, with its length attributed per phase, per peer,
// and per edge kind, plus per-peer termination slack. Pure data — dr embeds
// it in RunReport without calling into the obs library; construction and
// rendering live in obs/causal.cpp and obs/critpath.cpp.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "sim/types.hpp"

namespace asyncdr::obs {

/// Why one event happened after another (see DESIGN.md, "Causal analysis").
enum class CausalEdge {
  kRoot,      ///< no parent: a peer start or an injected crash
  kLink,      ///< send -> deliver/drop: propagation + link serialization
  kQuery,     ///< a source query preceding the next local action (zero time)
  kLocal,     ///< same-instant program order on one peer
  kSequence,  ///< idle gap between consecutive actions of one peer
};

/// Stable lowercase name of an edge kind ("link", "local", ...).
[[nodiscard]] const char* causal_edge_name(CausalEdge edge);

/// The extracted critical path of one run.
struct CriticalPathReport {
  /// One event on the path, in root-to-terminal order.
  struct Step {
    std::size_t event_index = 0;  ///< index into the trace's event log
    sim::PeerId peer = sim::kNoPeer;  ///< acting peer (recipient for deliver)
    sim::Time at = 0;
    std::string label;  ///< rendered trace event
    CausalEdge in_edge = CausalEdge::kRoot;
    sim::Time in_weight = 0;  ///< at - parent.at; 0 for the root
    std::string phase;        ///< acting peer's phase covering `at`
  };

  /// Path time accumulated under one attribution key.
  struct Attribution {
    std::string key;
    sim::Time time = 0;
    std::size_t edges = 0;
  };

  /// How close a peer's own termination came to defining T.
  struct PeerSlack {
    sim::PeerId peer = sim::kNoPeer;
    sim::Time termination = 0;
    sim::Time slack = 0;  ///< reported_t - termination
  };

  /// Whether the whole run was visible: no trace overflow and a terminating
  /// nonfaulty peer to anchor the path. When false, the path is the critical
  /// prefix of what was recorded and `incomplete_reason` says why.
  bool complete = false;
  std::string incomplete_reason;
  /// The invariant: `complete` and path_length == reported_t exactly (both
  /// are copies of the same termination timestamp; the equality validates
  /// the DAG wiring, like the phase-accounting reconciliation).
  bool reconciled = false;
  sim::Time reported_t = 0;
  sim::Time path_length = 0;   ///< start_offset + sum of step weights
  sim::Time start_offset = 0;  ///< root event time (late-starter offset)
  sim::PeerId terminal_peer = sim::kNoPeer;

  std::vector<Step> steps;
  std::vector<Attribution> by_phase;      ///< key = phase name
  std::vector<Attribution> by_peer;       ///< key = "p<id>"
  std::vector<Attribution> by_edge_kind;  ///< key = causal_edge_name
  /// Nonfaulty terminating peers by ascending slack (critical peer first).
  std::vector<PeerSlack> slack;

  /// Text tree: the verdict line, the attribution tables, the path steps.
  [[nodiscard]] std::string to_string(std::size_t max_steps = 40) const;
};

}  // namespace asyncdr::obs
