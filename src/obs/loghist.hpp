// Log-bucketed (HDR-style) histogram for campaign-level aggregation. Unlike
// obs::Histogram (fixed caller-chosen bounds, single-run scale), LogHistogram
// covers the whole positive double range with log2 major buckets split into
// kSubBuckets linear sub-buckets each, so one shape serves Q (bits), T
// (virtual time), M (messages), wall-clock ms and RSS MB alike with a bounded
// relative error of 1/kSubBuckets per recorded value.
//
// The determinism contract (see DESIGN.md, "Campaign telemetry"): merge() is
// commutative and associative — bucket counts are integer adds and min/max
// are exact comparisons — and every value snapshot_json() emits is derived
// from (bucket counts, exact min, exact max) in fixed bucket order. A
// campaign summary built by merging per-worker shards is therefore
// byte-identical regardless of thread count or completion order. The one
// order-dependent quantity (the floating-point running sum) is kept for
// in-process consumers but deliberately NOT emitted.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "obs/json.hpp"

namespace asyncdr::obs {

class LogHistogram {
 public:
  /// Linear sub-buckets per power-of-two octave: relative bucket width
  /// 1/16 = 6.25%, the resolution bound on reported percentiles.
  static constexpr int kSubBuckets = 16;
  /// Octave range [2^kMinOctave, 2^(kMaxOctave+1)); values outside clamp to
  /// the first/last bucket. 2^-10 ~ 1ms-scale virtual times through
  /// 2^40 ~ 10^12 bits comfortably covers every campaign metric.
  static constexpr int kMinOctave = -10;
  static constexpr int kMaxOctave = 40;
  /// Bucket 0 holds non-positive values (Q of an all-crashed run is 0);
  /// buckets 1.. are the log-linear grid.
  static constexpr std::size_t kBucketCount =
      1 + static_cast<std::size_t>(kMaxOctave - kMinOctave + 1) * kSubBuckets;

  void observe(double v);

  /// Folds `other` in: integer bucket adds plus exact min/max — the
  /// order-independent half of the determinism contract.
  void merge(const LogHistogram& other);

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] bool empty() const { return count_ == 0; }
  [[nodiscard]] double min() const { return count_ ? min_ : 0; }  ///< exact
  [[nodiscard]] double max() const { return count_ ? max_ : 0; }  ///< exact
  /// Order-dependent running sum — in-process use only, never serialized.
  [[nodiscard]] double sum() const { return sum_; }

  /// Bucket index for a value (clamped; 0 for v <= 0).
  [[nodiscard]] static std::size_t bucket_index(double v);
  /// The bucket's representative value: its exclusive upper bound (0 for
  /// bucket 0). Deterministic closed form, so percentiles are reproducible.
  [[nodiscard]] static double bucket_value(std::size_t index);

  /// Nearest-rank percentile over bucket counts (q in [0, 100], exact rank
  /// arithmetic in integers), clamped into [min, max] so singleton and
  /// extreme queries return exact recorded values. 0 when empty.
  [[nodiscard]] double percentile(std::uint64_t q) const;

  /// Mean estimated from bucket representatives, accumulated in fixed
  /// bucket order (deterministic, unlike sum()/count()).
  [[nodiscard]] double mean_est() const;

  /// Sparse counts, ascending index: {index, count} pairs with count > 0.
  [[nodiscard]] std::vector<std::pair<std::size_t, std::uint64_t>>
  sparse_counts() const;

  /// Deterministic snapshot: {"count", "min", "max", "p50", "p90", "p99",
  /// "mean_est", "buckets": {"<index>": count, ...} (sparse, ascending)}.
  [[nodiscard]] Json snapshot_json() const;

 private:
  std::vector<std::uint64_t> counts_;  ///< sized kBucketCount on first use
  std::uint64_t count_ = 0;
  double sum_ = 0;
  double min_ = 0;
  double max_ = 0;
};

}  // namespace asyncdr::obs
