#include "obs/loghist.hpp"

#include <cmath>

#include "common/check.hpp"

namespace asyncdr::obs {

std::size_t LogHistogram::bucket_index(double v) {
  if (!(v > 0)) return 0;  // non-positive (and NaN) land in the zero bucket
  int exp = 0;
  const double mantissa = std::frexp(v, &exp);  // v = mantissa * 2^exp
  const int octave = exp - 1;                   // v in [2^octave, 2^(octave+1))
  if (octave < kMinOctave) return 1;
  if (octave > kMaxOctave) return kBucketCount - 1;
  // mantissa in [0.5, 1) -> fraction through the octave in [0, 1).
  const double frac = mantissa * 2.0 - 1.0;
  int sub = static_cast<int>(frac * kSubBuckets);
  if (sub >= kSubBuckets) sub = kSubBuckets - 1;
  if (sub < 0) sub = 0;
  return 1 +
         static_cast<std::size_t>(octave - kMinOctave) * kSubBuckets +
         static_cast<std::size_t>(sub);
}

double LogHistogram::bucket_value(std::size_t index) {
  if (index == 0) return 0;
  ASYNCDR_EXPECTS_MSG(index < kBucketCount, "bucket index out of range");
  const std::size_t i = index - 1;
  const int octave = kMinOctave + static_cast<int>(i / kSubBuckets);
  const int sub = static_cast<int>(i % kSubBuckets);
  // Exclusive upper bound of the sub-bucket [lo + sub*w, lo + (sub+1)*w).
  return std::ldexp(1.0 + static_cast<double>(sub + 1) / kSubBuckets, octave);
}

void LogHistogram::observe(double v) {
  if (counts_.empty()) counts_.assign(kBucketCount, 0);
  ++counts_[bucket_index(v)];
  if (count_ == 0 || v < min_) min_ = v;
  if (count_ == 0 || v > max_) max_ = v;
  ++count_;
  sum_ += v;
}

void LogHistogram::merge(const LogHistogram& other) {
  if (other.count_ == 0) return;
  if (counts_.empty()) counts_.assign(kBucketCount, 0);
  for (std::size_t i = 0; i < kBucketCount; ++i) {
    counts_[i] += other.counts_[i];
  }
  if (count_ == 0 || other.min_ < min_) min_ = other.min_;
  if (count_ == 0 || other.max_ > max_) max_ = other.max_;
  count_ += other.count_;
  sum_ += other.sum_;
}

double LogHistogram::percentile(std::uint64_t q) const {
  if (count_ == 0) return 0;
  if (q > 100) q = 100;
  // Nearest-rank: the smallest rank r with r*100 >= q*count. Integer
  // arithmetic keeps the rank exact for any count.
  std::uint64_t rank = (count_ * q + 99) / 100;
  if (rank == 0) rank = 1;
  std::uint64_t cum = 0;
  double value = max_;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    cum += counts_[i];
    if (cum >= rank) {
      value = bucket_value(i);
      break;
    }
  }
  // Clamp into the exact observed range: bucket upper bounds overshoot the
  // largest sample, and the min clamp makes singletons exact.
  if (value > max_) value = max_;
  if (value < min_) value = min_;
  return value;
}

double LogHistogram::mean_est() const {
  if (count_ == 0) return 0;
  double total = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] > 0) {
      total += static_cast<double>(counts_[i]) * bucket_value(i);
    }
  }
  return total / static_cast<double>(count_);
}

std::vector<std::pair<std::size_t, std::uint64_t>>
LogHistogram::sparse_counts() const {
  std::vector<std::pair<std::size_t, std::uint64_t>> out;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] > 0) out.emplace_back(i, counts_[i]);
  }
  return out;
}

namespace {
/// Integral doubles (the common case for Q/M counts) emit as JSON integers
/// instead of the %g scientific form ("100", not "1e+02").
Json number(double v) {
  if (std::nearbyint(v) == v && std::fabs(v) <= 9.0e15) {
    return Json(static_cast<std::int64_t>(v));
  }
  return Json(v);
}
}  // namespace

Json LogHistogram::snapshot_json() const {
  Json j = Json::object();
  j["count"] = count_;
  j["min"] = number(min());
  j["max"] = number(max());
  j["p50"] = number(percentile(50));
  j["p90"] = number(percentile(90));
  j["p99"] = number(percentile(99));
  j["mean_est"] = number(mean_est());
  // Sparse bucket map, keyed by decimal bucket index in ascending order
  // (insertion order is preserved, so the emitted object is canonical).
  Json buckets = Json::object();
  for (const auto& [index, count] : sparse_counts()) {
    buckets[std::to_string(index)] = count;
  }
  j["buckets"] = std::move(buckets);
  return j;
}

}  // namespace asyncdr::obs
