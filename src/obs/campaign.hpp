// Cross-run aggregation for multi-world campaigns (chaos sweeps, bench
// grids, seed sweeps): folds per-run dr::RunReports into mergeable
// LogHistograms of Q/T/M/events plus the recovery counters, with per-label
// breakdowns, worst-case tracking, and a failure roster.
//
// Determinism contract: every collector operation is order-independent —
// histograms merge bucket-wise, counts add, the worst-run comparison is a
// total order on (metric, run index), and summary_json() sorts labels and
// failures before emitting. The campaign runner gives each worker its own
// collector shard and merges at the end; the merged summary is byte-
// identical to the single-threaded one. Machine-dependent measures (wall
// clock, RSS) are quarantined in timing_json(), which the deterministic
// summary omits unless explicitly requested.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "dr/world.hpp"
#include "obs/json.hpp"
#include "obs/loghist.hpp"

namespace asyncdr::obs {

/// Outcome class of one campaign run.
enum class RunStatus {
  kOk,        ///< correctness predicate held, bounds respected
  kFailed,    ///< violation (the campaign-level failure signal)
  kDegraded,  ///< beyond-model case that failed gracefully
};

[[nodiscard]] const char* run_status_name(RunStatus status);

class CampaignCollector {
 public:
  /// Folds one finished run in. `index` is the run's grid position (used
  /// for deterministic worst/failure ordering), `label` its grouping key
  /// (e.g. the protocol or the bench series).
  void add_run(std::size_t index, std::uint64_t seed,
               const std::string& label, RunStatus status,
               const std::string& detail, const dr::RunReport& report);

  /// Machine-dependent per-run measures; kept apart from the deterministic
  /// aggregates (see timing_json()).
  void add_timing(double wall_ms, double rss_mb);

  /// Order-independent fold of another shard.
  void merge(const CampaignCollector& other);

  [[nodiscard]] std::size_t runs() const { return totals_.runs; }
  [[nodiscard]] std::size_t ok() const { return totals_.ok; }
  [[nodiscard]] std::size_t failed() const { return totals_.failed; }
  [[nodiscard]] std::size_t degraded() const { return totals_.degraded; }

  /// Deterministic aggregate: outcome counts, metric histograms, sorted
  /// per-label breakdowns, worst run by Q, and the sorted failure roster
  /// (capped at kMaxListedFailures entries, with the full count alongside).
  [[nodiscard]] Json summary_json() const;

  /// Wall-clock / RSS histograms — machine-dependent, never part of the
  /// byte-identity contract.
  [[nodiscard]] Json timing_json() const;

  static constexpr std::size_t kMaxListedFailures = 32;

 private:
  struct MetricSet {
    std::size_t runs = 0;
    std::size_t ok = 0;
    std::size_t failed = 0;
    std::size_t degraded = 0;
    LogHistogram q, t, m, events;
    LogHistogram restarts, queries_saved;  // zero-count on crash-stop runs
    bool any_recovery = false;

    void add(RunStatus status, const dr::RunReport& report);
    void merge(const MetricSet& other);
    [[nodiscard]] Json to_json() const;
  };

  struct FailureEntry {
    std::size_t index = 0;
    std::uint64_t seed = 0;
    std::string label;
    std::string detail;
  };

  MetricSet totals_;
  std::map<std::string, MetricSet> by_label_;  // sorted by construction
  std::vector<FailureEntry> failures_;
  // Worst run by Q (ties broken toward the lower grid index, so the pick is
  // a pure function of the run set).
  bool have_worst_ = false;
  std::size_t worst_index_ = 0;
  std::uint64_t worst_seed_ = 0;
  std::size_t worst_q_ = 0;
  LogHistogram wall_ms_;
  LogHistogram rss_mb_;
};

}  // namespace asyncdr::obs
