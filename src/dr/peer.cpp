#include "dr/peer.hpp"

#include "common/check.hpp"
#include "dr/world.hpp"

namespace asyncdr::dr {

Peer::~Peer() = default;

std::string Peer::status() const {
  return terminated_ ? "terminated" : "running (no protocol status)";
}

std::size_t Peer::k() const { return world_->config().k; }
std::size_t Peer::n() const { return world_->config().n; }

void Peer::deliver(const sim::Message& msg) {
  if (terminated_) return;
  if (world_->network().is_crashed(id_)) return;
  on_message(msg.from, *msg.payload);
}

void Peer::send(sim::PeerId to, sim::PayloadPtr payload) {
  world_->network().send(id_, to, std::move(payload));
}

void Peer::broadcast(sim::PayloadPtr payload) {
  world_->network().broadcast(id_, std::move(payload));
}

bool Peer::query(std::size_t index) {
  return world_->source().query(id_, index);
}

BitVec Peer::query_range(std::size_t lo, std::size_t len) {
  return world_->source().query_range(id_, lo, len);
}

BitVec Peer::query_indices(const std::vector<std::size_t>& indices) {
  return world_->source().query_indices(id_, indices);
}

sim::Time Peer::now() const { return world_->engine().now(); }

void Peer::begin_phase(std::string name) {
  world_->begin_phase(id_, std::move(name));
}

void Peer::finish(BitVec output) {
  ASYNCDR_EXPECTS_MSG(!terminated_, "finish() called twice");
  terminated_ = true;
  output_ = std::move(output);
  termination_time_ = now();
  world_->phase_tracker_.close(id_, termination_time_);
  if (world_->trace()) {
    world_->trace()->record_terminate(termination_time_, id_);
  }
}

void Peer::bind(World* world, sim::PeerId id, Rng rng) {
  world_ = world;
  id_ = id;
  rng_ = rng;
}

}  // namespace asyncdr::dr
