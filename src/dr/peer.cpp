#include "dr/peer.hpp"

#include "common/check.hpp"
#include "dr/world.hpp"

namespace asyncdr::dr {

Peer::~Peer() = default;

std::string Peer::status() const {
  return terminated_ ? "terminated" : "running (no protocol status)";
}

std::size_t Peer::k() const { return world_->config().k; }
std::size_t Peer::n() const { return world_->config().n; }

void Peer::deliver(const sim::Message& msg) {
  if (terminated_) return;
  if (world_->network().is_crashed(id_)) return;
  on_message(msg.from, *msg.payload);
}

void Peer::send(sim::PeerId to, sim::PayloadPtr payload) {
  world_->network().send(id_, to, std::move(payload));
}

void Peer::broadcast(sim::PayloadPtr payload) {
  world_->network().broadcast(id_, std::move(payload));
}

bool Peer::query(std::size_t index) {
  return world_->source().query(id_, index);
}

BitVec Peer::query_range(std::size_t lo, std::size_t len) {
  return world_->source().query_range(id_, lo, len);
}

BitVec Peer::query_indices(const std::vector<std::size_t>& indices) {
  return world_->source().query_indices(id_, indices);
}

sim::Time Peer::now() const { return world_->engine().now(); }

void Peer::on_restart(const RecoveryState& state) {
  (void)state;
  on_start();
}

bool Peer::crashed() const { return world_->network().is_crashed(id_); }

bool Peer::journaling() const { return world_->recovery_enabled(); }

bool Peer::journal_bits(std::size_t lo, const BitVec& values) {
  if (!journaling()) return true;
  return world_->journal_for(id_).append_bits(lo, values);
}

bool Peer::journal_indices(const std::vector<std::size_t>& indices,
                           const BitVec& values) {
  if (!journaling()) return true;
  ASYNCDR_EXPECTS(indices.size() == values.size());
  Journal journal = world_->journal_for(id_);
  std::size_t i = 0;
  while (i < indices.size()) {
    std::size_t j = i + 1;
    while (j < indices.size() && indices[j] == indices[j - 1] + 1) ++j;
    BitVec run(j - i);
    for (std::size_t b = i; b < j; ++b) run.set(b - i, values.get(b));
    // A kill between runs leaves a valid prefix: strictly fewer claimed
    // bits than downloaded, never more.
    if (!journal.append_bits(indices[i], run)) return false;
    i = j;
  }
  return true;
}

bool Peer::journal_checkpoint(const std::string& name, std::uint64_t value) {
  if (!journaling()) return true;
  return world_->journal_for(id_).checkpoint(name, value);
}

void Peer::credit_queries_saved(std::size_t bits) {
  world_->credit_queries_saved(bits);
}

void Peer::begin_phase(std::string name) {
  world_->begin_phase(id_, std::move(name));
}

void Peer::finish(BitVec output) {
  ASYNCDR_EXPECTS_MSG(!terminated_, "finish() called twice");
  terminated_ = true;
  output_ = std::move(output);
  termination_time_ = now();
  world_->phase_tracker_.close(id_, termination_time_);
  if (world_->trace()) {
    world_->trace()->record_terminate(termination_time_, id_);
  }
}

void Peer::bind(World* world, sim::PeerId id, Rng rng) {
  world_ = world;
  id_ = id;
  rng_ = rng;
}

}  // namespace asyncdr::dr
