// The Data Retrieval model's parameters, validated once and shared by every
// protocol, adversary, and harness.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "sim/types.hpp"

namespace asyncdr::dr {

/// DR-model instance parameters.
///
/// Matches the paper's notation: n input bits, k peers, fault fraction beta
/// (t = floor(beta * k) faulty peers allowed), message size B bits.
struct Config {
  std::size_t n = 0;           ///< input array length in bits
  std::size_t k = 0;           ///< number of peers
  double beta = 0.0;           ///< fault fraction in [0, 1)
  std::size_t message_bits = 64;  ///< the paper's B
  std::uint64_t seed = 1;      ///< master seed for all randomness

  /// t = floor(beta * k): the maximum number of faulty peers.
  [[nodiscard]] std::size_t max_faulty() const;

  /// (1 - beta) * k rounded down to the guaranteed count of nonfaulty peers,
  /// i.e. k - max_faulty().
  [[nodiscard]] std::size_t min_honest() const { return k - max_faulty(); }

  /// Throws contract_violation if the configuration is malformed.
  void validate() const;

  [[nodiscard]] std::string to_string() const;
};

}  // namespace asyncdr::dr
