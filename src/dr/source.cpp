#include "dr/source.hpp"

#include "common/check.hpp"

namespace asyncdr::dr {

Source::Source(BitVec data, std::size_t k)
    : data_(std::move(data)), counts_(k, 0), indices_(k) {
  ASYNCDR_EXPECTS(k >= 1);
  ASYNCDR_EXPECTS(data_.size() >= 1);
}

const BitVec& Source::view_for(sim::PeerId by) const {
  const auto it = overlays_.find(by);
  return it == overlays_.end() ? data_ : it->second;
}

namespace {

std::string oob_message(const char* what, std::size_t got, std::size_t n) {
  return std::string("Source::") + what + ": index " + std::to_string(got) +
         " out of bounds for the n=" + std::to_string(n) + "-bit array";
}

}  // namespace

bool Source::query(sim::PeerId by, std::size_t index) {
  ASYNCDR_EXPECTS_MSG(by < counts_.size(),
                      "Source::query: unknown peer id " + std::to_string(by));
  ASYNCDR_EXPECTS_MSG(index < data_.size(),
                      oob_message("query", index, data_.size()));
  account(by, index, index + 1);
  return view_for(by).get(index);
}

BitVec Source::query_range(sim::PeerId by, std::size_t lo, std::size_t len) {
  ASYNCDR_EXPECTS_MSG(by < counts_.size(),
                      "Source::query_range: unknown peer id " +
                          std::to_string(by));
  // Overflow-safe form of lo + len <= n: `lo + len` can wrap for adversarial
  // values, silently passing the naive check.
  ASYNCDR_EXPECTS_MSG(
      len <= data_.size() && lo <= data_.size() - len,
      "Source::query_range: range [" + std::to_string(lo) + ", " +
          std::to_string(lo) + "+" + std::to_string(len) +
          ") exceeds the n=" + std::to_string(data_.size()) + "-bit array");
  account(by, lo, lo + len);
  return view_for(by).slice(lo, len);
}

BitVec Source::query_indices(sim::PeerId by,
                             const std::vector<std::size_t>& indices) {
  ASYNCDR_EXPECTS_MSG(by < counts_.size(),
                      "Source::query_indices: unknown peer id " +
                          std::to_string(by));
  const BitVec& view = view_for(by);
  BitVec out(indices.size());
  for (std::size_t j = 0; j < indices.size(); ++j) {
    ASYNCDR_EXPECTS_MSG(indices[j] < data_.size(),
                        oob_message("query_indices", indices[j], data_.size()));
    account(by, indices[j], indices[j] + 1);
    out.set(j, view.get(indices[j]));
  }
  return out;
}

std::uint64_t Source::bits_queried(sim::PeerId by) const {
  ASYNCDR_EXPECTS(by < counts_.size());
  return counts_[by];
}

const IntervalSet& Source::queried_indices(sim::PeerId by) const {
  ASYNCDR_EXPECTS(by < indices_.size());
  ASYNCDR_EXPECTS_MSG(record_indices_, "index recording is disabled");
  return indices_[by];
}

void Source::set_data(BitVec data) {
  ASYNCDR_EXPECTS(data.size() == data_.size());
  data_ = std::move(data);
}

void Source::set_overlay(sim::PeerId peer, BitVec fake) {
  ASYNCDR_EXPECTS(peer < counts_.size());
  ASYNCDR_EXPECTS(fake.size() == data_.size());
  overlays_[peer] = std::move(fake);
}

void Source::reset_accounting() {
  for (auto& c : counts_) c = 0;
  for (auto& s : indices_) s = IntervalSet{};
  total_bits_served_ = 0;
}

void Source::account(sim::PeerId by, std::size_t lo, std::size_t hi) {
  counts_[by] += hi - lo;
  total_bits_served_ += hi - lo;
  if (record_indices_) indices_[by].insert(lo, hi);
  if (query_observer_) query_observer_(by, hi - lo);
}

}  // namespace asyncdr::dr
