// Crash-recovery write-ahead journal. A world running with recovery enabled
// gives every peer an append-only log of the intervals it has downloaded
// (with their bit values) plus protocol phase checkpoints. The backing
// store is plain in-memory bytes owned by the world — deterministic, no
// wall clock, no ambient filesystem — and it survives a peer crash, which
// is the whole point: a revived peer replays its log and resumes querying
// only the bits it never persisted.
//
// Records are CRC-framed so a torn or truncated tail is *detected and
// discarded*, never trusted: replay stops at the first record whose frame
// or checksum does not verify, so the recovered interval set is always a
// prefix of what was durably committed (the no-over-claim invariant).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "common/bitvec.hpp"
#include "common/interval_set.hpp"
#include "sim/types.hpp"

namespace asyncdr::dr {

/// Sentinel crash points inside the journal write path. Chaos injectors
/// hook these to kill a peer *mid-write* and check that recovery never
/// trusts the resulting torn tail.
enum class CrashPoint {
  kAppendStart,  ///< before any byte of a bits record is written
  kMidRecord,    ///< header + partial payload written, no CRC (torn tail)
  kAppendCommit, ///< the full record (including CRC) is durable
  kCheckpoint,   ///< before a checkpoint record is written
};

[[nodiscard]] const char* to_string(CrashPoint point);

/// Invoked at each sentinel; returning true means "this peer was just
/// killed here" — the append aborts (leaving whatever bytes were already
/// written) and reports failure to the caller.
using CrashPointHook = std::function<bool(sim::PeerId, CrashPoint)>;

/// Result of replaying one peer's log.
struct JournalReplay {
  /// The CRC-verified claimed download set.
  IntervalSet intervals;
  /// Recovered bit values (size n); positions outside `intervals` are 0.
  BitVec bits;
  /// Checkpoints in append order: (name, value).
  std::vector<std::pair<std::string, std::uint64_t>> checkpoints;
  /// Complete records replayed.
  std::size_t records = 0;
  /// True iff a trailing partial/corrupt record was discarded.
  bool torn = false;
  /// Bytes discarded past the last verified record.
  std::size_t discarded_bytes = 0;
};

/// What a revived peer gets handed instead of on_start(): the replayed
/// journal plus how many times it has been restarted.
struct RecoveryState {
  JournalReplay journal;
  std::size_t restart_count = 0;
};

/// Per-peer append-only byte logs, owned by the world so they outlive peer
/// incarnations. The corruption helpers exist for the chaos layer
/// (journal-loss injectors); protocol code never calls them.
class JournalStore {
 public:
  explicit JournalStore(std::size_t k);

  [[nodiscard]] std::size_t peers() const { return logs_.size(); }
  [[nodiscard]] const std::vector<std::uint8_t>& log(sim::PeerId id) const;
  [[nodiscard]] std::size_t bytes(sim::PeerId id) const;

  /// Drops the last `count` bytes of a log (simulated partial loss).
  void truncate_tail(sim::PeerId id, std::size_t count);
  /// Flips one bit; `bit_index` is taken modulo the log's bit length
  /// (no-op on an empty log), so injectors need not know the exact size.
  void flip_bit(sim::PeerId id, std::size_t bit_index);
  /// Wipes the log entirely (total journal loss -> cold restart).
  void clear(sim::PeerId id);

  /// Installs the crash-point hook consulted on every append.
  void set_crash_point_hook(CrashPointHook hook) { hook_ = std::move(hook); }

 private:
  friend class Journal;

  /// True iff the hook says the peer was killed at this point.
  [[nodiscard]] bool killed_at(sim::PeerId id, CrashPoint point) const;

  std::vector<std::vector<std::uint8_t>> logs_;
  CrashPointHook hook_;
};

/// Lightweight per-peer write handle over a JournalStore.
class Journal {
 public:
  Journal(JournalStore& store, sim::PeerId id);

  /// Appends one record claiming bits [lo, lo + values.size()) with the
  /// given values. Returns false iff a crash-point sentinel killed the
  /// peer mid-append — the caller must stop immediately (it is crashed).
  bool append_bits(std::size_t lo, const BitVec& values);

  /// Appends a protocol phase checkpoint. Same return convention.
  bool checkpoint(const std::string& name, std::uint64_t value);

  /// Replays a log against an n-bit input. Walks records in order and
  /// stops at the first framing or CRC failure; everything after is
  /// reported as a discarded torn tail. Never throws on corrupt input.
  [[nodiscard]] static JournalReplay replay(
      const std::vector<std::uint8_t>& log, std::size_t n);

  /// CRC-32 (reflected, polynomial 0xEDB88320) over a byte range.
  [[nodiscard]] static std::uint32_t crc32(const std::uint8_t* data,
                                           std::size_t len);

 private:
  JournalStore& store_;
  sim::PeerId id_;
};

}  // namespace asyncdr::dr
