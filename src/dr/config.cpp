#include "dr/config.hpp"

#include <cmath>
#include <sstream>

#include "common/check.hpp"

namespace asyncdr::dr {

std::size_t Config::max_faulty() const {
  // floor with a tiny epsilon so beta values like 0.2 with k = 5 yield
  // exactly 1 despite floating-point representation of 0.2 * 5.
  return static_cast<std::size_t>(std::floor(beta * static_cast<double>(k) + 1e-9));
}

void Config::validate() const {
  ASYNCDR_EXPECTS_MSG(n >= 1, "input must have at least one bit");
  ASYNCDR_EXPECTS_MSG(k >= 2, "need at least two peers");
  ASYNCDR_EXPECTS_MSG(beta >= 0.0 && beta < 1.0, "beta must be in [0,1)");
  ASYNCDR_EXPECTS_MSG(max_faulty() < k, "at least one peer must be nonfaulty");
  ASYNCDR_EXPECTS_MSG(message_bits >= 1, "message size must be positive");
}

std::string Config::to_string() const {
  std::ostringstream os;
  os << "Config{n=" << n << ", k=" << k << ", beta=" << beta
     << " (t=" << max_faulty() << "), B=" << message_bits << ", seed=" << seed
     << "}";
  return os.str();
}

}  // namespace asyncdr::dr
