#include "dr/phase.hpp"

#include <utility>

namespace asyncdr::dr {

std::size_t PhaseTracker::open_span(sim::PeerId peer, std::string name,
                                    sim::Time now) {
  close(peer, now);
  spans_.push_back(PhaseSpan{peer, std::move(name), now, -1, 0, 0, 0});
  const std::size_t index = spans_.size() - 1;
  open_[peer] = index;
  return index;
}

std::size_t PhaseTracker::current(sim::PeerId peer, sim::Time now) {
  const auto it = open_.find(peer);
  if (it != open_.end()) return it->second;
  return open_span(peer, kUnphased, now);
}

void PhaseTracker::begin(sim::PeerId peer, std::string name, sim::Time now) {
  open_span(peer, std::move(name), now);
}

void PhaseTracker::on_query(sim::PeerId peer, std::uint64_t bits,
                            sim::Time now) {
  spans_[current(peer, now)].bits_queried += bits;
}

void PhaseTracker::on_send(sim::PeerId peer, std::uint64_t units,
                           sim::Time now) {
  PhaseSpan& span = spans_[current(peer, now)];
  span.unit_messages += units;
  span.payload_messages += 1;
}

void PhaseTracker::close(sim::PeerId peer, sim::Time at) {
  const auto it = open_.find(peer);
  if (it == open_.end()) return;
  spans_[it->second].end = at;
  open_.erase(it);
}

void PhaseTracker::close_all(sim::Time at) {
  for (const auto& [peer, index] : open_) spans_[index].end = at;
  open_.clear();
}

}  // namespace asyncdr::dr
