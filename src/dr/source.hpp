// The trusted external data source of the DR model. It answers point and
// range queries with the true bits of X and accounts every queried bit per
// peer — the quantity the paper's query complexity measures.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "common/bitvec.hpp"
#include "common/interval_set.hpp"
#include "sim/types.hpp"

namespace asyncdr::dr {

/// Read-only n-bit array with per-peer query accounting.
///
/// Queries are answered synchronously. In the paper source-to-peer
/// communication is also asynchronous, but every protocol here issues its
/// queries at a stage boundary and blocks on nothing else until the answers
/// are used, so delaying answers only rescales time without changing any
/// decision; the simplification is recorded in DESIGN.md.
class Source {
 public:
  Source(BitVec data, std::size_t k);

  [[nodiscard]] std::size_t n() const { return data_.size(); }
  [[nodiscard]] std::size_t peers() const { return counts_.size(); }

  /// Queries one bit on behalf of peer `by`; costs 1 bit.
  bool query(sim::PeerId by, std::size_t index);

  /// Queries the contiguous range [lo, lo+len); costs len bits.
  BitVec query_range(sim::PeerId by, std::size_t lo, std::size_t len);

  /// Queries an arbitrary index list; costs indices.size() bits. The result
  /// bit j is X[indices[j]].
  BitVec query_indices(sim::PeerId by, const std::vector<std::size_t>& indices);

  /// Bits queried so far by one peer.
  [[nodiscard]] std::uint64_t bits_queried(sim::PeerId by) const;

  /// Total bits the source has served across all peers — maintained as its
  /// own counter (not derived from the per-peer array) so consistency tests
  /// can cross-check the two accounting paths.
  [[nodiscard]] std::uint64_t total_bits_served() const { return total_bits_served_; }

  /// When enabled, records *which* indices each peer queried — used by the
  /// lower-bound adversary to find a bit the victim never looked at.
  void enable_index_recording(bool on) { record_indices_ = on; }
  [[nodiscard]] const IntervalSet& queried_indices(sim::PeerId by) const;

  /// Observer invoked on every accounted query batch (peer, bits) — wired
  /// to the execution trace when tracing is enabled.
  using QueryObserver = std::function<void(sim::PeerId, std::size_t)>;
  void set_query_observer(QueryObserver observer) {
    query_observer_ = std::move(observer);
  }

  /// Ground truth, for verification only (peers must go through query()).
  [[nodiscard]] const BitVec& data() const { return data_; }

  /// Swaps in a different array without resetting counters. Only the
  /// two-world lower-bound constructions use this.
  void set_data(BitVec data);

  /// Makes queries by `peer` answer from `fake` instead of the real array
  /// (still accounted). This is how the Theorem 3.1/3.2 adversary's
  /// corrupted coalition "acts as if the input were X": they run the honest
  /// code against the other world's source.
  void set_overlay(sim::PeerId peer, BitVec fake);

  /// Zeroes all per-peer accounting (used between attack phases).
  void reset_accounting();

 private:
  void account(sim::PeerId by, std::size_t lo, std::size_t hi);

  [[nodiscard]] const BitVec& view_for(sim::PeerId by) const;

  BitVec data_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_bits_served_ = 0;
  std::vector<IntervalSet> indices_;
  std::map<sim::PeerId, BitVec> overlays_;
  QueryObserver query_observer_;
  bool record_indices_ = false;
};

}  // namespace asyncdr::dr
