// Event-driven peer base class. Concrete protocol peers (and Byzantine
// attack peers) override on_start()/on_message() and use the protected
// helpers to talk to the network and the source. A peer finishes by calling
// finish(output); after that it ignores all further deliveries, matching the
// paper's terminated peers.
#pragma once

#include <memory>
#include <string>

#include "common/bitvec.hpp"
#include "common/rng.hpp"
#include "sim/message.hpp"
#include "sim/network.hpp"
#include "sim/types.hpp"

namespace asyncdr::dr {

class World;
struct RecoveryState;

/// Base class for all peers in a DR world.
class Peer : public sim::Receiver {
 public:
  Peer() = default;
  Peer(const Peer&) = delete;
  Peer& operator=(const Peer&) = delete;
  ~Peer() override;

  [[nodiscard]] sim::PeerId id() const { return id_; }
  /// Number of peers in the world.
  [[nodiscard]] std::size_t k() const;
  /// Number of input bits.
  [[nodiscard]] std::size_t n() const;

  [[nodiscard]] bool terminated() const { return terminated_; }
  [[nodiscard]] const BitVec& output() const { return output_; }
  [[nodiscard]] sim::Time termination_time() const { return termination_time_; }

  /// Invoked once at the peer's (adversary-chosen) start time.
  virtual void on_start() = 0;

  /// Invoked *instead of* on_start when the world revives this incarnation
  /// after a crash (crash-recovery worlds only). `state` carries the
  /// replayed journal. The default ignores the journal and cold-starts;
  /// recoverable protocols override it to resume from the recovered bits.
  virtual void on_restart(const RecoveryState& state);

  /// One-line description of what the peer is doing / waiting on, for the
  /// stall report a run emits when peers fail to terminate. Protocols
  /// override this to expose their wait state (phase, pending quorums, ...).
  [[nodiscard]] virtual std::string status() const;

  /// sim::Receiver — routes to on_message unless terminated/crashed.
  void deliver(const sim::Message& msg) final;

 protected:
  /// Handles one delivered payload.
  virtual void on_message(sim::PeerId from, const sim::Payload& payload) = 0;

  void send(sim::PeerId to, sim::PayloadPtr payload);
  void broadcast(sim::PayloadPtr payload);

  bool query(std::size_t index);
  BitVec query_range(std::size_t lo, std::size_t len);
  BitVec query_indices(const std::vector<std::size_t>& indices);

  [[nodiscard]] sim::Time now() const;

  /// True iff this peer is currently severed from the network. Crash-point
  /// sentinels can kill a peer synchronously inside a handler; long
  /// handlers check this to stop doing work as a ghost.
  [[nodiscard]] bool crashed() const;

  /// True iff the world journals downloads (crash-recovery enabled).
  [[nodiscard]] bool journaling() const;
  /// Write-ahead helpers: append what was just downloaded / a phase
  /// checkpoint to this peer's journal. No-ops returning true when
  /// journaling is off. A false return means a crash-point sentinel killed
  /// this peer mid-append — stop immediately.
  bool journal_bits(std::size_t lo, const BitVec& values);
  /// Journals an index batch (with values aligned to `indices`) as maximal
  /// contiguous runs. `indices` must be strictly increasing.
  bool journal_indices(const std::vector<std::size_t>& indices,
                       const BitVec& values);
  bool journal_checkpoint(const std::string& name, std::uint64_t value);
  /// Credits recovered bits this incarnation did *not* re-query against the
  /// run's queries_saved counter (recovery accounting).
  void credit_queries_saved(std::size_t bits);

  /// Opens a named protocol phase for this peer (closing the previous one).
  /// All source queries and sends from now until the next begin_phase() or
  /// finish() are attributed to it in RunReport's per-phase breakdown, and
  /// the phase appears as a timeline slice in exported traces. Phase names
  /// should be the paper's own stage names ("committee-election", ...).
  void begin_phase(std::string name);

  /// Records the output array and stops processing messages.
  void finish(BitVec output);

  /// Per-peer deterministic random stream (split off the config seed).
  Rng& rng() { return rng_; }

  World& world() { return *world_; }
  [[nodiscard]] const World& world() const { return *world_; }

 private:
  friend class World;
  void bind(World* world, sim::PeerId id, Rng rng);

  World* world_ = nullptr;
  sim::PeerId id_ = sim::kNoPeer;
  Rng rng_{0};
  bool terminated_ = false;
  BitVec output_;
  sim::Time termination_time_ = 0;
};

}  // namespace asyncdr::dr
