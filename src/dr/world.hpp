// A World wires one DR-model instance together: the engine, the clique
// network, the trusted source, the peers (honest and faulty), and the crash
// schedule. Running it produces a RunReport with the paper's three
// complexity measures and a correctness verdict.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/bitvec.hpp"
#include "dr/config.hpp"
#include "dr/peer.hpp"
#include "dr/source.hpp"
#include "sim/engine.hpp"
#include "sim/network.hpp"
#include "sim/trace.hpp"

namespace asyncdr::dr {

/// Diagnostics emitted when a run stalls: the event budget was exhausted or
/// nonfaulty peers were left unterminated at quiescence. Names the stuck
/// peers, what each last did (and says it is waiting on, via
/// Peer::status()), and which links still carried in-flight messages.
struct StallReport {
  struct PeerState {
    sim::PeerId id = sim::kNoPeer;
    bool crashed = false;
    sim::Time last_send = -1;      ///< last accepted send; < 0 = never
    sim::Time last_delivery = -1;  ///< last delivery to it; < 0 = never
    std::uint64_t bits_queried = 0;
    std::string status;      ///< Peer::status()
    std::string last_event;  ///< last trace event, if tracing was on
  };
  struct LinkState {
    sim::PeerId from = sim::kNoPeer;
    sim::PeerId to = sim::kNoPeer;
    std::uint32_t in_flight = 0;
  };

  bool budget_exhausted = false;
  std::size_t pending_events = 0;        ///< events still queued at stop
  std::vector<PeerState> stuck_peers;    ///< unterminated nonfaulty peers
  std::vector<LinkState> busy_links;     ///< links with in-flight messages
  std::size_t crashed_peers = 0;

  std::string to_string() const;
};

/// Outcome of one execution.
struct RunReport {
  bool all_terminated = false;   ///< every nonfaulty peer finished
  bool all_correct = false;      ///< every finished nonfaulty output == X
  bool budget_exhausted = false; ///< engine event budget hit (runaway)

  /// The Download correctness predicate: terminated, correct, not runaway.
  bool ok() const { return all_terminated && all_correct && !budget_exhausted; }

  std::size_t query_complexity = 0;      ///< Q: max bits queried, nonfaulty
  sim::Time time_complexity = 0;         ///< T: last nonfaulty termination
  std::uint64_t message_complexity = 0;  ///< M: unit messages by nonfaulty
  std::uint64_t payload_messages = 0;    ///< send() calls by nonfaulty
  std::uint64_t total_queries = 0;       ///< sum of bits queried, nonfaulty
  std::size_t events = 0;

  std::vector<std::size_t> per_peer_queries;  ///< indexed by peer id
  std::vector<sim::PeerId> incorrect_peers;
  std::vector<sim::PeerId> unterminated_peers;
  /// Per-peer outputs (empty BitVec for peers that did not terminate);
  /// consumers like the oracle aggregation read downloaded arrays here.
  std::vector<BitVec> outputs;

  /// Rendered StallReport, filled iff the run stalled (budget exhausted or
  /// unterminated nonfaulty peers); empty on clean runs.
  std::string stall;

  std::string to_string() const;
};

/// One DR-model instance.
class World {
 public:
  /// input.size() must equal cfg.n.
  World(Config cfg, BitVec input);

  const Config& config() const { return cfg_; }
  sim::Engine& engine() { return engine_; }
  sim::Network& network() { return net_; }
  Source& source() { return source_; }

  /// Installs the peer implementation for one ID (honest protocol peer or a
  /// Byzantine attack peer). Every ID must be set before run().
  void set_peer(sim::PeerId id, std::unique_ptr<Peer> peer);
  Peer& peer(sim::PeerId id);

  /// Marks a peer as faulty: excluded from the correctness predicate and
  /// from all complexity measures. Byzantine attack peers must be marked.
  void mark_faulty(sim::PeerId id);
  bool is_faulty(sim::PeerId id) const;
  std::size_t faulty_count() const;

  /// Crash-fault helpers; both imply mark_faulty(id).
  void schedule_crash_at(sim::PeerId id, sim::Time t);
  /// Crashes the peer just before its (count+1)-th send — i.e. it gets
  /// exactly `count` more sends out — modelling death mid-broadcast.
  void crash_after_sends(sim::PeerId id, std::uint64_t count);

  /// Adversary-chosen start time (default 0; the model has no simultaneous
  /// start guarantee).
  void set_start_time(sim::PeerId id, sim::Time t);

  /// Enables execution tracing (sends, deliveries, drops, crashes, queries,
  /// terminations). Call before run(). Returns the trace, owned by the
  /// world.
  sim::Trace& enable_trace(std::size_t capacity = 1 << 20);
  /// The trace if enabled, else nullptr.
  sim::Trace* trace() { return trace_.get(); }

  /// Runs to quiescence (or the event budget) and reports. If the run
  /// stalls, the report's `stall` field carries the rendered StallReport.
  RunReport run(std::size_t max_events = sim::Engine::kDefaultEventBudget);

  /// Builds the stall diagnostics for the current world state (normally
  /// invoked by run() on a stalled outcome; exposed for tests and tools).
  StallReport build_stall_report(bool budget_exhausted) const;

  /// Per-peer RNG stream used to bind peers; exposed so adversaries can
  /// derive their own independent streams from the same master seed.
  Rng adversary_rng(std::uint64_t tag) const;

 private:
  void install_send_hook_if_needed();

  friend class Peer;

  Config cfg_;
  sim::Engine engine_;
  sim::Network net_;
  Source source_;
  std::unique_ptr<sim::Trace> trace_;
  std::vector<std::unique_ptr<Peer>> peers_;
  std::vector<bool> faulty_;
  std::vector<sim::Time> start_times_;
  std::map<sim::PeerId, std::uint64_t> sends_remaining_;  // crash_after_sends
  bool ran_ = false;
};

}  // namespace asyncdr::dr
