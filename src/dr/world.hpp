// A World wires one DR-model instance together: the engine, the clique
// network, the trusted source, the peers (honest and faulty), and the crash
// schedule. Running it produces a RunReport with the paper's three
// complexity measures and a correctness verdict.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/bitvec.hpp"
#include "dr/config.hpp"
#include "dr/journal.hpp"
#include "dr/peer.hpp"
#include "dr/phase.hpp"
#include "dr/source.hpp"
#include "obs/critpath.hpp"
#include "sim/engine.hpp"
#include "sim/network.hpp"
#include "sim/trace.hpp"

namespace asyncdr::dr {

/// Diagnostics emitted when a run stalls: the event budget was exhausted or
/// nonfaulty peers were left unterminated at quiescence. Names the stuck
/// peers, what each last did (and says it is waiting on, via
/// Peer::status()), and which links still carried in-flight messages.
struct StallReport {
  struct PeerState {
    sim::PeerId id = sim::kNoPeer;
    bool crashed = false;
    sim::Time last_send = -1;      ///< last accepted send; < 0 = never
    sim::Time last_delivery = -1;  ///< last delivery to it; < 0 = never
    std::uint64_t bits_queried = 0;
    std::string status;      ///< Peer::status()
    std::string last_event;  ///< last trace event, if tracing was on
  };
  struct LinkState {
    sim::PeerId from = sim::kNoPeer;
    sim::PeerId to = sim::kNoPeer;
    std::uint64_t in_flight = 0;  ///< 64-bit: replication stressors multiply copies
  };

  bool budget_exhausted = false;
  std::size_t pending_events = 0;        ///< events still queued at stop
  std::vector<PeerState> stuck_peers;    ///< unterminated nonfaulty peers
  std::vector<LinkState> busy_links;     ///< links with in-flight messages
  std::size_t crashed_peers = 0;
  /// Virtual time at which the bounded trace overflowed and stopped
  /// recording; negative when tracing was off or nothing was dropped. Past
  /// this instant the per-peer last_event lines say nothing.
  sim::Time trace_cutoff = -1;

  [[nodiscard]] std::string to_string() const;
};

/// Restart policy for crash-recovery worlds. Re-registration after a crash
/// backs off exponentially (capped), so restart storms de-synchronize
/// instead of hammering the source in lockstep.
struct RecoveryOptions {
  sim::Time base_delay = 0.5;    ///< backoff before the first re-registration
  double backoff_factor = 2.0;   ///< growth per successive restart
  sim::Time max_delay = 8.0;     ///< backoff cap
  double jitter = 0.5;           ///< uniform extra delay in [0, jitter)
  std::size_t max_restarts = 8;  ///< further restart requests are ignored
  /// A/B switch for benchmarks: ignore the journal on restart (the peer
  /// cold-starts every time). Measures what warm recovery saves.
  bool cold_restart = false;

  /// Deterministic backoff component before restart number
  /// `restarts + 1` (jitter excluded): min(max_delay, base * factor^restarts).
  [[nodiscard]] sim::Time backoff(std::size_t restarts) const;
};

/// Recovery counters accumulated over one run.
struct RecoveryStats {
  std::uint64_t restarts = 0;         ///< successful revivals
  std::uint64_t journal_replays = 0;  ///< replays that recovered >= 1 record
  std::uint64_t cold_fallbacks = 0;   ///< replays of an empty/unusable log
  std::uint64_t torn_tails = 0;       ///< replays that discarded a torn tail
  std::uint64_t bits_recovered = 0;   ///< bits restored from journals
  std::uint64_t queries_saved = 0;    ///< recovered bits peers skipped re-querying
};

/// Outcome of one execution.
struct RunReport {
  bool all_terminated = false;   ///< every nonfaulty peer finished
  bool all_correct = false;      ///< every finished nonfaulty output == X
  bool budget_exhausted = false; ///< engine event budget hit (runaway)

  /// The Download correctness predicate: terminated, correct, not runaway.
  [[nodiscard]] bool ok() const { return all_terminated && all_correct && !budget_exhausted; }

  std::size_t query_complexity = 0;      ///< Q: max bits queried, nonfaulty
  sim::Time time_complexity = 0;         ///< T: last nonfaulty termination
  std::uint64_t message_complexity = 0;  ///< M: unit messages by nonfaulty
  std::uint64_t payload_messages = 0;    ///< send() calls by nonfaulty
  std::uint64_t total_queries = 0;       ///< sum of bits queried, nonfaulty
  std::size_t events = 0;

  std::vector<std::size_t> per_peer_queries;  ///< indexed by peer id
  std::vector<sim::PeerId> incorrect_peers;
  std::vector<sim::PeerId> unterminated_peers;
  /// Per-peer outputs (empty BitVec for peers that did not terminate);
  /// consumers like the oracle aggregation read downloaded arrays here.
  std::vector<BitVec> outputs;

  /// One protocol phase aggregated over the nonfaulty peers. Phases appear
  /// in first-entry order; summing bits/units across phases reproduces
  /// total_queries / message_complexity exactly (the implicit "unphased"
  /// span catches unannotated activity).
  struct PhaseBreakdown {
    std::string name;
    std::uint64_t bits_queried = 0;      ///< Q contribution (sum, nonfaulty)
    std::uint64_t unit_messages = 0;     ///< M contribution (sum, nonfaulty)
    std::uint64_t payload_messages = 0;
    sim::Time max_span = 0;  ///< T contribution: max per-peer time in phase
    std::size_t peers = 0;   ///< nonfaulty peers that entered the phase
  };
  std::vector<PhaseBreakdown> phases;

  /// Raw per-peer phase spans (all peers, faulty included) in open order —
  /// the exporters' timeline slices.
  std::vector<PhaseSpan> phase_spans;

  /// Aligned per-phase Q/T/M table (one row per phase).
  [[nodiscard]] std::string phase_table() const;
  /// Aligned per-peer breakdown (one row per phase span).
  [[nodiscard]] std::string peer_phase_table() const;

  /// Recovery counters (all zero on crash-stop worlds).
  RecoveryStats recovery;

  /// Rendered StallReport, filled iff the run stalled (budget exhausted or
  /// unterminated nonfaulty peers); empty on clean runs.
  std::string stall;

  /// Critical-path analysis of the run, filled by obs::embed_critical_path
  /// on traced runs (run_scenario does this automatically): the
  /// happens-before chain realizing T, attributed per phase / peer / edge
  /// kind, with the reconciliation verdict path_length == T. Absent when
  /// tracing was off. Pure data (see obs/critpath.hpp) — reading it needs
  /// nothing beyond this header.
  std::optional<obs::CriticalPathReport> critical_path;

  [[nodiscard]] std::string to_string() const;
};

/// One DR-model instance.
class World : private sim::NetworkObserver {
 public:
  /// input.size() must equal cfg.n.
  World(Config cfg, BitVec input);

  [[nodiscard]] const Config& config() const { return cfg_; }
  sim::Engine& engine() { return engine_; }
  sim::Network& network() { return net_; }
  Source& source() { return source_; }

  /// Installs the peer implementation for one ID (honest protocol peer or a
  /// Byzantine attack peer). Every ID must be set before run().
  void set_peer(sim::PeerId id, std::unique_ptr<Peer> peer);
  Peer& peer(sim::PeerId id);

  /// Marks a peer as faulty: excluded from the correctness predicate and
  /// from all complexity measures. Byzantine attack peers must be marked.
  void mark_faulty(sim::PeerId id);
  [[nodiscard]] bool is_faulty(sim::PeerId id) const;
  [[nodiscard]] std::size_t faulty_count() const;

  /// Crash-fault helpers; both imply mark_faulty(id).
  void schedule_crash_at(sim::PeerId id, sim::Time t);
  /// Crashes the peer just before its (count+1)-th send — i.e. it gets
  /// exactly `count` more sends out — modelling death mid-broadcast.
  void crash_after_sends(sim::PeerId id, std::uint64_t count);

  /// Adversary-chosen start time (default 0; the model has no simultaneous
  /// start guarantee).
  void set_start_time(sim::PeerId id, sim::Time t);

  /// Builds the replacement peer when a crashed id is revived. Crash-stop
  /// loses all in-memory state — only the journal survives — so recovery
  /// always constructs a fresh incarnation.
  using RestartFactory =
      std::function<std::unique_ptr<Peer>(const Config&, sim::PeerId)>;

  /// Switches the world to the crash-*recovery* fault model: every peer
  /// gets a write-ahead journal (in-memory, sim-owned), and crashed peers
  /// may be revived via schedule_restart_at / restart_after_delay. Call
  /// before run().
  void enable_recovery(RestartFactory factory, RecoveryOptions options = {});
  [[nodiscard]] bool recovery_enabled() const { return journal_store_ != nullptr; }
  [[nodiscard]] const RecoveryOptions& recovery_options() const {
    return recovery_options_;
  }
  /// The journal store (recovery must be enabled). Chaos injectors use the
  /// corruption helpers; everything else goes through Peer's journal_*().
  JournalStore& journal_store();
  /// Per-run recovery counters.
  [[nodiscard]] const RecoveryStats& recovery_stats() const {
    return recovery_stats_;
  }

  /// Revives a crashed peer at absolute time t (exact; callers wanting the
  /// anti-storm backoff use restart_after_delay). A restart of a peer that
  /// is not crashed at that instant is a no-op, as is one past max_restarts.
  void schedule_restart_at(sim::PeerId id, sim::Time t);
  /// Revives a crashed peer `delay` after now, plus the capped exponential
  /// re-registration backoff and deterministic jitter (RecoveryOptions).
  void restart_after_delay(sim::PeerId id, sim::Time delay);
  /// Auto-restart: whenever this peer crashes (by schedule, send hook, or
  /// crash-point kill), schedule restart_after_delay(id, delay).
  void restart_on_crash(sim::PeerId id, sim::Time delay);
  /// Arms a kill-at-crash-point: the peer crashes on the nth time it hits
  /// the given journal sentinel. The victim still counts against the fault
  /// budget — mark_faulty it first.
  void kill_at_crash_point(sim::PeerId id, CrashPoint point, std::size_t nth = 1);
  /// Restarts performed for one peer so far.
  [[nodiscard]] std::size_t restart_count(sim::PeerId id) const;

  /// Enables execution tracing (sends, deliveries, drops, crashes, queries,
  /// terminations). Call before run(). Returns the trace, owned by the
  /// world.
  sim::Trace& enable_trace(std::size_t capacity = 1 << 20);
  /// The trace if enabled, else nullptr.
  sim::Trace* trace() { return trace_.get(); }

  /// Registers an additional network observer (metrics collectors). The
  /// world multiplexes its single network observer slot across the trace,
  /// the phase tracker, and every observer added here. Not owned; must
  /// outlive the run.
  void add_observer(sim::NetworkObserver* observer);

  /// Registers a callback invoked on every accounted source-query batch
  /// (peer, bits) — the metrics-side twin of add_observer.
  using QueryListener = std::function<void(sim::PeerId, std::size_t)>;
  void add_query_listener(QueryListener listener);

  /// Phase spans recorded so far (complete after run(); also copied into
  /// RunReport::phase_spans).
  [[nodiscard]] const std::vector<PhaseSpan>& phase_spans() const {
    return phase_tracker_.spans();
  }

  /// Runs to quiescence (or the event budget) and reports. If the run
  /// stalls, the report's `stall` field carries the rendered StallReport.
  RunReport run(std::size_t max_events = sim::Engine::kDefaultEventBudget);

  /// Builds the stall diagnostics for the current world state (normally
  /// invoked by run() on a stalled outcome; exposed for tests and tools).
  [[nodiscard]] StallReport build_stall_report(bool budget_exhausted) const;

  /// Per-peer RNG stream used to bind peers; exposed so adversaries can
  /// derive their own independent streams from the same master seed.
  [[nodiscard]] Rng adversary_rng(std::uint64_t tag) const;

 private:
  void install_send_hook_if_needed();

  /// Immediate crash: marks faulty, severs the network, traces, and fires
  /// the auto-restart policy. Every crash site funnels through here.
  void crash_now(sim::PeerId id);
  /// The scheduled revival itself.
  void do_restart(sim::PeerId id);
  /// Peer-side journal/recovery hooks (see Peer's protected helpers).
  [[nodiscard]] Journal journal_for(sim::PeerId id);
  void credit_queries_saved(std::size_t bits);

  // sim::NetworkObserver — the world owns the network's observer slot and
  // fans events out to the phase tracker, the trace, and added observers.
  void on_send(const sim::Message& msg, std::size_t unit_messages) override;
  void on_deliver(const sim::Message& msg) override;
  void on_drop(const sim::Message& msg) override;

  /// Peer::begin_phase lands here.
  void begin_phase(sim::PeerId peer, std::string name);

  friend class Peer;

  Config cfg_;
  sim::Engine engine_;
  sim::Network net_;
  Source source_;
  std::unique_ptr<sim::Trace> trace_;
  std::vector<sim::NetworkObserver*> observers_;
  std::vector<QueryListener> query_listeners_;
  PhaseTracker phase_tracker_;
  std::vector<std::unique_ptr<Peer>> peers_;
  std::vector<bool> faulty_;
  std::vector<sim::Time> start_times_;
  std::map<sim::PeerId, std::uint64_t> sends_remaining_;  // crash_after_sends
  // Crash-recovery state (all empty/null on crash-stop worlds).
  std::unique_ptr<JournalStore> journal_store_;
  RestartFactory restart_factory_;
  RecoveryOptions recovery_options_;
  RecoveryStats recovery_stats_;
  std::vector<std::size_t> restart_counts_;
  std::map<sim::PeerId, sim::Time> auto_restart_delay_;
  std::map<sim::PeerId, std::pair<CrashPoint, std::size_t>> crash_point_kills_;
  Rng restart_rng_{0};
  bool ran_ = false;
};

}  // namespace asyncdr::dr
