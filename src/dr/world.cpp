#include "dr/world.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/check.hpp"
#include "common/table.hpp"

namespace asyncdr::dr {

sim::Time RecoveryOptions::backoff(std::size_t restarts) const {
  const double raw =
      base_delay * std::pow(backoff_factor, static_cast<double>(restarts));
  return std::min(max_delay, raw);
}

std::string StallReport::to_string() const {
  std::ostringstream os;
  os << "StallReport{" << (budget_exhausted ? "event budget exhausted"
                                            : "quiescent but incomplete")
     << ", pending_events=" << pending_events
     << ", crashed_peers=" << crashed_peers << "}\n";
  if (stuck_peers.empty()) {
    os << "  (no stuck peers: every nonfaulty peer terminated; the budget "
          "cut off leftover in-flight traffic)\n";
  }
  for (const PeerState& p : stuck_peers) {
    os << "  stuck peer " << p.id << ": ";
    if (p.crashed) os << "CRASHED, ";
    os << "last_send=";
    if (p.last_send < 0) os << "never"; else os << p.last_send;
    os << " last_delivery=";
    if (p.last_delivery < 0) os << "never"; else os << p.last_delivery;
    os << " bits_queried=" << p.bits_queried << " status=\"" << p.status
       << '"';
    if (!p.last_event.empty()) os << " last_event=" << p.last_event;
    os << '\n';
  }
  constexpr std::size_t kMaxLinkLines = 16;
  for (std::size_t i = 0; i < busy_links.size() && i < kMaxLinkLines; ++i) {
    const LinkState& l = busy_links[i];
    os << "  link p" << l.from << " -> p" << l.to << ": " << l.in_flight
       << " in flight\n";
  }
  if (busy_links.size() > kMaxLinkLines) {
    os << "  ... (" << (busy_links.size() - kMaxLinkLines)
       << " more busy links)\n";
  }
  if (trace_cutoff >= 0) {
    os << "  trace visibility ended at t=" << trace_cutoff
       << " (the bounded trace overflowed; later events were not recorded)\n";
  }
  return os.str();
}

std::string RunReport::to_string() const {
  std::ostringstream os;
  os << "RunReport{ok=" << (ok() ? "yes" : "no")
     << " terminated=" << all_terminated << " correct=" << all_correct
     << " budget_exhausted=" << budget_exhausted << " Q=" << query_complexity
     << " T=" << time_complexity << " M=" << message_complexity
     << " events=" << events;
  if (!incorrect_peers.empty()) {
    os << " incorrect=[";
    for (auto p : incorrect_peers) os << p << ' ';
    os << ']';
  }
  if (!unterminated_peers.empty()) {
    os << " unterminated=[";
    for (auto p : unterminated_peers) os << p << ' ';
    os << ']';
  }
  if (recovery.restarts > 0) {
    os << " restarts=" << recovery.restarts
       << " replays=" << recovery.journal_replays
       << " bits_recovered=" << recovery.bits_recovered
       << " queries_saved=" << recovery.queries_saved
       << " cold_fallbacks=" << recovery.cold_fallbacks
       << " torn_tails=" << recovery.torn_tails;
  }
  os << '}';
  return os.str();
}

std::string RunReport::phase_table() const {
  Table table({"phase", "peers", "Q (bits)", "M (units)", "payloads",
               "T (max span)"});
  for (const PhaseBreakdown& p : phases) {
    table.add(p.name, p.peers, p.bits_queried, p.unit_messages,
              p.payload_messages, p.max_span);
  }
  return table.render();
}

std::string RunReport::peer_phase_table() const {
  Table table({"peer", "phase", "Q (bits)", "M (units)", "payloads", "begin",
               "end"});
  for (const PhaseSpan& s : phase_spans) {
    table.add(s.peer, s.name, s.bits_queried, s.unit_messages,
              s.payload_messages, s.begin, s.end);
  }
  return table.render();
}

World::World(Config cfg, BitVec input)
    : cfg_(cfg),
      net_(engine_, cfg.k, cfg.message_bits),
      source_(std::move(input), cfg.k),
      peers_(cfg.k),
      faulty_(cfg.k, false),
      start_times_(cfg.k, 0) {
  cfg_.validate();
  ASYNCDR_EXPECTS_MSG(source_.n() == cfg_.n, "input length must equal cfg.n");
  // The world owns the network's single observer slot and the source's
  // single query-observer slot; it fans events out to the phase tracker,
  // the trace (if enabled), and any observers/listeners added later.
  net_.set_observer(this);
  source_.set_query_observer([this](sim::PeerId peer, std::size_t bits) {
    phase_tracker_.on_query(peer, bits, engine_.now());
    if (trace_) trace_->record_query(engine_.now(), peer, bits);
    for (const QueryListener& listener : query_listeners_) listener(peer, bits);
  });
}

void World::set_peer(sim::PeerId id, std::unique_ptr<Peer> peer) {
  ASYNCDR_EXPECTS(id < cfg_.k);
  ASYNCDR_EXPECTS(peer != nullptr);
  peer->bind(this, id, Rng(cfg_.seed).split(id));
  net_.attach(id, peer.get());
  peers_[id] = std::move(peer);
}

Peer& World::peer(sim::PeerId id) {
  ASYNCDR_EXPECTS(id < cfg_.k);
  ASYNCDR_EXPECTS(peers_[id] != nullptr);
  return *peers_[id];
}

void World::mark_faulty(sim::PeerId id) {
  ASYNCDR_EXPECTS(id < cfg_.k);
  faulty_[id] = true;
  ASYNCDR_EXPECTS_MSG(faulty_count() <= cfg_.max_faulty(),
                      "adversary exceeded the fault budget t = beta*k");
}

bool World::is_faulty(sim::PeerId id) const {
  ASYNCDR_EXPECTS(id < cfg_.k);
  return faulty_[id];
}

std::size_t World::faulty_count() const {
  return static_cast<std::size_t>(
      std::count(faulty_.begin(), faulty_.end(), true));
}

void World::schedule_crash_at(sim::PeerId id, sim::Time t) {
  mark_faulty(id);
  // crash_now (not a bare net_.crash) so a *revived* peer that was given a
  // second scheduled crash is re-marked faulty when the event fires, and so
  // the auto-restart policy sees every kill.
  engine_.schedule_at(t, [this, id] { crash_now(id); });
}

void World::crash_now(sim::PeerId id) {
  if (net_.is_crashed(id)) return;
  faulty_[id] = true;  // budget was charged when the crash was armed
  net_.crash(id);
  if (trace_) trace_->record_crash(engine_.now(), id);
  const auto it = auto_restart_delay_.find(id);
  if (it != auto_restart_delay_.end()) restart_after_delay(id, it->second);
}

void World::crash_after_sends(sim::PeerId id, std::uint64_t count) {
  mark_faulty(id);
  sends_remaining_[id] = count;
  install_send_hook_if_needed();
}

void World::set_start_time(sim::PeerId id, sim::Time t) {
  ASYNCDR_EXPECTS(id < cfg_.k);
  ASYNCDR_EXPECTS(t >= 0);
  start_times_[id] = t;
}

void World::install_send_hook_if_needed() {
  net_.set_pre_send_hook([this](const sim::Message& msg) {
    auto it = sends_remaining_.find(msg.from);
    if (it == sends_remaining_.end()) return;
    if (it->second == 0) {
      sends_remaining_.erase(it);
      crash_now(msg.from);
    } else {
      --it->second;
    }
  });
}

void World::enable_recovery(RestartFactory factory, RecoveryOptions options) {
  ASYNCDR_EXPECTS_MSG(!ran_, "enable_recovery must precede run()");
  ASYNCDR_EXPECTS(factory != nullptr);
  ASYNCDR_EXPECTS(options.backoff_factor >= 1.0);
  ASYNCDR_EXPECTS(options.base_delay >= 0 && options.max_delay >= 0);
  restart_factory_ = std::move(factory);
  recovery_options_ = options;
  journal_store_ = std::make_unique<JournalStore>(cfg_.k);
  restart_counts_.assign(cfg_.k, 0);
  restart_rng_ = adversary_rng(0x7e57a7ull);
  journal_store_->set_crash_point_hook(
      [this](sim::PeerId id, CrashPoint point) {
        const auto it = crash_point_kills_.find(id);
        if (it == crash_point_kills_.end() || it->second.first != point) {
          return false;
        }
        if (it->second.second > 1) {
          --it->second.second;
          return false;
        }
        crash_point_kills_.erase(it);
        crash_now(id);
        return true;
      });
}

JournalStore& World::journal_store() {
  ASYNCDR_EXPECTS_MSG(journal_store_ != nullptr, "recovery is not enabled");
  return *journal_store_;
}

Journal World::journal_for(sim::PeerId id) {
  return Journal(journal_store(), id);
}

void World::credit_queries_saved(std::size_t bits) {
  recovery_stats_.queries_saved += bits;
}

void World::schedule_restart_at(sim::PeerId id, sim::Time t) {
  ASYNCDR_EXPECTS_MSG(journal_store_ != nullptr,
                      "restarts need enable_recovery");
  ASYNCDR_EXPECTS(id < cfg_.k);
  engine_.schedule_at(t, [this, id] { do_restart(id); });
}

void World::restart_after_delay(sim::PeerId id, sim::Time delay) {
  ASYNCDR_EXPECTS_MSG(journal_store_ != nullptr,
                      "restarts need enable_recovery");
  ASYNCDR_EXPECTS(id < cfg_.k);
  ASYNCDR_EXPECTS(delay >= 0);
  const sim::Time backoff = recovery_options_.backoff(restart_counts_[id]);
  const sim::Time jitter =
      recovery_options_.jitter > 0
          ? restart_rng_.uniform(0.0, recovery_options_.jitter)
          : 0.0;
  engine_.schedule_in(delay + backoff + jitter, [this, id] { do_restart(id); });
}

void World::restart_on_crash(sim::PeerId id, sim::Time delay) {
  ASYNCDR_EXPECTS_MSG(journal_store_ != nullptr,
                      "restarts need enable_recovery");
  ASYNCDR_EXPECTS(id < cfg_.k);
  ASYNCDR_EXPECTS(delay >= 0);
  auto_restart_delay_[id] = delay;
}

void World::kill_at_crash_point(sim::PeerId id, CrashPoint point,
                                std::size_t nth) {
  ASYNCDR_EXPECTS_MSG(journal_store_ != nullptr,
                      "crash-point kills need enable_recovery");
  ASYNCDR_EXPECTS(id < cfg_.k);
  ASYNCDR_EXPECTS(nth >= 1);
  crash_point_kills_[id] = {point, nth};
}

std::size_t World::restart_count(sim::PeerId id) const {
  ASYNCDR_EXPECTS(id < cfg_.k);
  return restart_counts_.empty() ? 0 : restart_counts_[id];
}

void World::do_restart(sim::PeerId id) {
  if (!net_.is_crashed(id)) return;  // never crashed, or already revived
  if (restart_counts_[id] >= recovery_options_.max_restarts) return;
  ++restart_counts_[id];
  ++recovery_stats_.restarts;

  JournalReplay replay =
      recovery_options_.cold_restart
          ? Journal::replay({}, cfg_.n)
          : Journal::replay(journal_store_->log(id), cfg_.n);
  if (replay.torn) ++recovery_stats_.torn_tails;
  if (replay.records == 0) {
    ++recovery_stats_.cold_fallbacks;
  } else {
    ++recovery_stats_.journal_replays;
    recovery_stats_.bits_recovered += replay.intervals.count();
  }

  // Crash-stop semantics within an incarnation: the old peer's memory is
  // gone; only the journal carried state across. Build a fresh peer on a
  // per-incarnation RNG stream and splice it into the network.
  std::unique_ptr<Peer> fresh = restart_factory_(cfg_, id);
  ASYNCDR_EXPECTS_MSG(fresh != nullptr, "restart factory returned null");
  fresh->bind(this, id,
              Rng(cfg_.seed).split(id).split(0xbea7 + restart_counts_[id]));
  net_.revive(id);
  net_.attach(id, fresh.get());
  peers_[id] = std::move(fresh);
  // The revived peer re-enters the correctness predicate: it must download
  // the full input (or the run is wrong), and its queries count again.
  faulty_[id] = false;

  if (trace_) {
    trace_->record_note(engine_.now(), id,
                        "restart #" + std::to_string(restart_counts_[id]) +
                            " recovered=" +
                            std::to_string(replay.intervals.count()) +
                            (replay.torn ? " torn-tail" : ""));
    // A restart is a causal root, exactly like the first start.
    trace_->record_start(engine_.now(), id);
  }
  RecoveryState state{std::move(replay), restart_counts_[id]};
  peers_[id]->on_restart(state);
}

sim::Trace& World::enable_trace(std::size_t capacity) {
  ASYNCDR_EXPECTS_MSG(!ran_, "enable_trace must precede run()");
  if (!trace_) {
    trace_ = std::make_unique<sim::Trace>(engine_, capacity);
  }
  return *trace_;
}

void World::add_observer(sim::NetworkObserver* observer) {
  ASYNCDR_EXPECTS(observer != nullptr);
  observers_.push_back(observer);
}

void World::add_query_listener(QueryListener listener) {
  ASYNCDR_EXPECTS(listener != nullptr);
  query_listeners_.push_back(std::move(listener));
}

void World::on_send(const sim::Message& msg, std::size_t unit_messages) {
  phase_tracker_.on_send(msg.from, unit_messages, engine_.now());
  if (trace_) trace_->on_send(msg, unit_messages);
  for (sim::NetworkObserver* o : observers_) o->on_send(msg, unit_messages);
}

void World::on_deliver(const sim::Message& msg) {
  if (trace_) trace_->on_deliver(msg);
  for (sim::NetworkObserver* o : observers_) o->on_deliver(msg);
}

void World::on_drop(const sim::Message& msg) {
  if (trace_) trace_->on_drop(msg);
  for (sim::NetworkObserver* o : observers_) o->on_drop(msg);
}

void World::begin_phase(sim::PeerId peer, std::string name) {
  if (trace_) trace_->record_note(engine_.now(), peer, "phase: " + name);
  phase_tracker_.begin(peer, std::move(name), engine_.now());
}

RunReport World::run(std::size_t max_events) {
  ASYNCDR_EXPECTS_MSG(!ran_, "World::run may only be called once");
  ran_ = true;
  for (sim::PeerId id = 0; id < cfg_.k; ++id) {
    ASYNCDR_EXPECTS_MSG(peers_[id] != nullptr, "peer not set: " + std::to_string(id));
    // Dereference peers_[id] at fire time, not here: a recovery world may
    // have replaced the peer with a fresh incarnation by then.
    engine_.schedule_at(start_times_[id], [this, id] {
      Peer* p = peers_[id].get();
      // A late starter may already be crashed — or even terminated, if a
      // terminating push reached it before its own start time. A revived
      // incarnation already ran on_restart; don't start it twice.
      if (!net_.is_crashed(id) && !p->terminated() && restart_count(id) == 0) {
        // The start is a causal root: everything the peer does before its
        // first delivery chains back to this event.
        if (trace_) trace_->record_start(engine_.now(), id);
        p->on_start();
      }
    });
  }

  const auto run_result = engine_.run(max_events);

  RunReport report;
  report.events = run_result.events_processed;
  report.budget_exhausted = run_result.budget_exhausted;
  report.recovery = recovery_stats_;
  report.all_terminated = true;
  report.all_correct = true;
  report.per_peer_queries.resize(cfg_.k, 0);
  report.outputs.resize(cfg_.k);

  for (sim::PeerId id = 0; id < cfg_.k; ++id) {
    report.per_peer_queries[id] =
        static_cast<std::size_t>(source_.bits_queried(id));
    if (peers_[id]->terminated()) report.outputs[id] = peers_[id]->output();
    if (faulty_[id]) continue;
    const Peer& p = *peers_[id];
    if (!p.terminated()) {
      report.all_terminated = false;
      report.unterminated_peers.push_back(id);
    } else if (p.output() != source_.data()) {
      report.all_correct = false;
      report.incorrect_peers.push_back(id);
    }
    report.query_complexity = std::max(
        report.query_complexity, report.per_peer_queries[id]);
    report.total_queries += source_.bits_queried(id);
    report.time_complexity =
        std::max(report.time_complexity,
                 p.terminated() ? p.termination_time() : engine_.now());
    report.message_complexity += net_.sent_units(id);
    report.payload_messages += net_.sent_payloads(id);
  }
  phase_tracker_.close_all(engine_.now());
  report.phase_spans = phase_tracker_.spans();
  // Aggregate the nonfaulty peers' spans into the per-phase breakdown, in
  // first-entry order. Per-peer time in a phase sums that peer's spans of
  // the same name; the breakdown's T is the max over peers.
  {
    std::map<std::pair<std::string, sim::PeerId>, sim::Time> peer_time;
    for (const PhaseSpan& span : report.phase_spans) {
      if (faulty_[span.peer]) continue;
      auto it = std::find_if(report.phases.begin(), report.phases.end(),
                             [&](const RunReport::PhaseBreakdown& p) {
                               return p.name == span.name;
                             });
      if (it == report.phases.end()) {
        report.phases.push_back(RunReport::PhaseBreakdown{span.name});
        it = report.phases.end() - 1;
      }
      it->bits_queried += span.bits_queried;
      it->unit_messages += span.unit_messages;
      it->payload_messages += span.payload_messages;
      auto [t, fresh] = peer_time.try_emplace({span.name, span.peer}, 0);
      if (fresh) ++it->peers;
      t->second += span.span();
      it->max_span = std::max(it->max_span, t->second);
    }
  }
  if (report.budget_exhausted || !report.all_terminated) {
    report.stall = build_stall_report(report.budget_exhausted).to_string();
  }
  return report;
}

StallReport World::build_stall_report(bool budget_exhausted) const {
  StallReport stall;
  stall.budget_exhausted = budget_exhausted;
  stall.pending_events = engine_.pending();
  stall.crashed_peers = net_.crashed_count();
  for (sim::PeerId id = 0; id < cfg_.k; ++id) {
    if (faulty_[id] || peers_[id] == nullptr || peers_[id]->terminated()) {
      continue;
    }
    StallReport::PeerState p;
    p.id = id;
    p.crashed = net_.is_crashed(id);
    p.last_send = net_.last_send_at(id);
    p.last_delivery = net_.last_delivery_at(id);
    p.bits_queried = source_.bits_queried(id);
    p.status = peers_[id]->status();
    if (trace_) {
      if (const sim::TraceEvent* ev = trace_->last_event_involving(id)) {
        p.last_event = ev->to_string();
      }
    }
    stall.stuck_peers.push_back(std::move(p));
  }
  // The network enumerates busy links itself: in sparse mode that walks
  // O(active links), not the k^2 scan the dense layout needed.
  for (const sim::Network::BusyLink& l : net_.busy_links()) {
    stall.busy_links.push_back({l.from, l.to, l.in_flight});
  }
  if (trace_ && trace_->dropped_events() > 0) {
    stall.trace_cutoff = trace_->first_dropped_at();
  }
  return stall;
}

Rng World::adversary_rng(std::uint64_t tag) const {
  return Rng(cfg_.seed).split(0x4adull * (tag + 1) + cfg_.k);
}

}  // namespace asyncdr::dr
