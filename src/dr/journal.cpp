#include "dr/journal.hpp"

#include <array>

#include "common/check.hpp"

namespace asyncdr::dr {

namespace {

// Record framing: | kind:1 | payload_len:4 LE | payload | crc:4 LE |
// with the CRC computed over kind + payload_len + payload. The frame is
// self-delimiting, so replay can walk a log byte-exactly and stop at the
// first frame that fails to verify.
constexpr std::uint8_t kKindBits = 0xB1;
constexpr std::uint8_t kKindCheckpoint = 0xC9;
constexpr std::size_t kHeaderBytes = 5;   // kind + payload_len
constexpr std::size_t kCrcBytes = 4;

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v & 0xff));
  out.push_back(static_cast<std::uint8_t>((v >> 8) & 0xff));
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xff));
  }
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xff));
  }
}

std::uint32_t get_u32(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= std::uint32_t{p[i]} << (8 * i);
  return v;
}

std::uint64_t get_u64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= std::uint64_t{p[i]} << (8 * i);
  return v;
}

/// Frame for one record, CRC included.
std::vector<std::uint8_t> frame(std::uint8_t kind,
                                const std::vector<std::uint8_t>& payload) {
  std::vector<std::uint8_t> out;
  out.reserve(kHeaderBytes + payload.size() + kCrcBytes);
  out.push_back(kind);
  put_u32(out, static_cast<std::uint32_t>(payload.size()));
  out.insert(out.end(), payload.begin(), payload.end());
  put_u32(out, Journal::crc32(out.data(), out.size()));
  return out;
}

}  // namespace

const char* to_string(CrashPoint point) {
  switch (point) {
    case CrashPoint::kAppendStart: return "append-start";
    case CrashPoint::kMidRecord: return "mid-record";
    case CrashPoint::kAppendCommit: return "append-commit";
    case CrashPoint::kCheckpoint: return "checkpoint";
  }
  return "?";
}

JournalStore::JournalStore(std::size_t k) : logs_(k) {}

const std::vector<std::uint8_t>& JournalStore::log(sim::PeerId id) const {
  ASYNCDR_EXPECTS(id < logs_.size());
  return logs_[id];
}

std::size_t JournalStore::bytes(sim::PeerId id) const {
  return log(id).size();
}

void JournalStore::truncate_tail(sim::PeerId id, std::size_t count) {
  ASYNCDR_EXPECTS(id < logs_.size());
  std::vector<std::uint8_t>& log = logs_[id];
  log.resize(log.size() - std::min(count, log.size()));
}

void JournalStore::flip_bit(sim::PeerId id, std::size_t bit_index) {
  ASYNCDR_EXPECTS(id < logs_.size());
  std::vector<std::uint8_t>& log = logs_[id];
  if (log.empty()) return;
  const std::size_t bit = bit_index % (log.size() * 8);
  log[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
}

void JournalStore::clear(sim::PeerId id) {
  ASYNCDR_EXPECTS(id < logs_.size());
  logs_[id].clear();
}

bool JournalStore::killed_at(sim::PeerId id, CrashPoint point) const {
  return hook_ && hook_(id, point);
}

Journal::Journal(JournalStore& store, sim::PeerId id)
    : store_(store), id_(id) {
  ASYNCDR_EXPECTS(id < store.peers());
}

bool Journal::append_bits(std::size_t lo, const BitVec& values) {
  if (store_.killed_at(id_, CrashPoint::kAppendStart)) return false;

  std::vector<std::uint8_t> payload;
  payload.reserve(16 + (values.size() + 7) / 8);
  put_u64(payload, lo);
  put_u64(payload, values.size());
  std::uint8_t acc = 0;
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (values.get(i)) acc |= static_cast<std::uint8_t>(1u << (i % 8));
    if (i % 8 == 7) {
      payload.push_back(acc);
      acc = 0;
    }
  }
  if (values.size() % 8 != 0) payload.push_back(acc);
  const std::vector<std::uint8_t> rec = frame(kKindBits, payload);

  std::vector<std::uint8_t>& log = store_.logs_[id_];
  // A mid-record kill must leave a *genuinely* torn tail: header plus part
  // of the payload, no CRC. Write in two halves with the sentinel between.
  const std::size_t half = kHeaderBytes + payload.size() / 2;
  log.insert(log.end(), rec.begin(), rec.begin() + static_cast<std::ptrdiff_t>(half));
  if (store_.killed_at(id_, CrashPoint::kMidRecord)) return false;
  log.insert(log.end(), rec.begin() + static_cast<std::ptrdiff_t>(half), rec.end());
  return !store_.killed_at(id_, CrashPoint::kAppendCommit);
}

bool Journal::checkpoint(const std::string& name, std::uint64_t value) {
  ASYNCDR_EXPECTS_MSG(name.size() <= 0xffff, "checkpoint name too long");
  if (store_.killed_at(id_, CrashPoint::kCheckpoint)) return false;
  std::vector<std::uint8_t> payload;
  payload.reserve(10 + name.size());
  put_u64(payload, value);
  put_u16(payload, static_cast<std::uint16_t>(name.size()));
  payload.insert(payload.end(), name.begin(), name.end());
  const std::vector<std::uint8_t> rec = frame(kKindCheckpoint, payload);
  std::vector<std::uint8_t>& log = store_.logs_[id_];
  log.insert(log.end(), rec.begin(), rec.end());
  return true;
}

JournalReplay Journal::replay(const std::vector<std::uint8_t>& log,
                              std::size_t n) {
  JournalReplay out;
  out.bits = BitVec(n);
  std::size_t pos = 0;
  while (pos < log.size()) {
    const std::size_t start = pos;
    const auto torn = [&] {
      out.torn = true;
      out.discarded_bytes = log.size() - start;
      return out;
    };
    if (log.size() - pos < kHeaderBytes + kCrcBytes) return torn();
    const std::uint8_t kind = log[pos];
    const std::size_t len = get_u32(&log[pos + 1]);
    if (kind != kKindBits && kind != kKindCheckpoint) return torn();
    if (log.size() - pos < kHeaderBytes + len + kCrcBytes) return torn();
    const std::uint32_t stored = get_u32(&log[pos + kHeaderBytes + len]);
    if (crc32(&log[pos], kHeaderBytes + len) != stored) return torn();

    const std::uint8_t* payload = &log[pos + kHeaderBytes];
    if (kind == kKindBits) {
      if (len < 16) return torn();
      const std::uint64_t lo = get_u64(payload);
      const std::uint64_t count = get_u64(payload + 8);
      // Bounds are part of the trust decision: a record claiming bits the
      // input does not have is corruption, not data.
      if (count > n || lo > n - count) return torn();
      if (len != 16 + (count + 7) / 8) return torn();
      for (std::uint64_t i = 0; i < count; ++i) {
        const bool bit = (payload[16 + i / 8] >> (i % 8)) & 1u;
        out.bits.set(static_cast<std::size_t>(lo + i), bit);
      }
      if (count > 0) {
        out.intervals.insert(static_cast<std::size_t>(lo),
                             static_cast<std::size_t>(lo + count));
      }
    } else {
      if (len < 10) return torn();
      const std::uint64_t value = get_u64(payload);
      const std::size_t name_len = payload[8] | (std::size_t{payload[9]} << 8);
      if (len != 10 + name_len) return torn();
      out.checkpoints.emplace_back(
          std::string(reinterpret_cast<const char*>(payload + 10), name_len),
          value);
    }
    ++out.records;
    pos += kHeaderBytes + len + kCrcBytes;
  }
  return out;
}

std::uint32_t Journal::crc32(const std::uint8_t* data, std::size_t len) {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int b = 0; b < 8; ++b) {
        c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  std::uint32_t crc = 0xFFFFFFFFu;
  for (std::size_t i = 0; i < len; ++i) {
    crc = table[(crc ^ data[i]) & 0xffu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

}  // namespace asyncdr::dr
