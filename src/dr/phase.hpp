// Per-peer protocol phase accounting. A protocol peer annotates its
// paper-level phases via dr::Peer::begin_phase("committee-election"); the
// tracker attributes every queried bit and every sent unit message to the
// acting peer's current phase, giving RunReport its per-phase Q/T/M
// breakdown and the exporters their per-peer timeline slices.
//
// Activity before the first annotation (e.g. a message handler running
// ahead of the peer's adversary-chosen start time) lands in an implicit
// "unphased" span, so phase sums always reconcile with the run's aggregate
// accounting.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/types.hpp"

namespace asyncdr::dr {

/// One contiguous stretch of a peer's execution under one phase name.
struct PhaseSpan {
  sim::PeerId peer = sim::kNoPeer;
  std::string name;
  sim::Time begin = 0;
  sim::Time end = -1;  ///< negative while the span is still open
  std::uint64_t bits_queried = 0;
  std::uint64_t unit_messages = 0;
  std::uint64_t payload_messages = 0;

  [[nodiscard]] sim::Time span() const { return end < begin ? 0 : end - begin; }
};

/// Name of the implicit span that absorbs unannotated activity.
inline constexpr const char* kUnphased = "unphased";

/// Records phase spans and attributes query/message costs to them.
class PhaseTracker {
 public:
  /// Opens a new span for `peer`, closing its previous one at `now`.
  void begin(sim::PeerId peer, std::string name, sim::Time now);

  /// Attributes `bits` queried by `peer` to its current span (opening an
  /// implicit kUnphased span if none is open).
  void on_query(sim::PeerId peer, std::uint64_t bits, sim::Time now);

  /// Attributes one payload of `units` unit messages sent by `peer`.
  void on_send(sim::PeerId peer, std::uint64_t units, sim::Time now);

  /// Closes `peer`'s open span (no-op if none) — called at termination.
  void close(sim::PeerId peer, sim::Time at);

  /// Closes every still-open span — called when the run ends.
  void close_all(sim::Time at);

  [[nodiscard]] const std::vector<PhaseSpan>& spans() const { return spans_; }

 private:
  std::size_t open_span(sim::PeerId peer, std::string name, sim::Time now);
  std::size_t current(sim::PeerId peer, sim::Time now);

  std::vector<PhaseSpan> spans_;
  std::unordered_map<sim::PeerId, std::size_t> open_;  // peer -> span index
};

}  // namespace asyncdr::dr
