// Packed bit vector used for the source array X, peer output arrays, and
// segment strings exchanged between peers. Sizes in this codebase are counted
// in *bits* throughout, matching the paper's query/message accounting.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace asyncdr {

/// A dynamically sized, densely packed vector of bits.
///
/// Invariant: bits at positions >= size() inside the last storage word are
/// always zero, so whole-word comparison and hashing are well defined.
class BitVec {
 public:
  BitVec() = default;

  /// Constructs `n` bits, all set to `value`.
  explicit BitVec(std::size_t n, bool value = false);

  /// Builds a BitVec from a string of '0'/'1' characters (test convenience).
  static BitVec from_string(const std::string& bits);

  /// Builds an n-bit vector whose bits are drawn from `next_bit()` calls.
  template <typename F>
  static BitVec generate(std::size_t n, F&& next_bit) {
    BitVec v(n);
    for (std::size_t i = 0; i < n; ++i) v.set(i, static_cast<bool>(next_bit()));
    return v;
  }

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }

  [[nodiscard]] bool get(std::size_t i) const;
  void set(std::size_t i, bool value);
  void flip(std::size_t i);

  /// Appends one bit at the end.
  void push_back(bool value);

  /// Returns the sub-vector [pos, pos+len).
  [[nodiscard]] BitVec slice(std::size_t pos, std::size_t len) const;

  /// Overwrites bits [pos, pos+src.size()) with the contents of `src`.
  void splice(std::size_t pos, const BitVec& src);

  /// Number of set bits.
  [[nodiscard]] std::size_t popcount() const;

  // ---- Mask algebra (operands must have equal size). ----

  /// this |= other.
  void or_with(const BitVec& other);
  /// this &= other.
  void and_with(const BitVec& other);
  /// this &= ~other.
  void andnot_with(const BitVec& other);
  /// True if every set bit of *this is also set in other.
  [[nodiscard]] bool is_subset_of(const BitVec& other) const;
  /// Number of bits set in both.
  [[nodiscard]] std::size_t count_and(const BitVec& other) const;

  /// Calls fn(index) for every set bit, in increasing index order.
  template <typename F>
  void for_each_set(F&& fn) const {
    for (std::size_t w = 0; w < words_.size(); ++w) {
      std::uint64_t word = words_[w];
      while (word != 0) {
        const auto bit = static_cast<std::size_t>(count_trailing(word));
        fn(w * kWordBits + bit);
        word &= word - 1;
      }
    }
  }

  /// First index where *this and other differ; nullopt if equal.
  /// Both vectors must have the same size.
  [[nodiscard]] std::optional<std::size_t> first_difference(const BitVec& other) const;

  /// '0'/'1' rendering (test/debug convenience).
  [[nodiscard]] std::string to_string() const;

  /// 64-bit FNV-style hash over content (used for map keys of segment
  /// strings; not cryptographic).
  [[nodiscard]] std::uint64_t hash() const;

  bool operator==(const BitVec& other) const;
  bool operator!=(const BitVec& other) const { return !(*this == other); }

 private:
  static constexpr std::size_t kWordBits = 64;
  static std::size_t word_count(std::size_t n) {
    return (n + kWordBits - 1) / kWordBits;
  }
  static int count_trailing(std::uint64_t word);
  void trim_tail();

  std::vector<std::uint64_t> words_;
  std::size_t size_ = 0;
};

/// Hash functor so BitVec can key unordered containers.
struct BitVecHash {
  std::size_t operator()(const BitVec& v) const {
    return static_cast<std::size_t>(v.hash());
  }
};

}  // namespace asyncdr
