#include "common/bitvec.hpp"

#include <bit>

#include "common/check.hpp"

namespace asyncdr {

BitVec::BitVec(std::size_t n, bool value)
    : words_(word_count(n), value ? ~std::uint64_t{0} : 0), size_(n) {
  trim_tail();
}

BitVec BitVec::from_string(const std::string& bits) {
  BitVec v(bits.size());
  for (std::size_t i = 0; i < bits.size(); ++i) {
    ASYNCDR_EXPECTS_MSG(bits[i] == '0' || bits[i] == '1',
                        "BitVec::from_string expects only '0'/'1'");
    v.set(i, bits[i] == '1');
  }
  return v;
}

bool BitVec::get(std::size_t i) const {
  ASYNCDR_EXPECTS(i < size_);
  return (words_[i / kWordBits] >> (i % kWordBits)) & 1u;
}

void BitVec::set(std::size_t i, bool value) {
  ASYNCDR_EXPECTS(i < size_);
  const std::uint64_t mask = std::uint64_t{1} << (i % kWordBits);
  if (value) {
    words_[i / kWordBits] |= mask;
  } else {
    words_[i / kWordBits] &= ~mask;
  }
}

void BitVec::flip(std::size_t i) {
  ASYNCDR_EXPECTS(i < size_);
  words_[i / kWordBits] ^= std::uint64_t{1} << (i % kWordBits);
}

void BitVec::push_back(bool value) {
  if (size_ % kWordBits == 0) words_.push_back(0);
  ++size_;
  set(size_ - 1, value);
}

BitVec BitVec::slice(std::size_t pos, std::size_t len) const {
  ASYNCDR_EXPECTS(pos + len <= size_);
  BitVec out(len);
  for (std::size_t i = 0; i < len; ++i) out.set(i, get(pos + i));
  return out;
}

void BitVec::splice(std::size_t pos, const BitVec& src) {
  ASYNCDR_EXPECTS(pos + src.size() <= size_);
  for (std::size_t i = 0; i < src.size(); ++i) set(pos + i, src.get(i));
}

std::size_t BitVec::popcount() const {
  std::size_t total = 0;
  for (std::uint64_t w : words_) total += static_cast<std::size_t>(std::popcount(w));
  return total;
}

void BitVec::or_with(const BitVec& other) {
  ASYNCDR_EXPECTS(size_ == other.size_);
  for (std::size_t w = 0; w < words_.size(); ++w) words_[w] |= other.words_[w];
}

void BitVec::and_with(const BitVec& other) {
  ASYNCDR_EXPECTS(size_ == other.size_);
  for (std::size_t w = 0; w < words_.size(); ++w) words_[w] &= other.words_[w];
}

void BitVec::andnot_with(const BitVec& other) {
  ASYNCDR_EXPECTS(size_ == other.size_);
  for (std::size_t w = 0; w < words_.size(); ++w) words_[w] &= ~other.words_[w];
}

bool BitVec::is_subset_of(const BitVec& other) const {
  ASYNCDR_EXPECTS(size_ == other.size_);
  for (std::size_t w = 0; w < words_.size(); ++w) {
    if ((words_[w] & ~other.words_[w]) != 0) return false;
  }
  return true;
}

std::size_t BitVec::count_and(const BitVec& other) const {
  ASYNCDR_EXPECTS(size_ == other.size_);
  std::size_t total = 0;
  for (std::size_t w = 0; w < words_.size(); ++w) {
    total += static_cast<std::size_t>(std::popcount(words_[w] & other.words_[w]));
  }
  return total;
}

int BitVec::count_trailing(std::uint64_t word) {
  return std::countr_zero(word);
}

std::optional<std::size_t> BitVec::first_difference(const BitVec& other) const {
  ASYNCDR_EXPECTS(size_ == other.size_);
  for (std::size_t w = 0; w < words_.size(); ++w) {
    const std::uint64_t diff = words_[w] ^ other.words_[w];
    if (diff != 0) {
      return w * kWordBits + static_cast<std::size_t>(std::countr_zero(diff));
    }
  }
  return std::nullopt;
}

std::string BitVec::to_string() const {
  std::string s;
  s.reserve(size_);
  for (std::size_t i = 0; i < size_; ++i) s.push_back(get(i) ? '1' : '0');
  return s;
}

std::uint64_t BitVec::hash() const {
  std::uint64_t h = 14695981039346656037ull ^ size_;
  for (std::uint64_t w : words_) {
    h ^= w;
    h *= 1099511628211ull;
  }
  return h;
}

bool BitVec::operator==(const BitVec& other) const {
  return size_ == other.size_ && words_ == other.words_;
}

void BitVec::trim_tail() {
  if (size_ % kWordBits != 0 && !words_.empty()) {
    words_.back() &= (std::uint64_t{1} << (size_ % kWordBits)) - 1;
  }
}

}  // namespace asyncdr
