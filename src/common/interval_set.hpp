// Sorted disjoint half-open interval set over bit indices. The crash-fault
// Download protocols track "unknown bits" and per-peer assignments as index
// sets; intervals keep those operations O(#intervals) instead of O(n).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace asyncdr {

/// Half-open interval [lo, hi).
struct Interval {
  std::size_t lo = 0;
  std::size_t hi = 0;

  [[nodiscard]] std::size_t length() const { return hi - lo; }
  bool operator==(const Interval&) const = default;
};

/// A set of bit indices represented as sorted, disjoint, non-adjacent
/// half-open intervals.
///
/// Invariant: intervals are non-empty, sorted by lo, and separated by gaps
/// (adjacent intervals are coalesced).
class IntervalSet {
 public:
  IntervalSet() = default;

  /// The full range [0, n).
  static IntervalSet full(std::size_t n);

  /// A single interval [lo, hi).
  static IntervalSet of(std::size_t lo, std::size_t hi);

  [[nodiscard]] bool empty() const { return intervals_.empty(); }
  [[nodiscard]] std::size_t count() const { return count_; }
  [[nodiscard]] bool contains(std::size_t i) const;

  void insert(std::size_t i) { insert(i, i + 1); }
  void insert(std::size_t lo, std::size_t hi);
  void erase(std::size_t i) { erase(i, i + 1); }
  void erase(std::size_t lo, std::size_t hi);

  /// In-place set union / difference / intersection.
  void unite(const IntervalSet& other);
  void subtract(const IntervalSet& other);
  void intersect(const IntervalSet& other);

  /// Splits the set into `parts` pieces whose sizes differ by at most one,
  /// in index order. Used to spread unknown bits evenly over peers.
  [[nodiscard]] std::vector<IntervalSet> split_evenly(std::size_t parts) const;

  /// Materializes the member indices in increasing order.
  [[nodiscard]] std::vector<std::size_t> to_indices() const;

  [[nodiscard]] const std::vector<Interval>& intervals() const { return intervals_; }

  [[nodiscard]] std::string to_string() const;

  bool operator==(const IntervalSet&) const = default;

 private:
  void recount();

  std::vector<Interval> intervals_;
  std::size_t count_ = 0;
};

}  // namespace asyncdr
