#include "common/table.hpp"

#include <cstdio>
#include <iomanip>
#include <iostream>
#include <sstream>

#include "common/check.hpp"

namespace asyncdr {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  ASYNCDR_EXPECTS(!headers_.empty());
}

void Table::add_row(std::vector<std::string> cells) {
  ASYNCDR_EXPECTS(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "| " : " | ") << std::left << std::setw(static_cast<int>(widths[c]))
         << row[c];
    }
    os << " |\n";
  };
  emit_row(headers_);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << (c == 0 ? "|" : "|") << std::string(widths[c] + 2, '-');
  }
  os << "|\n";
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

// asyncdr-lint: allow(DR004) Table is a designated report renderer; print()
// existing so front-ends don't each reimplement the flush.
void Table::print() const { std::cout << render() << std::flush; }

std::string Table::to_cell(double v) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(2) << v;
  return os.str();
}

std::string Table::to_cell(std::size_t v) { return std::to_string(v); }
std::string Table::to_cell(int v) { return std::to_string(v); }
std::string Table::to_cell(long v) { return std::to_string(v); }
std::string Table::to_cell(unsigned v) { return std::to_string(v); }
std::string Table::to_cell(long long v) { return std::to_string(v); }
std::string Table::to_cell(unsigned long long v) { return std::to_string(v); }

}  // namespace asyncdr
