// Contract-checking macros in the spirit of the Core Guidelines' Expects()
// and Ensures(). Violations throw (they are programmer errors surfaced to
// tests), carrying the failed expression and source location.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace asyncdr {

/// Thrown when a precondition, postcondition, or internal invariant fails.
class contract_violation : public std::logic_error {
 public:
  explicit contract_violation(const std::string& what) : std::logic_error(what) {}
};

namespace detail {

[[noreturn]] inline void contract_fail(const char* kind, const char* expr,
                                       const char* file, int line,
                                       const std::string& msg) {
  std::ostringstream os;
  os << kind << " failed: (" << expr << ") at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw contract_violation(os.str());
}

}  // namespace detail
}  // namespace asyncdr

#define ASYNCDR_EXPECTS(cond)                                                  \
  do {                                                                         \
    if (!(cond))                                                               \
      ::asyncdr::detail::contract_fail("precondition", #cond, __FILE__,        \
                                       __LINE__, "");                          \
  } while (0)

#define ASYNCDR_EXPECTS_MSG(cond, msg)                                         \
  do {                                                                         \
    if (!(cond))                                                               \
      ::asyncdr::detail::contract_fail("precondition", #cond, __FILE__,        \
                                       __LINE__, (msg));                       \
  } while (0)

#define ASYNCDR_ENSURES(cond)                                                  \
  do {                                                                         \
    if (!(cond))                                                               \
      ::asyncdr::detail::contract_fail("postcondition", #cond, __FILE__,       \
                                       __LINE__, "");                          \
  } while (0)

#define ASYNCDR_INVARIANT(cond)                                                \
  do {                                                                         \
    if (!(cond))                                                               \
      ::asyncdr::detail::contract_fail("invariant", #cond, __FILE__, __LINE__, \
                                       "");                                    \
  } while (0)

#define ASYNCDR_INVARIANT_MSG(cond, msg)                                       \
  do {                                                                         \
    if (!(cond))                                                               \
      ::asyncdr::detail::contract_fail("invariant", #cond, __FILE__, __LINE__, \
                                       (msg));                                 \
  } while (0)
