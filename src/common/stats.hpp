// Small statistics helpers shared by tests and benchmark harnesses.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace asyncdr {

/// Accumulates scalar samples and reports summary statistics.
class Summary {
 public:
  void add(double x);
  void add_all(const std::vector<double>& xs);

  std::size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }

  double min() const;
  double max() const;
  double sum() const;
  double mean() const;
  /// Sample standard deviation (n-1 denominator); 0 for fewer than 2 samples.
  double stddev() const;
  /// Linear-interpolated percentile, q in [0, 100].
  double percentile(double q) const;
  double median() const { return percentile(50.0); }

  /// "mean ± stddev [min, max]" rendering for logs.
  std::string to_string() const;

 private:
  void ensure_sorted() const;

  std::vector<double> samples_;
  mutable std::vector<double> sorted_;
  mutable bool sorted_valid_ = false;
};

/// Median of a vector (copies; convenience for the oracle aggregation).
double median_of(std::vector<double> xs);
std::int64_t median_of(std::vector<std::int64_t> xs);

}  // namespace asyncdr
