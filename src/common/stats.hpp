// Small statistics helpers shared by tests and benchmark harnesses.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace asyncdr {

/// Accumulates scalar samples and reports summary statistics.
class Summary {
 public:
  void add(double x);
  void add_all(const std::vector<double>& xs);

  [[nodiscard]] std::size_t count() const { return samples_.size(); }
  [[nodiscard]] bool empty() const { return samples_.empty(); }

  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  [[nodiscard]] double sum() const;
  [[nodiscard]] double mean() const;
  /// Sample standard deviation (n-1 denominator); 0 for fewer than 2 samples.
  [[nodiscard]] double stddev() const;
  /// Linear-interpolated percentile, q in [0, 100].
  [[nodiscard]] double percentile(double q) const;
  [[nodiscard]] double median() const { return percentile(50.0); }

  /// "mean ± stddev [min, max]" rendering for logs.
  [[nodiscard]] std::string to_string() const;

 private:
  void ensure_sorted() const;

  std::vector<double> samples_;
  mutable std::vector<double> sorted_;
  mutable bool sorted_valid_ = false;
};

/// Median of a vector (copies; convenience for the oracle aggregation).
double median_of(std::vector<double> xs);
std::int64_t median_of(std::vector<std::int64_t> xs);

}  // namespace asyncdr
