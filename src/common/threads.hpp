// Worker-thread count resolution for fan-out substrates (chaos sweeps,
// future sharded runners). Centralised because std::thread::
// hardware_concurrency() is a hint, not a promise: CI runners and cgroup
// limits routinely report core counts that have nothing to do with what the
// job may use, so an ASYNCDR_THREADS override must beat auto-detection
// everywhere, uniformly.
#pragma once

#include <cstddef>

namespace asyncdr {

/// Clamp applied to auto-detected (or env-overridden) concurrency. Sweep
/// workers are CPU-bound; past this width coordination overhead dominates.
inline constexpr std::size_t kMaxAutoThreads = 64;

/// Parses an ASYNCDR_THREADS-style override: optional surrounding
/// whitespace around a positive decimal integer. Returns the value clamped
/// to [1, kMaxAutoThreads], or 0 when `value` is null, empty, non-numeric,
/// or zero (meaning: no usable override).
[[nodiscard]] std::size_t parse_thread_override(const char* value);

/// Resolves a worker-thread count. An explicit `requested` > 0 wins
/// verbatim (the caller asked for exactly that). Otherwise the
/// ASYNCDR_THREADS environment variable applies if it parses; otherwise
/// std::thread::hardware_concurrency(), clamped to [1, kMaxAutoThreads].
[[nodiscard]] std::size_t resolve_threads(std::size_t requested = 0);

}  // namespace asyncdr
