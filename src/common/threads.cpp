#include "common/threads.hpp"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <string>
#include <thread>

namespace asyncdr {

std::size_t parse_thread_override(const char* value) {
  if (value == nullptr) return 0;
  std::string s(value);
  const auto is_space = [](unsigned char c) { return std::isspace(c) != 0; };
  while (!s.empty() && is_space(static_cast<unsigned char>(s.front()))) {
    s.erase(s.begin());
  }
  while (!s.empty() && is_space(static_cast<unsigned char>(s.back()))) {
    s.pop_back();
  }
  if (s.empty() ||
      !std::all_of(s.begin(), s.end(), [](unsigned char c) {
        return std::isdigit(c) != 0;
      })) {
    return 0;
  }
  // Long digit strings saturate rather than overflow: anything past the
  // clamp parses to the clamp.
  if (s.size() > 6) return kMaxAutoThreads;
  const unsigned long parsed = std::stoul(s);
  if (parsed == 0) return 0;
  return std::min<std::size_t>(parsed, kMaxAutoThreads);
}

std::size_t resolve_threads(std::size_t requested) {
  if (requested > 0) return requested;
  if (const std::size_t env = parse_thread_override(
          std::getenv("ASYNCDR_THREADS"));
      env > 0) {
    return env;
  }
  const std::size_t detected = std::thread::hardware_concurrency();
  return std::clamp<std::size_t>(detected, 1, kMaxAutoThreads);
}

}  // namespace asyncdr
