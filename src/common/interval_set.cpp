#include "common/interval_set.hpp"

#include <algorithm>
#include <sstream>

#include "common/check.hpp"

namespace asyncdr {

IntervalSet IntervalSet::full(std::size_t n) { return of(0, n); }

IntervalSet IntervalSet::of(std::size_t lo, std::size_t hi) {
  IntervalSet s;
  s.insert(lo, hi);
  return s;
}

bool IntervalSet::contains(std::size_t i) const {
  auto it = std::upper_bound(
      intervals_.begin(), intervals_.end(), i,
      [](std::size_t x, const Interval& iv) { return x < iv.lo; });
  if (it == intervals_.begin()) return false;
  --it;
  return i >= it->lo && i < it->hi;
}

void IntervalSet::insert(std::size_t lo, std::size_t hi) {
  ASYNCDR_EXPECTS(lo <= hi);
  if (lo == hi) return;
  // Find all intervals that touch or overlap [lo, hi) and merge them.
  auto first = std::lower_bound(
      intervals_.begin(), intervals_.end(), lo,
      [](const Interval& iv, std::size_t x) { return iv.hi < x; });
  auto last = first;
  std::size_t new_lo = lo;
  std::size_t new_hi = hi;
  while (last != intervals_.end() && last->lo <= hi) {
    new_lo = std::min(new_lo, last->lo);
    new_hi = std::max(new_hi, last->hi);
    ++last;
  }
  const auto pos = intervals_.erase(first, last);
  intervals_.insert(pos, Interval{new_lo, new_hi});
  recount();
}

void IntervalSet::erase(std::size_t lo, std::size_t hi) {
  ASYNCDR_EXPECTS(lo <= hi);
  if (lo == hi || intervals_.empty()) return;
  std::vector<Interval> out;
  out.reserve(intervals_.size() + 1);
  for (const Interval& iv : intervals_) {
    if (iv.hi <= lo || iv.lo >= hi) {
      out.push_back(iv);
      continue;
    }
    if (iv.lo < lo) out.push_back(Interval{iv.lo, lo});
    if (iv.hi > hi) out.push_back(Interval{hi, iv.hi});
  }
  intervals_ = std::move(out);
  recount();
}

void IntervalSet::unite(const IntervalSet& other) {
  for (const Interval& iv : other.intervals_) insert(iv.lo, iv.hi);
}

void IntervalSet::subtract(const IntervalSet& other) {
  for (const Interval& iv : other.intervals_) erase(iv.lo, iv.hi);
}

void IntervalSet::intersect(const IntervalSet& other) {
  std::vector<Interval> out;
  auto a = intervals_.begin();
  auto b = other.intervals_.begin();
  while (a != intervals_.end() && b != other.intervals_.end()) {
    const std::size_t lo = std::max(a->lo, b->lo);
    const std::size_t hi = std::min(a->hi, b->hi);
    if (lo < hi) out.push_back(Interval{lo, hi});
    if (a->hi < b->hi) {
      ++a;
    } else {
      ++b;
    }
  }
  intervals_ = std::move(out);
  recount();
}

std::vector<IntervalSet> IntervalSet::split_evenly(std::size_t parts) const {
  ASYNCDR_EXPECTS(parts > 0);
  std::vector<IntervalSet> out(parts);
  const std::size_t total = count_;
  if (total == 0) return out;
  const std::size_t base = total / parts;
  const std::size_t extra = total % parts;  // first `extra` parts get +1

  std::size_t part = 0;
  std::size_t remaining_in_part = base + (extra > 0 ? 1 : 0);
  // Skip initially empty parts when total < parts.
  while (remaining_in_part == 0 && part + 1 < parts) {
    ++part;
    remaining_in_part = base + (part < extra ? 1 : 0);
  }
  for (const Interval& iv : intervals_) {
    std::size_t lo = iv.lo;
    while (lo < iv.hi) {
      const std::size_t take = std::min(iv.hi - lo, remaining_in_part);
      out[part].insert(lo, lo + take);
      lo += take;
      remaining_in_part -= take;
      while (remaining_in_part == 0 && part + 1 < parts) {
        ++part;
        remaining_in_part = base + (part < extra ? 1 : 0);
      }
    }
  }
  return out;
}

std::vector<std::size_t> IntervalSet::to_indices() const {
  std::vector<std::size_t> out;
  out.reserve(count_);
  for (const Interval& iv : intervals_) {
    for (std::size_t i = iv.lo; i < iv.hi; ++i) out.push_back(i);
  }
  return out;
}

std::string IntervalSet::to_string() const {
  std::ostringstream os;
  os << '{';
  bool first = true;
  for (const Interval& iv : intervals_) {
    if (!first) os << ", ";
    first = false;
    os << '[' << iv.lo << ',' << iv.hi << ')';
  }
  os << '}';
  return os.str();
}

void IntervalSet::recount() {
  count_ = 0;
  for (const Interval& iv : intervals_) count_ += iv.length();
}

}  // namespace asyncdr
