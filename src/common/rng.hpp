// Deterministic random number generation. Every run of the simulator is a
// pure function of (configuration, seed); peers and adversaries each draw
// from independent streams split off a master seed so that adding a consumer
// never perturbs another consumer's stream.
#pragma once

#include <cstdint>
#include <vector>

namespace asyncdr {

/// SplitMix64 — used to expand seeds into stream states.
std::uint64_t splitmix64(std::uint64_t& state);

/// xoshiro256** PRNG. Satisfies UniformRandomBitGenerator so it can also be
/// plugged into <random> distributions if ever needed.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }
  result_type operator()() { return next(); }

  std::uint64_t next();

  /// Uniform integer in [0, bound) using Lemire's unbiased method.
  /// bound must be nonzero.
  std::uint64_t below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double uniform01();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  bool flip(double p = 0.5);

  /// Derives an independent child stream; deterministic in (this seed, tag).
  [[nodiscard]] Rng split(std::uint64_t tag) const;

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(below(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Samples `count` distinct values from [0, universe). count <= universe.
  std::vector<std::size_t> sample_without_replacement(std::size_t universe,
                                                      std::size_t count);

 private:
  std::uint64_t seed_;  // retained so split() is a pure function of the seed
  std::uint64_t s_[4];
};

}  // namespace asyncdr
