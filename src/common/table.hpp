// Plain-text table rendering for the benchmark harnesses, so every bench
// binary prints rows in the same aligned format the paper's tables use.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace asyncdr {

/// Collects rows of string cells and renders an aligned ASCII table.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Appends a row; must have exactly as many cells as there are headers.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats each argument with to_cell() and appends.
  template <typename... Args>
  void add(const Args&... args) {
    add_row({to_cell(args)...});
  }

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }

  /// Renders with a header underline and column alignment.
  [[nodiscard]] std::string render() const;

  /// Renders and writes to stdout.
  void print() const;

  static std::string to_cell(const std::string& s) { return s; }
  static std::string to_cell(const char* s) { return s; }
  static std::string to_cell(double v);
  static std::string to_cell(std::size_t v);
  static std::string to_cell(int v);
  static std::string to_cell(long v);
  static std::string to_cell(unsigned v);
  static std::string to_cell(long long v);
  static std::string to_cell(unsigned long long v);
  static std::string to_cell(bool v) { return v ? "yes" : "no"; }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace asyncdr
