#include "common/stats.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <numeric>
#include <sstream>

#include "common/check.hpp"

namespace asyncdr {

void Summary::add(double x) {
  samples_.push_back(x);
  sorted_valid_ = false;
}

void Summary::add_all(const std::vector<double>& xs) {
  for (double x : xs) add(x);
}

double Summary::min() const {
  ASYNCDR_EXPECTS(!samples_.empty());
  return *std::min_element(samples_.begin(), samples_.end());
}

double Summary::max() const {
  ASYNCDR_EXPECTS(!samples_.empty());
  return *std::max_element(samples_.begin(), samples_.end());
}

double Summary::sum() const {
  return std::accumulate(samples_.begin(), samples_.end(), 0.0);
}

double Summary::mean() const {
  ASYNCDR_EXPECTS(!samples_.empty());
  return sum() / static_cast<double>(samples_.size());
}

double Summary::stddev() const {
  if (samples_.size() < 2) return 0.0;
  const double m = mean();
  double acc = 0.0;
  for (double x : samples_) acc += (x - m) * (x - m);
  return std::sqrt(acc / static_cast<double>(samples_.size() - 1));
}

double Summary::percentile(double q) const {
  ASYNCDR_EXPECTS(!samples_.empty());
  ASYNCDR_EXPECTS(q >= 0.0 && q <= 100.0);
  ensure_sorted();
  if (sorted_.size() == 1) return sorted_[0];
  const double rank = q / 100.0 * static_cast<double>(sorted_.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted_.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted_[lo] * (1.0 - frac) + sorted_[hi] * frac;
}

std::string Summary::to_string() const {
  if (samples_.empty()) return "(no samples)";
  std::ostringstream os;
  os << mean() << " ± " << stddev() << " [" << min() << ", " << max() << "] n="
     << samples_.size();
  return os.str();
}

void Summary::ensure_sorted() const {
  if (!sorted_valid_) {
    sorted_ = samples_;
    std::sort(sorted_.begin(), sorted_.end());
    sorted_valid_ = true;
  }
}

double median_of(std::vector<double> xs) {
  ASYNCDR_EXPECTS(!xs.empty());
  const std::size_t mid = xs.size() / 2;
  std::nth_element(xs.begin(), xs.begin() + static_cast<std::ptrdiff_t>(mid),
                   xs.end());
  if (xs.size() % 2 == 1) return xs[mid];
  const double hi = xs[mid];
  const double lo =
      *std::max_element(xs.begin(), xs.begin() + static_cast<std::ptrdiff_t>(mid));
  return (lo + hi) / 2.0;
}

std::int64_t median_of(std::vector<std::int64_t> xs) {
  ASYNCDR_EXPECTS(!xs.empty());
  const std::size_t mid = xs.size() / 2;
  std::nth_element(xs.begin(), xs.begin() + static_cast<std::ptrdiff_t>(mid),
                   xs.end());
  // For even sizes, return the lower median — an actual sample value, which
  // the honest-range guarantee of §4 needs (averaging could leave the range
  // of values held by honest data sources only in pathological encodings,
  // but an order-statistic never does).
  if (xs.size() % 2 == 1) return xs[mid];
  return *std::max_element(xs.begin(),
                           xs.begin() + static_cast<std::ptrdiff_t>(mid));
}

}  // namespace asyncdr
