#include "common/rng.hpp"

#include <bit>

#include "common/check.hpp"

namespace asyncdr {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

Rng::Rng(std::uint64_t seed) : seed_(seed) {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
  // xoshiro must not start from the all-zero state.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::next() {
  const std::uint64_t result = std::rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = std::rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::below(std::uint64_t bound) {
  ASYNCDR_EXPECTS(bound != 0);
  // Lemire's multiply-shift rejection method.
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (lo < threshold) {
      x = next();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::range(std::int64_t lo, std::int64_t hi) {
  ASYNCDR_EXPECTS(lo <= hi);
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(below(span));
}

double Rng::uniform01() {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  ASYNCDR_EXPECTS(lo <= hi);
  return lo + (hi - lo) * uniform01();
}

bool Rng::flip(double p) { return uniform01() < p; }

Rng Rng::split(std::uint64_t tag) const {
  std::uint64_t sm = seed_ ^ (0x6a09e667f3bcc909ull + tag * 0x3c6ef372fe94f82bull);
  return Rng(splitmix64(sm));
}

std::vector<std::size_t> Rng::sample_without_replacement(std::size_t universe,
                                                         std::size_t count) {
  ASYNCDR_EXPECTS(count <= universe);
  // Partial Fisher–Yates over an index array; fine at simulation scales.
  std::vector<std::size_t> idx(universe);
  for (std::size_t i = 0; i < universe; ++i) idx[i] = i;
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t j = i + static_cast<std::size_t>(below(universe - i));
    std::swap(idx[i], idx[j]);
  }
  idx.resize(count);
  return idx;
}

}  // namespace asyncdr
