// Deterministic discrete-event engine. Events fire in (time, insertion
// sequence) order, so two runs with identical inputs produce identical
// executions — the property every test and lower-bound construction relies
// on.
//
// Layout (sized for runs with tens of millions of events): the priority
// queue is an owned 4-ary heap of 24-byte (time, seq, slot) nodes — shallow
// and cache-friendly to sift, and nothing but PODs move during heap
// maintenance. Actions live in a pooled slot array off to the side
// (free-list recycled), stored as small-buffer-optimized InlineActions, so
// scheduling an event performs no per-event heap allocation for any closure
// up to InlineAction::kInlineBytes. step() moves the action out of its slot
// and releases the slot *before* invoking, so actions may freely re-enter
// schedule_at / schedule_in — even from their destructors.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/action.hpp"
#include "sim/types.hpp"

namespace asyncdr::sim {

/// Event-driven virtual-time executor.
class Engine {
 public:
  using Action = InlineAction;

  /// Result of a run() call.
  struct RunResult {
    std::size_t events_processed = 0;
    /// True if run() stopped because the event budget was hit while events
    /// remained — the runaway-execution guard, treated as failure upstream.
    bool budget_exhausted = false;
  };

  [[nodiscard]] Time now() const { return now_; }

  /// Schedules `action` to run `delay` time units from now. delay >= 0.
  void schedule_in(Time delay, Action action);

  /// Schedules `action` at absolute time `t`. t >= now().
  void schedule_at(Time t, Action action);

  /// Runs one event; returns false if the queue is empty.
  bool step();

  /// Runs until the queue drains or `max_events` have been processed.
  RunResult run(std::size_t max_events = kDefaultEventBudget);

  [[nodiscard]] bool idle() const { return heap_.empty(); }
  [[nodiscard]] std::size_t pending() const { return heap_.size(); }

  static constexpr std::size_t kDefaultEventBudget = 50'000'000;

 private:
  /// Heap node: ordering key plus the index of the action's pool slot.
  /// Slots are 32-bit — the pool never exceeds the peak number of
  /// *concurrently pending* events, and four billion pending events would
  /// exhaust memory long before the index.
  struct HeapNode {
    Time t;
    std::uint64_t seq;
    std::uint32_t slot;
  };

  /// Strict (time, seq) min order.
  [[nodiscard]] static bool earlier(const HeapNode& a, const HeapNode& b) {
    return a.t != b.t ? a.t < b.t : a.seq < b.seq;
  }

  void sift_up(std::size_t i);
  void sift_down(std::size_t i);

  Time now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::vector<HeapNode> heap_;        ///< 4-ary min-heap over (t, seq)
  std::vector<Action> pool_;          ///< action per slot, indexed by HeapNode::slot
  std::vector<std::uint32_t> free_slots_;  ///< recycled pool slots
};

}  // namespace asyncdr::sim
