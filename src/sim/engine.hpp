// Deterministic discrete-event engine. Events fire in (time, insertion
// sequence) order, so two runs with identical inputs produce identical
// executions — the property every test and lower-bound construction relies
// on.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "sim/types.hpp"

namespace asyncdr::sim {

/// Event-driven virtual-time executor.
class Engine {
 public:
  using Action = std::function<void()>;

  /// Result of a run() call.
  struct RunResult {
    std::size_t events_processed = 0;
    /// True if run() stopped because the event budget was hit while events
    /// remained — the runaway-execution guard, treated as failure upstream.
    bool budget_exhausted = false;
  };

  [[nodiscard]] Time now() const { return now_; }

  /// Schedules `action` to run `delay` time units from now. delay >= 0.
  void schedule_in(Time delay, Action action);

  /// Schedules `action` at absolute time `t`. t >= now().
  void schedule_at(Time t, Action action);

  /// Runs one event; returns false if the queue is empty.
  bool step();

  /// Runs until the queue drains or `max_events` have been processed.
  RunResult run(std::size_t max_events = kDefaultEventBudget);

  [[nodiscard]] bool idle() const { return queue_.empty(); }
  [[nodiscard]] std::size_t pending() const { return queue_.size(); }

  static constexpr std::size_t kDefaultEventBudget = 50'000'000;

 private:
  struct Event {
    Time t;
    std::uint64_t seq;
    Action action;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.t != b.t) return a.t > b.t;
      return a.seq > b.seq;
    }
  };

  Time now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

}  // namespace asyncdr::sim
