// Small-buffer-optimized move-only callable used for engine events. The
// discrete-event hot path schedules tens of millions of closures per run;
// std::function heap-allocates most of them (message captures exceed its
// tiny inline buffer), so the engine uses this type instead: callables up
// to kInlineBytes live inside the object, larger ones fall back to a single
// heap cell. Invocation, relocation, and destruction dispatch through one
// static ops table per callable type — no virtual bases, no RTTI.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace asyncdr::sim {

/// Move-only `void()` callable with inline storage for small captures.
class InlineAction {
 public:
  /// Sized so a delivery closure (this + Message: two peer ids, a shared
  /// payload pointer, a timestamp, a message id) and a broadcast-bucket
  /// closure (this + sender + payload + timestamp + entry vector) both fit
  /// without touching the heap.
  static constexpr std::size_t kInlineBytes = 64;

  InlineAction() noexcept = default;
  InlineAction(std::nullptr_t) noexcept {}  // NOLINT(google-explicit-constructor)

  template <typename F, typename D = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, InlineAction> &&
                                        std::is_invocable_r_v<void, D&>>>
  InlineAction(F&& f) {  // NOLINT(google-explicit-constructor)
    if constexpr (fits_inline<D>()) {
      ::new (static_cast<void*>(storage_)) D(std::forward<F>(f));
      ops_ = &kInlineOps<D>;
    } else {
      *reinterpret_cast<D**>(storage_) = new D(std::forward<F>(f));
      ops_ = &kHeapOps<D>;
    }
  }

  InlineAction(InlineAction&& other) noexcept { take(other); }

  InlineAction& operator=(InlineAction&& other) noexcept {
    if (this != &other) {
      reset();
      take(other);
    }
    return *this;
  }

  InlineAction(const InlineAction&) = delete;
  InlineAction& operator=(const InlineAction&) = delete;

  ~InlineAction() { reset(); }

  [[nodiscard]] explicit operator bool() const noexcept {
    return ops_ != nullptr;
  }

  /// Invokes the callable. Undefined on an empty action (the engine rejects
  /// empty actions at scheduling time).
  void operator()() { ops_->invoke(storage_); }

 private:
  struct Ops {
    void (*invoke)(void* self);
    /// Move-constructs dst from src and destroys src (a "relocate"); both
    /// point at raw storage.
    void (*relocate)(void* dst, void* src) noexcept;
    void (*destroy)(void* self) noexcept;
  };

  template <typename D>
  static constexpr bool fits_inline() {
    return sizeof(D) <= kInlineBytes &&
           alignof(D) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<D>;
  }

  template <typename D>
  static constexpr Ops kInlineOps = {
      [](void* self) { (*std::launder(reinterpret_cast<D*>(self)))(); },
      [](void* dst, void* src) noexcept {
        D* s = std::launder(reinterpret_cast<D*>(src));
        ::new (dst) D(std::move(*s));
        s->~D();
      },
      [](void* self) noexcept {
        std::launder(reinterpret_cast<D*>(self))->~D();
      },
  };

  template <typename D>
  static constexpr Ops kHeapOps = {
      [](void* self) { (**std::launder(reinterpret_cast<D**>(self)))(); },
      [](void* dst, void* src) noexcept {
        *reinterpret_cast<D**>(dst) = *std::launder(reinterpret_cast<D**>(src));
      },
      [](void* self) noexcept {
        delete *std::launder(reinterpret_cast<D**>(self));
      },
  };

  void take(InlineAction& other) noexcept {
    if (other.ops_ != nullptr) {
      other.ops_->relocate(storage_, other.storage_);
      ops_ = other.ops_;
      other.ops_ = nullptr;
    }
  }

  void reset() noexcept {
    if (ops_ != nullptr) {
      const Ops* ops = ops_;
      // Null first: the callable's destructor may re-enter the owner (an
      // action that schedules from its destructor), and must not observe a
      // half-dead wrapper.
      ops_ = nullptr;
      ops->destroy(storage_);
    }
  }

  alignas(std::max_align_t) unsigned char storage_[kInlineBytes];
  const Ops* ops_ = nullptr;
};

}  // namespace asyncdr::sim
