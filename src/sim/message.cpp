#include "sim/message.hpp"

namespace asyncdr::sim {

// Out-of-line key function: anchors Payload's vtable in this translation
// unit.
Payload::~Payload() = default;

}  // namespace asyncdr::sim
