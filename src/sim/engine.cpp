#include "sim/engine.hpp"

#include "common/check.hpp"

namespace asyncdr::sim {

void Engine::schedule_in(Time delay, Action action) {
  ASYNCDR_EXPECTS(delay >= 0);
  schedule_at(now_ + delay, std::move(action));
}

void Engine::schedule_at(Time t, Action action) {
  ASYNCDR_EXPECTS(t >= now_);
  ASYNCDR_EXPECTS(action != nullptr);
  queue_.push(Event{t, next_seq_++, std::move(action)});
}

bool Engine::step() {
  if (queue_.empty()) return false;
  // priority_queue::top() is const; the action must be moved out before pop.
  Event ev = std::move(const_cast<Event&>(queue_.top()));
  queue_.pop();
  now_ = ev.t;
  ev.action();
  return true;
}

Engine::RunResult Engine::run(std::size_t max_events) {
  RunResult result;
  while (result.events_processed < max_events) {
    if (!step()) return result;
    ++result.events_processed;
  }
  result.budget_exhausted = !queue_.empty();
  return result;
}

}  // namespace asyncdr::sim
