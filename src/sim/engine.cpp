#include "sim/engine.hpp"

#include <algorithm>
#include <limits>

#include "common/check.hpp"

namespace asyncdr::sim {

void Engine::schedule_in(Time delay, Action action) {
  ASYNCDR_EXPECTS(delay >= 0);
  schedule_at(now_ + delay, std::move(action));
}

void Engine::schedule_at(Time t, Action action) {
  ASYNCDR_EXPECTS(t >= now_);
  ASYNCDR_EXPECTS(static_cast<bool>(action));
  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
    pool_[slot] = std::move(action);
  } else {
    ASYNCDR_EXPECTS_MSG(
        pool_.size() < std::numeric_limits<std::uint32_t>::max(),
        "event pool exhausted 32-bit slot indices");
    slot = static_cast<std::uint32_t>(pool_.size());
    pool_.push_back(std::move(action));
  }
  heap_.push_back(HeapNode{t, next_seq_++, slot});
  sift_up(heap_.size() - 1);
}

void Engine::sift_up(std::size_t i) {
  const HeapNode node = heap_[i];
  while (i > 0) {
    const std::size_t parent = (i - 1) / 4;
    if (!earlier(node, heap_[parent])) break;
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = node;
}

void Engine::sift_down(std::size_t i) {
  const std::size_t n = heap_.size();
  const HeapNode node = heap_[i];
  for (;;) {
    const std::size_t first = 4 * i + 1;
    if (first >= n) break;
    std::size_t best = first;
    const std::size_t last = std::min(first + 4, n);
    for (std::size_t c = first + 1; c < last; ++c) {
      if (earlier(heap_[c], heap_[best])) best = c;
    }
    if (!earlier(heap_[best], node)) break;
    heap_[i] = heap_[best];
    i = best;
  }
  heap_[i] = node;
}

bool Engine::step() {
  if (heap_.empty()) return false;
  const HeapNode top = heap_.front();
  heap_.front() = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) sift_down(0);

  // Move the action out and retire its slot *before* invoking: the action
  // (or its destructor, on return) may re-enter schedule_at, and must find
  // the heap, the pool, and the free list in a consistent state.
  Action action = std::move(pool_[top.slot]);
  free_slots_.push_back(top.slot);
  now_ = top.t;
  action();
  return true;
}

Engine::RunResult Engine::run(std::size_t max_events) {
  RunResult result;
  while (result.events_processed < max_events) {
    if (!step()) return result;
    ++result.events_processed;
  }
  result.budget_exhausted = !heap_.empty();
  return result;
}

}  // namespace asyncdr::sim
