// Messages and payloads. Every protocol defines its own payload structs
// deriving from Payload; size_bits() drives both message-complexity
// accounting (a payload of s bits counts as ceil(s / B) unit messages) and
// link transmission time.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "sim/types.hpp"

namespace asyncdr::sim {

/// Base class of all peer-to-peer message contents.
///
/// Payloads are immutable once sent and shared between all recipients of a
/// broadcast, so they are handled through shared_ptr<const Payload>.
class Payload {
 public:
  virtual ~Payload();

  /// Size of the payload in bits, as the paper accounts it (the data bits;
  /// headers such as phase/stage numbers contribute O(log) bits and are
  /// included by each payload type explicitly).
  [[nodiscard]] virtual std::size_t size_bits() const = 0;

  /// Human-readable payload kind for traces and error messages.
  [[nodiscard]] virtual std::string type_name() const = 0;
};

using PayloadPtr = std::shared_ptr<const Payload>;

/// A payload in flight between two peers.
struct Message {
  PeerId from = kNoPeer;
  PeerId to = kNoPeer;
  PayloadPtr payload;
  Time sent_at = 0;
  std::uint64_t id = 0;  // unique per network, in send order
};

/// Downcasts a delivered payload to the protocol's concrete type; returns
/// nullptr if the payload is of another type (e.g. garbage injected by a
/// Byzantine peer using a different payload class).
template <typename T>
const T* payload_as(const Payload& p) {
  return dynamic_cast<const T*>(&p);
}

}  // namespace asyncdr::sim
