#include "sim/network.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace asyncdr::sim {

LatencyPolicy::~LatencyPolicy() = default;
Receiver::~Receiver() = default;
NetworkObserver::~NetworkObserver() = default;
DeliveryStressor::~DeliveryStressor() = default;
void NetworkObserver::on_send(const Message&, std::size_t) {}
void NetworkObserver::on_deliver(const Message&) {}
void NetworkObserver::on_drop(const Message&) {}

FixedLatency::FixedLatency(Time delay) : delay_(delay) {
  ASYNCDR_EXPECTS(delay > 0 && delay <= 1.0);
}

Time FixedLatency::propagation(const Message&) { return delay_; }

Network::Network(Engine& engine, std::size_t k, std::size_t message_size_bits)
    : engine_(engine),
      k_(k),
      message_size_bits_(message_size_bits),
      receivers_(k, nullptr),
      crashed_(k, false),
      links_(k * k),
      sent_units_(k, 0),
      sent_payloads_(k, 0),
      in_flight_(k * k, 0),
      last_send_at_(k, -1.0),
      last_delivery_at_(k, -1.0),
      latency_(std::make_unique<FixedLatency>(1.0)) {
  ASYNCDR_EXPECTS(k >= 2);
  ASYNCDR_EXPECTS(message_size_bits >= 1);
}

void Network::attach(PeerId id, Receiver* receiver) {
  ASYNCDR_EXPECTS(id < k_);
  ASYNCDR_EXPECTS(receiver != nullptr);
  receivers_[id] = receiver;
}

void Network::set_latency_policy(std::unique_ptr<LatencyPolicy> policy) {
  ASYNCDR_EXPECTS(policy != nullptr);
  latency_ = std::move(policy);
}

void Network::set_observer(NetworkObserver* observer) { observer_ = observer; }

void Network::set_delivery_stressor(std::unique_ptr<DeliveryStressor> stressor) {
  stressor_ = std::move(stressor);
}

void Network::set_pre_send_hook(PreSendHook hook) {
  pre_send_hook_ = std::move(hook);
}

std::size_t Network::unit_messages(const Payload& payload) const {
  const std::size_t bits = payload.size_bits();
  return std::max<std::size_t>(1, (bits + message_size_bits_ - 1) / message_size_bits_);
}

void Network::send(PeerId from, PeerId to, PayloadPtr payload) {
  ASYNCDR_EXPECTS(from < k_ && to < k_);
  ASYNCDR_EXPECTS(payload != nullptr);
  if (crashed_[from]) return;

  Message msg{from, to, std::move(payload), engine_.now(), next_message_id_++};
  if (pre_send_hook_) {
    pre_send_hook_(msg);
    // The hook may have crashed the sender; the send is then lost, which is
    // exactly the "crashed mid-operation" semantics of the paper's model.
    if (crashed_[from]) {
      if (observer_) observer_->on_drop(msg);
      return;
    }
  }

  const std::size_t units = unit_messages(*msg.payload);
  sent_units_[from] += units;
  sent_payloads_[from] += 1;
  last_send_at_[from] = engine_.now();
  if (observer_) observer_->on_send(msg, units);

  // Link serialization: one unit message per directed link per time unit.
  LinkState& l = link(from, to);
  const Time departure = std::max(engine_.now(), l.next_free);
  l.next_free = departure + static_cast<Time>(units);
  const Time transmission = static_cast<Time>(units - 1);
  const Time arrival = departure + transmission + latency_->propagation(msg);

  // A beyond-model stressor may replicate the delivery and/or hold copies
  // past the scheduled arrival. In-model runs take the single-copy path.
  const std::size_t copies =
      stressor_ ? std::max<std::size_t>(1, stressor_->copies(msg)) : 1;
  for (std::size_t copy = 0; copy < copies; ++copy) {
    Time at = arrival;
    if (stressor_) {
      const Time extra = stressor_->extra_delay(msg, copy);
      ASYNCDR_EXPECTS_MSG(extra >= 0, "stressor extra delay must be >= 0");
      at += extra;
    }
    ++in_flight_[from * k_ + to];
    engine_.schedule_at(at, [this, msg]() {
      --in_flight_[msg.from * k_ + msg.to];
      if (crashed_[msg.to] || receivers_[msg.to] == nullptr) {
        if (observer_) observer_->on_drop(msg);
        return;
      }
      ++total_deliveries_;
      last_delivery_at_[msg.to] = engine_.now();
      if (observer_) observer_->on_deliver(msg);
      receivers_[msg.to]->deliver(msg);
    });
  }
}

void Network::broadcast(PeerId from, PayloadPtr payload) {
  ASYNCDR_EXPECTS(from < k_);
  for (PeerId to = 0; to < k_; ++to) {
    if (to == from) continue;
    if (crashed_[from]) return;  // died mid-broadcast
    send(from, to, payload);
  }
}

void Network::crash(PeerId id) {
  ASYNCDR_EXPECTS(id < k_);
  crashed_[id] = true;
}

bool Network::is_crashed(PeerId id) const {
  ASYNCDR_EXPECTS(id < k_);
  return crashed_[id];
}

std::size_t Network::crashed_count() const {
  return static_cast<std::size_t>(
      std::count(crashed_.begin(), crashed_.end(), true));
}

std::uint64_t Network::sent_units(PeerId id) const {
  ASYNCDR_EXPECTS(id < k_);
  return sent_units_[id];
}

std::uint64_t Network::sent_payloads(PeerId id) const {
  ASYNCDR_EXPECTS(id < k_);
  return sent_payloads_[id];
}

std::uint32_t Network::in_flight(PeerId from, PeerId to) const {
  ASYNCDR_EXPECTS(from < k_ && to < k_);
  return in_flight_[from * k_ + to];
}

std::uint64_t Network::total_in_flight() const {
  std::uint64_t total = 0;
  for (const std::uint32_t f : in_flight_) total += f;
  return total;
}

Time Network::last_send_at(PeerId id) const {
  ASYNCDR_EXPECTS(id < k_);
  return last_send_at_[id];
}

Time Network::last_delivery_at(PeerId id) const {
  ASYNCDR_EXPECTS(id < k_);
  return last_delivery_at_[id];
}

Network::LinkState& Network::link(PeerId from, PeerId to) {
  return links_[from * k_ + to];
}

}  // namespace asyncdr::sim
