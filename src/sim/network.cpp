#include "sim/network.hpp"

#include <algorithm>
#include <map>

#include "common/check.hpp"

namespace asyncdr::sim {

LatencyPolicy::~LatencyPolicy() = default;
Receiver::~Receiver() = default;
NetworkObserver::~NetworkObserver() = default;
DeliveryStressor::~DeliveryStressor() = default;
void NetworkObserver::on_send(const Message&, std::size_t) {}
void NetworkObserver::on_deliver(const Message&) {}
void NetworkObserver::on_drop(const Message&) {}

FixedLatency::FixedLatency(Time delay) : delay_(delay) {
  ASYNCDR_EXPECTS(delay > 0 && delay <= 1.0);
}

Time FixedLatency::propagation(const Message&) { return delay_; }

Network::Network(Engine& engine, std::size_t k, std::size_t message_size_bits)
    : engine_(engine),
      k_(k),
      message_size_bits_(message_size_bits),
      receivers_(k, nullptr),
      crashed_(k, false),
      sparse_links_(k),
      sent_units_(k, 0),
      sent_payloads_(k, 0),
      last_send_at_(k, -1.0),
      last_delivery_at_(k, -1.0),
      latency_(std::make_unique<FixedLatency>(1.0)) {
  ASYNCDR_EXPECTS(k >= 2);
  ASYNCDR_EXPECTS(message_size_bits >= 1);
}

void Network::set_link_mode(LinkMode mode) {
  ASYNCDR_EXPECTS_MSG(next_message_id_ == 0 && total_in_flight_ == 0,
                      "link mode must be chosen before any traffic");
  if (mode == mode_) return;
  mode_ = mode;
  if (mode == LinkMode::kDense) {
    sparse_links_.clear();
    sparse_links_.shrink_to_fit();
    dense_links_.assign(k_ * k_, Link{});
  } else {
    dense_links_.clear();
    dense_links_.shrink_to_fit();
    sparse_links_.resize(k_);
  }
}

void Network::attach(PeerId id, Receiver* receiver) {
  ASYNCDR_EXPECTS(id < k_);
  ASYNCDR_EXPECTS(receiver != nullptr);
  receivers_[id] = receiver;
}

void Network::set_latency_policy(std::unique_ptr<LatencyPolicy> policy) {
  ASYNCDR_EXPECTS(policy != nullptr);
  latency_ = std::move(policy);
}

void Network::set_observer(NetworkObserver* observer) { observer_ = observer; }

void Network::set_delivery_stressor(std::unique_ptr<DeliveryStressor> stressor) {
  stressor_ = std::move(stressor);
}

void Network::set_pre_send_hook(PreSendHook hook) {
  pre_send_hook_ = std::move(hook);
}

std::size_t Network::unit_messages(const Payload& payload) const {
  const std::size_t bits = payload.size_bits();
  return std::max<std::size_t>(1, (bits + message_size_bits_ - 1) / message_size_bits_);
}

bool Network::pass_pre_send(const Message& msg) {
  if (!pre_send_hook_) return true;
  pre_send_hook_(msg);
  // The hook may have crashed the sender; the send is then lost, which is
  // exactly the "crashed mid-operation" semantics of the paper's model. A
  // message that was never sent consumes no id and reaches no observer —
  // otherwise the causal DAG would see link edges for phantom sends.
  return !crashed_[msg.from];
}

void Network::account_send(const Message& msg, std::size_t units) {
  sent_units_[msg.from] += units;
  sent_payloads_[msg.from] += 1;
  last_send_at_[msg.from] = engine_.now();
  if (observer_) observer_->on_send(msg, units);
}

Time Network::reserve_link(const Message& msg, std::size_t units) {
  // Link serialization: one unit message per directed link per time unit.
  Link& l = link(msg.from, msg.to);
  const Time departure = std::max(engine_.now(), l.next_free);
  l.next_free = departure + static_cast<Time>(units);
  const Time transmission = static_cast<Time>(units - 1);
  return departure + transmission + latency_->propagation(msg);
}

void Network::deliver_or_drop(const Message& msg) {
  --link(msg.from, msg.to).in_flight;
  --total_in_flight_;
  if (crashed_[msg.to] || receivers_[msg.to] == nullptr) {
    if (observer_) observer_->on_drop(msg);
    return;
  }
  ++total_deliveries_;
  last_delivery_at_[msg.to] = engine_.now();
  if (observer_) observer_->on_deliver(msg);
  receivers_[msg.to]->deliver(msg);
}

void Network::send(PeerId from, PeerId to, PayloadPtr payload) {
  ASYNCDR_EXPECTS(from < k_ && to < k_);
  ASYNCDR_EXPECTS(payload != nullptr);
  if (crashed_[from]) return;

  Message msg{from, to, std::move(payload), engine_.now(), next_message_id_};
  if (!pass_pre_send(msg)) return;
  ++next_message_id_;

  const std::size_t units = unit_messages(*msg.payload);
  account_send(msg, units);
  const Time arrival = reserve_link(msg, units);

  // A beyond-model stressor may replicate the delivery and/or hold copies
  // past the scheduled arrival. In-model runs take the single-copy path.
  const std::size_t copies =
      stressor_ ? std::max<std::size_t>(1, stressor_->copies(msg)) : 1;
  for (std::size_t copy = 0; copy < copies; ++copy) {
    Time at = arrival;
    if (stressor_) {
      const Time extra = stressor_->extra_delay(msg, copy);
      ASYNCDR_EXPECTS_MSG(extra >= 0, "stressor extra delay must be >= 0");
      at += extra;
    }
    ++link(from, msg.to).in_flight;
    ++total_in_flight_;
    engine_.schedule_at(at, [this, msg]() { deliver_or_drop(msg); });
  }
}

void Network::broadcast(PeerId from, PayloadPtr payload) {
  ASYNCDR_EXPECTS(from < k_);
  ASYNCDR_EXPECTS(payload != nullptr);
  if (mode_ == LinkMode::kDense) {
    // Legacy fan-out: one send (and one scheduled event per copy) per
    // recipient — the A/B reference path.
    for (PeerId to = 0; to < k_; ++to) {
      if (to == from) continue;
      if (crashed_[from]) return;  // died mid-broadcast
      send(from, to, payload);
    }
    return;
  }

  if (crashed_[from]) return;
  const Time sent_at = engine_.now();
  const std::size_t units = unit_messages(*payload);

  // Bucket the fan-out by arrival time: recipients (and stressor copies)
  // landing at the same instant share ONE scheduled event that delivers to
  // each in turn, interning the shared payload once. Per-recipient
  // semantics are unchanged — the pre-send hook, accounting, link
  // reservation, and stressor sampling all run per recipient in increasing
  // ID order, exactly as the dense fan-out does — so traces are
  // byte-identical; only the engine's event count shrinks.
  struct Entry {
    PeerId to;
    std::uint64_t id;
  };
  std::map<Time, std::vector<Entry>> buckets;

  for (PeerId to = 0; to < k_; ++to) {
    if (to == from) continue;
    // pass_pre_send returning false means the hook crashed the sender:
    // the remaining recipients never get their sends (died mid-broadcast),
    // but already-buffered deliveries below still go out.
    Message msg{from, to, payload, sent_at, next_message_id_};
    if (!pass_pre_send(msg)) break;
    ++next_message_id_;
    account_send(msg, units);
    const Time arrival = reserve_link(msg, units);
    const std::size_t copies =
        stressor_ ? std::max<std::size_t>(1, stressor_->copies(msg)) : 1;
    for (std::size_t copy = 0; copy < copies; ++copy) {
      Time at = arrival;
      if (stressor_) {
        const Time extra = stressor_->extra_delay(msg, copy);
        ASYNCDR_EXPECTS_MSG(extra >= 0, "stressor extra delay must be >= 0");
        at += extra;
      }
      ++link(from, to).in_flight;
      ++total_in_flight_;
      buckets[at].push_back(Entry{to, msg.id});
    }
  }

  for (auto& [at, bucket] : buckets) {
    engine_.schedule_at(
        at, [this, from, payload, sent_at, entries = std::move(bucket)]() {
          // Crash state is re-checked per entry at delivery time (an earlier
          // entry's receiver may crash a later entry's), matching the
          // per-event dense path.
          for (const Entry& e : entries) {
            deliver_or_drop(Message{from, e.to, payload, sent_at, e.id});
          }
        });
  }
}

void Network::crash(PeerId id) {
  ASYNCDR_EXPECTS(id < k_);
  crashed_[id] = true;
}

void Network::revive(PeerId id) {
  ASYNCDR_EXPECTS(id < k_);
  crashed_[id] = false;
}

bool Network::is_crashed(PeerId id) const {
  ASYNCDR_EXPECTS(id < k_);
  return crashed_[id];
}

std::size_t Network::crashed_count() const {
  return static_cast<std::size_t>(
      std::count(crashed_.begin(), crashed_.end(), true));
}

std::uint64_t Network::sent_units(PeerId id) const {
  ASYNCDR_EXPECTS(id < k_);
  return sent_units_[id];
}

std::uint64_t Network::sent_payloads(PeerId id) const {
  ASYNCDR_EXPECTS(id < k_);
  return sent_payloads_[id];
}

std::uint64_t Network::in_flight(PeerId from, PeerId to) const {
  ASYNCDR_EXPECTS(from < k_ && to < k_);
  if (mode_ == LinkMode::kDense) return dense_links_[from * k_ + to].in_flight;
  const auto& per_sender = sparse_links_[from];
  const auto it = per_sender.find(to);
  return it == per_sender.end() ? 0 : it->second.in_flight;
}

std::size_t Network::active_links() const {
  if (mode_ == LinkMode::kDense) {
    // A used link always has next_free > 0 (reservation adds >= 1 unit).
    return static_cast<std::size_t>(std::count_if(
        dense_links_.begin(), dense_links_.end(),
        [](const Link& l) { return l.next_free > 0 || l.in_flight > 0; }));
  }
  std::size_t total = 0;
  for (const auto& per_sender : sparse_links_) total += per_sender.size();
  return total;
}

std::vector<Network::BusyLink> Network::busy_links() const {
  std::vector<BusyLink> busy;
  if (mode_ == LinkMode::kDense) {
    for (PeerId from = 0; from < k_; ++from) {
      for (PeerId to = 0; to < k_; ++to) {
        const std::uint64_t inflight = dense_links_[from * k_ + to].in_flight;
        if (inflight > 0) busy.push_back({from, to, inflight});
      }
    }
    return busy;
  }
  for (PeerId from = 0; from < k_; ++from) {
    for (const auto& [to, l] : sparse_links_[from]) {
      if (l.in_flight > 0) busy.push_back({from, to, l.in_flight});
    }
  }
  // Map iteration order is unspecified; sort for the deterministic
  // (from, to) order the dense scan produces.
  std::sort(busy.begin(), busy.end(), [](const BusyLink& a, const BusyLink& b) {
    return a.from != b.from ? a.from < b.from : a.to < b.to;
  });
  return busy;
}

Time Network::last_send_at(PeerId id) const {
  ASYNCDR_EXPECTS(id < k_);
  return last_send_at_[id];
}

Time Network::last_delivery_at(PeerId id) const {
  ASYNCDR_EXPECTS(id < k_);
  return last_delivery_at_[id];
}

Network::Link& Network::link(PeerId from, PeerId to) {
  if (mode_ == LinkMode::kDense) return dense_links_[from * k_ + to];
  return sparse_links_[from][to];
}

}  // namespace asyncdr::sim
