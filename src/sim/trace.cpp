#include "sim/trace.hpp"

#include <sstream>

#include "common/check.hpp"

namespace asyncdr::sim {

namespace {

const char* kind_name(TraceEvent::Kind kind) {
  switch (kind) {
    case TraceEvent::Kind::kSend: return "send";
    case TraceEvent::Kind::kDeliver: return "deliver";
    case TraceEvent::Kind::kDrop: return "drop";
    case TraceEvent::Kind::kCrash: return "crash";
    case TraceEvent::Kind::kQuery: return "query";
    case TraceEvent::Kind::kTerminate: return "terminate";
    case TraceEvent::Kind::kNote: return "note";
    case TraceEvent::Kind::kStart: return "start";
  }
  return "?";
}

}  // namespace

std::string TraceEvent::to_string() const {
  std::ostringstream os;
  os.precision(3);
  os << std::fixed << '[' << at << "] " << kind_name(kind);
  if (from != kNoPeer) os << " p" << from;
  if (to != kNoPeer) os << " -> p" << to;
  if (!payload_type.empty()) os << ' ' << payload_type;
  if (detail_a != 0) os << " (" << detail_a << ')';
  if (!note.empty()) os << " \"" << note << '"';
  return os.str();
}

Trace::Trace(const Engine& engine, std::size_t capacity)
    : engine_(engine), capacity_(capacity) {
  ASYNCDR_EXPECTS(capacity >= 1);
  events_.reserve(std::min<std::size_t>(capacity, 4096));
}

void Trace::on_send(const Message& msg, std::size_t unit_messages) {
  push(TraceEvent{TraceEvent::Kind::kSend, msg.sent_at, msg.from, msg.to,
                  msg.payload->type_name(), unit_messages, {}, msg.id});
}

void Trace::on_deliver(const Message& msg) {
  push(TraceEvent{TraceEvent::Kind::kDeliver, engine_.now(), msg.from, msg.to,
                  msg.payload->type_name(), msg.payload->size_bits(), {},
                  msg.id});
}

void Trace::on_drop(const Message& msg) {
  push(TraceEvent{TraceEvent::Kind::kDrop, engine_.now(), msg.from, msg.to,
                  msg.payload->type_name(), 0, {}, msg.id});
}

void Trace::record_start(Time at, PeerId peer) {
  push(TraceEvent{TraceEvent::Kind::kStart, at, peer, kNoPeer, {}, 0, {}});
}

void Trace::record_crash(Time at, PeerId peer) {
  push(TraceEvent{TraceEvent::Kind::kCrash, at, peer, kNoPeer, {}, 0, {}});
}

void Trace::record_query(Time at, PeerId peer, std::uint64_t bits) {
  // Coalesce adjacent queries by the same peer at the same instant: the
  // protocols issue per-stage batches that would otherwise flood the log.
  if (!events_.empty()) {
    TraceEvent& last = events_.back();
    if (last.kind == TraceEvent::Kind::kQuery && last.from == peer &&
        last.at == at) {
      last.detail_a += bits;
      return;
    }
  }
  push(TraceEvent{TraceEvent::Kind::kQuery, at, peer, kNoPeer, {}, bits, {}});
}

void Trace::record_terminate(Time at, PeerId peer) {
  push(TraceEvent{TraceEvent::Kind::kTerminate, at, peer, kNoPeer, {}, 0, {}});
}

void Trace::record_note(Time at, PeerId peer, std::string note) {
  push(TraceEvent{TraceEvent::Kind::kNote, at, peer, kNoPeer, {}, 0,
                  std::move(note)});
}

std::size_t Trace::count(TraceEvent::Kind kind) const {
  std::size_t total = 0;
  for (const TraceEvent& ev : events_) total += (ev.kind == kind);
  return total;
}

namespace {

/// Whether `peer` took part in `ev`. A kNoPeer recipient means "no
/// recipient" (queries, crashes, terminations), never a match — so kQuery
/// and kTerminate events involve exactly their acting peer.
bool involves(const TraceEvent& ev, PeerId peer) {
  if (peer == kNoPeer) return false;
  return ev.from == peer || ev.to == peer;
}

}  // namespace

const TraceEvent* Trace::last_event_involving(PeerId peer) const {
  if (peer == kNoPeer) return nullptr;
  const auto it = last_involving_.find(peer);
  return it == last_involving_.end() ? nullptr : &events_[it->second];
}

std::string Trace::render(PeerId only_peer, std::size_t max_lines) const {
  std::ostringstream os;
  std::size_t rendered = 0;
  std::size_t truncated = 0;
  for (const TraceEvent& ev : events_) {
    if (only_peer != kNoPeer && !involves(ev, only_peer)) continue;
    if (rendered < max_lines) {
      os << ev.to_string() << '\n';
      ++rendered;
    } else {
      // Past the line budget only the count of remaining matching events is
      // needed; no more lines are formatted.
      ++truncated;
    }
  }
  if (truncated > 0) os << "... (" << truncated << " more events)\n";
  if (overflow_ > 0) {
    os << "... (" << overflow_ << " events not recorded since t="
       << first_dropped_at_ << ")\n";
  }
  return os.str();
}

void Trace::push(TraceEvent ev) {
  if (events_.size() >= capacity_) {
    if (overflow_ == 0) first_dropped_at_ = ev.at;
    ++overflow_;
    return;
  }
  const std::size_t index = events_.size();
  if (ev.from != kNoPeer) last_involving_[ev.from] = index;
  if (ev.to != kNoPeer) last_involving_[ev.to] = index;
  events_.push_back(std::move(ev));
}

}  // namespace asyncdr::sim
