// Complete asynchronous peer-to-peer network. The adversary owns message
// propagation delays through LatencyPolicy, and can crash peers at any time
// — including between the individual sends of a broadcast, modelling the
// paper's "crashed after sending some but not all messages" case.
//
// Bandwidth model: a message of up to B bits (the paper's message-size
// parameter) is one unit message. A payload of s bits consumes
// ceil(s / B) units; a directed link carries one unit per time unit, so
// units serialize per link. This is what gives transfers of n bits their
// n/B contribution to time complexity, matching the paper's accounting.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "sim/engine.hpp"
#include "sim/message.hpp"
#include "sim/types.hpp"

namespace asyncdr::sim {

/// The scheduling adversary: assigns each message a propagation delay.
/// For complexity-faithful runs the returned value must lie in (0, 1] (the
/// asynchronous time normalization); lower-bound attack policies may exceed
/// 1, in which case the run's reported time complexity is not meaningful.
class LatencyPolicy {
 public:
  virtual ~LatencyPolicy();
  virtual Time propagation(const Message& msg) = 0;
};

/// Always the maximum delay 1 — the default worst-ish-case schedule.
class FixedLatency final : public LatencyPolicy {
 public:
  explicit FixedLatency(Time delay = 1.0);
  Time propagation(const Message& msg) override;

 private:
  Time delay_;
};

/// Anything that can receive delivered messages (peers, monitors).
class Receiver {
 public:
  virtual ~Receiver();
  virtual void deliver(const Message& msg) = 0;
};

/// Observation hooks for metrics/tracing. All methods optional.
class NetworkObserver {
 public:
  virtual ~NetworkObserver();
  virtual void on_send(const Message& msg, std::size_t unit_messages);
  virtual void on_deliver(const Message& msg);
  virtual void on_drop(const Message& msg);
};

/// Beyond-model fault injection (the chaos layer's opt-in stressors).
/// The DR model's adversary already controls latency and crashes; this hook
/// additionally lets a run duplicate deliveries and hold messages past the
/// normalized latency bound — *outside* the paper's model, so runs with a
/// stressor installed measure graceful degradation, not in-model
/// correctness. Delivery copies beyond the first are free for the sender's
/// message-complexity accounting (they are the adversary's forgeries, not
/// the peer's sends).
class DeliveryStressor {
 public:
  virtual ~DeliveryStressor();
  /// How many times to deliver `msg` (>= 1; 1 = normal delivery).
  virtual std::size_t copies(const Message& msg) = 0;
  /// Extra delay (>= 0) added on top of the scheduled arrival of copy
  /// `copy` (0-based; copy 0 is the primary delivery).
  virtual Time extra_delay(const Message& msg, std::size_t copy) = 0;
};

/// The clique network over k peers.
class Network {
 public:
  /// message_size_bits is the paper's B; payloads larger than B are
  /// accounted as multiple unit messages.
  Network(Engine& engine, std::size_t k, std::size_t message_size_bits);

  [[nodiscard]] std::size_t size() const { return k_; }
  [[nodiscard]] std::size_t message_size_bits() const { return message_size_bits_; }
  Engine& engine() { return engine_; }

  /// Registers the receiver for a peer ID. Must be called for every peer
  /// before any traffic flows to it.
  void attach(PeerId id, Receiver* receiver);

  /// Installs the scheduling adversary. Defaults to FixedLatency(1).
  void set_latency_policy(std::unique_ptr<LatencyPolicy> policy);

  /// Metrics/tracing observer (not owned). May be null.
  void set_observer(NetworkObserver* observer);

  /// Installs a beyond-model delivery stressor (duplication, burst holds).
  /// Default: none. Installing one takes the run outside the paper's model;
  /// see DeliveryStressor.
  void set_delivery_stressor(std::unique_ptr<DeliveryStressor> stressor);
  [[nodiscard]] bool has_delivery_stressor() const { return stressor_ != nullptr; }

  /// Adversary hook invoked before each send is processed; it may call
  /// crash(from) to model a peer dying mid-broadcast.
  using PreSendHook = std::function<void(const Message& about_to_send)>;
  void set_pre_send_hook(PreSendHook hook);

  /// Sends payload from -> to. Dropped if the sender is crashed (after the
  /// pre-send hook has run). Delivery is dropped if the receiver has
  /// crashed by arrival time.
  void send(PeerId from, PeerId to, PayloadPtr payload);

  /// Sends payload from every peer except `from` itself, in increasing
  /// recipient-ID order (deterministic, so a mid-broadcast crash cuts a
  /// well-defined prefix).
  void broadcast(PeerId from, PayloadPtr payload);

  /// Marks a peer crashed: it sends and receives nothing from now on.
  void crash(PeerId id);
  [[nodiscard]] bool is_crashed(PeerId id) const;
  [[nodiscard]] std::size_t crashed_count() const;

  /// ceil(size_bits / B), at least 1 — unit messages consumed by a payload.
  [[nodiscard]] std::size_t unit_messages(const Payload& payload) const;

  /// Unit messages sent by `id` so far (crashed-at-send messages excluded).
  [[nodiscard]] std::uint64_t sent_units(PeerId id) const;
  /// Raw payload-level sends by `id` (each send() call that went through).
  [[nodiscard]] std::uint64_t sent_payloads(PeerId id) const;
  [[nodiscard]] std::uint64_t total_deliveries() const { return total_deliveries_; }

  // ---- Stall diagnostics (always on; used by dr::World's stall report) ----

  /// Messages scheduled but not yet delivered/dropped on the directed link
  /// from -> to.
  [[nodiscard]] std::uint32_t in_flight(PeerId from, PeerId to) const;
  /// Sum of in_flight over all links.
  [[nodiscard]] std::uint64_t total_in_flight() const;
  /// Virtual time of the last accepted send by `id`; negative if none.
  [[nodiscard]] Time last_send_at(PeerId id) const;
  /// Virtual time of the last delivery to `id`; negative if none.
  [[nodiscard]] Time last_delivery_at(PeerId id) const;

 private:
  struct LinkState {
    Time next_free = 0;
  };
  LinkState& link(PeerId from, PeerId to);

  Engine& engine_;
  std::size_t k_;
  std::size_t message_size_bits_;
  std::vector<Receiver*> receivers_;
  std::vector<bool> crashed_;
  std::vector<LinkState> links_;  // k*k directed links
  std::vector<std::uint64_t> sent_units_;
  std::vector<std::uint64_t> sent_payloads_;
  std::vector<std::uint32_t> in_flight_;  // k*k directed links
  std::vector<Time> last_send_at_;
  std::vector<Time> last_delivery_at_;
  std::uint64_t total_deliveries_ = 0;
  std::uint64_t next_message_id_ = 0;
  std::unique_ptr<LatencyPolicy> latency_;
  NetworkObserver* observer_ = nullptr;
  std::unique_ptr<DeliveryStressor> stressor_;
  PreSendHook pre_send_hook_;
};

}  // namespace asyncdr::sim
