// Complete asynchronous peer-to-peer network. The adversary owns message
// propagation delays through LatencyPolicy, and can crash peers at any time
// — including between the individual sends of a broadcast, modelling the
// paper's "crashed after sending some but not all messages" case.
//
// Bandwidth model: a message of up to B bits (the paper's message-size
// parameter) is one unit message. A payload of s bits consumes
// ceil(s / B) units; a directed link carries one unit per time unit, so
// units serialize per link. This is what gives transfers of n bits their
// n/B contribution to time complexity, matching the paper's accounting.
//
// Scaling (see DESIGN.md, "Scaling the substrate"): link state defaults to
// lazily-populated per-sender maps (memory O(k + active links), not the
// dense k^2 vectors that cap the substrate at small k), and broadcast
// fan-out is bucketed — recipients sharing an arrival time are delivered by
// ONE scheduled event that interns the shared payload once, instead of k-1
// independent closures each capturing a Message copy. The legacy dense
// layout with per-recipient fan-out is kept behind LinkMode::kDense purely
// as the A/B reference: both modes produce byte-identical traces.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "sim/engine.hpp"
#include "sim/message.hpp"
#include "sim/types.hpp"

namespace asyncdr::sim {

/// The scheduling adversary: assigns each message a propagation delay.
/// For complexity-faithful runs the returned value must lie in (0, 1] (the
/// asynchronous time normalization); lower-bound attack policies may exceed
/// 1, in which case the run's reported time complexity is not meaningful.
class LatencyPolicy {
 public:
  virtual ~LatencyPolicy();
  virtual Time propagation(const Message& msg) = 0;
};

/// Always the maximum delay 1 — the default worst-ish-case schedule.
class FixedLatency final : public LatencyPolicy {
 public:
  explicit FixedLatency(Time delay = 1.0);
  Time propagation(const Message& msg) override;

 private:
  Time delay_;
};

/// Anything that can receive delivered messages (peers, monitors).
class Receiver {
 public:
  virtual ~Receiver();
  virtual void deliver(const Message& msg) = 0;
};

/// Observation hooks for metrics/tracing. All methods optional. Pairing
/// invariant: every message id appears in exactly one on_send, followed by
/// at most one on_deliver or on_drop per scheduled copy — a send the
/// pre-send hook kills never reaches the network and emits nothing.
class NetworkObserver {
 public:
  virtual ~NetworkObserver();
  virtual void on_send(const Message& msg, std::size_t unit_messages);
  virtual void on_deliver(const Message& msg);
  virtual void on_drop(const Message& msg);
};

/// Beyond-model fault injection (the chaos layer's opt-in stressors).
/// The DR model's adversary already controls latency and crashes; this hook
/// additionally lets a run duplicate deliveries and hold messages past the
/// normalized latency bound — *outside* the paper's model, so runs with a
/// stressor installed measure graceful degradation, not in-model
/// correctness. Delivery copies beyond the first are free for the sender's
/// message-complexity accounting (they are the adversary's forgeries, not
/// the peer's sends).
class DeliveryStressor {
 public:
  virtual ~DeliveryStressor();
  /// How many times to deliver `msg` (>= 1; 1 = normal delivery).
  virtual std::size_t copies(const Message& msg) = 0;
  /// Extra delay (>= 0) added on top of the scheduled arrival of copy
  /// `copy` (0-based; copy 0 is the primary delivery).
  virtual Time extra_delay(const Message& msg, std::size_t copy) = 0;
};

/// The clique network over k peers.
class Network {
 public:
  /// Link-state layout + broadcast fan-out strategy. Both modes are
  /// observationally identical (byte-identical traces and reports on the
  /// same inputs); they differ in memory and event count only.
  enum class LinkMode {
    /// Lazily-populated per-sender link maps, bucketed broadcast fan-out.
    /// The default: memory O(k + active links), one scheduled event per
    /// distinct broadcast arrival time.
    kSparse,
    /// Legacy k*k link vectors and one event per broadcast recipient. Kept
    /// as the A/B equivalence reference and for dense-traffic experiments.
    kDense,
  };

  /// message_size_bits is the paper's B; payloads larger than B are
  /// accounted as multiple unit messages.
  Network(Engine& engine, std::size_t k, std::size_t message_size_bits);

  [[nodiscard]] std::size_t size() const { return k_; }
  [[nodiscard]] std::size_t message_size_bits() const { return message_size_bits_; }
  Engine& engine() { return engine_; }

  /// Switches the link-state layout. Must be called before any traffic
  /// (the layouts do not migrate in-flight state).
  void set_link_mode(LinkMode mode);
  [[nodiscard]] LinkMode link_mode() const { return mode_; }

  /// Registers the receiver for a peer ID. Must be called for every peer
  /// before any traffic flows to it.
  void attach(PeerId id, Receiver* receiver);

  /// Installs the scheduling adversary. Defaults to FixedLatency(1).
  void set_latency_policy(std::unique_ptr<LatencyPolicy> policy);

  /// Metrics/tracing observer (not owned). May be null.
  void set_observer(NetworkObserver* observer);

  /// Installs a beyond-model delivery stressor (duplication, burst holds).
  /// Default: none. Installing one takes the run outside the paper's model;
  /// see DeliveryStressor.
  void set_delivery_stressor(std::unique_ptr<DeliveryStressor> stressor);
  [[nodiscard]] bool has_delivery_stressor() const { return stressor_ != nullptr; }

  /// Adversary hook invoked before each send is processed; it may call
  /// crash(from) to model a peer dying mid-broadcast.
  using PreSendHook = std::function<void(const Message& about_to_send)>;
  void set_pre_send_hook(PreSendHook hook);

  /// Sends payload from -> to. Dropped if the sender is crashed (after the
  /// pre-send hook has run). Delivery is dropped if the receiver has
  /// crashed by arrival time.
  void send(PeerId from, PeerId to, PayloadPtr payload);

  /// Sends payload from every peer except `from` itself, in increasing
  /// recipient-ID order (deterministic, so a mid-broadcast crash cuts a
  /// well-defined prefix). In sparse mode recipients sharing an arrival
  /// time are delivered by one bucketed event.
  void broadcast(PeerId from, PayloadPtr payload);

  /// Marks a peer crashed: it sends and receives nothing from now on.
  void crash(PeerId id);
  /// Un-crashes a peer (crash-*recovery* worlds revive restarted peers).
  /// The caller attaches the new incarnation's receiver; messages sent to
  /// the id while it was down stay lost.
  void revive(PeerId id);
  [[nodiscard]] bool is_crashed(PeerId id) const;
  [[nodiscard]] std::size_t crashed_count() const;

  /// ceil(size_bits / B), at least 1 — unit messages consumed by a payload.
  [[nodiscard]] std::size_t unit_messages(const Payload& payload) const;

  /// Unit messages sent by `id` so far (crashed-at-send messages excluded).
  [[nodiscard]] std::uint64_t sent_units(PeerId id) const;
  /// Raw payload-level sends by `id` (each send() call that went through).
  [[nodiscard]] std::uint64_t sent_payloads(PeerId id) const;
  [[nodiscard]] std::uint64_t total_deliveries() const { return total_deliveries_; }

  // ---- Stall diagnostics (always on; used by dr::World's stall report) ----

  /// Messages scheduled but not yet delivered/dropped on the directed link
  /// from -> to. 64-bit: beyond-model replication stressors multiply copies
  /// per link far past what a 32-bit counter assumes.
  [[nodiscard]] std::uint64_t in_flight(PeerId from, PeerId to) const;
  /// Sum of in_flight over all links. O(1): maintained, not recomputed.
  [[nodiscard]] std::uint64_t total_in_flight() const { return total_in_flight_; }
  /// Directed links that have ever carried traffic — the sparse layout's
  /// actual footprint (compare against k*k for the dense equivalent).
  [[nodiscard]] std::size_t active_links() const;
  /// One busy directed link (messages still in flight).
  struct BusyLink {
    PeerId from = kNoPeer;
    PeerId to = kNoPeer;
    std::uint64_t in_flight = 0;
  };
  /// All busy links in (from, to) order — deterministic in both link modes.
  [[nodiscard]] std::vector<BusyLink> busy_links() const;
  /// Virtual time of the last accepted send by `id`; negative if none.
  [[nodiscard]] Time last_send_at(PeerId id) const;
  /// Virtual time of the last delivery to `id`; negative if none.
  [[nodiscard]] Time last_delivery_at(PeerId id) const;

 private:
  struct Link {
    Time next_free = 0;
    std::uint64_t in_flight = 0;
  };

  Link& link(PeerId from, PeerId to);

  /// Runs the pre-send hook; false iff the hook crashed the sender — the
  /// send then never happened: no message id consumed, no observer event.
  bool pass_pre_send(const Message& msg);
  /// Send-side accounting + on_send (the message is now committed).
  void account_send(const Message& msg, std::size_t units);
  /// Reserves link bandwidth and returns the copy-0 arrival time.
  Time reserve_link(const Message& msg, std::size_t units);
  /// Delivery-time half: in-flight bookkeeping, crash check, receiver call.
  void deliver_or_drop(const Message& msg);

  Engine& engine_;
  std::size_t k_;
  std::size_t message_size_bits_;
  LinkMode mode_ = LinkMode::kSparse;
  std::vector<Receiver*> receivers_;
  std::vector<bool> crashed_;
  /// kDense: k*k directed links. Empty in sparse mode.
  std::vector<Link> dense_links_;
  /// kSparse: per-sender maps, populated on a link's first send. Empty in
  /// dense mode.
  std::vector<std::unordered_map<PeerId, Link>> sparse_links_;
  std::vector<std::uint64_t> sent_units_;
  std::vector<std::uint64_t> sent_payloads_;
  std::vector<Time> last_send_at_;
  std::vector<Time> last_delivery_at_;
  std::uint64_t total_in_flight_ = 0;
  std::uint64_t total_deliveries_ = 0;
  std::uint64_t next_message_id_ = 0;
  std::unique_ptr<LatencyPolicy> latency_;
  NetworkObserver* observer_ = nullptr;
  std::unique_ptr<DeliveryStressor> stressor_;
  PreSendHook pre_send_hook_;
};

}  // namespace asyncdr::sim
