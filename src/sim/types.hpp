// Core identifiers shared across the simulation substrate.
#pragma once

#include <cstddef>
#include <cstdint>

namespace asyncdr::sim {

/// Peers carry IDs 0..k-1 (the paper's unique IDs from [k]).
using PeerId = std::size_t;

/// Virtual time. The asynchronous time-complexity convention normalizes the
/// maximum message latency to 1 time unit; latency policies must therefore
/// return propagation delays in (0, 1].
using Time = double;

/// Sentinel for "no peer".
inline constexpr PeerId kNoPeer = static_cast<PeerId>(-1);

}  // namespace asyncdr::sim
