// Execution tracing: an optional observer that records sends, deliveries,
// drops, crashes, queries, and terminations with virtual timestamps. Used
// by tests to assert fine-grained ordering properties, by the trace_viewer
// example for debugging protocol runs, and by anyone adopting the library
// who needs to see *why* a run did what it did.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/engine.hpp"
#include "sim/message.hpp"
#include "sim/network.hpp"
#include "sim/types.hpp"

namespace asyncdr::sim {

/// Sentinel for TraceEvent::msg_id on events that are not tied to a message.
inline constexpr std::uint64_t kNoMessageId = ~std::uint64_t{0};

/// One recorded event.
struct TraceEvent {
  enum class Kind {
    kSend,
    kDeliver,
    kDrop,
    kCrash,
    kQuery,      ///< peer queried the source (bits in `detail_a`)
    kTerminate,  ///< peer finished
    kNote,       ///< free-form protocol annotation
    kStart,      ///< peer's on_start fired (a causal root)
  };

  Kind kind = Kind::kNote;
  Time at = 0;
  PeerId from = kNoPeer;
  PeerId to = kNoPeer;
  std::string payload_type;
  std::uint64_t detail_a = 0;  ///< payload bits / queried bits / unit msgs
  std::string note;
  /// Network message id for send/deliver/drop events; ties a delivery back
  /// to its causal parent send. kNoMessageId on every other kind.
  std::uint64_t msg_id = kNoMessageId;

  [[nodiscard]] std::string to_string() const;
};

/// Bounded in-memory event log; recording stops past the cap (the overflow
/// count tells how much was missed).
class Trace final : public NetworkObserver {
 public:
  /// `engine` supplies delivery timestamps; not owned, must outlive.
  explicit Trace(const Engine& engine, std::size_t capacity = 1 << 20);

  // NetworkObserver hooks.
  void on_send(const Message& msg, std::size_t unit_messages) override;
  void on_deliver(const Message& msg) override;
  void on_drop(const Message& msg) override;

  /// Manual hooks (wired by dr::World when tracing is enabled).
  void record_start(Time at, PeerId peer);
  void record_crash(Time at, PeerId peer);
  void record_query(Time at, PeerId peer, std::uint64_t bits);
  void record_terminate(Time at, PeerId peer);
  void record_note(Time at, PeerId peer, std::string note);

  [[nodiscard]] std::size_t size() const { return events_.size(); }
  [[nodiscard]] std::size_t dropped_events() const { return overflow_; }
  /// Virtual time of the first event the capacity cap dropped, or a negative
  /// value if nothing overflowed. Stall diagnostics use this to say *when*
  /// trace visibility ended, not just that it did.
  [[nodiscard]] Time first_dropped_at() const { return first_dropped_at_; }
  [[nodiscard]] const std::vector<TraceEvent>& events() const { return events_; }

  /// Events satisfying a predicate (copied; traces are diagnostics).
  template <typename Pred>
  [[nodiscard]] std::vector<TraceEvent> filter(Pred&& pred) const {
    std::vector<TraceEvent> out;
    out.reserve(events_.size());
    for (const TraceEvent& ev : events_) {
      if (pred(ev)) out.push_back(ev);
    }
    return out;
  }

  /// Number of events of one kind.
  [[nodiscard]] std::size_t count(TraceEvent::Kind kind) const;

  /// The most recent recorded event a peer took part in (as sender or
  /// recipient), or nullptr if it never appears. Stall diagnostics use this
  /// to say what a stuck peer last did. Events with no recipient (queries,
  /// crashes, terminations carry `to == kNoPeer`) match on the actor only;
  /// passing kNoPeer matches nothing. O(1): served from a per-peer index
  /// maintained on push, not a scan of the log.
  [[nodiscard]] const TraceEvent* last_event_involving(PeerId peer) const;

  /// Renders the (optionally peer-filtered) timeline, one event per line.
  [[nodiscard]] std::string render(PeerId only_peer = kNoPeer,
                     std::size_t max_lines = 200) const;

 private:
  void push(TraceEvent ev);

  const Engine& engine_;
  std::size_t capacity_;
  std::size_t overflow_ = 0;
  Time first_dropped_at_ = -1;
  std::vector<TraceEvent> events_;
  /// Index of the latest event each peer took part in; events_ never shrinks
  /// so the indices stay valid for the trace's lifetime.
  std::unordered_map<PeerId, std::size_t> last_involving_;
};

}  // namespace asyncdr::sim
