// asyncdr-lint: disable-file(DR001) throughput/ETA are wall-clock
// quantities by definition; the progress line is operator telemetry and
// never feeds back into any world or deterministic artifact.
// asyncdr-lint: disable-file(DR004) rendering a stderr status line is this
// file's whole job.
#include "campaign/progress.hpp"

#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <mutex>

namespace asyncdr::campaign {

namespace {
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point from) {
  return std::chrono::duration<double>(Clock::now() - from).count();
}
}  // namespace

struct Progress::Impl {
  std::string name;
  std::size_t total = 0;
  bool enabled = false;
  bool tty = false;

  std::mutex mu;
  std::size_t done = 0;
  std::size_t failed = 0;
  bool have_worst = false;
  std::uint64_t worst_seed = 0;
  std::size_t worst_q = 0;
  bool worst_failed = false;
  Clock::time_point start = Clock::now();
  Clock::time_point last_draw;
  std::size_t next_plain_marker = 0;
  bool line_live = false;
  bool finished = false;

  void draw_locked(bool force) {
    if (!enabled) return;
    const double elapsed = seconds_since(start);
    const double rate = elapsed > 0 ? static_cast<double>(done) / elapsed : 0;
    const double eta =
        rate > 0 ? static_cast<double>(total - done) / rate : 0;
    char worst[64] = "-";
    if (have_worst) {
      std::snprintf(worst, sizeof worst, "seed %llu Q=%zu%s",
                    static_cast<unsigned long long>(worst_seed), worst_q,
                    worst_failed ? " FAIL" : "");
    }
    if (tty) {
      // Throttle redraws: a sweep of sub-millisecond worlds would otherwise
      // spend its time repainting the terminal.
      if (!force && seconds_since(last_draw) < 0.05 && done < total) return;
      last_draw = Clock::now();
      std::fprintf(stderr,
                   "\r[%s] %zu/%zu (%3.0f%%) | %.1f runs/s eta %.0fs | "
                   "fail %zu | worst %s\x1b[K",
                   name.c_str(), done, total,
                   total ? 100.0 * static_cast<double>(done) /
                               static_cast<double>(total)
                         : 100.0,
                   rate, eta, failed, worst);
      line_live = true;
    } else {
      // Piped stderr: one plain line per ~10% of the campaign.
      if (!force && done < next_plain_marker) return;
      next_plain_marker = done + (total > 10 ? total / 10 : 1);
      std::fprintf(stderr,
                   "[%s] %zu/%zu | %.1f runs/s | fail %zu | worst %s\n",
                   name.c_str(), done, total, rate, failed, worst);
    }
  }
};

Progress::Progress(std::string name, std::size_t total, bool enabled)
    : impl_(std::make_unique<Impl>()) {
  impl_->name = std::move(name);
  impl_->total = total;
  impl_->enabled = enabled;
  impl_->tty = enabled && isatty(fileno(stderr)) != 0;
}

Progress::~Progress() { finish(); }

void Progress::on_run_done(std::uint64_t seed, bool failed, std::size_t q) {
  if (!impl_->enabled) return;
  std::lock_guard<std::mutex> lock(impl_->mu);
  ++impl_->done;
  if (failed) ++impl_->failed;
  // Failures always outrank clean runs; among equals the larger Q wins.
  const bool worse =
      !impl_->have_worst ||
      (failed && !impl_->worst_failed) ||
      (failed == impl_->worst_failed && q > impl_->worst_q);
  if (worse) {
    impl_->have_worst = true;
    impl_->worst_seed = seed;
    impl_->worst_q = q;
    impl_->worst_failed = failed;
  }
  impl_->draw_locked(false);
}

void Progress::finish() {
  if (!impl_->enabled) return;
  std::lock_guard<std::mutex> lock(impl_->mu);
  if (impl_->finished) return;
  impl_->finished = true;
  impl_->draw_locked(true);
  if (impl_->line_live) std::fputc('\n', stderr);
}

}  // namespace asyncdr::campaign
