// asyncdr-lint: disable-file(DR001) the event stream timestamps telemetry
// with real (monotonic) wall time by design; nothing inside a dr::World
// reads it, and the deterministic campaign artifact (the summary JSON)
// carries no wall-clock fields.
// asyncdr-lint: disable-file(DR011) the JSONL stream is an observability
// artifact written outside any world — the exact analogue of the bench/CLI
// report writers the rule exempts, not model-state persistence.
#include "campaign/events.hpp"

#include <chrono>
#include <cstdio>
#include <fstream>
#include <mutex>

namespace asyncdr::campaign {

struct EventStream::Impl {
  std::mutex mu;
  std::ofstream out;
  std::uint64_t seq = 0;
  std::chrono::steady_clock::time_point t0;
};

EventStream::EventStream() : impl_(std::make_unique<Impl>()) {}
EventStream::~EventStream() = default;

std::unique_ptr<EventStream> EventStream::open(const std::string& path) {
  std::unique_ptr<EventStream> stream(new EventStream());
  stream->impl_->out.open(path, std::ios::binary | std::ios::trunc);
  if (!stream->impl_->out) {
    // asyncdr-lint: allow(DR004) operator-facing warning; the campaign
    // itself proceeds without the stream.
    std::fprintf(stderr, "warning: cannot open campaign event stream %s\n",
                 path.c_str());
    return nullptr;
  }
  stream->impl_->t0 = std::chrono::steady_clock::now();
  return stream;
}

void EventStream::emit(const char* kind, const obs::Json& fields) {
  Impl& impl = *impl_;
  std::lock_guard<std::mutex> lock(impl.mu);
  // seq and ts are taken under the same lock that serializes the write, so
  // both are monotone in file order (steady_clock never goes backwards).
  const double ts_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - impl.t0)
          .count();
  obs::Json line = obs::Json::object();
  line["ev"] = kind;
  line["seq"] = impl.seq;
  line["ts_ms"] = ts_ms;
  if (fields.is_object()) {
    for (const auto& [key, value] : fields.members()) {
      line[key] = value;
    }
  }
  impl.out << line.dump() << '\n';
  impl.out.flush();
  ++impl.seq;
}

std::uint64_t EventStream::emitted() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  return impl_->seq;
}

}  // namespace asyncdr::campaign
