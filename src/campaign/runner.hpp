// The reusable multi-world campaign substrate: one work-stealing scheduler
// that fans a grid of independent runs (chaos cases, bench grid points,
// seed sweeps) across a worker pool and makes the whole fleet observable —
// a streaming JSONL event log, a live TTY progress line, and a
// deterministic summary JSON aggregated by obs::CampaignCollector.
//
// Scheduling model: runs are claimed from a shared atomic cursor (idle
// workers steal the next undone index, so a straggler world never convoys
// the pool), every dr::World is built inside its own run and shared with
// nothing (DR012 lints this), and per-run seeds are a pure function of the
// run index. Results land at their grid index and per-worker collector
// shards merge order-independently, so everything the campaign *returns* —
// the RunRecord vector and the summary JSON — is byte-identical regardless
// of thread count or interleaving. Only the live telemetry (event order in
// the stream, the progress line) reflects real scheduling.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "campaign/events.hpp"
#include "dr/world.hpp"
#include "obs/campaign.hpp"

namespace asyncdr::campaign {

/// Observability opt-ins, shared by every campaign front-end (chaos CLI,
/// benches) so the flags mean the same thing everywhere.
struct TelemetryOptions {
  bool progress = false;        ///< live stderr progress line
  std::string events_path;      ///< JSONL event stream; empty = off
  std::string summary_path;     ///< summary JSON; empty = off
  /// Include the machine-dependent timing section (wall ms, RSS MB) in the
  /// summary. Off by default: the default summary is byte-deterministic.
  bool include_timing = false;
};

struct CampaignOptions {
  std::string name = "campaign";
  std::size_t total = 0;    ///< grid size; must be > 0
  /// 0 = auto (ASYNCDR_THREADS env override, else clamped hardware
  /// concurrency — common/threads semantics, same as the chaos runner).
  std::size_t threads = 0;
  std::uint64_t seed_base = 1;
  /// Per-run seed derivation; default seed_base + index. Must be a pure
  /// function of the index (the determinism contract hangs on it).
  std::function<std::uint64_t(std::size_t)> seed_fn;
  TelemetryOptions telemetry;
};

/// What one run reports back to the substrate.
struct RunOutcome {
  obs::RunStatus status = obs::RunStatus::kOk;
  std::string label;   ///< grouping key (protocol, bench series, ...)
  std::string detail;  ///< violation text; empty unless kFailed
  dr::RunReport report;
};

/// One completed run as the campaign recorded it.
struct RunRecord {
  std::size_t index = 0;
  std::uint64_t seed = 0;
  RunOutcome outcome;
  double wall_ms = 0;  ///< machine-dependent diagnostic
};

class Campaign {
 public:
  explicit Campaign(CampaignOptions options);
  /// Finishes (event + summary flush) if the caller did not.
  ~Campaign();

  Campaign(const Campaign&) = delete;
  Campaign& operator=(const Campaign&) = delete;

  /// One run: build a world from (index, seed), run it, report. The job is
  /// called concurrently from pool workers and must not share mutable state
  /// across invocations.
  using Job = std::function<RunOutcome(std::size_t index, std::uint64_t seed)>;

  /// Runs the whole grid; blocks until every run completed. Returns the
  /// records in grid order. Call once.
  std::vector<RunRecord> run(const Job& job);

  /// Aggregated view (valid after run()).
  [[nodiscard]] const obs::CampaignCollector& collector() const {
    return collector_;
  }

  /// The event stream, for post-run emissions (shrink steps, repro lines)
  /// that belong to the campaign's log. Null when telemetry is off.
  [[nodiscard]] EventStream* events() { return events_.get(); }

  /// The deterministic summary document (plus the timing section when
  /// opted in): schema asyncdr-campaign-v1.
  [[nodiscard]] obs::Json summary() const;
  /// summary().dump(1) + '\n' — the exact bytes the golden test pins.
  [[nodiscard]] std::string summary_string() const;

  /// Emits campaign_finished and writes the summary file. Idempotent;
  /// called by the destructor if needed.
  void finish();

  /// Peak-RSS reading (VmHWM, MB) used for the timing section; 0 when
  /// unavailable. Exposed for tests.
  [[nodiscard]] static double peak_rss_mb();

 private:
  CampaignOptions options_;
  std::unique_ptr<EventStream> events_;
  obs::CampaignCollector collector_;
  double wall_ms_total_ = 0;
  bool ran_ = false;
  bool finished_ = false;
};

}  // namespace asyncdr::campaign
