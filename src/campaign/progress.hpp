// Live TTY progress line for campaign runs: runs done/total, throughput,
// ETA, failure count, and the worst seed seen so far (highest Q, failures
// first). Rendered to stderr behind an explicit opt-in (--progress) so
// machine-consumed stdout stays clean; on a real TTY it is a throttled
// \r-rewritten line, on a pipe it degrades to occasional plain lines.
//
// Progress is ephemeral operator feedback — it reflects real completion
// order and real time, and is deliberately outside the campaign's
// determinism contract.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

namespace asyncdr::campaign {

class Progress {
 public:
  /// `enabled` false produces an inert object (every call a no-op), so
  /// callers never need to branch.
  Progress(std::string name, std::size_t total, bool enabled);
  ~Progress();

  Progress(const Progress&) = delete;
  Progress& operator=(const Progress&) = delete;

  /// Records one finished run and maybe redraws. Thread-safe.
  void on_run_done(std::uint64_t seed, bool failed, std::size_t q);

  /// Clears the live line and prints one final plain summary line.
  void finish();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace asyncdr::campaign
