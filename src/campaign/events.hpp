// Append-only JSONL campaign event stream, safe for concurrent writers.
// Every emitted line is one JSON object carrying the event kind, a
// contiguous sequence number, and a monotonic timestamp; seq assignment,
// timestamping and the write happen under one lock, so lines never
// interleave and (seq, ts_ms) are both monotone over the file — the
// invariants tools/check_campaign.py validates in CI.
//
// The stream is observability output, not part of the campaign's
// determinism contract: with multiple workers the run-event order reflects
// real scheduling (that is the point of a live stream). The deterministic
// artifact is the summary JSON the collector produces.
#pragma once

#include <cstdint>
#include <memory>

#include "obs/json.hpp"

namespace asyncdr::campaign {

class EventStream {
 public:
  ~EventStream();

  EventStream(const EventStream&) = delete;
  EventStream& operator=(const EventStream&) = delete;

  /// Opens (truncates) `path`. Returns null and warns on stderr if the file
  /// cannot be created — telemetry must never sink a campaign.
  [[nodiscard]] static std::unique_ptr<EventStream> open(
      const std::string& path);

  /// Appends one event line: {"ev": kind, "seq": n, "ts_ms": t, ...fields}.
  /// `fields` must be a JSON object (or null for field-less events).
  /// Thread-safe; each line is flushed so a crashed campaign leaves a
  /// readable prefix.
  void emit(const char* kind, const obs::Json& fields);

  /// Events emitted so far.
  [[nodiscard]] std::uint64_t emitted() const;

 private:
  EventStream();

  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace asyncdr::campaign
