// asyncdr-lint: disable-file(DR001) the campaign runner measures per-run
// wall time and throughput — operator telemetry quarantined in the event
// stream and the opt-in timing section. No world, protocol, or
// deterministic summary field reads these clocks.
// asyncdr-lint: disable-file(DR011) the summary JSON is an observability
// artifact written after every world has finished — the campaign-level
// analogue of the bench/CLI report writers the rule exempts.
#include "campaign/runner.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "campaign/progress.hpp"
#include "common/check.hpp"
#include "common/threads.hpp"

namespace asyncdr::campaign {

namespace {
using Clock = std::chrono::steady_clock;
}  // namespace

Campaign::Campaign(CampaignOptions options) : options_(std::move(options)) {
  ASYNCDR_EXPECTS_MSG(options_.total > 0, "CampaignOptions::total must be > 0");
  if (!options_.seed_fn) {
    const std::uint64_t base = options_.seed_base;
    options_.seed_fn = [base](std::size_t i) {
      return base + static_cast<std::uint64_t>(i);
    };
  }
  if (!options_.telemetry.events_path.empty()) {
    events_ = EventStream::open(options_.telemetry.events_path);
  }
}

Campaign::~Campaign() { finish(); }

double Campaign::peak_rss_mb() {
  std::ifstream f("/proc/self/status");
  std::string line;
  while (std::getline(f, line)) {
    if (line.rfind("VmHWM:", 0) == 0) {
      return std::strtod(line.c_str() + 6, nullptr) / 1024.0;  // kB -> MB
    }
  }
  return 0;
}

std::vector<RunRecord> Campaign::run(const Job& job) {
  ASYNCDR_EXPECTS_MSG(!ran_, "Campaign::run may only be called once");
  ran_ = true;

  const std::size_t total = options_.total;
  if (events_) {
    obs::Json fields = obs::Json::object();
    fields["campaign"] = options_.name;
    fields["total"] = static_cast<std::uint64_t>(total);
    fields["seed_base"] = options_.seed_base;
    events_->emit("campaign_started", fields);
  }
  Progress progress(options_.name, total, options_.telemetry.progress);

  const std::size_t threads =
      std::min(resolve_threads(options_.threads), total);
  std::vector<RunRecord> records(total);
  // One collector shard per worker: workers never contend, and the final
  // merge is order-independent, so the aggregate cannot depend on which
  // worker stole which run.
  std::vector<obs::CampaignCollector> shards(threads);

  std::atomic<std::size_t> cursor{0};
  const auto worker = [&](std::size_t shard) {
    obs::CampaignCollector& collector = shards[shard];
    for (std::size_t i = cursor.fetch_add(1); i < total;
         i = cursor.fetch_add(1)) {
      const std::uint64_t seed = options_.seed_fn(i);
      if (events_) {
        obs::Json fields = obs::Json::object();
        fields["run"] = static_cast<std::uint64_t>(i);
        fields["seed"] = seed;
        events_->emit("run_started", fields);
      }
      const Clock::time_point start = Clock::now();
      RunRecord rec;
      rec.index = i;
      rec.seed = seed;
      rec.outcome = job(i, seed);
      rec.wall_ms =
          std::chrono::duration<double, std::milli>(Clock::now() - start)
              .count();

      const bool failed = rec.outcome.status == obs::RunStatus::kFailed;
      collector.add_run(i, seed, rec.outcome.label, rec.outcome.status,
                        rec.outcome.detail, rec.outcome.report);
      collector.add_timing(rec.wall_ms, peak_rss_mb());
      if (events_) {
        obs::Json fields = obs::Json::object();
        fields["run"] = static_cast<std::uint64_t>(i);
        fields["seed"] = seed;
        fields["label"] = rec.outcome.label;
        fields["status"] = obs::run_status_name(rec.outcome.status);
        fields["q"] =
            static_cast<std::uint64_t>(rec.outcome.report.query_complexity);
        fields["t"] = rec.outcome.report.time_complexity;
        fields["m"] =
            static_cast<std::uint64_t>(rec.outcome.report.message_complexity);
        fields["wall_ms"] = rec.wall_ms;
        if (failed) fields["detail"] = rec.outcome.detail;
        events_->emit(failed ? "run_failed" : "run_finished", fields);
      }
      progress.on_run_done(seed, failed,
                           rec.outcome.report.query_complexity);
      records[i] = std::move(rec);
    }
  };

  if (threads <= 1) {
    worker(0);
  } else {
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (std::size_t w = 0; w < threads; ++w) pool.emplace_back(worker, w);
    for (std::thread& t : pool) t.join();
  }

  for (const obs::CampaignCollector& shard : shards) collector_.merge(shard);
  for (const RunRecord& rec : records) wall_ms_total_ += rec.wall_ms;
  progress.finish();
  return records;
}

obs::Json Campaign::summary() const {
  obs::Json j = obs::Json::object();
  j["schema"] = "asyncdr-campaign-v1";
  j["campaign"] = options_.name;
  j["total"] = static_cast<std::uint64_t>(options_.total);
  j["seed_base"] = options_.seed_base;
  const obs::Json agg = collector_.summary_json();
  for (const auto& [key, value] : agg.members()) {
    j[key] = value;
  }
  if (options_.telemetry.include_timing) {
    obs::Json timing = collector_.timing_json();
    timing["wall_ms_total"] = wall_ms_total_;
    timing["rss_mb_final"] = peak_rss_mb();
    j["timing"] = timing;
  }
  return j;
}

std::string Campaign::summary_string() const {
  std::string out = summary().dump(1);
  out.push_back('\n');
  return out;
}

void Campaign::finish() {
  if (!ran_ || finished_) return;
  finished_ = true;
  if (events_) {
    obs::Json fields = obs::Json::object();
    fields["campaign"] = options_.name;
    fields["total"] = static_cast<std::uint64_t>(options_.total);
    fields["ok"] = static_cast<std::uint64_t>(collector_.ok());
    fields["failed"] = static_cast<std::uint64_t>(collector_.failed());
    fields["degraded"] = static_cast<std::uint64_t>(collector_.degraded());
    events_->emit("campaign_finished", fields);
  }
  if (!options_.telemetry.summary_path.empty()) {
    std::ofstream out(options_.telemetry.summary_path,
                      std::ios::binary | std::ios::trunc);
    if (out) {
      out << summary_string();
    } else {
      // asyncdr-lint: allow(DR004) operator-facing warning; the campaign
      // result is still available in-process.
      std::fprintf(stderr, "warning: cannot write campaign summary %s\n",
                   options_.telemetry.summary_path.c_str());
    }
  }
}

}  // namespace asyncdr::campaign
