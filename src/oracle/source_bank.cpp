#include "oracle/source_bank.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "common/rng.hpp"

namespace asyncdr::oracle {

SourceBank::SourceBank(Spec spec, std::vector<ValueSource> sources,
                       std::vector<bool> byzantine)
    : spec_(spec), sources_(std::move(sources)), byzantine_(std::move(byzantine)) {}

SourceBank SourceBank::build(const Spec& spec) {
  ASYNCDR_EXPECTS(spec.sources >= 1);
  ASYNCDR_EXPECTS(spec.psi >= 0.0 && spec.psi < 0.5);
  Rng rng(spec.seed);
  const std::int64_t max_value = (std::int64_t{1} << spec.value_bits) - 1;

  // Ground truth per cell, kept away from the boundaries so honest jitter
  // stays representable.
  std::vector<std::int64_t> truth(spec.cells);
  for (auto& v : truth) {
    v = rng.range(spec.noise, std::max<std::int64_t>(spec.noise + 1,
                                                     max_value - spec.noise));
  }

  const auto byz_count =
      static_cast<std::size_t>(spec.psi * static_cast<double>(spec.sources));
  std::vector<bool> byzantine(spec.sources, false);
  for (std::size_t i : rng.sample_without_replacement(spec.sources, byz_count)) {
    byzantine[i] = true;
  }

  std::vector<ValueSource> sources;
  sources.reserve(spec.sources);
  for (std::size_t i = 0; i < spec.sources; ++i) {
    std::vector<std::int64_t> cells(spec.cells);
    for (std::size_t c = 0; c < spec.cells; ++c) {
      if (byzantine[i]) {
        // Adversarial but static: extreme values, alternating ends.
        cells[c] = rng.flip() ? 0 : max_value;
      } else {
        cells[c] = std::clamp<std::int64_t>(
            truth[c] + rng.range(-spec.noise, spec.noise), 0, max_value);
      }
    }
    sources.emplace_back(std::move(cells), spec.value_bits);
  }
  return SourceBank(spec, std::move(sources), std::move(byzantine));
}

std::size_t SourceBank::byzantine_count() const {
  return static_cast<std::size_t>(
      std::count(byzantine_.begin(), byzantine_.end(), true));
}

const ValueSource& SourceBank::source(std::size_t i) const {
  ASYNCDR_EXPECTS(i < sources_.size());
  return sources_[i];
}

bool SourceBank::is_byzantine(std::size_t i) const {
  ASYNCDR_EXPECTS(i < byzantine_.size());
  return byzantine_[i];
}

std::pair<std::int64_t, std::int64_t> SourceBank::honest_range(
    std::size_t cell) const {
  std::int64_t lo = 0;
  std::int64_t hi = 0;
  bool first = true;
  for (std::size_t i = 0; i < sources_.size(); ++i) {
    if (byzantine_[i]) continue;
    const std::int64_t v = sources_[i].read(cell);
    if (first) {
      lo = hi = v;
      first = false;
    } else {
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
  }
  ASYNCDR_EXPECTS_MSG(!first, "bank has no honest sources");
  return {lo, hi};
}

bool SourceBank::in_honest_range(std::size_t cell, std::int64_t value) const {
  const auto [lo, hi] = honest_range(cell);
  return value >= lo && value <= hi;
}

}  // namespace asyncdr::oracle
