#include "oracle/odc.hpp"

#include <algorithm>
#include <unordered_set>

#include "common/check.hpp"
#include "common/stats.hpp"

namespace asyncdr::oracle {

namespace {

/// Verifies the ODD predicate over every published value of honest nodes.
void check_odd(const SourceBank& bank, OdcResult& result) {
  for (const auto& node_values : result.published) {
    for (std::size_t c = 0; c < node_values.size(); ++c) {
      if (!bank.in_honest_range(c, node_values[c])) {
        result.odd_satisfied = false;
        return;
      }
    }
  }
}

}  // namespace

OdcResult run_naive_odc(const SourceBank& bank, std::size_t nodes) {
  ASYNCDR_EXPECTS(nodes >= 1);
  const std::size_t m = bank.count();
  const std::size_t cells = bank.spec().cells;
  const auto byz_budget = static_cast<std::size_t>(
      bank.spec().psi * static_cast<double>(m));
  const std::size_t sample = std::min(m, 2 * byz_budget + 1);

  OdcResult result;
  result.published.resize(nodes);
  for (std::size_t node = 0; node < nodes; ++node) {
    // Arbitrary sample; rotate per node so the load is spread.
    std::vector<std::size_t> picked(sample);
    for (std::size_t i = 0; i < sample; ++i) picked[i] = (node + i) % m;

    std::uint64_t node_bits = 0;
    result.published[node].resize(cells);
    for (std::size_t c = 0; c < cells; ++c) {
      std::vector<std::int64_t> readings;
      readings.reserve(sample);
      for (std::size_t src : picked) {
        readings.push_back(bank.source(src).read(c));
        node_bits += bank.source(src).value_bits();
      }
      result.published[node][c] = median_of(std::move(readings));
    }
    result.max_node_query_bits = std::max(result.max_node_query_bits, node_bits);
    result.total_query_bits += node_bits;
  }
  check_odd(bank, result);
  return result;
}

OdcResult run_download_odc(const SourceBank& bank,
                           const DownloadOdcOptions& options) {
  ASYNCDR_EXPECTS(options.honest != nullptr);
  const std::size_t m = bank.count();
  const std::size_t cells = bank.spec().cells;
  const std::size_t k = options.node_cfg.k;
  const std::unordered_set<sim::PeerId> byz(options.byz_nodes.begin(),
                                            options.byz_nodes.end());

  // downloaded[node][source] = the bit array node retrieved for the source.
  std::vector<std::vector<BitVec>> downloaded(k, std::vector<BitVec>(m));
  std::vector<std::uint64_t> node_bits(k, 0);

  OdcResult result;
  for (std::size_t src = 0; src < m; ++src) {
    proto::Scenario scenario;
    scenario.cfg = options.node_cfg;
    scenario.cfg.n = bank.source(src).total_bits();
    scenario.cfg.seed = options.node_cfg.seed + 7919 * (src + 1);
    scenario.input = bank.source(src).bits();
    scenario.honest = options.honest;
    scenario.byzantine = options.byzantine;
    scenario.byz_ids = options.byz_nodes;

    const dr::RunReport report = proto::run_scenario(scenario);
    if (!report.ok()) ++result.download_failures;
    result.message_complexity += report.message_complexity;
    for (sim::PeerId node = 0; node < k; ++node) {
      if (byz.contains(node)) continue;
      node_bits[node] += report.per_peer_queries[node];
      downloaded[node][src] = report.outputs[node];
    }
  }

  // Aggregate: per honest node, per cell, the median over all m sources.
  for (sim::PeerId node = 0; node < k; ++node) {
    if (byz.contains(node)) continue;
    std::vector<std::int64_t> values(cells);
    for (std::size_t c = 0; c < cells; ++c) {
      std::vector<std::int64_t> readings;
      readings.reserve(m);
      for (std::size_t src = 0; src < m; ++src) {
        if (downloaded[node][src].size() != bank.source(src).total_bits()) {
          continue;  // failed download for this node/source
        }
        readings.push_back(bank.source(src).decode(downloaded[node][src], c));
      }
      ASYNCDR_EXPECTS_MSG(!readings.empty(),
                          "node downloaded nothing for a cell");
      values[c] = median_of(std::move(readings));
    }
    result.published.push_back(std::move(values));
    result.max_node_query_bits =
        std::max(result.max_node_query_bits, node_bits[node]);
    result.total_query_bits += node_bits[node];
  }
  check_odd(bank, result);
  return result;
}

}  // namespace asyncdr::oracle
