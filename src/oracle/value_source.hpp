// Numeric data sources for the blockchain-oracle application (§4): a source
// stores V cells of w-bit values (stock prices, weather readings, ...). The
// DR-model Download protocols operate on the source's bit-level encoding.
#pragma once

#include <cstdint>
#include <vector>

#include "common/bitvec.hpp"

namespace asyncdr::oracle {

/// One external data source holding `cells` values of `value_bits` bits.
/// Values are immutable for the run — the paper's static-data assumption
/// (dynamic data is its stated open problem).
class ValueSource {
 public:
  ValueSource(std::vector<std::int64_t> cells, std::size_t value_bits);

  [[nodiscard]] std::size_t cells() const { return cells_.size(); }
  [[nodiscard]] std::size_t value_bits() const { return value_bits_; }
  /// Total bit-length of the encoded array (= cells * value_bits).
  [[nodiscard]] std::size_t total_bits() const { return bits_.size(); }

  /// Whole-cell read, as the naive ODC performs it.
  [[nodiscard]] std::int64_t read(std::size_t cell) const;

  /// The array's bit encoding (cell-major, LSB-first within a cell) — what
  /// a Download protocol instance retrieves.
  [[nodiscard]] const BitVec& bits() const { return bits_; }

  /// Decodes cell `cell` out of an arbitrary downloaded bit array with this
  /// source's geometry.
  [[nodiscard]] std::int64_t decode(const BitVec& downloaded, std::size_t cell) const;

 private:
  std::vector<std::int64_t> cells_;
  std::size_t value_bits_;
  BitVec bits_;
};

}  // namespace asyncdr::oracle
