// The Oracle Data Collection step (§4), both ways:
//
//   Naive ODC (Theorem 4.1): every oracle node independently reads
//     2*psi*m + 1 full sources and medians cell-wise. Per-node cost
//     (2 psi m + 1) * V * w bits.
//
//   Download-based ODC (Theorem 4.2): for every source, the k nodes run a
//     Download protocol over its bit encoding, then median cell-wise over
//     ALL m sources. Per-node cost m * Q_download(V*w) — a ~(1-2 beta) k
//     factor cheaper.
//
// Both must satisfy ODD: every published cell value lies within the honest
// sources' range for that cell.
#pragma once

#include <cstdint>
#include <vector>

#include "dr/config.hpp"
#include "oracle/source_bank.hpp"
#include "protocols/runner.hpp"

namespace asyncdr::oracle {

/// Outcome of one ODC experiment.
struct OdcResult {
  /// published[node][cell]: the value node would push on-chain.
  std::vector<std::vector<std::int64_t>> published;

  std::uint64_t max_node_query_bits = 0;  ///< the per-node cost (§4 metric)
  std::uint64_t total_query_bits = 0;
  std::uint64_t message_complexity = 0;   ///< unit messages (0 for naive)
  std::size_t download_failures = 0;      ///< failed Download runs
  bool odd_satisfied = true;              ///< honest-range check

  [[nodiscard]] bool ok() const { return odd_satisfied && download_failures == 0; }
};

/// Theorem 4.1 baseline. `nodes` oracle nodes, each sampling a rotated
/// window of 2*floor(psi*m)+1 sources.
OdcResult run_naive_odc(const SourceBank& bank, std::size_t nodes);

/// Theorem 4.2 construction.
struct DownloadOdcOptions {
  /// Oracle-node network: k nodes, beta Byzantine-node fraction, B, seed.
  /// cfg.n is overwritten per source.
  dr::Config node_cfg;
  proto::PeerFactory honest;              ///< Download protocol to run
  proto::PeerFactory byzantine;           ///< required iff byz_nodes set
  std::vector<sim::PeerId> byz_nodes;     ///< Byzantine oracle nodes
};

OdcResult run_download_odc(const SourceBank& bank,
                           const DownloadOdcOptions& options);

}  // namespace asyncdr::oracle
