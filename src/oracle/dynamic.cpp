#include "oracle/dynamic.hpp"

#include <set>

#include "common/check.hpp"
#include "common/rng.hpp"

namespace asyncdr::oracle {

DynamicRunResult run_dynamic_download(const dr::Config& cfg,
                                      const proto::PeerFactory& honest,
                                      const std::vector<Mutation>& mutations,
                                      sim::Time stagger,
                                      std::size_t partial_crashes) {
  ASYNCDR_EXPECTS(honest != nullptr);
  const BitVec initial = proto::random_input(cfg.n, cfg.seed);
  dr::World world(cfg, initial);
  Rng starts = Rng(cfg.seed).split(0x57a6ull);
  for (sim::PeerId id = 0; id < cfg.k; ++id) {
    world.set_peer(id, honest(cfg, id));
    if (stagger > 0) world.set_start_time(id, starts.uniform(0.0, stagger));
  }
  if (partial_crashes > 0) {
    Rng crash_rng = Rng(cfg.seed).split(0xc4a5ull);
    // Victims die after answering only some stage-1 requests (their first
    // k-1 sends are their own request broadcast), so part of the network
    // holds their old-era values while the rest re-queries later.
    adv::CrashPlan::partial_broadcast(cfg, crash_rng, partial_crashes,
                                      cfg.k - 1 + cfg.k / 2)
        .apply(world);
  }

  BitVec final_data = initial;
  for (const Mutation& m : mutations) {
    ASYNCDR_EXPECTS(m.bit < cfg.n);
    final_data.flip(m.bit);
  }
  // Apply mutations live: flip the source's array at the scheduled instants.
  for (const Mutation& m : mutations) {
    world.engine().schedule_at(m.at, [&world, bit = m.bit] {
      BitVec data = world.source().data();
      data.flip(bit);
      world.source().set_data(std::move(data));
    });
  }

  const dr::RunReport report = world.run();

  DynamicRunResult result;
  result.all_terminated = report.all_terminated;
  std::set<std::string> distinct;
  for (sim::PeerId id = 0; id < cfg.k; ++id) {
    if (world.is_faulty(id)) continue;
    ++result.nonfaulty;
    const BitVec& out = report.outputs[id];
    if (out.size() != cfg.n) continue;  // unterminated
    distinct.insert(out.to_string());
    if (out == final_data) {
      ++result.agree_with_final;
    } else if (out == initial) {
      ++result.agree_with_initial;
    } else {
      ++result.torn;
    }
  }
  result.distinct_outputs = distinct.size();
  return result;
}

std::vector<Mutation> periodic_mutations(const dr::Config& cfg,
                                         std::size_t count, sim::Time horizon,
                                         std::uint64_t salt) {
  ASYNCDR_EXPECTS(count >= 1);
  ASYNCDR_EXPECTS(horizon > 0);
  Rng rng = Rng(cfg.seed).split(0xd1afull + salt);
  std::vector<Mutation> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    out.push_back(Mutation{
        horizon * static_cast<sim::Time>(i + 1) / static_cast<sim::Time>(count),
        static_cast<std::size_t>(rng.below(cfg.n))});
  }
  return out;
}

}  // namespace asyncdr::oracle
