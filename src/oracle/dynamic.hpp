// The paper's stated open problem (§4, final paragraph): all Download
// guarantees assume the source is STATIC — two honest peers querying the
// same cell at different times must see the same value. This module makes
// that assumption executable: it schedules in-run mutations of the source
// and measures what breaks, quantifying why "Download from dynamic data"
// is genuinely open rather than an engineering gap.
#pragma once

#include <cstdint>
#include <vector>

#include "dr/world.hpp"
#include "protocols/runner.hpp"

namespace asyncdr::oracle {

/// One scheduled in-run mutation of the source array.
struct Mutation {
  sim::Time at = 0;
  std::size_t bit = 0;  ///< flipped at time `at`
};

/// Outcome of a Download run over a mutating source.
struct DynamicRunResult {
  bool all_terminated = false;
  /// Peers whose output equals the FINAL array.
  std::size_t agree_with_final = 0;
  /// Peers whose output equals the INITIAL array.
  std::size_t agree_with_initial = 0;
  /// Peers whose output matches neither snapshot (torn reads).
  std::size_t torn = 0;
  /// Distinct outputs among nonfaulty peers (1 = they at least agree).
  std::size_t distinct_outputs = 0;
  std::size_t nonfaulty = 0;

  /// The static-data guarantee, transplanted: everyone holds the final
  /// array. Expected to FAIL once mutations land mid-run.
  [[nodiscard]] bool download_guarantee() const {
    return all_terminated && agree_with_final == nonfaulty;
  }
  /// The weaker property one might hope for: all peers agree on *some*
  /// snapshot. Also fails in general — the experiment's point.
  [[nodiscard]] bool agreement_only() const {
    return all_terminated && distinct_outputs <= 1;
  }
};

/// Runs `honest` Download peers over an n-bit source that mutates per
/// `mutations` while the protocol executes. Crash/Byzantine adversaries are
/// deliberately absent: the mutations alone defeat the guarantee. Peers
/// start at adversary-staggered times spread over [0, stagger] (the model
/// makes no simultaneous-start promise), so their queries interleave with
/// the mutations.
/// `partial_crashes` peers die mid-broadcast (within the fault budget):
/// their bits get reassigned and RE-QUERIED later, so two peers can hold
/// different-era values for the same bit — the disagreement mode that mere
/// agreement-on-a-snapshot hopes would not exist.
DynamicRunResult run_dynamic_download(const dr::Config& cfg,
                                      const proto::PeerFactory& honest,
                                      const std::vector<Mutation>& mutations,
                                      sim::Time stagger = 0.0,
                                      std::size_t partial_crashes = 0);

/// Convenience: `count` evenly spaced single-bit flips across [0, horizon].
std::vector<Mutation> periodic_mutations(const dr::Config& cfg,
                                         std::size_t count, sim::Time horizon,
                                         std::uint64_t salt = 0);

}  // namespace asyncdr::oracle
