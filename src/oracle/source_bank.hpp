// The off-chain side of a blockchain oracle: m data sources, up to a psi
// fraction of which are Byzantine. Honest sources report per-cell values
// drawn near a common ground truth (real providers disagree slightly);
// Byzantine sources serve arbitrary — but static — corrupted arrays.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "oracle/value_source.hpp"

namespace asyncdr::oracle {

/// A fleet of data sources with a known (to the experiment, not the
/// protocol) honest/Byzantine split.
class SourceBank {
 public:
  struct Spec {
    std::size_t sources = 8;     ///< m
    std::size_t cells = 16;      ///< V
    std::size_t value_bits = 16; ///< w
    double psi = 0.25;           ///< Byzantine source fraction
    /// Honest per-cell disagreement: values are base +- noise.
    std::int64_t noise = 2;
    std::uint64_t seed = 1;
  };

  /// Builds a bank per the spec: ground-truth cell values, honest sources
  /// jittered by +-noise, floor(psi*m) Byzantine sources with adversarial
  /// cell values (far outside the honest range).
  static SourceBank build(const Spec& spec);

  [[nodiscard]] std::size_t count() const { return sources_.size(); }
  [[nodiscard]] std::size_t byzantine_count() const;
  [[nodiscard]] const ValueSource& source(std::size_t i) const;
  [[nodiscard]] bool is_byzantine(std::size_t i) const;

  /// [min, max] of honest sources' values for one cell — the §4 honest
  /// range that every published value must fall into (ODD).
  [[nodiscard]] std::pair<std::int64_t, std::int64_t> honest_range(std::size_t cell) const;

  /// True if `value` lies in the honest range of `cell`.
  [[nodiscard]] bool in_honest_range(std::size_t cell, std::int64_t value) const;

  [[nodiscard]] const Spec& spec() const { return spec_; }

 private:
  SourceBank(Spec spec, std::vector<ValueSource> sources,
             std::vector<bool> byzantine);

  Spec spec_;
  std::vector<ValueSource> sources_;
  std::vector<bool> byzantine_;
};

}  // namespace asyncdr::oracle
