#include "oracle/value_source.hpp"

#include "common/check.hpp"

namespace asyncdr::oracle {

ValueSource::ValueSource(std::vector<std::int64_t> cells,
                         std::size_t value_bits)
    : cells_(std::move(cells)), value_bits_(value_bits) {
  ASYNCDR_EXPECTS(!cells_.empty());
  ASYNCDR_EXPECTS(value_bits_ >= 1 && value_bits_ <= 63);
  bits_ = BitVec(cells_.size() * value_bits_);
  for (std::size_t c = 0; c < cells_.size(); ++c) {
    const std::int64_t v = cells_[c];
    ASYNCDR_EXPECTS_MSG(v >= 0 && v < (std::int64_t{1} << value_bits_),
                        "cell value out of range for value_bits");
    for (std::size_t b = 0; b < value_bits_; ++b) {
      bits_.set(c * value_bits_ + b, (v >> b) & 1);
    }
  }
}

std::int64_t ValueSource::read(std::size_t cell) const {
  ASYNCDR_EXPECTS(cell < cells_.size());
  return cells_[cell];
}

std::int64_t ValueSource::decode(const BitVec& downloaded,
                                 std::size_t cell) const {
  ASYNCDR_EXPECTS(downloaded.size() == bits_.size());
  ASYNCDR_EXPECTS(cell < cells_.size());
  std::int64_t v = 0;
  for (std::size_t b = 0; b < value_bits_; ++b) {
    if (downloaded.get(cell * value_bits_ + b)) v |= std::int64_t{1} << b;
  }
  return v;
}

}  // namespace asyncdr::oracle
