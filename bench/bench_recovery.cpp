// Crash-recovery experiment: how much of a restarted peer's re-download the
// write-ahead interval journal saves.
//
// Series:
//   (a) R1: Algorithm 1 (one crash), the crashed peer comes back — warm
//       (journal replay) vs cold (journal ignored) restart.
//   (b) R2: Algorithm 2 under a restart storm (staggered crashes, one
//       synchronized revival burst) across crash fractions, warm vs cold.
//   (c) R3: flapping peers (periodic kill/revive cycles), warm only — the
//       second resume should be free (journal already holds everything).
//
// Warm and cold share ALL machinery (same crash schedule, same restart
// path); RecoveryOptions::cold_restart only makes the replay see an empty
// log. Any Q difference is therefore exactly the journal's contribution.
//
// The whole R1/R2/R3 grid is declared up front and fanned over the campaign
// substrate (every run is an independent world), then folded back per
// (section, label) in grid order — the aggregates are identical to the old
// serial repeat loops, but the sweep parallelises and ships campaign
// telemetry (bench_recovery.events.jsonl + CAMPAIGN_recovery.json in
// $ASYNCDR_BENCH_DIR; --progress 1 for the live line).
#include "bench_common.hpp"

using namespace asyncdr;
using namespace asyncdr::bench;
using namespace asyncdr::proto;

namespace {
constexpr std::size_t kRepeats = 5;

/// RepeatStats plus the RunReport::recovery counters.
struct RecoveryAgg {
  RepeatStats base;
  Summary restarts, replays, cold_falls, recovered, saved;
};

/// Folds every grid point matching (section, label), in grid order — the
/// same accumulation order as the old sequential repeat loop, so the
/// emitted means are bit-identical to the serial bench.
RecoveryAgg fold(const std::vector<BenchPoint>& grid,
                 const std::vector<dr::RunReport>& reports,
                 const std::string& section, const std::string& label) {
  RecoveryAgg agg;
  for (std::size_t i = 0; i < grid.size(); ++i) {
    if (grid[i].section != section || grid[i].label != label) continue;
    const dr::RunReport& report = reports[i];
    ++agg.base.runs;
    if (!report.ok()) {
      ++agg.base.failures;
      continue;
    }
    agg.base.q.add(static_cast<double>(report.query_complexity));
    agg.base.t.add(report.time_complexity);
    agg.base.m.add(static_cast<double>(report.message_complexity));
    const dr::RecoveryStats& rec = report.recovery;
    agg.restarts.add(static_cast<double>(rec.restarts));
    agg.replays.add(static_cast<double>(rec.journal_replays));
    agg.cold_falls.add(static_cast<double>(rec.cold_fallbacks));
    agg.recovered.add(static_cast<double>(rec.bits_recovered));
    agg.saved.add(static_cast<double>(rec.queries_saved));
  }
  return agg;
}

void record(BenchJson& bj, const std::string& section,
            const std::string& label, const RecoveryAgg& agg) {
  bj.record(section, label, agg.base);
  bj.record_values(section, label + " recovery",
                   {{"restarts_mean", agg.restarts.mean()},
                    {"replays_mean", agg.replays.mean()},
                    {"cold_fallbacks_mean", agg.cold_falls.mean()},
                    {"bits_recovered_mean", agg.recovered.mean()},
                    {"queries_saved_mean", agg.saved.mean()}});
}

Scenario r1_scenario(bool cold, std::size_t rep) {
  Scenario s;
  s.cfg = dr::Config{.n = 1 << 14, .k = 16, .beta = 1.0 / 16,
                     .message_bits = 1024, .seed = 500 + rep};
  s.honest = make_crash_one();
  s.recovery.factory = make_crash_one();
  s.recovery.options.cold_restart = cold;
  const sim::PeerId victim = rep % 16;
  s.crashes.add_at_time(victim, 2.5);
  s.crashes.add_restart_after(victim, 3.0);
  return s;
}

Scenario r2_scenario(std::size_t crashes, bool cold, std::size_t rep) {
  Scenario s;
  s.cfg = dr::Config{.n = 1 << 14, .k = 16, .beta = 0.5,
                     .message_bits = 1024, .seed = 600 + rep};
  s.honest = make_crash_multi();
  s.recovery.factory = make_crash_multi();
  s.recovery.options.cold_restart = cold;
  Rng rng(rep * 17 + crashes);
  s.crashes = adv::CrashPlan::restart_storm(
      s.cfg, rng, crashes, /*spacing=*/1.0,
      /*storm_at=*/static_cast<sim::Time>(crashes) + 2.0,
      /*window=*/2.0);
  return s;
}

Scenario r3_scenario(std::size_t rep) {
  Scenario s;
  s.cfg = dr::Config{.n = 1 << 14, .k = 16, .beta = 0.5,
                     .message_bits = 1024, .seed = 700 + rep};
  s.honest = make_crash_multi();
  s.recovery.factory = make_crash_multi();
  Rng rng(rep * 29 + 3);
  s.crashes = adv::CrashPlan::flapping(s.cfg, rng, /*count=*/2,
                                       /*cycles=*/2, /*period=*/6.0,
                                       /*up_delay=*/1.5, /*jitter=*/0.5);
  return s;
}

constexpr std::size_t kStormCounts[] = {2, 4, 8};

std::string r2_label(std::size_t crashes, bool cold) {
  return "crashes=" + std::to_string(crashes) + (cold ? " cold" : " warm");
}

}  // namespace

int main(int argc, char** argv) {
  banner("Recovery — warm (journal) vs cold restart",
         "a revived peer re-queries only the bits its journal cannot prove");
  BenchJson bj("recovery");

  std::vector<BenchPoint> grid;
  for (const bool cold : {false, true}) {
    for (std::size_t rep = 0; rep < kRepeats; ++rep) {
      grid.push_back({"R1", cold ? "cold" : "warm", 500 + rep,
                      [cold, rep] { return r1_scenario(cold, rep); }});
    }
  }
  for (const std::size_t crashes : kStormCounts) {
    for (const bool cold : {false, true}) {
      for (std::size_t rep = 0; rep < kRepeats; ++rep) {
        grid.push_back(
            {"R2", r2_label(crashes, cold), 600 + rep,
             [crashes, cold, rep] { return r2_scenario(crashes, cold, rep); }});
      }
    }
  }
  for (std::size_t rep = 0; rep < kRepeats; ++rep) {
    grid.push_back(
        {"R3", "flapping warm", 700 + rep, [rep] { return r3_scenario(rep); }});
  }

  const std::vector<dr::RunReport> reports = run_bench_campaign(
      "recovery", grid, bench_telemetry("recovery", argc, argv));

  section("R1: Algorithm 1, one crash at t=2.5 + restart, n=16384, k=16");
  {
    Table table({"restart", "Q", "T", "M", "bits recovered", "Q saved",
                 "fails"});
    for (const bool cold : {false, true}) {
      const std::string label = cold ? "cold" : "warm";
      const RecoveryAgg agg = fold(grid, reports, "R1", label);
      table.add(label, mean_cell(agg.base.q), mean_cell(agg.base.t),
                mean_cell(agg.base.m), mean_cell(agg.recovered),
                mean_cell(agg.saved), agg.base.failures);
      record(bj, "R1", label, agg);
    }
    table.print();
  }

  section("R2: Algorithm 2 restart storm vs crash count, n=16384, k=16, "
          "beta=0.5");
  {
    Table table({"crashes", "restart", "Q", "T", "M", "Q saved", "fails"});
    for (const std::size_t crashes : kStormCounts) {
      for (const bool cold : {false, true}) {
        const std::string label = r2_label(crashes, cold);
        const RecoveryAgg agg = fold(grid, reports, "R2", label);
        table.add(crashes, cold ? "cold" : "warm", mean_cell(agg.base.q),
                  mean_cell(agg.base.t), mean_cell(agg.base.m),
                  mean_cell(agg.saved), agg.base.failures);
        record(bj, "R2", label, agg);
      }
    }
    table.print();
    std::printf("shape: warm Q sits strictly below cold Q at every crash\n"
                "count; the gap is the journal's recovered prefix.\n");
  }

  section("R3: flapping (2 peers x 2 cycles), warm, n=16384, k=16, beta=0.5");
  {
    Table table({"restart", "Q", "T", "restarts", "Q saved", "fails"});
    const RecoveryAgg agg = fold(grid, reports, "R3", "flapping warm");
    table.add("warm", mean_cell(agg.base.q), mean_cell(agg.base.t),
              mean_cell(agg.restarts), mean_cell(agg.saved),
              agg.base.failures);
    record(bj, "R3", "flapping warm", agg);
    table.print();
    std::printf("shape: the second resume of a flapping peer replays a\n"
                "journal that already covers the array — it re-queries\n"
                "nothing, so Q saved exceeds a single incarnation's share.\n");
  }
  return 0;
}
