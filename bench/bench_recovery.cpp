// Crash-recovery experiment: how much of a restarted peer's re-download the
// write-ahead interval journal saves.
//
// Series:
//   (a) R1: Algorithm 1 (one crash), the crashed peer comes back — warm
//       (journal replay) vs cold (journal ignored) restart.
//   (b) R2: Algorithm 2 under a restart storm (staggered crashes, one
//       synchronized revival burst) across crash fractions, warm vs cold.
//   (c) R3: flapping peers (periodic kill/revive cycles), warm only — the
//       second resume should be free (journal already holds everything).
//
// Warm and cold share ALL machinery (same crash schedule, same restart
// path); RecoveryOptions::cold_restart only makes the replay see an empty
// log. Any Q difference is therefore exactly the journal's contribution.
#include "bench_common.hpp"

using namespace asyncdr;
using namespace asyncdr::bench;
using namespace asyncdr::proto;

namespace {
constexpr std::size_t kRepeats = 5;

/// repeat_runs plus the RunReport::recovery counters.
struct RecoveryAgg {
  RepeatStats base;
  Summary restarts, replays, cold_falls, recovered, saved;
};

template <typename ScenarioBuilder>
RecoveryAgg repeat_recovery(std::size_t repeats, ScenarioBuilder&& build) {
  RecoveryAgg agg;
  for (std::size_t rep = 0; rep < repeats; ++rep) {
    proto::Scenario s = build(rep);
    const dr::RunReport report = proto::run_scenario(s);
    ++agg.base.runs;
    if (!report.ok()) {
      ++agg.base.failures;
      continue;
    }
    agg.base.q.add(static_cast<double>(report.query_complexity));
    agg.base.t.add(report.time_complexity);
    agg.base.m.add(static_cast<double>(report.message_complexity));
    const dr::RecoveryStats& rec = report.recovery;
    agg.restarts.add(static_cast<double>(rec.restarts));
    agg.replays.add(static_cast<double>(rec.journal_replays));
    agg.cold_falls.add(static_cast<double>(rec.cold_fallbacks));
    agg.recovered.add(static_cast<double>(rec.bits_recovered));
    agg.saved.add(static_cast<double>(rec.queries_saved));
  }
  return agg;
}

void record(BenchJson& bj, const std::string& section,
            const std::string& label, const RecoveryAgg& agg) {
  bj.record(section, label, agg.base);
  bj.record_values(section, label + " recovery",
                   {{"restarts_mean", agg.restarts.mean()},
                    {"replays_mean", agg.replays.mean()},
                    {"cold_fallbacks_mean", agg.cold_falls.mean()},
                    {"bits_recovered_mean", agg.recovered.mean()},
                    {"queries_saved_mean", agg.saved.mean()}});
}

}  // namespace

int main() {
  banner("Recovery — warm (journal) vs cold restart",
         "a revived peer re-queries only the bits its journal cannot prove");
  BenchJson bj("recovery");

  section("R1: Algorithm 1, one crash at t=2.5 + restart, n=16384, k=16");
  {
    Table table({"restart", "Q", "T", "M", "bits recovered", "Q saved",
                 "fails"});
    for (const bool cold : {false, true}) {
      const auto agg = repeat_recovery(kRepeats, [&](std::size_t rep) {
        Scenario s;
        s.cfg = dr::Config{.n = 1 << 14, .k = 16, .beta = 1.0 / 16,
                           .message_bits = 1024, .seed = 500 + rep};
        s.honest = make_crash_one();
        s.recovery.factory = make_crash_one();
        s.recovery.options.cold_restart = cold;
        const sim::PeerId victim = rep % 16;
        s.crashes.add_at_time(victim, 2.5);
        s.crashes.add_restart_after(victim, 3.0);
        return s;
      });
      const std::string label = cold ? "cold" : "warm";
      table.add(label, mean_cell(agg.base.q), mean_cell(agg.base.t),
                mean_cell(agg.base.m), mean_cell(agg.recovered),
                mean_cell(agg.saved), agg.base.failures);
      record(bj, "R1", label, agg);
    }
    table.print();
  }

  section("R2: Algorithm 2 restart storm vs crash count, n=16384, k=16, "
          "beta=0.5");
  {
    Table table({"crashes", "restart", "Q", "T", "M", "Q saved", "fails"});
    for (const std::size_t crashes : {std::size_t{2}, std::size_t{4},
                                      std::size_t{8}}) {
      for (const bool cold : {false, true}) {
        const auto agg = repeat_recovery(kRepeats, [&](std::size_t rep) {
          Scenario s;
          s.cfg = dr::Config{.n = 1 << 14, .k = 16, .beta = 0.5,
                             .message_bits = 1024, .seed = 600 + rep};
          s.honest = make_crash_multi();
          s.recovery.factory = make_crash_multi();
          s.recovery.options.cold_restart = cold;
          Rng rng(rep * 17 + crashes);
          s.crashes = adv::CrashPlan::restart_storm(
              s.cfg, rng, crashes, /*spacing=*/1.0,
              /*storm_at=*/static_cast<sim::Time>(crashes) + 2.0,
              /*window=*/2.0);
          return s;
        });
        const std::string label = "crashes=" + std::to_string(crashes) +
                                  (cold ? " cold" : " warm");
        table.add(crashes, cold ? "cold" : "warm", mean_cell(agg.base.q),
                  mean_cell(agg.base.t), mean_cell(agg.base.m),
                  mean_cell(agg.saved), agg.base.failures);
        record(bj, "R2", label, agg);
      }
    }
    table.print();
    std::printf("shape: warm Q sits strictly below cold Q at every crash\n"
                "count; the gap is the journal's recovered prefix.\n");
  }

  section("R3: flapping (2 peers x 2 cycles), warm, n=16384, k=16, beta=0.5");
  {
    Table table({"restart", "Q", "T", "restarts", "Q saved", "fails"});
    const auto agg = repeat_recovery(kRepeats, [&](std::size_t rep) {
      Scenario s;
      s.cfg = dr::Config{.n = 1 << 14, .k = 16, .beta = 0.5,
                         .message_bits = 1024, .seed = 700 + rep};
      s.honest = make_crash_multi();
      s.recovery.factory = make_crash_multi();
      Rng rng(rep * 29 + 3);
      s.crashes = adv::CrashPlan::flapping(s.cfg, rng, /*count=*/2,
                                           /*cycles=*/2, /*period=*/6.0,
                                           /*up_delay=*/1.5, /*jitter=*/0.5);
      return s;
    });
    table.add("warm", mean_cell(agg.base.q), mean_cell(agg.base.t),
              mean_cell(agg.restarts), mean_cell(agg.saved),
              agg.base.failures);
    record(bj, "R3", "flapping warm", agg);
    table.print();
    std::printf("shape: the second resume of a flapping peer replays a\n"
                "journal that already covers the array — it re-queries\n"
                "nothing, so Q saved exceeds a single incarnation's share.\n");
  }
  return 0;
}
