// Experiment F3 — decision-tree resolution cost (Protocol 3). The paper
// bounds each segment's resolution cost by the number of strings received
// for it (internal nodes = candidates - 1, path queries <= depth). This
// bench regenerates that accounting: cost vs candidate-set size and vs
// adversarial candidate shapes.
#include "bench_common.hpp"

#include "common/rng.hpp"
#include "protocols/decision_tree.hpp"

using namespace asyncdr;
using namespace asyncdr::bench;
using namespace asyncdr::proto;

namespace {

std::vector<BitVec> random_candidates(Rng& rng, std::size_t count,
                                      std::size_t len) {
  std::vector<BitVec> out;
  std::set<std::string> seen;
  while (out.size() < count) {
    const BitVec c = BitVec::generate(len, [&] { return rng.flip(); });
    if (seen.insert(c.to_string()).second) out.push_back(c);
  }
  return out;
}

/// Adversarial "comb": candidates differing from the truth in exactly one
/// late position each — maximizes tree depth.
std::vector<BitVec> comb_candidates(const BitVec& truth, std::size_t count) {
  std::vector<BitVec> out{truth};
  for (std::size_t j = 1; j < count; ++j) {
    BitVec c = truth;
    c.flip(truth.size() - j);
    out.push_back(c);
  }
  return out;
}

}  // namespace

int main() {
  banner("F3 — decision-tree resolution cost (Protocol 3)",
         "internal nodes = candidates-1; per-resolution queries <= depth; "
         "the true string always survives");

  section("random candidate sets (segment length 512)");
  {
    Table table({"candidates", "internal nodes", "depth", "mean queries",
                 "always correct"});
    Rng rng(7);
    for (std::size_t count : {2ul, 4ul, 8ul, 16ul, 32ul, 64ul}) {
      Summary queries;
      bool all_correct = true;
      std::size_t depth = 0, internal = 0;
      for (int trial = 0; trial < 20; ++trial) {
        const auto cands = random_candidates(rng, count, 512);
        const DecisionTree tree(cands);
        depth = std::max(depth, tree.depth());
        internal = tree.internal_nodes();
        const BitVec& truth = cands[rng.below(cands.size())];
        std::size_t spent = 0;
        const BitVec& winner = tree.determine([&](std::size_t i) {
          ++spent;
          return truth.get(i);
        });
        queries.add(static_cast<double>(spent));
        all_correct = all_correct && (winner == truth);
      }
      table.add(count, internal, depth, queries.mean(), all_correct);
    }
    table.print();
    std::printf("shape: random separators split ~evenly, so queries ~ log\n"
                "of the candidate count despite internal nodes = count-1.\n");
  }

  section("adversarial comb candidates (worst-case depth)");
  {
    Table table({"candidates", "internal nodes", "depth", "queries to truth",
                 "correct"});
    Rng rng(11);
    const BitVec truth = BitVec::generate(512, [&] { return rng.flip(); });
    for (std::size_t count : {2ul, 8ul, 32ul, 128ul}) {
      const auto cands = comb_candidates(truth, count);
      const DecisionTree tree(cands);
      std::size_t spent = 0;
      const BitVec& winner = tree.determine([&](std::size_t i) {
        ++spent;
        return truth.get(i);
      });
      table.add(count, tree.internal_nodes(), tree.depth(), spent,
                winner == truth);
    }
    table.print();
    std::printf("shape: a coordinated adversary can force depth = count-1\n"
                "— exactly the paper's sum_i R_i <= k per-peer allowance,\n"
                "since each Byzantine peer buys one candidate per segment.\n");
  }
  return 0;
}
