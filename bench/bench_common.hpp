// Shared helpers for the benchmark/reproduction binaries: each bench prints
// the paper artifact it regenerates, runs seeded scenarios, and renders
// aligned tables of paper-bound vs measured values.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "campaign/runner.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "obs/json.hpp"
#include "protocols/bounds.hpp"
#include "protocols/lowerbound.hpp"
#include "protocols/runner.hpp"

namespace asyncdr::bench {

inline void banner(const std::string& experiment, const std::string& claim) {
  std::printf("\n==============================================================\n");
  std::printf("%s\n", experiment.c_str());
  std::printf("%s\n", claim.c_str());
  std::printf("==============================================================\n");
}

inline void section(const std::string& title) {
  std::printf("\n--- %s ---\n", title.c_str());
}

/// Runs the scenario `repeats` times with derived seeds; returns summaries
/// of Q, T, M and the count of failed runs.
struct RepeatStats {
  Summary q, t, m;
  std::size_t failures = 0;
  std::size_t runs = 0;
  /// Critical-path composition, filled by repeat_runs_critpath only: the
  /// path length (== T on reconciled runs), its link-latency share, and the
  /// residual local-sequencing share, per successful run.
  Summary cp_len, cp_link, cp_local;
  std::size_t cp_reconciled = 0;
};

template <typename ScenarioBuilder>
RepeatStats repeat_runs(std::size_t repeats, ScenarioBuilder&& build) {
  RepeatStats stats;
  for (std::size_t rep = 0; rep < repeats; ++rep) {
    proto::Scenario s = build(rep);
    const dr::RunReport report = proto::run_scenario(s);
    ++stats.runs;
    if (!report.ok()) {
      ++stats.failures;
      continue;
    }
    stats.q.add(static_cast<double>(report.query_complexity));
    stats.t.add(report.time_complexity);
    stats.m.add(static_cast<double>(report.message_complexity));
  }
  return stats;
}

/// repeat_runs with tracing enabled: each run's critical path (embedded by
/// run_scenario on traced runs) is folded into the cp_* summaries, so the
/// bench can report not just T but what T was spent on.
template <typename ScenarioBuilder>
RepeatStats repeat_runs_critpath(std::size_t repeats, ScenarioBuilder&& build) {
  RepeatStats stats;
  for (std::size_t rep = 0; rep < repeats; ++rep) {
    proto::Scenario s = build(rep);
    auto inner = std::move(s.instrument);
    s.instrument = [inner = std::move(inner)](dr::World& world) {
      world.enable_trace();
      if (inner) inner(world);
    };
    const dr::RunReport report = proto::run_scenario(s);
    ++stats.runs;
    if (!report.ok()) {
      ++stats.failures;
      continue;
    }
    stats.q.add(static_cast<double>(report.query_complexity));
    stats.t.add(report.time_complexity);
    stats.m.add(static_cast<double>(report.message_complexity));
    if (report.critical_path.has_value() && report.critical_path->reconciled) {
      const obs::CriticalPathReport& cp = *report.critical_path;
      ++stats.cp_reconciled;
      double link = 0;
      for (const obs::CriticalPathReport::Attribution& a : cp.by_edge_kind) {
        if (a.key == std::string("link")) link = a.time;
      }
      stats.cp_len.add(cp.path_length);
      stats.cp_link.add(link);
      stats.cp_local.add(cp.path_length - cp.start_offset - link);
    }
  }
  return stats;
}

inline std::string mean_cell(const Summary& s) {
  return s.empty() ? "-" : Table::to_cell(s.mean());
}

/// One-line rendering of the cp_* summaries for the printed tables.
inline std::string critpath_cell(const RepeatStats& stats) {
  if (stats.cp_len.empty() || stats.cp_len.mean() <= 0) return "-";
  char buf[96];
  std::snprintf(buf, sizeof(buf), "%.0f%% link / %.0f%% local",
                100.0 * stats.cp_link.mean() / stats.cp_len.mean(),
                100.0 * stats.cp_local.mean() / stats.cp_len.mean());
  return buf;
}

/// One grid point of a bench campaign: a ready-to-run scenario builder plus
/// the (section, label) identity its result aggregates under.
struct BenchPoint {
  std::string section;
  std::string label;
  std::uint64_t seed = 0;
  std::function<proto::Scenario()> build;
};

/// Resolves a bench binary's campaign telemetry from its argv: the JSONL
/// event stream (bench_<name>.events.jsonl) and campaign summary
/// (CAMPAIGN_<name>.json) land next to the BENCH json in $ASYNCDR_BENCH_DIR;
/// `--progress 1` turns on the live progress line, `--timing 1` adds the
/// machine-dependent timing section to the summary.
inline campaign::TelemetryOptions bench_telemetry(const std::string& name,
                                                  int argc, char** argv) {
  campaign::TelemetryOptions t;
  const char* dir = std::getenv("ASYNCDR_BENCH_DIR");
  const std::string base = dir != nullptr && *dir != '\0' ? dir : ".";
  t.events_path = base + "/bench_" + name + ".events.jsonl";
  t.summary_path = base + "/CAMPAIGN_" + name + ".json";
  for (int i = 1; i + 1 < argc; i += 2) {
    if (std::strcmp(argv[i], "--progress") == 0) {
      t.progress = std::strtoul(argv[i + 1], nullptr, 10) != 0;
    } else if (std::strcmp(argv[i], "--timing") == 0) {
      t.include_timing = std::strtoul(argv[i + 1], nullptr, 10) != 0;
    }
  }
  return t;
}

/// Runs a bench grid over the campaign substrate and returns the reports in
/// grid order. `threads` follows common/threads semantics (0 = auto with
/// the ASYNCDR_THREADS override); pass 1 when points must run in grid order
/// (e.g. per-point RSS accounting). The campaign summary groups runs by
/// "section/label".
inline std::vector<dr::RunReport> run_bench_campaign(
    const std::string& name, const std::vector<BenchPoint>& grid,
    const campaign::TelemetryOptions& telemetry, std::size_t threads = 0) {
  campaign::CampaignOptions copts;
  copts.name = name;
  copts.total = grid.size();
  copts.threads = threads;
  copts.seed_base = grid.empty() ? 1 : grid.front().seed;
  copts.seed_fn = [&grid](std::size_t i) { return grid[i].seed; };
  copts.telemetry = telemetry;
  campaign::Campaign camp(std::move(copts));
  std::vector<dr::RunReport> reports(grid.size());
  camp.run([&](std::size_t i, std::uint64_t) {
    proto::Scenario s = grid[i].build();
    dr::RunReport report = proto::run_scenario(s);
    campaign::RunOutcome out;
    out.label = grid[i].section + "/" + grid[i].label;
    out.status =
        report.ok() ? obs::RunStatus::kOk : obs::RunStatus::kFailed;
    if (!report.ok()) out.detail = "run failed (predicate or budget)";
    out.report = report;
    reports[i] = std::move(report);
    return out;
  });
  camp.finish();
  return reports;
}

/// Machine-readable twin of the printed tables: every bench records its
/// (section, label) data points here and the destructor writes
/// BENCH_<name>.json (schema asyncdr-bench-v1) into $ASYNCDR_BENCH_DIR, or
/// the working directory when unset. CI diffs fresh files against the
/// checked-in baselines with tools/compare_bench.py.
class BenchJson {
 public:
  explicit BenchJson(std::string name) : name_(std::move(name)) {
    doc_["schema"] = "asyncdr-bench-v1";
    doc_["bench"] = name_;
    doc_["entries"] = obs::Json::array();
  }

  BenchJson(const BenchJson&) = delete;
  BenchJson& operator=(const BenchJson&) = delete;

  ~BenchJson() { write(); }

  /// One measured series point (a printed table row).
  void record(const std::string& section, const std::string& label,
              const RepeatStats& stats) {
    obs::Json e = obs::Json::object();
    e["section"] = section;
    e["label"] = label;
    e["runs"] = static_cast<std::uint64_t>(stats.runs);
    e["failures"] = static_cast<std::uint64_t>(stats.failures);
    // Mean/min/max plus exact (linear-interpolated) distribution
    // percentiles, so the committed baselines pin tail behaviour, not just
    // the centre. compare_bench.py diffs the p50/p90/p99 fields with wider
    // per-metric tolerances than the means.
    if (!stats.q.empty()) {
      e["q_mean"] = stats.q.mean();
      e["q_min"] = stats.q.min();
      e["q_max"] = stats.q.max();
      e["q_p50"] = stats.q.percentile(50);
      e["q_p90"] = stats.q.percentile(90);
      e["q_p99"] = stats.q.percentile(99);
    }
    if (!stats.t.empty()) {
      e["t_mean"] = stats.t.mean();
      e["t_p50"] = stats.t.percentile(50);
      e["t_p90"] = stats.t.percentile(90);
      e["t_p99"] = stats.t.percentile(99);
    }
    if (!stats.m.empty()) {
      e["m_mean"] = stats.m.mean();
      e["m_p50"] = stats.m.percentile(50);
      e["m_p90"] = stats.m.percentile(90);
      e["m_p99"] = stats.m.percentile(99);
    }
    // Optional critical-path fields (repeat_runs_critpath callers only).
    // compare_bench.py diffs q/t/m means and ignores extra fields, so these
    // ride along without perturbing baseline comparisons.
    if (!stats.cp_len.empty()) {
      e["critpath_len_mean"] = stats.cp_len.mean();
      e["critpath_link_mean"] = stats.cp_link.mean();
      e["critpath_local_mean"] = stats.cp_local.mean();
      e["critpath_reconciled"] =
          static_cast<std::uint64_t>(stats.cp_reconciled);
    }
    doc_["entries"].push_back(std::move(e));
  }

  /// A single named scalar for benches with bespoke measurement loops.
  void record_value(const std::string& section, const std::string& label,
                    const std::string& metric, double value) {
    record_values(section, label, {{metric, value}});
  }

  /// Several named scalars under one (section, label) key — one entry, so
  /// compare_bench.py sees them as a single comparable data point.
  void record_values(
      const std::string& section, const std::string& label,
      std::initializer_list<std::pair<std::string, double>> metrics) {
    obs::Json e = obs::Json::object();
    e["section"] = section;
    e["label"] = label;
    for (const auto& [metric, value] : metrics) e[metric] = value;
    doc_["entries"].push_back(std::move(e));
  }

  std::string path() const {
    const char* dir = std::getenv("ASYNCDR_BENCH_DIR");
    const std::string base = dir != nullptr && *dir != '\0' ? dir : ".";
    return base + "/BENCH_" + name_ + ".json";
  }

  void write() {
    if (written_) return;
    written_ = true;
    const std::string p = path();
    std::ofstream f(p, std::ios::binary);
    if (!f) {
      std::fprintf(stderr, "warning: cannot write %s\n", p.c_str());
      return;
    }
    f << doc_.dump(2) << '\n';
    std::fprintf(stderr, "bench json: %s\n", p.c_str());
  }

 private:
  std::string name_;
  obs::Json doc_ = obs::Json::object();
  bool written_ = false;
};

}  // namespace asyncdr::bench
