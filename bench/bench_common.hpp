// Shared helpers for the benchmark/reproduction binaries: each bench prints
// the paper artifact it regenerates, runs seeded scenarios, and renders
// aligned tables of paper-bound vs measured values.
#pragma once

#include <cstdio>
#include <string>

#include "common/stats.hpp"
#include "common/table.hpp"
#include "protocols/bounds.hpp"
#include "protocols/lowerbound.hpp"
#include "protocols/runner.hpp"

namespace asyncdr::bench {

inline void banner(const std::string& experiment, const std::string& claim) {
  std::printf("\n==============================================================\n");
  std::printf("%s\n", experiment.c_str());
  std::printf("%s\n", claim.c_str());
  std::printf("==============================================================\n");
}

inline void section(const std::string& title) {
  std::printf("\n--- %s ---\n", title.c_str());
}

/// Runs the scenario `repeats` times with derived seeds; returns summaries
/// of Q, T, M and the count of failed runs.
struct RepeatStats {
  Summary q, t, m;
  std::size_t failures = 0;
  std::size_t runs = 0;
};

template <typename ScenarioBuilder>
RepeatStats repeat_runs(std::size_t repeats, ScenarioBuilder&& build) {
  RepeatStats stats;
  for (std::size_t rep = 0; rep < repeats; ++rep) {
    proto::Scenario s = build(rep);
    const dr::RunReport report = proto::run_scenario(s);
    ++stats.runs;
    if (!report.ok()) {
      ++stats.failures;
      continue;
    }
    stats.q.add(static_cast<double>(report.query_complexity));
    stats.t.add(report.time_complexity);
    stats.m.add(static_cast<double>(report.message_complexity));
  }
  return stats;
}

inline std::string mean_cell(const Summary& s) {
  return s.empty() ? "-" : Table::to_cell(s.mean());
}

}  // namespace asyncdr::bench
