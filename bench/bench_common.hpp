// Shared helpers for the benchmark/reproduction binaries: each bench prints
// the paper artifact it regenerates, runs seeded scenarios, and renders
// aligned tables of paper-bound vs measured values.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <utility>

#include "common/stats.hpp"
#include "common/table.hpp"
#include "obs/json.hpp"
#include "protocols/bounds.hpp"
#include "protocols/lowerbound.hpp"
#include "protocols/runner.hpp"

namespace asyncdr::bench {

inline void banner(const std::string& experiment, const std::string& claim) {
  std::printf("\n==============================================================\n");
  std::printf("%s\n", experiment.c_str());
  std::printf("%s\n", claim.c_str());
  std::printf("==============================================================\n");
}

inline void section(const std::string& title) {
  std::printf("\n--- %s ---\n", title.c_str());
}

/// Runs the scenario `repeats` times with derived seeds; returns summaries
/// of Q, T, M and the count of failed runs.
struct RepeatStats {
  Summary q, t, m;
  std::size_t failures = 0;
  std::size_t runs = 0;
};

template <typename ScenarioBuilder>
RepeatStats repeat_runs(std::size_t repeats, ScenarioBuilder&& build) {
  RepeatStats stats;
  for (std::size_t rep = 0; rep < repeats; ++rep) {
    proto::Scenario s = build(rep);
    const dr::RunReport report = proto::run_scenario(s);
    ++stats.runs;
    if (!report.ok()) {
      ++stats.failures;
      continue;
    }
    stats.q.add(static_cast<double>(report.query_complexity));
    stats.t.add(report.time_complexity);
    stats.m.add(static_cast<double>(report.message_complexity));
  }
  return stats;
}

inline std::string mean_cell(const Summary& s) {
  return s.empty() ? "-" : Table::to_cell(s.mean());
}

/// Machine-readable twin of the printed tables: every bench records its
/// (section, label) data points here and the destructor writes
/// BENCH_<name>.json (schema asyncdr-bench-v1) into $ASYNCDR_BENCH_DIR, or
/// the working directory when unset. CI diffs fresh files against the
/// checked-in baselines with tools/compare_bench.py.
class BenchJson {
 public:
  explicit BenchJson(std::string name) : name_(std::move(name)) {
    doc_["schema"] = "asyncdr-bench-v1";
    doc_["bench"] = name_;
    doc_["entries"] = obs::Json::array();
  }

  BenchJson(const BenchJson&) = delete;
  BenchJson& operator=(const BenchJson&) = delete;

  ~BenchJson() { write(); }

  /// One measured series point (a printed table row).
  void record(const std::string& section, const std::string& label,
              const RepeatStats& stats) {
    obs::Json e = obs::Json::object();
    e["section"] = section;
    e["label"] = label;
    e["runs"] = static_cast<std::uint64_t>(stats.runs);
    e["failures"] = static_cast<std::uint64_t>(stats.failures);
    if (!stats.q.empty()) {
      e["q_mean"] = stats.q.mean();
      e["q_min"] = stats.q.min();
      e["q_max"] = stats.q.max();
    }
    if (!stats.t.empty()) e["t_mean"] = stats.t.mean();
    if (!stats.m.empty()) e["m_mean"] = stats.m.mean();
    doc_["entries"].push_back(std::move(e));
  }

  /// A single named scalar for benches with bespoke measurement loops.
  void record_value(const std::string& section, const std::string& label,
                    const std::string& metric, double value) {
    obs::Json e = obs::Json::object();
    e["section"] = section;
    e["label"] = label;
    e[metric] = value;
    doc_["entries"].push_back(std::move(e));
  }

  std::string path() const {
    const char* dir = std::getenv("ASYNCDR_BENCH_DIR");
    const std::string base = dir != nullptr && *dir != '\0' ? dir : ".";
    return base + "/BENCH_" + name_ + ".json";
  }

  void write() {
    if (written_) return;
    written_ = true;
    const std::string p = path();
    std::ofstream f(p, std::ios::binary);
    if (!f) {
      std::fprintf(stderr, "warning: cannot write %s\n", p.c_str());
      return;
    }
    f << doc_.dump(2) << '\n';
    std::fprintf(stderr, "bench json: %s\n", p.c_str());
  }

 private:
  std::string name_;
  obs::Json doc_ = obs::Json::object();
  bool written_ = false;
};

}  // namespace asyncdr::bench
