// Experiment F1 — query complexity vs input size n, every protocol on its
// home turf. The scaling-shape figure behind Table 1: Q grows linearly in
// n for all protocols, with slopes 1 (naive), ~2*beta (committee),
// ~1/((1-2b)k) up to logs (randomized), ~1/((1-b)k) (crash).
#include "bench_common.hpp"

using namespace asyncdr;
using namespace asyncdr::bench;
using namespace asyncdr::proto;

namespace {
constexpr std::size_t kRepeats = 3;
}

int main() {
  banner("F1 — Q vs n (all protocols)",
         "slopes: naive 1, committee ~2 beta, randomized ~1/((1-2b)k), "
         "crash ~1/((1-b)k)");

  BenchJson bj("qc_vs_n");
  Table table({"n", "naive", "committee b=.125 k=32", "2-cycle b=.125 k=192",
               "multi-cycle b=.125 k=192", "crash b=.5 k=32"});

  for (std::size_t n : {1u << 12, 1u << 13, 1u << 14, 1u << 15, 1u << 16}) {
    auto run_one = [&](PeerFactory honest, PeerFactory byz, std::size_t k,
                       double beta, bool crash_model) {
      return repeat_runs(kRepeats, [&](std::size_t rep) {
        Scenario s;
        s.cfg = dr::Config{.n = n, .k = k, .beta = beta,
                           .message_bits = 8192, .seed = n + rep};
        s.honest = honest;
        const std::size_t t = s.cfg.max_faulty();
        if (crash_model && t > 0) {
          Rng rng(rep + n);
          s.crashes = adv::CrashPlan::random(s.cfg, rng, t, 10.0);
        } else if (byz && t > 0) {
          s.byzantine = byz;
          s.byz_ids = pick_faulty(s.cfg, t, rep);
        }
        return s;
      });
    };

    const auto naive = run_one(make_naive(), nullptr, 8, 0.0, false);
    const auto committee = run_one(
        make_committee(), make_committee_liar(CommitteeLiarPeer::Mode::kFlipAll),
        32, 0.125, false);
    const auto two_cycle =
        run_one(make_two_cycle(2.0), make_vote_stuffer(2.0, 0), 192, 0.125,
                false);
    const auto multi_cycle =
        run_one(make_multi_cycle(2.0), make_vote_stuffer(2.0, 0), 192, 0.125,
                false);
    const auto crash = run_one(make_crash_multi(), nullptr, 32, 0.5, true);

    table.add(n, mean_cell(naive.q), mean_cell(committee.q),
              mean_cell(two_cycle.q), mean_cell(multi_cycle.q),
              mean_cell(crash.q));
    const std::string point = "n=" + std::to_string(n);
    bj.record("naive", point, naive);
    bj.record("committee", point, committee);
    bj.record("two_cycle", point, two_cycle);
    bj.record("multi_cycle", point, multi_cycle);
    bj.record("crash", point, crash);
  }
  table.print();
  std::printf(
      "\nshape: every column is linear in n with its theorem's slope —\n"
      "naive 1, committee ~(2b + 1/k), randomized ~1/s, crash ~1/((1-b)k)\n"
      "plus its direct-query tail. (Columns use each protocol's own (k, b),\n"
      "so cross-column comparison at equal parameters is Table 1's job.)\n");
  return 0;
}
