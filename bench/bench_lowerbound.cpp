// Experiments E3 (Theorem 3.1) and E4 (Theorem 3.2) — the Byzantine-
// majority lower bounds, run as executable attacks.
//
//   E3: the deterministic two-world construction against every
//       sub-n-query deterministic protocol we have (and the naive control,
//       which is exactly tight and hence unattackable).
//   E4: the randomized planted-bit attack against the 2-cycle protocol
//       forced into the majority regime with optimistic parameters;
//       measured success rate vs the theorem's 1 - q/n floor, as the
//       protocol's query budget q sweeps.
#include "bench_common.hpp"

using namespace asyncdr;
using namespace asyncdr::bench;
using namespace asyncdr::proto;

int main() {
  banner("E3/E4 — Byzantine-majority lower bounds (Thms 3.1, 3.2)",
         "any Download protocol with Q < n fails once beta >= 1/2");

  section("E3: deterministic two-world attack (n=4096, k=10, beta=1/2)");
  {
    Table table({"victim protocol", "victim q (probe)", "attackable",
                 "attack succeeded", "planted bit", "note"});
    struct Victim {
      std::string name;
      PeerFactory factory;
    };
    for (const auto& victim : std::vector<Victim>{
             {"Algorithm 2 (crash-optimal)", make_crash_multi()},
             {"Algorithm 1 (one-crash)", make_crash_one()},
             {"naive (Q = n, the tight case)", make_naive()}}) {
      const dr::Config c{.n = 4096, .k = 10, .beta = 0.5,
                         .message_bits = 1024, .seed = 3};
      const auto result = run_deterministic_majority_attack(c, victim.factory);
      table.add(victim.name, result.victim_probe_queries, result.attackable,
                result.succeeded, result.planted_bit, result.detail);
    }
    table.print();
    std::printf("shape: every protocol with q < n falls to the two-world\n"
                "indistinguishability argument; only Q = n survives — the\n"
                "Theorem 3.1 dichotomy.\n");
  }

  section("E3 across beta >= 1/2 (Algorithm 2 victim, k=16)");
  {
    Table table({"beta", "t", "|B| corrupted", "|S| delayed", "victim q",
                 "succeeded"});
    for (double beta : {0.5, 0.625, 0.75, 0.875}) {
      const dr::Config c{.n = 2048, .k = 16, .beta = beta,
                         .message_bits = 512, .seed = 5};
      const auto result = run_deterministic_majority_attack(c, make_crash_multi());
      table.add(beta, c.max_faulty(), c.max_faulty(),
                c.k - c.max_faulty() - 1, result.victim_probe_queries,
                result.succeeded);
    }
    table.print();
    std::printf("note: as beta -> 1 the victim's quorum shrinks toward\n"
                "itself and Algorithm 2 degrades to querying everything —\n"
                "exactly the only defense Theorem 3.1 leaves.\n");
  }

  section("E4: randomized attack success vs query budget (n=4096, k=24)");
  {
    Table table({"segments s", "mean victim q", "q/n", "success measured",
                 "floor 1-q/n", "trials"});
    const dr::Config c{.n = 4096, .k = 24, .beta = 0.5,
                       .message_bits = 4096, .seed = 17};
    for (std::size_t segments : {2ul, 4ul, 8ul}) {
      RandParams optimistic;  // what the victim wrongly believes
      optimistic.segments = segments;
      optimistic.tau = 1;
      optimistic.eta = 4;
      const auto stats = run_randomized_majority_attack(
          c, make_two_cycle_with(optimistic), 32);
      table.add(segments, stats.mean_victim_queries,
                stats.mean_victim_queries / static_cast<double>(c.n),
                stats.success_rate(), stats.predicted_floor(c.n),
                stats.trials);
    }
    table.print();
    std::printf("shape: success tracks the 1 - q/n floor of Theorem 3.2 —\n"
                "cheaper victims fail more often, and driving failure to 0\n"
                "requires q -> n, i.e. Q = Omega(n). (Runs land slightly\n"
                "below the floor because our implementation's fallback\n"
                "re-queries candidate-less segments, which covers the\n"
                "planted bit more often than q uniform queries would.)\n");
  }
  return 0;
}
