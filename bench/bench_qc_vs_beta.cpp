// Experiment F2 — query complexity vs fault fraction beta: the paper's
// resilience landscape in one figure. Committee and randomized protocols
// live only below 1/2 (their cost diverging as beta -> 1/2); the crash
// protocol runs for every beta < 1; past 1/2 in the Byzantine model only
// the naive protocol remains (Section 3.1).
#include "bench_common.hpp"

using namespace asyncdr;
using namespace asyncdr::bench;
using namespace asyncdr::proto;

namespace {
constexpr std::size_t kN = 1 << 14;
constexpr std::size_t kRepeats = 3;

std::string cell_or(const Summary& s, const std::string& fallback) {
  return s.empty() ? fallback : Table::to_cell(s.mean());
}
}  // namespace

int main() {
  banner("F2 — Q vs beta (n=16384)",
         "crossover structure: beta < 1/2 admits o(n) Byzantine protocols; "
         "beta >= 1/2 leaves only Q = n; crash model is fine for all beta < 1");

  BenchJson bj("qc_vs_beta");
  Table table({"beta", "committee k=33", "2-cycle k=192", "crash k=32",
               "naive (any)"});

  for (double beta : {0.0, 0.1, 0.2, 0.3, 0.4, 0.45, 0.5, 0.625, 0.75, 0.9}) {
    Summary committee_q, two_q, crash_q;

    if (beta < 0.5) {
      const auto committee = repeat_runs(kRepeats, [&](std::size_t rep) {
        Scenario s;
        s.cfg = dr::Config{.n = kN, .k = 33, .beta = beta,
                           .message_bits = 8192, .seed = 10 + rep};
        s.honest = make_committee();
        if (s.cfg.max_faulty() > 0) {
          s.byzantine = make_committee_liar(CommitteeLiarPeer::Mode::kFlipAll);
          s.byz_ids = pick_faulty(s.cfg, s.cfg.max_faulty(), rep);
        }
        return s;
      });
      committee_q = committee.q;
      bj.record("committee", "beta=" + Table::to_cell(beta), committee);

      const auto two = repeat_runs(kRepeats, [&](std::size_t rep) {
        Scenario s;
        s.cfg = dr::Config{.n = kN, .k = 192, .beta = beta,
                           .message_bits = 8192, .seed = 20 + rep};
        s.honest = make_two_cycle(2.0);
        if (s.cfg.max_faulty() > 0) {
          s.byzantine = make_vote_stuffer(2.0, 0);
          s.byz_ids = pick_faulty(s.cfg, s.cfg.max_faulty(), rep);
        }
        return s;
      });
      two_q = two.q;
      bj.record("two_cycle", "beta=" + Table::to_cell(beta), two);
    }

    const auto crash = repeat_runs(kRepeats, [&](std::size_t rep) {
      Scenario s;
      s.cfg = dr::Config{.n = kN, .k = 32, .beta = beta,
                         .message_bits = 8192, .seed = 30 + rep};
      s.honest = make_crash_multi();
      if (s.cfg.max_faulty() > 0) {
        s.crashes = adv::CrashPlan::silent_prefix(s.cfg.max_faulty());
      }
      return s;
    });
    crash_q = crash.q;
    bj.record("crash", "beta=" + Table::to_cell(beta), crash);

    table.add(beta, cell_or(committee_q, "impossible (Thm 3.1 regime)"),
              cell_or(two_q, "impossible (Thm 3.2 regime)"),
              cell_or(crash_q, "-"), kN);
  }
  table.print();
  std::printf("\nshape: randomized column diverges as beta -> 1/2 (the\n"
              "1/(1-2 beta) factor); committee column ~ 2 beta n; crash\n"
              "column keeps scaling as 1/(1-beta) well past 1/2.\n");
  return 0;
}
