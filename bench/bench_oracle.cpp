// Experiment A1 — Section 4's blockchain-oracle application: the Oracle
// Data Collection step, naive (Theorem 4.1) vs Download-based (Theorem 4.2).
//
//   naive:    every node reads 2 psi m + 1 FULL sources  ->  per-node cost
//             (2 psi m + 1) V w bits.
//   download: the k nodes run a Download per source      ->  per-node cost
//             m * Q_download(V w) ~ m V w / ((1-2 beta) k) up to logs.
//
// Both must keep every published cell inside the honest sources' range
// (the ODD predicate), with Byzantine sources AND Byzantine oracle nodes.
#include "bench_common.hpp"

#include "oracle/dynamic.hpp"
#include "oracle/odc.hpp"

using namespace asyncdr;
using namespace asyncdr::bench;
using namespace asyncdr::proto;

int main() {
  banner("A1 — Oracle Data Collection: naive vs Download-based (§4)",
         "per-node query bits drop by ~(1-2 beta) k; ODD holds in both");

  section("per-node cost vs oracle committee size k (m=8 sources, V=128 "
          "cells, w=16 bits, psi=0.25, beta=0.125)");
  {
    Table table({"k nodes", "naive bits/node", "download bits/node",
                 "improvement", "ODD naive", "ODD download", "dl failures"});
    oracle::SourceBank::Spec spec;
    spec.sources = 8;
    spec.cells = 128;
    spec.value_bits = 16;
    spec.psi = 0.25;
    spec.seed = 31;
    const auto bank = oracle::SourceBank::build(spec);

    for (std::size_t k : {16ul, 32ul, 64ul, 128ul}) {
      const auto naive = oracle::run_naive_odc(bank, k);

      oracle::DownloadOdcOptions options;
      options.node_cfg = dr::Config{.n = 1, .k = k, .beta = 0.125,
                                    .message_bits = 4096, .seed = 77};
      options.honest = make_committee();
      options.byzantine =
          make_committee_liar(CommitteeLiarPeer::Mode::kFlipAll);
      options.byz_nodes = pick_faulty(options.node_cfg,
                                      options.node_cfg.max_faulty());
      const auto dl = oracle::run_download_odc(bank, options);

      table.add(k, naive.max_node_query_bits, dl.max_node_query_bits,
                static_cast<double>(naive.max_node_query_bits) /
                    static_cast<double>(std::max<std::uint64_t>(
                        dl.max_node_query_bits, 1)),
                naive.odd_satisfied, dl.odd_satisfied, dl.download_failures);
    }
    table.print();
    std::printf("shape: naive per-node cost is flat in k; Download-based\n"
                "cost falls with k toward the committee protocol's 2*beta\n"
                "floor (Thm 4.2; the randomized section below shows the\n"
                "full ~1/((1-2 beta) k) scaling).\n");
  }

  section("randomized Download inside the oracle (k=192, beta=0.125, "
          "vote-stuffing nodes)");
  {
    oracle::SourceBank::Spec spec;
    spec.sources = 6;
    spec.cells = 512;
    spec.value_bits = 16;
    spec.psi = 0.3;
    spec.seed = 13;
    const auto bank = oracle::SourceBank::build(spec);

    const auto naive = oracle::run_naive_odc(bank, 192);

    oracle::DownloadOdcOptions options;
    options.node_cfg = dr::Config{.n = 1, .k = 192, .beta = 0.125,
                                  .message_bits = 16384, .seed = 99};
    options.honest = make_two_cycle(2.0);
    options.byzantine = make_vote_stuffer(2.0, 0);
    options.byz_nodes =
        pick_faulty(options.node_cfg, options.node_cfg.max_faulty());
    const auto dl = oracle::run_download_odc(bank, options);

    Table table({"scheme", "bits/node (max)", "total bits", "ODD",
                 "failures"});
    table.add("naive (Thm 4.1)", naive.max_node_query_bits,
              naive.total_query_bits, naive.odd_satisfied, std::size_t{0});
    table.add("download (Thm 4.2)", dl.max_node_query_bits,
              dl.total_query_bits, dl.odd_satisfied, dl.download_failures);
    table.print();
  }

  section("psi sweep: Byzantine sources cannot move the median "
          "(m=16, k=32, committee download)");
  {
    Table table({"psi", "byz sources", "naive bits/node", "download bits/node",
                 "ODD naive", "ODD download"});
    for (double psi : {0.0, 0.125, 0.25, 0.375, 0.45}) {
      oracle::SourceBank::Spec spec;
      spec.sources = 16;
      spec.cells = 64;
      spec.value_bits = 16;
      spec.psi = psi;
      spec.seed = 41;
      const auto bank = oracle::SourceBank::build(spec);
      const auto naive = oracle::run_naive_odc(bank, 32);

      oracle::DownloadOdcOptions options;
      options.node_cfg = dr::Config{.n = 1, .k = 32, .beta = 0.2,
                                    .message_bits = 4096, .seed = 55};
      options.honest = make_committee();
      const auto dl = oracle::run_download_odc(bank, options);

      table.add(psi, bank.byzantine_count(), naive.max_node_query_bits,
                dl.max_node_query_bits, naive.odd_satisfied,
                dl.odd_satisfied);
    }
    table.print();
    std::printf("shape: ODD holds for every psi < 1/2 in both schemes; the\n"
                "naive cost grows with psi (bigger samples), the Download\n"
                "cost reads all m sources once regardless.\n");
  }

  section("the open problem, measured: Download over DYNAMIC data (§4)");
  {
    // Sweep mutation rates over a mid-run mutating source; count which
    // guarantees survive. See src/oracle/dynamic.hpp.
    Table table({"flips during run", "correct (committee)",
                 "agreement (committee)", "correct (Alg. 2)",
                 "agreement (Alg. 2)"});
    const dr::Config c{.n = 2048, .k = 12, .beta = 0.25, .message_bits = 512,
                       .seed = 77};
    constexpr std::size_t kRuns = 8;
    for (std::size_t flips : {0ul, 4ul, 16ul, 64ul}) {
      std::size_t results[2][2] = {};
      for (int protocol = 0; protocol < 2; ++protocol) {
        for (std::uint64_t seed = 1; seed <= kRuns; ++seed) {
          dr::Config run_cfg = c;
          run_cfg.seed = seed;
          std::vector<oracle::Mutation> mutations;
          if (flips > 0) {
            mutations = oracle::periodic_mutations(run_cfg, flips, 2.0, seed);
          }
          const auto result = oracle::run_dynamic_download(
              run_cfg,
              protocol == 0 ? make_committee() : make_crash_multi(),
              mutations, /*stagger=*/2.0);
          results[protocol][0] += result.download_guarantee();
          results[protocol][1] += result.agreement_only();
        }
      }
      table.add(flips, std::to_string(results[0][0]) + "/8",
                std::to_string(results[0][1]) + "/8",
                std::to_string(results[1][0]) + "/8",
                std::to_string(results[1][1]) + "/8");
    }
    table.print();
    std::printf(
        "shape: the static-data guarantee dies with the first mid-run flip\n"
        "in BOTH protocols. The committee even loses internal agreement\n"
        "(members trust their own era-skewed reads); Algorithm 2 still\n"
        "converges — onto a torn array that was never the source's state at\n"
        "any instant. Either way the oracle lies; hence the paper's open\n"
        "problem.\n");
  }
  return 0;
}
