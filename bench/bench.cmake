# Included from the top-level CMakeLists so that ${CMAKE_BINARY_DIR}/bench
# contains ONLY the benchmark executables (the canonical run loop is
# `for b in build/bench/*; do $b; done`).
find_package(benchmark REQUIRED)

function(asyncdr_bench name)
  add_executable(${name} ${ARGN})
  target_link_libraries(${name} PRIVATE
    asyncdr_oracle asyncdr_campaign asyncdr_protocols asyncdr_adversary
    asyncdr_obs asyncdr_dr asyncdr_sim asyncdr_common)
  target_include_directories(${name} PRIVATE ${CMAKE_SOURCE_DIR}/src ${CMAKE_SOURCE_DIR}/bench)
  set_target_properties(${name} PROPERTIES
    RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)
endfunction()

asyncdr_bench(bench_table1 bench/bench_table1.cpp)
asyncdr_bench(bench_crash bench/bench_crash.cpp)
asyncdr_bench(bench_committee bench/bench_committee.cpp)
asyncdr_bench(bench_randomized bench/bench_randomized.cpp)
asyncdr_bench(bench_lowerbound bench/bench_lowerbound.cpp)
asyncdr_bench(bench_qc_vs_n bench/bench_qc_vs_n.cpp)
asyncdr_bench(bench_qc_vs_beta bench/bench_qc_vs_beta.cpp)
asyncdr_bench(bench_decision_tree bench/bench_decision_tree.cpp)
asyncdr_bench(bench_oracle bench/bench_oracle.cpp)
asyncdr_bench(bench_sync_vs_async bench/bench_sync_vs_async.cpp)
asyncdr_bench(bench_scale bench/bench_scale.cpp)
asyncdr_bench(bench_recovery bench/bench_recovery.cpp)

asyncdr_bench(bench_micro bench/bench_micro.cpp)
target_link_libraries(bench_micro PRIVATE benchmark::benchmark)
