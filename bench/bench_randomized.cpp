// Experiments E6 (Theorem 3.7) and E7 (Theorem 3.12) — the randomized
// Byzantine Download protocols for beta < 1/2.
//
// Regenerated series:
//   (a) 2-cycle: Q vs attack family, with decision-tree separator queries
//       and fallback counts broken out. Claim: Q = O~(n/((1-2b)k) + k) whp.
//   (b) multi-cycle: same, plus cycle counts; expected-Q claim of Thm 3.12.
//   (c) whp failure-rate measurement over many seeds (the paper's "w.h.p."
//       made empirical — the fallback path preserves correctness, so
//       failures show up as extra queries, not wrong outputs).
//   (d) Ablation: threshold tau sensitivity, and decision trees vs naive
//       majority voting under vote stuffing (majority voting is WRONG).
#include "bench_common.hpp"

#include "dr/world.hpp"
#include "protocols/byz2cycle.hpp"
#include "protocols/byzmulti.hpp"
#include "protocols/decision_tree.hpp"

using namespace asyncdr;
using namespace asyncdr::bench;
using namespace asyncdr::proto;

namespace {

constexpr std::size_t kN = 1 << 14;
constexpr std::size_t kK = 192;
constexpr double kBeta = 0.125;
constexpr double kC = 2.0;
constexpr std::size_t kRepeats = 5;

dr::Config cfg(std::uint64_t seed) {
  return dr::Config{
      .n = kN, .k = kK, .beta = kBeta, .message_bits = 8192, .seed = seed};
}

struct Attack {
  std::string name;
  PeerFactory factory;  // null = no Byzantine peers
};

std::vector<Attack> attacks() {
  return {{"none", nullptr},
          {"silent", make_silent_byz()},
          {"vote stuffing", make_vote_stuffer(kC, 0)},
          {"comb stuffing (tree worst case)", make_comb_stuffer(kC, 0)},
          {"equivocation", make_equivocator(kC)},
          {"quorum rushing", make_quorum_rusher(kC)},
          {"garbage", make_garbage_byz()}};
}

struct DetailStats {
  Summary q, tree, fallback;
  std::size_t failures = 0;
};

/// Runs worlds directly so per-peer tree/fallback diagnostics are visible.
template <typename PeerT>
DetailStats detail_runs(const RandParams& params, const Attack& attack) {
  DetailStats out;
  for (std::size_t rep = 0; rep < kRepeats; ++rep) {
    const auto c = cfg(1000 + rep);
    dr::World world(c, random_input(c.n, c.seed));
    std::vector<sim::PeerId> byz;
    if (attack.factory) byz = pick_faulty(c, c.max_faulty(), rep);
    const std::set<sim::PeerId> byz_set(byz.begin(), byz.end());
    for (sim::PeerId id = 0; id < c.k; ++id) {
      if (byz_set.contains(id)) {
        world.set_peer(id, attack.factory(c, id));
        world.mark_faulty(id);
      } else {
        world.set_peer(id, std::make_unique<PeerT>(params));
      }
    }
    world.network().set_latency_policy(std::make_unique<adv::UniformLatency>(
        world.adversary_rng(7), 0.05, 1.0));
    const auto report = world.run();
    if (!report.ok()) {
      ++out.failures;
      continue;
    }
    out.q.add(static_cast<double>(report.query_complexity));
    for (sim::PeerId id = 0; id < c.k; ++id) {
      if (byz_set.contains(id)) continue;
      const auto& peer = dynamic_cast<const PeerT&>(world.peer(id));
      out.tree.add(static_cast<double>(peer.tree_queries()));
      out.fallback.add(static_cast<double>(peer.fallback_segments()));
    }
  }
  return out;
}

}  // namespace

int main() {
  const auto params = RandParams::derive(cfg(1), kC);
  banner("E6/E7 — randomized Byzantine Download (Thms 3.7, 3.12)",
         "n=" + std::to_string(kN) + ", k=" + std::to_string(kK) +
             ", beta=" + std::to_string(kBeta) + ", " + params.to_string());

  section("E6: 2-cycle protocol vs attacks");
  {
    Table table({"attack", "Q (max/peer)", "tree queries (mean)",
                 "fallback segs (mean)", "Q bound", "fails"});
    for (const Attack& attack : attacks()) {
      const auto stats = detail_runs<TwoCyclePeer>(params, attack);
      table.add(attack.name, mean_cell(stats.q), mean_cell(stats.tree),
                mean_cell(stats.fallback),
                bounds::two_cycle_q(cfg(1), params), stats.failures);
    }
    table.print();
    std::printf("shape: Q ~ n/s + trees = %zu + O(k); stuffing only adds\n"
                "separator queries, never wrong outputs (Protocol 3).\n",
                kN / params.segments);
  }

  section("E7: multi-cycle protocol vs attacks");
  {
    Table table({"attack", "Q (max/peer)", "tree queries (mean)",
                 "fallback segs (mean)", "Q bound", "fails"});
    for (const Attack& attack : attacks()) {
      const auto stats = detail_runs<MultiCyclePeer>(params, attack);
      table.add(attack.name, mean_cell(stats.q), mean_cell(stats.tree),
                mean_cell(stats.fallback),
                bounds::multi_cycle_q(cfg(1), params), stats.failures);
    }
    table.print();
  }

  section("whp failure rate over 40 seeds (2-cycle, vote stuffing)");
  {
    // The paper's "w.h.p." made empirical, including the tau-margin knob:
    // the paper's Claim 5 margin (2) at this small scale leaves a few
    // percent of runs where some segment misses tau honest picks; widening
    // the margin (smaller tau) trades that for extra candidates.
    for (double margin : {2.0, 3.0}) {
      std::size_t wrong = 0;
      constexpr std::size_t runs = 40;
      Summary q;
      for (std::size_t rep = 0; rep < runs; ++rep) {
        Scenario s;
        s.cfg = cfg(5000 + rep);
        s.honest = make_two_cycle(kC, margin);
        s.byzantine = make_vote_stuffer(kC, rep % params.segments);
        s.byz_ids = pick_faulty(s.cfg, s.cfg.max_faulty(), rep);
        const auto report = run_scenario(s);
        if (!report.ok()) ++wrong;
        q.add(static_cast<double>(report.query_complexity));
      }
      std::printf("tau margin %.0f: runs=%zu wrong_or_hung=%zu (failure rate "
                  "%.3f), Q=%s\n", margin, runs, wrong,
                  static_cast<double>(wrong) / static_cast<double>(runs),
                  q.to_string().c_str());
    }
  }

  section("ablation: tau sensitivity (2-cycle, vote + comb stuffing)");
  {
    // Vote stuffing concentrates t identical fakes (beats any tau <= t);
    // comb stuffing spreads t DISTINCT fakes (each gets one vote, so it
    // only bites at tau = 1 — where it degenerates the tree to depth t).
    Table table({"tau", "attack", "Q", "fails/5"});
    for (std::size_t tau : {1ul, 2ul, params.tau, 2 * params.tau}) {
      for (int attack = 0; attack < 2; ++attack) {
        RandParams p = params;
        p.tau = tau;
        std::size_t fails = 0;
        Summary q;
        for (std::size_t rep = 0; rep < kRepeats; ++rep) {
          Scenario s;
          s.cfg = cfg(6000 + rep);
          s.honest = make_two_cycle_with(p);
          s.byzantine = attack == 0 ? make_vote_stuffer(kC, 0)
                                    : make_comb_stuffer(kC, 0);
          s.byz_ids = pick_faulty(s.cfg, s.cfg.max_faulty(), rep);
          const auto report = run_scenario(s);
          if (!report.ok()) {
            ++fails;
          } else {
            q.add(static_cast<double>(report.query_complexity));
          }
        }
        table.add(tau, attack == 0 ? "vote stuff" : "comb stuff",
                  mean_cell(q), fails);
      }
    }
    table.print();
    std::printf(
        "shape: small tau admits fake candidates (comb at tau=1 costs ~t\n"
        "separators but stays correct). Oversized tau is the real danger\n"
        "zone: once tau exceeds the honest per-segment support but not the\n"
        "Byzantine coalition size (support t), the truth drops OUT of the\n"
        "candidate set while the stuffed fake stays IN — wrong outputs (the\n"
        "fails column). The paper's tau = eta/(2s) sits safely below both.\n");
  }

  section("ablation: decision tree vs majority vote under stuffing");
  {
    // Offline comparison on one segment's vote multiset: t stuffed fakes vs
    // tau..eta honest copies of the truth. Majority voting picks the fake
    // once t exceeds the honest copies; the decision tree never does.
    const std::size_t seg_len = kN / params.segments;
    Rng rng(42);
    const BitVec truth = BitVec::generate(seg_len, [&] { return rng.flip(); });
    BitVec fake = truth;
    for (std::size_t i = 0; i < fake.size(); ++i) fake.flip(i);

    Table table({"honest copies", "stuffed copies", "majority verdict",
                 "tree verdict", "tree queries"});
    const std::size_t t = cfg(1).max_faulty();
    for (std::size_t honest : {params.tau, 2 * params.tau, t + 1}) {
      const bool majority_right = honest > t;
      const DecisionTree tree({truth, fake});
      std::size_t queries = 0;
      const BitVec& winner = tree.determine([&](std::size_t i) {
        ++queries;
        return truth.get(i);
      });
      table.add(honest, t, majority_right ? "correct" : "WRONG",
                winner == truth ? "correct" : "WRONG", queries);
    }
    table.print();
    std::printf("the paper's design point: votes select CANDIDATES only;\n"
                "the source itself (via separator queries) selects the value.\n");
  }
  return 0;
}
