// Experiment E5 (Theorem 3.4) — the deterministic Byzantine committee
// protocol for beta < 1/2.
//
// Regenerated series:
//   (a) Q / T / M vs beta with the strongest liar coalition — the claim
//       Q = O(beta n + n/k) (committees of size 2t+1, round-robin).
//   (b) Attack family sweep at fixed beta — the t+1 threshold makes every
//       lie harmless.
//   (c) Message-size (B) sweep — T = O(n (2t+1) / (k B)) via the batched
//       vote broadcasts; M counts unit messages, so it grows as B shrinks.
#include "bench_common.hpp"

using namespace asyncdr;
using namespace asyncdr::bench;
using namespace asyncdr::proto;

namespace {
constexpr std::size_t kRepeats = 5;
}

int main() {
  banner("E5 — deterministic Byzantine committee protocol (Thm 3.4)",
         "Q = O(beta n + n/k) for beta < 1/2, deterministic, asynchronous");
  BenchJson bj("committee");

  section("Q vs beta, n=16384, k=32, flip-all liars at max t");
  {
    Table table({"beta", "t", "committee", "Q measured", "Q bound", "T", "M",
                 "T breakdown", "fails"});
    for (double beta : {0.0, 0.1, 0.2, 0.3, 0.4, 0.45}) {
      dr::Config c{.n = 1 << 14, .k = 32, .beta = beta, .message_bits = 4096,
                   .seed = 1};
      // Traced runs: the critical-path probe splits T into link latency vs
      // local sequencing per row (and lands in the bench JSON).
      const auto stats = repeat_runs_critpath(kRepeats, [&](std::size_t rep) {
        Scenario s;
        s.cfg = c;
        s.cfg.seed = 500 + rep;
        s.honest = make_committee();
        if (s.cfg.max_faulty() > 0) {
          s.byzantine = make_committee_liar(CommitteeLiarPeer::Mode::kFlipAll);
          s.byz_ids = pick_faulty(s.cfg, s.cfg.max_faulty(), rep);
        }
        return s;
      });
      table.add(beta, c.max_faulty(), 2 * c.max_faulty() + 1,
                mean_cell(stats.q), bounds::committee_q(c), mean_cell(stats.t),
                mean_cell(stats.m), critpath_cell(stats), stats.failures);
      bj.record("q-vs-beta", "beta=" + Table::to_cell(beta), stats);
    }
    table.print();
    std::printf("shape: Q ~ (2 beta + 1/k) n — linear in beta, the paper's\n"
                "deterministic price for Byzantine tolerance below 1/2.\n"
                "T breakdown: the critical path's link-latency share vs\n"
                "same-instant local sequencing (path length == T exactly).\n");
  }

  section("attack family sweep, n=16384, k=25, beta=0.4 (t=10, c=21)");
  {
    Table table({"attack", "Q measured", "T", "M", "fails"});
    struct Attack {
      std::string name;
      PeerFactory factory;
    };
    for (const auto& attack : std::vector<Attack>{
             {"silent", make_silent_byz()},
             {"flip all votes", make_committee_liar(CommitteeLiarPeer::Mode::kFlipAll)},
             {"random votes", make_committee_liar(CommitteeLiarPeer::Mode::kRandom)},
             {"equivocate", make_committee_liar(CommitteeLiarPeer::Mode::kEquivocate)},
             {"garbage payloads", make_garbage_byz()}}) {
      const auto stats = repeat_runs(kRepeats, [&](std::size_t rep) {
        Scenario s;
        s.cfg = dr::Config{.n = 1 << 14, .k = 25, .beta = 0.4,
                           .message_bits = 4096, .seed = 600 + rep};
        s.honest = make_committee();
        s.byzantine = attack.factory;
        s.byz_ids = pick_faulty(s.cfg, s.cfg.max_faulty(), rep);
        return s;
      });
      table.add(attack.name, mean_cell(stats.q), mean_cell(stats.t),
                mean_cell(stats.m), stats.failures);
      bj.record("attacks", attack.name, stats);
    }
    table.print();
  }

  section("message size B sweep, n=16384, k=25, beta=0.2");
  {
    Table table({"B (bits)", "Q", "T", "M (unit msgs)", "fails"});
    for (std::size_t b : {256u, 1024u, 4096u, 16384u}) {
      const auto stats = repeat_runs(kRepeats, [&](std::size_t rep) {
        Scenario s;
        s.cfg = dr::Config{.n = 1 << 14, .k = 25, .beta = 0.2,
                           .message_bits = b, .seed = 700 + rep};
        s.honest = make_committee();
        s.byzantine = make_committee_liar(CommitteeLiarPeer::Mode::kFlipAll);
        s.byz_ids = pick_faulty(s.cfg, s.cfg.max_faulty(), rep);
        return s;
      });
      table.add(b, mean_cell(stats.q), mean_cell(stats.t), mean_cell(stats.m),
                stats.failures);
      bj.record("B-sweep", "B=" + std::to_string(b), stats);
    }
    table.print();
    std::printf("shape: Q independent of B; T and M scale ~1/B (the n/B link\n"
                "serialization term of the paper's time analysis).\n");
  }
  return 0;
}
