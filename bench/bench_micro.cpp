// Experiment M1 — substrate micro-benchmarks (google-benchmark): the
// simulation engine, the bit-vector kernels, the decision tree, and a full
// small protocol run. These quantify the cost of the harness itself, so
// the experiment benches' runtimes can be attributed.
#include <benchmark/benchmark.h>

#include "common/bitvec.hpp"
#include "common/interval_set.hpp"
#include "common/rng.hpp"
#include "protocols/decision_tree.hpp"
#include "protocols/runner.hpp"
#include "sim/engine.hpp"

namespace {

using namespace asyncdr;

void BM_EngineScheduleRun(benchmark::State& state) {
  const auto events = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    sim::Engine engine;
    std::size_t sink = 0;
    for (std::size_t i = 0; i < events; ++i) {
      engine.schedule_at(static_cast<double>(i % 97), [&sink] { ++sink; });
    }
    engine.run();
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(events));
}
BENCHMARK(BM_EngineScheduleRun)->Arg(1024)->Arg(16384)->Arg(131072);

void BM_BitVecPopcount(benchmark::State& state) {
  Rng rng(1);
  const BitVec v = BitVec::generate(static_cast<std::size_t>(state.range(0)),
                                    [&] { return rng.flip(); });
  for (auto _ : state) {
    benchmark::DoNotOptimize(v.popcount());
  }
}
BENCHMARK(BM_BitVecPopcount)->Arg(1 << 12)->Arg(1 << 16)->Arg(1 << 20);

void BM_BitVecMaskAlgebra(benchmark::State& state) {
  Rng rng(2);
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const BitVec a = BitVec::generate(n, [&] { return rng.flip(); });
  const BitVec b = BitVec::generate(n, [&] { return rng.flip(); });
  for (auto _ : state) {
    BitVec c = a;
    c.andnot_with(b);
    benchmark::DoNotOptimize(c.is_subset_of(a));
  }
}
BENCHMARK(BM_BitVecMaskAlgebra)->Arg(1 << 12)->Arg(1 << 16)->Arg(1 << 20);

void BM_IntervalSetInsertErase(benchmark::State& state) {
  for (auto _ : state) {
    Rng rng(3);
    IntervalSet s;
    for (int i = 0; i < state.range(0); ++i) {
      const auto lo = static_cast<std::size_t>(rng.below(100000));
      if (rng.flip(0.7)) {
        s.insert(lo, lo + rng.below(50));
      } else {
        s.erase(lo, lo + rng.below(50));
      }
    }
    benchmark::DoNotOptimize(s.count());
  }
}
BENCHMARK(BM_IntervalSetInsertErase)->Arg(256)->Arg(2048);

void BM_DecisionTreeBuildAndDetermine(benchmark::State& state) {
  Rng rng(4);
  const auto count = static_cast<std::size_t>(state.range(0));
  std::vector<BitVec> cands;
  std::set<std::string> seen;
  while (cands.size() < count) {
    const BitVec c = BitVec::generate(512, [&] { return rng.flip(); });
    if (seen.insert(c.to_string()).second) cands.push_back(c);
  }
  const BitVec truth = cands[0];
  for (auto _ : state) {
    const proto::DecisionTree tree(cands);
    const BitVec& winner =
        tree.determine([&](std::size_t i) { return truth.get(i); });
    benchmark::DoNotOptimize(winner.size());
  }
}
BENCHMARK(BM_DecisionTreeBuildAndDetermine)->Arg(4)->Arg(32)->Arg(128);

void BM_FullCrashProtocolRun(benchmark::State& state) {
  for (auto _ : state) {
    proto::Scenario s;
    s.cfg = dr::Config{.n = 1 << 12, .k = 16, .beta = 0.5,
                       .message_bits = 1024,
                       .seed = static_cast<std::uint64_t>(state.iterations())};
    s.honest = proto::make_crash_multi();
    s.crashes = adv::CrashPlan::silent_prefix(8);
    const auto report = proto::run_scenario(s);
    benchmark::DoNotOptimize(report.query_complexity);
  }
}
BENCHMARK(BM_FullCrashProtocolRun)->Unit(benchmark::kMillisecond);

void BM_FullCommitteeRun(benchmark::State& state) {
  for (auto _ : state) {
    proto::Scenario s;
    s.cfg = dr::Config{.n = 1 << 12, .k = 16, .beta = 0.25,
                       .message_bits = 1024,
                       .seed = static_cast<std::uint64_t>(state.iterations())};
    s.honest = proto::make_committee();
    s.byzantine = proto::make_silent_byz();
    s.byz_ids = proto::pick_faulty(s.cfg, s.cfg.max_faulty());
    const auto report = proto::run_scenario(s);
    benchmark::DoNotOptimize(report.query_complexity);
  }
}
BENCHMARK(BM_FullCommitteeRun)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
