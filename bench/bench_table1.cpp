// Experiment T1 — Table 1 of the paper: the query-complexity landscape.
//
// The paper's Table 1 lists prior synchronous results and this paper's two
// asynchronous rows. We regenerate the table with MEASURED query
// complexities from our implementations on one shared instance, next to
// each protocol's theoretical bound, for all fault models and resiliences:
//
//   row 1  naive                any beta    Q = n            (baseline)
//   row 2  committee (det.)     beta < 1/2  Q = O(beta n + n/k)   Thm 3.4
//   row 3  2-cycle randomized   beta < 1/2  Q = O~(n/((1-2b)k)+k) Thm 3.7
//   row 4  multi-cycle rand.    beta < 1/2  Q = O~(n/((1-2b)k)+k) Thm 3.12
//   row 5  crash, determ.       beta < 1    Q = O(n/((1-b)k))     Thm 2.13
//
// Shapes to check against the paper: the crash protocol is query-optimal
// for every beta; the randomized protocols beat the deterministic committee
// by a ~beta*k factor; nothing beats naive once beta >= 1/2 (Section 3.1).
#include "bench_common.hpp"

using namespace asyncdr;
using namespace asyncdr::bench;
using namespace asyncdr::proto;

namespace {

constexpr std::size_t kN = 1 << 14;
constexpr std::size_t kK = 192;
constexpr std::size_t kRepeats = 3;

dr::Config base_cfg(double beta, std::uint64_t seed) {
  return dr::Config{
      .n = kN, .k = kK, .beta = beta, .message_bits = 4096, .seed = seed};
}

struct Row {
  std::string name;
  std::string fault_model;
  std::string resilience;
  double beta;
  PeerFactory honest;
  PeerFactory byzantine;  // null -> crash faults (or none)
  std::size_t bound;
};

}  // namespace

int main() {
  banner("T1 / Table 1 — query complexity landscape (async DR model)",
         "measured Q per protocol vs its theorem bound; n=" +
             std::to_string(kN) + ", k=" + std::to_string(kK));

  const double beta_minority = 0.125;
  const double beta_crash = 0.5;
  const auto cfg_minority = base_cfg(beta_minority, 1);
  const auto cfg_crash = base_cfg(beta_crash, 1);
  const RandParams rp = RandParams::derive(cfg_minority, 1.5, 3.0);

  std::vector<Row> rows;
  rows.push_back({"naive (query all)", "Byzantine", "any beta", 0.75,
                  make_naive(), make_garbage_byz(),
                  bounds::naive_q(base_cfg(0.75, 1))});
  rows.push_back({"committee (Thm 3.4, det.)", "Byzantine", "beta < 1/2",
                  beta_minority, make_committee(),
                  make_committee_liar(CommitteeLiarPeer::Mode::kFlipAll),
                  bounds::committee_q(cfg_minority)});
  rows.push_back({"2-cycle rand. (Thm 3.7)", "Byzantine", "beta < 1/2",
                  beta_minority, make_two_cycle(1.5, 3.0), make_vote_stuffer(1.5, 0),
                  bounds::two_cycle_q(cfg_minority, rp)});
  rows.push_back({"multi-cycle rand. (Thm 3.12)", "Byzantine", "beta < 1/2",
                  beta_minority, make_multi_cycle(1.5, 3.0),
                  make_vote_stuffer(1.5, 0),
                  bounds::multi_cycle_q(cfg_minority, rp)});
  rows.push_back({"crash determ. (Thm 2.13)", "Crash", "beta < 1", beta_crash,
                  make_crash_multi(), nullptr,
                  bounds::crash_multi_q(cfg_crash)});

  BenchJson bj("table1");
  Table table({"protocol", "fault model", "resilience", "beta", "Q measured",
               "Q bound", "Q naive ratio", "T", "M", "fails"});
  for (const Row& row : rows) {
    const auto stats = repeat_runs(kRepeats, [&](std::size_t rep) {
      Scenario s;
      s.cfg = base_cfg(row.beta, 11 * (rep + 1));
      s.honest = row.honest;
      const std::size_t t = s.cfg.max_faulty();
      if (row.byzantine) {
        s.byzantine = row.byzantine;
        s.byz_ids = pick_faulty(s.cfg, t, rep);
      } else if (t > 0) {
        Rng rng(rep * 31 + 7);
        s.crashes = adv::CrashPlan::random(s.cfg, rng, t, 10.0);
      }
      return s;
    });
    table.add(row.name, row.fault_model, row.resilience, row.beta,
              mean_cell(stats.q), row.bound,
              stats.q.empty() ? 0.0
                              : static_cast<double>(kN) / stats.q.mean(),
              mean_cell(stats.t), mean_cell(stats.m), stats.failures);
    bj.record("table1", row.name, stats);
  }
  table.print();

  std::printf(
      "\nshape checks: crash row ~ n/((1-b)k) = %zu; randomized rows below\n"
      "committee row by ~beta*k; every Q <= its bound; naive ratio is the\n"
      "speedup over the only protocol possible at beta >= 1/2.\n",
      static_cast<std::size_t>(kN / ((1 - 0.5) * kK)));
  return 0;
}
