// Experiment context for Table 1's "Synchrony" column: all prior DR-model
// work [3,4] assumed synchronous rounds; this paper is the first to go
// asynchronous. This bench runs every protocol under a lockstep schedule
// (all latencies exactly 1 — the synchronous round structure embedded in
// the asynchronous model) and under adversarial asynchrony, and shows the
// paper's point: the query complexity guarantees are UNCHANGED by the
// schedule; only time/message costs move.
#include "bench_common.hpp"

using namespace asyncdr;
using namespace asyncdr::bench;
using namespace asyncdr::proto;

namespace {

constexpr std::size_t kRepeats = 3;

struct ProtocolRow {
  std::string name;
  std::size_t n, k;
  double beta;
  PeerFactory honest;
  PeerFactory byzantine;
  bool crash_model;
};

std::vector<ProtocolRow> rows() {
  return {
      {"crash determ. (Thm 2.13)", 1 << 14, 24, 0.5, make_crash_multi(),
       nullptr, true},
      {"committee (Thm 3.4)", 1 << 13, 25, 0.4, make_committee(),
       make_committee_liar(CommitteeLiarPeer::Mode::kFlipAll), false},
      {"2-cycle rand. (Thm 3.7)", 1 << 14, 192, 0.125, make_two_cycle(1.5, 3.0),
       make_vote_stuffer(1.5, 0), false},
  };
}

RepeatStats run_schedule(const ProtocolRow& row, int schedule) {
  return [&] {
    // Traced: the critical-path probe attributes each schedule's T to link
    // latency vs local sequencing, showing *where* the schedule moves time.
    RepeatStats stats = repeat_runs_critpath(kRepeats, [&](std::size_t rep) {
      Scenario s;
      s.cfg = dr::Config{.n = row.n, .k = row.k, .beta = row.beta,
                         .message_bits = 4096, .seed = 900 + rep};
      s.honest = row.honest;
      const std::size_t t = s.cfg.max_faulty();
      if (row.crash_model && t > 0) {
        Rng rng(rep + 5);
        s.crashes = adv::CrashPlan::random(s.cfg, rng, t, 8.0);
      } else if (row.byzantine && t > 0) {
        s.byzantine = row.byzantine;
        s.byz_ids = pick_faulty(s.cfg, t, rep);
      }
      switch (schedule) {
        case 0: s.latency = fixed_latency(1.0); break;          // lockstep
        case 1: s.latency = uniform_latency(0.01, 1.0); break;  // jittered
        case 2: s.latency = seniority_latency(); break;         // adaptive-ish
      }
      return s;
    });
    return stats;
  }();
}

}  // namespace

int main() {
  banner("Sync vs async — the schedule does not move Q",
         "lockstep (synchronous rounds) vs adversarial asynchrony, per "
         "protocol");

  BenchJson bj("sync_vs_async");
  for (const ProtocolRow& row : rows()) {
    section(row.name);
    Table table({"schedule", "Q", "T", "M", "T breakdown", "fails"});
    const char* names[3] = {"lockstep (sync rounds)", "jittered async",
                            "seniority inversion"};
    double q_min = 1e18, q_max = 0;
    for (int schedule = 0; schedule < 3; ++schedule) {
      const auto result = run_schedule(row, schedule);
      table.add(names[schedule], mean_cell(result.q), mean_cell(result.t),
                mean_cell(result.m), critpath_cell(result), result.failures);
      bj.record(row.name, names[schedule], result);
      if (!result.q.empty()) {
        q_min = std::min(q_min, result.q.mean());
        q_max = std::max(q_max, result.q.mean());
      }
    }
    table.print();
    std::printf("Q spread across schedules: %.1f%%\n",
                q_max > 0 ? 100.0 * (q_max - q_min) / q_max : 0.0);
  }
  std::printf(
      "\nshape: per protocol, Q is (near-)schedule-invariant — the paper's\n"
      "asynchronous guarantees match the synchronous special case, while T\n"
      "reflects the schedule. That is Table 1's \"Asynchronous\" rows\n"
      "subsuming the synchronous model.\n");
  return 0;
}
