// Experiments E1 (Theorem 2.3) and E2 (Theorem 2.13) — the deterministic
// crash-fault Download protocols.
//
// Regenerated series:
//   (a) Algorithm 1 (one crash): Q measured vs the exact bound
//       ceil(n/k) + ceil(ceil(n/k)/(k-1)) across crash timings.
//   (b) Algorithm 2: Q / T / M and phase count vs beta, against the
//       geometric-sum bound — the paper's optimality claim
//       Q = O(n/((1-beta)k)) for ANY beta < 1.
//   (c) Ablation: Thm 2.13's fast-cancel ON vs OFF (time complexity).
//   (d) Adversary comparison: silent / random / staggered / mid-broadcast.
#include "bench_common.hpp"

using namespace asyncdr;
using namespace asyncdr::bench;
using namespace asyncdr::proto;

namespace {
constexpr std::size_t kRepeats = 5;

dr::Config cfg(std::size_t n, std::size_t k, double beta, std::uint64_t seed) {
  return dr::Config{
      .n = n, .k = k, .beta = beta, .message_bits = 1024, .seed = seed};
}
}  // namespace

int main() {
  banner("E1/E2 — deterministic crash-fault Download (Thms 2.3, 2.13)",
         "Q optimal at n/((1-beta)k) for any beta < 1, async, deterministic");
  BenchJson bj("crash");

  section("E1: Algorithm 1 (single crash), n=32768, k=16");
  {
    Table table({"crash pattern", "Q measured", "Q bound", "T", "M", "fails"});
    const auto c = cfg(1 << 15, 16, 1.0 / 16, 1);
    const std::size_t bound = bounds::crash_one_q(c);
    struct Pattern {
      std::string name;
      std::function<adv::CrashPlan(std::size_t rep)> plan;
    };
    const std::vector<Pattern> patterns{
        {"none", [](std::size_t) { return adv::CrashPlan{}; }},
        {"silent from start",
         [](std::size_t rep) {
           adv::CrashPlan p;
           p.add_at_time(rep % 16, 0.0);
           return p;
         }},
        {"mid-broadcast (3 sends)",
         [](std::size_t rep) {
           adv::CrashPlan p;
           p.add_after_sends((rep * 5) % 16, 3);
           return p;
         }},
        {"late (t=2.5)",
         [](std::size_t rep) {
           adv::CrashPlan p;
           p.add_at_time((rep * 7) % 16, 2.5);
           return p;
         }},
    };
    for (const auto& pattern : patterns) {
      const auto stats = repeat_runs(kRepeats, [&](std::size_t rep) {
        Scenario s;
        s.cfg = cfg(1 << 15, 16, 1.0 / 16, 100 + rep);
        s.honest = make_crash_one();
        s.crashes = pattern.plan(rep);
        return s;
      });
      table.add(pattern.name, mean_cell(stats.q), bound, mean_cell(stats.t),
                mean_cell(stats.m), stats.failures);
      bj.record("E1", pattern.name, stats);
    }
    table.print();
  }

  section("E2: Algorithm 2 vs beta, n=32768, k=32, max crashes (silent)");
  {
    Table table({"beta", "t", "Q measured", "Q bound", "n/((1-b)k)",
                 "T", "M", "fails"});
    for (double beta : {0.0, 0.25, 0.5, 0.625, 0.75, 0.875, 0.9375}) {
      const auto c = cfg(1 << 15, 32, beta, 1);
      const auto stats = repeat_runs(kRepeats, [&](std::size_t rep) {
        Scenario s;
        s.cfg = cfg(1 << 15, 32, beta, 200 + rep);
        s.honest = make_crash_multi();
        s.crashes = adv::CrashPlan::silent_prefix(s.cfg.max_faulty());
        return s;
      });
      const double ideal =
          static_cast<double>(c.n) /
          ((1.0 - beta) * static_cast<double>(c.k));
      table.add(beta, c.max_faulty(), mean_cell(stats.q),
                bounds::crash_multi_q(c), ideal, mean_cell(stats.t),
                mean_cell(stats.m), stats.failures);
      bj.record("E2-beta", "beta=" + Table::to_cell(beta), stats);
    }
    table.print();
    std::printf("shape: Q grows as 1/(1-beta), stays at its bound, and is\n"
                "far below naive (Q=%u) even at beta=0.9375.\n", 1u << 15);
  }

  section("E2 adversary styles, n=32768, k=32, beta=0.5");
  {
    Table table({"adversary", "Q measured", "T", "M", "phases-ish", "fails"});
    struct Style {
      std::string name;
      int id;
    };
    for (const auto& style :
         std::vector<Style>{{"silent prefix", 0},
                            {"random times + partial sends", 1},
                            {"staggered across phases", 2},
                            {"mid-broadcast everywhere", 3}}) {
      const auto stats = repeat_runs(kRepeats, [&](std::size_t rep) {
        Scenario s;
        s.cfg = cfg(1 << 15, 32, 0.5, 300 + rep);
        s.honest = make_crash_multi();
        Rng rng(rep * 13 + static_cast<std::uint64_t>(style.id));
        const std::size_t t = s.cfg.max_faulty();
        switch (style.id) {
          case 0: s.crashes = adv::CrashPlan::silent_prefix(t); break;
          case 1: s.crashes = adv::CrashPlan::random(s.cfg, rng, t, 10.0); break;
          case 2: s.crashes = adv::CrashPlan::staggered(s.cfg, rng, t, 2.0); break;
          case 3:
            s.crashes = adv::CrashPlan::partial_broadcast(s.cfg, rng, t, 5);
            break;
        }
        return s;
      });
      table.add(style.name, mean_cell(stats.q), mean_cell(stats.t),
                mean_cell(stats.m), "see test diag", stats.failures);
      bj.record("E2-adversary", style.name, stats);
    }
    table.print();
  }

  section("Ablation: Thm 2.13 fast-cancel under a quorum-throttling schedule");
  {
    // The adversarial schedule of Theorem 2.13's argument: stage-2 answers
    // addressed to peer 0 crawl at the latency cap, peer 1's own stage-1
    // answer to peer 0 is merely slow (0.9) — so peer 0, missing exactly
    // peer 1 each phase, can either wait for the full response quorum
    // (plain Algorithm 2) or be released the moment peer 1's late answer
    // covers everything (fast cancel).
    Table table({"fast_cancel", "Q", "T", "M", "fails"});
    for (bool fast : {true, false}) {
      const auto stats = repeat_runs(kRepeats, [&](std::size_t rep) {
        Scenario s;
        s.cfg = dr::Config{.n = 1 << 14, .k = 16, .beta = 0.25,
                           .message_bits = 1024, .seed = 400 + rep};
        s.honest = make_crash_multi({.fast_cancel = fast});
        s.latency = [](const dr::Config&) -> std::unique_ptr<sim::LatencyPolicy> {
          return std::make_unique<adv::CallbackLatency>(
              [](const sim::Message& msg) -> sim::Time {
                if (msg.to != 0) return 0.05;
                if (sim::payload_as<crashm::Resp2>(*msg.payload)) return 1.0;
                if (msg.from == 1) return 0.9;  // the "missing" peer's answers
                return 0.05;
              });
        };
        return s;
      });
      table.add(fast, mean_cell(stats.q), mean_cell(stats.t),
                mean_cell(stats.m), stats.failures);
      bj.record("fast-cancel", fast ? "on" : "off", stats);
    }
    table.print();
    std::printf("shape: identical Q; fast-cancel releases the stage-3\n"
                "wait as soon as late answers cover it, cutting T — the\n"
                "Theorem 2.13 refinement made visible.\n");
  }
  return 0;
}
