// Experiment S — substrate scaling sweep. Not a paper artifact: this bench
// pins the simulation substrate itself (pooled 4-ary event heap, sparse
// link state, bucketed broadcast fan-out) against k, where the pre-rework
// substrate allocated Theta(k^2) link vectors up front and scheduled one
// engine event per broadcast recipient.
//
// Regenerated series:
//   (a) k-sweep {64, 256, 1024, 4096}: Algorithm 2 (crash_multi) under a
//       silent-prefix crash plan and FixedLatency (the bucketing-maximal
//       schedule), recording Q/T/M plus substrate-side metrics: engine
//       events, active directed links (vs the dense k^2), wall clock, and
//       peak RSS.
//   (b) sparse-vs-dense A/B at the small end of the sweep: identical Q/T/M
//       by the equivalence suite; the delta is events and wall clock only.
//
// ASYNCDR_SCALE_MAX_K caps the sweep (CI perf-smoke sets 256 and diffs the
// fresh subset against the committed full baseline via --subset).
//
// Q/T/M are per-seed deterministic and gated by compare_bench.py; wall_ms
// and rss_mb are machine-dependent diagnostics the comparator ignores.
#include <malloc.h>
#include <sys/resource.h>

// asyncdr-lint: allow(DR001) the bench measures the substrate's real
// wall-clock cost; virtual time cannot observe it. Nothing in the measured
// runs reads this clock.
#include <chrono>
#include <fstream>

#include "bench_common.hpp"

using namespace asyncdr;
using namespace asyncdr::bench;
using namespace asyncdr::proto;

namespace {

struct ScalePoint {
  dr::RunReport report;
  double wall_ms = 0;
  double active_links = 0;
  double rss_mb = 0;  ///< per-point VmHWM, read right after the run
};

/// Resets the kernel's resident-set high-water mark (Linux: "5" into
/// /proc/self/clear_refs) so every sweep point reports ITS peak, not the
/// process-lifetime max. Freed allocator arenas are trimmed first so one
/// point's retained heap does not floor the next point's reading.
void reset_peak_rss() {
  malloc_trim(0);
  std::ofstream f("/proc/self/clear_refs");
  if (f) f << "5\n";
}

double peak_rss_mb() {
  std::ifstream f("/proc/self/status");
  std::string line;
  while (std::getline(f, line)) {
    if (line.rfind("VmHWM:", 0) == 0) {
      return std::strtod(line.c_str() + 6, nullptr) / 1024.0;  // kB
    }
  }
  rusage usage{};  // non-Linux fallback: process-lifetime peak
  getrusage(RUSAGE_SELF, &usage);
  return static_cast<double>(usage.ru_maxrss) / 1024.0;
}

Scenario scale_scenario(std::size_t k, std::uint64_t seed,
                        sim::Network::LinkMode mode) {
  Scenario s;
  // n is deliberately modest: wall clock is dominated by protocol-side
  // payload work (k^2 block transfers of n/k bits each), and this sweep
  // measures the substrate, not the protocol. The event budget and link
  // state it exercises depend on k, not n.
  s.cfg = dr::Config{.n = 1 << 13, .k = k, .beta = 0.125,
                     .message_bits = 1024, .seed = seed};
  s.honest = make_crash_multi();
  s.crashes = adv::CrashPlan::silent_prefix(s.cfg.max_faulty());
  // FixedLatency collapses every broadcast's arrivals onto one instant —
  // the schedule where bucketed fan-out matters most.
  s.latency = fixed_latency(1.0);
  s.instrument = [mode](dr::World& world) {
    world.network().set_link_mode(mode);
  };
  return s;
}

ScalePoint run_point(std::size_t k, std::uint64_t seed,
                     sim::Network::LinkMode mode) {
  ScalePoint point;
  Scenario s = scale_scenario(k, seed, mode);
  s.post_run = [&point](dr::World& world, const dr::RunReport&) {
    point.active_links =
        static_cast<double>(world.network().active_links());
  };
  // asyncdr-lint: allow(DR001) timing the run from outside, see header.
  const auto start = std::chrono::steady_clock::now();
  point.report = run_scenario(s);
  // asyncdr-lint: allow(DR001) timing the run from outside, see header.
  const auto stop = std::chrono::steady_clock::now();
  point.wall_ms =
      std::chrono::duration<double, std::milli>(stop - start).count();
  return point;
}

RepeatStats as_stats(const ScalePoint& point) {
  RepeatStats stats;
  stats.runs = 1;
  if (!point.report.ok()) {
    stats.failures = 1;
    return stats;
  }
  stats.q.add(static_cast<double>(point.report.query_complexity));
  stats.t.add(point.report.time_complexity);
  stats.m.add(static_cast<double>(point.report.message_complexity));
  return stats;
}

std::size_t max_k_cap() {
  const char* cap = std::getenv("ASYNCDR_SCALE_MAX_K");
  if (cap == nullptr || *cap == '\0') return ~std::size_t{0};
  return static_cast<std::size_t>(std::strtoull(cap, nullptr, 10));
}

/// One sweep point as the campaign sees it.
struct GridEntry {
  std::string section;
  std::string label;
  std::size_t k = 0;
  std::uint64_t seed = 0;
  sim::Network::LinkMode mode = sim::Network::LinkMode::kSparse;
};

}  // namespace

int main(int argc, char** argv) {
  banner("S — substrate scaling sweep (not a paper artifact)",
         "large-k runs within the default event budget; sparse links + "
         "bucketed broadcast vs the dense reference");
  BenchJson bj("scale");
  const std::size_t cap = max_k_cap();

  // The sweep grid, in mandatory execution order. S2 runs first: the A/B
  // wall-clock comparison is meaningless if the sparse run inherits the
  // allocator state the big S1 points leave behind.
  std::vector<GridEntry> grid;
  if (64 <= cap) {
    grid.push_back({"S2", "sparse", 64, 564, sim::Network::LinkMode::kSparse});
    grid.push_back({"S2", "dense", 64, 564, sim::Network::LinkMode::kDense});
  }
  for (std::size_t k : {64u, 256u, 1024u, 4096u}) {
    if (k > cap) continue;
    grid.push_back({"S1", "k=" + std::to_string(k), k, 500 + k,
                    sim::Network::LinkMode::kSparse});
  }

  // The sweep runs over the campaign substrate for its telemetry (event
  // stream, summary, progress line), pinned to ONE worker: per-point RSS
  // accounting (clear_refs reset before, VmHWM read after) and the
  // allocator-state ordering above only mean something when points execute
  // serially in grid order — a single worker drains the cursor 0..total-1.
  std::vector<ScalePoint> points(grid.size());
  if (!grid.empty()) {
    campaign::CampaignOptions copts;
    copts.name = "scale";
    copts.total = grid.size();
    copts.threads = 1;
    copts.seed_base = grid.front().seed;
    copts.seed_fn = [&grid](std::size_t i) { return grid[i].seed; };
    copts.telemetry = bench_telemetry("scale", argc, argv);
    campaign::Campaign camp(std::move(copts));
    camp.run([&](std::size_t i, std::uint64_t seed) {
      reset_peak_rss();
      points[i] = run_point(grid[i].k, seed, grid[i].mode);
      points[i].rss_mb = peak_rss_mb();
      campaign::RunOutcome out;
      out.label = grid[i].section + "/" + grid[i].label;
      out.status = points[i].report.ok() ? obs::RunStatus::kOk
                                         : obs::RunStatus::kFailed;
      if (!points[i].report.ok()) {
        out.detail = "run failed (predicate or budget)";
      }
      out.report = points[i].report;
      return out;
    });
    camp.finish();
  }

  const auto point_for = [&](const std::string& section,
                             const std::string& label) -> const ScalePoint* {
    for (std::size_t i = 0; i < grid.size(); ++i) {
      if (grid[i].section == section && grid[i].label == label) {
        return &points[i];
      }
    }
    return nullptr;
  };

  section("S2: sparse vs dense A/B, k=64 (identical Q/T/M; events differ)");
  {
    Table table({"mode", "Q", "T", "M", "events", "wall ms", "ok"});
    for (const bool dense : {false, true}) {
      const char* label = dense ? "dense" : "sparse";
      const ScalePoint* point = point_for("S2", label);
      if (point == nullptr) break;
      const RepeatStats stats = as_stats(*point);
      table.add(label, mean_cell(stats.q), mean_cell(stats.t),
                mean_cell(stats.m), point->report.events, point->wall_ms,
                point->report.ok());
      bj.record("S2", label, stats);
      bj.record_value("S2-substrate", label, "events",
                      static_cast<double>(point->report.events));
    }
    table.print();
    std::printf("shape: byte-identical complexities (the A/B equivalence\n"
                "suite pins full traces); the dense mode schedules one\n"
                "event per broadcast recipient, the sparse mode one per\n"
                "arrival-time bucket.\n");
  }

  section("S1: crash_multi k-sweep, n=8192, beta=0.125, silent prefix");
  {
    Table table({"k", "Q", "T", "M", "events", "active links", "k^2",
                 "wall ms", "peak RSS MB", "ok"});
    for (std::size_t k : {64u, 256u, 1024u, 4096u}) {
      if (k > cap) {
        std::printf("(k=%zu skipped: ASYNCDR_SCALE_MAX_K=%zu)\n", k, cap);
        continue;
      }
      const std::string label = "k=" + std::to_string(k);
      const ScalePoint* point = point_for("S1", label);
      if (point == nullptr) continue;
      const RepeatStats stats = as_stats(*point);
      table.add(k, mean_cell(stats.q), mean_cell(stats.t), mean_cell(stats.m),
                point->report.events, point->active_links,
                static_cast<double>(k) * static_cast<double>(k),
                point->wall_ms, point->rss_mb, point->report.ok());
      bj.record("S1", label, stats);
      bj.record_value("S1-substrate", label, "events",
                      static_cast<double>(point->report.events));
      bj.record_value("S1-substrate", label, "active_links",
                      point->active_links);
      // Machine-dependent; recorded for the EXPERIMENTS.md table, ignored
      // by the comparator.
      bj.record_value("S1-wall", label, "wall_ms", point->wall_ms);
      bj.record_value("S1-rss", label, "rss_mb", point->rss_mb);
    }
    table.print();
    std::printf("shape: events stays far below the per-recipient count\n"
                "(bucketed broadcast), and the run completes within the\n"
                "default %zu-event budget at every k.\n",
                sim::Engine::kDefaultEventBudget);
  }
  return 0;
}
