// Scenario example: a price-feed blockchain oracle (Section 4).
//
// Twelve exchanges publish a 64-cell price array; three are malicious and
// publish garbage. A committee of 32 oracle nodes (some of them also
// malicious) must post one array on-chain whose every cell lies within the
// honest exchanges' range (the ODD guarantee).
//
// We run the collection step both ways — every node reading 2*psi*m+1 full
// exchanges (Theorem 4.1), vs per-exchange Download among the committee
// (Theorem 4.2) — and compare the per-node query bill and the published
// medians.
//
//   build/examples/oracle_demo
#include <cstdio>

#include "common/table.hpp"
#include "oracle/odc.hpp"
#include "protocols/runner.hpp"

int main() {
  using namespace asyncdr;

  oracle::SourceBank::Spec spec;
  spec.sources = 12;
  spec.cells = 64;
  spec.value_bits = 16;
  spec.psi = 0.25;
  spec.noise = 3;
  spec.seed = 7;
  const auto bank = oracle::SourceBank::build(spec);

  std::printf("exchanges: %zu (%zu malicious), cells: %zu x %zu bits\n",
              bank.count(), bank.byzantine_count(), spec.cells,
              spec.value_bits);

  const auto naive = oracle::run_naive_odc(bank, /*nodes=*/32);

  oracle::DownloadOdcOptions options;
  options.node_cfg = dr::Config{.n = 1, .k = 32, .beta = 0.2,
                                .message_bits = 4096, .seed = 21};
  options.honest = proto::make_committee();
  options.byzantine =
      proto::make_committee_liar(proto::CommitteeLiarPeer::Mode::kFlipAll);
  options.byz_nodes =
      proto::pick_faulty(options.node_cfg, options.node_cfg.max_faulty());

  const auto download = oracle::run_download_odc(bank, options);

  Table table({"collection scheme", "bits queried/node (max)",
               "total bits from exchanges", "ODD satisfied", "failures"});
  table.add("naive reads (Thm 4.1)", naive.max_node_query_bits,
            naive.total_query_bits, naive.odd_satisfied, std::size_t{0});
  table.add("Download-based (Thm 4.2)", download.max_node_query_bits,
            download.total_query_bits, download.odd_satisfied,
            download.download_failures);
  table.print();

  // Show a few published cells next to the honest range.
  std::printf("\nsample of the published feed (download-based, node 0):\n");
  Table feed({"cell", "published", "honest range", "in range"});
  for (std::size_t c = 0; c < 6; ++c) {
    const auto [lo, hi] = bank.honest_range(c);
    const auto v = download.published.at(0).at(c);
    feed.add(c, static_cast<long long>(v),
             std::to_string(lo) + " .. " + std::to_string(hi),
             v >= lo && v <= hi);
  }
  feed.print();

  std::printf("\nimprovement: %.1fx fewer source bits per node, identical\n"
              "ODD guarantee — Section 4's point in one table.\n",
              static_cast<double>(naive.max_node_query_bits) /
                  static_cast<double>(
                      std::max<std::uint64_t>(download.max_node_query_bits, 1)));
  return naive.ok() && download.ok() ? 0 : 1;
}
