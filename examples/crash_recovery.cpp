// Scenario example: a firmware-distribution cluster.
//
// A fleet of 24 edge nodes must replicate a 32 KiBit firmware image from a
// metered origin server (every fetched bit costs money — the DR model's
// expensive source). Nodes coordinate over a flaky internal network with no
// timing guarantees, and during the rollout machines die: some silently at
// boot, some mid-broadcast after pushing a few packets, some late.
//
// The example walks the same rollout through three fault intensities and
// prints what each node paid, demonstrating the paper's headline crash
// result: cost stays near n/((1-beta)k) no matter how hostile the timing.
//
//   build/examples/crash_recovery
#include <cstdio>

#include "common/table.hpp"
#include "protocols/bounds.hpp"
#include "protocols/runner.hpp"

int main() {
  using namespace asyncdr;

  constexpr std::size_t kImageBits = 1 << 15;
  constexpr std::size_t kNodes = 24;

  std::printf("firmware image: %zu bits, fleet: %zu nodes\n\n", kImageBits,
              kNodes);

  Table table({"failed nodes", "crash pattern", "bits fetched/node (max)",
               "theorem bound", "origin load (total bits)", "rollout ok"});

  struct Wave {
    const char* pattern;
    double beta;
    int style;
  };
  for (const Wave& wave : {Wave{"none", 0.0, 0},
                           Wave{"boot failures", 0.25, 1},
                           Wave{"mid-broadcast power loss", 0.5, 2},
                           Wave{"rolling outage", 0.75, 3}}) {
    proto::Scenario scenario;
    scenario.cfg = dr::Config{.n = kImageBits, .k = kNodes, .beta = wave.beta,
                              .message_bits = 2048, .seed = 99};
    scenario.honest = proto::make_crash_multi();
    scenario.latency = proto::uniform_latency(0.02, 1.0);

    Rng rng(17);
    const std::size_t t = scenario.cfg.max_faulty();
    switch (wave.style) {
      case 0: break;
      case 1: scenario.crashes = adv::CrashPlan::silent_prefix(t); break;
      case 2:
        scenario.crashes =
            adv::CrashPlan::partial_broadcast(scenario.cfg, rng, t, 4);
        break;
      case 3:
        scenario.crashes =
            adv::CrashPlan::staggered(scenario.cfg, rng, t, 3.0);
        break;
    }

    const dr::RunReport report = proto::run_scenario(scenario);
    table.add(t, wave.pattern, report.query_complexity,
              proto::bounds::crash_multi_q(scenario.cfg),
              static_cast<std::size_t>(report.total_queries), report.ok());
  }
  table.print();

  std::printf(
      "\nwithout coordination every node would fetch the full %zu bits;\n"
      "with Algorithm 2 the per-node bill stays near image/(healthy nodes)\n"
      "even when 3/4 of the fleet dies at adversarial moments.\n",
      kImageBits);
  return 0;
}
