// Quickstart: the smallest complete use of the asyncdr public API.
//
// We build a DR-model instance (k peers, a trusted n-bit source), run the
// paper's crash-tolerant Download protocol (Algorithm 2 / Theorem 2.13)
// while half the peers crash, and check that every surviving peer
// reconstructed the array exactly — at a per-peer query cost near the
// optimal n / ((1-beta) k) instead of the naive n.
//
//   build/examples/quickstart
#include <cstdio>

#include "protocols/bounds.hpp"
#include "protocols/runner.hpp"

int main() {
  using namespace asyncdr;

  // 1. The model: 64 KiBit array, 16 peers, up to half of them may crash,
  //    messages of up to 1024 bits, everything seeded (reruns reproduce).
  proto::Scenario scenario;
  scenario.cfg = dr::Config{
      .n = 1 << 16, .k = 16, .beta = 0.5, .message_bits = 1024, .seed = 2024};

  // 2. The protocol: every honest peer runs Algorithm 2.
  scenario.honest = proto::make_crash_multi();

  // 3. The adversary: crash the full fault budget at random times, some of
  //    them mid-broadcast, and deliver messages with adversarial delays.
  Rng adversary(7);
  scenario.crashes = adv::CrashPlan::random(
      scenario.cfg, adversary, scenario.cfg.max_faulty(), /*horizon=*/10.0);
  scenario.latency = proto::uniform_latency(0.05, 1.0);

  // 4. Run and inspect.
  const dr::RunReport report = proto::run_scenario(scenario);

  std::printf("instance : %s\n", scenario.cfg.to_string().c_str());
  std::printf("crashes  : %s\n", scenario.crashes.to_string().c_str());
  std::printf("verdict  : %s\n", report.to_string().c_str());
  std::printf("query complexity : %zu bits/peer (naive would be %zu; "
              "theorem bound %zu)\n",
              report.query_complexity, scenario.cfg.n,
              proto::bounds::crash_multi_q(scenario.cfg));
  std::printf("time / messages  : T=%.1f, M=%llu unit messages\n",
              report.time_complexity,
              static_cast<unsigned long long>(report.message_complexity));

  return report.ok() ? 0 : 1;
}
