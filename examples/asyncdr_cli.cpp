// asyncdr_cli — run any protocol/adversary combination from the command
// line and print the run report. The "downstream user" tool: reproduce any
// experiment point without writing C++.
//
//   asyncdr_cli --protocol crash_multi --n 65536 --k 32 --beta 0.5
//               --adversary random --seed 7 --repeats 3
//
//   --protocol  naive | crash_one | crash_multi | committee |
//               two_cycle | multi_cycle
//   --adversary none | silent | random | staggered | partial |
//               byz_silent | byz_liar | byz_stuff | byz_comb | byz_equiv |
//               byz_rush | byz_garbage
//   --latency   fixed | uniform | seniority
//   --n --k --beta --B --seed --repeats --concentration
//   --trace N   print the first N lines of the execution trace (rep 0)
//   --phases 1  print the per-phase Q/T/M breakdown table (rep 0)
//
// Structured trace export (see DESIGN.md, "Observability"):
//
//   asyncdr_cli trace --protocol committee --seed 1 --format perfetto
//               --out committee.trace.json
//
//   --format perfetto | jsonl   Chrome trace-event JSON (load in Perfetto /
//               chrome://tracing) or one JSON object per event
//   --include-messages 1        add per-message instants to the timeline
//   --out FILE                  default: stdout
//   plus all single-run flags above (protocol, adversary, n, k, ...)
//   Perfetto exports include the critical path as flow events arcing
//   across the peer tracks.
//
// Critical-path analysis (see DESIGN.md, "Causal analysis"):
//
//   asyncdr_cli critpath --protocol committee --adversary byz_silent
//
//   runs once with tracing enabled and prints the happens-before chain
//   realizing the run's T, attributed per phase / peer / edge kind, with
//   the reconciliation verdict (path length == T exactly).
//   --format text | json        text tree (default) or JSON
//   --max-steps N               path steps rendered in text mode (def. 40)
//   --out FILE                  default: stdout
//   Exit status: 0 iff the run satisfied the Download predicate AND the
//   path reconciled against the reported T.
//
// Metrics snapshot:
//
//   asyncdr_cli metrics --protocol crash_multi --adversary random --out m.json
//
//   runs once with the standard collector attached and emits the
//   asyncdr-metrics-v1 JSON snapshot (counters/gauges/histograms).
//
// Chaos sweeps (see DESIGN.md, "Chaos layer"):
//
//   asyncdr_cli chaos --seeds 200
//   asyncdr_cli chaos --protocols committee --seeds 50
//               --inject-bug committee-threshold
//
//   --protocols  comma-separated registry names (default: the deterministic
//                grid naive,crash_one,crash_multi,committee)
//   --seeds --seed-base --threads --max-events
//   --n-cap --k-cap --fault-cap --latency-spread   sampling caps (the knobs
//                the shrinker tightens; a shrunk repro is replayed by
//                pasting its emitted flags here)
//   --beyond-model 1    add duplication/burst stressors (degradation mode)
//   --recovery 1        crash-recovery cases on recoverable protocols
//                       (restarts, crash-point kills, journal corruption)
//   --inject-bug committee-threshold   arm the planted off-by-one
//   --no-shrink 1       report failures without shrinking them
//   --verbose 1         list every case, not just failures
//   --progress 1        live stderr progress line (runs, rate, ETA, worst)
//   --events FILE       append-only JSONL campaign event stream
//   --summary FILE      deterministic campaign summary JSON
//   --timing 1          add the machine-dependent timing section to --summary
//   --artifact-dir DIR  write each shrunk failure's metrics snapshot to
//                       DIR/chaos_metrics_<i>.json plus its critical-path
//                       analysis to DIR/chaos_critpath_<i>.{txt,json}
//                       (CI uploads these)
//
// Exit status: 0 if the sweep had no violations, 1 otherwise.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <set>
#include <map>
#include <string>

#include "chaos/runner.hpp"
#include "common/table.hpp"
#include "obs/collect.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "protocols/bounds.hpp"
#include "protocols/runner.hpp"

namespace {

using namespace asyncdr;

[[noreturn]] void usage(const char* msg) {
  std::fprintf(stderr, "error: %s\nsee the header of examples/asyncdr_cli.cpp "
               "for flags\n", msg);
  std::exit(2);
}

struct Args {
  std::map<std::string, std::string> kv;

  std::string get(const std::string& key, const std::string& fallback) const {
    const auto it = kv.find(key);
    return it == kv.end() ? fallback : it->second;
  }
  std::size_t get_size(const std::string& key, std::size_t fallback) const {
    const auto it = kv.find(key);
    return it == kv.end() ? fallback
                          : static_cast<std::size_t>(std::stoull(it->second));
  }
  double get_double(const std::string& key, double fallback) const {
    const auto it = kv.find(key);
    return it == kv.end() ? fallback : std::stod(it->second);
  }
};

Args parse(int argc, char** argv, int start = 1) {
  Args args;
  for (int i = start; i < argc; ++i) {
    const std::string flag = argv[i];
    if (flag.rfind("--", 0) != 0) usage(("unexpected argument: " + flag).c_str());
    if (i + 1 >= argc) usage(("missing value for " + flag).c_str());
    args.kv[flag.substr(2)] = argv[++i];
  }
  return args;
}

/// The single-run flags resolved into a ready-to-run Scenario. Shared by the
/// default run path and the trace/metrics subcommands so a timeline or a
/// metrics snapshot always describes exactly the run the flags name.
struct SpecResult {
  proto::Scenario scenario;
  std::size_t bound = 0;
  std::string protocol;
  std::string adversary;
  std::string latency;
};

SpecResult build_scenario(const Args& args, std::size_t rep) {
  SpecResult out;
  dr::Config cfg;
  cfg.n = args.get_size("n", 1 << 14);
  cfg.k = args.get_size("k", 32);
  cfg.beta = args.get_double("beta", 0.25);
  cfg.message_bits = args.get_size("B", 1024);
  cfg.seed = args.get_size("seed", 1);
  const double concentration = args.get_double("concentration", 2.0);

  out.protocol = args.get("protocol", "crash_multi");
  out.adversary = args.get("adversary", "none");
  out.latency = args.get("latency", "uniform");

  proto::Scenario& s = out.scenario;
  s.cfg = cfg;
  s.cfg.seed = cfg.seed + rep;

  if (out.protocol == "naive") {
    s.honest = proto::make_naive();
    out.bound = proto::bounds::naive_q(cfg);
  } else if (out.protocol == "crash_one") {
    s.honest = proto::make_crash_one();
    out.bound = proto::bounds::crash_one_q(cfg);
  } else if (out.protocol == "crash_multi") {
    s.honest = proto::make_crash_multi();
    out.bound = proto::bounds::crash_multi_q(cfg);
  } else if (out.protocol == "committee") {
    s.honest = proto::make_committee();
    out.bound = proto::bounds::committee_q(cfg);
  } else if (out.protocol == "two_cycle") {
    s.honest = proto::make_two_cycle(concentration);
    out.bound = proto::bounds::two_cycle_q(
        cfg, proto::RandParams::derive(cfg, concentration));
  } else if (out.protocol == "multi_cycle") {
    s.honest = proto::make_multi_cycle(concentration);
    out.bound = proto::bounds::multi_cycle_q(
        cfg, proto::RandParams::derive(cfg, concentration));
  } else {
    usage(("unknown protocol: " + out.protocol).c_str());
  }

  const std::size_t t = s.cfg.max_faulty();
  Rng rng(s.cfg.seed * 31 + 5);
  if (out.adversary == "none") {
  } else if (out.adversary == "silent") {
    s.crashes = adv::CrashPlan::silent_prefix(t);
  } else if (out.adversary == "random") {
    s.crashes = adv::CrashPlan::random(s.cfg, rng, t, 10.0);
  } else if (out.adversary == "staggered") {
    s.crashes = adv::CrashPlan::staggered(s.cfg, rng, t, 2.0);
  } else if (out.adversary == "partial") {
    s.crashes = adv::CrashPlan::partial_broadcast(s.cfg, rng, t, 3);
  } else if (out.adversary.rfind("byz_", 0) == 0) {
    if (out.adversary == "byz_silent") {
      s.byzantine = proto::make_silent_byz();
    } else if (out.adversary == "byz_liar") {
      s.byzantine =
          proto::make_committee_liar(proto::CommitteeLiarPeer::Mode::kFlipAll);
    } else if (out.adversary == "byz_stuff") {
      s.byzantine = proto::make_vote_stuffer(concentration, 0);
    } else if (out.adversary == "byz_comb") {
      s.byzantine = proto::make_comb_stuffer(concentration, 0);
    } else if (out.adversary == "byz_equiv") {
      s.byzantine = proto::make_equivocator(concentration);
    } else if (out.adversary == "byz_rush") {
      s.byzantine = proto::make_quorum_rusher(concentration);
    } else if (out.adversary == "byz_garbage") {
      s.byzantine = proto::make_garbage_byz();
    } else {
      usage(("unknown adversary: " + out.adversary).c_str());
    }
    s.byz_ids = proto::pick_faulty(s.cfg, t, rep);
  } else {
    usage(("unknown adversary: " + out.adversary).c_str());
  }

  if (out.latency == "fixed") {
    s.latency = proto::fixed_latency(1.0);
  } else if (out.latency == "uniform") {
    s.latency = proto::uniform_latency(0.05, 1.0);
  } else if (out.latency == "seniority") {
    s.latency = proto::seniority_latency();
  } else {
    usage(("unknown latency: " + out.latency).c_str());
  }
  return out;
}

void write_output(const Args& args, const std::string& content) {
  const std::string out = args.get("out", "");
  if (out.empty()) {
    std::fwrite(content.data(), 1, content.size(), stdout);
    return;
  }
  std::ofstream f(out, std::ios::binary);
  if (!f) usage(("cannot open --out file: " + out).c_str());
  f << content;
  std::fprintf(stderr, "wrote %zu bytes to %s\n", content.size(), out.c_str());
}

int run_trace_export(int argc, char** argv) {
  const Args args = parse(argc, argv, 2);
  SpecResult spec = build_scenario(args, 0);
  const std::string format = args.get("format", "perfetto");
  if (format != "perfetto" && format != "jsonl") {
    usage(("unknown --format: " + format).c_str());
  }

  std::string rendered;
  spec.scenario.instrument = [](dr::World& world) { world.enable_trace(); };
  spec.scenario.post_run = [&](dr::World& world, const dr::RunReport& report) {
    if (format == "perfetto") {
      obs::PerfettoOptions opts;
      opts.include_messages = args.get_size("include-messages", 0) != 0;
      // Traced runs carry the critical path (run_scenario embeds it);
      // export its link edges as flow events over the peer tracks.
      if (report.critical_path.has_value()) {
        opts.critical_path = &*report.critical_path;
      }
      rendered = obs::to_perfetto(*world.trace(), report.phase_spans,
                                  world.config().k, opts)
                     .dump(1);
      rendered.push_back('\n');
    } else {
      rendered = obs::to_jsonl(*world.trace());
    }
  };
  proto::run_scenario(spec.scenario);
  write_output(args, rendered);
  return 0;
}

int run_critpath(int argc, char** argv) {
  const Args args = parse(argc, argv, 2);
  SpecResult spec = build_scenario(args, 0);
  const std::string format = args.get("format", "text");
  if (format != "text" && format != "json") {
    usage(("unknown --format: " + format).c_str());
  }

  spec.scenario.instrument = [](dr::World& world) { world.enable_trace(); };
  const dr::RunReport report = proto::run_scenario(spec.scenario);
  if (!report.critical_path.has_value()) {
    std::fprintf(stderr, "error: the run produced no critical path\n");
    return 1;
  }
  const obs::CriticalPathReport& path = *report.critical_path;

  std::string rendered;
  if (format == "json") {
    rendered = obs::critical_path_json(path).dump(1);
    rendered.push_back('\n');
  } else {
    rendered = report.to_string();
    rendered.push_back('\n');
    rendered += path.to_string(args.get_size("max-steps", 40));
    if (!report.stall.empty()) rendered += report.stall;
  }
  write_output(args, rendered);
  return report.ok() && path.reconciled ? 0 : 1;
}

int run_metrics(int argc, char** argv) {
  const Args args = parse(argc, argv, 2);
  SpecResult spec = build_scenario(args, 0);

  obs::MetricsRegistry registry;
  obs::RunMetricsCollector collector(registry);
  spec.scenario.instrument = [&](dr::World& world) { collector.attach(world); };
  spec.scenario.post_run = [&](dr::World&, const dr::RunReport& report) {
    collector.finalize(report);
  };
  const dr::RunReport report = proto::run_scenario(spec.scenario);
  write_output(args, registry.to_json_string(2) + "\n");
  return report.ok() ? 0 : 1;
}

int run_chaos(int argc, char** argv) {
  const Args args = parse(argc, argv, 2);

  chaos::SweepOptions options;
  const std::string protocols = args.get("protocols", "");
  for (std::size_t pos = 0; pos < protocols.size();) {
    const std::size_t comma = protocols.find(',', pos);
    const std::size_t end = comma == std::string::npos ? protocols.size() : comma;
    if (end > pos) options.protocols.push_back(protocols.substr(pos, end - pos));
    pos = end + 1;
  }
  options.seed_base = args.get_size("seed-base", options.seed_base);
  options.seeds = args.get_size("seeds", options.seeds);
  if (options.seeds == 0) usage("--seeds must be > 0");
  options.threads = args.get_size("threads", 0);
  options.max_events = args.get_size("max-events", options.max_events);
  options.shrink = args.get_size("no-shrink", 0) == 0;

  options.chaos.n_cap = args.get_size("n-cap", options.chaos.n_cap);
  options.chaos.k_cap = args.get_size("k-cap", options.chaos.k_cap);
  options.chaos.fault_cap = args.get_size("fault-cap", options.chaos.fault_cap);
  options.chaos.latency_spread =
      args.get_double("latency-spread", options.chaos.latency_spread);
  options.chaos.beyond_model = args.get_size("beyond-model", 0) != 0;
  options.chaos.recovery = args.get_size("recovery", 0) != 0;

  options.telemetry.progress = args.get_size("progress", 0) != 0;
  options.telemetry.events_path = args.get("events", "");
  options.telemetry.summary_path = args.get("summary", "");
  options.telemetry.include_timing = args.get_size("timing", 0) != 0;
  const std::string bug = args.get("inject-bug", "");
  if (bug == "committee-threshold") {
    options.chaos.inject_committee_bug = true;
  } else if (!bug.empty()) {
    usage(("unknown --inject-bug: " + bug).c_str());
  }

  for (const std::string& name : options.protocols) {
    if (chaos::find_protocol(name) == nullptr) {
      usage(("unknown chaos protocol: " + name).c_str());
    }
  }

  const chaos::SweepReport report = chaos::ChaosRunner(options).run();
  std::printf("%s", report.to_string(args.get_size("verbose", 0) != 0).c_str());

  const std::string artifact_dir = args.get("artifact-dir", "");
  if (!artifact_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(artifact_dir, ec);
    if (ec) {
      std::fprintf(stderr, "warning: cannot create %s: %s\n",
                   artifact_dir.c_str(), ec.message().c_str());
    }
    const auto write_artifact = [](const std::string& path,
                                   const std::string& content,
                                   const char* what) {
      std::ofstream f(path, std::ios::binary);
      if (!f) {
        std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
        return;
      }
      f << content;
      std::fprintf(stderr, "wrote %s: %s\n", what, path.c_str());
    };
    for (std::size_t i = 0; i < report.repros.size(); ++i) {
      const chaos::ShrunkRepro& repro = report.repros[i];
      const std::string stem = artifact_dir + "/chaos_";
      if (!repro.metrics_json.empty()) {
        write_artifact(stem + "metrics_" + std::to_string(i) + ".json",
                       repro.metrics_json + "\n", "failure metrics");
      }
      if (!repro.critpath_text.empty()) {
        write_artifact(stem + "critpath_" + std::to_string(i) + ".txt",
                       repro.critpath_text, "failure critical path");
      }
      if (!repro.critpath_json.empty()) {
        write_artifact(stem + "critpath_" + std::to_string(i) + ".json",
                       repro.critpath_json, "failure critical path");
      }
    }
  }
  return report.failures.empty() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::strcmp(argv[1], "chaos") == 0) {
    return run_chaos(argc, argv);
  }
  if (argc > 1 && std::strcmp(argv[1], "trace") == 0) {
    return run_trace_export(argc, argv);
  }
  if (argc > 1 && std::strcmp(argv[1], "critpath") == 0) {
    return run_critpath(argc, argv);
  }
  if (argc > 1 && std::strcmp(argv[1], "metrics") == 0) {
    return run_metrics(argc, argv);
  }
  const Args args = parse(argc, argv);
  const std::size_t repeats = args.get_size("repeats", 1);
  const std::size_t trace_lines = args.get_size("trace", 0);
  const bool show_phases = args.get_size("phases", 0) != 0;

  Table table({"rep", "ok", "Q", "Q bound", "T", "M", "events"});
  std::size_t failures = 0;
  SpecResult spec;
  for (std::size_t rep = 0; rep < repeats; ++rep) {
    spec = build_scenario(args, rep);
    if (rep == 0 && trace_lines > 0) {
      spec.scenario.instrument = [](dr::World& world) { world.enable_trace(); };
      spec.scenario.post_run = [&](dr::World& world, const dr::RunReport&) {
        std::printf("%s", world.trace()->render(sim::kNoPeer, trace_lines).c_str());
      };
    }
    const dr::RunReport report = proto::run_scenario(spec.scenario);
    if (rep == 0 && show_phases) {
      std::printf("%s", report.phase_table().c_str());
    }
    if (!report.ok()) ++failures;
    table.add(rep, report.ok(), report.query_complexity, spec.bound,
              report.time_complexity, report.message_complexity,
              report.events);
  }

  std::printf("%s  protocol=%s adversary=%s latency=%s\n",
              spec.scenario.cfg.to_string().c_str(), spec.protocol.c_str(),
              spec.adversary.c_str(), spec.latency.c_str());
  table.print();
  return failures == 0 ? 0 : 1;
}
