// asyncdr_cli — run any protocol/adversary combination from the command
// line and print the run report. The "downstream user" tool: reproduce any
// experiment point without writing C++.
//
//   asyncdr_cli --protocol crash_multi --n 65536 --k 32 --beta 0.5
//               --adversary random --seed 7 --repeats 3
//
//   --protocol  naive | crash_one | crash_multi | committee |
//               two_cycle | multi_cycle
//   --adversary none | silent | random | staggered | partial |
//               byz_silent | byz_liar | byz_stuff | byz_comb | byz_equiv |
//               byz_rush | byz_garbage
//   --latency   fixed | uniform | seniority
//   --n --k --beta --B --seed --repeats --concentration
//   --trace N   print the first N lines of the execution trace (rep 0)
//
// Chaos sweeps (see DESIGN.md, "Chaos layer"):
//
//   asyncdr_cli chaos --seeds 200
//   asyncdr_cli chaos --protocols committee --seeds 50
//               --inject-bug committee-threshold
//
//   --protocols  comma-separated registry names (default: the deterministic
//                grid naive,crash_one,crash_multi,committee)
//   --seeds --seed-base --threads --max-events
//   --n-cap --k-cap --fault-cap --latency-spread   sampling caps (the knobs
//                the shrinker tightens; a shrunk repro is replayed by
//                pasting its emitted flags here)
//   --beyond-model 1    add duplication/burst stressors (degradation mode)
//   --inject-bug committee-threshold   arm the planted off-by-one
//   --no-shrink 1       report failures without shrinking them
//   --verbose 1         list every case, not just failures
//
// Exit status: 0 if the sweep had no violations, 1 otherwise.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <set>
#include <map>
#include <string>

#include "chaos/runner.hpp"
#include "common/table.hpp"
#include "protocols/bounds.hpp"
#include "protocols/runner.hpp"

namespace {

using namespace asyncdr;

[[noreturn]] void usage(const char* msg) {
  std::fprintf(stderr, "error: %s\nsee the header of examples/asyncdr_cli.cpp "
               "for flags\n", msg);
  std::exit(2);
}

struct Args {
  std::map<std::string, std::string> kv;

  std::string get(const std::string& key, const std::string& fallback) const {
    const auto it = kv.find(key);
    return it == kv.end() ? fallback : it->second;
  }
  std::size_t get_size(const std::string& key, std::size_t fallback) const {
    const auto it = kv.find(key);
    return it == kv.end() ? fallback
                          : static_cast<std::size_t>(std::stoull(it->second));
  }
  double get_double(const std::string& key, double fallback) const {
    const auto it = kv.find(key);
    return it == kv.end() ? fallback : std::stod(it->second);
  }
};

Args parse(int argc, char** argv, int start = 1) {
  Args args;
  for (int i = start; i < argc; ++i) {
    const std::string flag = argv[i];
    if (flag.rfind("--", 0) != 0) usage(("unexpected argument: " + flag).c_str());
    if (i + 1 >= argc) usage(("missing value for " + flag).c_str());
    args.kv[flag.substr(2)] = argv[++i];
  }
  return args;
}

int run_chaos(int argc, char** argv) {
  const Args args = parse(argc, argv, 2);

  chaos::SweepOptions options;
  const std::string protocols = args.get("protocols", "");
  for (std::size_t pos = 0; pos < protocols.size();) {
    const std::size_t comma = protocols.find(',', pos);
    const std::size_t end = comma == std::string::npos ? protocols.size() : comma;
    if (end > pos) options.protocols.push_back(protocols.substr(pos, end - pos));
    pos = end + 1;
  }
  options.seed_base = args.get_size("seed-base", options.seed_base);
  options.seeds = args.get_size("seeds", options.seeds);
  if (options.seeds == 0) usage("--seeds must be > 0");
  options.threads = args.get_size("threads", 0);
  options.max_events = args.get_size("max-events", options.max_events);
  options.shrink = args.get_size("no-shrink", 0) == 0;

  options.chaos.n_cap = args.get_size("n-cap", options.chaos.n_cap);
  options.chaos.k_cap = args.get_size("k-cap", options.chaos.k_cap);
  options.chaos.fault_cap = args.get_size("fault-cap", options.chaos.fault_cap);
  options.chaos.latency_spread =
      args.get_double("latency-spread", options.chaos.latency_spread);
  options.chaos.beyond_model = args.get_size("beyond-model", 0) != 0;
  const std::string bug = args.get("inject-bug", "");
  if (bug == "committee-threshold") {
    options.chaos.inject_committee_bug = true;
  } else if (!bug.empty()) {
    usage(("unknown --inject-bug: " + bug).c_str());
  }

  for (const std::string& name : options.protocols) {
    if (chaos::find_protocol(name) == nullptr) {
      usage(("unknown chaos protocol: " + name).c_str());
    }
  }

  const chaos::SweepReport report = chaos::ChaosRunner(options).run();
  std::printf("%s", report.to_string(args.get_size("verbose", 0) != 0).c_str());
  return report.failures.empty() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::strcmp(argv[1], "chaos") == 0) {
    return run_chaos(argc, argv);
  }
  const Args args = parse(argc, argv);

  dr::Config cfg;
  cfg.n = args.get_size("n", 1 << 14);
  cfg.k = args.get_size("k", 32);
  cfg.beta = args.get_double("beta", 0.25);
  cfg.message_bits = args.get_size("B", 1024);
  cfg.seed = args.get_size("seed", 1);
  const std::size_t repeats = args.get_size("repeats", 1);
  const double concentration = args.get_double("concentration", 2.0);

  const std::string protocol = args.get("protocol", "crash_multi");
  const std::string adversary = args.get("adversary", "none");
  const std::string latency = args.get("latency", "uniform");

  proto::PeerFactory honest;
  std::size_t bound = 0;
  if (protocol == "naive") {
    honest = proto::make_naive();
    bound = proto::bounds::naive_q(cfg);
  } else if (protocol == "crash_one") {
    honest = proto::make_crash_one();
    bound = proto::bounds::crash_one_q(cfg);
  } else if (protocol == "crash_multi") {
    honest = proto::make_crash_multi();
    bound = proto::bounds::crash_multi_q(cfg);
  } else if (protocol == "committee") {
    honest = proto::make_committee();
    bound = proto::bounds::committee_q(cfg);
  } else if (protocol == "two_cycle") {
    honest = proto::make_two_cycle(concentration);
    bound = proto::bounds::two_cycle_q(cfg,
                                       proto::RandParams::derive(cfg, concentration));
  } else if (protocol == "multi_cycle") {
    honest = proto::make_multi_cycle(concentration);
    bound = proto::bounds::multi_cycle_q(
        cfg, proto::RandParams::derive(cfg, concentration));
  } else {
    usage(("unknown protocol: " + protocol).c_str());
  }

  Table table({"rep", "ok", "Q", "Q bound", "T", "M", "events"});
  std::size_t failures = 0;
  for (std::size_t rep = 0; rep < repeats; ++rep) {
    proto::Scenario s;
    s.cfg = cfg;
    s.cfg.seed = cfg.seed + rep;
    s.honest = honest;

    const std::size_t t = s.cfg.max_faulty();
    Rng rng(s.cfg.seed * 31 + 5);
    if (adversary == "none") {
    } else if (adversary == "silent") {
      s.crashes = adv::CrashPlan::silent_prefix(t);
    } else if (adversary == "random") {
      s.crashes = adv::CrashPlan::random(s.cfg, rng, t, 10.0);
    } else if (adversary == "staggered") {
      s.crashes = adv::CrashPlan::staggered(s.cfg, rng, t, 2.0);
    } else if (adversary == "partial") {
      s.crashes = adv::CrashPlan::partial_broadcast(s.cfg, rng, t, 3);
    } else if (adversary.rfind("byz_", 0) == 0) {
      if (adversary == "byz_silent") {
        s.byzantine = proto::make_silent_byz();
      } else if (adversary == "byz_liar") {
        s.byzantine =
            proto::make_committee_liar(proto::CommitteeLiarPeer::Mode::kFlipAll);
      } else if (adversary == "byz_stuff") {
        s.byzantine = proto::make_vote_stuffer(concentration, 0);
      } else if (adversary == "byz_comb") {
        s.byzantine = proto::make_comb_stuffer(concentration, 0);
      } else if (adversary == "byz_equiv") {
        s.byzantine = proto::make_equivocator(concentration);
      } else if (adversary == "byz_rush") {
        s.byzantine = proto::make_quorum_rusher(concentration);
      } else if (adversary == "byz_garbage") {
        s.byzantine = proto::make_garbage_byz();
      } else {
        usage(("unknown adversary: " + adversary).c_str());
      }
      s.byz_ids = proto::pick_faulty(s.cfg, t, rep);
    } else {
      usage(("unknown adversary: " + adversary).c_str());
    }

    if (latency == "fixed") {
      s.latency = proto::fixed_latency(1.0);
    } else if (latency == "uniform") {
      s.latency = proto::uniform_latency(0.05, 1.0);
    } else if (latency == "seniority") {
      s.latency = proto::seniority_latency();
    } else {
      usage(("unknown latency: " + latency).c_str());
    }

    const std::size_t trace_lines = args.get_size("trace", 0);
    dr::RunReport report;
    if (trace_lines > 0 && rep == 0) {
      // Tracing needs direct World access; mirror run_scenario by hand.
      dr::World world(s.cfg, proto::random_input(s.cfg.n, s.cfg.seed));
      sim::Trace& trace = world.enable_trace();
      if (s.latency) world.network().set_latency_policy(s.latency(s.cfg));
      const std::set<sim::PeerId> byz(s.byz_ids.begin(), s.byz_ids.end());
      for (sim::PeerId id = 0; id < s.cfg.k; ++id) {
        if (byz.contains(id)) {
          world.set_peer(id, s.byzantine(s.cfg, id));
          world.mark_faulty(id);
        } else {
          world.set_peer(id, s.honest(s.cfg, id));
        }
      }
      s.crashes.apply(world);
      report = world.run();
      std::printf("%s", trace.render(sim::kNoPeer, trace_lines).c_str());
    } else {
      report = proto::run_scenario(s);
    }
    if (!report.ok()) ++failures;
    table.add(rep, report.ok(), report.query_complexity, bound,
              report.time_complexity, report.message_complexity,
              report.events);
  }

  std::printf("%s  protocol=%s adversary=%s latency=%s\n",
              cfg.to_string().c_str(), protocol.c_str(), adversary.c_str(),
              latency.c_str());
  table.print();
  return failures == 0 ? 0 : 1;
}
