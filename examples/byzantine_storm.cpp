// Scenario example: surviving a coordinated disinformation campaign.
//
// 192 light clients need a 16 KiBit data blob from a rate-limited registry.
// An eighth of them are compromised and coordinate: all of them "report"
// the same fabricated segment, trying to out-vote the honest reports (vote
// stuffing). The 2-cycle randomized protocol (Theorem 3.7) survives because
// votes only nominate CANDIDATES — conflicting candidates are resolved by
// querying the registry at the decision tree's separating indices, which
// the attackers cannot forge.
//
// The second act flips the balance: with a compromised MAJORITY, the
// Theorem 3.1/3.2 two-world attack defeats any protocol that leaves a
// single bit unqueried — we run that attack and watch it win.
//
//   build/examples/byzantine_storm
#include <cstdio>

#include "common/stats.hpp"
#include "dr/world.hpp"
#include "protocols/byz2cycle.hpp"
#include "protocols/lowerbound.hpp"
#include "protocols/runner.hpp"

int main() {
  using namespace asyncdr;
  using namespace asyncdr::proto;

  // ---- Act 1: minority compromise, the protocol wins. ----
  dr::Config cfg{.n = 1 << 14, .k = 192, .beta = 0.125,
                 .message_bits = 8192, .seed = 4242};
  const RandParams params = RandParams::derive(cfg, 2.0);
  std::printf("act 1: k=%zu clients, %zu compromised, %s\n", cfg.k,
              cfg.max_faulty(), params.to_string().c_str());

  dr::World world(cfg, random_input(cfg.n, cfg.seed));
  const auto byz = pick_faulty(cfg, cfg.max_faulty());
  const std::set<sim::PeerId> byz_set(byz.begin(), byz.end());
  for (sim::PeerId id = 0; id < cfg.k; ++id) {
    if (byz_set.contains(id)) {
      world.set_peer(id, std::make_unique<VoteStuffPeer>(params, 0));
      world.mark_faulty(id);
    } else {
      world.set_peer(id, std::make_unique<TwoCyclePeer>(params));
    }
  }
  const dr::RunReport report = world.run();

  Summary tree_queries;
  for (sim::PeerId id = 0; id < cfg.k; ++id) {
    if (byz_set.contains(id)) continue;
    const auto& peer = dynamic_cast<const TwoCyclePeer&>(world.peer(id));
    tree_queries.add(static_cast<double>(peer.tree_queries()));
  }
  std::printf("  verdict: %s\n", report.to_string().c_str());
  std::printf("  cost of the disinformation: %s separator queries/client\n"
              "  (vs %zu bits for the segment itself; naive download: %zu)\n",
              tree_queries.to_string().c_str(), cfg.n / params.segments,
              cfg.n);

  // ---- Act 2: majority compromise, every cheap protocol falls. ----
  dr::Config hostile{.n = 4096, .k = 10, .beta = 0.5, .message_bits = 1024,
                     .seed = 9};
  std::printf("\nact 2: beta = 1/2 — the Theorem 3.1 two-world attack\n");
  const auto attack =
      run_deterministic_majority_attack(hostile, make_crash_multi());
  std::printf("  victim queried %zu of %zu bits in the probe\n",
              attack.victim_probe_queries, hostile.n);
  std::printf("  adversary planted a flip at bit %zu; attack %s (%s)\n",
              attack.planted_bit,
              attack.succeeded ? "SUCCEEDED" : "failed",
              attack.detail.c_str());
  std::printf("  moral: past half compromise, only Q = n survives.\n");

  return report.ok() && attack.succeeded ? 0 : 1;
}
