#!/usr/bin/env python3
"""asyncdr model-conformance linter.

The simulator's claims (determinism per seed, exact query accounting, virtual
time) are semantic properties the compiler cannot check. This linter encodes
them as mechanical rules over the source tree so a violation fails CI instead
of silently invalidating every Theorem 1-6 experiment downstream.

Usage:
  asyncdr_lint.py [--root DIR] [paths...]     lint the tree (or given files)
  asyncdr_lint.py --list-rules                print the rule catalog
  asyncdr_lint.py --sarif out.sarif           also write SARIF 2.1.0
  asyncdr_lint.py --write-baseline            accept current findings
  asyncdr_lint.py --no-baseline               ignore the checked-in baseline

Exit status: 0 = clean (or all findings baselined), 1 = new findings,
2 = usage error.

Suppressions (always carry a reason):
  // asyncdr-lint: allow(DR004) rendering is this function's whole job
      ...on the offending line, or on the line directly above it.
  // asyncdr-lint: disable-file(DR010) reason...
      ...anywhere in the file, disables the rule for the whole file.

Zero third-party dependencies by design: this must run in any CI container
and inside ctest with nothing but a Python 3.8+ interpreter.
"""

import argparse
import fnmatch
import hashlib
import json
import os
import re
import signal
import sys

if hasattr(signal, "SIGPIPE"):  # `lint | head` should not traceback
    signal.signal(signal.SIGPIPE, signal.SIG_DFL)

# Directories scanned relative to the repo root. tests/ is deliberately out of
# scope: tests may poke internals (that is their job); the model only
# constrains the simulator, its workloads, and its front-ends.
SCAN_ROOTS = ("src", "bench", "examples")
CXX_EXTENSIONS = (".cpp", ".hpp", ".h", ".cc", ".hh")

ALLOW_RE = re.compile(r"asyncdr-lint:\s*allow\(([A-Z0-9, ]+)\)")
DISABLE_FILE_RE = re.compile(r"asyncdr-lint:\s*disable-file\(([A-Z0-9, ]+)\)")


class Finding:
    def __init__(self, rule, path, line, message, snippet=""):
        self.rule = rule  # rule id, e.g. "DR002"
        self.path = path  # repo-relative, forward slashes
        self.line = line  # 1-based; 0 = whole-file finding
        self.message = message
        self.snippet = snippet

    def fingerprint(self):
        """Stable identity for baselining: rule + file + content of the
        offending line (not its number, which shifts with every edit)."""
        digest = hashlib.sha256(self.snippet.strip().encode()).hexdigest()[:16]
        return f"{self.rule}:{self.path}:{digest}"

    def render(self):
        loc = f"{self.path}:{self.line}" if self.line else self.path
        return f"{loc}: {self.rule}: {self.message}"


class Rule:
    """One conformance rule. `check` is a callable(tree) -> [Finding]."""

    def __init__(self, rule_id, name, summary, rationale, check):
        self.id = rule_id
        self.name = name
        self.summary = summary
        self.rationale = rationale
        self.check = check


class SourceFile:
    def __init__(self, root, relpath):
        self.relpath = relpath.replace(os.sep, "/")
        self.abspath = os.path.join(root, relpath)
        with open(self.abspath, encoding="utf-8", errors="replace") as f:
            self.text = f.read()
        self.lines = self.text.splitlines()
        self.disabled_rules = set()
        for m in DISABLE_FILE_RE.finditer(self.text):
            self.disabled_rules.update(
                r.strip() for r in m.group(1).split(",") if r.strip())

    def allowed_on_line(self, lineno):
        """Rule ids suppressed on `lineno`: an allow() marker on the line
        itself, or anywhere in the contiguous comment block directly above
        it (so suppression reasons can span lines)."""
        allowed = set()

        def collect(text):
            m = ALLOW_RE.search(text)
            if m:
                allowed.update(
                    r.strip() for r in m.group(1).split(",") if r.strip())

        if 1 <= lineno <= len(self.lines):
            collect(self.lines[lineno - 1])
        cursor = lineno - 1
        while cursor >= 1 and self.lines[cursor - 1].lstrip().startswith("//"):
            collect(self.lines[cursor - 1])
            cursor -= 1
        return allowed

    def in_dir(self, prefix):
        return self.relpath.startswith(prefix)

    def matches(self, *globs):
        return any(fnmatch.fnmatch(self.relpath, g) for g in globs)


class Tree:
    def __init__(self, root, only=None):
        self.root = root
        self.files = []
        for scan_root in SCAN_ROOTS:
            top = os.path.join(root, scan_root)
            if not os.path.isdir(top):
                continue
            for dirpath, dirnames, filenames in os.walk(top):
                dirnames.sort()
                for name in sorted(filenames):
                    if not name.endswith(CXX_EXTENSIONS):
                        continue
                    rel = os.path.relpath(os.path.join(dirpath, name), root)
                    self.files.append(SourceFile(root, rel))
        if only:
            wanted = {os.path.normpath(p).replace(os.sep, "/") for p in only}
            self.files = [f for f in self.files if f.relpath in wanted]

    def by_path(self, relpath):
        for f in self.files:
            if f.relpath == relpath:
                return f
        return None


def strip_comments_and_strings(line):
    """Best-effort removal of string/char literals and // comments so rule
    regexes do not fire on prose. Block comments are handled per line (good
    enough for the idioms in this tree, where /* ... */ never spans code)."""
    out = []
    i, n = 0, len(line)
    in_str = in_chr = False
    while i < n:
        c = line[i]
        if in_str:
            if c == "\\":
                i += 2
                continue
            if c == '"':
                in_str = False
            i += 1
            continue
        if in_chr:
            if c == "\\":
                i += 2
                continue
            if c == "'":
                in_chr = False
            i += 1
            continue
        if c == '"':
            in_str = True
            out.append(" ")
            i += 1
            continue
        if c == "'":
            in_chr = True
            out.append(" ")
            i += 1
            continue
        if c == "/" and i + 1 < n and line[i + 1] == "/":
            break
        if c == "/" and i + 1 < n and line[i + 1] == "*":
            end = line.find("*/", i + 2)
            if end == -1:
                break
            i = end + 2
            continue
        out.append(c)
        i += 1
    return "".join(out)


def regex_rule(rule_id, pattern, message, *, include_dirs=SCAN_ROOTS,
               exempt_globs=()):
    """Builds a checker that flags every match of `pattern` on a
    comment/string-stripped line, honoring exemptions and suppressions."""
    compiled = re.compile(pattern)

    def check(tree):
        findings = []
        for f in tree.files:
            if not any(f.in_dir(d + "/") for d in include_dirs):
                continue
            if f.matches(*exempt_globs):
                continue
            if rule_id in f.disabled_rules:
                continue
            for lineno, raw in enumerate(f.lines, start=1):
                code = strip_comments_and_strings(raw)
                m = compiled.search(code)
                if not m:
                    continue
                if rule_id in f.allowed_on_line(lineno):
                    continue
                findings.append(Finding(
                    rule_id, f.relpath, lineno,
                    message.format(match=m.group(0).strip()), raw))
        return findings

    return check


# --- DR005 / DR006 / DR007 / DR009: structural rules -----------------------

def check_pragma_once(tree):
    findings = []
    for f in tree.files:
        if not f.relpath.endswith((".hpp", ".h", ".hh")):
            continue
        if "DR005" in f.disabled_rules:
            continue
        if "#pragma once" not in f.text:
            findings.append(Finding(
                "DR005", f.relpath, 1,
                "header lacks '#pragma once'", f.relpath))
    return findings


def check_include_hygiene(tree):
    findings = []
    quoted = re.compile(r'#\s*include\s+"([^"]+)"')
    angled = re.compile(r"#\s*include\s+<([^>]+)>")
    for f in tree.files:
        if "DR006" in f.disabled_rules:
            continue
        here = os.path.dirname(f.abspath)
        for lineno, raw in enumerate(f.lines, start=1):
            if "DR006" in f.allowed_on_line(lineno):
                continue
            m = quoted.search(raw)
            if m:
                inc = m.group(1)
                if ".." in inc.split("/"):
                    findings.append(Finding(
                        "DR006", f.relpath, lineno,
                        f'relative include "{inc}" escapes its directory; '
                        "include from the src/ root instead", raw))
                    continue
                src_rooted = os.path.join(tree.root, "src", inc)
                sibling = os.path.join(here, inc)
                if not (os.path.isfile(src_rooted) or os.path.isfile(sibling)):
                    findings.append(Finding(
                        "DR006", f.relpath, lineno,
                        f'quoted include "{inc}" resolves to no file under '
                        "src/ or the including directory (system headers use "
                        "<...>)", raw))
            m = angled.search(raw)
            if m and os.path.isfile(os.path.join(tree.root, "src", m.group(1))):
                findings.append(Finding(
                    "DR006", f.relpath, lineno,
                    f"project header <{m.group(1)}> included with angle "
                    'brackets; use "..." for repo headers', raw))
    return findings


def check_namespace(tree):
    findings = []
    for f in tree.files:
        if not f.in_dir("src/"):
            continue
        if "DR007" in f.disabled_rules:
            continue
        if "namespace asyncdr" not in f.text:
            findings.append(Finding(
                "DR007", f.relpath, 1,
                "src/ file declares nothing in namespace asyncdr", f.relpath))
    return findings


def check_phase_coverage(tree):
    """Every honest protocol peer registered through a factory in
    src/protocols/runner.cpp must open at least one accounting phase, or its
    Q/T/M silently lands in the catch-all and PR 2's per-phase reconciliation
    has a hole. Adversary peers (attacks*.cpp) are exempt: their costs are
    the adversary's, which the paper's complexity measures do not count."""
    findings = []
    runner = tree.by_path("src/protocols/runner.cpp")
    if runner is None:
        return findings
    if "DR009" in runner.disabled_rules:
        return findings
    classes = set(re.findall(r"std::make_unique<(\w+)>", runner.text))
    impl_files = [f for f in tree.files
                  if f.in_dir("src/protocols/") and f.relpath.endswith(".cpp")]
    for cls in sorted(classes):
        for f in impl_files:
            if f.matches("src/protocols/attacks*.cpp"):
                continue
            if not re.search(rf"\b{cls}::on_start\b", f.text):
                continue
            if "begin_phase(" not in f.text:
                lineno = next(
                    (i for i, l in enumerate(f.lines, start=1)
                     if f"{cls}::on_start" in l), 1)
                if "DR009" in f.disabled_rules:
                    continue
                if "DR009" in f.allowed_on_line(lineno):
                    continue
                findings.append(Finding(
                    "DR009", f.relpath, lineno,
                    f"protocol peer {cls} is registered in runner.cpp but "
                    "never calls begin_phase(); its Q/T/M would bypass the "
                    "per-phase reconciliation", f.lines[lineno - 1]))
    return findings


RULES = [
    Rule(
        "DR001", "wall-clock-time",
        "No wall-clock or OS time sources outside src/common/rng.*.",
        "The DR model runs on virtual sim::Time only. One std::chrono clock "
        "read mixed into protocol or substrate logic breaks bit-for-bit "
        "determinism per seed, and with it every shrunk chaos repro and "
        "golden accounting test.",
        regex_rule(
            "DR001",
            r"std::chrono::(steady_clock|system_clock|high_resolution_clock)"
            r"|\b(gettimeofday|clock_gettime|localtime|gmtime)\s*\("
            r"|\btime\s*\(\s*(NULL|nullptr|0)?\s*\)",
            "wall-clock time source '{match}' (virtual sim::Time only)",
            exempt_globs=("src/common/rng.*",)),
    ),
    Rule(
        "DR002", "ambient-randomness",
        "All randomness flows through the seeded asyncdr::Rng streams.",
        "Runs must be pure functions of (config, seed): the chaos shrinker, "
        "the two-world lower-bound adversary, and the bench baselines all "
        "rely on replaying a seed to reproduce the exact execution. "
        "std::random_device, rand(), or an ad-hoc mt19937 adds entropy the "
        "seed does not control.",
        regex_rule(
            "DR002",
            r"\b(s?rand|drand48|arc4random)\s*\("
            r"|std::random_device|\brandom_device\b|\bmt19937\b",
            "ambient randomness '{match}' (use asyncdr::Rng split streams)",
            exempt_globs=("src/common/rng.*",)),
    ),
    Rule(
        "DR003", "source-internals",
        "Source/ValueSource state mutation stays on the query-accounting "
        "path (src/dr/source.*, src/oracle/*).",
        "Every bit a peer learns from the external source must be accounted "
        "by Query — that is the quantity Theorems 1-6 bound. Code that swaps "
        "arrays, installs overlays, or resets counters from elsewhere can "
        "leak unaccounted bits; the two-world adversary constructions that "
        "legitimately need it carry explicit allow() annotations.",
        regex_rule(
            "DR003",
            r"\.\s*(set_data|set_overlay|reset_accounting"
            r"|enable_index_recording)\s*\("
            r"|\bsource\(\)\s*\.\s*data\s*\(\)",
            "source-internals access '{match}' outside the accounting path",
            include_dirs=("src", "bench", "examples"),
            exempt_globs=("src/dr/source.*", "src/oracle/*")),
    ),
    Rule(
        "DR004", "stdout-in-library",
        "No std::cout/printf in library code under src/.",
        "Library-side printing corrupts machine-readable output (the CLI "
        "pipes reports and JSON to stdout) and hides information from the "
        "structured report types tests assert on. Designated report "
        "renderers carry an allow() annotation.",
        regex_rule(
            "DR004",
            r"std::(cout|cerr)\b|\bprintf\s*\(|\bfprintf\s*\(\s*std(out|err)"
            r"|\bputs\s*\(",
            "direct console I/O '{match}' in library code",
            include_dirs=("src",)),
    ),
    Rule(
        "DR005", "pragma-once",
        "Every header carries #pragma once.",
        "A double-included header produces ODR spaghetti that surfaces as "
        "baffling link errors; one uniform guard style keeps the check "
        "mechanical.",
        check_pragma_once,
    ),
    Rule(
        "DR006", "include-hygiene",
        'Quoted includes resolve from the src/ root; system headers use <>.',
        "Includes that only resolve through accidental -I paths or ../ hops "
        "break as soon as a target's include dirs change; src/-rooted spelling "
        "keeps every header's location explicit and greppable.",
        check_include_hygiene,
    ),
    Rule(
        "DR007", "namespace",
        "All src/ code lives in namespace asyncdr.",
        "Global-namespace symbols collide with dependencies and make ADL "
        "surprises possible; the namespace is also what scopes the "
        "identifier-naming rules clang-tidy enforces.",
        check_namespace,
    ),
    Rule(
        "DR008", "raw-throw",
        "Use ASYNCDR_EXPECTS/ASYNCDR_INVARIANT instead of raw throw.",
        "Contract macros attach the failed expression and source location "
        "and funnel everything into asyncdr::contract_violation, which tests "
        "and the chaos runner catch by type. A raw throw bypasses that "
        "taxonomy (check.hpp itself is the single designated throw site).",
        regex_rule(
            "DR008",
            r"\bthrow\b",
            "raw '{match}' (use the ASYNCDR_* contract macros)",
            include_dirs=("src",),
            exempt_globs=("src/common/check.hpp",)),
    ),
    Rule(
        "DR009", "phase-accounting",
        "Registered protocol peers open at least one begin_phase().",
        "RunReport's per-phase Q/T/M breakdown reconciles exactly against "
        "run totals; a protocol that never opens a phase dumps its whole "
        "cost into the catch-all and the reconciliation test loses its "
        "teeth for that protocol.",
        check_phase_coverage,
    ),
    Rule(
        "DR010", "threads-outside-substrate",
        "Threading primitives only in src/campaign/, src/chaos/ and "
        "src/common/threads.*.",
        "A dr::World is single-threaded by design — determinism comes from "
        "a sequential event loop. Parallelism belongs in the sweep substrate "
        "that fans out *independent* worlds; a mutex or thread inside model "
        "code is either a data race waiting for TSan or hidden "
        "schedule-dependence. Shared read-only caches that genuinely need a "
        "lock carry an allow() annotation.",
        regex_rule(
            "DR010",
            r"std::(jthread|thread|mutex|scoped_lock|lock_guard|unique_lock"
            r"|shared_mutex|condition_variable|atomic)\b|\bstd::async\b",
            "threading primitive '{match}' outside the sweep substrate",
            include_dirs=("src",),
            exempt_globs=("src/campaign/*", "src/chaos/*",
                          "src/common/threads.*")),
    ),
    Rule(
        "DR011", "persistence-outside-journal",
        "No direct filesystem or stream persistence in src/ outside "
        "dr::Journal (src/dr/journal.*).",
        "Crash-recovery durability flows through the dr::Journal write-ahead "
        "log, whose backing store is sim-owned and deterministic. An ad-hoc "
        "fstream or fopen in model code introduces ambient filesystem state "
        "the seed does not control: restarts would replay host files instead "
        "of the journal, and chaos repros would stop being pure functions of "
        "(config, seed). Bench and CLI layers write reports freely — the "
        "rule guards src/ only.",
        regex_rule(
            "DR011",
            r"std::(o|i|w)?fstream\b|\bstd::filesystem\b"
            r"|\b(fopen|freopen|fwrite|fread|tmpfile|mkstemp)\s*\(",
            "direct persistence '{match}' outside dr::Journal",
            include_dirs=("src",),
            exempt_globs=("src/dr/journal.*",)),
    ),
    Rule(
        "DR012", "cross-world-sharing",
        "Campaign/sweep worker code must not share mutable world state "
        "(dr::World, sim::Engine, sim::Network, dr::Peer) across runs.",
        "The campaign substrate's determinism contract (same seed => "
        "byte-identical summary at any thread count) holds because every "
        "run builds its own world and workers share only the claim cursor "
        "and their private collector shards. A static world, or shared "
        "ownership of one, couples runs through scheduling: Q/T/M would "
        "depend on which worker ran first, and same-seed repros would stop "
        "reproducing.",
        regex_rule(
            "DR012",
            r"\bstatic\s+(?!const\b|constexpr\b)[^;=(]*"
            r"\b(dr::World|sim::Engine|sim::Network|dr::Peer)\b"
            r"|\bstd::shared_ptr<\s*(dr::World|sim::Engine|sim::Network"
            r"|dr::Peer)\b",
            "cross-world mutable sharing '{match}' in sweep code (each "
            "campaign run owns its world)",
            include_dirs=("src/campaign", "src/chaos")),
    ),
]


def list_rules():
    out = []
    for r in RULES:
        out.append(f"{r.id}  {r.name}")
        out.append(f"    {r.summary}")
        for line in wrap(r.rationale, 72):
            out.append(f"      {line}")
    return "\n".join(out)


def wrap(text, width):
    words, lines, cur = text.split(), [], ""
    for w in words:
        if cur and len(cur) + 1 + len(w) > width:
            lines.append(cur)
            cur = w
        else:
            cur = f"{cur} {w}".strip()
    if cur:
        lines.append(cur)
    return lines


def to_sarif(findings):
    rules_meta = [{
        "id": r.id,
        "name": r.name,
        "shortDescription": {"text": r.summary},
        "fullDescription": {"text": r.rationale},
        "defaultConfiguration": {"level": "error"},
    } for r in RULES]
    results = [{
        "ruleId": f.rule,
        "level": "error",
        "message": {"text": f.message},
        "partialFingerprints": {"asyncdrLint/v1": f.fingerprint()},
        "locations": [{
            "physicalLocation": {
                "artifactLocation": {"uri": f.path},
                "region": {"startLine": max(f.line, 1)},
            },
        }],
    } for f in findings]
    return {
        "$schema": ("https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
                    "master/Schemata/sarif-schema-2.1.0.json"),
        "version": "2.1.0",
        "runs": [{
            "tool": {"driver": {
                "name": "asyncdr-lint",
                "informationUri": "tools/asyncdr_lint.py",
                "rules": rules_meta,
            }},
            "results": results,
        }],
    }


def main(argv=None):
    ap = argparse.ArgumentParser(
        description="asyncdr model-conformance linter")
    ap.add_argument("paths", nargs="*",
                    help="restrict to these repo-relative files")
    ap.add_argument("--root", default=None,
                    help="repo root (default: parent of this script)")
    ap.add_argument("--list-rules", action="store_true")
    ap.add_argument("--sarif", metavar="FILE",
                    help="write SARIF 2.1.0 report to FILE")
    ap.add_argument("--baseline", metavar="FILE", default=None,
                    help="baseline file (default: tools/lint_baseline.json)")
    ap.add_argument("--no-baseline", action="store_true",
                    help="report all findings, ignoring the baseline")
    ap.add_argument("--write-baseline", action="store_true",
                    help="accept current findings into the baseline file")
    args = ap.parse_args(argv)

    if args.list_rules:
        print(list_rules())
        return 0

    root = args.root or os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))
    if not os.path.isdir(os.path.join(root, "src")):
        print(f"error: {root} does not look like the repo root "
              "(no src/)", file=sys.stderr)
        return 2

    tree = Tree(root, only=args.paths or None)
    findings = []
    for rule in RULES:
        findings.extend(rule.check(tree))
    findings.sort(key=lambda f: (f.path, f.line, f.rule))

    if args.sarif:
        with open(args.sarif, "w", encoding="utf-8") as f:
            json.dump(to_sarif(findings), f, indent=2)
            f.write("\n")

    baseline_path = args.baseline or os.path.join(
        root, "tools", "lint_baseline.json")
    if args.write_baseline:
        doc = {
            "schema": "asyncdr-lint-baseline-v1",
            "fingerprints": sorted(f.fingerprint() for f in findings),
        }
        with open(baseline_path, "w", encoding="utf-8") as f:
            json.dump(doc, f, indent=2)
            f.write("\n")
        print(f"baseline: wrote {len(findings)} fingerprint(s) to "
              f"{baseline_path}")
        return 0

    known = set()
    if not args.no_baseline and os.path.isfile(baseline_path):
        try:
            with open(baseline_path, encoding="utf-8") as f:
                doc = json.load(f)
        except (OSError, json.JSONDecodeError) as e:
            print(f"error: cannot read baseline {baseline_path}: {e}",
                  file=sys.stderr)
            return 2
        if doc.get("schema") != "asyncdr-lint-baseline-v1":
            print(f"error: {baseline_path} is not an asyncdr-lint-baseline-v1 "
                  "file", file=sys.stderr)
            return 2
        known = set(doc.get("fingerprints", []))

    new = [f for f in findings if f.fingerprint() not in known]
    for f in new:
        print(f.render())
    suppressed = len(findings) - len(new)
    tail = f" ({suppressed} baselined)" if suppressed else ""
    print(f"asyncdr-lint: {len(tree.files)} file(s), {len(new)} "
          f"finding(s){tail}")
    return 1 if new else 0


if __name__ == "__main__":
    sys.exit(main())
