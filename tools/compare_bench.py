#!/usr/bin/env python3
"""Compare a freshly generated BENCH_*.json against its checked-in baseline.

Usage: compare_bench.py BASELINE FRESH [--tolerance 0.25]

Entries are matched by (section, label). For every numeric metric present in
both, the relative difference must stay within the tolerance (default 25% --
generous on purpose: the perf smoke gate catches regressions in kind, not in
degree). Distribution percentiles (q_p50/q_p90/q_p99, t_*, m_*) are gated
with wider per-metric scales -- tails wobble more than means on few repeats
(p90 at 1.5x the base tolerance, p99 at 2x); --metric-tolerance NAME=TOL
overrides the resolved tolerance for one metric exactly. `failures` must not
increase. Entries present only in the baseline are errors (a silently
dropped series is a regression); entries only in the fresh file are
reported but allowed (new series land with their PR).

With --subset, baseline-only entries become notes instead of errors: the
fresh run is allowed to cover a prefix of the baseline (CI runs the scale
sweep capped at small k via ASYNCDR_SCALE_MAX_K; the committed baseline
carries the full sweep).

Exit status: 0 = within tolerance, 1 = regression, 2 = usage/parse error.
"""

import argparse
import json
import sys

# Complexity means plus the crash-recovery counters bench_recovery records
# (restart/replay counts and the warm-restart savings), plus the Q/T/M
# distribution percentiles the campaign-era benches emit. A metric is
# compared only when both files carry it, so baselines written before a
# metric existed keep working and new metrics land with their PR.
METRICS = ("q_mean", "t_mean", "m_mean",
           "q_p50", "q_p90", "q_p99",
           "t_p50", "t_p90", "t_p99",
           "m_p50", "m_p90", "m_p99",
           "restarts_mean", "replays_mean",
           "cold_fallbacks_mean", "bits_recovered_mean", "queries_saved_mean")

# Tail percentiles get a wider gate than central metrics: on kRepeats-sized
# samples a p99 is the max, and a single reordered seed can move it without
# any regression in kind.
METRIC_TOLERANCE_SCALE = {"q_p90": 1.5, "t_p90": 1.5, "m_p90": 1.5,
                          "q_p99": 2.0, "t_p99": 2.0, "m_p99": 2.0}


def parse_metric_tolerances(pairs):
    """Parses repeated NAME=TOL overrides into {metric: float}."""
    out = {}
    for pair in pairs:
        name, sep, value = pair.partition("=")
        if not sep or name not in METRICS:
            print(f"error: bad --metric-tolerance {pair!r} "
                  f"(expected METRIC=TOL with METRIC in {', '.join(METRICS)})",
                  file=sys.stderr)
            sys.exit(2)
        try:
            out[name] = float(value)
        except ValueError:
            print(f"error: bad tolerance value in {pair!r}", file=sys.stderr)
            sys.exit(2)
    return out


def load(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"error: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)
    if doc.get("schema") != "asyncdr-bench-v1":
        print(f"error: {path} is not an asyncdr-bench-v1 file", file=sys.stderr)
        sys.exit(2)
    entries = {}
    for e in doc.get("entries", []):
        entries[(e.get("section", ""), e.get("label", ""))] = e
    return doc.get("bench", "?"), entries


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("baseline")
    ap.add_argument("fresh")
    ap.add_argument("--tolerance", type=float, default=0.25,
                    help="max allowed relative difference (default 0.25)")
    ap.add_argument("--subset", action="store_true",
                    help="allow the fresh run to cover only a subset of the "
                         "baseline entries (capped sweeps in CI)")
    ap.add_argument("--metric-tolerance", action="append", default=[],
                    metavar="METRIC=TOL",
                    help="override the tolerance for one metric (repeatable, "
                         "e.g. --metric-tolerance q_p99=0.6)")
    args = ap.parse_args()
    overrides = parse_metric_tolerances(args.metric_tolerance)

    name, base = load(args.baseline)
    _, fresh = load(args.fresh)

    problems = []
    checked = 0
    for key, be in sorted(base.items()):
        fe = fresh.get(key)
        if fe is None:
            if args.subset:
                print(f"note: baseline entry not in this capped run: {key}")
            else:
                problems.append(
                    f"{key}: present in baseline, missing in fresh run")
            continue
        if fe.get("failures", 0) > be.get("failures", 0):
            problems.append(
                f"{key}: failures rose {be.get('failures', 0)} -> "
                f"{fe.get('failures', 0)}")
        for metric in METRICS:
            if metric not in be or metric not in fe:
                continue
            b, f = float(be[metric]), float(fe[metric])
            checked += 1
            tolerance = overrides.get(
                metric,
                args.tolerance * METRIC_TOLERANCE_SCALE.get(metric, 1.0))
            denom = max(abs(b), 1e-9)
            rel = abs(f - b) / denom
            if rel > tolerance:
                problems.append(
                    f"{key}: {metric} {b:g} -> {f:g} "
                    f"({100 * rel:.1f}% > {100 * tolerance:.0f}%)")

    new_only = sorted(set(fresh) - set(base))
    for key in new_only:
        print(f"note: new entry (not in baseline): {key}")

    print(f"{name}: compared {checked} metric(s) across {len(base)} "
          f"entr{'y' if len(base) == 1 else 'ies'}, "
          f"{len(problems)} problem(s)")
    for p in problems:
        print(f"REGRESSION {p}")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
