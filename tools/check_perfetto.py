#!/usr/bin/env python3
"""Validate a Chrome trace-event (Perfetto-loadable) JSON file.

Usage: check_perfetto.py TRACE.json

Checks the invariants the viewers rely on: a traceEvents array where every
event carries name/ph/pid, timeline events ("X", "i") carry ts/tid, complete
slices carry a non-negative dur, instants carry a scope, and flow events
("s", "t", "f") carry an id, pair up start-to-finish, and bind to an
enclosing complete slice on their (pid, tid) track — an unbound flow arc is
invalid and viewers drop or misdraw it. Exit 0 on a valid file, 1 on a
schema violation, 2 on a usage/parse error.
"""

import json
import sys

TIMELINE_PHASES = {"X", "i"}
FLOW_PHASES = {"s", "t", "f"}
KNOWN_PHASES = TIMELINE_PHASES | FLOW_PHASES | {"M"}


def fail(msg):
    print(f"invalid trace: {msg}", file=sys.stderr)
    sys.exit(1)


def check_flows(events):
    """Flow arcs: ids chain starts to finishes through enclosing slices."""
    slices = [ev for ev in events if ev["ph"] == "X"]

    def enclosed(ev):
        for s in slices:
            if (s["pid"], s.get("tid")) != (ev["pid"], ev.get("tid")):
                continue
            if s["ts"] <= ev["ts"] <= s["ts"] + s["dur"]:
                return True
        return False

    chains = {}
    for i, ev in enumerate(events):
        if ev["ph"] not in FLOW_PHASES:
            continue
        where = f"traceEvents[{i}]"
        if "id" not in ev:
            fail(f"{where} flow event lacks an id: {ev}")
        if not enclosed(ev):
            fail(f"{where} flow endpoint is not enclosed by any slice on "
                 f"its track: {ev}")
        chains.setdefault(ev["id"], []).append(ev)

    flows = 0
    for flow_id, chain in sorted(chains.items(), key=lambda kv: str(kv[0])):
        phases = [ev["ph"] for ev in chain]
        if phases.count("s") != 1 or phases.count("f") != 1:
            fail(f"flow id {flow_id!r} needs exactly one start and one "
                 f"finish, got phases {phases}")
        if phases[0] != "s" or phases[-1] != "f":
            fail(f"flow id {flow_id!r} must run start -> finish, got "
                 f"phases {phases}")
        for prev, cur in zip(chain, chain[1:]):
            if cur["ts"] < prev["ts"]:
                fail(f"flow id {flow_id!r} goes backwards in time: "
                     f"{prev['ts']} -> {cur['ts']}")
        flows += 1
    return flows


def main():
    if len(sys.argv) != 2:
        print(__doc__, file=sys.stderr)
        return 2
    try:
        with open(sys.argv[1]) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"error: cannot read {sys.argv[1]}: {e}", file=sys.stderr)
        return 2

    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail("missing or empty traceEvents array")
    for i, ev in enumerate(events):
        where = f"traceEvents[{i}]"
        for key in ("name", "ph", "pid"):
            if key not in ev:
                fail(f"{where} lacks {key}: {ev}")
        ph = ev["ph"]
        if ph not in KNOWN_PHASES:
            fail(f"{where} has unexpected ph {ph!r}")
        if ph in TIMELINE_PHASES or ph in FLOW_PHASES:
            for key in ("ts", "tid"):
                if key not in ev:
                    fail(f"{where} ({ph}) lacks {key}: {ev}")
        if ph == "X":
            if "dur" not in ev or ev["dur"] < 0:
                fail(f"{where} slice lacks a non-negative dur: {ev}")
        if ph == "i" and "s" not in ev:
            fail(f"{where} instant lacks a scope: {ev}")

    flows = check_flows(events)

    slices = sum(1 for ev in events if ev["ph"] == "X")
    instants = sum(1 for ev in events if ev["ph"] == "i")
    print(f"ok: {len(events)} events ({slices} slices, {instants} instants, "
          f"{flows} flows)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
