#!/usr/bin/env python3
"""Validate a Chrome trace-event (Perfetto-loadable) JSON file.

Usage: check_perfetto.py TRACE.json

Checks the invariants the viewers rely on: a traceEvents array where every
event carries name/ph/pid, timeline events ("X", "i") carry ts/tid, complete
slices carry a non-negative dur, and instants carry a scope. Exit 0 on a
valid file, 1 on a schema violation, 2 on a usage/parse error.
"""

import json
import sys

TIMELINE_PHASES = {"X", "i"}
KNOWN_PHASES = TIMELINE_PHASES | {"M"}


def fail(msg):
    print(f"invalid trace: {msg}", file=sys.stderr)
    sys.exit(1)


def main():
    if len(sys.argv) != 2:
        print(__doc__, file=sys.stderr)
        return 2
    try:
        with open(sys.argv[1]) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"error: cannot read {sys.argv[1]}: {e}", file=sys.stderr)
        return 2

    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail("missing or empty traceEvents array")
    for i, ev in enumerate(events):
        where = f"traceEvents[{i}]"
        for key in ("name", "ph", "pid"):
            if key not in ev:
                fail(f"{where} lacks {key}: {ev}")
        ph = ev["ph"]
        if ph not in KNOWN_PHASES:
            fail(f"{where} has unexpected ph {ph!r}")
        if ph in TIMELINE_PHASES:
            for key in ("ts", "tid"):
                if key not in ev:
                    fail(f"{where} ({ph}) lacks {key}: {ev}")
        if ph == "X":
            if "dur" not in ev or ev["dur"] < 0:
                fail(f"{where} slice lacks a non-negative dur: {ev}")
        if ph == "i" and "s" not in ev:
            fail(f"{where} instant lacks a scope: {ev}")

    slices = sum(1 for ev in events if ev["ph"] == "X")
    instants = sum(1 for ev in events if ev["ph"] == "i")
    print(f"ok: {len(events)} events ({slices} slices, {instants} instants)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
