#!/usr/bin/env python3
"""Validate a campaign JSONL event stream (and optionally its summary).

Usage: check_campaign.py EVENTS.jsonl [--summary CAMPAIGN.json]

Checks the invariants the src/campaign EventStream guarantees by
construction, so CI catches any writer regression:

  * every line is a standalone JSON object carrying "ev", "seq", "ts_ms"
  * "seq" is contiguous from 0 in file order (no interleaved/lost lines)
  * "ts_ms" is monotone non-decreasing (single steady clock, one lock)
  * the first event is campaign_started, the last campaign_finished
  * only known event kinds appear, each with its required fields
  * every run index in [0, total) has exactly one run_started and exactly
    one terminal event (run_finished | run_failed): done == total
  * campaign_finished's ok/failed/degraded counts reconcile against the
    per-run terminal statuses

With --summary, the summary JSON must be schema asyncdr-campaign-v1 with a
matching campaign name and run counts.

Exit status: 0 = valid, 1 = invalid, 2 = usage/parse error.
Zero third-party dependencies by design (same contract as asyncdr_lint.py).
"""

import argparse
import json
import sys

REQUIRED_FIELDS = {
    "campaign_started": ("campaign", "total", "seed_base"),
    "run_started": ("run", "seed"),
    "run_finished": ("run", "seed", "label", "status", "q", "t", "m",
                     "wall_ms"),
    "run_failed": ("run", "seed", "label", "status", "q", "t", "m",
                   "wall_ms", "detail"),
    "shrink_step": ("protocol", "seed", "dimension", "value", "shrink_runs"),
    "repro": ("protocol", "seed", "violation", "shrink_runs", "command"),
    "campaign_finished": ("campaign", "total", "ok", "failed", "degraded"),
}

TERMINAL = ("run_finished", "run_failed")


def check_events(path):
    """Returns (problems, facts) where facts summarises the stream."""
    problems = []
    events = []
    try:
        with open(path, encoding="utf-8") as f:
            for lineno, raw in enumerate(f, start=1):
                raw = raw.strip()
                if not raw:
                    problems.append(f"line {lineno}: blank line in stream")
                    continue
                try:
                    ev = json.loads(raw)
                except json.JSONDecodeError as e:
                    problems.append(f"line {lineno}: not valid JSON ({e})")
                    continue
                if not isinstance(ev, dict):
                    problems.append(f"line {lineno}: not a JSON object")
                    continue
                events.append((lineno, ev))
    except OSError as e:
        print(f"error: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)

    facts = {"events": len(events), "total": None, "campaign": None,
             "ok": 0, "failed": 0, "degraded": 0}
    if not events:
        problems.append("stream is empty")
        return problems, facts

    prev_ts = None
    for i, (lineno, ev) in enumerate(events):
        kind = ev.get("ev")
        if kind not in REQUIRED_FIELDS:
            problems.append(f"line {lineno}: unknown event kind {kind!r}")
            continue
        if ev.get("seq") != i:
            problems.append(
                f"line {lineno}: seq {ev.get('seq')!r} != expected {i} "
                "(stream not contiguous)")
        ts = ev.get("ts_ms")
        if not isinstance(ts, (int, float)):
            problems.append(f"line {lineno}: ts_ms missing or non-numeric")
        else:
            if prev_ts is not None and ts < prev_ts:
                problems.append(
                    f"line {lineno}: ts_ms {ts} < previous {prev_ts} "
                    "(timestamps must be monotone)")
            prev_ts = ts
        for field in REQUIRED_FIELDS[kind]:
            if field not in ev:
                problems.append(
                    f"line {lineno}: {kind} missing field {field!r}")

    first, last = events[0][1], events[-1][1]
    if first.get("ev") != "campaign_started":
        problems.append(
            f"first event is {first.get('ev')!r}, not campaign_started")
    if last.get("ev") != "campaign_finished":
        problems.append(
            f"last event is {last.get('ev')!r}, not campaign_finished "
            "(truncated campaign?)")

    total = first.get("total") if first.get("ev") == "campaign_started" else None
    facts["total"] = total
    facts["campaign"] = first.get("campaign")

    started = {}
    finished = {}
    for lineno, ev in events:
        kind = ev.get("ev")
        if kind == "run_started":
            run = ev.get("run")
            if run in started:
                problems.append(
                    f"line {lineno}: run {run} started twice "
                    f"(first at line {started[run]})")
            started[run] = lineno
        elif kind in TERMINAL:
            run = ev.get("run")
            if run in finished:
                problems.append(
                    f"line {lineno}: run {run} has a second terminal event "
                    f"(first at line {finished[run]})")
            finished[run] = lineno
            if run not in started:
                problems.append(
                    f"line {lineno}: run {run} finished without starting")
            status = ev.get("status")
            if status in ("ok", "failed", "degraded"):
                facts[status] += 1
            else:
                problems.append(
                    f"line {lineno}: unknown run status {status!r}")
            if kind == "run_failed" and status != "failed":
                problems.append(
                    f"line {lineno}: run_failed carries status {status!r}")
            if kind == "run_finished" and status == "failed":
                problems.append(
                    f"line {lineno}: failed run emitted run_finished")

    if isinstance(total, int):
        expected = set(range(total))
        missing_start = expected - set(started)
        missing_finish = expected - set(finished)
        if missing_start:
            problems.append(
                f"{len(missing_start)} run(s) never started "
                f"(e.g. {sorted(missing_start)[:5]})")
        if missing_finish:
            problems.append(
                f"done {len(finished)}/{total}: "
                f"{len(missing_finish)} run(s) never finished "
                f"(e.g. {sorted(missing_finish)[:5]})")
        stray = (set(started) | set(finished)) - expected
        if stray:
            problems.append(
                f"run index(es) outside [0, {total}): {sorted(stray)[:5]}")

    if last.get("ev") == "campaign_finished":
        for field in ("ok", "failed", "degraded"):
            if last.get(field) != facts[field]:
                problems.append(
                    f"campaign_finished.{field} = {last.get(field)!r} but "
                    f"the stream carries {facts[field]} such run(s)")
        if isinstance(total, int) and last.get("total") != total:
            problems.append(
                f"campaign_finished.total = {last.get('total')!r} != "
                f"campaign_started.total = {total}")

    return problems, facts


def check_summary(path, facts):
    problems = []
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"error: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)
    if doc.get("schema") != "asyncdr-campaign-v1":
        problems.append(
            f"summary schema is {doc.get('schema')!r}, "
            "not asyncdr-campaign-v1")
        return problems
    if facts["campaign"] is not None and doc.get("campaign") != facts["campaign"]:
        problems.append(
            f"summary campaign {doc.get('campaign')!r} != stream campaign "
            f"{facts['campaign']!r}")
    runs = doc.get("runs", {})
    if facts["total"] is not None and runs.get("total") != facts["total"]:
        problems.append(
            f"summary runs.total = {runs.get('total')!r} != stream total "
            f"{facts['total']}")
    for field in ("ok", "failed", "degraded"):
        if runs.get(field) != facts[field]:
            problems.append(
                f"summary runs.{field} = {runs.get(field)!r} != stream "
                f"count {facts[field]}")
    return problems


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("events", help="campaign JSONL event stream")
    ap.add_argument("--summary", help="campaign summary JSON to cross-check")
    args = ap.parse_args()

    problems, facts = check_events(args.events)
    if args.summary:
        problems += check_summary(args.summary, facts)

    name = facts["campaign"] or "?"
    print(f"{name}: {facts['events']} event(s), "
          f"{facts['ok']} ok / {facts['failed']} failed / "
          f"{facts['degraded']} degraded, {len(problems)} problem(s)")
    for p in problems:
        print(f"INVALID {p}")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
