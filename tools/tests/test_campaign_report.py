"""Unit tests for tools/campaign_report.py.

Renders fixture summaries/event streams through the tool as a subprocess
and asserts on the output text: the percentile tables, the per-label
breakdown, the event-stream digest, HTML self-containedness and escaping,
and the exit-status contract (0 = rendered, 2 = usage/parse error).
"""

import json
import os
import subprocess
import sys
import tempfile
import unittest

TOOLS_DIR = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
TOOL = os.path.join(TOOLS_DIR, "campaign_report.py")


def snap(p50, p90, p99, count=10):
    return {"count": count, "min": p50, "p50": p50, "p90": p90,
            "p99": p99, "max": p99, "mean_est": (p50 + p99) / 2.0}


def make_summary(campaign="chaos", failed=0, label="crash_one"):
    return {
        "schema": "asyncdr-campaign-v1",
        "campaign": campaign,
        "total": 10,
        "seed_base": 1,
        "runs": {"total": 10, "ok": 10 - failed, "failed": failed,
                 "degraded": 0},
        "metrics": {"q": snap(100, 400, 512), "t": snap(4.5, 12, 19),
                    "m": snap(300, 900, 1200)},
        "by_label": {label: {"runs": 10, "ok": 10 - failed,
                             "failed": failed, "degraded": 0,
                             "q": snap(100, 400, 512),
                             "t": snap(4.5, 12, 19),
                             "m": snap(300, 900, 1200)}},
        "worst": {"max_q": {"index": 3, "seed": 4, "q": 512},
                  "failure_count": failed,
                  "failures": [{"index": 7, "seed": 8, "label": label,
                                "detail": "agreement violated"}][:failed]},
    }


def make_events():
    events = [
        {"ev": "campaign_started", "campaign": "chaos", "total": 2,
         "seed_base": 1},
        {"ev": "run_started", "run": 0, "seed": 1},
        {"ev": "run_finished", "run": 0, "seed": 1, "label": "crash_one",
         "status": "ok", "q": 100, "t": 4.0, "m": 300, "wall_ms": 2.5},
        {"ev": "run_started", "run": 1, "seed": 2},
        {"ev": "run_failed", "run": 1, "seed": 2, "label": "crash_one",
         "status": "failed", "q": 512, "t": 19.0, "m": 1200,
         "wall_ms": 9.75, "detail": "agreement violated"},
        {"ev": "repro", "protocol": "crash_one", "seed": 2,
         "violation": "agreement", "shrink_runs": 12,
         "command": "asyncdr_cli chaos --seeds 1 --seed-base 2"},
        {"ev": "campaign_finished", "campaign": "chaos", "total": 2,
         "ok": 1, "failed": 1, "degraded": 0},
    ]
    for i, ev in enumerate(events):
        ev["seq"] = i
        ev["ts_ms"] = 10.0 * i
    return events


class CampaignReportTest(unittest.TestCase):
    def setUp(self):
        self.dir = tempfile.TemporaryDirectory(prefix="campaign-report-test-")
        self.addCleanup(self.dir.cleanup)

    def path(self, name, doc):
        p = os.path.join(self.dir.name, name)
        with open(p, "w", encoding="utf-8") as f:
            if isinstance(doc, str):
                f.write(doc)
            elif isinstance(doc, list):
                for ev in doc:
                    f.write(json.dumps(ev) + "\n")
            else:
                json.dump(doc, f)
        return p

    def run_tool(self, *args):
        proc = subprocess.run(
            [sys.executable, TOOL, *args],
            capture_output=True, text=True, check=False)
        return proc.returncode, proc.stdout, proc.stderr

    def test_md_report_has_percentile_and_label_tables(self):
        summary = self.path("s.json", make_summary())
        code, out, _ = self.run_tool(summary, "--format", "md")
        self.assertEqual(code, 0, out)
        self.assertIn("## Campaign `chaos`", out)
        self.assertIn("| metric | count | min | p50 | p90 | p99 |", out)
        # Q row with integral values rendered without a decimal point.
        self.assertIn("| q | 10 | 100 | 100 | 400 | 512 | 512 |", out)
        self.assertIn("### Per-label breakdown", out)
        self.assertIn("| crash_one | 10 |", out)
        self.assertIn("Worst run by Q: index 3, seed 4, Q=512", out)

    def test_md_report_lists_failures(self):
        summary = self.path("s.json", make_summary(failed=1))
        code, out, _ = self.run_tool(summary, "--format", "md")
        self.assertEqual(code, 0, out)
        self.assertIn("### Failures (1)", out)
        self.assertIn("run 7 seed 8 [crash_one]: agreement violated", out)

    def test_event_stream_digest_in_md(self):
        summary = self.path("s.json", make_summary())
        events = self.path("e.jsonl", make_events())
        code, out, _ = self.run_tool(summary, "--events", events,
                                     "--format", "md")
        self.assertEqual(code, 0, out)
        self.assertIn("### Slowest runs", out)
        self.assertIn("| 1 | 2 | crash_one | 9.75 |", out)
        self.assertIn("asyncdr_cli chaos --seeds 1 --seed-base 2", out)
        self.assertIn("Event stream: 60 ms span", out)

    def test_html_report_is_self_contained(self):
        summary = self.path("s.json", make_summary())
        code, out, _ = self.run_tool(summary, "--format", "html")
        self.assertEqual(code, 0, out)
        self.assertTrue(out.startswith("<!doctype html>"))
        self.assertIn("<style>", out)
        self.assertIn("Distribution percentiles", out)
        self.assertIn("<td>512</td>", out)
        # No external assets: a CI artifact must render offline.
        self.assertNotIn("src=", out)
        self.assertNotIn("href=", out)

    def test_html_escapes_labels_and_details(self):
        doc = make_summary(failed=1, label="<script>alert(1)</script>")
        summary = self.path("s.json", doc)
        code, out, _ = self.run_tool(summary, "--format", "html")
        self.assertEqual(code, 0, out)
        self.assertNotIn("<script>alert", out)
        self.assertIn("&lt;script&gt;", out)

    def test_multiple_summaries_render_multiple_sections(self):
        a = self.path("a.json", make_summary(campaign="chaos"))
        b = self.path("b.json", make_summary(campaign="recovery"))
        code, out, _ = self.run_tool(a, b, "--format", "md")
        self.assertEqual(code, 0, out)
        self.assertIn("## Campaign `chaos`", out)
        self.assertIn("## Campaign `recovery`", out)

    def test_out_writes_file(self):
        summary = self.path("s.json", make_summary())
        target = os.path.join(self.dir.name, "report.html")
        code, out, err = self.run_tool(summary, "--out", target)
        self.assertEqual(code, 0, out)
        self.assertIn("wrote html report", err)
        with open(target, encoding="utf-8") as f:
            self.assertIn("Distribution percentiles", f.read())

    def test_timing_section_is_rendered_when_present(self):
        doc = make_summary()
        doc["timing"] = {"wall_ms_total": 1234.5, "rss_mb_final": 87}
        summary = self.path("s.json", doc)
        code, out, _ = self.run_tool(summary, "--format", "md")
        self.assertEqual(code, 0, out)
        self.assertIn("machine-dependent", out)
        self.assertIn("1234", out)

    def test_more_events_than_summaries_is_usage_error(self):
        summary = self.path("s.json", make_summary())
        events = self.path("e.jsonl", make_events())
        code, _, err = self.run_tool(summary, "--events", events,
                                     "--events", events)
        self.assertEqual(code, 2)
        self.assertIn("more --events", err)

    def test_wrong_schema_is_usage_error(self):
        doc = make_summary()
        doc["schema"] = "v999"
        summary = self.path("s.json", doc)
        code, _, err = self.run_tool(summary)
        self.assertEqual(code, 2)
        self.assertIn("asyncdr-campaign-v1", err)

    def test_malformed_summary_is_usage_error(self):
        summary = self.path("s.json", "{broken")
        code, _, err = self.run_tool(summary)
        self.assertEqual(code, 2)
        self.assertIn("cannot read", err)


if __name__ == "__main__":
    unittest.main()
