"""Unit tests for tools/check_perfetto.py.

Pins the validator's contract: exit 0 for a viewer-loadable trace, 1 for a
schema violation, 2 for usage/parse errors — the statuses the ctest target
and CI artifact checks key off.
"""

import json
import os
import subprocess
import sys
import tempfile
import unittest

TOOLS_DIR = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
TOOL = os.path.join(TOOLS_DIR, "check_perfetto.py")


def slice_event(**over):
    ev = {"name": "phase", "ph": "X", "pid": 1, "tid": 2, "ts": 0.0,
          "dur": 5.0}
    ev.update(over)
    return ev


def instant_event(**over):
    ev = {"name": "drop", "ph": "i", "pid": 1, "tid": 2, "ts": 1.0, "s": "t"}
    ev.update(over)
    return ev


def metadata_event():
    return {"name": "process_name", "ph": "M", "pid": 1,
            "args": {"name": "peer"}}


def flow_event(ph, **over):
    ev = {"name": "critical-path", "ph": ph, "cat": "critpath", "pid": 1,
          "tid": 2, "ts": 1.0, "id": 7}
    if ph == "f":
        ev["bp"] = "e"
    ev.update(over)
    return ev


class CheckPerfettoTest(unittest.TestCase):
    def setUp(self):
        self.dir = tempfile.TemporaryDirectory(prefix="check-perfetto-test-")
        self.addCleanup(self.dir.cleanup)

    def trace(self, events, raw=None):
        p = os.path.join(self.dir.name, "trace.json")
        with open(p, "w", encoding="utf-8") as f:
            if raw is not None:
                f.write(raw)
            else:
                json.dump({"traceEvents": events}, f)
        return p

    def run_tool(self, *args):
        proc = subprocess.run(
            [sys.executable, TOOL, *args],
            capture_output=True, text=True, check=False)
        return proc.returncode, proc.stdout, proc.stderr

    def test_valid_trace_passes(self):
        path = self.trace(
            [metadata_event(), slice_event(), instant_event()])
        code, out, _ = self.run_tool(path)
        self.assertEqual(code, 0, out)
        self.assertIn("3 events", out)
        self.assertIn("1 slices", out)
        self.assertIn("1 instants", out)

    def test_missing_trace_events_key_fails(self):
        path = self.trace(None, raw=json.dumps({"other": []}))
        code, _, err = self.run_tool(path)
        self.assertEqual(code, 1)
        self.assertIn("traceEvents", err)

    def test_empty_trace_events_fails(self):
        path = self.trace([])
        code, _, err = self.run_tool(path)
        self.assertEqual(code, 1)

    def test_event_missing_required_key_fails(self):
        for key in ("name", "ph", "pid"):
            ev = slice_event()
            del ev[key]
            code, _, err = self.run_tool(self.trace([ev]))
            self.assertEqual(code, 1, f"missing {key} accepted")
            self.assertIn(key, err)

    def test_unknown_phase_fails(self):
        code, _, err = self.run_tool(self.trace([slice_event(ph="B")]))
        self.assertEqual(code, 1)
        self.assertIn("unexpected ph", err)

    def test_timeline_event_missing_ts_or_tid_fails(self):
        for key in ("ts", "tid"):
            ev = instant_event()
            del ev[key]
            code, _, err = self.run_tool(self.trace([ev]))
            self.assertEqual(code, 1, f"missing {key} accepted")

    def test_slice_without_dur_fails(self):
        ev = slice_event()
        del ev["dur"]
        code, _, err = self.run_tool(self.trace([ev]))
        self.assertEqual(code, 1)
        self.assertIn("dur", err)

    def test_slice_with_negative_dur_fails(self):
        code, _, err = self.run_tool(self.trace([slice_event(dur=-1.0)]))
        self.assertEqual(code, 1)

    def test_zero_dur_slice_passes(self):
        code, out, _ = self.run_tool(self.trace([slice_event(dur=0)]))
        self.assertEqual(code, 0, out)

    def test_instant_without_scope_fails(self):
        ev = instant_event()
        del ev["s"]
        code, _, err = self.run_tool(self.trace([ev]))
        self.assertEqual(code, 1)
        self.assertIn("scope", err)

    def test_metadata_event_needs_no_timeline_fields(self):
        code, out, _ = self.run_tool(self.trace([metadata_event()]))
        self.assertEqual(code, 0, out)

    def test_valid_flow_pair_passes(self):
        # Start and finish on tracks covered by slices, chained by one id.
        path = self.trace([
            slice_event(tid=1), slice_event(tid=2),
            flow_event("s", tid=1, ts=1.0),
            flow_event("f", tid=2, ts=3.0),
        ])
        code, out, _ = self.run_tool(path)
        self.assertEqual(code, 0, out)
        self.assertIn("1 flows", out)

    def test_flow_without_id_fails(self):
        ev = flow_event("s")
        del ev["id"]
        code, _, err = self.run_tool(self.trace([slice_event(), ev]))
        self.assertEqual(code, 1)
        self.assertIn("id", err)

    def test_flow_missing_ts_or_tid_fails(self):
        for key in ("ts", "tid"):
            ev = flow_event("s")
            del ev[key]
            code, _, err = self.run_tool(self.trace([slice_event(), ev]))
            self.assertEqual(code, 1, f"missing {key} accepted")

    def test_unbound_flow_endpoint_fails(self):
        # The finish lands on a track with no enclosing slice.
        path = self.trace([
            slice_event(tid=2),
            flow_event("s", tid=2, ts=1.0),
            flow_event("f", tid=9, ts=3.0),
        ])
        code, _, err = self.run_tool(path)
        self.assertEqual(code, 1)
        self.assertIn("not enclosed", err)

    def test_flow_endpoint_outside_slice_times_fails(self):
        path = self.trace([
            slice_event(tid=2, ts=0.0, dur=5.0),
            flow_event("s", tid=2, ts=6.0),
            flow_event("f", tid=2, ts=7.0),
        ])
        code, _, err = self.run_tool(path)
        self.assertEqual(code, 1)
        self.assertIn("not enclosed", err)

    def test_unpaired_flow_start_fails(self):
        path = self.trace([slice_event(tid=2), flow_event("s", tid=2)])
        code, _, err = self.run_tool(path)
        self.assertEqual(code, 1)
        self.assertIn("exactly one start and one finish", err)

    def test_flow_running_backwards_in_time_fails(self):
        path = self.trace([
            slice_event(tid=2),
            flow_event("s", tid=2, ts=4.0),
            flow_event("f", tid=2, ts=1.0),
        ])
        code, _, err = self.run_tool(path)
        self.assertEqual(code, 1)
        self.assertIn("backwards", err)

    def test_malformed_json_is_usage_error(self):
        path = self.trace(None, raw="{broken")
        code, _, err = self.run_tool(path)
        self.assertEqual(code, 2)
        self.assertIn("cannot read", err)

    def test_missing_file_is_usage_error(self):
        code, _, err = self.run_tool(
            os.path.join(self.dir.name, "absent.json"))
        self.assertEqual(code, 2)

    def test_no_arguments_is_usage_error(self):
        code, _, err = self.run_tool()
        self.assertEqual(code, 2)
        self.assertIn("Usage", err)


if __name__ == "__main__":
    unittest.main()
