"""Unit tests for tools/check_campaign.py.

The validator is exercised as a subprocess (same idiom as
test_compare_bench.py) to pin the exit-status contract CI relies on:
0 = valid stream, 1 = invalid, 2 = usage/parse error. Each test builds a
well-formed stream and then breaks exactly one invariant, so a failure
names the check that regressed.
"""

import json
import os
import subprocess
import sys
import tempfile
import unittest

TOOLS_DIR = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
TOOL = os.path.join(TOOLS_DIR, "check_campaign.py")


def make_events(total=3, campaign="c", statuses=None):
    """A valid stream: started, (run_started, terminal) per run, finished."""
    statuses = statuses or ["ok"] * total
    events = [{"ev": "campaign_started", "campaign": campaign,
               "total": total, "seed_base": 1}]
    for run in range(total):
        events.append({"ev": "run_started", "run": run, "seed": run + 1})
        status = statuses[run]
        term = {"ev": "run_failed" if status == "failed" else "run_finished",
                "run": run, "seed": run + 1, "label": "l", "status": status,
                "q": 100, "t": 4.0, "m": 50, "wall_ms": 1.5}
        if status == "failed":
            term["detail"] = "boom"
        events.append(term)
    events.append({"ev": "campaign_finished", "campaign": campaign,
                   "total": total,
                   "ok": statuses.count("ok"),
                   "failed": statuses.count("failed"),
                   "degraded": statuses.count("degraded")})
    for i, ev in enumerate(events):
        ev.setdefault("seq", i)
        ev.setdefault("ts_ms", float(i))
    return events


def make_summary(total=3, campaign="c", ok=None, failed=0, degraded=0):
    return {"schema": "asyncdr-campaign-v1", "campaign": campaign,
            "total": total, "seed_base": 1,
            "runs": {"total": total,
                     "ok": total - failed - degraded if ok is None else ok,
                     "failed": failed, "degraded": degraded}}


class CheckCampaignTest(unittest.TestCase):
    def setUp(self):
        self.dir = tempfile.TemporaryDirectory(prefix="check-campaign-test-")
        self.addCleanup(self.dir.cleanup)

    def write_events(self, events, name="events.jsonl"):
        p = os.path.join(self.dir.name, name)
        with open(p, "w", encoding="utf-8") as f:
            if isinstance(events, str):
                f.write(events)
            else:
                for ev in events:
                    f.write(json.dumps(ev) + "\n")
        return p

    def write_summary(self, doc, name="summary.json"):
        p = os.path.join(self.dir.name, name)
        with open(p, "w", encoding="utf-8") as f:
            json.dump(doc, f)
        return p

    def run_tool(self, *args):
        proc = subprocess.run(
            [sys.executable, TOOL, *args],
            capture_output=True, text=True, check=False)
        return proc.returncode, proc.stdout, proc.stderr

    def test_valid_stream_passes(self):
        path = self.write_events(make_events())
        code, out, _ = self.run_tool(path)
        self.assertEqual(code, 0, out)
        self.assertIn("0 problem(s)", out)
        self.assertIn("3 ok / 0 failed / 0 degraded", out)

    def test_mixed_statuses_are_counted(self):
        path = self.write_events(
            make_events(statuses=["ok", "failed", "degraded"]))
        code, out, _ = self.run_tool(path)
        self.assertEqual(code, 0, out)
        self.assertIn("1 ok / 1 failed / 1 degraded", out)

    def test_matching_summary_passes(self):
        path = self.write_events(make_events())
        summary = self.write_summary(make_summary())
        code, out, _ = self.run_tool(path, "--summary", summary)
        self.assertEqual(code, 0, out)

    def test_seq_gap_is_invalid(self):
        events = make_events()
        events[2]["seq"] = 99
        code, out, _ = self.run_tool(self.write_events(events))
        self.assertEqual(code, 1)
        self.assertIn("not contiguous", out)

    def test_ts_regression_is_invalid(self):
        events = make_events()
        events[3]["ts_ms"] = 0.0
        code, out, _ = self.run_tool(self.write_events(events))
        self.assertEqual(code, 1)
        self.assertIn("monotone", out)

    def test_truncated_stream_is_invalid(self):
        events = make_events()[:-1]
        code, out, _ = self.run_tool(self.write_events(events))
        self.assertEqual(code, 1)
        self.assertIn("not campaign_finished", out)

    def test_unknown_event_kind_is_invalid(self):
        events = make_events()
        events.insert(2, {"ev": "mystery", "seq": 0, "ts_ms": 1.0})
        for i, ev in enumerate(events):
            ev["seq"] = i
        code, out, _ = self.run_tool(self.write_events(events))
        self.assertEqual(code, 1)
        self.assertIn("unknown event kind 'mystery'", out)

    def test_missing_required_field_is_invalid(self):
        events = make_events()
        del events[2]["wall_ms"]
        code, out, _ = self.run_tool(self.write_events(events))
        self.assertEqual(code, 1)
        self.assertIn("missing field 'wall_ms'", out)

    def test_run_started_twice_is_invalid(self):
        events = make_events(total=2)
        events[3] = dict(events[1], seq=3, ts_ms=3.0)  # run 0 starts again
        code, out, _ = self.run_tool(self.write_events(events))
        self.assertEqual(code, 1)
        self.assertIn("started twice", out)

    def test_run_never_finished_is_invalid(self):
        events = [ev for ev in make_events(total=3)
                  if not (ev["ev"] == "run_finished" and ev["run"] == 1)]
        for i, ev in enumerate(events):
            ev["seq"] = i
        # campaign_finished still claims 3 ok: both checks should fire.
        code, out, _ = self.run_tool(self.write_events(events))
        self.assertEqual(code, 1)
        self.assertIn("never finished", out)

    def test_run_failed_with_ok_status_is_invalid(self):
        events = make_events(statuses=["ok", "failed", "ok"])
        for ev in events:
            if ev["ev"] == "run_failed":
                ev["status"] = "ok"
        code, out, _ = self.run_tool(self.write_events(events))
        self.assertEqual(code, 1)
        self.assertIn("run_failed carries status 'ok'", out)

    def test_finished_counts_mismatch_is_invalid(self):
        events = make_events()
        events[-1]["ok"] = 99
        code, out, _ = self.run_tool(self.write_events(events))
        self.assertEqual(code, 1)
        self.assertIn("campaign_finished.ok", out)

    def test_shrink_and_repro_events_are_known(self):
        events = make_events()
        tail = events.pop()
        events.append({"ev": "shrink_step", "protocol": "p", "seed": 7,
                       "dimension": "n_cap", "value": 8, "shrink_runs": 3})
        events.append({"ev": "repro", "protocol": "p", "seed": 7,
                       "violation": "agreement", "shrink_runs": 5,
                       "command": "asyncdr_cli chaos --seeds 1"})
        events.append(tail)
        for i, ev in enumerate(events):
            ev["seq"] = i
            ev["ts_ms"] = float(i)
        code, out, _ = self.run_tool(self.write_events(events))
        self.assertEqual(code, 0, out)

    def test_summary_count_mismatch_is_invalid(self):
        path = self.write_events(make_events())
        summary = self.write_summary(make_summary(ok=1, failed=2))
        code, out, _ = self.run_tool(path, "--summary", summary)
        self.assertEqual(code, 1)
        self.assertIn("summary runs.ok", out)

    def test_summary_wrong_schema_is_invalid(self):
        path = self.write_events(make_events())
        doc = make_summary()
        doc["schema"] = "v999"
        code, out, _ = self.run_tool(path, "--summary",
                                     self.write_summary(doc))
        self.assertEqual(code, 1)
        self.assertIn("asyncdr-campaign-v1", out)

    def test_non_json_line_is_invalid(self):
        events = make_events()
        raw = "\n".join(json.dumps(ev) for ev in events[:-1])
        raw += "\n{broken\n" + json.dumps(events[-1]) + "\n"
        code, out, _ = self.run_tool(self.write_events(raw))
        self.assertEqual(code, 1)
        self.assertIn("not valid JSON", out)

    def test_empty_stream_is_invalid(self):
        code, out, _ = self.run_tool(self.write_events(""))
        self.assertEqual(code, 1)
        self.assertIn("stream is empty", out)

    def test_missing_file_is_usage_error(self):
        code, _, err = self.run_tool(
            os.path.join(self.dir.name, "nope.jsonl"))
        self.assertEqual(code, 2)
        self.assertIn("cannot read", err)


if __name__ == "__main__":
    unittest.main()
