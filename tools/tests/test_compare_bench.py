"""Unit tests for tools/compare_bench.py.

The tool is exercised as a subprocess (it sys.exit()s from its loaders), so
these tests pin the exact exit-status contract CI relies on: 0 = within
tolerance, 1 = regression, 2 = usage/parse error.
"""

import json
import os
import subprocess
import sys
import tempfile
import unittest

TOOLS_DIR = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
TOOL = os.path.join(TOOLS_DIR, "compare_bench.py")


def entry(section="s", label="l", q=100.0, t=10.0, m=1000.0, failures=0):
    return {"section": section, "label": label, "q_mean": q, "t_mean": t,
            "m_mean": m, "failures": failures}


def bench_doc(entries, schema="asyncdr-bench-v1", bench="bench_test"):
    return {"schema": schema, "bench": bench, "entries": entries}


class CompareBenchTest(unittest.TestCase):
    def setUp(self):
        self.dir = tempfile.TemporaryDirectory(prefix="compare-bench-test-")
        self.addCleanup(self.dir.cleanup)

    def path(self, name, doc):
        p = os.path.join(self.dir.name, name)
        with open(p, "w", encoding="utf-8") as f:
            if isinstance(doc, str):
                f.write(doc)
            else:
                json.dump(doc, f)
        return p

    def run_tool(self, *args):
        proc = subprocess.run(
            [sys.executable, TOOL, *args],
            capture_output=True, text=True, check=False)
        return proc.returncode, proc.stdout, proc.stderr

    def test_identical_files_pass(self):
        base = self.path("base.json", bench_doc([entry()]))
        fresh = self.path("fresh.json", bench_doc([entry()]))
        code, out, _ = self.run_tool(base, fresh)
        self.assertEqual(code, 0, out)
        self.assertIn("0 problem(s)", out)

    def test_within_tolerance_passes(self):
        base = self.path("base.json", bench_doc([entry(q=100.0)]))
        fresh = self.path("fresh.json", bench_doc([entry(q=110.0)]))
        code, out, _ = self.run_tool(base, fresh, "--tolerance", "0.25")
        self.assertEqual(code, 0, out)

    def test_exactly_at_tolerance_passes(self):
        # The gate is strictly-greater-than: a 25% delta under --tolerance
        # 0.25 is allowed.
        base = self.path("base.json", bench_doc([entry(q=100.0)]))
        fresh = self.path("fresh.json", bench_doc([entry(q=125.0)]))
        code, out, _ = self.run_tool(base, fresh, "--tolerance", "0.25")
        self.assertEqual(code, 0, out)

    def test_beyond_tolerance_fails(self):
        base = self.path("base.json", bench_doc([entry(q=100.0)]))
        fresh = self.path("fresh.json", bench_doc([entry(q=130.0)]))
        code, out, _ = self.run_tool(base, fresh, "--tolerance", "0.25")
        self.assertEqual(code, 1)
        self.assertIn("REGRESSION", out)
        self.assertIn("q_mean", out)

    def test_zero_baseline_metric_is_guarded(self):
        # Relative diff against ~0 baseline must not divide by zero, and any
        # real movement off zero should trip the gate.
        base = self.path("base.json", bench_doc([entry(q=0.0)]))
        fresh = self.path("fresh.json", bench_doc([entry(q=0.5)]))
        code, out, _ = self.run_tool(base, fresh)
        self.assertEqual(code, 1)
        self.assertIn("REGRESSION", out)

    def test_failures_increase_fails_even_within_tolerance(self):
        base = self.path("base.json", bench_doc([entry(failures=0)]))
        fresh = self.path("fresh.json", bench_doc([entry(failures=2)]))
        code, out, _ = self.run_tool(base, fresh)
        self.assertEqual(code, 1)
        self.assertIn("failures rose 0 -> 2", out)

    def test_failures_decrease_passes(self):
        base = self.path("base.json", bench_doc([entry(failures=3)]))
        fresh = self.path("fresh.json", bench_doc([entry(failures=0)]))
        code, out, _ = self.run_tool(base, fresh)
        self.assertEqual(code, 0, out)

    def test_entry_missing_in_fresh_fails(self):
        base = self.path("base.json", bench_doc(
            [entry(label="kept"), entry(label="dropped")]))
        fresh = self.path("fresh.json", bench_doc([entry(label="kept")]))
        code, out, _ = self.run_tool(base, fresh)
        self.assertEqual(code, 1)
        self.assertIn("missing in fresh run", out)

    def test_subset_turns_baseline_only_entries_into_notes(self):
        # CI runs the scale sweep capped (ASYNCDR_SCALE_MAX_K); the fresh
        # file legitimately covers a prefix of the committed full sweep.
        base = self.path("base.json", bench_doc(
            [entry(label="k=64"), entry(label="k=4096")]))
        fresh = self.path("fresh.json", bench_doc([entry(label="k=64")]))
        code, out, _ = self.run_tool(base, fresh, "--subset")
        self.assertEqual(code, 0, out)
        self.assertIn("note: baseline entry not in this capped run", out)

    def test_subset_still_diffs_the_entries_that_are_present(self):
        base = self.path("base.json", bench_doc(
            [entry(label="k=64", q=100.0), entry(label="k=4096")]))
        fresh = self.path("fresh.json", bench_doc(
            [entry(label="k=64", q=200.0)]))
        code, out, _ = self.run_tool(base, fresh, "--subset")
        self.assertEqual(code, 1)
        self.assertIn("REGRESSION", out)

    def test_new_entry_in_fresh_is_allowed_but_noted(self):
        base = self.path("base.json", bench_doc([entry(label="old")]))
        fresh = self.path("fresh.json", bench_doc(
            [entry(label="old"), entry(label="new-series")]))
        code, out, _ = self.run_tool(base, fresh)
        self.assertEqual(code, 0, out)
        self.assertIn("note: new entry", out)

    def test_extra_critpath_fields_in_fresh_entries_are_tolerated(self):
        # Traced benches append critpath_* fields to existing entries; the
        # comparator diffs q/t/m means only, so baselines that predate the
        # fields keep passing with zero diff noise.
        enriched = entry(q=100.0)
        enriched.update({"critpath_len_mean": 9.5, "critpath_link_mean": 7.0,
                         "critpath_local_mean": 2.5, "critpath_reconciled": 5})
        base = self.path("base.json", bench_doc([entry(q=100.0)]))
        fresh = self.path("fresh.json", bench_doc([enriched]))
        code, out, _ = self.run_tool(base, fresh)
        self.assertEqual(code, 0, out)
        self.assertIn("0 problem(s)", out)
        self.assertNotIn("note: new entry", out)

    def test_metric_missing_on_either_side_is_skipped(self):
        lean = {"section": "s", "label": "l", "q_mean": 100.0}
        base = self.path("base.json", bench_doc([lean]))
        fresh = self.path("fresh.json", bench_doc([entry(q=100.0)]))
        code, out, _ = self.run_tool(base, fresh)
        self.assertEqual(code, 0, out)
        self.assertIn("compared 1 metric(s)", out)

    def test_recovery_metrics_are_compared_when_present_in_both(self):
        # bench_recovery entries carry recovery counters instead of q/t/m;
        # the comparator diffs them like any other metric.
        def rec(saved):
            return {"section": "R2", "label": "crashes=4 warm recovery",
                    "restarts_mean": 4.0, "replays_mean": 4.0,
                    "cold_fallbacks_mean": 0.0, "bits_recovered_mean": 2048.0,
                    "queries_saved_mean": saved}
        base = self.path("base.json", bench_doc([rec(2048.0)]))
        fresh = self.path("fresh.json", bench_doc([rec(100.0)]))
        code, out, _ = self.run_tool(base, fresh)
        self.assertEqual(code, 1)
        self.assertIn("queries_saved_mean", out)
        # Within tolerance passes, and all five counters are compared.
        fresh_ok = self.path("fresh_ok.json", bench_doc([rec(2000.0)]))
        code, out, _ = self.run_tool(base, fresh_ok)
        self.assertEqual(code, 0, out)
        self.assertIn("compared 5 metric(s)", out)

    def test_recovery_metrics_absent_from_old_baselines_are_skipped(self):
        # A baseline written before the recovery counters existed must keep
        # passing against an enriched fresh entry (and vice versa).
        enriched = entry(q=100.0)
        enriched.update({"queries_saved_mean": 512.0, "replays_mean": 1.0})
        base = self.path("base.json", bench_doc([entry(q=100.0)]))
        fresh = self.path("fresh.json", bench_doc([enriched]))
        code, out, _ = self.run_tool(base, fresh)
        self.assertEqual(code, 0, out)
        self.assertIn("0 problem(s)", out)

    def test_percentile_tails_get_a_wider_gate(self):
        # q_p99 is scaled 2x: a 45% delta passes the default 25% base
        # tolerance (resolved gate 50%) while q_mean at 45% would fail.
        def e(p99):
            d = entry(q=100.0)
            d["q_p99"] = p99
            return d
        base = self.path("base.json", bench_doc([e(100.0)]))
        fresh = self.path("fresh.json", bench_doc([e(145.0)]))
        code, out, _ = self.run_tool(base, fresh)
        self.assertEqual(code, 0, out)
        fresh_bad = self.path("fresh_bad.json", bench_doc([e(160.0)]))
        code, out, _ = self.run_tool(base, fresh_bad)
        self.assertEqual(code, 1)
        self.assertIn("q_p99", out)

    def test_metric_tolerance_override_wins(self):
        def e(p99):
            d = entry(q=100.0)
            d["q_p99"] = p99
            return d
        base = self.path("base.json", bench_doc([e(100.0)]))
        fresh = self.path("fresh.json", bench_doc([e(145.0)]))
        # Tightened override turns the previously passing delta into a
        # regression; a generous one lets a huge delta through.
        code, out, _ = self.run_tool(base, fresh,
                                     "--metric-tolerance", "q_p99=0.1")
        self.assertEqual(code, 1)
        self.assertIn("q_p99", out)
        code, out, _ = self.run_tool(base, fresh,
                                     "--metric-tolerance", "q_p99=5.0")
        self.assertEqual(code, 0, out)

    def test_unknown_metric_tolerance_name_is_usage_error(self):
        base = self.path("base.json", bench_doc([entry()]))
        fresh = self.path("fresh.json", bench_doc([entry()]))
        code, _, err = self.run_tool(base, fresh,
                                     "--metric-tolerance", "nope=0.5")
        self.assertEqual(code, 2)
        self.assertIn("bad --metric-tolerance", err)

    def test_malformed_json_is_usage_error(self):
        base = self.path("base.json", "{not json")
        fresh = self.path("fresh.json", bench_doc([entry()]))
        code, _, err = self.run_tool(base, fresh)
        self.assertEqual(code, 2)
        self.assertIn("cannot read", err)

    def test_wrong_schema_is_usage_error(self):
        base = self.path("base.json", bench_doc([entry()], schema="v999"))
        fresh = self.path("fresh.json", bench_doc([entry()]))
        code, _, err = self.run_tool(base, fresh)
        self.assertEqual(code, 2)
        self.assertIn("asyncdr-bench-v1", err)

    def test_missing_baseline_file_is_usage_error(self):
        fresh = self.path("fresh.json", bench_doc([entry()]))
        code, _, err = self.run_tool(
            os.path.join(self.dir.name, "nope.json"), fresh)
        self.assertEqual(code, 2)
        self.assertIn("cannot read", err)


if __name__ == "__main__":
    unittest.main()
