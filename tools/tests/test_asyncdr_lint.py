"""Unit tests for tools/asyncdr_lint.py.

Runs the linter in-process (main() returns the exit status) against
synthetic trees, plus one seeded-regression test against a copy of the real
repo with a model violation injected — the check the acceptance gate cares
about: a protocol that sneaks in std::random_device must fail the lint.

unittest-style on purpose: runnable by both `python3 -m unittest` (what
ctest invokes; no third-party deps) and pytest.
"""

import importlib.util
import io
import json
import os
import shutil
import sys
import tempfile
import unittest
from contextlib import redirect_stdout

TOOLS_DIR = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
REPO_ROOT = os.path.dirname(TOOLS_DIR)

spec = importlib.util.spec_from_file_location(
    "asyncdr_lint", os.path.join(TOOLS_DIR, "asyncdr_lint.py"))
lint = importlib.util.module_from_spec(spec)
spec.loader.exec_module(lint)


def run_lint(*argv):
    out = io.StringIO()
    with redirect_stdout(out):
        status = lint.main(list(argv))
    return status, out.getvalue()


class TreeCase(unittest.TestCase):
    """Base: a scratch repo root with helpers to drop files into it."""

    def setUp(self):
        self.root = tempfile.mkdtemp(prefix="asyncdr-lint-test-")
        self.addCleanup(shutil.rmtree, self.root)
        os.makedirs(os.path.join(self.root, "src"))

    def write(self, relpath, text):
        path = os.path.join(self.root, relpath)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "w", encoding="utf-8") as f:
            f.write(text)
        return path

    def lint(self, *extra):
        return run_lint("--root", self.root, "--no-baseline", *extra)


CLEAN_CPP = """\
#include "common/util.hpp"
namespace asyncdr {
int f() { return 1; }
}  // namespace asyncdr
"""


class RuleDetection(TreeCase):
    def test_clean_tree_passes(self):
        self.write("src/common/util.hpp",
                   "#pragma once\nnamespace asyncdr {}\n")
        self.write("src/common/util.cpp", CLEAN_CPP)
        status, out = self.lint()
        self.assertEqual(status, 0, out)

    def test_dr001_wall_clock(self):
        self.write("src/sim/clock.cpp",
                   "namespace asyncdr {\n"
                   "auto t = std::chrono::steady_clock::now();\n}\n")
        status, out = self.lint()
        self.assertEqual(status, 1)
        self.assertIn("DR001", out)
        self.assertIn("src/sim/clock.cpp:2", out)

    def test_dr001_time_call_but_not_identifiers_containing_time(self):
        self.write("src/sim/clock.cpp",
                   "namespace asyncdr {\n"
                   "double a = termination_time();\n"
                   "long b = time(nullptr);\n}\n")
        status, out = self.lint()
        self.assertEqual(status, 1)
        self.assertIn("clock.cpp:3", out)
        self.assertNotIn("clock.cpp:2", out)

    def test_dr002_random_device(self):
        self.write("src/protocols/p.cpp",
                   "namespace asyncdr {\nstd::random_device rd;\n}\n")
        status, out = self.lint()
        self.assertEqual(status, 1)
        self.assertIn("DR002", out)

    def test_dr002_exempts_rng_files(self):
        self.write("src/common/rng.cpp",
                   "namespace asyncdr {\nstd::mt19937 gen(42);\n}\n")
        status, out = self.lint()
        self.assertEqual(status, 0, out)

    def test_dr002_ignores_comments_and_strings(self):
        self.write("src/protocols/p.cpp",
                   "namespace asyncdr {\n"
                   "// std::random_device would break determinism\n"
                   'const char* s = "rand()";\n}\n')
        status, out = self.lint()
        self.assertEqual(status, 0, out)

    def test_dr003_source_internals(self):
        self.write("src/protocols/p.cpp",
                   "namespace asyncdr {\n"
                   "void f(W& w) { w.source().set_overlay(0, fake); }\n}\n")
        status, out = self.lint()
        self.assertEqual(status, 1)
        self.assertIn("DR003", out)

    def test_dr003_exempts_oracle_and_source(self):
        self.write("src/oracle/dyn.cpp",
                   "namespace asyncdr {\n"
                   "void f(W& w) { w.source().set_data(BitVec{}); }\n}\n")
        self.write("src/dr/source.cpp",
                   "namespace asyncdr {\n"
                   "void Source::reset_accounting() {}\n}\n")
        status, out = self.lint()
        self.assertEqual(status, 0, out)

    def test_dr004_stdout_in_src_only(self):
        self.write("src/common/a.cpp",
                   'namespace asyncdr {\nvoid f() { std::cout << 1; }\n}\n')
        self.write("examples/cli.cpp", 'int main() { std::cout << 1; }\n')
        status, out = self.lint()
        self.assertEqual(status, 1)
        self.assertIn("src/common/a.cpp", out)
        self.assertNotIn("examples/cli.cpp", out)

    def test_dr005_pragma_once(self):
        self.write("src/common/h.hpp", "namespace asyncdr {}\n")
        status, out = self.lint()
        self.assertEqual(status, 1)
        self.assertIn("DR005", out)

    def test_dr006_parent_relative_include(self):
        self.write("src/common/a.cpp",
                   '#include "../dr/world.hpp"\nnamespace asyncdr {}\n')
        status, out = self.lint()
        self.assertEqual(status, 1)
        self.assertIn("DR006", out)

    def test_dr006_unresolvable_quoted_include(self):
        self.write("src/common/a.cpp",
                   '#include "no/such/file.hpp"\nnamespace asyncdr {}\n')
        status, out = self.lint()
        self.assertEqual(status, 1)
        self.assertIn("DR006", out)

    def test_dr006_accepts_src_rooted_and_sibling_includes(self):
        self.write("src/common/h.hpp", "#pragma once\nnamespace asyncdr {}\n")
        self.write("src/common/a.cpp",
                   '#include "common/h.hpp"\nnamespace asyncdr {}\n')
        self.write("bench/bench_common.hpp",
                   "#pragma once\nnamespace asyncdr {}\n")
        self.write("bench/b.cpp",
                   '#include "bench_common.hpp"\nnamespace asyncdr {}\n')
        status, out = self.lint()
        self.assertEqual(status, 0, out)

    def test_dr006_angle_include_of_project_header(self):
        self.write("src/common/h.hpp", "#pragma once\nnamespace asyncdr {}\n")
        self.write("src/common/a.cpp",
                   "#include <common/h.hpp>\nnamespace asyncdr {}\n")
        status, out = self.lint()
        self.assertEqual(status, 1)
        self.assertIn("angle", out)

    def test_dr007_namespace(self):
        self.write("src/common/a.cpp", "int global_thing() { return 2; }\n")
        status, out = self.lint()
        self.assertEqual(status, 1)
        self.assertIn("DR007", out)

    def test_dr008_raw_throw(self):
        self.write("src/common/a.cpp",
                   "namespace asyncdr {\n"
                   'void f() { throw std::runtime_error("x"); }\n}\n')
        status, out = self.lint()
        self.assertEqual(status, 1)
        self.assertIn("DR008", out)

    def test_dr008_exempts_check_hpp(self):
        self.write("src/common/check.hpp",
                   "#pragma once\nnamespace asyncdr {\n"
                   "[[noreturn]] void fail() { throw 1; }\n}\n")
        status, out = self.lint()
        self.assertEqual(status, 0, out)

    def test_dr009_protocol_without_begin_phase(self):
        self.write("src/protocols/runner.cpp",
                   "namespace asyncdr {\n"
                   "auto f = std::make_unique<FooPeer>();\n}\n")
        self.write("src/protocols/foo.cpp",
                   "namespace asyncdr {\n"
                   "void FooPeer::on_start() { query(0); }\n}\n")
        status, out = self.lint()
        self.assertEqual(status, 1)
        self.assertIn("DR009", out)
        self.assertIn("FooPeer", out)

    def test_dr009_attack_peers_exempt(self):
        self.write("src/protocols/runner.cpp",
                   "namespace asyncdr {\n"
                   "auto f = std::make_unique<LiarPeer>();\n}\n")
        self.write("src/protocols/attacks.cpp",
                   "namespace asyncdr {\n"
                   "void LiarPeer::on_start() {}\n}\n")
        status, out = self.lint()
        self.assertEqual(status, 0, out)

    def test_dr010_thread_primitives(self):
        self.write("src/dr/world.cpp",
                   "namespace asyncdr {\nstd::mutex m;\n}\n")
        status, out = self.lint()
        self.assertEqual(status, 1)
        self.assertIn("DR010", out)

    def test_dr010_chaos_campaign_and_threads_exempt(self):
        self.write("src/chaos/runner.cpp",
                   "namespace asyncdr {\nstd::thread t;\n}\n")
        self.write("src/campaign/runner.cpp",
                   "namespace asyncdr {\nstd::atomic<int> cursor;\n}\n")
        self.write("src/common/threads.cpp",
                   "namespace asyncdr {\nint n = "
                   "std::thread::hardware_concurrency();\n}\n")
        status, out = self.lint()
        self.assertEqual(status, 0, out)

    def test_dr011_fstream_in_model_code(self):
        self.write("src/dr/world.cpp",
                   "namespace asyncdr {\n"
                   'std::ofstream log("state.bin");\n}\n')
        status, out = self.lint()
        self.assertEqual(status, 1)
        self.assertIn("DR011", out)

    def test_dr011_fopen_and_filesystem(self):
        self.write("src/protocols/p.cpp",
                   "namespace asyncdr {\n"
                   'FILE* f = fopen("x", "wb");\n'
                   'bool e = std::filesystem::exists("x");\n}\n')
        status, out = self.lint()
        self.assertEqual(status, 1)
        self.assertIn("p.cpp:2", out)
        self.assertIn("p.cpp:3", out)

    def test_dr011_journal_exempt(self):
        self.write("src/dr/journal.cpp",
                   "namespace asyncdr {\n"
                   'std::fstream backing("journal.bin");\n}\n')
        status, out = self.lint()
        self.assertEqual(status, 0, out)

    def test_dr011_bench_and_examples_exempt(self):
        self.write("bench/b.cpp",
                   "namespace asyncdr {\n"
                   'std::ofstream out("BENCH_x.json");\n}\n')
        self.write("examples/cli.cpp",
                   'int main() { std::ofstream f("report.json"); }\n')
        status, out = self.lint()
        self.assertEqual(status, 0, out)

    def test_dr011_identifiers_containing_fopen_ok(self):
        self.write("src/dr/p.cpp",
                   "namespace asyncdr {\n"
                   "int reopened = count_reopened();\n}\n")
        status, out = self.lint()
        self.assertEqual(status, 0, out)

    def test_dr012_static_world_in_campaign(self):
        self.write("src/campaign/runner.cpp",
                   "namespace asyncdr {\n"
                   "static dr::World shared_world;\n}\n")
        status, out = self.lint()
        self.assertEqual(status, 1)
        self.assertIn("DR012", out)
        self.assertIn("src/campaign/runner.cpp:2", out)

    def test_dr012_shared_ptr_engine_in_chaos(self):
        self.write("src/chaos/runner.cpp",
                   "namespace asyncdr {\n"
                   "std::shared_ptr<sim::Engine> cached_engine;\n}\n")
        status, out = self.lint()
        self.assertEqual(status, 1)
        self.assertIn("DR012", out)

    def test_dr012_run_local_worlds_and_static_const_ok(self):
        self.write("src/campaign/runner.cpp",
                   "namespace asyncdr {\n"
                   "static const dr::World* kNoWorld = nullptr;\n"
                   "void run_one() { dr::World world; (void)world; }\n}\n")
        status, out = self.lint()
        self.assertEqual(status, 0, out)

    def test_dr012_outside_sweep_dirs_ignored(self):
        # The rule guards the fan-out layers; dr/ itself composes worlds
        # from engines by design.
        self.write("src/dr/world.cpp",
                   "namespace asyncdr {\n"
                   "std::shared_ptr<sim::Engine> engine_;\n}\n")
        status, out = self.lint()
        self.assertEqual(status, 0, out)


class Suppressions(TreeCase):
    def test_same_line_allow(self):
        self.write("src/common/a.cpp",
                   "namespace asyncdr {\n"
                   "std::cout << 1;  // asyncdr-lint: allow(DR004) renderer\n"
                   "}\n")
        status, out = self.lint()
        self.assertEqual(status, 0, out)

    def test_comment_block_above_allow(self):
        self.write("src/common/a.cpp",
                   "namespace asyncdr {\n"
                   "// asyncdr-lint: allow(DR004) this renderer's whole job\n"
                   "// is console output, reason spans two comment lines.\n"
                   "std::cout << 1;\n}\n")
        status, out = self.lint()
        self.assertEqual(status, 0, out)

    def test_allow_does_not_leak_past_code_line(self):
        self.write("src/common/a.cpp",
                   "namespace asyncdr {\n"
                   "// asyncdr-lint: allow(DR004)\n"
                   "int x = 0;\n"
                   "std::cout << x;\n}\n")
        status, out = self.lint()
        self.assertEqual(status, 1)

    def test_allow_wrong_rule_does_not_suppress(self):
        self.write("src/common/a.cpp",
                   "namespace asyncdr {\n"
                   "std::cout << 1;  // asyncdr-lint: allow(DR001)\n"
                   "}\n")
        status, out = self.lint()
        self.assertEqual(status, 1)

    def test_disable_file(self):
        self.write("src/common/a.cpp",
                   "// asyncdr-lint: disable-file(DR004) report renderer\n"
                   "namespace asyncdr {\n"
                   "std::cout << 1;\nstd::cerr << 2;\n}\n")
        status, out = self.lint()
        self.assertEqual(status, 0, out)


class BaselineAndOutputs(TreeCase):
    def test_baseline_roundtrip(self):
        self.write("src/common/a.cpp",
                   "namespace asyncdr {\nstd::cout << 1;\n}\n")
        baseline = os.path.join(self.root, "baseline.json")
        status, _ = run_lint("--root", self.root, "--baseline", baseline,
                             "--write-baseline")
        self.assertEqual(status, 0)
        status, out = run_lint("--root", self.root, "--baseline", baseline)
        self.assertEqual(status, 0, out)
        self.assertIn("baselined", out)
        # A NEW finding is still fatal.
        self.write("src/common/b.cpp",
                   "namespace asyncdr {\nstd::cout << 2;\n}\n")
        status, out = run_lint("--root", self.root, "--baseline", baseline)
        self.assertEqual(status, 1)
        self.assertIn("b.cpp", out)

    def test_baseline_survives_line_shifts(self):
        self.write("src/common/a.cpp",
                   "namespace asyncdr {\nstd::cout << 1;\n}\n")
        baseline = os.path.join(self.root, "baseline.json")
        run_lint("--root", self.root, "--baseline", baseline,
                 "--write-baseline")
        self.write("src/common/a.cpp",
                   "namespace asyncdr {\nint pad;\nint pad2;\n"
                   "std::cout << 1;\n}\n")
        status, out = run_lint("--root", self.root, "--baseline", baseline)
        self.assertEqual(status, 0, out)

    def test_sarif_output(self):
        self.write("src/common/a.cpp",
                   "namespace asyncdr {\nstd::cout << 1;\n}\n")
        sarif_path = os.path.join(self.root, "out.sarif")
        status, _ = self.lint("--sarif", sarif_path)
        self.assertEqual(status, 1)
        with open(sarif_path, encoding="utf-8") as f:
            doc = json.load(f)
        self.assertEqual(doc["version"], "2.1.0")
        run = doc["runs"][0]
        self.assertGreaterEqual(len(run["tool"]["driver"]["rules"]), 8)
        self.assertEqual(len(run["results"]), 1)
        result = run["results"][0]
        self.assertEqual(result["ruleId"], "DR004")
        loc = result["locations"][0]["physicalLocation"]
        self.assertEqual(loc["artifactLocation"]["uri"], "src/common/a.cpp")
        self.assertEqual(loc["region"]["startLine"], 2)

    def test_sarif_carries_dr012_rule_and_result(self):
        self.write("src/campaign/worker.cpp",
                   "namespace asyncdr {\n"
                   "static sim::Engine shared_engine;\n}\n")
        sarif_path = os.path.join(self.root, "out.sarif")
        status, _ = self.lint("--sarif", sarif_path)
        self.assertEqual(status, 1)
        with open(sarif_path, encoding="utf-8") as f:
            doc = json.load(f)
        run = doc["runs"][0]
        rule_ids = [r["id"] for r in run["tool"]["driver"]["rules"]]
        self.assertIn("DR012", rule_ids)
        results = [r for r in run["results"] if r["ruleId"] == "DR012"]
        self.assertEqual(len(results), 1)
        loc = results[0]["locations"][0]["physicalLocation"]
        self.assertEqual(loc["artifactLocation"]["uri"],
                         "src/campaign/worker.cpp")
        self.assertEqual(loc["region"]["startLine"], 2)

    def test_list_rules_documents_at_least_eight(self):
        status, out = run_lint("--list-rules")
        self.assertEqual(status, 0)
        rule_ids = [line.split()[0] for line in out.splitlines()
                    if line.startswith("DR")]
        self.assertGreaterEqual(len(rule_ids), 8)
        self.assertEqual(len(rule_ids), len(set(rule_ids)))

    def test_every_rule_has_a_detection_test(self):
        # Contract for contributors (DESIGN.md "Adding a rule"): each DRxxx
        # must come with at least one test_drxxx_* method in RuleDetection.
        detection = {name.split("_")[1] for name in dir(RuleDetection)
                     if name.startswith("test_dr")}
        for rule in lint.RULES:
            self.assertIn(rule.id.lower(), detection,
                          f"{rule.id} has no detection test")


class SeededRegressionOnRealTree(unittest.TestCase):
    """Copy the actual repo sources, inject a model violation into a protocol
    file, and require the linter to catch it — proves the deployed rule set
    guards the real tree, not just synthetic fixtures."""

    def setUp(self):
        self.root = tempfile.mkdtemp(prefix="asyncdr-lint-seeded-")
        self.addCleanup(shutil.rmtree, self.root)
        shutil.copytree(os.path.join(REPO_ROOT, "src"),
                        os.path.join(self.root, "src"))

    def test_real_tree_copy_is_clean(self):
        status, out = run_lint("--root", self.root, "--no-baseline")
        self.assertEqual(status, 0, out)

    def test_injected_random_device_is_caught(self):
        victim = os.path.join(self.root, "src", "protocols", "naive.cpp")
        with open(victim, "a", encoding="utf-8") as f:
            f.write("\nnamespace asyncdr::proto {\n"
                    "static std::random_device entropy_leak;\n}\n")
        status, out = run_lint("--root", self.root, "--no-baseline")
        self.assertEqual(status, 1)
        self.assertIn("DR002", out)
        self.assertIn("naive.cpp", out)

    def test_injected_wall_clock_is_caught(self):
        victim = os.path.join(self.root, "src", "sim", "engine.cpp")
        with open(victim, "a", encoding="utf-8") as f:
            f.write("\nnamespace asyncdr::sim {\nlong boot_ns() { return "
                    "std::chrono::steady_clock::now().time_since_epoch()"
                    ".count(); }\n}\n")
        status, out = run_lint("--root", self.root, "--no-baseline")
        self.assertEqual(status, 1)
        self.assertIn("DR001", out)

    def test_injected_unaccounted_source_access_is_caught(self):
        victim = os.path.join(self.root, "src", "protocols", "committee.cpp")
        with open(victim, "a", encoding="utf-8") as f:
            f.write("\nnamespace asyncdr::proto {\nvoid peek(dr::World& w) "
                    "{ auto& x = w.source().data(); (void)x; }\n}\n")
        status, out = run_lint("--root", self.root, "--no-baseline")
        self.assertEqual(status, 1)
        self.assertIn("DR003", out)

    def test_injected_ad_hoc_persistence_is_caught(self):
        victim = os.path.join(self.root, "src", "protocols", "crash_multi.cpp")
        with open(victim, "a", encoding="utf-8") as f:
            f.write("\nnamespace asyncdr::proto {\nvoid persist() "
                    '{ std::ofstream f("peer_state.bin"); }\n}\n')
        status, out = run_lint("--root", self.root, "--no-baseline")
        self.assertEqual(status, 1)
        self.assertIn("DR011", out)
        self.assertIn("crash_multi.cpp", out)

    def test_injected_cross_world_sharing_is_caught(self):
        victim = os.path.join(self.root, "src", "campaign", "runner.cpp")
        with open(victim, "a", encoding="utf-8") as f:
            f.write("\nnamespace asyncdr::campaign {\n"
                    "static dr::World recycled_world;\n}\n")
        status, out = run_lint("--root", self.root, "--no-baseline")
        self.assertEqual(status, 1)
        self.assertIn("DR012", out)
        self.assertIn("runner.cpp", out)


if __name__ == "__main__":
    unittest.main()
