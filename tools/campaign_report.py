#!/usr/bin/env python3
"""Render campaign telemetry into a self-contained HTML or markdown report.

Usage: campaign_report.py SUMMARY.json [SUMMARY.json ...]
           [--events EVENTS.jsonl ...] [--format html|md] [--out FILE]
           [--title TITLE]

Each positional argument is an asyncdr-campaign-v1 summary JSON; repeated
--events flags attach JSONL event streams to the summaries in order (the
first --events to the first summary, and so on). The report renders, per
campaign:

  * the run ledger (total / ok / failed / degraded)
  * Q/T/M (+ events, recovery counters when present) percentile tables from
    the summary's log-bucketed histograms
  * the per-label breakdown (protocols, bench series, adversaries)
  * the worst run and the failure roster
  * from the event stream, when attached: wall-clock span and throughput,
    the slowest runs, and every shrink/repro line

The HTML output inlines all styling (no external assets), so a CI artifact
renders anywhere. Exit status: 0 = rendered, 2 = usage/parse error.
Zero third-party dependencies by design.
"""

import argparse
import html
import json
import sys

PCT_COLUMNS = ("count", "min", "p50", "p90", "p99", "max", "mean_est")


def fmt(v):
    """Compact numeric rendering for table cells."""
    if v is None:
        return "-"
    if isinstance(v, bool):
        return str(v)
    if isinstance(v, (int, float)):
        if isinstance(v, float) and v != int(v):
            return f"{v:.4g}"
        return f"{int(v)}"
    return str(v)


def load_summary(path):
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"error: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)
    if doc.get("schema") != "asyncdr-campaign-v1":
        print(f"error: {path} is not an asyncdr-campaign-v1 summary",
              file=sys.stderr)
        sys.exit(2)
    return doc


def load_events(path):
    events = []
    try:
        with open(path, encoding="utf-8") as f:
            for raw in f:
                raw = raw.strip()
                if raw:
                    events.append(json.loads(raw))
    except (OSError, json.JSONDecodeError) as e:
        print(f"error: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)
    return events


def metric_rows(metrics):
    """(header, rows) for the percentile table of one metrics block."""
    rows = []
    for name, snap in metrics.items():
        if not isinstance(snap, dict) or "p50" not in snap:
            continue
        rows.append([name] + [fmt(snap.get(c)) for c in PCT_COLUMNS])
    return ["metric"] + list(PCT_COLUMNS), rows


def label_rows(by_label):
    header = ["label", "runs", "ok", "failed", "degraded",
              "Q p50", "Q p90", "Q p99", "T p50", "M p50"]
    rows = []
    for label, m in by_label.items():
        q = m.get("q", {})
        rows.append([label, fmt(m.get("runs")), fmt(m.get("ok")),
                     fmt(m.get("failed")), fmt(m.get("degraded")),
                     fmt(q.get("p50")), fmt(q.get("p90")), fmt(q.get("p99")),
                     fmt(m.get("t", {}).get("p50")),
                     fmt(m.get("m", {}).get("p50"))])
    return header, rows


def event_digest(events):
    """Extracts the report-worthy view of one JSONL stream."""
    digest = {"span_ms": None, "throughput": None, "slowest": [],
              "shrinks": [], "repros": []}
    if not events:
        return digest
    ts = [e["ts_ms"] for e in events if isinstance(e.get("ts_ms"), (int, float))]
    terminal = [e for e in events if e.get("ev") in ("run_finished",
                                                     "run_failed")]
    if ts:
        digest["span_ms"] = max(ts) - min(ts)
        if digest["span_ms"] > 0 and terminal:
            digest["throughput"] = 1000.0 * len(terminal) / digest["span_ms"]
    digest["slowest"] = sorted(
        (e for e in terminal if isinstance(e.get("wall_ms"), (int, float))),
        key=lambda e: -e["wall_ms"])[:5]
    digest["shrinks"] = [e for e in events if e.get("ev") == "shrink_step"]
    digest["repros"] = [e for e in events if e.get("ev") == "repro"]
    return digest


# --- markdown ---------------------------------------------------------------

def md_table(header, rows):
    out = ["| " + " | ".join(header) + " |",
           "|" + "|".join("---" for _ in header) + "|"]
    for row in rows:
        out.append("| " + " | ".join(str(c) for c in row) + " |")
    return "\n".join(out)


def render_md(title, campaigns):
    out = [f"# {title}", ""]
    for doc, digest in campaigns:
        runs = doc.get("runs", {})
        out += [f"## Campaign `{doc.get('campaign', '?')}`", "",
                f"{runs.get('total', '?')} runs: "
                f"{runs.get('ok', '?')} ok, {runs.get('failed', '?')} failed, "
                f"{runs.get('degraded', '?')} degraded "
                f"(seed base {doc.get('seed_base', '?')})", ""]
        header, rows = metric_rows(doc.get("metrics", {}))
        if rows:
            out += ["### Distribution percentiles", "",
                    md_table(header, rows), ""]
        header, rows = label_rows(doc.get("by_label", {}))
        if rows:
            out += ["### Per-label breakdown", "", md_table(header, rows), ""]
        worst = doc.get("worst", {})
        if worst.get("max_q"):
            w = worst["max_q"]
            out += [f"Worst run by Q: index {w.get('index')}, "
                    f"seed {w.get('seed')}, Q={w.get('q')}", ""]
        failures = worst.get("failures", [])
        if failures:
            out += [f"### Failures ({worst.get('failure_count', len(failures))})",
                    ""]
            for f in failures:
                out.append(f"- run {f.get('index')} seed {f.get('seed')} "
                           f"[{f.get('label')}]: {f.get('detail')}")
            out.append("")
        timing = doc.get("timing")
        if timing:
            out += [f"Timing (machine-dependent): total wall "
                    f"{fmt(timing.get('wall_ms_total'))} ms, peak RSS "
                    f"{fmt(timing.get('rss_mb_final'))} MB", ""]
        if digest:
            if digest["span_ms"] is not None:
                line = f"Event stream: {fmt(digest['span_ms'])} ms span"
                if digest["throughput"]:
                    line += f", {digest['throughput']:.1f} runs/s"
                out += [line, ""]
            if digest["slowest"]:
                out += ["### Slowest runs", "",
                        md_table(["run", "seed", "label", "wall ms"],
                                 [[e.get("run"), e.get("seed"),
                                   e.get("label"), fmt(e.get("wall_ms"))]
                                  for e in digest["slowest"]]), ""]
            for r in digest["repros"]:
                out.append(f"- repro ({r.get('protocol')} seed "
                           f"{r.get('seed')}, {len(digest['shrinks'])} shrink "
                           f"step(s)): `{r.get('command')}`")
            if digest["repros"]:
                out.append("")
    return "\n".join(out) + "\n"


# --- html -------------------------------------------------------------------

CSS = """
body { font-family: system-ui, sans-serif; margin: 2rem auto;
       max-width: 70rem; color: #1a1a2e; }
h1 { border-bottom: 2px solid #16324f; padding-bottom: .3rem; }
h2 { color: #16324f; margin-top: 2rem; }
table { border-collapse: collapse; margin: .8rem 0; }
th, td { border: 1px solid #b8c4d0; padding: .25rem .6rem;
         font-variant-numeric: tabular-nums; text-align: right; }
th { background: #e8eef4; }
td:first-child, th:first-child { text-align: left; }
code { background: #f0f2f5; padding: .1rem .3rem; }
.fail { color: #a02020; }
.note { color: #555; }
"""


def html_table(header, rows):
    out = ["<table><tr>" + "".join(f"<th>{html.escape(str(h))}</th>"
                                   for h in header) + "</tr>"]
    for row in rows:
        out.append("<tr>" + "".join(f"<td>{html.escape(str(c))}</td>"
                                    for c in row) + "</tr>")
    out.append("</table>")
    return "\n".join(out)


def render_html(title, campaigns):
    out = ["<!doctype html>", "<html><head><meta charset=\"utf-8\">",
           f"<title>{html.escape(title)}</title>",
           f"<style>{CSS}</style></head><body>",
           f"<h1>{html.escape(title)}</h1>"]
    for doc, digest in campaigns:
        runs = doc.get("runs", {})
        out.append(f"<h2>Campaign <code>"
                   f"{html.escape(str(doc.get('campaign', '?')))}</code></h2>")
        out.append(f"<p>{runs.get('total', '?')} runs: {runs.get('ok', '?')} "
                   f"ok, <span class=\"fail\">{runs.get('failed', '?')} "
                   f"failed</span>, {runs.get('degraded', '?')} degraded "
                   f"(seed base {doc.get('seed_base', '?')})</p>")
        header, rows = metric_rows(doc.get("metrics", {}))
        if rows:
            out.append("<h3>Distribution percentiles</h3>")
            out.append(html_table(header, rows))
        header, rows = label_rows(doc.get("by_label", {}))
        if rows:
            out.append("<h3>Per-label breakdown</h3>")
            out.append(html_table(header, rows))
        worst = doc.get("worst", {})
        if worst.get("max_q"):
            w = worst["max_q"]
            out.append(f"<p>Worst run by Q: index {w.get('index')}, seed "
                       f"{w.get('seed')}, Q={w.get('q')}</p>")
        failures = worst.get("failures", [])
        if failures:
            out.append(f"<h3>Failures "
                       f"({worst.get('failure_count', len(failures))})</h3><ul>")
            for f in failures:
                out.append(f"<li class=\"fail\">run {f.get('index')} seed "
                           f"{f.get('seed')} [{html.escape(str(f.get('label')))}]: "
                           f"{html.escape(str(f.get('detail')))}</li>")
            out.append("</ul>")
        timing = doc.get("timing")
        if timing:
            out.append(f"<p class=\"note\">Timing (machine-dependent): total "
                       f"wall {fmt(timing.get('wall_ms_total'))} ms, peak RSS "
                       f"{fmt(timing.get('rss_mb_final'))} MB</p>")
        if digest:
            if digest["span_ms"] is not None:
                line = (f"Event stream: {fmt(digest['span_ms'])} ms span")
                if digest["throughput"]:
                    line += f", {digest['throughput']:.1f} runs/s"
                out.append(f"<p class=\"note\">{html.escape(line)}</p>")
            if digest["slowest"]:
                out.append("<h3>Slowest runs</h3>")
                out.append(html_table(
                    ["run", "seed", "label", "wall ms"],
                    [[e.get("run"), e.get("seed"), e.get("label"),
                      fmt(e.get("wall_ms"))] for e in digest["slowest"]]))
            if digest["repros"]:
                out.append("<h3>Repro lines</h3><ul>")
                for r in digest["repros"]:
                    out.append(f"<li>{html.escape(str(r.get('protocol')))} "
                               f"seed {r.get('seed')}: <code>"
                               f"{html.escape(str(r.get('command')))}</code></li>")
                out.append("</ul>")
    out.append("</body></html>")
    return "\n".join(out) + "\n"


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("summaries", nargs="+",
                    help="asyncdr-campaign-v1 summary JSON file(s)")
    ap.add_argument("--events", action="append", default=[],
                    help="JSONL event stream, matched to summaries in order")
    ap.add_argument("--format", choices=("html", "md"), default="html")
    ap.add_argument("--out", help="output file (default: stdout)")
    ap.add_argument("--title", default="asyncdr campaign report")
    args = ap.parse_args()

    if len(args.events) > len(args.summaries):
        print("error: more --events streams than summaries", file=sys.stderr)
        return 2

    campaigns = []
    for i, path in enumerate(args.summaries):
        doc = load_summary(path)
        digest = None
        if i < len(args.events):
            digest = event_digest(load_events(args.events[i]))
        campaigns.append((doc, digest))

    render = render_html if args.format == "html" else render_md
    text = render(args.title, campaigns)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as f:
            f.write(text)
        print(f"wrote {args.format} report: {args.out}", file=sys.stderr)
    else:
        sys.stdout.write(text)
    return 0


if __name__ == "__main__":
    sys.exit(main())
