#!/usr/bin/env bash
# clang-tidy driver: runs the curated .clang-tidy profile over every
# translation unit under src/ (plus bench/ and examples/) using the compile
# database a CMake configure exports.
#
# Usage:
#   tools/run_tidy.sh [-p BUILD_DIR] [--fix] [files...]
#
#   -p BUILD_DIR   build tree holding compile_commands.json (default: build,
#                  then build/dev)
#   --fix          apply clang-tidy's suggested fixes in place
#   files...       restrict to specific source files (default: all of
#                  src/ bench/ examples/ from the compile database)
#
# Exit status: 0 clean, 1 findings (WarningsAsErrors promotes every finding),
# 77 when no clang-tidy binary is available (skipped). CI treats 77 as a
# hard failure by exporting ASYNCDR_REQUIRE_TIDY=1; local runs without the
# tool just skip.
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR=""
FIX=""
FILES=()
while [[ $# -gt 0 ]]; do
  case "$1" in
    -p) BUILD_DIR="$2"; shift 2 ;;
    --fix) FIX="--fix"; shift ;;
    -h|--help) sed -n '2,18p' "$0"; exit 0 ;;
    *) FILES+=("$1"); shift ;;
  esac
done

TIDY="${CLANG_TIDY:-}"
if [[ -z "$TIDY" ]]; then
  for candidate in clang-tidy clang-tidy-20 clang-tidy-19 clang-tidy-18 \
                   clang-tidy-17 clang-tidy-16 clang-tidy-15 clang-tidy-14; do
    if command -v "$candidate" >/dev/null 2>&1; then
      TIDY="$candidate"
      break
    fi
  done
fi
if [[ -z "$TIDY" ]]; then
  echo "run_tidy: no clang-tidy binary found (set CLANG_TIDY=...)" >&2
  if [[ "${ASYNCDR_REQUIRE_TIDY:-0}" == "1" ]]; then
    exit 1
  fi
  echo "run_tidy: skipping (export ASYNCDR_REQUIRE_TIDY=1 to make this fatal)" >&2
  exit 77
fi

if [[ -z "$BUILD_DIR" ]]; then
  for candidate in build build/dev; do
    if [[ -f "$candidate/compile_commands.json" ]]; then
      BUILD_DIR="$candidate"
      break
    fi
  done
fi
if [[ -z "$BUILD_DIR" || ! -f "$BUILD_DIR/compile_commands.json" ]]; then
  echo "run_tidy: no compile_commands.json; configure first, e.g." >&2
  echo "  cmake --preset dev" >&2
  exit 1
fi

if [[ ${#FILES[@]} -eq 0 ]]; then
  # Every TU in the compile database that lives under src/, bench/, or
  # examples/ (tests are not tidy-gated: GTest macros trip too many checks
  # to be worth the noise).
  mapfile -t FILES < <(python3 - "$BUILD_DIR/compile_commands.json" <<'EOF'
import json
import os
import sys

root = os.getcwd()
seen = set()
for entry in json.load(open(sys.argv[1])):
    path = os.path.normpath(os.path.join(entry["directory"], entry["file"]))
    rel = os.path.relpath(path, root)
    if rel.startswith(("src/", "bench/", "examples/")) and rel not in seen:
        seen.add(rel)
        print(rel)
EOF
)
fi

echo "run_tidy: $TIDY over ${#FILES[@]} file(s) (db: $BUILD_DIR)"
STATUS=0
FAILED=()
for f in "${FILES[@]}"; do
  if ! "$TIDY" -p "$BUILD_DIR" --quiet $FIX "$f"; then
    STATUS=1
    FAILED+=("$f")
  fi
done
if [[ $STATUS -ne 0 ]]; then
  echo "run_tidy: findings in ${#FAILED[@]} file(s):" >&2
  printf '  %s\n' "${FAILED[@]}" >&2
fi
exit $STATUS
