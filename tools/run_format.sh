#!/usr/bin/env bash
# clang-format driver over every tracked C++ file.
#
# Usage:
#   tools/run_format.sh --check   # dry run; nonzero if anything would change
#   tools/run_format.sh --fix     # rewrite files in place
#
# Exit status: 0 clean/fixed, 1 check found unformatted files, 77 when no
# clang-format binary is available (skipped; CI exports
# ASYNCDR_REQUIRE_FORMAT=1 to make that fatal).
set -euo pipefail

cd "$(dirname "$0")/.."

MODE="${1:---check}"
case "$MODE" in
  --check|--fix) ;;
  *) echo "usage: $0 [--check|--fix]" >&2; exit 2 ;;
esac

FMT="${CLANG_FORMAT:-}"
if [[ -z "$FMT" ]]; then
  for candidate in clang-format clang-format-20 clang-format-19 \
                   clang-format-18 clang-format-17 clang-format-16 \
                   clang-format-15 clang-format-14; do
    if command -v "$candidate" >/dev/null 2>&1; then
      FMT="$candidate"
      break
    fi
  done
fi
if [[ -z "$FMT" ]]; then
  echo "run_format: no clang-format binary found (set CLANG_FORMAT=...)" >&2
  if [[ "${ASYNCDR_REQUIRE_FORMAT:-0}" == "1" ]]; then
    exit 1
  fi
  echo "run_format: skipping (export ASYNCDR_REQUIRE_FORMAT=1 to make this fatal)" >&2
  exit 77
fi

mapfile -t FILES < <(git ls-files '*.cpp' '*.hpp' '*.h' '*.cc')
if [[ ${#FILES[@]} -eq 0 ]]; then
  echo "run_format: no C++ files tracked" >&2
  exit 0
fi

if [[ "$MODE" == "--fix" ]]; then
  "$FMT" -i "${FILES[@]}"
  echo "run_format: formatted ${#FILES[@]} file(s)"
  exit 0
fi

if ! "$FMT" --dry-run -Werror "${FILES[@]}"; then
  echo "run_format: formatting drift detected; run tools/run_format.sh --fix" >&2
  exit 1
fi
echo "run_format: ${#FILES[@]} file(s) clean"
