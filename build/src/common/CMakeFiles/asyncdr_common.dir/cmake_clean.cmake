file(REMOVE_RECURSE
  "CMakeFiles/asyncdr_common.dir/bitvec.cpp.o"
  "CMakeFiles/asyncdr_common.dir/bitvec.cpp.o.d"
  "CMakeFiles/asyncdr_common.dir/interval_set.cpp.o"
  "CMakeFiles/asyncdr_common.dir/interval_set.cpp.o.d"
  "CMakeFiles/asyncdr_common.dir/rng.cpp.o"
  "CMakeFiles/asyncdr_common.dir/rng.cpp.o.d"
  "CMakeFiles/asyncdr_common.dir/stats.cpp.o"
  "CMakeFiles/asyncdr_common.dir/stats.cpp.o.d"
  "CMakeFiles/asyncdr_common.dir/table.cpp.o"
  "CMakeFiles/asyncdr_common.dir/table.cpp.o.d"
  "libasyncdr_common.a"
  "libasyncdr_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asyncdr_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
