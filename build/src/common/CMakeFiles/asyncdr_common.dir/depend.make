# Empty dependencies file for asyncdr_common.
# This may be replaced when dependencies are built.
