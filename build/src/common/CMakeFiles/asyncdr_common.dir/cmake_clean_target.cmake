file(REMOVE_RECURSE
  "libasyncdr_common.a"
)
