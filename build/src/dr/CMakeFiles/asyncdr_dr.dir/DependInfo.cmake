
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dr/config.cpp" "src/dr/CMakeFiles/asyncdr_dr.dir/config.cpp.o" "gcc" "src/dr/CMakeFiles/asyncdr_dr.dir/config.cpp.o.d"
  "/root/repo/src/dr/peer.cpp" "src/dr/CMakeFiles/asyncdr_dr.dir/peer.cpp.o" "gcc" "src/dr/CMakeFiles/asyncdr_dr.dir/peer.cpp.o.d"
  "/root/repo/src/dr/source.cpp" "src/dr/CMakeFiles/asyncdr_dr.dir/source.cpp.o" "gcc" "src/dr/CMakeFiles/asyncdr_dr.dir/source.cpp.o.d"
  "/root/repo/src/dr/world.cpp" "src/dr/CMakeFiles/asyncdr_dr.dir/world.cpp.o" "gcc" "src/dr/CMakeFiles/asyncdr_dr.dir/world.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/asyncdr_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/asyncdr_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
