# Empty compiler generated dependencies file for asyncdr_dr.
# This may be replaced when dependencies are built.
