file(REMOVE_RECURSE
  "CMakeFiles/asyncdr_dr.dir/config.cpp.o"
  "CMakeFiles/asyncdr_dr.dir/config.cpp.o.d"
  "CMakeFiles/asyncdr_dr.dir/peer.cpp.o"
  "CMakeFiles/asyncdr_dr.dir/peer.cpp.o.d"
  "CMakeFiles/asyncdr_dr.dir/source.cpp.o"
  "CMakeFiles/asyncdr_dr.dir/source.cpp.o.d"
  "CMakeFiles/asyncdr_dr.dir/world.cpp.o"
  "CMakeFiles/asyncdr_dr.dir/world.cpp.o.d"
  "libasyncdr_dr.a"
  "libasyncdr_dr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asyncdr_dr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
