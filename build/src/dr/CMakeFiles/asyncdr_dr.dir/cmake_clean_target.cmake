file(REMOVE_RECURSE
  "libasyncdr_dr.a"
)
