file(REMOVE_RECURSE
  "libasyncdr_protocols.a"
)
