# Empty compiler generated dependencies file for asyncdr_protocols.
# This may be replaced when dependencies are built.
