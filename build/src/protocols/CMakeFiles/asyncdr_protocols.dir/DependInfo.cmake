
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/protocols/attacks.cpp" "src/protocols/CMakeFiles/asyncdr_protocols.dir/attacks.cpp.o" "gcc" "src/protocols/CMakeFiles/asyncdr_protocols.dir/attacks.cpp.o.d"
  "/root/repo/src/protocols/attacks2.cpp" "src/protocols/CMakeFiles/asyncdr_protocols.dir/attacks2.cpp.o" "gcc" "src/protocols/CMakeFiles/asyncdr_protocols.dir/attacks2.cpp.o.d"
  "/root/repo/src/protocols/bounds.cpp" "src/protocols/CMakeFiles/asyncdr_protocols.dir/bounds.cpp.o" "gcc" "src/protocols/CMakeFiles/asyncdr_protocols.dir/bounds.cpp.o.d"
  "/root/repo/src/protocols/byz2cycle.cpp" "src/protocols/CMakeFiles/asyncdr_protocols.dir/byz2cycle.cpp.o" "gcc" "src/protocols/CMakeFiles/asyncdr_protocols.dir/byz2cycle.cpp.o.d"
  "/root/repo/src/protocols/byzmulti.cpp" "src/protocols/CMakeFiles/asyncdr_protocols.dir/byzmulti.cpp.o" "gcc" "src/protocols/CMakeFiles/asyncdr_protocols.dir/byzmulti.cpp.o.d"
  "/root/repo/src/protocols/chunk.cpp" "src/protocols/CMakeFiles/asyncdr_protocols.dir/chunk.cpp.o" "gcc" "src/protocols/CMakeFiles/asyncdr_protocols.dir/chunk.cpp.o.d"
  "/root/repo/src/protocols/committee.cpp" "src/protocols/CMakeFiles/asyncdr_protocols.dir/committee.cpp.o" "gcc" "src/protocols/CMakeFiles/asyncdr_protocols.dir/committee.cpp.o.d"
  "/root/repo/src/protocols/crash_multi.cpp" "src/protocols/CMakeFiles/asyncdr_protocols.dir/crash_multi.cpp.o" "gcc" "src/protocols/CMakeFiles/asyncdr_protocols.dir/crash_multi.cpp.o.d"
  "/root/repo/src/protocols/crash_one.cpp" "src/protocols/CMakeFiles/asyncdr_protocols.dir/crash_one.cpp.o" "gcc" "src/protocols/CMakeFiles/asyncdr_protocols.dir/crash_one.cpp.o.d"
  "/root/repo/src/protocols/decision_tree.cpp" "src/protocols/CMakeFiles/asyncdr_protocols.dir/decision_tree.cpp.o" "gcc" "src/protocols/CMakeFiles/asyncdr_protocols.dir/decision_tree.cpp.o.d"
  "/root/repo/src/protocols/frequent.cpp" "src/protocols/CMakeFiles/asyncdr_protocols.dir/frequent.cpp.o" "gcc" "src/protocols/CMakeFiles/asyncdr_protocols.dir/frequent.cpp.o.d"
  "/root/repo/src/protocols/lowerbound.cpp" "src/protocols/CMakeFiles/asyncdr_protocols.dir/lowerbound.cpp.o" "gcc" "src/protocols/CMakeFiles/asyncdr_protocols.dir/lowerbound.cpp.o.d"
  "/root/repo/src/protocols/naive.cpp" "src/protocols/CMakeFiles/asyncdr_protocols.dir/naive.cpp.o" "gcc" "src/protocols/CMakeFiles/asyncdr_protocols.dir/naive.cpp.o.d"
  "/root/repo/src/protocols/params.cpp" "src/protocols/CMakeFiles/asyncdr_protocols.dir/params.cpp.o" "gcc" "src/protocols/CMakeFiles/asyncdr_protocols.dir/params.cpp.o.d"
  "/root/repo/src/protocols/runner.cpp" "src/protocols/CMakeFiles/asyncdr_protocols.dir/runner.cpp.o" "gcc" "src/protocols/CMakeFiles/asyncdr_protocols.dir/runner.cpp.o.d"
  "/root/repo/src/protocols/segments.cpp" "src/protocols/CMakeFiles/asyncdr_protocols.dir/segments.cpp.o" "gcc" "src/protocols/CMakeFiles/asyncdr_protocols.dir/segments.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dr/CMakeFiles/asyncdr_dr.dir/DependInfo.cmake"
  "/root/repo/build/src/adversary/CMakeFiles/asyncdr_adversary.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/asyncdr_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/asyncdr_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
