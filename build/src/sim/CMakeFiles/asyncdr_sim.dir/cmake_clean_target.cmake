file(REMOVE_RECURSE
  "libasyncdr_sim.a"
)
