file(REMOVE_RECURSE
  "CMakeFiles/asyncdr_sim.dir/engine.cpp.o"
  "CMakeFiles/asyncdr_sim.dir/engine.cpp.o.d"
  "CMakeFiles/asyncdr_sim.dir/message.cpp.o"
  "CMakeFiles/asyncdr_sim.dir/message.cpp.o.d"
  "CMakeFiles/asyncdr_sim.dir/network.cpp.o"
  "CMakeFiles/asyncdr_sim.dir/network.cpp.o.d"
  "CMakeFiles/asyncdr_sim.dir/trace.cpp.o"
  "CMakeFiles/asyncdr_sim.dir/trace.cpp.o.d"
  "libasyncdr_sim.a"
  "libasyncdr_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asyncdr_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
