# Empty dependencies file for asyncdr_sim.
# This may be replaced when dependencies are built.
