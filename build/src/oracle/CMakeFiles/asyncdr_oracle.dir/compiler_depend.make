# Empty compiler generated dependencies file for asyncdr_oracle.
# This may be replaced when dependencies are built.
