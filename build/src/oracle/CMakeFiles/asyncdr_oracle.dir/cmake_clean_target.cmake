file(REMOVE_RECURSE
  "libasyncdr_oracle.a"
)
