file(REMOVE_RECURSE
  "CMakeFiles/asyncdr_oracle.dir/dynamic.cpp.o"
  "CMakeFiles/asyncdr_oracle.dir/dynamic.cpp.o.d"
  "CMakeFiles/asyncdr_oracle.dir/odc.cpp.o"
  "CMakeFiles/asyncdr_oracle.dir/odc.cpp.o.d"
  "CMakeFiles/asyncdr_oracle.dir/source_bank.cpp.o"
  "CMakeFiles/asyncdr_oracle.dir/source_bank.cpp.o.d"
  "CMakeFiles/asyncdr_oracle.dir/value_source.cpp.o"
  "CMakeFiles/asyncdr_oracle.dir/value_source.cpp.o.d"
  "libasyncdr_oracle.a"
  "libasyncdr_oracle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asyncdr_oracle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
