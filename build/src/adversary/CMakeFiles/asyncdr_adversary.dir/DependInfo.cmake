
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/adversary/crash_plan.cpp" "src/adversary/CMakeFiles/asyncdr_adversary.dir/crash_plan.cpp.o" "gcc" "src/adversary/CMakeFiles/asyncdr_adversary.dir/crash_plan.cpp.o.d"
  "/root/repo/src/adversary/latency.cpp" "src/adversary/CMakeFiles/asyncdr_adversary.dir/latency.cpp.o" "gcc" "src/adversary/CMakeFiles/asyncdr_adversary.dir/latency.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dr/CMakeFiles/asyncdr_dr.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/asyncdr_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/asyncdr_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
