file(REMOVE_RECURSE
  "CMakeFiles/asyncdr_adversary.dir/crash_plan.cpp.o"
  "CMakeFiles/asyncdr_adversary.dir/crash_plan.cpp.o.d"
  "CMakeFiles/asyncdr_adversary.dir/latency.cpp.o"
  "CMakeFiles/asyncdr_adversary.dir/latency.cpp.o.d"
  "libasyncdr_adversary.a"
  "libasyncdr_adversary.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asyncdr_adversary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
