# Empty compiler generated dependencies file for asyncdr_adversary.
# This may be replaced when dependencies are built.
