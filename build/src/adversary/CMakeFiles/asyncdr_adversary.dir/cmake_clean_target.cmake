file(REMOVE_RECURSE
  "libasyncdr_adversary.a"
)
