file(REMOVE_RECURSE
  "CMakeFiles/bench_qc_vs_beta.dir/bench/bench_qc_vs_beta.cpp.o"
  "CMakeFiles/bench_qc_vs_beta.dir/bench/bench_qc_vs_beta.cpp.o.d"
  "bench/bench_qc_vs_beta"
  "bench/bench_qc_vs_beta.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_qc_vs_beta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
