# Empty compiler generated dependencies file for bench_qc_vs_beta.
# This may be replaced when dependencies are built.
