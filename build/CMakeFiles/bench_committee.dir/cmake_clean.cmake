file(REMOVE_RECURSE
  "CMakeFiles/bench_committee.dir/bench/bench_committee.cpp.o"
  "CMakeFiles/bench_committee.dir/bench/bench_committee.cpp.o.d"
  "bench/bench_committee"
  "bench/bench_committee.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_committee.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
