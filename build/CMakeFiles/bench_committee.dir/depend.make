# Empty dependencies file for bench_committee.
# This may be replaced when dependencies are built.
