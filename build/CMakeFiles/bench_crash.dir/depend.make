# Empty dependencies file for bench_crash.
# This may be replaced when dependencies are built.
