file(REMOVE_RECURSE
  "CMakeFiles/bench_crash.dir/bench/bench_crash.cpp.o"
  "CMakeFiles/bench_crash.dir/bench/bench_crash.cpp.o.d"
  "bench/bench_crash"
  "bench/bench_crash.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_crash.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
