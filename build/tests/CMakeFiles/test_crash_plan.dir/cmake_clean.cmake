file(REMOVE_RECURSE
  "CMakeFiles/test_crash_plan.dir/adversary/test_crash_plan.cpp.o"
  "CMakeFiles/test_crash_plan.dir/adversary/test_crash_plan.cpp.o.d"
  "test_crash_plan"
  "test_crash_plan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_crash_plan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
