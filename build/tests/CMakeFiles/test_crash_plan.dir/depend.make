# Empty dependencies file for test_crash_plan.
# This may be replaced when dependencies are built.
