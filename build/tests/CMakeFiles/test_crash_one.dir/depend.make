# Empty dependencies file for test_crash_one.
# This may be replaced when dependencies are built.
