file(REMOVE_RECURSE
  "CMakeFiles/test_crash_one.dir/protocols/test_crash_one.cpp.o"
  "CMakeFiles/test_crash_one.dir/protocols/test_crash_one.cpp.o.d"
  "test_crash_one"
  "test_crash_one.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_crash_one.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
