# Empty compiler generated dependencies file for test_crash_multi.
# This may be replaced when dependencies are built.
