file(REMOVE_RECURSE
  "CMakeFiles/test_crash_multi.dir/protocols/test_crash_multi.cpp.o"
  "CMakeFiles/test_crash_multi.dir/protocols/test_crash_multi.cpp.o.d"
  "test_crash_multi"
  "test_crash_multi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_crash_multi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
