# Empty compiler generated dependencies file for test_byzmulti.
# This may be replaced when dependencies are built.
