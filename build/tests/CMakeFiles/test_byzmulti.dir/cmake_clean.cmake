file(REMOVE_RECURSE
  "CMakeFiles/test_byzmulti.dir/protocols/test_byzmulti.cpp.o"
  "CMakeFiles/test_byzmulti.dir/protocols/test_byzmulti.cpp.o.d"
  "test_byzmulti"
  "test_byzmulti.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_byzmulti.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
