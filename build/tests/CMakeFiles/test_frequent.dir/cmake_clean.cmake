file(REMOVE_RECURSE
  "CMakeFiles/test_frequent.dir/protocols/test_frequent.cpp.o"
  "CMakeFiles/test_frequent.dir/protocols/test_frequent.cpp.o.d"
  "test_frequent"
  "test_frequent.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_frequent.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
