# Empty dependencies file for test_frequent.
# This may be replaced when dependencies are built.
