file(REMOVE_RECURSE
  "CMakeFiles/test_lowerbound.dir/protocols/test_lowerbound.cpp.o"
  "CMakeFiles/test_lowerbound.dir/protocols/test_lowerbound.cpp.o.d"
  "test_lowerbound"
  "test_lowerbound.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lowerbound.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
