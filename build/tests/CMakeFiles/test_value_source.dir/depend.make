# Empty dependencies file for test_value_source.
# This may be replaced when dependencies are built.
