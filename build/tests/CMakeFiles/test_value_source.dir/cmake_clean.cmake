file(REMOVE_RECURSE
  "CMakeFiles/test_value_source.dir/oracle/test_value_source.cpp.o"
  "CMakeFiles/test_value_source.dir/oracle/test_value_source.cpp.o.d"
  "test_value_source"
  "test_value_source.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_value_source.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
