file(REMOVE_RECURSE
  "CMakeFiles/test_committee.dir/protocols/test_committee.cpp.o"
  "CMakeFiles/test_committee.dir/protocols/test_committee.cpp.o.d"
  "test_committee"
  "test_committee.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_committee.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
