file(REMOVE_RECURSE
  "CMakeFiles/test_source_bank.dir/oracle/test_source_bank.cpp.o"
  "CMakeFiles/test_source_bank.dir/oracle/test_source_bank.cpp.o.d"
  "test_source_bank"
  "test_source_bank.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_source_bank.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
