# Empty compiler generated dependencies file for test_source_bank.
# This may be replaced when dependencies are built.
