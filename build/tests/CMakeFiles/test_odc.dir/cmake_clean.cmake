file(REMOVE_RECURSE
  "CMakeFiles/test_odc.dir/oracle/test_odc.cpp.o"
  "CMakeFiles/test_odc.dir/oracle/test_odc.cpp.o.d"
  "test_odc"
  "test_odc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_odc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
