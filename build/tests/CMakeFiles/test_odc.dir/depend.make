# Empty dependencies file for test_odc.
# This may be replaced when dependencies are built.
