file(REMOVE_RECURSE
  "CMakeFiles/test_chunk.dir/protocols/test_chunk.cpp.o"
  "CMakeFiles/test_chunk.dir/protocols/test_chunk.cpp.o.d"
  "test_chunk"
  "test_chunk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_chunk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
