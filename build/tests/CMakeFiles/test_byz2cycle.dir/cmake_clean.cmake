file(REMOVE_RECURSE
  "CMakeFiles/test_byz2cycle.dir/protocols/test_byz2cycle.cpp.o"
  "CMakeFiles/test_byz2cycle.dir/protocols/test_byz2cycle.cpp.o.d"
  "test_byz2cycle"
  "test_byz2cycle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_byz2cycle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
