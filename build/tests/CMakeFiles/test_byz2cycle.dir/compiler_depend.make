# Empty compiler generated dependencies file for test_byz2cycle.
# This may be replaced when dependencies are built.
