
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/protocols/test_byz2cycle.cpp" "tests/CMakeFiles/test_byz2cycle.dir/protocols/test_byz2cycle.cpp.o" "gcc" "tests/CMakeFiles/test_byz2cycle.dir/protocols/test_byz2cycle.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/oracle/CMakeFiles/asyncdr_oracle.dir/DependInfo.cmake"
  "/root/repo/build/src/protocols/CMakeFiles/asyncdr_protocols.dir/DependInfo.cmake"
  "/root/repo/build/src/adversary/CMakeFiles/asyncdr_adversary.dir/DependInfo.cmake"
  "/root/repo/build/src/dr/CMakeFiles/asyncdr_dr.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/asyncdr_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/asyncdr_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
