file(REMOVE_RECURSE
  "CMakeFiles/byzantine_storm.dir/byzantine_storm.cpp.o"
  "CMakeFiles/byzantine_storm.dir/byzantine_storm.cpp.o.d"
  "byzantine_storm"
  "byzantine_storm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/byzantine_storm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
