# Empty compiler generated dependencies file for byzantine_storm.
# This may be replaced when dependencies are built.
