file(REMOVE_RECURSE
  "CMakeFiles/asyncdr_cli.dir/asyncdr_cli.cpp.o"
  "CMakeFiles/asyncdr_cli.dir/asyncdr_cli.cpp.o.d"
  "asyncdr_cli"
  "asyncdr_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asyncdr_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
