# Empty compiler generated dependencies file for asyncdr_cli.
# This may be replaced when dependencies are built.
