file(REMOVE_RECURSE
  "CMakeFiles/oracle_demo.dir/oracle_demo.cpp.o"
  "CMakeFiles/oracle_demo.dir/oracle_demo.cpp.o.d"
  "oracle_demo"
  "oracle_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oracle_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
