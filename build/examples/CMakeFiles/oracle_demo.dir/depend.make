# Empty dependencies file for oracle_demo.
# This may be replaced when dependencies are built.
