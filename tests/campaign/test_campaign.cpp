// The campaign substrate end to end: scheduling semantics (every run
// executes once, results land at their grid index, seeds are a pure
// function of the index), the JSONL event stream, the summary JSON — and
// the headline determinism contract, pinned two ways: thread-count
// invariance (1 worker vs 8, byte-identical summary) and a committed
// golden summary (regenerate with ASYNCDR_WRITE_GOLDEN=1).
#include "campaign/runner.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "obs/campaign.hpp"
#include "obs/json.hpp"

#ifndef ASYNCDR_SOURCE_DIR
#define ASYNCDR_SOURCE_DIR "."
#endif

namespace asyncdr::campaign {
namespace {

using obs::Json;
using obs::RunStatus;

/// A deterministic synthetic run: every field a pure function of
/// (index, seed), so campaign output depends only on the grid.
RunOutcome synthetic_outcome(std::size_t index, std::uint64_t seed) {
  RunOutcome out;
  out.label = (index % 3 == 0) ? "naive" : (index % 3 == 1) ? "committee"
                                                            : "crash_one";
  out.status = (seed % 11 == 0)  ? RunStatus::kFailed
               : (seed % 7 == 0) ? RunStatus::kDegraded
                                 : RunStatus::kOk;
  if (out.status == RunStatus::kFailed) out.detail = "synthetic violation";
  out.report.all_terminated = true;
  out.report.all_correct = out.status != RunStatus::kFailed;
  out.report.query_complexity = 32 + (seed % 9) * 64;
  out.report.time_complexity = static_cast<sim::Time>(1 + seed % 17);
  out.report.message_complexity = (seed * 37) % 4096;
  out.report.events = 20 + seed % 200;
  out.report.recovery.restarts = seed % 4;
  out.report.recovery.queries_saved = (seed % 4) ? (seed * 13) % 1024 : 0;
  return out;
}

CampaignOptions base_options(std::size_t total, std::size_t threads) {
  CampaignOptions o;
  o.name = "test";
  o.total = total;
  o.threads = threads;
  o.seed_base = 100;
  return o;
}

TEST(Campaign, RunsEveryIndexOnceAndLandsResultsInGridOrder) {
  Campaign camp(base_options(17, 4));
  const auto records = camp.run(
      [](std::size_t i, std::uint64_t s) { return synthetic_outcome(i, s); });

  ASSERT_EQ(records.size(), 17u);
  std::set<std::uint64_t> seeds;
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(records[i].index, i);
    EXPECT_EQ(records[i].seed, 100 + i);  // default seed_fn = base + index
    seeds.insert(records[i].seed);
    EXPECT_EQ(records[i].outcome.label, synthetic_outcome(i, 100 + i).label);
  }
  EXPECT_EQ(seeds.size(), 17u);  // no run executed under a duplicate seed
}

TEST(Campaign, CustomSeedFnDrivesEveryRun) {
  CampaignOptions o = base_options(8, 2);
  o.seed_fn = [](std::size_t i) { return 1000 + 10 * i; };
  Campaign camp(std::move(o));
  const auto records = camp.run(
      [](std::size_t i, std::uint64_t s) { return synthetic_outcome(i, s); });
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(records[i].seed, 1000 + 10 * i);
  }
}

TEST(Campaign, SummaryCountsMatchOutcomes) {
  Campaign camp(base_options(40, 3));
  camp.run([](std::size_t i, std::uint64_t s) {
    return synthetic_outcome(i, s);
  });

  std::size_t want_ok = 0, want_failed = 0, want_degraded = 0;
  for (std::size_t i = 0; i < 40; ++i) {
    switch (synthetic_outcome(i, 100 + i).status) {
      case RunStatus::kOk: ++want_ok; break;
      case RunStatus::kFailed: ++want_failed; break;
      case RunStatus::kDegraded: ++want_degraded; break;
    }
  }
  EXPECT_EQ(camp.collector().ok(), want_ok);
  EXPECT_EQ(camp.collector().failed(), want_failed);
  EXPECT_EQ(camp.collector().degraded(), want_degraded);

  const Json summary = camp.summary();
  EXPECT_EQ(summary.find("schema")->as_string(), "asyncdr-campaign-v1");
  EXPECT_EQ(summary.find("campaign")->as_string(), "test");
  EXPECT_EQ(summary.find("total")->as_int(), 40);
  const Json* runs = summary.find("runs");
  ASSERT_NE(runs, nullptr);
  EXPECT_EQ(static_cast<std::size_t>(runs->find("ok")->as_int()), want_ok);
  EXPECT_EQ(static_cast<std::size_t>(runs->find("failed")->as_int()),
            want_failed);
  // The deterministic summary must not leak machine-dependent sections or
  // the thread count (both would break cross-host byte-comparison).
  EXPECT_EQ(summary.find("timing"), nullptr);
  EXPECT_EQ(summary.find("threads"), nullptr);
}

TEST(Campaign, SummaryIsByteIdenticalAcrossThreadCounts) {
  // The acceptance gate: same campaign seed, 1 worker vs 8, identical
  // summary bytes. The job sleeps pseudo-randomly via workload skew
  // (different q/t/m per run) so schedules genuinely differ.
  std::string summaries[2];
  const std::size_t thread_counts[2] = {1, 8};
  for (int v = 0; v < 2; ++v) {
    Campaign camp(base_options(64, thread_counts[v]));
    camp.run([](std::size_t i, std::uint64_t s) {
      return synthetic_outcome(i, s);
    });
    summaries[v] = camp.summary_string();
  }
  EXPECT_EQ(summaries[0], summaries[1]);
  EXPECT_FALSE(summaries[0].empty());
}

TEST(Campaign, GoldenSummaryIsStable) {
  // Byte-compares the summary of a fixed synthetic campaign against the
  // committed golden file. A diff here means the serialization or the
  // aggregation changed — bump deliberately by regenerating:
  //   ASYNCDR_WRITE_GOLDEN=1 ./test_campaign
  Campaign camp(base_options(48, 5));
  camp.run([](std::size_t i, std::uint64_t s) {
    return synthetic_outcome(i, s);
  });
  const std::string got = camp.summary_string();

  const std::string path =
      std::string(ASYNCDR_SOURCE_DIR) + "/tests/campaign/golden_summary.json";
  if (std::getenv("ASYNCDR_WRITE_GOLDEN") != nullptr) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    out << got;
    GTEST_SKIP() << "regenerated " << path;
  }

  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good()) << "missing golden file " << path
                         << " (regenerate with ASYNCDR_WRITE_GOLDEN=1)";
  std::ostringstream want;
  want << in.rdbuf();
  EXPECT_EQ(got, want.str());
}

TEST(Campaign, EventStreamIsContiguousAndComplete) {
  const std::string dir = ::testing::TempDir();
  const std::string events_path = dir + "/campaign_events.jsonl";
  const std::string summary_path = dir + "/campaign_summary.json";

  CampaignOptions o = base_options(12, 4);
  o.telemetry.events_path = events_path;
  o.telemetry.summary_path = summary_path;
  {
    Campaign camp(std::move(o));
    camp.run([](std::size_t i, std::uint64_t s) {
      return synthetic_outcome(i, s);
    });
    camp.finish();
  }

  std::ifstream in(events_path);
  ASSERT_TRUE(in.good());
  std::vector<Json> events;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    auto ev = Json::parse(line);
    ASSERT_TRUE(ev.has_value()) << line;
    events.push_back(std::move(*ev));
  }

  // started + finished + (run_started + terminal) per run.
  ASSERT_EQ(events.size(), 2u + 2u * 12u);
  EXPECT_EQ(events.front().find("ev")->as_string(), "campaign_started");
  EXPECT_EQ(events.back().find("ev")->as_string(), "campaign_finished");
  double prev_ts = -1;
  std::size_t terminal = 0;
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(static_cast<std::size_t>(events[i].find("seq")->as_int()), i);
    const double ts = events[i].find("ts_ms")->as_number();
    EXPECT_GE(ts, prev_ts);
    prev_ts = ts;
    const std::string kind = events[i].find("ev")->as_string();
    if (kind == "run_finished" || kind == "run_failed") ++terminal;
  }
  EXPECT_EQ(terminal, 12u);

  // The summary file mirrors summary_string().
  std::ifstream sin(summary_path, std::ios::binary);
  ASSERT_TRUE(sin.good());
  std::ostringstream written;
  written << sin.rdbuf();
  auto parsed = Json::parse(written.str());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->find("schema")->as_string(), "asyncdr-campaign-v1");
  EXPECT_EQ(parsed->find("runs")->find("total")->as_int(), 12);
}

TEST(Campaign, FinishIsIdempotentAndDestructorSafe) {
  const std::string summary_path =
      ::testing::TempDir() + "/finish_idem_summary.json";
  CampaignOptions o = base_options(3, 1);
  o.telemetry.summary_path = summary_path;
  Campaign camp(std::move(o));
  camp.run([](std::size_t i, std::uint64_t s) {
    return synthetic_outcome(i, s);
  });
  camp.finish();
  camp.finish();  // second call must be a no-op (destructor calls it again)

  std::ifstream in(summary_path);
  ASSERT_TRUE(in.good());
}

TEST(Campaign, TimingSectionIsOptIn) {
  CampaignOptions o = base_options(4, 2);
  o.telemetry.include_timing = true;
  Campaign camp(std::move(o));
  camp.run([](std::size_t i, std::uint64_t s) {
    return synthetic_outcome(i, s);
  });
  const Json summary = camp.summary();
  const Json* timing = summary.find("timing");
  ASSERT_NE(timing, nullptr);
  EXPECT_NE(timing->find("wall_ms"), nullptr);
  EXPECT_NE(timing->find("wall_ms_total"), nullptr);
}

}  // namespace
}  // namespace asyncdr::campaign
