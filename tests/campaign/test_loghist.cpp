// The log-bucketed histogram and the campaign collector: bucket boundaries,
// percentile clamping, and the merge half of the determinism contract —
// order-independence under arbitrary shard splits and permutations.
#include "obs/loghist.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "dr/world.hpp"
#include "obs/campaign.hpp"

namespace asyncdr::obs {
namespace {

TEST(LogHistogram, EmptyIsAllZero) {
  const LogHistogram h;
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0.0);
  EXPECT_EQ(h.max(), 0.0);
  EXPECT_EQ(h.percentile(50), 0.0);
  EXPECT_EQ(h.mean_est(), 0.0);
  EXPECT_TRUE(h.sparse_counts().empty());
}

TEST(LogHistogram, NonPositiveValuesLandInBucketZero) {
  EXPECT_EQ(LogHistogram::bucket_index(0.0), 0u);
  EXPECT_EQ(LogHistogram::bucket_index(-3.5), 0u);
  EXPECT_EQ(LogHistogram::bucket_value(0), 0.0);

  LogHistogram h;
  h.observe(0.0);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.percentile(50), 0.0);
  EXPECT_EQ(h.percentile(99), 0.0);
}

TEST(LogHistogram, BucketUpperBoundIsRepresentativeAndTight) {
  // Every positive value maps to a bucket whose representative (the
  // exclusive upper bound) is >= the value and within one sub-bucket width
  // (1/16 relative) above it.
  for (const double v : {0.002, 0.5, 1.0, 3.0, 100.0, 1e6, 1e9, 5.5e11}) {
    const std::size_t idx = LogHistogram::bucket_index(v);
    const double rep = LogHistogram::bucket_value(idx);
    EXPECT_GE(rep, v) << v;
    EXPECT_LE(rep, v * (1.0 + 1.0 / LogHistogram::kSubBuckets) * 1.0001) << v;
  }
}

TEST(LogHistogram, BucketIndexIsMonotoneAcrossOctaveBoundaries) {
  // Values straddling powers of two must never map to a lower bucket.
  std::size_t prev = 0;
  for (double v = 0.25; v < 1e9; v *= 1.03) {
    const std::size_t idx = LogHistogram::bucket_index(v);
    EXPECT_GE(idx, prev) << "at v=" << v;
    prev = idx;
  }
}

TEST(LogHistogram, ExtremeValuesClampToEdgeBuckets) {
  LogHistogram h;
  h.observe(1e-300);  // far below 2^kMinOctave
  h.observe(1e300);   // far above 2^(kMaxOctave+1)
  EXPECT_EQ(h.count(), 2u);
  // min/max stay exact even though the buckets saturate.
  EXPECT_EQ(h.min(), 1e-300);
  EXPECT_EQ(h.max(), 1e300);
  EXPECT_EQ(LogHistogram::bucket_index(1e300),
            LogHistogram::kBucketCount - 1);
}

TEST(LogHistogram, SingletonPercentilesAreExact) {
  LogHistogram h;
  h.observe(137.0);
  // Clamping into [min, max] makes every percentile of a singleton exact,
  // not a bucket representative.
  EXPECT_EQ(h.percentile(0), 137.0);
  EXPECT_EQ(h.percentile(50), 137.0);
  EXPECT_EQ(h.percentile(99), 137.0);
  EXPECT_EQ(h.percentile(100), 137.0);
}

TEST(LogHistogram, PercentileWithinBucketResolution) {
  LogHistogram h;
  for (int i = 1; i <= 1000; ++i) h.observe(static_cast<double>(i));
  const double p50 = h.percentile(50);
  EXPECT_GE(p50, 500.0 * (1.0 - 1.0 / LogHistogram::kSubBuckets));
  EXPECT_LE(p50, 500.0 * (1.0 + 2.0 / LogHistogram::kSubBuckets));
  const double p99 = h.percentile(99);
  EXPECT_GE(p99, 990.0 * (1.0 - 1.0 / LogHistogram::kSubBuckets));
  EXPECT_LE(p99, 1000.0);  // clamped to exact max
  EXPECT_EQ(h.percentile(100), 1000.0);
  // Percentiles are monotone in q.
  double prev = 0;
  for (std::uint64_t q = 0; q <= 100; q += 5) {
    EXPECT_GE(h.percentile(q), prev);
    prev = h.percentile(q);
  }
}

TEST(LogHistogram, MergeWithEmptyIsIdentity) {
  LogHistogram h;
  h.observe(3.0);
  h.observe(70.0);
  const std::string before = h.snapshot_json().dump();

  LogHistogram empty;
  h.merge(empty);
  EXPECT_EQ(h.snapshot_json().dump(), before);

  // And folding into an empty histogram reproduces the source snapshot.
  LogHistogram target;
  target.merge(h);
  EXPECT_EQ(target.snapshot_json().dump(), before);
}

TEST(LogHistogram, MergeIsOrderIndependent) {
  Rng rng(2026);
  std::vector<double> values;
  values.reserve(500);
  for (int i = 0; i < 500; ++i) {
    values.push_back(static_cast<double>(rng.below(1u << 20)) / 16.0);
  }

  // Reference: one histogram, insertion order as generated.
  LogHistogram reference;
  for (const double v : values) reference.observe(v);
  const std::string expected = reference.snapshot_json().dump();

  // Shuffle, split into a random number of shards, merge shards in shuffled
  // order — the snapshot must not move.
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<double> shuffled = values;
    for (std::size_t i = shuffled.size(); i > 1; --i) {
      std::swap(shuffled[i - 1], shuffled[rng.below(static_cast<std::uint32_t>(i))]);
    }
    const std::size_t shard_count = 1 + rng.below(7);
    std::vector<LogHistogram> shards(shard_count);
    for (std::size_t i = 0; i < shuffled.size(); ++i) {
      shards[i % shard_count].observe(shuffled[i]);
    }
    std::vector<std::size_t> order(shard_count);
    std::iota(order.begin(), order.end(), 0u);
    for (std::size_t i = order.size(); i > 1; --i) {
      std::swap(order[i - 1], order[rng.below(static_cast<std::uint32_t>(i))]);
    }
    LogHistogram merged;
    for (const std::size_t s : order) merged.merge(shards[s]);
    EXPECT_EQ(merged.snapshot_json().dump(), expected) << "trial " << trial;
  }
}

TEST(LogHistogram, SnapshotJsonShape) {
  LogHistogram h;
  h.observe(100.0);
  h.observe(100.0);
  h.observe(200.0);
  const Json snap = h.snapshot_json();
  EXPECT_EQ(snap.find("count")->as_int(), 3);
  EXPECT_EQ(snap.find("min")->as_number(), 100.0);
  EXPECT_EQ(snap.find("max")->as_number(), 200.0);
  const Json* buckets = snap.find("buckets");
  ASSERT_NE(buckets, nullptr);
  EXPECT_EQ(buckets->size(), 2u);  // sparse: two distinct buckets
  // Integral doubles must serialize without a decimal point or exponent.
  const std::string text = snap.dump();
  EXPECT_EQ(text.find("e+"), std::string::npos) << text;
  EXPECT_NE(text.find("\"min\":100"), std::string::npos) << text;
}

// --- CampaignCollector ------------------------------------------------------

dr::RunReport fake_report(std::uint64_t seed) {
  dr::RunReport r;
  r.all_terminated = true;
  r.all_correct = true;
  r.query_complexity = 64 + (seed % 7) * 100;
  r.time_complexity = static_cast<sim::Time>(1 + seed % 13);
  r.message_complexity = seed * 31 % 2048;
  r.events = 10 + seed % 90;
  r.recovery.restarts = seed % 3;
  r.recovery.queries_saved = (seed % 3) ? seed * 11 % 512 : 0;
  return r;
}

CampaignCollector build_reference(const std::vector<std::uint64_t>& seeds) {
  CampaignCollector c;
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    const RunStatus status = (seeds[i] % 5 == 0)   ? RunStatus::kFailed
                             : (seeds[i] % 7 == 0) ? RunStatus::kDegraded
                                                   : RunStatus::kOk;
    c.add_run(i, seeds[i], (seeds[i] % 2) ? "odd" : "even", status,
              status == RunStatus::kFailed ? "violation" : "",
              fake_report(seeds[i]));
  }
  return c;
}

TEST(CampaignCollector, ShardedMergeMatchesSerialByteForByte) {
  std::vector<std::uint64_t> seeds(64);
  std::iota(seeds.begin(), seeds.end(), 1u);
  const std::string expected = build_reference(seeds).summary_json().dump(1);

  Rng rng(7);
  for (int trial = 0; trial < 8; ++trial) {
    const std::size_t shard_count = 1 + rng.below(8);
    std::vector<CampaignCollector> shards(shard_count);
    // Deal runs to shards round-robin after a shuffle (arbitrary schedule).
    std::vector<std::size_t> order(seeds.size());
    std::iota(order.begin(), order.end(), 0u);
    for (std::size_t i = order.size(); i > 1; --i) {
      std::swap(order[i - 1], order[rng.below(static_cast<std::uint32_t>(i))]);
    }
    for (std::size_t pos = 0; pos < order.size(); ++pos) {
      const std::size_t i = order[pos];
      const RunStatus status = (seeds[i] % 5 == 0)   ? RunStatus::kFailed
                               : (seeds[i] % 7 == 0) ? RunStatus::kDegraded
                                                     : RunStatus::kOk;
      shards[pos % shard_count].add_run(
          i, seeds[i], (seeds[i] % 2) ? "odd" : "even", status,
          status == RunStatus::kFailed ? "violation" : "",
          fake_report(seeds[i]));
    }
    CampaignCollector merged;
    for (const auto& s : shards) merged.merge(s);
    EXPECT_EQ(merged.summary_json().dump(1), expected) << "trial " << trial;
  }
}

TEST(CampaignCollector, CountsAndWorstTracking) {
  CampaignCollector c;
  dr::RunReport big = fake_report(3);
  big.query_complexity = 9999;
  dr::RunReport small = fake_report(4);
  small.query_complexity = 10;

  c.add_run(0, 100, "a", RunStatus::kOk, "", small);
  c.add_run(1, 101, "a", RunStatus::kFailed, "agreement violated", big);
  c.add_run(2, 102, "b", RunStatus::kDegraded, "", small);

  EXPECT_EQ(c.runs(), 3u);
  EXPECT_EQ(c.ok(), 1u);
  EXPECT_EQ(c.failed(), 1u);
  EXPECT_EQ(c.degraded(), 1u);

  const Json summary = c.summary_json();
  const Json* worst = summary.find("worst");
  ASSERT_NE(worst, nullptr);
  EXPECT_EQ(worst->find("max_q")->find("q")->as_int(), 9999);
  EXPECT_EQ(worst->find("max_q")->find("seed")->as_int(), 101);
  EXPECT_EQ(worst->find("failure_count")->as_int(), 1);
  const Json* failures = worst->find("failures");
  ASSERT_NE(failures, nullptr);
  ASSERT_EQ(failures->size(), 1u);
  EXPECT_EQ(failures->at(0).find("detail")->as_string(), "agreement violated");
}

TEST(CampaignCollector, FailureRosterIsCappedWithFullCount) {
  CampaignCollector c;
  const std::size_t kFailures = CampaignCollector::kMaxListedFailures + 10;
  for (std::size_t i = 0; i < kFailures; ++i) {
    c.add_run(i, i, "l", RunStatus::kFailed, "boom", fake_report(i));
  }
  const Json summary = c.summary_json();
  const Json* worst = summary.find("worst");
  ASSERT_NE(worst, nullptr);
  EXPECT_EQ(static_cast<std::size_t>(worst->find("failure_count")->as_int()),
            kFailures);
  EXPECT_EQ(worst->find("failures")->size(),
            CampaignCollector::kMaxListedFailures);
}

TEST(CampaignCollector, TimingStaysOutOfTheDeterministicSummary) {
  CampaignCollector c;
  c.add_run(0, 1, "l", RunStatus::kOk, "", fake_report(1));
  c.add_timing(12.5, 80.0);
  EXPECT_EQ(c.summary_json().find("wall_ms"), nullptr);
  EXPECT_EQ(c.summary_json().find("timing"), nullptr);
  const Json timing = c.timing_json();
  ASSERT_NE(timing.find("wall_ms"), nullptr);
  EXPECT_EQ(timing.find("wall_ms")->find("count")->as_int(), 1);
  ASSERT_NE(timing.find("rss_mb"), nullptr);
}

}  // namespace
}  // namespace asyncdr::obs
