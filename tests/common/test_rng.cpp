#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/check.hpp"

namespace asyncdr {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(12345), b(12345);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int agree = 0;
  for (int i = 0; i < 64; ++i) agree += (a.next() == b.next());
  EXPECT_LT(agree, 2);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.below(17), 17u);
    EXPECT_EQ(rng.below(1), 0u);
  }
  EXPECT_THROW(rng.below(0), contract_violation);
}

TEST(Rng, BelowIsRoughlyUniform) {
  Rng rng(99);
  constexpr std::size_t kBuckets = 8;
  constexpr std::size_t kDraws = 80000;
  std::size_t counts[kBuckets] = {};
  for (std::size_t i = 0; i < kDraws; ++i) ++counts[rng.below(kBuckets)];
  const double expect = static_cast<double>(kDraws) / kBuckets;
  for (std::size_t b = 0; b < kBuckets; ++b) {
    EXPECT_NEAR(static_cast<double>(counts[b]), expect, expect * 0.08)
        << "bucket " << b;
  }
}

TEST(Rng, RangeInclusive) {
  Rng rng(3);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 200; ++i) {
    const auto v = rng.range(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all 5 values hit in 200 draws
  EXPECT_EQ(rng.range(4, 4), 4);
  EXPECT_THROW(rng.range(3, 2), contract_violation);
}

TEST(Rng, Uniform01Bounds) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, FlipProbability) {
  Rng rng(5);
  int heads = 0;
  for (int i = 0; i < 10000; ++i) heads += rng.flip(0.25);
  EXPECT_NEAR(heads, 2500, 200);
}

TEST(Rng, SplitStreamsAreIndependentAndStable) {
  const Rng base(42);
  Rng a1 = base.split(1);
  Rng a2 = base.split(1);
  Rng b = base.split(2);
  // Same tag -> same stream; different tag -> different stream.
  int agree_same = 0, agree_diff = 0;
  for (int i = 0; i < 64; ++i) {
    const auto x = a1.next();
    agree_same += (x == a2.next());
    agree_diff += (x == b.next());
  }
  EXPECT_EQ(agree_same, 64);
  EXPECT_LT(agree_diff, 2);
}

TEST(Rng, SplitUnaffectedByDraws) {
  // split() must be a function of the seed, not of stream position, so
  // adding a consumer never perturbs another's stream.
  Rng a(42);
  (void)a.next();
  (void)a.next();
  Rng b(42);
  EXPECT_EQ(a.split(9).next(), b.split(9).next());
}

TEST(Rng, ShufflePermutes) {
  Rng rng(13);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.shuffle(v);
  EXPECT_FALSE(std::is_sorted(v.begin(), v.end()));  // overwhelmingly likely
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Rng, SampleWithoutReplacement) {
  Rng rng(21);
  const auto sample = rng.sample_without_replacement(50, 20);
  EXPECT_EQ(sample.size(), 20u);
  std::set<std::size_t> uniq(sample.begin(), sample.end());
  EXPECT_EQ(uniq.size(), 20u);
  for (std::size_t s : sample) EXPECT_LT(s, 50u);
  EXPECT_THROW(rng.sample_without_replacement(5, 6), contract_violation);
  EXPECT_TRUE(rng.sample_without_replacement(5, 0).empty());
}

TEST(Rng, SampleCoversUniverse) {
  Rng rng(31);
  const auto all = rng.sample_without_replacement(10, 10);
  std::set<std::size_t> uniq(all.begin(), all.end());
  EXPECT_EQ(uniq.size(), 10u);
}

}  // namespace
}  // namespace asyncdr
