#include "common/interval_set.hpp"

#include <gtest/gtest.h>

#include <set>

#include "common/check.hpp"
#include "common/rng.hpp"

namespace asyncdr {
namespace {

TEST(IntervalSet, EmptyByDefault) {
  IntervalSet s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.count(), 0u);
  EXPECT_FALSE(s.contains(0));
}

TEST(IntervalSet, InsertSingleAndContains) {
  IntervalSet s;
  s.insert(5);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_TRUE(s.contains(5));
  EXPECT_FALSE(s.contains(4));
  EXPECT_FALSE(s.contains(6));
}

TEST(IntervalSet, CoalescesAdjacentInserts) {
  IntervalSet s;
  s.insert(0, 5);
  s.insert(5, 10);
  EXPECT_EQ(s.intervals().size(), 1u);
  EXPECT_EQ(s.count(), 10u);
}

TEST(IntervalSet, MergesOverlaps) {
  IntervalSet s;
  s.insert(0, 4);
  s.insert(10, 14);
  s.insert(2, 12);
  EXPECT_EQ(s.intervals().size(), 1u);
  EXPECT_EQ(s.count(), 14u);
}

TEST(IntervalSet, KeepsGaps) {
  IntervalSet s;
  s.insert(0, 3);
  s.insert(5, 8);
  EXPECT_EQ(s.intervals().size(), 2u);
  EXPECT_EQ(s.count(), 6u);
  EXPECT_FALSE(s.contains(3));
  EXPECT_FALSE(s.contains(4));
}

TEST(IntervalSet, EraseSplitsInterval) {
  IntervalSet s = IntervalSet::of(0, 10);
  s.erase(3, 6);
  EXPECT_EQ(s.intervals().size(), 2u);
  EXPECT_EQ(s.count(), 7u);
  EXPECT_TRUE(s.contains(2));
  EXPECT_FALSE(s.contains(3));
  EXPECT_FALSE(s.contains(5));
  EXPECT_TRUE(s.contains(6));
}

TEST(IntervalSet, EraseEdges) {
  IntervalSet s = IntervalSet::of(5, 15);
  s.erase(0, 7);
  EXPECT_EQ(s, IntervalSet::of(7, 15));
  s.erase(12, 100);
  EXPECT_EQ(s, IntervalSet::of(7, 12));
}

TEST(IntervalSet, SetAlgebra) {
  IntervalSet a = IntervalSet::of(0, 10);
  IntervalSet b = IntervalSet::of(5, 15);
  IntervalSet u = a;
  u.unite(b);
  EXPECT_EQ(u, IntervalSet::of(0, 15));
  IntervalSet i = a;
  i.intersect(b);
  EXPECT_EQ(i, IntervalSet::of(5, 10));
  IntervalSet d = a;
  d.subtract(b);
  EXPECT_EQ(d, IntervalSet::of(0, 5));
}

TEST(IntervalSet, IntersectDisjointPieces) {
  IntervalSet a;
  a.insert(0, 4);
  a.insert(8, 12);
  IntervalSet b = IntervalSet::of(2, 10);
  a.intersect(b);
  IntervalSet want;
  want.insert(2, 4);
  want.insert(8, 10);
  EXPECT_EQ(a, want);
}

TEST(IntervalSet, FullAndToIndices) {
  const IntervalSet s = IntervalSet::full(5);
  EXPECT_EQ(s.to_indices(), (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(IntervalSet, SplitEvenlyBalances) {
  const IntervalSet s = IntervalSet::of(0, 10);
  const auto parts = s.split_evenly(3);
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0].count(), 4u);
  EXPECT_EQ(parts[1].count(), 3u);
  EXPECT_EQ(parts[2].count(), 3u);
  // Parts are disjoint and cover the set, in order.
  IntervalSet merged;
  for (const auto& p : parts) {
    IntervalSet overlap = merged;
    overlap.intersect(p);
    EXPECT_TRUE(overlap.empty());
    merged.unite(p);
  }
  EXPECT_EQ(merged, s);
}

TEST(IntervalSet, SplitEvenlyMorePartsThanElements) {
  const IntervalSet s = IntervalSet::of(0, 2);
  const auto parts = s.split_evenly(5);
  ASSERT_EQ(parts.size(), 5u);
  std::size_t total = 0;
  for (const auto& p : parts) {
    EXPECT_LE(p.count(), 1u);
    total += p.count();
  }
  EXPECT_EQ(total, 2u);
}

TEST(IntervalSet, SplitEvenlyEmptySet) {
  const auto parts = IntervalSet().split_evenly(4);
  ASSERT_EQ(parts.size(), 4u);
  for (const auto& p : parts) EXPECT_TRUE(p.empty());
}

TEST(IntervalSet, InvalidArgsThrow) {
  IntervalSet s;
  EXPECT_THROW(s.insert(5, 4), contract_violation);
  EXPECT_THROW(s.erase(5, 4), contract_violation);
  EXPECT_THROW(s.split_evenly(0), contract_violation);
}

// Property sweep against a reference std::set implementation.
class IntervalSetProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(IntervalSetProperty, MatchesReferenceSet) {
  Rng rng(GetParam());
  IntervalSet s;
  std::set<std::size_t> ref;
  constexpr std::size_t kUniverse = 300;
  for (int op = 0; op < 200; ++op) {
    const auto lo = static_cast<std::size_t>(rng.below(kUniverse));
    const auto hi = lo + static_cast<std::size_t>(rng.below(kUniverse - lo + 1));
    if (rng.flip(0.6)) {
      s.insert(lo, hi);
      for (std::size_t i = lo; i < hi; ++i) ref.insert(i);
    } else {
      s.erase(lo, hi);
      for (std::size_t i = lo; i < hi; ++i) ref.erase(i);
    }
    ASSERT_EQ(s.count(), ref.size());
  }
  for (std::size_t i = 0; i < kUniverse; ++i) {
    EXPECT_EQ(s.contains(i), ref.contains(i)) << "index " << i;
  }
  // Invariant: intervals sorted, disjoint, non-adjacent, non-empty.
  const auto& ivs = s.intervals();
  for (std::size_t j = 0; j < ivs.size(); ++j) {
    EXPECT_LT(ivs[j].lo, ivs[j].hi);
    if (j > 0) {
      EXPECT_LT(ivs[j - 1].hi, ivs[j].lo);
    }
  }
}

TEST_P(IntervalSetProperty, SplitEvenlyPartition) {
  Rng rng(GetParam() * 13 + 1);
  IntervalSet s;
  for (int i = 0; i < 10; ++i) {
    const auto lo = static_cast<std::size_t>(rng.below(500));
    s.insert(lo, lo + static_cast<std::size_t>(rng.below(30)));
  }
  const std::size_t parts_count = 1 + static_cast<std::size_t>(rng.below(9));
  const auto parts = s.split_evenly(parts_count);
  IntervalSet merged;
  std::size_t max_size = 0, min_size = SIZE_MAX;
  for (const auto& p : parts) {
    merged.unite(p);
    max_size = std::max(max_size, p.count());
    min_size = std::min(min_size, p.count());
  }
  EXPECT_EQ(merged, s);
  if (!s.empty()) {
    EXPECT_LE(max_size - min_size, 1u);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IntervalSetProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace asyncdr
