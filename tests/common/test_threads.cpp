#include "common/threads.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

namespace asyncdr {
namespace {

// RAII guard: sets (or clears) ASYNCDR_THREADS for one test and restores
// the previous value afterwards, so tests cannot leak into each other.
class EnvGuard {
 public:
  explicit EnvGuard(const char* value) {
    const char* old = std::getenv(kVar);
    had_old_ = old != nullptr;
    if (had_old_) old_ = old;
    if (value == nullptr) {
      ::unsetenv(kVar);
    } else {
      ::setenv(kVar, value, /*overwrite=*/1);
    }
  }
  ~EnvGuard() {
    if (had_old_) {
      ::setenv(kVar, old_.c_str(), 1);
    } else {
      ::unsetenv(kVar);
    }
  }

 private:
  static constexpr const char* kVar = "ASYNCDR_THREADS";
  bool had_old_ = false;
  std::string old_;
};

TEST(ParseThreadOverride, AcceptsPositiveIntegers) {
  EXPECT_EQ(parse_thread_override("1"), 1u);
  EXPECT_EQ(parse_thread_override("8"), 8u);
  EXPECT_EQ(parse_thread_override("  16  "), 16u);
}

TEST(ParseThreadOverride, RejectsJunk) {
  EXPECT_EQ(parse_thread_override(nullptr), 0u);
  EXPECT_EQ(parse_thread_override(""), 0u);
  EXPECT_EQ(parse_thread_override("   "), 0u);
  EXPECT_EQ(parse_thread_override("0"), 0u);
  EXPECT_EQ(parse_thread_override("-3"), 0u);
  EXPECT_EQ(parse_thread_override("4x"), 0u);
  EXPECT_EQ(parse_thread_override("auto"), 0u);
  EXPECT_EQ(parse_thread_override("3.5"), 0u);
}

TEST(ParseThreadOverride, ClampsToMaxAutoThreads) {
  EXPECT_EQ(parse_thread_override("9999"), kMaxAutoThreads);
  EXPECT_EQ(parse_thread_override("184467440737095516150"), kMaxAutoThreads);
}

TEST(ResolveThreads, ExplicitRequestWinsVerbatim) {
  EnvGuard env("3");
  EXPECT_EQ(resolve_threads(5), 5u);
  // Even past the auto clamp: an explicit request is the caller's call.
  EXPECT_EQ(resolve_threads(kMaxAutoThreads + 10), kMaxAutoThreads + 10);
}

TEST(ResolveThreads, EnvOverrideBeatsDetection) {
  EnvGuard env("3");
  EXPECT_EQ(resolve_threads(), 3u);
  EXPECT_EQ(resolve_threads(0), 3u);
}

TEST(ResolveThreads, InvalidEnvFallsBackToDetection) {
  EnvGuard env("not-a-number");
  const std::size_t resolved = resolve_threads();
  EXPECT_GE(resolved, 1u);
  EXPECT_LE(resolved, kMaxAutoThreads);
}

TEST(ResolveThreads, UnsetEnvStaysWithinClamp) {
  EnvGuard env(nullptr);
  const std::size_t resolved = resolve_threads();
  EXPECT_GE(resolved, 1u);  // even if hardware_concurrency() reports 0
  EXPECT_LE(resolved, kMaxAutoThreads);
}

}  // namespace
}  // namespace asyncdr
