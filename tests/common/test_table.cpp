#include "common/table.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"

namespace asyncdr {
namespace {

TEST(Table, RendersAlignedRows) {
  Table t({"name", "q"});
  t.add("naive", std::size_t{4096});
  t.add("crash", std::size_t{512});
  const std::string out = t.render();
  EXPECT_NE(out.find("| name  | q    |"), std::string::npos);
  EXPECT_NE(out.find("| naive | 4096 |"), std::string::npos);
  EXPECT_NE(out.find("| crash | 512  |"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, FormatsDoublesWithTwoDecimals) {
  Table t({"x"});
  t.add(3.14159);
  EXPECT_NE(t.render().find("3.14"), std::string::npos);
}

TEST(Table, FormatsBools) {
  Table t({"ok"});
  t.add(true);
  t.add(false);
  const std::string out = t.render();
  EXPECT_NE(out.find("yes"), std::string::npos);
  EXPECT_NE(out.find("no"), std::string::npos);
}

TEST(Table, RowArityEnforced) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only one"}), contract_violation);
  EXPECT_THROW(Table({}), contract_violation);
}

}  // namespace
}  // namespace asyncdr
