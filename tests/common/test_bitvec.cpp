#include "common/bitvec.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"
#include "common/rng.hpp"

namespace asyncdr {
namespace {

TEST(BitVec, DefaultIsEmpty) {
  BitVec v;
  EXPECT_EQ(v.size(), 0u);
  EXPECT_TRUE(v.empty());
  EXPECT_EQ(v.popcount(), 0u);
}

TEST(BitVec, ConstructAllZero) {
  BitVec v(130);
  EXPECT_EQ(v.size(), 130u);
  EXPECT_EQ(v.popcount(), 0u);
  for (std::size_t i = 0; i < v.size(); ++i) EXPECT_FALSE(v.get(i));
}

TEST(BitVec, ConstructAllOne) {
  BitVec v(130, true);
  EXPECT_EQ(v.popcount(), 130u);
  for (std::size_t i = 0; i < v.size(); ++i) EXPECT_TRUE(v.get(i));
}

TEST(BitVec, SetGetFlip) {
  BitVec v(100);
  v.set(63, true);
  v.set(64, true);
  EXPECT_TRUE(v.get(63));
  EXPECT_TRUE(v.get(64));
  EXPECT_FALSE(v.get(62));
  v.flip(63);
  EXPECT_FALSE(v.get(63));
  v.set(64, false);
  EXPECT_EQ(v.popcount(), 0u);
}

TEST(BitVec, OutOfRangeThrows) {
  BitVec v(10);
  EXPECT_THROW((void)v.get(10), contract_violation);
  EXPECT_THROW(v.set(10, true), contract_violation);
  EXPECT_THROW(v.flip(11), contract_violation);
}

TEST(BitVec, FromToString) {
  const BitVec v = BitVec::from_string("10110");
  EXPECT_EQ(v.size(), 5u);
  EXPECT_TRUE(v.get(0));
  EXPECT_FALSE(v.get(1));
  EXPECT_EQ(v.to_string(), "10110");
  EXPECT_THROW(BitVec::from_string("10x"), contract_violation);
}

TEST(BitVec, PushBack) {
  BitVec v;
  for (int i = 0; i < 70; ++i) v.push_back(i % 3 == 0);
  EXPECT_EQ(v.size(), 70u);
  for (int i = 0; i < 70; ++i) EXPECT_EQ(v.get(i), i % 3 == 0);
}

TEST(BitVec, SliceAndSplice) {
  const BitVec v = BitVec::from_string("110100111010");
  const BitVec mid = v.slice(3, 5);
  EXPECT_EQ(mid.to_string(), "10011");
  BitVec w(12);
  w.splice(3, mid);
  EXPECT_EQ(w.to_string(), "000100110000");
  EXPECT_THROW(v.slice(10, 5), contract_violation);
}

TEST(BitVec, SliceCrossesWordBoundary) {
  BitVec v(200);
  for (std::size_t i = 60; i < 70; ++i) v.set(i, true);
  const BitVec s = v.slice(58, 14);
  EXPECT_EQ(s.to_string(), "00111111111100");
}

TEST(BitVec, EqualityIgnoresNothing) {
  BitVec a(65), b(65);
  EXPECT_EQ(a, b);
  b.set(64, true);
  EXPECT_NE(a, b);
  b.set(64, false);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, BitVec(64));  // different sizes differ
}

TEST(BitVec, FirstDifference) {
  BitVec a(130), b(130);
  EXPECT_EQ(a.first_difference(b), std::nullopt);
  b.set(129, true);
  EXPECT_EQ(a.first_difference(b), 129u);
  b.set(7, true);
  EXPECT_EQ(a.first_difference(b), 7u);
  a.set(7, true);
  EXPECT_EQ(a.first_difference(b), 129u);
}

TEST(BitVec, FirstDifferenceSizeMismatchThrows) {
  BitVec a(10), b(11);
  EXPECT_THROW((void)a.first_difference(b), contract_violation);
}

TEST(BitVec, HashDistinguishesContentAndSize) {
  const BitVec a = BitVec::from_string("1010");
  const BitVec b = BitVec::from_string("1011");
  EXPECT_NE(a.hash(), b.hash());
  EXPECT_NE(BitVec(64).hash(), BitVec(65).hash());
  EXPECT_EQ(a.hash(), BitVec::from_string("1010").hash());
}

TEST(BitVec, MaskAlgebra) {
  BitVec a = BitVec::from_string("110010");
  const BitVec b = BitVec::from_string("011011");
  BitVec o = a;
  o.or_with(b);
  EXPECT_EQ(o.to_string(), "111011");
  BitVec i = a;
  i.and_with(b);
  EXPECT_EQ(i.to_string(), "010010");
  BitVec d = a;
  d.andnot_with(b);
  EXPECT_EQ(d.to_string(), "100000");
  EXPECT_EQ(a.count_and(b), 2u);
  EXPECT_TRUE(i.is_subset_of(a));
  EXPECT_TRUE(i.is_subset_of(b));
  EXPECT_FALSE(a.is_subset_of(b));
}

TEST(BitVec, ForEachSetVisitsInOrder) {
  BitVec v(200);
  const std::vector<std::size_t> want{0, 63, 64, 127, 128, 199};
  for (std::size_t i : want) v.set(i, true);
  std::vector<std::size_t> got;
  v.for_each_set([&](std::size_t i) { got.push_back(i); });
  EXPECT_EQ(got, want);
}

TEST(BitVec, GenerateMatchesCallback) {
  std::size_t calls = 0;
  const BitVec v = BitVec::generate(10, [&] { return (calls++ % 2) == 0; });
  EXPECT_EQ(calls, 10u);
  EXPECT_EQ(v.to_string(), "1010101010");
}

// Property sweep: random masks round-trip through slice/splice and satisfy
// algebra identities at many sizes (incl. word boundaries).
class BitVecProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BitVecProperty, SliceSpliceRoundTrip) {
  const std::size_t n = GetParam();
  Rng rng(n * 31 + 7);
  const BitVec v = BitVec::generate(n, [&] { return rng.flip(); });
  for (int trial = 0; trial < 16; ++trial) {
    const auto lo = static_cast<std::size_t>(rng.below(n));
    const auto len = static_cast<std::size_t>(rng.below(n - lo + 1));
    const BitVec part = v.slice(lo, len);
    BitVec w = v;
    w.splice(lo, part);  // splicing a slice back must be a no-op
    EXPECT_EQ(w, v);
  }
}

TEST_P(BitVecProperty, DeMorgan) {
  const std::size_t n = GetParam();
  Rng rng(n * 17 + 3);
  const BitVec a = BitVec::generate(n, [&] { return rng.flip(); });
  const BitVec b = BitVec::generate(n, [&] { return rng.flip(); });
  // |a| + |b| = |a&b| + |a|b|
  BitVec u = a;
  u.or_with(b);
  EXPECT_EQ(a.popcount() + b.popcount(), a.count_and(b) + u.popcount());
  // a \ b is a subset of a and disjoint from b
  BitVec d = a;
  d.andnot_with(b);
  EXPECT_TRUE(d.is_subset_of(a));
  EXPECT_EQ(d.count_and(b), 0u);
}

TEST_P(BitVecProperty, PopcountMatchesForEachSet) {
  const std::size_t n = GetParam();
  Rng rng(n + 99);
  const BitVec v = BitVec::generate(n, [&] { return rng.flip(); });
  std::size_t visits = 0;
  v.for_each_set([&](std::size_t i) {
    EXPECT_TRUE(v.get(i));
    ++visits;
  });
  EXPECT_EQ(visits, v.popcount());
}

INSTANTIATE_TEST_SUITE_P(Sizes, BitVecProperty,
                         ::testing::Values(1, 2, 63, 64, 65, 127, 128, 129,
                                           1000, 4096));

}  // namespace
}  // namespace asyncdr
