#include "common/stats.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"

namespace asyncdr {
namespace {

TEST(Summary, BasicMoments) {
  Summary s;
  s.add_all({1, 2, 3, 4, 5});
  EXPECT_EQ(s.count(), 5u);
  EXPECT_DOUBLE_EQ(s.min(), 1);
  EXPECT_DOUBLE_EQ(s.max(), 5);
  EXPECT_DOUBLE_EQ(s.sum(), 15);
  EXPECT_DOUBLE_EQ(s.mean(), 3);
  EXPECT_NEAR(s.stddev(), 1.5811, 1e-3);
}

TEST(Summary, EmptyThrows) {
  Summary s;
  EXPECT_TRUE(s.empty());
  EXPECT_THROW((void)s.mean(), contract_violation);
  EXPECT_THROW((void)s.min(), contract_violation);
  EXPECT_THROW((void)s.percentile(50), contract_violation);
  EXPECT_EQ(s.to_string(), "(no samples)");
}

TEST(Summary, SingleSample) {
  Summary s;
  s.add(7);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
  EXPECT_DOUBLE_EQ(s.percentile(0), 7);
  EXPECT_DOUBLE_EQ(s.percentile(100), 7);
}

TEST(Summary, PercentilesInterpolate) {
  Summary s;
  s.add_all({10, 20, 30, 40});
  EXPECT_DOUBLE_EQ(s.percentile(0), 10);
  EXPECT_DOUBLE_EQ(s.percentile(100), 40);
  EXPECT_DOUBLE_EQ(s.median(), 25);
  EXPECT_THROW((void)s.percentile(101), contract_violation);
}

TEST(Summary, PercentileAfterMoreAdds) {
  Summary s;
  s.add(3);
  EXPECT_DOUBLE_EQ(s.median(), 3);
  s.add(1);  // cached sort must invalidate
  EXPECT_DOUBLE_EQ(s.median(), 2);
}

TEST(MedianOf, OddCount) {
  EXPECT_DOUBLE_EQ(median_of(std::vector<double>{3, 1, 2}), 2);
  EXPECT_EQ(median_of(std::vector<std::int64_t>{9, 5, 7}), 7);
}

TEST(MedianOf, EvenCountDouble) {
  EXPECT_DOUBLE_EQ(median_of(std::vector<double>{1, 2, 3, 4}), 2.5);
}

TEST(MedianOf, EvenCountIntIsLowerMedianSample) {
  // Integer median must be an actual sample (honest-range argument).
  EXPECT_EQ(median_of(std::vector<std::int64_t>{10, 20, 30, 40}), 20);
}

TEST(MedianOf, EmptyThrows) {
  EXPECT_THROW(median_of(std::vector<double>{}), contract_violation);
  EXPECT_THROW(median_of(std::vector<std::int64_t>{}), contract_violation);
}

TEST(MedianOf, RobustToOutlierMinority) {
  // With a majority of in-range values, the median stays in range.
  EXPECT_EQ(median_of(std::vector<std::int64_t>{100, 101, 102, 0, 100000}),
            101);
}

}  // namespace
}  // namespace asyncdr
