#include "sim/network.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/check.hpp"
#include "sim/engine.hpp"

namespace asyncdr::sim {
namespace {

struct TestPayload final : Payload {
  explicit TestPayload(std::size_t bits = 8, int tag = 0)
      : bits_(bits), tag_(tag) {}
  std::size_t size_bits() const override { return bits_; }
  std::string type_name() const override { return "TestPayload"; }
  std::size_t bits_;
  int tag_;
};

struct Recorder final : Receiver {
  void deliver(const Message& msg) override { received.push_back(msg); }
  std::vector<Message> received;
};

struct Fixture : ::testing::Test {
  Fixture() : net(engine, 4, 64) {
    for (PeerId i = 0; i < 4; ++i) net.attach(i, &peers[i]);
  }
  Engine engine;
  Network net;
  Recorder peers[4];
};

TEST_F(Fixture, DeliversWithDefaultUnitLatency) {
  net.send(0, 1, std::make_shared<TestPayload>());
  engine.run();
  ASSERT_EQ(peers[1].received.size(), 1u);
  EXPECT_EQ(peers[1].received[0].from, 0u);
  EXPECT_DOUBLE_EQ(engine.now(), 1.0);
}

TEST_F(Fixture, BroadcastSkipsSelfAndOrdersByID) {
  net.broadcast(2, std::make_shared<TestPayload>());
  engine.run();
  EXPECT_EQ(peers[0].received.size(), 1u);
  EXPECT_EQ(peers[1].received.size(), 1u);
  EXPECT_TRUE(peers[2].received.empty());
  EXPECT_EQ(peers[3].received.size(), 1u);
}

TEST_F(Fixture, CrashedSenderSendsNothing) {
  net.crash(0);
  net.send(0, 1, std::make_shared<TestPayload>());
  engine.run();
  EXPECT_TRUE(peers[1].received.empty());
  EXPECT_EQ(net.sent_units(0), 0u);
}

TEST_F(Fixture, CrashedReceiverDropsInFlight) {
  net.send(0, 1, std::make_shared<TestPayload>());
  engine.schedule_at(0.5, [&] { net.crash(1); });
  engine.run();
  EXPECT_TRUE(peers[1].received.empty());
  // The send itself still counts (it was made by a live peer).
  EXPECT_EQ(net.sent_units(0), 1u);
}

TEST_F(Fixture, MessagesSentBeforeCrashStillDeliver) {
  net.send(0, 1, std::make_shared<TestPayload>());
  engine.schedule_at(0.5, [&] { net.crash(0); });
  engine.run();
  EXPECT_EQ(peers[1].received.size(), 1u);
}

TEST_F(Fixture, PreSendHookCanCrashMidBroadcast) {
  int allowed = 2;
  net.set_pre_send_hook([&](const Message& msg) {
    if (msg.from == 0 && allowed-- == 0) net.crash(0);
  });
  net.broadcast(0, std::make_shared<TestPayload>());
  engine.run();
  // Only the first two sends (to peers 1 and 2) went out.
  EXPECT_EQ(peers[1].received.size(), 1u);
  EXPECT_EQ(peers[2].received.size(), 1u);
  EXPECT_TRUE(peers[3].received.empty());
}

TEST_F(Fixture, UnitMessageAccounting) {
  EXPECT_EQ(net.unit_messages(TestPayload(1)), 1u);
  EXPECT_EQ(net.unit_messages(TestPayload(64)), 1u);
  EXPECT_EQ(net.unit_messages(TestPayload(65)), 2u);
  EXPECT_EQ(net.unit_messages(TestPayload(640)), 10u);
  EXPECT_EQ(net.unit_messages(TestPayload(0)), 1u);  // floor of 1
}

TEST_F(Fixture, LargePayloadSerializesOnLink) {
  // 10 units on one link: transmission inflates arrival beyond latency 1.
  net.send(0, 1, std::make_shared<TestPayload>(640));
  engine.run();
  ASSERT_EQ(peers[1].received.size(), 1u);
  EXPECT_DOUBLE_EQ(engine.now(), 10.0);  // 9 units of transmission + 1 latency
  EXPECT_EQ(net.sent_units(0), 10u);
}

TEST_F(Fixture, BackToBackUnitMessagesQueuePerLink) {
  net.send(0, 1, std::make_shared<TestPayload>());
  net.send(0, 1, std::make_shared<TestPayload>());
  net.send(0, 2, std::make_shared<TestPayload>());  // different link: parallel
  engine.run();
  ASSERT_EQ(peers[1].received.size(), 2u);
  EXPECT_DOUBLE_EQ(peers[1].received[1].sent_at, 0.0);
  // Second message on the 0->1 link departs at t=1, arrives t=2.
  EXPECT_DOUBLE_EQ(engine.now(), 2.0);
  EXPECT_EQ(peers[2].received.size(), 1u);
}

TEST_F(Fixture, ObserverSeesSendsDeliveriesDrops) {
  struct Obs final : NetworkObserver {
    void on_send(const Message&, std::size_t units) override { sends += units; }
    void on_deliver(const Message&) override { ++delivers; }
    void on_drop(const Message&) override { ++drops; }
    std::size_t sends = 0, delivers = 0, drops = 0;
  } obs;
  net.set_observer(&obs);
  net.send(0, 1, std::make_shared<TestPayload>());
  net.send(0, 2, std::make_shared<TestPayload>());
  engine.schedule_at(0.5, [&] { net.crash(2); });
  engine.run();
  EXPECT_EQ(obs.sends, 2u);
  EXPECT_EQ(obs.delivers, 1u);
  EXPECT_EQ(obs.drops, 1u);
}

TEST_F(Fixture, CustomLatencyPolicyApplied) {
  net.set_latency_policy(std::make_unique<FixedLatency>(0.25));
  net.send(0, 1, std::make_shared<TestPayload>());
  engine.run();
  EXPECT_DOUBLE_EQ(engine.now(), 0.25);
}

TEST_F(Fixture, CrashedCount) {
  EXPECT_EQ(net.crashed_count(), 0u);
  net.crash(1);
  net.crash(3);
  EXPECT_EQ(net.crashed_count(), 2u);
  EXPECT_TRUE(net.is_crashed(1));
  EXPECT_FALSE(net.is_crashed(0));
}

struct PairingObserver final : NetworkObserver {
  void on_send(const Message& msg, std::size_t) override {
    sent_ids.push_back(msg.id);
  }
  void on_deliver(const Message& msg) override { settled_ids.push_back(msg.id); }
  void on_drop(const Message& msg) override { settled_ids.push_back(msg.id); }
  std::vector<std::uint64_t> sent_ids;
  std::vector<std::uint64_t> settled_ids;
};

// Regression: a send the pre-send hook kills used to emit on_drop with no
// prior on_send AND burn a message id, leaving phantom nodes in the causal
// DAG. A killed send must now be invisible: no id consumed, no observer
// event of either kind.
TEST_F(Fixture, HookCrashedSendConsumesNoIdAndEmitsNothing) {
  PairingObserver obs;
  net.set_observer(&obs);
  net.set_pre_send_hook([&](const Message& msg) {
    if (msg.from == 0) net.crash(0);
  });
  net.send(0, 1, std::make_shared<TestPayload>());  // killed by the hook
  net.send(2, 3, std::make_shared<TestPayload>());  // goes through
  engine.run();
  ASSERT_EQ(obs.sent_ids.size(), 1u);
  EXPECT_EQ(obs.sent_ids[0], 0u);  // the killed send did not burn id 0
  EXPECT_EQ(obs.settled_ids, obs.sent_ids);
  EXPECT_TRUE(peers[1].received.empty());
  ASSERT_EQ(peers[3].received.size(), 1u);
  EXPECT_EQ(peers[3].received[0].id, 0u);
}

TEST_F(Fixture, MidBroadcastHookCrashKeepsIdsConsecutive) {
  PairingObserver obs;
  net.set_observer(&obs);
  int allowed = 2;
  net.set_pre_send_hook([&](const Message& msg) {
    if (msg.from == 0 && allowed-- == 0) net.crash(0);
  });
  net.broadcast(0, std::make_shared<TestPayload>());
  net.send(1, 2, std::make_shared<TestPayload>());
  engine.run();
  // Broadcast committed sends to peers 1 and 2 (ids 0, 1); the killed third
  // send left no gap, so peer 1's follow-up send took id 2.
  EXPECT_EQ(obs.sent_ids, (std::vector<std::uint64_t>{0, 1, 2}));
  std::vector<std::uint64_t> settled = obs.settled_ids;
  std::sort(settled.begin(), settled.end());
  EXPECT_EQ(settled, obs.sent_ids);
}

TEST_F(Fixture, SparseBroadcastBucketsSameArrivalIntoOneEvent) {
  ASSERT_EQ(net.link_mode(), Network::LinkMode::kSparse);
  net.set_latency_policy(std::make_unique<FixedLatency>(0.5));
  net.broadcast(0, std::make_shared<TestPayload>());
  // All three recipients share arrival time 0.5: one bucketed event.
  EXPECT_EQ(engine.pending(), 1u);
  engine.run();
  EXPECT_EQ(peers[1].received.size(), 1u);
  EXPECT_EQ(peers[2].received.size(), 1u);
  EXPECT_EQ(peers[3].received.size(), 1u);
  EXPECT_DOUBLE_EQ(engine.now(), 0.5);
}

TEST_F(Fixture, DenseModeSchedulesPerRecipient) {
  net.set_link_mode(Network::LinkMode::kDense);
  EXPECT_EQ(net.link_mode(), Network::LinkMode::kDense);
  net.set_latency_policy(std::make_unique<FixedLatency>(0.5));
  net.broadcast(0, std::make_shared<TestPayload>());
  EXPECT_EQ(engine.pending(), 3u);  // legacy fan-out: one event per recipient
  engine.run();
  EXPECT_EQ(peers[1].received.size(), 1u);
  EXPECT_EQ(peers[2].received.size(), 1u);
  EXPECT_EQ(peers[3].received.size(), 1u);
}

TEST_F(Fixture, LinkModeSwitchRejectedAfterTraffic) {
  net.send(0, 1, std::make_shared<TestPayload>());
  EXPECT_THROW(net.set_link_mode(Network::LinkMode::kDense),
               contract_violation);
}

TEST_F(Fixture, InFlightAccountingAndBusyLinks) {
  EXPECT_EQ(net.total_in_flight(), 0u);
  EXPECT_EQ(net.active_links(), 0u);
  net.send(0, 1, std::make_shared<TestPayload>());
  net.send(0, 1, std::make_shared<TestPayload>());
  net.send(2, 3, std::make_shared<TestPayload>());
  EXPECT_EQ(net.in_flight(0, 1), 2u);
  EXPECT_EQ(net.in_flight(2, 3), 1u);
  EXPECT_EQ(net.in_flight(1, 0), 0u);
  EXPECT_EQ(net.total_in_flight(), 3u);
  EXPECT_EQ(net.active_links(), 2u);
  const std::vector<Network::BusyLink> busy = net.busy_links();
  ASSERT_EQ(busy.size(), 2u);
  EXPECT_EQ(busy[0].from, 0u);
  EXPECT_EQ(busy[0].to, 1u);
  EXPECT_EQ(busy[0].in_flight, 2u);
  EXPECT_EQ(busy[1].from, 2u);
  EXPECT_EQ(busy[1].to, 3u);
  engine.run();
  EXPECT_EQ(net.total_in_flight(), 0u);
  EXPECT_TRUE(net.busy_links().empty());
  // Drained links stay counted: active_links is ever-carried-traffic.
  EXPECT_EQ(net.active_links(), 2u);
}

TEST_F(Fixture, DenseModeDiagnosticsMatchSparseSemantics) {
  net.set_link_mode(Network::LinkMode::kDense);
  net.send(0, 1, std::make_shared<TestPayload>());
  net.send(2, 3, std::make_shared<TestPayload>());
  EXPECT_EQ(net.in_flight(0, 1), 1u);
  EXPECT_EQ(net.total_in_flight(), 2u);
  EXPECT_EQ(net.active_links(), 2u);
  const std::vector<Network::BusyLink> busy = net.busy_links();
  ASSERT_EQ(busy.size(), 2u);
  EXPECT_EQ(busy[0].from, 0u);
  EXPECT_EQ(busy[1].from, 2u);
}

TEST(NetworkInvalid, RejectsBadConstruction) {
  Engine e;
  EXPECT_THROW(Network(e, 1, 64), contract_violation);
  EXPECT_THROW(Network(e, 4, 0), contract_violation);
}

TEST(NetworkInvalid, FixedLatencyRange) {
  EXPECT_THROW(FixedLatency(0.0), contract_violation);
  EXPECT_THROW(FixedLatency(1.5), contract_violation);
}

}  // namespace
}  // namespace asyncdr::sim
