#include "sim/network.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/check.hpp"
#include "sim/engine.hpp"

namespace asyncdr::sim {
namespace {

struct TestPayload final : Payload {
  explicit TestPayload(std::size_t bits = 8, int tag = 0)
      : bits_(bits), tag_(tag) {}
  std::size_t size_bits() const override { return bits_; }
  std::string type_name() const override { return "TestPayload"; }
  std::size_t bits_;
  int tag_;
};

struct Recorder final : Receiver {
  void deliver(const Message& msg) override { received.push_back(msg); }
  std::vector<Message> received;
};

struct Fixture : ::testing::Test {
  Fixture() : net(engine, 4, 64) {
    for (PeerId i = 0; i < 4; ++i) net.attach(i, &peers[i]);
  }
  Engine engine;
  Network net;
  Recorder peers[4];
};

TEST_F(Fixture, DeliversWithDefaultUnitLatency) {
  net.send(0, 1, std::make_shared<TestPayload>());
  engine.run();
  ASSERT_EQ(peers[1].received.size(), 1u);
  EXPECT_EQ(peers[1].received[0].from, 0u);
  EXPECT_DOUBLE_EQ(engine.now(), 1.0);
}

TEST_F(Fixture, BroadcastSkipsSelfAndOrdersByID) {
  net.broadcast(2, std::make_shared<TestPayload>());
  engine.run();
  EXPECT_EQ(peers[0].received.size(), 1u);
  EXPECT_EQ(peers[1].received.size(), 1u);
  EXPECT_TRUE(peers[2].received.empty());
  EXPECT_EQ(peers[3].received.size(), 1u);
}

TEST_F(Fixture, CrashedSenderSendsNothing) {
  net.crash(0);
  net.send(0, 1, std::make_shared<TestPayload>());
  engine.run();
  EXPECT_TRUE(peers[1].received.empty());
  EXPECT_EQ(net.sent_units(0), 0u);
}

TEST_F(Fixture, CrashedReceiverDropsInFlight) {
  net.send(0, 1, std::make_shared<TestPayload>());
  engine.schedule_at(0.5, [&] { net.crash(1); });
  engine.run();
  EXPECT_TRUE(peers[1].received.empty());
  // The send itself still counts (it was made by a live peer).
  EXPECT_EQ(net.sent_units(0), 1u);
}

TEST_F(Fixture, MessagesSentBeforeCrashStillDeliver) {
  net.send(0, 1, std::make_shared<TestPayload>());
  engine.schedule_at(0.5, [&] { net.crash(0); });
  engine.run();
  EXPECT_EQ(peers[1].received.size(), 1u);
}

TEST_F(Fixture, PreSendHookCanCrashMidBroadcast) {
  int allowed = 2;
  net.set_pre_send_hook([&](const Message& msg) {
    if (msg.from == 0 && allowed-- == 0) net.crash(0);
  });
  net.broadcast(0, std::make_shared<TestPayload>());
  engine.run();
  // Only the first two sends (to peers 1 and 2) went out.
  EXPECT_EQ(peers[1].received.size(), 1u);
  EXPECT_EQ(peers[2].received.size(), 1u);
  EXPECT_TRUE(peers[3].received.empty());
}

TEST_F(Fixture, UnitMessageAccounting) {
  EXPECT_EQ(net.unit_messages(TestPayload(1)), 1u);
  EXPECT_EQ(net.unit_messages(TestPayload(64)), 1u);
  EXPECT_EQ(net.unit_messages(TestPayload(65)), 2u);
  EXPECT_EQ(net.unit_messages(TestPayload(640)), 10u);
  EXPECT_EQ(net.unit_messages(TestPayload(0)), 1u);  // floor of 1
}

TEST_F(Fixture, LargePayloadSerializesOnLink) {
  // 10 units on one link: transmission inflates arrival beyond latency 1.
  net.send(0, 1, std::make_shared<TestPayload>(640));
  engine.run();
  ASSERT_EQ(peers[1].received.size(), 1u);
  EXPECT_DOUBLE_EQ(engine.now(), 10.0);  // 9 units of transmission + 1 latency
  EXPECT_EQ(net.sent_units(0), 10u);
}

TEST_F(Fixture, BackToBackUnitMessagesQueuePerLink) {
  net.send(0, 1, std::make_shared<TestPayload>());
  net.send(0, 1, std::make_shared<TestPayload>());
  net.send(0, 2, std::make_shared<TestPayload>());  // different link: parallel
  engine.run();
  ASSERT_EQ(peers[1].received.size(), 2u);
  EXPECT_DOUBLE_EQ(peers[1].received[1].sent_at, 0.0);
  // Second message on the 0->1 link departs at t=1, arrives t=2.
  EXPECT_DOUBLE_EQ(engine.now(), 2.0);
  EXPECT_EQ(peers[2].received.size(), 1u);
}

TEST_F(Fixture, ObserverSeesSendsDeliveriesDrops) {
  struct Obs final : NetworkObserver {
    void on_send(const Message&, std::size_t units) override { sends += units; }
    void on_deliver(const Message&) override { ++delivers; }
    void on_drop(const Message&) override { ++drops; }
    std::size_t sends = 0, delivers = 0, drops = 0;
  } obs;
  net.set_observer(&obs);
  net.send(0, 1, std::make_shared<TestPayload>());
  net.send(0, 2, std::make_shared<TestPayload>());
  engine.schedule_at(0.5, [&] { net.crash(2); });
  engine.run();
  EXPECT_EQ(obs.sends, 2u);
  EXPECT_EQ(obs.delivers, 1u);
  EXPECT_EQ(obs.drops, 1u);
}

TEST_F(Fixture, CustomLatencyPolicyApplied) {
  net.set_latency_policy(std::make_unique<FixedLatency>(0.25));
  net.send(0, 1, std::make_shared<TestPayload>());
  engine.run();
  EXPECT_DOUBLE_EQ(engine.now(), 0.25);
}

TEST_F(Fixture, CrashedCount) {
  EXPECT_EQ(net.crashed_count(), 0u);
  net.crash(1);
  net.crash(3);
  EXPECT_EQ(net.crashed_count(), 2u);
  EXPECT_TRUE(net.is_crashed(1));
  EXPECT_FALSE(net.is_crashed(0));
}

TEST(NetworkInvalid, RejectsBadConstruction) {
  Engine e;
  EXPECT_THROW(Network(e, 1, 64), contract_violation);
  EXPECT_THROW(Network(e, 4, 0), contract_violation);
}

TEST(NetworkInvalid, FixedLatencyRange) {
  EXPECT_THROW(FixedLatency(0.0), contract_violation);
  EXPECT_THROW(FixedLatency(1.5), contract_violation);
}

}  // namespace
}  // namespace asyncdr::sim
