#include "sim/engine.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"

namespace asyncdr::sim {
namespace {

TEST(Engine, StartsAtTimeZeroIdle) {
  Engine e;
  EXPECT_DOUBLE_EQ(e.now(), 0.0);
  EXPECT_TRUE(e.idle());
  EXPECT_FALSE(e.step());
}

TEST(Engine, FiresInTimeOrder) {
  Engine e;
  std::vector<int> order;
  e.schedule_at(3.0, [&] { order.push_back(3); });
  e.schedule_at(1.0, [&] { order.push_back(1); });
  e.schedule_at(2.0, [&] { order.push_back(2); });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(e.now(), 3.0);
}

TEST(Engine, TieBrokenByInsertionOrder) {
  Engine e;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    e.schedule_at(1.0, [&order, i] { order.push_back(i); });
  }
  e.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Engine, ScheduleInIsRelative) {
  Engine e;
  double fired_at = -1;
  e.schedule_at(2.0, [&] {
    e.schedule_in(0.5, [&] { fired_at = e.now(); });
  });
  e.run();
  EXPECT_DOUBLE_EQ(fired_at, 2.5);
}

TEST(Engine, NestedSchedulingAtSameTime) {
  Engine e;
  std::vector<int> order;
  e.schedule_at(1.0, [&] {
    order.push_back(0);
    e.schedule_in(0.0, [&] { order.push_back(2); });
  });
  e.schedule_at(1.0, [&] { order.push_back(1); });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(Engine, PastSchedulingThrows) {
  Engine e;
  e.schedule_at(5.0, [] {});
  e.run();
  EXPECT_THROW(e.schedule_at(4.0, [] {}), contract_violation);
  EXPECT_THROW(e.schedule_in(-1.0, [] {}), contract_violation);
  EXPECT_THROW(e.schedule_at(6.0, nullptr), contract_violation);
}

TEST(Engine, BudgetStopsRunawayExecution) {
  Engine e;
  std::function<void()> loop = [&] { e.schedule_in(1.0, loop); };
  e.schedule_at(0.0, loop);
  const auto result = e.run(100);
  EXPECT_TRUE(result.budget_exhausted);
  EXPECT_EQ(result.events_processed, 100u);
  EXPECT_FALSE(e.idle());
}

TEST(Engine, RunReportsEventCount) {
  Engine e;
  for (int i = 0; i < 7; ++i) e.schedule_at(i, [] {});
  const auto result = e.run();
  EXPECT_EQ(result.events_processed, 7u);
  EXPECT_FALSE(result.budget_exhausted);
}

TEST(Engine, PendingCount) {
  Engine e;
  e.schedule_at(1.0, [] {});
  e.schedule_at(2.0, [] {});
  EXPECT_EQ(e.pending(), 2u);
  e.step();
  EXPECT_EQ(e.pending(), 1u);
}

}  // namespace
}  // namespace asyncdr::sim
