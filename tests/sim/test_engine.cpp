#include "sim/engine.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"

namespace asyncdr::sim {
namespace {

TEST(Engine, StartsAtTimeZeroIdle) {
  Engine e;
  EXPECT_DOUBLE_EQ(e.now(), 0.0);
  EXPECT_TRUE(e.idle());
  EXPECT_FALSE(e.step());
}

TEST(Engine, FiresInTimeOrder) {
  Engine e;
  std::vector<int> order;
  e.schedule_at(3.0, [&] { order.push_back(3); });
  e.schedule_at(1.0, [&] { order.push_back(1); });
  e.schedule_at(2.0, [&] { order.push_back(2); });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(e.now(), 3.0);
}

TEST(Engine, TieBrokenByInsertionOrder) {
  Engine e;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    e.schedule_at(1.0, [&order, i] { order.push_back(i); });
  }
  e.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Engine, ScheduleInIsRelative) {
  Engine e;
  double fired_at = -1;
  e.schedule_at(2.0, [&] {
    e.schedule_in(0.5, [&] { fired_at = e.now(); });
  });
  e.run();
  EXPECT_DOUBLE_EQ(fired_at, 2.5);
}

TEST(Engine, NestedSchedulingAtSameTime) {
  Engine e;
  std::vector<int> order;
  e.schedule_at(1.0, [&] {
    order.push_back(0);
    e.schedule_in(0.0, [&] { order.push_back(2); });
  });
  e.schedule_at(1.0, [&] { order.push_back(1); });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(Engine, PastSchedulingThrows) {
  Engine e;
  e.schedule_at(5.0, [] {});
  e.run();
  EXPECT_THROW(e.schedule_at(4.0, [] {}), contract_violation);
  EXPECT_THROW(e.schedule_in(-1.0, [] {}), contract_violation);
  EXPECT_THROW(e.schedule_at(6.0, nullptr), contract_violation);
}

TEST(Engine, BudgetStopsRunawayExecution) {
  Engine e;
  std::function<void()> loop = [&] { e.schedule_in(1.0, loop); };
  e.schedule_at(0.0, loop);
  const auto result = e.run(100);
  EXPECT_TRUE(result.budget_exhausted);
  EXPECT_EQ(result.events_processed, 100u);
  EXPECT_FALSE(e.idle());
}

TEST(Engine, RunReportsEventCount) {
  Engine e;
  for (int i = 0; i < 7; ++i) e.schedule_at(i, [] {});
  const auto result = e.run();
  EXPECT_EQ(result.events_processed, 7u);
  EXPECT_FALSE(result.budget_exhausted);
}

TEST(Engine, PendingCount) {
  Engine e;
  e.schedule_at(1.0, [] {});
  e.schedule_at(2.0, [] {});
  EXPECT_EQ(e.pending(), 2u);
  e.step();
  EXPECT_EQ(e.pending(), 1u);
}

// Regression for the pooled-event engine: an action whose DESTRUCTOR
// re-enters schedule_at while step() is still unwinding must find the heap,
// pool, and free list consistent. (The old priority_queue implementation
// moved events out of top() via const_cast, where this pattern was
// formally undefined.)
TEST(Engine, ActionDestructorMayRescheduleDuringStep) {
  Engine e;
  bool late_fired = false;

  struct DtorScheduler {
    Engine* engine;
    bool* flag;
    bool invoked = false;
    bool armed = true;
    DtorScheduler(Engine* eng, bool* f) : engine(eng), flag(f) {}
    DtorScheduler(DtorScheduler&& o) noexcept
        : engine(o.engine), flag(o.flag), invoked(o.invoked), armed(o.armed) {
      o.armed = false;  // only the final resting instance fires on death
    }
    DtorScheduler& operator=(DtorScheduler&&) = delete;
    DtorScheduler(const DtorScheduler&) = delete;
    ~DtorScheduler() {
      if (armed && invoked) {
        engine->schedule_in(0.5, [f = flag] { *f = true; });
      }
    }
    void operator()() { invoked = true; }
  };

  e.schedule_at(1.0, DtorScheduler{&e, &late_fired});
  const auto result = e.run();
  EXPECT_TRUE(late_fired);
  EXPECT_DOUBLE_EQ(e.now(), 1.5);
  EXPECT_EQ(result.events_processed, 2u);
}

TEST(Engine, LargeCapturesPreserveOrderViaHeapFallback) {
  Engine e;
  std::vector<int> order;
  for (int i = 0; i < 8; ++i) {
    // Padding pushes the closure past the inline buffer; ordering must not
    // depend on which storage path a callable took.
    std::array<char, 160> pad{};
    pad[0] = static_cast<char>(i);
    e.schedule_at(1.0, [&order, pad] { order.push_back(pad[0]); });
  }
  e.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}));
}

// The 4-ary heap against a reference sort: scrambled times with duplicates,
// plus a second wave scheduled mid-run so pool slots get recycled while the
// heap is live.
TEST(Engine, HeapOrdersScrambledTimesWithRecycledSlots) {
  Engine e;
  std::vector<std::pair<double, int>> fired;
  const double times[] = {5, 1, 3, 1, 4, 2, 5, 0, 2, 3, 1, 4};
  int tag = 0;
  for (double t : times) {
    e.schedule_at(t, [&fired, &e, t, tag] {
      fired.emplace_back(t, tag);
      if (t < 2.0) {
        // Second wave: reuses slots freed by already-fired events.
        e.schedule_at(t + 10.0, [&fired, t, tag] {
          fired.emplace_back(t + 10.0, tag);
        });
      }
    });
    ++tag;
  }
  e.run();
  ASSERT_EQ(fired.size(), 12u + 4u);  // 4 first-wave times are < 2.0
  // (time, insertion order) must be non-decreasing lexicographically within
  // each wave; across the whole log times are non-decreasing.
  for (std::size_t i = 1; i < fired.size(); ++i) {
    EXPECT_LE(fired[i - 1].first, fired[i].first);
    if (fired[i - 1].first == fired[i].first) {
      EXPECT_LT(fired[i - 1].second, fired[i].second);
    }
  }
}

}  // namespace
}  // namespace asyncdr::sim
