// InlineAction: the engine's small-buffer-optimized move-only callable.
// These tests pin the storage contract — small captures stay inline, large
// ones take exactly one heap cell, and every callable is destroyed exactly
// once no matter how it moves through pools and locals.
#include "sim/action.hpp"

#include <gtest/gtest.h>

#include <array>
#include <functional>
#include <utility>
#include <vector>

namespace asyncdr::sim {
namespace {

TEST(InlineAction, DefaultAndNullptrAreEmpty) {
  InlineAction empty;
  EXPECT_FALSE(static_cast<bool>(empty));
  InlineAction null = nullptr;
  EXPECT_FALSE(static_cast<bool>(null));
}

TEST(InlineAction, InvokesSmallCapture) {
  int hits = 0;
  InlineAction a = [&hits] { ++hits; };
  ASSERT_TRUE(static_cast<bool>(a));
  a();
  a();
  EXPECT_EQ(hits, 2);
}

TEST(InlineAction, InvokesLargeCaptureViaHeapFallback) {
  std::array<char, 2 * InlineAction::kInlineBytes> big{};
  big[0] = 42;
  int got = 0;
  InlineAction a = [big, &got] { got = big[0]; };
  a();
  EXPECT_EQ(got, 42);
}

TEST(InlineAction, MoveTransfersAndEmptiesSource) {
  int hits = 0;
  InlineAction a = [&hits] { ++hits; };
  InlineAction b = std::move(a);
  EXPECT_FALSE(static_cast<bool>(a));  // NOLINT(bugprone-use-after-move)
  ASSERT_TRUE(static_cast<bool>(b));
  b();
  EXPECT_EQ(hits, 1);

  InlineAction c;
  c = std::move(b);
  ASSERT_TRUE(static_cast<bool>(c));
  c();
  EXPECT_EQ(hits, 2);
}

TEST(InlineAction, AcceptsStdFunctionLvalue) {
  int hits = 0;
  std::function<void()> f = [&hits] { ++hits; };
  InlineAction a = f;  // copies the std::function into the action
  a();
  EXPECT_EQ(hits, 1);
  f();  // the original is untouched
  EXPECT_EQ(hits, 2);
}

struct InstanceCounter {
  static int live;
  static int destroyed;
  InstanceCounter() { ++live; }
  InstanceCounter(const InstanceCounter&) { ++live; }
  InstanceCounter(InstanceCounter&&) noexcept { ++live; }
  ~InstanceCounter() {
    --live;
    ++destroyed;
  }
  void operator()() const {}
  // Pad past the inline buffer so the heap path is exercised too.
  std::array<char, InlineAction::kInlineBytes> pad{};
};
int InstanceCounter::live = 0;
int InstanceCounter::destroyed = 0;

TEST(InlineAction, HeapCallableDestroyedExactlyOnceAcrossMoves) {
  InstanceCounter::live = 0;
  InstanceCounter::destroyed = 0;
  {
    InlineAction a = InstanceCounter{};
    InlineAction b = std::move(a);
    InlineAction c;
    c = std::move(b);
    c();
    EXPECT_EQ(InstanceCounter::live, 1);
  }
  EXPECT_EQ(InstanceCounter::live, 0);
}

struct SmallCounter {
  static int live;
  SmallCounter() { ++live; }
  SmallCounter(const SmallCounter&) { ++live; }
  SmallCounter(SmallCounter&&) noexcept { ++live; }
  ~SmallCounter() { --live; }
  void operator()() const {}
};
int SmallCounter::live = 0;

TEST(InlineAction, InlineCallableDestroyedExactlyOnceAcrossMoves) {
  SmallCounter::live = 0;
  {
    std::vector<InlineAction> pool;
    pool.emplace_back(SmallCounter{});
    pool.emplace_back(SmallCounter{});
    // Vector growth relocates the actions through their move ops.
    for (int i = 0; i < 20; ++i) pool.emplace_back([] {});
    pool[0]();
    EXPECT_EQ(SmallCounter::live, 2);
  }
  EXPECT_EQ(SmallCounter::live, 0);
}

TEST(InlineAction, MoveAssignDestroysPreviousCallable) {
  SmallCounter::live = 0;
  InlineAction a = SmallCounter{};
  EXPECT_EQ(SmallCounter::live, 1);
  a = InlineAction([] {});
  EXPECT_EQ(SmallCounter::live, 0);
  a();
}

}  // namespace
}  // namespace asyncdr::sim
