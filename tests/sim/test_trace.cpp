#include "sim/trace.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"
#include "protocols/runner.hpp"

namespace asyncdr {
namespace {

using sim::TraceEvent;

struct Ping final : sim::Payload {
  std::size_t size_bits() const override { return 16; }
  std::string type_name() const override { return "Ping"; }
};

TEST(Trace, RecordsNetworkLifecycle) {
  sim::Engine engine;
  sim::Network net(engine, 3, 64);
  sim::Trace trace(engine);
  net.set_observer(&trace);
  struct Sink final : sim::Receiver {
    void deliver(const sim::Message&) override {}
  } sink;
  for (sim::PeerId i = 0; i < 3; ++i) net.attach(i, &sink);

  net.send(0, 1, std::make_shared<Ping>());
  net.send(0, 2, std::make_shared<Ping>());
  engine.schedule_at(0.5, [&] { net.crash(2); });
  engine.run();

  EXPECT_EQ(trace.count(TraceEvent::Kind::kSend), 2u);
  EXPECT_EQ(trace.count(TraceEvent::Kind::kDeliver), 1u);
  EXPECT_EQ(trace.count(TraceEvent::Kind::kDrop), 1u);

  const auto sends = trace.filter(
      [](const TraceEvent& ev) { return ev.kind == TraceEvent::Kind::kSend; });
  ASSERT_EQ(sends.size(), 2u);
  EXPECT_EQ(sends[0].from, 0u);
  EXPECT_EQ(sends[0].to, 1u);
  EXPECT_EQ(sends[0].payload_type, "Ping");
}

TEST(Trace, DeliveryTimestampUsesEngineClock) {
  sim::Engine engine;
  sim::Network net(engine, 2, 64);
  sim::Trace trace(engine);
  net.set_observer(&trace);
  struct Sink final : sim::Receiver {
    void deliver(const sim::Message&) override {}
  } sink;
  net.attach(0, &sink);
  net.attach(1, &sink);
  net.set_latency_policy(std::make_unique<sim::FixedLatency>(0.75));
  net.send(0, 1, std::make_shared<Ping>());
  engine.run();
  const auto delivers = trace.filter([](const TraceEvent& ev) {
    return ev.kind == TraceEvent::Kind::kDeliver;
  });
  ASSERT_EQ(delivers.size(), 1u);
  EXPECT_DOUBLE_EQ(delivers[0].at, 0.75);
}

TEST(Trace, CapacityOverflowCounts) {
  sim::Engine engine;
  sim::Trace trace(engine, 2);
  trace.record_crash(0.0, 1);
  trace.record_crash(0.1, 2);
  trace.record_crash(0.2, 3);
  EXPECT_EQ(trace.size(), 2u);
  EXPECT_EQ(trace.dropped_events(), 1u);
  EXPECT_NE(trace.render().find("not recorded"), std::string::npos);
}

TEST(Trace, QueryCoalescing) {
  sim::Engine engine;
  sim::Trace trace(engine);
  trace.record_query(0.0, 5, 10);
  trace.record_query(0.0, 5, 20);   // same peer, same instant: coalesced
  trace.record_query(0.0, 6, 1);    // different peer
  trace.record_query(1.0, 5, 2);    // later instant
  EXPECT_EQ(trace.count(TraceEvent::Kind::kQuery), 3u);
  EXPECT_EQ(trace.events()[0].detail_a, 30u);
}

TEST(Trace, RenderFiltersByPeer) {
  sim::Engine engine;
  sim::Trace trace(engine);
  trace.record_terminate(1.0, 3);
  trace.record_terminate(2.0, 4);
  const std::string only3 = trace.render(3);
  EXPECT_NE(only3.find("p3"), std::string::npos);
  EXPECT_EQ(only3.find("p4"), std::string::npos);
}

TEST(Trace, FullProtocolRunProducesCoherentTimeline) {
  dr::Config cfg{.n = 1024, .k = 6, .beta = 0.34, .message_bits = 256,
                 .seed = 3};
  dr::World world(cfg, proto::random_input(cfg.n, cfg.seed));
  sim::Trace& trace = world.enable_trace();
  for (sim::PeerId id = 0; id < cfg.k; ++id) {
    world.set_peer(id, std::make_unique<proto::CrashMultiPeer>());
  }
  world.schedule_crash_at(5, 0.4);
  world.schedule_crash_at(2, 1.2);
  const auto report = world.run();
  ASSERT_TRUE(report.ok()) << report.to_string();

  EXPECT_EQ(trace.count(TraceEvent::Kind::kCrash), 2u);
  // All 4 nonfaulty peers terminate; a victim may have finished pre-crash.
  EXPECT_GE(trace.count(TraceEvent::Kind::kTerminate), 4u);
  EXPECT_LE(trace.count(TraceEvent::Kind::kTerminate), 6u);
  EXPECT_GT(trace.count(TraceEvent::Kind::kQuery), 0u);
  EXPECT_GT(trace.count(TraceEvent::Kind::kSend), 0u);
  // Timestamps are non-decreasing for deliveries.
  sim::Time last = 0;
  for (const TraceEvent& ev : trace.events()) {
    if (ev.kind != TraceEvent::Kind::kDeliver) continue;
    EXPECT_GE(ev.at, last);
    last = ev.at;
  }
  // Queried bits in the trace reconcile with the report's accounting.
  std::uint64_t traced_bits = 0;
  for (const TraceEvent& ev : trace.events()) {
    if (ev.kind == TraceEvent::Kind::kQuery) traced_bits += ev.detail_a;
  }
  std::uint64_t reported = 0;
  for (std::size_t q : report.per_peer_queries) reported += q;
  EXPECT_EQ(traced_bits, reported);
}

TEST(Trace, StartsAreRecordedAndSendsCarryMessageIds) {
  dr::Config cfg{.n = 1024, .k = 6, .beta = 0.34, .message_bits = 256,
                 .seed = 4};
  dr::World world(cfg, proto::random_input(cfg.n, cfg.seed));
  sim::Trace& trace = world.enable_trace();
  for (sim::PeerId id = 0; id < cfg.k; ++id) {
    world.set_peer(id, std::make_unique<proto::CrashMultiPeer>());
  }
  ASSERT_TRUE(world.run().ok());

  // Every peer started (no crashes here), each start a causal root.
  EXPECT_EQ(trace.count(TraceEvent::Kind::kStart), cfg.k);
  for (const TraceEvent& ev : trace.events()) {
    const bool network_event = ev.kind == TraceEvent::Kind::kSend ||
                               ev.kind == TraceEvent::Kind::kDeliver ||
                               ev.kind == TraceEvent::Kind::kDrop;
    if (network_event) {
      EXPECT_NE(ev.msg_id, sim::kNoMessageId) << ev.to_string();
    } else {
      EXPECT_EQ(ev.msg_id, sim::kNoMessageId) << ev.to_string();
    }
  }
  // Each delivery's id resolves to an earlier send on the same link.
  for (std::size_t i = 0; i < trace.events().size(); ++i) {
    const TraceEvent& ev = trace.events()[i];
    if (ev.kind != TraceEvent::Kind::kDeliver) continue;
    bool matched = false;
    for (std::size_t j = 0; j < i && !matched; ++j) {
      const TraceEvent& prior = trace.events()[j];
      matched = prior.kind == TraceEvent::Kind::kSend &&
                prior.msg_id == ev.msg_id && prior.from == ev.from &&
                prior.to == ev.to;
    }
    EXPECT_TRUE(matched) << ev.to_string();
  }
}

TEST(Trace, LastEventInvolvingMatchesALinearScan) {
  dr::Config cfg{.n = 1024, .k = 6, .beta = 0.34, .message_bits = 256,
                 .seed = 5};
  dr::World world(cfg, proto::random_input(cfg.n, cfg.seed));
  sim::Trace& trace = world.enable_trace();
  for (sim::PeerId id = 0; id < cfg.k; ++id) {
    world.set_peer(id, std::make_unique<proto::CrashMultiPeer>());
  }
  world.schedule_crash_at(1, 0.6);
  ASSERT_TRUE(world.run().ok());

  // The O(1) index must agree with the definition: the latest event the
  // peer appears in as actor or recipient.
  for (sim::PeerId peer = 0; peer <= cfg.k; ++peer) {
    const TraceEvent* expected = nullptr;
    for (const TraceEvent& ev : trace.events()) {
      if (ev.from == peer || ev.to == peer) expected = &ev;
    }
    EXPECT_EQ(trace.last_event_involving(peer), expected) << "peer " << peer;
  }
  EXPECT_EQ(trace.last_event_involving(sim::kNoPeer), nullptr);
}

TEST(Trace, LastEventInvolvingSurvivesQueryCoalescing) {
  sim::Engine engine;
  sim::Trace trace(engine);
  trace.record_query(0.0, 5, 10);
  trace.record_query(0.0, 5, 20);  // coalesced into the first event
  const TraceEvent* last = trace.last_event_involving(5);
  ASSERT_NE(last, nullptr);
  EXPECT_EQ(last, &trace.events()[0]);
  EXPECT_EQ(last->detail_a, 30u);
}

TEST(Trace, EnableAfterRunRejected) {
  dr::Config cfg{.n = 32, .k = 2, .beta = 0.0, .message_bits = 64, .seed = 1};
  dr::World world(cfg, BitVec(32));
  for (sim::PeerId id = 0; id < 2; ++id) {
    world.set_peer(id, std::make_unique<proto::NaivePeer>());
  }
  (void)world.run();
  EXPECT_THROW(world.enable_trace(), contract_violation);
}

}  // namespace
}  // namespace asyncdr
