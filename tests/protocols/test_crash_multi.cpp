#include "protocols/crash_multi.hpp"

#include <gtest/gtest.h>

#include <tuple>

#include "harness.hpp"
#include "protocols/bounds.hpp"

namespace asyncdr::proto {
namespace {

using testing::cfg;
using testing::expect_ok;

TEST(CrashMulti, FaultFreeIsQueryOptimal) {
  Scenario s;
  s.cfg = cfg(1 << 14, 16, 0.0);
  s.honest = make_crash_multi();
  const auto report = expect_ok(s, "fault-free");
  // One phase of n/k plus no direct tail.
  EXPECT_EQ(report.query_complexity, (1u << 14) / 16);
}

TEST(CrashMulti, ToleratesMaxCrashesSilentPrefix) {
  Scenario s;
  s.cfg = cfg(1 << 13, 16, 0.5);
  s.honest = make_crash_multi();
  s.crashes = adv::CrashPlan::silent_prefix(8);
  const auto report = expect_ok(s, "silent prefix");
  EXPECT_LE(report.query_complexity, bounds::crash_multi_q(s.cfg));
}

TEST(CrashMulti, HighBetaNinetyPercentCrashes) {
  Scenario s;
  s.cfg = cfg(1 << 13, 40, 0.9);
  s.honest = make_crash_multi();
  s.crashes = adv::CrashPlan::silent_prefix(36);
  const auto report = expect_ok(s, "beta=0.9");
  EXPECT_LE(report.query_complexity, bounds::crash_multi_q(s.cfg));
  // Still far below naive.
  EXPECT_LT(report.query_complexity, s.cfg.n / 2);
}

TEST(CrashMulti, StaggeredCrashesAcrossPhases) {
  Scenario s;
  s.cfg = cfg(1 << 13, 12, 0.5, 3);
  s.honest = make_crash_multi();
  Rng rng(17);
  s.crashes = adv::CrashPlan::staggered(s.cfg, rng, 6, 2.5);
  const auto report = expect_ok(s, "staggered");
  EXPECT_LE(report.query_complexity, bounds::crash_multi_q(s.cfg));
}

TEST(CrashMulti, PartialBroadcastCrashes) {
  Scenario s;
  s.cfg = cfg(1 << 12, 10, 0.4, 5);
  s.honest = make_crash_multi();
  Rng rng(29);
  s.crashes = adv::CrashPlan::partial_broadcast(s.cfg, rng, 4, 3);
  expect_ok(s, "partial broadcast");
}

TEST(CrashMulti, FastCancelOffStillCorrect) {
  Scenario s;
  s.cfg = cfg(1 << 12, 10, 0.5, 6);
  s.honest = make_crash_multi({.fast_cancel = false});
  Rng rng(31);
  s.crashes = adv::CrashPlan::random(s.cfg, rng, 5, 6.0);
  const auto report = expect_ok(s, "no fast-cancel");
  EXPECT_LE(report.query_complexity, bounds::crash_multi_q(s.cfg));
}

TEST(CrashMulti, DeterministicGivenSeed) {
  auto run_once = [] {
    Scenario s;
    s.cfg = cfg(1 << 12, 12, 0.5, 9);
    s.honest = make_crash_multi();
    Rng rng(5);
    s.crashes = adv::CrashPlan::random(s.cfg, rng, 6, 5.0);
    return run_scenario(s);
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(a.query_complexity, b.query_complexity);
  EXPECT_EQ(a.message_complexity, b.message_complexity);
  EXPECT_DOUBLE_EQ(a.time_complexity, b.time_complexity);
  EXPECT_EQ(a.events, b.events);
}

TEST(CrashMulti, SmallInputDirectPath) {
  // n at most the direct-query threshold max(ceil(n/k), 2k): everyone just
  // queries everything in phase 1.
  Scenario s;
  s.cfg = cfg(16, 8, 0.5, 2);
  s.honest = make_crash_multi();
  s.crashes = adv::CrashPlan::silent_prefix(4);
  const auto report = expect_ok(s, "small input");
  EXPECT_EQ(report.query_complexity, 16u);
}

TEST(CrashMulti, LateCrashAfterSomeTerminated) {
  // A peer that survives long enough to rescue others, then crashes.
  Scenario s;
  s.cfg = cfg(1 << 12, 8, 0.25, 11);
  s.honest = make_crash_multi();
  s.crashes.add_at_time(3, 50.0);
  s.crashes.add_at_time(5, 100.0);
  expect_ok(s, "late crash");
}

TEST(CrashMulti, StragglerStartTimes) {
  Scenario s;
  s.cfg = cfg(1 << 12, 8, 0.25, 13);
  s.honest = make_crash_multi();
  s.start_times[0] = 20.0;  // very late starter must still catch up
  s.crashes.add_at_time(7, 0.0);
  expect_ok(s, "late start");
}

TEST(CrashMulti, OptionsControlPhaseStructure) {
  // direct_threshold = n forces the one-shot naive path; max_phases = 1
  // forces the direct tail right after phase 1.
  dr::Config c = cfg(1 << 12, 8, 0.25, 4);
  {
    dr::World world(c, random_input(c.n, c.seed));
    for (sim::PeerId id = 0; id < c.k; ++id) {
      world.set_peer(id, std::make_unique<CrashMultiPeer>(
                             CrashMultiPeer::Options{.direct_threshold = c.n}));
    }
    const auto report = world.run();
    ASSERT_TRUE(report.ok());
    EXPECT_EQ(report.query_complexity, c.n);  // everyone queried everything
  }
  {
    dr::World world(c, random_input(c.n, c.seed));
    std::vector<CrashMultiPeer*> peers;
    for (sim::PeerId id = 0; id < c.k; ++id) {
      auto p = std::make_unique<CrashMultiPeer>(
          CrashMultiPeer::Options{.max_phases = 1});
      peers.push_back(p.get());
      world.set_peer(id, std::move(p));
    }
    world.schedule_crash_at(0, 0.0);
    world.schedule_crash_at(1, 0.0);
    const auto report = world.run();
    ASSERT_TRUE(report.ok());
    for (const auto* p : peers) EXPECT_LE(p->phases_run(), 2u);
    // Phase 1 share + the two dead blocks queried directly.
    EXPECT_LE(report.query_complexity, c.n / 8 + 2 * (c.n / 8) + 16);
  }
}

TEST(CrashMulti, PhaseDiagnosticsShrinkWithCrashes) {
  // More crashes -> more phases before the direct threshold is reached.
  auto phases_with = [](std::size_t crashes) {
    dr::Config c = cfg(1 << 14, 16, 0.75, 6);
    dr::World world(c, random_input(c.n, c.seed));
    std::vector<CrashMultiPeer*> peers;
    for (sim::PeerId id = 0; id < c.k; ++id) {
      auto p = std::make_unique<CrashMultiPeer>();
      peers.push_back(p.get());
      world.set_peer(id, std::move(p));
    }
    for (sim::PeerId id = 0; id < crashes; ++id) {
      world.schedule_crash_at(id, 0.0);
    }
    const auto report = world.run();
    EXPECT_TRUE(report.ok());
    std::size_t max_phase = 0;
    for (sim::PeerId id = crashes; id < 16; ++id) {
      max_phase = std::max(max_phase, peers[id]->phases_run());
    }
    return max_phase;
  };
  EXPECT_LT(phases_with(0), phases_with(12));
}

// Full sweep: (n, k, beta) x adversary style x seed.
using SweepParam = std::tuple<std::size_t, std::size_t, double, int>;
class CrashMultiSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(CrashMultiSweep, CorrectAndWithinBound) {
  const auto [n, k, beta, adversary] = GetParam();
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    Scenario s;
    s.cfg = cfg(n, k, beta, seed * 100 + adversary);
    s.honest = make_crash_multi();
    const std::size_t t = s.cfg.max_faulty();
    Rng rng(seed * 7 + static_cast<std::uint64_t>(adversary));
    switch (adversary) {
      case 0:
        s.crashes = adv::CrashPlan::silent_prefix(t);
        break;
      case 1:
        s.crashes = adv::CrashPlan::random(s.cfg, rng, t, 8.0);
        break;
      case 2:
        s.crashes = adv::CrashPlan::staggered(s.cfg, rng, t, 1.5);
        s.latency = seniority_latency();
        break;
      case 3:
        s.crashes = adv::CrashPlan::partial_broadcast(s.cfg, rng, t, 2);
        s.latency = uniform_latency(0.01, 1.0);
        break;
    }
    const auto report = expect_ok(s, "sweep");
    EXPECT_LE(report.query_complexity, bounds::crash_multi_q(s.cfg))
        << s.cfg.to_string();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, CrashMultiSweep,
    ::testing::Combine(::testing::Values<std::size_t>(1 << 12, 1 << 14),
                       ::testing::Values<std::size_t>(8, 16, 32),
                       ::testing::Values(0.25, 0.5, 0.75),
                       ::testing::Values(0, 1, 2, 3)));

}  // namespace
}  // namespace asyncdr::proto
