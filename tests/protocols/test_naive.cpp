#include "protocols/naive.hpp"

#include <gtest/gtest.h>

#include "harness.hpp"

namespace asyncdr::proto {
namespace {

using testing::cfg;
using testing::expect_ok;

TEST(Naive, CorrectWithQueryComplexityN) {
  Scenario s;
  s.cfg = cfg(512, 4, 0.0);
  s.honest = make_naive();
  const auto report = expect_ok(s, "naive");
  EXPECT_EQ(report.query_complexity, 512u);
  EXPECT_EQ(report.message_complexity, 0u);
}

TEST(Naive, ImmuneToAnyCrashPattern) {
  Scenario s;
  s.cfg = cfg(256, 8, 0.8);
  s.honest = make_naive();
  s.crashes = adv::CrashPlan::silent_prefix(6);
  expect_ok(s, "naive under crashes");
}

TEST(Naive, ImmuneToByzantineMajority) {
  Scenario s;
  s.cfg = cfg(256, 8, 0.8);
  s.honest = make_naive();
  s.byzantine = make_garbage_byz();
  s.byz_ids = {0, 1, 2, 3, 4, 5};
  const auto report = expect_ok(s, "naive under byz majority");
  EXPECT_EQ(report.query_complexity, 256u);
}

TEST(Naive, TerminatesAtOwnStartTime) {
  Scenario s;
  s.cfg = cfg(64, 4, 0.0);
  s.honest = make_naive();
  s.start_times[2] = 3.5;
  const auto report = expect_ok(s);
  EXPECT_DOUBLE_EQ(report.time_complexity, 3.5);
}

}  // namespace
}  // namespace asyncdr::proto
