#include "protocols/lowerbound.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"
#include "harness.hpp"
#include "protocols/bounds.hpp"

namespace asyncdr::proto {
namespace {

using testing::cfg;

TEST(DeterministicAttack, BreaksSubNQueryProtocolAtBetaHalf) {
  // Theorem 3.1: Algorithm 2 is a correct crash protocol with Q << n; under
  // a Byzantine majority the two-world adversary must defeat it.
  const auto c = cfg(1024, 8, 0.5, 3);
  const auto result = run_deterministic_majority_attack(c, make_crash_multi());
  EXPECT_TRUE(result.attackable) << result.detail;
  EXPECT_TRUE(result.succeeded) << result.detail;
  EXPECT_LT(result.victim_probe_queries, c.n);
}

TEST(DeterministicAttack, SweepOverSeedsAndSizes) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const auto c = cfg(512, 6, 0.5, seed);
    const auto result =
        run_deterministic_majority_attack(c, make_crash_multi());
    EXPECT_TRUE(result.attackable) << "seed " << seed;
    EXPECT_TRUE(result.succeeded) << "seed " << seed << ": " << result.detail;
  }
}

TEST(DeterministicAttack, NaiveProtocolIsNotAttackable) {
  // Q = n is exactly the Theorem 3.1 bound: no unqueried bit exists.
  const auto c = cfg(256, 6, 0.5, 2);
  const auto result = run_deterministic_majority_attack(c, make_naive());
  EXPECT_FALSE(result.attackable);
  EXPECT_FALSE(result.succeeded);
  EXPECT_EQ(result.victim_probe_queries, c.n);
}

TEST(DeterministicAttack, RequiresMajorityHeadroom) {
  const auto c = cfg(256, 9, 0.25, 2);  // t = 2 < (k-1)/2
  EXPECT_THROW(run_deterministic_majority_attack(c, make_crash_multi()),
               contract_violation);
}

TEST(DeterministicAttack, HigherBetaAlsoWorks) {
  const auto c = cfg(512, 8, 0.75, 4);
  const auto result = run_deterministic_majority_attack(c, make_crash_multi());
  EXPECT_TRUE(result.attackable);
  EXPECT_TRUE(result.succeeded) << result.detail;
}

TEST(RandomizedAttack, SuccessRateMeetsTheoremFloor) {
  // Theorem 3.2: a randomized protocol whose peers query q bits fails with
  // probability >= ~1 - q/n. Force the 2-cycle protocol into the majority
  // regime with optimistic parameters (k = 24 so the corrupted coalition
  // reliably covers both segments).
  const auto c = cfg(1024, 24, 0.5, 7);
  RandParams params;
  params.segments = 2;
  params.tau = 1;
  params.eta = 4;  // fiction the optimistic protocol believes
  const auto stats =
      run_randomized_majority_attack(c, make_two_cycle_with(params), 24);
  EXPECT_EQ(stats.trials, 24u);
  EXPECT_LT(stats.mean_victim_queries, static_cast<double>(c.n));
  // Mean q ~ n/2 => floor ~ 1/2. Allow simulation slack.
  EXPECT_GE(stats.success_rate(), stats.predicted_floor(c.n) - 0.25);
  EXPECT_GE(stats.success_rate(), 0.25);
}

TEST(RandomizedAttack, CheaperProtocolFailsMoreOften) {
  const auto c = cfg(1024, 24, 0.5, 11);
  RandParams cheap;
  cheap.segments = 8;
  cheap.tau = 1;
  cheap.eta = 4;
  RandParams expensive;
  expensive.segments = 2;
  expensive.tau = 1;
  expensive.eta = 4;
  const auto cheap_stats =
      run_randomized_majority_attack(c, make_two_cycle_with(cheap), 24);
  const auto expensive_stats =
      run_randomized_majority_attack(c, make_two_cycle_with(expensive), 24);
  // More queries -> more chance the planted bit is covered -> fewer wins.
  EXPECT_LT(cheap_stats.mean_victim_queries,
            expensive_stats.mean_victim_queries);
  EXPECT_GE(cheap_stats.success_rate() + 0.15,
            expensive_stats.success_rate());
}

TEST(RandomizedAttack, PredictedFloorFormula) {
  RandAttackStats stats;
  stats.mean_victim_queries = 256;
  EXPECT_DOUBLE_EQ(stats.predicted_floor(1024), 0.75);
  stats.mean_victim_queries = 2048;
  EXPECT_DOUBLE_EQ(stats.predicted_floor(1024), 0.0);
}

TEST(Bounds, MajorityAttackSuccessLb) {
  EXPECT_DOUBLE_EQ(bounds::majority_attack_success_lb(256, 1024), 0.75);
  EXPECT_DOUBLE_EQ(bounds::majority_attack_success_lb(1024, 1024), 0.0);
  EXPECT_DOUBLE_EQ(bounds::majority_attack_success_lb(2000, 1024), 0.0);
}

}  // namespace
}  // namespace asyncdr::proto
