#include "protocols/crash_one.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"
#include "harness.hpp"
#include "protocols/bounds.hpp"

namespace asyncdr::proto {
namespace {

using testing::cfg;
using testing::expect_ok;

dr::Config one_crash_cfg(std::size_t n, std::size_t k, std::uint64_t seed = 1) {
  // beta chosen so t = 1 exactly.
  return cfg(n, k, 1.0 / static_cast<double>(k), seed);
}

TEST(CrashOne, FaultFreeRunIsOptimal) {
  Scenario s;
  s.cfg = one_crash_cfg(4096, 8);
  s.honest = make_crash_one();
  const auto report = expect_ok(s, "fault-free");
  // Without a crash every peer queries exactly its n/k block.
  EXPECT_EQ(report.query_complexity, 512u);
}

TEST(CrashOne, SilentCrashFromStart) {
  for (sim::PeerId victim : {0u, 3u, 7u}) {
    Scenario s;
    s.cfg = one_crash_cfg(4096, 8, 2 + victim);
    s.honest = make_crash_one();
    s.crashes.add_at_time(victim, 0.0);
    const auto report = expect_ok(s, "silent crash");
    EXPECT_LE(report.query_complexity, bounds::crash_one_q(s.cfg));
  }
}

TEST(CrashOne, QueryBoundHolds) {
  const auto bound = bounds::crash_one_q(one_crash_cfg(4096, 8));
  EXPECT_EQ(bound, 512u + 74u);  // ceil(512/7) = 74
}

TEST(CrashOne, MinimalThreePeers) {
  Scenario s;
  s.cfg = one_crash_cfg(300, 3);
  s.honest = make_crash_one();
  s.crashes.add_at_time(1, 0.3);
  expect_ok(s, "k=3");
}

TEST(CrashOne, RequiresThreePeers) {
  Scenario s;
  s.cfg = one_crash_cfg(16, 2);
  s.honest = make_crash_one();
  EXPECT_THROW(run_scenario(s), contract_violation);
}

TEST(CrashOne, InputSmallerThanPeerCount) {
  Scenario s;
  s.cfg = one_crash_cfg(3, 5);
  s.honest = make_crash_one();
  s.crashes.add_at_time(0, 0.0);
  expect_ok(s, "n < k");
}

// Partial-broadcast sweep: the victim dies after 0..k-1 sends of its
// stage-1 broadcast — the paper's "sent some but not all" adversary.
class CrashOnePartialBroadcast : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CrashOnePartialBroadcast, StillCorrect) {
  Scenario s;
  s.cfg = one_crash_cfg(2048, 8, 10 + GetParam());
  s.honest = make_crash_one();
  s.crashes.add_after_sends(2, GetParam());
  const auto report = expect_ok(s, "partial broadcast");
  EXPECT_LE(report.query_complexity, bounds::crash_one_q(s.cfg));
}

INSTANTIATE_TEST_SUITE_P(SendCounts, CrashOnePartialBroadcast,
                         ::testing::Values(0, 1, 2, 3, 4, 5, 6, 7));

// Crash-time sweep: dying at any point of the execution must be survivable.
class CrashOneTiming : public ::testing::TestWithParam<double> {};

TEST_P(CrashOneTiming, StillCorrect) {
  Scenario s;
  s.cfg = one_crash_cfg(2048, 6, 77);
  s.honest = make_crash_one();
  s.crashes.add_at_time(4, GetParam());
  const auto report = expect_ok(s, "timed crash");
  EXPECT_LE(report.query_complexity, bounds::crash_one_q(s.cfg));
}

INSTANTIATE_TEST_SUITE_P(Times, CrashOneTiming,
                         ::testing::Values(0.0, 0.4, 0.9, 1.1, 1.6, 2.4, 5.0,
                                           12.0));

// Scheduling-adversary sweep.
class CrashOneScheduling : public ::testing::TestWithParam<int> {};

TEST_P(CrashOneScheduling, CorrectUnderAdversarialLatency) {
  Scenario s;
  s.cfg = one_crash_cfg(1024, 8, 5);
  s.honest = make_crash_one();
  s.crashes.add_at_time(6, 0.7);
  switch (GetParam()) {
    case 0: s.latency = fixed_latency(1.0); break;
    case 1: s.latency = uniform_latency(0.01, 1.0); break;
    case 2: s.latency = seniority_latency(); break;
    case 3: s.latency = sender_delay_latency({0, 1}, 1.0, 0.02); break;
  }
  expect_ok(s, "scheduling adversary");
}

INSTANTIATE_TEST_SUITE_P(Policies, CrashOneScheduling,
                         ::testing::Values(0, 1, 2, 3));

// Seed sweep with a random adversary.
class CrashOneRandomized : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CrashOneRandomized, CorrectAcrossSeeds) {
  Scenario s;
  s.cfg = one_crash_cfg(1536, 12, GetParam());
  s.honest = make_crash_one();
  Rng rng(GetParam() * 41 + 3);
  s.crashes = adv::CrashPlan::random(s.cfg, rng, 1, 4.0);
  const auto report = expect_ok(s, "random adversary");
  EXPECT_LE(report.query_complexity, bounds::crash_one_q(s.cfg));
}

INSTANTIATE_TEST_SUITE_P(Seeds, CrashOneRandomized,
                         ::testing::Range<std::uint64_t>(1, 11));

}  // namespace
}  // namespace asyncdr::proto
