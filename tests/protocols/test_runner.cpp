#include "protocols/runner.hpp"

#include <gtest/gtest.h>

#include <set>

#include "common/check.hpp"

namespace asyncdr::proto {
namespace {

TEST(RandomInput, DeterministicAndSeedSensitive) {
  const BitVec a = random_input(256, 7);
  EXPECT_EQ(a, random_input(256, 7));
  EXPECT_NE(a, random_input(256, 8));
  // Roughly balanced bits.
  EXPECT_GT(a.popcount(), 80u);
  EXPECT_LT(a.popcount(), 176u);
}

TEST(PickFaulty, DistinctWithinBudgetAndSalted) {
  const dr::Config cfg{.n = 8, .k = 12, .beta = 0.5, .message_bits = 8,
                       .seed = 3};
  const auto ids = pick_faulty(cfg, 6);
  EXPECT_EQ(ids.size(), 6u);
  EXPECT_EQ(std::set<sim::PeerId>(ids.begin(), ids.end()).size(), 6u);
  for (sim::PeerId id : ids) EXPECT_LT(id, 12u);
  EXPECT_EQ(pick_faulty(cfg, 6), ids);       // deterministic
  EXPECT_NE(pick_faulty(cfg, 6, 1), ids);    // salt changes the draw
  EXPECT_THROW(pick_faulty(cfg, 7), contract_violation);
}

TEST(RunScenario, RequiresHonestFactory) {
  Scenario s;
  s.cfg = dr::Config{.n = 16, .k = 3, .beta = 0.0, .message_bits = 8, .seed = 1};
  EXPECT_THROW(run_scenario(s), contract_violation);
}

TEST(RunScenario, RequiresByzFactoryWhenIdsGiven) {
  Scenario s;
  s.cfg = dr::Config{.n = 16, .k = 4, .beta = 0.25, .message_bits = 8, .seed = 1};
  s.honest = make_naive();
  s.byz_ids = {1};
  EXPECT_THROW(run_scenario(s), contract_violation);
}

TEST(RunScenario, ExplicitInputIsUsed) {
  Scenario s;
  s.cfg = dr::Config{.n = 8, .k = 2, .beta = 0.0, .message_bits = 8, .seed = 1};
  s.input = BitVec::from_string("10100101");
  s.honest = make_naive();
  const auto report = run_scenario(s);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report.outputs[0].to_string(), "10100101");
}

TEST(RunScenario, InputLengthMismatchRejected) {
  Scenario s;
  s.cfg = dr::Config{.n = 8, .k = 2, .beta = 0.0, .message_bits = 8, .seed = 1};
  s.input = BitVec(9);
  s.honest = make_naive();
  EXPECT_THROW(run_scenario(s), contract_violation);
}

TEST(RunScenario, EventBudgetSurfacesRunaway) {
  Scenario s;
  s.cfg = dr::Config{.n = 1 << 12, .k = 16, .beta = 0.5, .message_bits = 64,
                     .seed = 1};
  s.honest = make_crash_multi();
  s.crashes = adv::CrashPlan::silent_prefix(8);
  s.max_events = 10;  // absurdly small budget
  const auto report = run_scenario(s);
  EXPECT_TRUE(report.budget_exhausted);
  EXPECT_FALSE(report.ok());
}

TEST(Factories, ProduceDistinctInstances) {
  const dr::Config cfg{.n = 64, .k = 8, .beta = 0.25, .message_bits = 32,
                       .seed = 2};
  const PeerFactory factory = make_crash_multi();
  const auto a = factory(cfg, 0);
  const auto b = factory(cfg, 1);
  EXPECT_NE(a.get(), b.get());
}

TEST(Factories, AttackFamiliesConstruct) {
  const dr::Config cfg{.n = 64, .k = 16, .beta = 0.25, .message_bits = 32,
                       .seed = 2};
  for (const PeerFactory& factory :
       {make_silent_byz(), make_garbage_byz(),
        make_committee_liar(CommitteeLiarPeer::Mode::kRandom),
        make_vote_stuffer(2.0, 1), make_comb_stuffer(2.0, 1),
        make_equivocator(2.0), make_quorum_rusher(2.0)}) {
    EXPECT_NE(factory(cfg, 3), nullptr);
  }
}

TEST(LatencyFactories, ProducePolicies) {
  const dr::Config cfg{.n = 8, .k = 4, .beta = 0.0, .message_bits = 8,
                       .seed = 1};
  for (const LatencyFactory& factory :
       {uniform_latency(), fixed_latency(0.5), seniority_latency(),
        sender_delay_latency({0}, 1.0)}) {
    EXPECT_NE(factory(cfg), nullptr);
  }
}

}  // namespace
}  // namespace asyncdr::proto
