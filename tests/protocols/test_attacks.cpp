// Direct behavioural tests of the Byzantine attack peers: what they send,
// to whom, and that their payloads exercise the honest validation paths.
#include "protocols/attacks.hpp"
#include "protocols/attacks2.hpp"

#include <gtest/gtest.h>

#include "dr/world.hpp"
#include "protocols/byz2cycle.hpp"
#include "protocols/runner.hpp"
#include "sim/trace.hpp"

namespace asyncdr::proto {
namespace {

using sim::TraceEvent;

/// Runs a world where peer 0 is the attack instance and everyone else is a
/// message sink; returns the trace.
template <typename MakeAttack>
std::pair<dr::RunReport, std::vector<TraceEvent>> observe_attack(
    const dr::Config& cfg, MakeAttack&& make_attack) {
  struct Sink final : dr::Peer {
    void on_start() override { finish(BitVec(n())); }
    void on_message(sim::PeerId, const sim::Payload&) override {}
  };
  dr::World world(cfg, random_input(cfg.n, cfg.seed));
  sim::Trace& trace = world.enable_trace();
  world.set_peer(0, make_attack(cfg));
  world.mark_faulty(0);
  for (sim::PeerId id = 1; id < cfg.k; ++id) {
    world.set_peer(id, std::make_unique<Sink>());
  }
  auto report = world.run();
  auto sends = trace.filter([](const TraceEvent& ev) {
    return ev.kind == TraceEvent::Kind::kSend && ev.from == 0;
  });
  return {std::move(report), std::move(sends)};
}

dr::Config cfg() {
  return dr::Config{.n = 512, .k = 8, .beta = 0.3, .message_bits = 256,
                    .seed = 5};
}

TEST(Attacks, SilentSendsNothing) {
  const auto [report, sends] = observe_attack(cfg(), [](const dr::Config&) {
    return std::make_unique<SilentByzPeer>();
  });
  EXPECT_TRUE(sends.empty());
}

TEST(Attacks, GarbageSendsForeignAndMalformedPayloads) {
  const auto [report, sends] = observe_attack(cfg(), [](const dr::Config&) {
    return std::make_unique<GarbageByzPeer>();
  });
  ASSERT_FALSE(sends.empty());
  std::set<std::string> types;
  for (const auto& ev : sends) types.insert(ev.payload_type);
  EXPECT_TRUE(types.contains("attack::Noise"));
  EXPECT_TRUE(types.contains("committee::Votes"));
  EXPECT_TRUE(types.contains("rnd::Report"));
}

TEST(Attacks, CommitteeLiarBroadcastsVotesToEveryone) {
  const auto [report, sends] = observe_attack(cfg(), [](const dr::Config& c) {
    (void)c;
    return std::make_unique<CommitteeLiarPeer>(CommitteeLiarPeer::Mode::kFlipAll);
  });
  ASSERT_EQ(sends.size(), 7u);  // one Votes payload to each other peer
  for (const auto& ev : sends) EXPECT_EQ(ev.payload_type, "committee::Votes");
}

TEST(Attacks, EquivocatingLiarSendsPerReceiverValues) {
  // The equivocation itself is payload content; here we check fan-out shape.
  const auto [report, sends] = observe_attack(cfg(), [](const dr::Config&) {
    return std::make_unique<CommitteeLiarPeer>(
        CommitteeLiarPeer::Mode::kEquivocate);
  });
  EXPECT_EQ(sends.size(), 7u);
}

TEST(Attacks, VoteStufferCoversEveryCycleOnce) {
  const dr::Config c{.n = 1 << 12, .k = 192, .beta = 0.125,
                     .message_bits = 4096, .seed = 5};
  const RandParams params = RandParams::derive(c, 2.0);
  ASSERT_FALSE(params.naive_fallback);
  std::size_t cycles = 1;
  for (std::size_t s = params.segments; s > 1; s = (s + 1) / 2) ++cycles;

  const auto [report, sends] = observe_attack(c, [&](const dr::Config&) {
    return std::make_unique<VoteStuffPeer>(params, 0);
  });
  // One Report broadcast (k-1 sends) per cycle layout.
  EXPECT_EQ(sends.size(), (c.k - 1) * cycles);
  for (const auto& ev : sends) EXPECT_EQ(ev.payload_type, "rnd::Report");
}

TEST(Attacks, CombStufferFakesAreDistinctPerAttacker) {
  const dr::Config c{.n = 1 << 12, .k = 192, .beta = 0.125,
                     .message_bits = 4096, .seed = 5};
  // Two comb attackers with different IDs flip different positions: run a
  // 2-cycle world and check the candidate multiplicity stayed at 1 per fake
  // (no stacking), i.e. honest peers are NOT forced into extra queries at
  // the default tau.
  Scenario s;
  s.cfg = c;
  s.honest = make_two_cycle(2.0);
  s.byzantine = make_comb_stuffer(2.0, 0);
  s.byz_ids = pick_faulty(c, c.max_faulty());
  const auto report = run_scenario(s);
  EXPECT_TRUE(report.ok()) << report.to_string();
}

TEST(Attacks, QuorumRusherSendsValidLookingReports) {
  const dr::Config c{.n = 1 << 12, .k = 192, .beta = 0.125,
                     .message_bits = 4096, .seed = 5};
  const RandParams params = RandParams::derive(c, 2.0);
  const auto [report, sends] = observe_attack(c, [&](const dr::Config&) {
    return std::make_unique<QuorumRusherPeer>(params);
  });
  ASSERT_FALSE(sends.empty());
  for (const auto& ev : sends) EXPECT_EQ(ev.payload_type, "rnd::Report");
}

TEST(Attacks, FallbackParamsKeepRandomAttacksQuiet) {
  // With naive-fallback parameters the randomized attackers know the
  // protocol queries everything and stay silent.
  RandParams fallback;
  fallback.naive_fallback = true;
  const auto [report, sends] = observe_attack(cfg(), [&](const dr::Config&) {
    return std::make_unique<VoteStuffPeer>(fallback, 0);
  });
  EXPECT_TRUE(sends.empty());
}

}  // namespace
}  // namespace asyncdr::proto
