#include "protocols/committee.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"
#include "harness.hpp"
#include "protocols/bounds.hpp"

namespace asyncdr::proto {
namespace {

using testing::cfg;
using testing::expect_ok;

TEST(CommitteeAssignment, RoundRobinStructure) {
  const CommitteeAssignment a(/*n=*/10, /*k=*/7, /*t=*/2);
  EXPECT_EQ(a.committee_size(), 5u);
  EXPECT_EQ(a.threshold(), 3u);
  for (std::size_t bit = 0; bit < 10; ++bit) {
    const auto members = a.members_of(bit);
    ASSERT_EQ(members.size(), 5u);
    for (std::size_t pos = 0; pos < members.size(); ++pos) {
      EXPECT_TRUE(a.is_member(members[pos], bit));
      EXPECT_EQ(a.position(members[pos], bit), pos);
    }
  }
}

TEST(CommitteeAssignment, BitsOfMatchesMembership) {
  const CommitteeAssignment a(64, 9, 3);
  for (sim::PeerId p = 0; p < 9; ++p) {
    for (std::size_t bit : a.bits_of(p)) EXPECT_TRUE(a.is_member(p, bit));
  }
  // Every committee slot is covered by exactly one peer position.
  std::size_t total = 0;
  for (sim::PeerId p = 0; p < 9; ++p) total += a.bits_of(p).size();
  EXPECT_EQ(total, 64u * 7u);
}

TEST(CommitteeAssignment, LoadIsBalancedWithinOne) {
  const CommitteeAssignment a(1000, 11, 4);
  std::size_t lo = SIZE_MAX, hi = 0;
  for (sim::PeerId p = 0; p < 11; ++p) {
    const std::size_t load = a.bits_of(p).size();
    lo = std::min(lo, load);
    hi = std::max(hi, load);
  }
  EXPECT_LE(hi - lo, 1u);
}

TEST(CommitteeAssignment, RejectsMajorityByzantine) {
  EXPECT_THROW(CommitteeAssignment(10, 8, 4), contract_violation);  // 2t+1 > k
}

TEST(Committee, FaultFreeCorrect) {
  Scenario s;
  s.cfg = cfg(2048, 12, 0.25);
  s.honest = make_committee();
  const auto report = expect_ok(s, "fault-free");
  EXPECT_LE(report.query_complexity, bounds::committee_q(s.cfg));
}

TEST(Committee, ZeroFaultDegeneratesToSharing) {
  Scenario s;
  s.cfg = cfg(1024, 8, 0.0);
  s.honest = make_committee();
  const auto report = expect_ok(s, "t=0");
  EXPECT_EQ(report.query_complexity, 128u);  // committees of size 1
}

TEST(Committee, QueryBoundIsTwoBetaNPlusNOverK) {
  const auto c = cfg(4096, 16, 0.25);
  // c = 2*4+1 = 9 -> Q <= ceil(4096*9/16)+1 = 2305.
  EXPECT_EQ(bounds::committee_q(c), 2305u);
}

// Attack sweep: every Byzantine behaviour in the library, at max t.
class CommitteeAttack : public ::testing::TestWithParam<int> {};

TEST_P(CommitteeAttack, CorrectUnderAttack) {
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    Scenario s;
    s.cfg = cfg(1024, 13, 0.3, seed);  // t = 3, c = 7
    s.honest = make_committee();
    switch (GetParam()) {
      case 0: s.byzantine = make_silent_byz(); break;
      case 1: s.byzantine = make_committee_liar(CommitteeLiarPeer::Mode::kFlipAll); break;
      case 2: s.byzantine = make_committee_liar(CommitteeLiarPeer::Mode::kRandom); break;
      case 3: s.byzantine = make_committee_liar(CommitteeLiarPeer::Mode::kEquivocate); break;
      case 4: s.byzantine = make_garbage_byz(); break;
    }
    s.byz_ids = pick_faulty(s.cfg, s.cfg.max_faulty(), seed);
    const auto report = expect_ok(s, "attack");
    EXPECT_LE(report.query_complexity, bounds::committee_q(s.cfg));
  }
}

INSTANTIATE_TEST_SUITE_P(Attacks, CommitteeAttack, ::testing::Values(0, 1, 2, 3, 4));

TEST(Committee, AdversarialSchedulingWithLiars) {
  Scenario s;
  s.cfg = cfg(512, 9, 0.4, 4);  // t = 3, c = 7
  s.honest = make_committee();
  s.byzantine = make_committee_liar(CommitteeLiarPeer::Mode::kFlipAll);
  s.byz_ids = {1, 4, 8};
  s.latency = seniority_latency();
  expect_ok(s, "liars + seniority scheduling");
}

TEST(Committee, StaggeredStarts) {
  Scenario s;
  s.cfg = cfg(512, 9, 0.2, 5);
  s.honest = make_committee();
  s.byzantine = make_silent_byz();
  s.byz_ids = {2};
  s.start_times[0] = 10.0;
  s.start_times[5] = 4.0;
  expect_ok(s, "staggered starts");
}

TEST(Committee, BetaHalfRejected) {
  Scenario s;
  s.cfg = cfg(64, 8, 0.5);
  s.honest = make_committee();
  EXPECT_THROW(run_scenario(s), contract_violation);
}

// Beta sweep under the strongest liar.
class CommitteeBetaSweep : public ::testing::TestWithParam<double> {};

TEST_P(CommitteeBetaSweep, CorrectForAllMinorityBeta) {
  Scenario s;
  s.cfg = cfg(1024, 16, GetParam(), 21);
  s.honest = make_committee();
  s.byzantine = make_committee_liar(CommitteeLiarPeer::Mode::kFlipAll);
  s.byz_ids = pick_faulty(s.cfg, s.cfg.max_faulty());
  const auto report = expect_ok(s, "beta sweep");
  EXPECT_LE(report.query_complexity, bounds::committee_q(s.cfg));
}

INSTANTIATE_TEST_SUITE_P(Betas, CommitteeBetaSweep,
                         ::testing::Values(0.05, 0.125, 0.25, 0.375, 0.45));

}  // namespace
}  // namespace asyncdr::proto
