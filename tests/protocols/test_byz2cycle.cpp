#include "protocols/byz2cycle.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"
#include "harness.hpp"
#include "protocols/bounds.hpp"

namespace asyncdr::proto {
namespace {

using testing::cfg;
using testing::expect_ok;

// Standard well-provisioned instance: k = 128, beta = 1/8 -> eta = 96.
dr::Config rand_cfg(std::uint64_t seed, double beta = 0.125) {
  return cfg(1 << 12, 128, beta, seed, /*message_bits=*/1024);
}

TEST(RandParams, DeriveCases) {
  // Plenty of honest peers: multiple segments.
  const auto p = RandParams::derive(rand_cfg(1), 2.0);
  EXPECT_FALSE(p.naive_fallback);
  EXPECT_GE(p.segments, 2u);
  EXPECT_GE(p.tau, 1u);
  EXPECT_EQ(p.eta, 96u);
  // tau ~ eta / (2 s).
  EXPECT_EQ(p.tau, p.tau_for(p.segments));

  // Majority Byzantine: case 3 fallback.
  EXPECT_TRUE(RandParams::derive(cfg(1024, 16, 0.5), 2.0).naive_fallback);
  // Tiny k: eta too small for two segments.
  EXPECT_TRUE(RandParams::derive(cfg(1024, 8, 0.25), 2.0).naive_fallback);
}

TEST(RandParams, TauForCoarserLayouts) {
  RandParams p;
  p.eta = 96;
  EXPECT_EQ(p.tau_for(6), 8u);
  EXPECT_EQ(p.tau_for(3), 16u);
  EXPECT_EQ(p.tau_for(1), 48u);
  EXPECT_EQ(p.tau_for(1000), 1u);  // floor at 1
  EXPECT_THROW((void)p.tau_for(0), contract_violation);
}

TEST(TwoCycle, FaultFreeCorrectAndCheap) {
  Scenario s;
  s.cfg = rand_cfg(1);
  s.honest = make_two_cycle(2.0);
  const auto report = expect_ok(s, "fault-free");
  const auto params = RandParams::derive(s.cfg, 2.0);
  EXPECT_LE(report.query_complexity, bounds::two_cycle_q(s.cfg, params));
  EXPECT_LT(report.query_complexity, s.cfg.n / 2);  // beats naive clearly
}

TEST(TwoCycle, NaiveFallbackQueriesEverything) {
  Scenario s;
  s.cfg = cfg(512, 8, 0.25, 3);  // eta too small -> fallback
  s.honest = make_two_cycle(2.0);
  const auto report = expect_ok(s, "fallback");
  EXPECT_EQ(report.query_complexity, 512u);
}

TEST(TwoCycle, VoteStuffingSurvivedViaDecisionTrees) {
  Scenario s;
  s.cfg = rand_cfg(5);
  s.honest = make_two_cycle(2.0);
  s.byzantine = make_vote_stuffer(2.0, /*target_segment=*/0);
  s.byz_ids = pick_faulty(s.cfg, s.cfg.max_faulty());
  const auto report = expect_ok(s, "vote stuffing");
  const auto params = RandParams::derive(s.cfg, 2.0);
  EXPECT_LE(report.query_complexity, bounds::two_cycle_q(s.cfg, params));
}

TEST(TwoCycle, VoteStuffingForcesSeparatorQueries) {
  // Run a world directly so peer internals are visible: the stuffed fake
  // (t >= tau supporters) must enter the candidate set and cost separator
  // queries, yet never win.
  dr::Config c = rand_cfg(7);
  const RandParams params = RandParams::derive(c, 2.0);
  ASSERT_GE(c.max_faulty(), params.tau) << "attack needs t >= tau to stuff";

  dr::World world(c, random_input(c.n, c.seed));
  const auto byz = pick_faulty(c, c.max_faulty());
  std::set<sim::PeerId> byz_set(byz.begin(), byz.end());
  for (sim::PeerId id = 0; id < c.k; ++id) {
    if (byz_set.contains(id)) {
      world.set_peer(id, std::make_unique<VoteStuffPeer>(params, 0));
      world.mark_faulty(id);
    } else {
      world.set_peer(id, std::make_unique<TwoCyclePeer>(params));
    }
  }
  const auto report = world.run();
  ASSERT_TRUE(report.ok()) << report.to_string();

  std::size_t peers_with_tree_queries = 0;
  for (sim::PeerId id = 0; id < c.k; ++id) {
    if (byz_set.contains(id)) continue;
    const auto& peer = dynamic_cast<const TwoCyclePeer&>(world.peer(id));
    if (peer.tree_queries() > 0) ++peers_with_tree_queries;
  }
  // Every honest peer that did not itself pick segment 0 had to resolve the
  // stuffed conflict with at least one separator query.
  EXPECT_GT(peers_with_tree_queries, (c.k - c.max_faulty()) / 2);
}

// Attack sweep across seeds.
class TwoCycleAttack : public ::testing::TestWithParam<int> {};

TEST_P(TwoCycleAttack, CorrectUnderAttack) {
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    Scenario s;
    s.cfg = rand_cfg(seed * 13 + static_cast<std::uint64_t>(GetParam()));
    s.honest = make_two_cycle(2.0);
    switch (GetParam()) {
      case 0: s.byzantine = make_silent_byz(); break;
      case 1: s.byzantine = make_vote_stuffer(2.0, 0); break;
      case 2: s.byzantine = make_vote_stuffer(2.0, 1); break;
      case 3: s.byzantine = make_equivocator(2.0); break;
      case 4: s.byzantine = make_garbage_byz(); break;
      case 5: s.byzantine = make_comb_stuffer(2.0, 0); break;
      case 6: s.byzantine = make_quorum_rusher(2.0); break;
    }
    s.byz_ids = pick_faulty(s.cfg, s.cfg.max_faulty(), seed);
    expect_ok(s, "attack sweep");
  }
}

INSTANTIATE_TEST_SUITE_P(Attacks, TwoCycleAttack,
                         ::testing::Values(0, 1, 2, 3, 4, 5, 6));

TEST(TwoCycle, AdversarialSchedulingDelaysHonest) {
  // Delay a third of the honest peers: quorum still reachable, whp intact.
  Scenario s;
  s.cfg = rand_cfg(11);
  s.honest = make_two_cycle(2.0);
  s.byzantine = make_vote_stuffer(2.0, 0);
  s.byz_ids = pick_faulty(s.cfg, s.cfg.max_faulty());
  std::vector<sim::PeerId> slow;
  for (sim::PeerId id = 0; id < 32; ++id) {
    if (std::find(s.byz_ids.begin(), s.byz_ids.end(), id) == s.byz_ids.end()) {
      slow.push_back(id);
    }
  }
  s.latency = sender_delay_latency(slow, 1.0, 0.05);
  expect_ok(s, "delayed honest third");
}

TEST(TwoCycle, StaggeredStarts) {
  Scenario s;
  s.cfg = rand_cfg(13);
  s.honest = make_two_cycle(2.0);
  s.start_times[0] = 8.0;
  s.start_times[64] = 3.0;
  expect_ok(s, "staggered starts");
}

}  // namespace
}  // namespace asyncdr::proto
