#include "protocols/bounds.hpp"

#include <gtest/gtest.h>

#include "harness.hpp"

namespace asyncdr::proto {
namespace {

using testing::cfg;

TEST(Bounds, Naive) { EXPECT_EQ(bounds::naive_q(cfg(777, 4, 0.0)), 777u); }

TEST(Bounds, CrashOneIsBlockPlusShare) {
  EXPECT_EQ(bounds::crash_one_q(cfg(4096, 8, 0.125)), 512u + 74u);
  EXPECT_EQ(bounds::crash_one_q(cfg(100, 4, 0.25)), 25u + 9u);
}

TEST(Bounds, CrashMultiGeometricSum) {
  // beta = 0: one phase plus the direct-query tail (within the
  // concentration slack of one phase share).
  const auto c0 = cfg(1 << 16, 16, 0.0);
  const std::size_t one_phase = (1u << 16) / 16;
  EXPECT_GE(bounds::crash_multi_q(c0), 2 * one_phase);
  EXPECT_LE(bounds::crash_multi_q(c0), 2 * one_phase + 300);
  // Larger beta costs more but stays well below n for n >> k^2.
  const auto c1 = cfg(1 << 16, 16, 0.5);
  EXPECT_GT(bounds::crash_multi_q(c1), bounds::crash_multi_q(c0));
  EXPECT_LT(bounds::crash_multi_q(c1), (1u << 16) / 2);
}

TEST(Bounds, CrashMultiMonotoneInBeta) {
  std::size_t prev = 0;
  for (double beta : {0.0, 0.25, 0.5, 0.75, 0.9}) {
    const auto q = bounds::crash_multi_q(cfg(1 << 15, 32, beta));
    EXPECT_GE(q, prev);
    prev = q;
  }
}

TEST(Bounds, CommitteeScalesWithBeta) {
  EXPECT_EQ(bounds::committee_q(cfg(4096, 16, 0.25)), 2305u);
  EXPECT_LT(bounds::committee_q(cfg(4096, 16, 0.1)),
            bounds::committee_q(cfg(4096, 16, 0.4)));
}

TEST(Bounds, CommitteeMessageAndTimeMatchMeasurement) {
  // The committee M/T formulas must majorize a real run.
  Scenario s;
  s.cfg = cfg(4096, 16, 0.25, 3, /*message_bits=*/512);
  s.honest = make_committee();
  s.byzantine = make_silent_byz();
  s.byz_ids = pick_faulty(s.cfg, s.cfg.max_faulty());
  const auto report = run_scenario(s);
  ASSERT_TRUE(report.ok());
  EXPECT_LE(report.message_complexity, bounds::committee_m(s.cfg));
  EXPECT_LE(report.time_complexity, bounds::committee_t(s.cfg));
  // And they shrink with B.
  auto big_b = s.cfg;
  big_b.message_bits = 1 << 14;
  EXPECT_LT(bounds::committee_m(big_b), bounds::committee_m(s.cfg));
  EXPECT_LT(bounds::committee_t(big_b), bounds::committee_t(s.cfg));
}

TEST(Bounds, TwoCycleFallbackIsN) {
  RandParams p;
  p.naive_fallback = true;
  EXPECT_EQ(bounds::two_cycle_q(cfg(999, 8, 0.5), p), 999u);
  EXPECT_EQ(bounds::multi_cycle_q(cfg(999, 8, 0.5), p), 999u);
}

TEST(Bounds, TwoCycleSegmentPlusTreeAllowance) {
  RandParams p;
  p.segments = 8;
  p.eta = 64;
  const auto c = cfg(4096, 128, 0.125);
  EXPECT_EQ(bounds::two_cycle_q(c, p), 512u + 256u + 1u);
}

TEST(Bounds, MultiCycleGrowsWithCycles) {
  RandParams p2;
  p2.segments = 2;
  RandParams p16;
  p16.segments = 16;
  const auto c = cfg(65536, 128, 0.125);
  // More segments: cheaper cycle-1 but more cycles of tree allowance.
  EXPECT_LT(bounds::multi_cycle_q(c, p16) - 65536 / 16,
            bounds::multi_cycle_q(c, p2));
}

}  // namespace
}  // namespace asyncdr::proto
