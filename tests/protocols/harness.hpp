// Shared helpers for protocol tests.
#pragma once

#include <gtest/gtest.h>

#include "protocols/bounds.hpp"
#include "protocols/runner.hpp"

namespace asyncdr::proto::testing {

inline dr::Config cfg(std::size_t n, std::size_t k, double beta,
                      std::uint64_t seed = 1, std::size_t message_bits = 256) {
  return dr::Config{
      .n = n, .k = k, .beta = beta, .message_bits = message_bits, .seed = seed};
}

/// Runs and asserts the Download correctness predicate, returning the
/// report for further complexity assertions.
inline dr::RunReport expect_ok(const Scenario& scenario,
                               const char* label = "") {
  const dr::RunReport report = run_scenario(scenario);
  EXPECT_TRUE(report.ok()) << label << ": " << report.to_string();
  return report;
}

}  // namespace asyncdr::proto::testing
