#include "protocols/segments.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"

namespace asyncdr::proto {
namespace {

TEST(SegmentLayout, EqualSplitBalancesWithinOne) {
  const SegmentLayout layout(10, 3);
  EXPECT_EQ(layout.count(), 3u);
  EXPECT_EQ(layout.length(0), 4u);
  EXPECT_EQ(layout.length(1), 3u);
  EXPECT_EQ(layout.length(2), 3u);
  EXPECT_EQ(layout.bounds(0), (Interval{0, 4}));
  EXPECT_EQ(layout.bounds(2), (Interval{7, 10}));
}

TEST(SegmentLayout, SegmentsCoverInputExactly) {
  const SegmentLayout layout(1000, 7);
  std::size_t total = 0;
  for (std::size_t i = 0; i < layout.count(); ++i) {
    total += layout.length(i);
    if (i > 0) {
      EXPECT_EQ(layout.bounds(i).lo, layout.bounds(i - 1).hi);
    }
  }
  EXPECT_EQ(total, 1000u);
}

TEST(SegmentLayout, SegmentOfInvertsBounds) {
  const SegmentLayout layout(100, 9);
  for (std::size_t i = 0; i < 100; ++i) {
    const std::size_t seg = layout.segment_of(i);
    EXPECT_GE(i, layout.bounds(seg).lo);
    EXPECT_LT(i, layout.bounds(seg).hi);
  }
  EXPECT_THROW((void)layout.segment_of(100), contract_violation);
}

TEST(SegmentLayout, SingleSegment) {
  const SegmentLayout layout(42, 1);
  EXPECT_EQ(layout.count(), 1u);
  EXPECT_EQ(layout.bounds(0), (Interval{0, 42}));
}

TEST(SegmentLayout, MoreSegmentsThanBitsLeavesEmptyTail) {
  const SegmentLayout layout(3, 5);
  EXPECT_EQ(layout.count(), 5u);
  EXPECT_EQ(layout.length(0), 1u);
  EXPECT_EQ(layout.length(2), 1u);
  EXPECT_EQ(layout.length(3), 0u);
  EXPECT_EQ(layout.length(4), 0u);
}

TEST(SegmentLayout, CoarsenPairsAdjacent) {
  const SegmentLayout fine(16, 4);
  const SegmentLayout coarse = fine.coarsen();
  EXPECT_EQ(coarse.count(), 2u);
  EXPECT_EQ(coarse.bounds(0), (Interval{0, 8}));
  EXPECT_EQ(coarse.bounds(1), (Interval{8, 16}));
}

TEST(SegmentLayout, CoarsenOddCount) {
  const SegmentLayout fine(15, 5);
  const SegmentLayout coarse = fine.coarsen();
  EXPECT_EQ(coarse.count(), 3u);
  // Last coarse segment is the single leftover fine segment.
  EXPECT_EQ(coarse.bounds(2), fine.bounds(4));
}

TEST(SegmentLayout, ChildrenComposeCoarseSegment) {
  const SegmentLayout fine(100, 7);
  const SegmentLayout coarse = fine.coarsen();
  for (std::size_t j = 0; j < coarse.count(); ++j) {
    const auto kids = fine.children_of(j);
    ASSERT_FALSE(kids.empty());
    EXPECT_EQ(fine.bounds(kids.front()).lo, coarse.bounds(j).lo);
    EXPECT_EQ(fine.bounds(kids.back()).hi, coarse.bounds(j).hi);
    std::size_t len = 0;
    for (std::size_t kid : kids) len += fine.length(kid);
    EXPECT_EQ(len, coarse.length(j));
  }
}

TEST(SegmentLayout, RepeatedCoarsenReachesOneSegment) {
  SegmentLayout layout(1 << 10, 37);
  std::size_t steps = 0;
  while (layout.count() > 1) {
    const std::size_t before = layout.count();
    layout = layout.coarsen();
    EXPECT_EQ(layout.count(), (before + 1) / 2);
    ASSERT_LT(++steps, 30u);
  }
  EXPECT_EQ(layout.bounds(0), (Interval{0, 1 << 10}));
  EXPECT_THROW(layout.coarsen(), contract_violation);
}

TEST(SegmentLayout, RejectsBadArguments) {
  EXPECT_THROW(SegmentLayout(0, 1), contract_violation);
  EXPECT_THROW(SegmentLayout(10, 0), contract_violation);
}

// Parameterized sweep: layout invariants over many (n, s) shapes.
class SegmentLayoutSweep
    : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>> {};

TEST_P(SegmentLayoutSweep, PartitionInvariants) {
  const auto [n, s] = GetParam();
  const SegmentLayout layout(n, s);
  EXPECT_EQ(layout.count(), s);
  std::size_t total = 0;
  std::size_t min_len = SIZE_MAX, max_len = 0;
  for (std::size_t i = 0; i < s; ++i) {
    total += layout.length(i);
    min_len = std::min(min_len, layout.length(i));
    max_len = std::max(max_len, layout.length(i));
  }
  EXPECT_EQ(total, n);
  EXPECT_LE(max_len - min_len, 1u);
}

using Shape = std::pair<std::size_t, std::size_t>;
INSTANTIATE_TEST_SUITE_P(Shapes, SegmentLayoutSweep,
                         ::testing::Values(Shape{1, 1}, Shape{7, 7}, Shape{8, 3},
                                           Shape{1024, 31}, Shape{1000, 999},
                                           Shape{4096, 64}, Shape{65536, 17}));

}  // namespace
}  // namespace asyncdr::proto
