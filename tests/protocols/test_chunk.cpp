#include "protocols/chunk.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"
#include "common/rng.hpp"

namespace asyncdr::proto {
namespace {

TEST(BitChunk, ExtractApplyRoundTrip) {
  const BitVec src = BitVec::from_string("1011001110");
  IntervalSet idx;
  idx.insert(1, 4);
  idx.insert(7, 9);
  const BitChunk chunk = BitChunk::extract(src, idx);
  EXPECT_EQ(chunk.count(), 5u);
  EXPECT_EQ(chunk.values.to_string(), "01111");

  BitVec out(10);
  IntervalSet known;
  chunk.apply_to(out, known);
  EXPECT_EQ(out.to_string(), "0011000110");
  EXPECT_EQ(known, idx);
}

TEST(BitChunk, CoversSubsets) {
  IntervalSet idx = IntervalSet::of(0, 10);
  const BitChunk chunk = BitChunk::extract(BitVec(20), idx);
  EXPECT_TRUE(chunk.covers(IntervalSet::of(2, 8)));
  EXPECT_TRUE(chunk.covers(IntervalSet{}));
  EXPECT_FALSE(chunk.covers(IntervalSet::of(5, 11)));
}

TEST(BitChunk, EmptyChunk) {
  const BitChunk chunk;
  EXPECT_TRUE(chunk.empty());
  BitVec out(5);
  IntervalSet known;
  chunk.apply_to(out, known);
  EXPECT_TRUE(known.empty());
}

TEST(BitChunk, MismatchedSizesThrow) {
  EXPECT_THROW(BitChunk(IntervalSet::of(0, 3), BitVec(2)), contract_violation);
}

TEST(BitChunk, SizeBitsCountsValuesAndBounds) {
  IntervalSet idx;
  idx.insert(0, 4);
  idx.insert(8, 12);
  const BitChunk chunk = BitChunk::extract(BitVec(20), idx);
  EXPECT_EQ(chunk.size_bits(), 8u + 2 * 128u);
}

TEST(MaskChunk, ExtractApplyRoundTrip) {
  const BitVec src = BitVec::from_string("1011001110");
  BitVec mask(10);
  mask.set(0, true);
  mask.set(2, true);
  mask.set(9, true);
  const MaskChunk chunk = MaskChunk::extract(src, mask);
  EXPECT_EQ(chunk.count(), 3u);
  EXPECT_EQ(chunk.values.to_string(), "110");

  BitVec out(10);
  BitVec known(10);
  chunk.apply_to(out, known);
  EXPECT_EQ(out.to_string(), "1010000000");
  EXPECT_EQ(known, mask);
}

TEST(MaskChunk, MismatchedThrow) {
  EXPECT_THROW(MaskChunk(BitVec(5, true), BitVec(4)), contract_violation);
  const MaskChunk c = MaskChunk::extract(BitVec(5), BitVec(5));
  BitVec out(6), known(6);
  EXPECT_THROW(c.apply_to(out, known), contract_violation);
}

TEST(MaskChunk, WireSizeChargesValuesOnly) {
  const MaskChunk c = MaskChunk::extract(BitVec(1000), BitVec(1000, true));
  EXPECT_EQ(c.size_bits(), 1000u + 64u);
}

TEST(MaskChunk, RandomRoundTripProperty) {
  Rng rng(77);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = 1 + rng.below(300);
    const BitVec src = BitVec::generate(n, [&] { return rng.flip(); });
    const BitVec mask = BitVec::generate(n, [&] { return rng.flip(0.3); });
    const MaskChunk chunk = MaskChunk::extract(src, mask);
    BitVec out(n), known(n);
    chunk.apply_to(out, known);
    EXPECT_EQ(known, mask);
    mask.for_each_set(
        [&](std::size_t i) { EXPECT_EQ(out.get(i), src.get(i)); });
  }
}

}  // namespace
}  // namespace asyncdr::proto
