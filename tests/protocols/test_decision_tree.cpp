#include "protocols/decision_tree.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/check.hpp"
#include "common/rng.hpp"

namespace asyncdr::proto {
namespace {

/// Oracle that answers from a fixed truth string and counts queries.
struct CountingOracle {
  explicit CountingOracle(BitVec t) : truth(std::move(t)) {}
  bool operator()(std::size_t i) {
    ++queries;
    return truth.get(i);
  }
  BitVec truth;
  std::size_t queries = 0;
};

TEST(DecisionTree, SingleCandidateNeedsNoQueries) {
  const DecisionTree tree({BitVec::from_string("1010")});
  EXPECT_EQ(tree.leaf_count(), 1u);
  EXPECT_EQ(tree.internal_nodes(), 0u);
  CountingOracle oracle(BitVec::from_string("1010"));
  EXPECT_EQ(tree.determine(std::ref(oracle)).to_string(), "1010");
  EXPECT_EQ(oracle.queries, 0u);
}

TEST(DecisionTree, TwoCandidatesOneQuery) {
  const DecisionTree tree(
      {BitVec::from_string("0000"), BitVec::from_string("0010")});
  EXPECT_EQ(tree.internal_nodes(), 1u);
  CountingOracle oracle(BitVec::from_string("0010"));
  EXPECT_EQ(tree.determine(std::ref(oracle)).to_string(), "0010");
  EXPECT_EQ(oracle.queries, 1u);
}

TEST(DecisionTree, PicksTrueCandidateAmongMany) {
  std::vector<BitVec> cands{
      BitVec::from_string("00000000"), BitVec::from_string("11111111"),
      BitVec::from_string("10101010"), BitVec::from_string("00001111"),
      BitVec::from_string("11110000")};
  const DecisionTree tree(cands);
  EXPECT_EQ(tree.internal_nodes(), 4u);  // leaves - 1
  for (const BitVec& truth : cands) {
    CountingOracle oracle(truth);
    EXPECT_EQ(tree.determine(std::ref(oracle)), truth);
    EXPECT_LE(oracle.queries, tree.depth());
  }
}

TEST(DecisionTree, IndexOffsetShiftsQueries) {
  const DecisionTree tree(
      {BitVec::from_string("01"), BitVec::from_string("11")});
  std::vector<std::size_t> asked;
  const BitVec& winner = tree.determine(
      [&](std::size_t i) {
        asked.push_back(i);
        return true;
      },
      100);
  EXPECT_EQ(winner.to_string(), "11");
  ASSERT_EQ(asked.size(), 1u);
  EXPECT_EQ(asked[0], 100u);  // local separator 0 shifted by offset
}

TEST(DecisionTree, RejectsBadInput) {
  EXPECT_THROW(DecisionTree({}), contract_violation);
  EXPECT_THROW(DecisionTree({BitVec(3), BitVec(4)}), contract_violation);
  // Duplicates make the "pairwise distinct" invariant fail during build.
  EXPECT_THROW(DecisionTree({BitVec(3), BitVec(3)}), contract_violation);
}

// Property sweep: random candidate sets; the tree always resolves to the
// planted truth, with at most leaves-1 internal nodes and depth-many
// queries.
class DecisionTreeProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DecisionTreeProperty, ResolvesPlantedTruth) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t len = 4 + rng.below(60);
    const std::size_t count = 2 + rng.below(12);
    std::set<std::string> uniq;
    std::vector<BitVec> cands;
    while (cands.size() < count) {
      const BitVec c = BitVec::generate(len, [&] { return rng.flip(); });
      if (uniq.insert(c.to_string()).second) cands.push_back(c);
    }
    const DecisionTree tree(cands);
    EXPECT_EQ(tree.internal_nodes(), cands.size() - 1);
    EXPECT_LE(tree.depth(), tree.internal_nodes());

    // Any candidate can be the truth; determine must find it exactly.
    const BitVec& truth = cands[rng.below(cands.size())];
    CountingOracle oracle(truth);
    EXPECT_EQ(tree.determine(std::ref(oracle)), truth);
    EXPECT_LE(oracle.queries, tree.depth());
  }
}

TEST_P(DecisionTreeProperty, WithoutTruthReturnsConsistentCandidate) {
  // If the truth is NOT among the candidates (the below-tau w.h.p. failure
  // case), the returned candidate still agrees with the truth on every
  // queried separator — the documented weak guarantee.
  Rng rng(GetParam() * 31 + 5);
  const std::size_t len = 16;
  std::set<std::string> uniq;
  std::vector<BitVec> cands;
  while (cands.size() < 6) {
    const BitVec c = BitVec::generate(len, [&] { return rng.flip(); });
    if (uniq.insert(c.to_string()).second) cands.push_back(c);
  }
  BitVec truth;
  do {
    truth = BitVec::generate(len, [&] { return rng.flip(); });
  } while (uniq.contains(truth.to_string()));

  const DecisionTree tree(cands);
  std::vector<std::size_t> asked;
  const BitVec& winner = tree.determine([&](std::size_t i) {
    asked.push_back(i);
    return truth.get(i);
  });
  for (std::size_t i : asked) EXPECT_EQ(winner.get(i), truth.get(i));
}

INSTANTIATE_TEST_SUITE_P(Seeds, DecisionTreeProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

}  // namespace
}  // namespace asyncdr::proto
