#include "protocols/byzmulti.hpp"

#include <gtest/gtest.h>

#include "harness.hpp"
#include "protocols/bounds.hpp"

namespace asyncdr::proto {
namespace {

using testing::cfg;
using testing::expect_ok;

dr::Config rand_cfg(std::uint64_t seed, double beta = 0.125) {
  return cfg(1 << 12, 128, beta, seed, /*message_bits=*/4096);
}

TEST(MultiCycle, FaultFreeCorrect) {
  Scenario s;
  s.cfg = rand_cfg(1);
  s.honest = make_multi_cycle(2.0);
  const auto report = expect_ok(s, "fault-free");
  const auto params = RandParams::derive(s.cfg, 2.0);
  EXPECT_LE(report.query_complexity, bounds::multi_cycle_q(s.cfg, params));
  EXPECT_LT(report.query_complexity, s.cfg.n / 2);
}

TEST(MultiCycle, RunsLogManyCycles) {
  dr::Config c = rand_cfg(2);
  const RandParams params = RandParams::derive(c, 2.0);
  ASSERT_FALSE(params.naive_fallback);
  dr::World world(c, random_input(c.n, c.seed));
  for (sim::PeerId id = 0; id < c.k; ++id) {
    world.set_peer(id, std::make_unique<MultiCyclePeer>(params));
  }
  const auto report = world.run();
  ASSERT_TRUE(report.ok()) << report.to_string();

  // Expected cycle count: 1 + ceil(log2 s).
  std::size_t expected = 1;
  for (std::size_t s_count = params.segments; s_count > 1;
       s_count = (s_count + 1) / 2) {
    ++expected;
  }
  for (sim::PeerId id = 0; id < c.k; ++id) {
    const auto& peer = dynamic_cast<const MultiCyclePeer&>(world.peer(id));
    EXPECT_EQ(peer.cycles_run(), expected);
  }
}

TEST(MultiCycle, NaiveFallback) {
  Scenario s;
  s.cfg = cfg(256, 8, 0.3, 3);
  s.honest = make_multi_cycle(2.0);
  const auto report = expect_ok(s, "fallback");
  EXPECT_EQ(report.query_complexity, 256u);
}

// Attack sweep.
class MultiCycleAttack : public ::testing::TestWithParam<int> {};

TEST_P(MultiCycleAttack, CorrectUnderAttack) {
  for (std::uint64_t seed = 1; seed <= 2; ++seed) {
    Scenario s;
    s.cfg = rand_cfg(seed * 17 + static_cast<std::uint64_t>(GetParam()));
    s.honest = make_multi_cycle(2.0);
    switch (GetParam()) {
      case 0: s.byzantine = make_silent_byz(); break;
      case 1: s.byzantine = make_vote_stuffer(2.0, 0); break;
      case 2: s.byzantine = make_equivocator(2.0); break;
      case 3: s.byzantine = make_garbage_byz(); break;
      case 4: s.byzantine = make_comb_stuffer(2.0, 0); break;
      case 5: s.byzantine = make_quorum_rusher(2.0); break;
    }
    s.byz_ids = pick_faulty(s.cfg, s.cfg.max_faulty(), seed);
    expect_ok(s, "attack sweep");
  }
}

INSTANTIATE_TEST_SUITE_P(Attacks, MultiCycleAttack,
                         ::testing::Values(0, 1, 2, 3, 4, 5));

TEST(MultiCycle, VoteStufferEveryCycleStillCorrect) {
  // The stuffer fabricates for a target segment of EVERY cycle's layout;
  // honest peers must resolve conflicts at every level.
  Scenario s;
  s.cfg = rand_cfg(23);
  s.honest = make_multi_cycle(2.0);
  s.byzantine = make_vote_stuffer(2.0, 1);
  s.byz_ids = pick_faulty(s.cfg, s.cfg.max_faulty(), 9);
  expect_ok(s, "per-cycle stuffing");
}

TEST(MultiCycle, StragglerStart) {
  Scenario s;
  s.cfg = rand_cfg(29);
  s.honest = make_multi_cycle(2.0);
  s.start_times[0] = 12.0;
  expect_ok(s, "straggler");
}

TEST(MultiCycle, DeterministicGivenSeed) {
  auto run_once = [] {
    Scenario s;
    s.cfg = rand_cfg(31);
    s.honest = make_multi_cycle(2.0);
    s.byzantine = make_equivocator(2.0);
    s.byz_ids = pick_faulty(s.cfg, s.cfg.max_faulty());
    return run_scenario(s);
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(a.query_complexity, b.query_complexity);
  EXPECT_EQ(a.events, b.events);
}

}  // namespace
}  // namespace asyncdr::proto
