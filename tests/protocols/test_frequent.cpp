#include "protocols/frequent.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"

namespace asyncdr::proto {
namespace {

TEST(StringBank, CountsDistinctSupporters) {
  StringBank bank(2);
  const BitVec a = BitVec::from_string("101");
  const BitVec b = BitVec::from_string("111");
  EXPECT_TRUE(bank.record(0, 1, a));
  EXPECT_TRUE(bank.record(0, 2, a));
  EXPECT_TRUE(bank.record(0, 3, b));
  EXPECT_EQ(bank.votes(0), 3u);
  EXPECT_EQ(bank.distinct(0), 2u);
  EXPECT_EQ(bank.support(0, a), 2u);
  EXPECT_EQ(bank.support(0, b), 1u);
  EXPECT_EQ(bank.support(0, BitVec::from_string("000")), 0u);
  EXPECT_EQ(bank.votes(1), 0u);
}

TEST(StringBank, OneVotePerPeerPerSegment) {
  StringBank bank(1);
  const BitVec a = BitVec::from_string("0");
  const BitVec b = BitVec::from_string("1");
  EXPECT_TRUE(bank.record(0, 7, a));
  // Re-votes (even with a different value) are ignored — vote stacking by a
  // single Byzantine peer is impossible.
  EXPECT_FALSE(bank.record(0, 7, b));
  EXPECT_FALSE(bank.record(0, 7, a));
  EXPECT_EQ(bank.votes(0), 1u);
  EXPECT_EQ(bank.support(0, a), 1u);
  EXPECT_EQ(bank.support(0, b), 0u);
}

TEST(StringBank, FrequentThreshold) {
  StringBank bank(1);
  const BitVec a = BitVec::from_string("00");
  const BitVec b = BitVec::from_string("01");
  for (sim::PeerId p = 0; p < 5; ++p) bank.record(0, p, a);
  for (sim::PeerId p = 5; p < 7; ++p) bank.record(0, p, b);

  EXPECT_EQ(bank.frequent(0, 6).size(), 0u);
  const auto at5 = bank.frequent(0, 5);
  ASSERT_EQ(at5.size(), 1u);
  EXPECT_EQ(at5[0], a);
  EXPECT_EQ(bank.frequent(0, 2).size(), 2u);
  EXPECT_EQ(bank.frequent(0, 1).size(), 2u);
}

TEST(StringBank, FrequentOrderIsDeterministic) {
  StringBank bank(1);
  bank.record(0, 0, BitVec::from_string("10"));
  bank.record(0, 1, BitVec::from_string("01"));
  const auto f = bank.frequent(0, 1);
  ASSERT_EQ(f.size(), 2u);
  EXPECT_EQ(f[0].to_string(), "01");
  EXPECT_EQ(f[1].to_string(), "10");
}

TEST(StringBank, SegmentsIndependent) {
  StringBank bank(3);
  bank.record(0, 1, BitVec::from_string("1"));
  bank.record(2, 1, BitVec::from_string("0"));
  EXPECT_EQ(bank.votes(0), 1u);
  EXPECT_EQ(bank.votes(1), 0u);
  EXPECT_EQ(bank.votes(2), 1u);
}

TEST(StringBank, BoundsChecked) {
  StringBank bank(2);
  EXPECT_THROW(bank.record(2, 0, BitVec(1)), contract_violation);
  EXPECT_THROW((void)bank.votes(5), contract_violation);
  EXPECT_THROW(bank.frequent(0, 0), contract_violation);
  EXPECT_THROW(StringBank(0), contract_violation);
}

}  // namespace
}  // namespace asyncdr::proto
