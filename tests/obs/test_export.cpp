// The structured exporters: JSONL event streams (every line a valid JSON
// object, overflow surfaced in a meta line) and the Chrome trace-event
// (Perfetto) document, validated against the schema the viewers require —
// name/ph/pid on every event, ts/tid on slices and instants, dur on
// complete slices.
#include "obs/export.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "obs/json.hpp"
#include "protocols/runner.hpp"

namespace asyncdr::obs {
namespace {

std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::size_t start = 0;
  while (start < text.size()) {
    const std::size_t nl = text.find('\n', start);
    ASYNCDR_EXPECTS(nl != std::string::npos);  // newline-terminated stream
    lines.push_back(text.substr(start, nl - start));
    start = nl + 1;
  }
  return lines;
}

/// Runs a committee scenario with tracing enabled and hands the trace plus
/// report to `consume` before the world is destroyed.
template <typename Fn>
void with_traced_committee_run(std::uint64_t seed, Fn&& consume) {
  proto::Scenario s;
  s.cfg = dr::Config{.n = 256, .k = 8, .beta = 0.25, .message_bits = 1024,
                     .seed = seed};
  s.honest = proto::make_committee();
  s.crashes = adv::CrashPlan::silent_prefix(s.cfg.max_faulty());
  sim::Trace* trace = nullptr;
  s.instrument = [&](dr::World& world) { trace = &world.enable_trace(); };
  s.post_run = [&](dr::World&, const dr::RunReport& report) {
    ASSERT_NE(trace, nullptr);
    consume(*trace, report);
  };
  const dr::RunReport report = proto::run_scenario(s);
  ASSERT_TRUE(report.ok()) << report.to_string();
}

TEST(Jsonl, EveryLineIsAValidObjectWithKindAndTime) {
  with_traced_committee_run(21, [](const sim::Trace& trace,
                                   const dr::RunReport&) {
    const std::string out = to_jsonl(trace);
    const auto lines = split_lines(out);
    ASSERT_EQ(lines.size(), trace.events().size());  // no overflow here
    for (const std::string& line : lines) {
      const auto doc = Json::parse(line);
      ASSERT_TRUE(doc.has_value()) << line;
      const Json* kind = doc->find("kind");
      ASSERT_NE(kind, nullptr) << line;
      EXPECT_FALSE(kind->as_string().empty());
      ASSERT_NE(doc->find("t"), nullptr) << line;
    }
  });
}

TEST(Jsonl, OverflowAppendsAMetaLineWithTheCutoff) {
  proto::Scenario s;
  s.cfg = dr::Config{.n = 256, .k = 8, .beta = 0.25, .message_bits = 1024,
                     .seed = 22};
  s.honest = proto::make_committee();
  std::string out;
  sim::Trace* trace = nullptr;
  // The Trace dies with the World inside run_scenario, so everything the
  // assertions need is copied out in post_run.
  std::size_t kept_events = 0;
  std::size_t dropped_events = 0;
  double first_dropped_at = 0.0;
  s.instrument = [&](dr::World& world) {
    trace = &world.enable_trace(/*capacity=*/8);
  };
  s.post_run = [&](dr::World&, const dr::RunReport&) {
    out = to_jsonl(*trace);
    kept_events = trace->events().size();
    dropped_events = trace->dropped_events();
    first_dropped_at = trace->first_dropped_at();
  };
  ASSERT_TRUE(proto::run_scenario(s).ok());
  ASSERT_GT(dropped_events, 0u);

  const auto lines = split_lines(out);
  ASSERT_EQ(lines.size(), kept_events + 1);
  const auto meta = Json::parse(lines.back());
  ASSERT_TRUE(meta.has_value()) << lines.back();
  EXPECT_EQ(meta->find("kind")->as_string(), "meta");
  EXPECT_EQ(meta->find("dropped_events")->as_int(),
            static_cast<std::int64_t>(dropped_events));
  EXPECT_DOUBLE_EQ(meta->find("first_dropped_at")->as_number(),
                   first_dropped_at);
}

// The acceptance gate for the Perfetto exporter: dump the document, parse
// it back, and check the trace-event schema field by field.
TEST(Perfetto, DocumentSatisfiesTheTraceEventSchema) {
  with_traced_committee_run(23, [](const sim::Trace& trace,
                                   const dr::RunReport& report) {
    const Json doc =
        to_perfetto(trace, report.phase_spans, /*k=*/8, PerfettoOptions{});
    const auto parsed = Json::parse(doc.dump(1));
    ASSERT_TRUE(parsed.has_value());

    EXPECT_EQ(parsed->find("displayTimeUnit")->as_string(), "ms");
    const Json* events = parsed->find("traceEvents");
    ASSERT_NE(events, nullptr);
    ASSERT_GT(events->size(), 0u);

    std::size_t slices = 0, instants = 0, metadata = 0;
    bool saw_phase_slice = false, saw_query = false, saw_terminate = false;
    for (std::size_t i = 0; i < events->size(); ++i) {
      const Json& ev = events->at(i);
      ASSERT_NE(ev.find("name"), nullptr) << ev.dump();
      ASSERT_NE(ev.find("ph"), nullptr) << ev.dump();
      ASSERT_NE(ev.find("pid"), nullptr) << ev.dump();
      const std::string ph = ev.find("ph")->as_string();
      if (ph == "M") {
        ++metadata;
        continue;
      }
      // Timeline events need a timestamp and a track.
      ASSERT_NE(ev.find("ts"), nullptr) << ev.dump();
      ASSERT_NE(ev.find("tid"), nullptr) << ev.dump();
      EXPECT_GE(ev.find("ts")->as_number(), 0.0);
      if (ph == "X") {
        ++slices;
        ASSERT_NE(ev.find("dur"), nullptr) << ev.dump();
        EXPECT_GE(ev.find("dur")->as_number(), 0.0);
        if (ev.find("name")->as_string() == "committee-query+vote") {
          saw_phase_slice = true;
        }
      } else if (ph == "i") {
        ++instants;
        ASSERT_NE(ev.find("s"), nullptr) << ev.dump();
        const std::string name = ev.find("name")->as_string();
        if (name.rfind("query", 0) == 0) saw_query = true;
        if (name == "terminate") saw_terminate = true;
      } else {
        FAIL() << "unexpected ph: " << ev.dump();
      }
    }
    // One process_name plus one thread_name per peer track.
    EXPECT_EQ(metadata, 1u + 8u);
    EXPECT_GT(slices, 0u);
    EXPECT_GT(instants, 0u);
    EXPECT_TRUE(saw_phase_slice);
    EXPECT_TRUE(saw_query);
    EXPECT_TRUE(saw_terminate);
  });
}

TEST(Perfetto, CrashesBecomeInstantsAndTimesScaleByTheOption) {
  proto::Scenario s;
  s.cfg = dr::Config{.n = 256, .k = 8, .beta = 0.25, .message_bits = 1024,
                     .seed = 25};
  s.honest = proto::make_committee();
  s.crashes.add_at_time(0, 0.5);
  sim::Trace* trace = nullptr;
  Json doc;
  s.instrument = [&](dr::World& world) { trace = &world.enable_trace(); };
  s.post_run = [&](dr::World&, const dr::RunReport& report) {
    PerfettoOptions opts;
    opts.us_per_time_unit = 10.0;
    doc = to_perfetto(*trace, report.phase_spans, 8, opts);
  };
  ASSERT_TRUE(proto::run_scenario(s).ok());

  const Json* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  bool saw_crash = false;
  for (std::size_t i = 0; i < events->size(); ++i) {
    const Json& ev = events->at(i);
    if (ev.find("name")->as_string() == "crash") {
      saw_crash = true;
      // t=0.5 at 10 us per unit.
      EXPECT_DOUBLE_EQ(ev.find("ts")->as_number(), 5.0);
      EXPECT_EQ(ev.find("tid")->as_int(), 0);
    }
  }
  EXPECT_TRUE(saw_crash);
}

TEST(Perfetto, CriticalPathFlowsArePairedAndSliceBound) {
  with_traced_committee_run(29, [](const sim::Trace& trace,
                                   const dr::RunReport& report) {
    ASSERT_TRUE(report.critical_path.has_value());
    PerfettoOptions opts;
    opts.critical_path = &*report.critical_path;
    const Json doc = to_perfetto(trace, report.phase_spans, 8, opts);
    const Json* events = doc.find("traceEvents");
    ASSERT_NE(events, nullptr);

    struct Slice {
      std::int64_t pid, tid;
      double ts, dur;
    };
    struct Flow {
      std::int64_t pid, tid, id;
      double ts;
    };
    std::vector<Slice> slices;
    std::vector<Flow> starts, finishes;
    for (std::size_t i = 0; i < events->size(); ++i) {
      const Json& ev = events->at(i);
      const std::string ph = ev.find("ph")->as_string();
      if (ph == "X") {
        slices.push_back({ev.find("pid")->as_int(), ev.find("tid")->as_int(),
                          ev.find("ts")->as_number(),
                          ev.find("dur")->as_number()});
      } else if (ph == "s" || ph == "f") {
        // Flow endpoints carry the shared binding triple plus an id.
        EXPECT_EQ(ev.find("name")->as_string(), "critical-path");
        ASSERT_NE(ev.find("cat"), nullptr) << ev.dump();
        EXPECT_EQ(ev.find("cat")->as_string(), "critpath");
        ASSERT_NE(ev.find("id"), nullptr) << ev.dump();
        ASSERT_NE(ev.find("ts"), nullptr) << ev.dump();
        ASSERT_NE(ev.find("tid"), nullptr) << ev.dump();
        const Flow flow{ev.find("pid")->as_int(), ev.find("tid")->as_int(),
                        ev.find("id")->as_int(), ev.find("ts")->as_number()};
        if (ph == "s") {
          EXPECT_EQ(ev.find("bp"), nullptr);
          starts.push_back(flow);
        } else {
          ASSERT_NE(ev.find("bp"), nullptr) << ev.dump();
          EXPECT_EQ(ev.find("bp")->as_string(), "e");
          finishes.push_back(flow);
        }
      }
    }

    // The committee critical path crosses peers, so there are link hops.
    ASSERT_GT(starts.size(), 0u);
    ASSERT_EQ(starts.size(), finishes.size());
    const auto enclosed = [&](const Flow& flow) {
      for (const Slice& slice : slices) {
        if (slice.pid == flow.pid && slice.tid == flow.tid &&
            slice.ts <= flow.ts && flow.ts <= slice.ts + slice.dur) {
          return true;
        }
      }
      return false;
    };
    for (std::size_t i = 0; i < starts.size(); ++i) {
      // Emitted as adjacent pairs: each start's id resolves to its finish,
      // time flows forward, and both endpoints bind to an enclosing slice.
      EXPECT_EQ(starts[i].id, finishes[i].id);
      EXPECT_LE(starts[i].ts, finishes[i].ts);
      EXPECT_TRUE(enclosed(starts[i])) << "unbound flow start " << i;
      EXPECT_TRUE(enclosed(finishes[i])) << "unbound flow finish " << i;
    }
  });
}

TEST(Perfetto, FlowsAreAbsentWithoutACriticalPath) {
  with_traced_committee_run(30, [](const sim::Trace& trace,
                                   const dr::RunReport& report) {
    const Json doc = to_perfetto(trace, report.phase_spans, 8);
    const Json* events = doc.find("traceEvents");
    for (std::size_t i = 0; i < events->size(); ++i) {
      const std::string ph = events->at(i).find("ph")->as_string();
      EXPECT_NE(ph, "s");
      EXPECT_NE(ph, "f");
    }
  });
}

TEST(Perfetto, MessageInstantsAreOptIn) {
  with_traced_committee_run(27, [](const sim::Trace& trace,
                                   const dr::RunReport& report) {
    const auto count_named = [](const Json& doc, const std::string& prefix) {
      const Json* events = doc.find("traceEvents");
      std::size_t count = 0;
      for (std::size_t i = 0; i < events->size(); ++i) {
        if (events->at(i).find("name")->as_string().rfind(prefix, 0) == 0) {
          ++count;
        }
      }
      return count;
    };
    PerfettoOptions with;
    with.include_messages = true;
    const Json quiet = to_perfetto(trace, report.phase_spans, 8);
    const Json loud = to_perfetto(trace, report.phase_spans, 8, with);
    EXPECT_EQ(count_named(quiet, "send "), 0u);
    EXPECT_GT(count_named(loud, "send "), 0u);
  });
}

}  // namespace
}  // namespace asyncdr::obs
