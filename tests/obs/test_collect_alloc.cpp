// Allocation budget for RunMetricsCollector::attach() at large k: the
// per-link latency series are created lazily on first delivery, so attach
// must not allocate anything on the order of k^2 (the old eager layout was
// a single k*k pointer vector — 2 MB at k = 512). This binary replaces the
// global operator new to watch for any single oversized allocation while
// attach runs; it must stay in its own test executable so the override
// cannot leak into other suites.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "common/bitvec.hpp"
#include "dr/world.hpp"
#include "obs/collect.hpp"
#include "obs/metrics.hpp"

namespace {

/// Largest single allocation observed while tracking is on. Plain malloc
/// underneath keeps the override sanitizer-friendly (ASan intercepts malloc
/// and free, and new/delete stay matched).
std::atomic<bool> g_tracking{false};
std::atomic<std::size_t> g_largest{0};

void note(std::size_t size) {
  if (!g_tracking.load(std::memory_order_relaxed)) return;
  std::size_t prev = g_largest.load(std::memory_order_relaxed);
  while (prev < size &&
         !g_largest.compare_exchange_weak(prev, size,
                                          std::memory_order_relaxed)) {
  }
}

void* allocate(std::size_t size) {
  note(size);
  void* p = std::malloc(size == 0 ? 1 : size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

}  // namespace

void* operator new(std::size_t size) { return allocate(size); }
void* operator new[](std::size_t size) { return allocate(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace asyncdr::obs {
namespace {

TEST(CollectorAlloc, AttachAtLargeKStaysUnderTheBudget) {
  constexpr std::size_t k = 512;
  // Any k^2-shaped structure blows this budget: even a bare pointer per
  // link is k*k*8 = 2 MB. Per-peer series (a few vectors of k pointers)
  // stay well under it.
  constexpr std::size_t kBudget = 256 * 1024;

  dr::Config cfg{.n = 1024, .k = k, .beta = 0.0, .message_bits = 256,
                 .seed = 1};
  dr::World world(cfg, BitVec(cfg.n));
  MetricsRegistry registry;
  RunMetricsCollector collector(registry);

  g_largest.store(0);
  g_tracking.store(true);
  collector.attach(world);
  g_tracking.store(false);

  EXPECT_LT(g_largest.load(), kBudget)
      << "attach() made a single allocation of " << g_largest.load()
      << " bytes at k=" << k << " — an O(k^2) structure is back";
}

}  // namespace
}  // namespace asyncdr::obs
