// The metrics layer: JSON value round-trips, histogram bucketing, registry
// snapshots, and the standard run collector wired through a real scenario.
#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include "obs/collect.hpp"
#include "obs/json.hpp"
#include "protocols/runner.hpp"

namespace asyncdr {
namespace {

using obs::Json;

TEST(Json, ScalarsDumpAndParse) {
  EXPECT_EQ(Json{}.dump(), "null");
  EXPECT_EQ(Json(true).dump(), "true");
  EXPECT_EQ(Json(false).dump(), "false");
  EXPECT_EQ(Json(std::int64_t{42}).dump(), "42");
  EXPECT_EQ(Json(-1.5).dump(), "-1.5");
  EXPECT_EQ(Json("hi \"there\"\n").dump(), "\"hi \\\"there\\\"\\n\"");

  const auto parsed = Json::parse("-17");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->as_int(), -17);
}

TEST(Json, NestedRoundTrip) {
  Json doc = Json::object();
  doc["name"] = "asyncdr";
  doc["pi"] = 3.25;
  doc["count"] = std::uint64_t{7};
  Json arr = Json::array();
  arr.push_back(1);
  arr.push_back("two");
  Json inner = Json::object();
  inner["deep"] = true;
  arr.push_back(std::move(inner));
  doc["items"] = std::move(arr);

  const std::string text = doc.dump(2);
  const auto back = Json::parse(text);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->find("name")->as_string(), "asyncdr");
  EXPECT_DOUBLE_EQ(back->find("pi")->as_number(), 3.25);
  EXPECT_EQ(back->find("count")->as_int(), 7);
  const Json* items = back->find("items");
  ASSERT_NE(items, nullptr);
  ASSERT_EQ(items->size(), 3u);
  EXPECT_EQ(items->at(0).as_int(), 1);
  EXPECT_EQ(items->at(1).as_string(), "two");
  EXPECT_TRUE(items->at(2).find("deep")->as_bool());
}

TEST(Json, RejectsMalformedInput) {
  EXPECT_FALSE(Json::parse("").has_value());
  EXPECT_FALSE(Json::parse("{").has_value());
  EXPECT_FALSE(Json::parse("[1,]").has_value());
  EXPECT_FALSE(Json::parse("\"unterminated").has_value());
  EXPECT_FALSE(Json::parse("42 garbage").has_value());
  EXPECT_FALSE(Json::parse("{\"a\" 1}").has_value());
}

TEST(Histogram, BucketsByUpperBound) {
  obs::Histogram h({1.0, 4.0, 16.0});
  for (double v : {0.5, 1.0, 2.0, 4.0, 5.0, 100.0}) h.observe(v);
  // le=1: {0.5, 1.0}; le=4: {2.0, 4.0}; le=16: {5.0}; overflow: {100.0}.
  ASSERT_EQ(h.bucket_counts().size(), 4u);
  EXPECT_EQ(h.bucket_counts()[0], 2u);
  EXPECT_EQ(h.bucket_counts()[1], 2u);
  EXPECT_EQ(h.bucket_counts()[2], 1u);
  EXPECT_EQ(h.bucket_counts()[3], 1u);
  EXPECT_EQ(h.count(), 6u);
  EXPECT_DOUBLE_EQ(h.min(), 0.5);
  EXPECT_DOUBLE_EQ(h.max(), 100.0);
}

TEST(MetricsRegistry, SameNameAndLabelsIsTheSameSeries) {
  obs::MetricsRegistry reg;
  reg.counter("hits", {{"peer", "0"}}).add(2);
  reg.counter("hits", {{"peer", "0"}}).add(3);
  reg.counter("hits", {{"peer", "1"}}).add(1);
  EXPECT_EQ(reg.counter("hits", {{"peer", "0"}}).value(), 5u);
  EXPECT_EQ(reg.counter("hits", {{"peer", "1"}}).value(), 1u);
}

TEST(MetricsRegistry, SnapshotCarriesSchemaAndAllSeriesKinds) {
  obs::MetricsRegistry reg;
  reg.counter("c_total").add(9);
  reg.gauge("g").set(2.5);
  reg.histogram("h", {1.0, 2.0}).observe(1.5);

  const Json snap = reg.snapshot();
  EXPECT_EQ(snap.find("schema")->as_string(), "asyncdr-metrics-v1");
  ASSERT_EQ(snap.find("counters")->size(), 1u);
  EXPECT_EQ(snap.find("counters")->at(0).find("value")->as_int(), 9);
  ASSERT_EQ(snap.find("gauges")->size(), 1u);
  EXPECT_DOUBLE_EQ(snap.find("gauges")->at(0).find("value")->as_number(), 2.5);
  ASSERT_EQ(snap.find("histograms")->size(), 1u);
  const Json& h = snap.find("histograms")->at(0);
  EXPECT_EQ(h.find("count")->as_int(), 1);
  ASSERT_EQ(h.find("buckets")->size(), 3u);
  EXPECT_EQ(h.find("buckets")->at(2).find("le")->as_string(), "inf");

  // The dump round-trips through the parser.
  EXPECT_TRUE(Json::parse(reg.to_json_string()).has_value());
}

TEST(RunMetricsCollector, CountsAgreeWithTheRunReport) {
  proto::Scenario s;
  s.cfg = dr::Config{.n = 256, .k = 8, .beta = 0.25, .message_bits = 1024,
                     .seed = 3};
  s.honest = proto::make_committee();
  s.crashes = adv::CrashPlan::silent_prefix(s.cfg.max_faulty());

  obs::MetricsRegistry reg;
  obs::RunMetricsCollector collector(reg);
  std::uint64_t served = 0;
  s.instrument = [&](dr::World& world) { collector.attach(world); };
  s.post_run = [&](dr::World& world, const dr::RunReport& report) {
    collector.finalize(report);
    served = world.source().total_bits_served();
  };
  const dr::RunReport report = proto::run_scenario(s);
  ASSERT_TRUE(report.ok());

  // Per-peer query counters sum to the source's own served-bits counter.
  std::uint64_t counter_sum = 0;
  for (std::size_t p = 0; p < s.cfg.k; ++p) {
    counter_sum +=
        reg.counter("source_query_bits_total", {{"peer", std::to_string(p)}})
            .value();
  }
  EXPECT_EQ(counter_sum, served);
  EXPECT_GT(counter_sum, 0u);

  // Headline gauges mirror the report.
  EXPECT_DOUBLE_EQ(reg.gauge("run_query_complexity_bits").value(),
                   static_cast<double>(report.query_complexity));
  EXPECT_DOUBLE_EQ(reg.gauge("run_ok").value(), 1.0);

  // The live histograms saw traffic.
  EXPECT_GT(reg.histogram("source_query_bits", {}).count(), 0u);
  EXPECT_GT(reg.histogram("sim_event_queue_depth", {}).count(), 0u);
}

}  // namespace
}  // namespace asyncdr
