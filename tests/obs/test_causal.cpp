// The causal analysis layer: happens-before DAG construction over a trace,
// critical-path extraction, and the reconciliation invariant — on every
// fixed-seed run of every protocol the extracted path length must equal the
// reported T *exactly* (both are copies of the same termination timestamp;
// the equality validates the DAG wiring edge by edge).
#include "obs/causal.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "adversary/crash_plan.hpp"
#include "chaos/injectors.hpp"
#include "common/rng.hpp"
#include "obs/critpath.hpp"
#include "protocols/runner.hpp"
#include "sim/network.hpp"
#include "sim/trace.hpp"

namespace asyncdr::obs {
namespace {

using sim::TraceEvent;
using Kind = TraceEvent::Kind;

struct Ping final : sim::Payload {
  std::size_t size_bits() const override { return 16; }
  std::string type_name() const override { return "Ping"; }
};

// ---- DAG construction rules ----

TEST(CausalGraph, DeliveriesAndDropsParentTheirSendViaMessageId) {
  sim::Engine engine;
  sim::Network net(engine, 3, 64);
  sim::Trace trace(engine);
  net.set_observer(&trace);
  struct Sink final : sim::Receiver {
    void deliver(const sim::Message&) override {}
  } sink;
  for (sim::PeerId i = 0; i < 3; ++i) net.attach(i, &sink);
  net.send(0, 1, std::make_shared<Ping>());
  net.send(0, 2, std::make_shared<Ping>());
  engine.schedule_at(0.5, [&] { net.crash(2); });
  engine.run();

  const CausalGraph graph = build_causal_graph(trace);
  const auto& events = trace.events();
  ASSERT_EQ(graph.nodes.size(), events.size());
  std::size_t link_edges = 0;
  for (std::size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& ev = events[i];
    if (ev.kind != Kind::kDeliver && ev.kind != Kind::kDrop) continue;
    ++link_edges;
    const std::ptrdiff_t parent = graph.nodes[i].parent;
    ASSERT_GE(parent, 0) << ev.to_string();
    ASSERT_LT(parent, static_cast<std::ptrdiff_t>(i));
    const TraceEvent& src = events[static_cast<std::size_t>(parent)];
    EXPECT_EQ(src.kind, Kind::kSend) << ev.to_string();
    EXPECT_EQ(src.msg_id, ev.msg_id);
    EXPECT_EQ(graph.nodes[i].edge, CausalEdge::kLink);
  }
  EXPECT_EQ(link_edges, 2u);  // one delivery + one drop
}

// Regression: a send killed by the pre-send hook used to surface as an
// on_drop with no matching on_send, leaving a kDrop node whose parent fell
// back to program order — a phantom edge in the DAG. A killed send must now
// be invisible: every kDeliver/kDrop in the trace has a kLink parent to a
// real kSend carrying the same message id.
TEST(CausalGraph, HookCrashedSendsLeaveNoPhantomLinkEdges) {
  sim::Engine engine;
  sim::Network net(engine, 4, 64);
  sim::Trace trace(engine);
  net.set_observer(&trace);
  struct Sink final : sim::Receiver {
    void deliver(const sim::Message&) override {}
  } sink;
  for (sim::PeerId i = 0; i < 4; ++i) net.attach(i, &sink);
  // Peer 0 dies mid-broadcast (hook fires before its third send commits);
  // peer 1 keeps sending afterwards so ids must stay gap-free.
  int allowed = 2;
  net.set_pre_send_hook([&](const sim::Message& msg) {
    if (msg.from == 0 && allowed-- == 0) net.crash(0);
  });
  net.broadcast(0, std::make_shared<Ping>());
  net.send(1, 2, std::make_shared<Ping>());
  engine.schedule_at(0.5, [&] { net.crash(2); });  // forces a real drop too
  engine.run();

  const CausalGraph graph = build_causal_graph(trace);
  const auto& events = trace.events();
  std::size_t sends = 0, settled = 0;
  for (std::size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& ev = events[i];
    if (ev.kind == Kind::kSend) ++sends;
    if (ev.kind != Kind::kDeliver && ev.kind != Kind::kDrop) continue;
    ++settled;
    const std::ptrdiff_t parent = graph.nodes[i].parent;
    ASSERT_GE(parent, 0) << ev.to_string();
    const TraceEvent& src = events[static_cast<std::size_t>(parent)];
    EXPECT_EQ(src.kind, Kind::kSend) << ev.to_string();
    EXPECT_EQ(src.msg_id, ev.msg_id) << ev.to_string();
    EXPECT_EQ(graph.nodes[i].edge, CausalEdge::kLink) << ev.to_string();
  }
  // Broadcast committed 2 sends before the crash, plus peer 1's send; the
  // killed third broadcast send appears nowhere.
  EXPECT_EQ(sends, 3u);
  EXPECT_EQ(settled, 3u);
}

TEST(CausalGraph, SameInstantSendsChainInProgramOrder) {
  sim::Engine engine;
  sim::Network net(engine, 2, 64);
  sim::Trace trace(engine);
  net.set_observer(&trace);
  struct Sink final : sim::Receiver {
    void deliver(const sim::Message&) override {}
  } sink;
  net.attach(0, &sink);
  net.attach(1, &sink);
  net.send(0, 1, std::make_shared<Ping>());
  net.send(0, 1, std::make_shared<Ping>());
  engine.run();

  const CausalGraph graph = build_causal_graph(trace);
  // The first send has no prior action: a root. The second chains to it at
  // the same instant: program order, zero-weight.
  ASSERT_GE(graph.nodes.size(), 2u);
  EXPECT_EQ(graph.nodes[0].parent, -1);
  EXPECT_EQ(graph.nodes[0].edge, CausalEdge::kRoot);
  EXPECT_EQ(graph.nodes[1].parent, 0);
  EXPECT_EQ(graph.nodes[1].edge, CausalEdge::kLocal);
}

TEST(CausalGraph, StartsAndCrashesAreRootsAndQueriesLabelTheirOutEdge) {
  sim::Engine engine;
  sim::Trace trace(engine);
  trace.record_start(0.0, 4);
  trace.record_query(0.0, 4, 16);
  trace.record_terminate(2.5, 4);
  trace.record_crash(1.0, 2);
  const CausalGraph graph = build_causal_graph(trace);
  ASSERT_EQ(graph.nodes.size(), 4u);
  EXPECT_EQ(graph.nodes[0].parent, -1);
  EXPECT_EQ(graph.nodes[0].edge, CausalEdge::kRoot);
  // start -> query at the same instant: local program order.
  EXPECT_EQ(graph.nodes[1].parent, 0);
  EXPECT_EQ(graph.nodes[1].edge, CausalEdge::kLocal);
  // query -> terminate: the in-edge is labeled by its query parent even
  // across idle time.
  EXPECT_EQ(graph.nodes[2].parent, 1);
  EXPECT_EQ(graph.nodes[2].edge, CausalEdge::kQuery);
  EXPECT_EQ(graph.nodes[3].parent, -1);
  EXPECT_EQ(graph.nodes[3].edge, CausalEdge::kRoot);
}

TEST(CausalGraph, ParentsAlwaysPrecedeChildren) {
  proto::Scenario s;
  s.cfg = dr::Config{.n = 256, .k = 8, .beta = 0.25, .message_bits = 1024,
                     .seed = 41};
  s.honest = proto::make_committee();
  s.crashes = adv::CrashPlan::silent_prefix(s.cfg.max_faulty());
  s.instrument = [](dr::World& world) { world.enable_trace(); };
  s.post_run = [](dr::World& world, const dr::RunReport&) {
    const CausalGraph graph = build_causal_graph(*world.trace());
    for (std::size_t i = 0; i < graph.nodes.size(); ++i) {
      ASSERT_LT(graph.nodes[i].parent, static_cast<std::ptrdiff_t>(i));
    }
  };
  ASSERT_TRUE(proto::run_scenario(s).ok());
}

// ---- Golden reconciliation: all six protocols, fixed seeds ----

/// Wraps the scenario so the run is traced (run_scenario then embeds the
/// critical path automatically).
proto::Scenario traced(proto::Scenario s) {
  auto inner = std::move(s.instrument);
  s.instrument = [inner = std::move(inner)](dr::World& world) {
    world.enable_trace();
    if (inner) inner(world);
  };
  return s;
}

/// The golden assertion bundle: the run succeeds, the path reconciles with
/// the measured T exactly, and the attribution tables cover the full length.
void expect_reconciled(const char* what, proto::Scenario s) {
  const dr::RunReport report = proto::run_scenario(traced(std::move(s)));
  ASSERT_TRUE(report.ok()) << what << '\n' << report.to_string();
  ASSERT_TRUE(report.critical_path.has_value()) << what;
  const CriticalPathReport& cp = *report.critical_path;
  EXPECT_TRUE(cp.complete) << what << ": " << cp.incomplete_reason;
  EXPECT_TRUE(cp.reconciled) << what << '\n' << cp.to_string();
  // Exact equality on doubles by design: the weights telescope, so any
  // difference at all means a miswired edge.
  EXPECT_EQ(cp.path_length, report.time_complexity) << what;

  ASSERT_FALSE(cp.steps.empty()) << what;
  EXPECT_EQ(cp.steps.front().in_edge, CausalEdge::kRoot);
  EXPECT_EQ(cp.steps.front().at, cp.start_offset);
  EXPECT_NE(cp.terminal_peer, sim::kNoPeer);
  EXPECT_EQ(cp.steps.back().peer, cp.terminal_peer);

  // Recomputing the telescoped sum in step order reproduces path_length
  // bit for bit (same additions, same order).
  sim::Time total = cp.start_offset;
  for (const CriticalPathReport::Step& step : cp.steps) {
    EXPECT_GE(step.in_weight, 0.0);
    total += step.in_weight;
  }
  EXPECT_EQ(total, cp.path_length) << what;

  // Every attribution axis partitions the same edge weights.
  const auto axis_total = [](const auto& rows) {
    sim::Time t = 0;
    std::size_t edges = 0;
    for (const auto& row : rows) {
      t += row.time;
      edges += row.edges;
    }
    return std::pair<sim::Time, std::size_t>{t, edges};
  };
  for (const auto* axis : {&cp.by_phase, &cp.by_peer, &cp.by_edge_kind}) {
    const auto [t, edges] = axis_total(*axis);
    EXPECT_NEAR(t, cp.path_length - cp.start_offset, 1e-9) << what;
    EXPECT_EQ(edges, cp.steps.size() - 1) << what;
  }

  // Slack is ascending, nonnegative, and the critical peer leads with zero.
  ASSERT_FALSE(cp.slack.empty()) << what;
  EXPECT_EQ(cp.slack.front().slack, 0.0);
  for (std::size_t i = 0; i < cp.slack.size(); ++i) {
    EXPECT_GE(cp.slack[i].slack, 0.0);
    if (i > 0) {
      EXPECT_LE(cp.slack[i - 1].slack, cp.slack[i].slack);
    }
  }

  EXPECT_NE(cp.to_string().find("reconciled=yes"), std::string::npos) << what;
}

TEST(CriticalPathGolden, NaiveFaultFree) {
  proto::Scenario s;
  s.cfg = dr::Config{.n = 256, .k = 4, .beta = 0.0, .message_bits = 128,
                     .seed = 11};
  s.honest = proto::make_naive();
  expect_reconciled("naive", std::move(s));
}

TEST(CriticalPathGolden, CrashOneUnderACrash) {
  proto::Scenario s;
  s.cfg = dr::Config{.n = 512, .k = 8, .beta = 0.125, .message_bits = 256,
                     .seed = 12};
  s.honest = proto::make_crash_one();
  s.crashes.add_at_time(3, 0.7);
  expect_reconciled("crash_one", std::move(s));
}

TEST(CriticalPathGolden, CrashMultiUnderRandomCrashes) {
  proto::Scenario s;
  s.cfg = dr::Config{.n = 1024, .k = 6, .beta = 0.34, .message_bits = 256,
                     .seed = 13};
  s.honest = proto::make_crash_multi();
  Rng rng(13);
  s.crashes = adv::CrashPlan::random(s.cfg, rng, s.cfg.max_faulty(), 8.0);
  expect_reconciled("crash_multi", std::move(s));
}

TEST(CriticalPathGolden, CommitteeUnderFlipAllLiars) {
  proto::Scenario s;
  s.cfg = dr::Config{.n = 256, .k = 8, .beta = 0.25, .message_bits = 1024,
                     .seed = 14};
  s.honest = proto::make_committee();
  s.byzantine = proto::make_committee_liar(proto::CommitteeLiarPeer::Mode::kFlipAll);
  s.byz_ids = proto::pick_faulty(s.cfg, s.cfg.max_faulty(), 14);
  expect_reconciled("committee", std::move(s));
}

TEST(CriticalPathGolden, TwoCycleUnderVoteStuffing) {
  proto::Scenario s;
  s.cfg = dr::Config{.n = 1 << 12, .k = 128, .beta = 0.125,
                     .message_bits = 1024, .seed = 15};
  s.honest = proto::make_two_cycle(2.0);
  s.byzantine = proto::make_vote_stuffer(2.0, /*target_segment=*/0);
  s.byz_ids = proto::pick_faulty(s.cfg, s.cfg.max_faulty(), 15);
  expect_reconciled("two_cycle", std::move(s));
}

TEST(CriticalPathGolden, MultiCycleUnderSilentByzantine) {
  proto::Scenario s;
  s.cfg = dr::Config{.n = 1 << 12, .k = 128, .beta = 0.125,
                     .message_bits = 1024, .seed = 16};
  s.honest = proto::make_multi_cycle(2.0);
  s.byzantine = proto::make_silent_byz();
  s.byz_ids = proto::pick_faulty(s.cfg, s.cfg.max_faulty(), 16);
  expect_reconciled("multi_cycle", std::move(s));
}

// ---- Phase attribution ----

TEST(CriticalPath, CommitteePathCarriesNamedPhases) {
  proto::Scenario s;
  s.cfg = dr::Config{.n = 256, .k = 8, .beta = 0.25, .message_bits = 1024,
                     .seed = 17};
  s.honest = proto::make_committee();
  s.crashes = adv::CrashPlan::silent_prefix(s.cfg.max_faulty());
  const dr::RunReport report = proto::run_scenario(traced(std::move(s)));
  ASSERT_TRUE(report.ok());
  ASSERT_TRUE(report.critical_path.has_value());
  const CriticalPathReport& cp = *report.critical_path;
  bool named = false;
  for (const CriticalPathReport::Attribution& row : cp.by_phase) {
    if (!row.key.empty() && row.key != dr::kUnphased) named = true;
  }
  EXPECT_TRUE(named) << cp.to_string();
  // Every step after the root is phase-labeled.
  for (std::size_t i = 1; i < cp.steps.size(); ++i) {
    EXPECT_FALSE(cp.steps[i].phase.empty());
  }
}

// ---- Incomplete runs ----

TEST(CriticalPath, StalledRunYieldsTheCriticalPrefix) {
  proto::Scenario s;
  s.cfg = dr::Config{.n = 256, .k = 8, .beta = 0.25, .message_bits = 1024,
                     .seed = 31};
  s.honest = proto::make_committee();
  s.max_events = 12;  // starve the engine: the run stalls mid-flight
  const dr::RunReport report = proto::run_scenario(traced(std::move(s)));
  ASSERT_FALSE(report.ok());
  ASSERT_TRUE(report.critical_path.has_value());
  const CriticalPathReport& cp = *report.critical_path;
  EXPECT_FALSE(cp.complete);
  EXPECT_FALSE(cp.reconciled);
  EXPECT_NE(cp.incomplete_reason.find("stalled"), std::string::npos)
      << cp.incomplete_reason;
  EXPECT_FALSE(cp.steps.empty());
  // The stall diagnostics carry the causal chain that got each stuck peer
  // where it is.
  EXPECT_NE(report.stall.find("critical prefix of p"), std::string::npos)
      << report.stall;
}

TEST(CriticalPath, OverflowedTraceIsReportedAsAPrefix) {
  proto::Scenario s;
  s.cfg = dr::Config{.n = 256, .k = 8, .beta = 0.25, .message_bits = 1024,
                     .seed = 32};
  s.honest = proto::make_committee();
  s.instrument = [](dr::World& world) { world.enable_trace(/*capacity=*/64); };
  const dr::RunReport report = proto::run_scenario(std::move(s));
  ASSERT_TRUE(report.critical_path.has_value());
  const CriticalPathReport& cp = *report.critical_path;
  EXPECT_FALSE(cp.complete);
  EXPECT_FALSE(cp.reconciled);
  EXPECT_NE(cp.incomplete_reason.find("overflowed"), std::string::npos)
      << cp.incomplete_reason;
}

// ---- Chaos sweep: reconciliation survives every injector composition ----

TEST(CriticalPath, ChaosInjectorsNeverBreakReconciliation) {
  chaos::ChaosOptions options;
  options.n_cap = 512;
  options.k_cap = 10;
  for (const chaos::ProtocolProfile& profile : chaos::protocol_registry()) {
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
      chaos::ChaosCase cs = chaos::sample_case(profile, seed, options);
      cs.scenario.max_events = 2'000'000;
      const dr::RunReport report =
          proto::run_scenario(traced(std::move(cs.scenario)));
      ASSERT_TRUE(report.critical_path.has_value())
          << profile.name << " seed " << seed << ": " << cs.description;
      const CriticalPathReport& cp = *report.critical_path;
      if (cp.complete) {
        // Whatever the injectors did to the schedule, crashes, or coalition,
        // a fully visible run must reconcile exactly.
        EXPECT_TRUE(cp.reconciled)
            << profile.name << " seed " << seed << '\n' << cp.to_string();
        EXPECT_EQ(cp.path_length, report.time_complexity)
            << profile.name << " seed " << seed;
      } else {
        EXPECT_FALSE(cp.incomplete_reason.empty())
            << profile.name << " seed " << seed;
      }
    }
  }
}

// ---- Stall-prefix renderer ----

TEST(CriticalPath, RenderCriticalPrefixNamesThePeerAndItsChain) {
  sim::Engine engine;
  sim::Trace trace(engine);
  trace.record_start(0.0, 1);
  trace.record_query(0.0, 1, 8);
  trace.record_note(1.5, 1, "waiting");
  const CausalGraph graph = build_causal_graph(trace);
  const std::string text = render_critical_prefix(trace, graph, 1);
  EXPECT_NE(text.find("critical prefix of p1"), std::string::npos) << text;
  EXPECT_NE(text.find("3 causal steps"), std::string::npos) << text;
  // A peer the trace never saw renders nothing.
  EXPECT_TRUE(render_critical_prefix(trace, graph, 7).empty());
}

}  // namespace
}  // namespace asyncdr::obs
