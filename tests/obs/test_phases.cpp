// Phase accounting across every annotated protocol: the per-phase Q/M
// breakdowns in RunReport must reconcile exactly with the aggregate
// measures, and the phase-table renderer is pinned by a golden string on a
// fully deterministic (lockstep-latency) run.
#include "dr/phase.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <string>
#include <vector>

#include "adversary/crash_plan.hpp"
#include "protocols/runner.hpp"

namespace asyncdr::proto {
namespace {

struct PhaseCase {
  std::string name;
  Scenario scenario;
  std::string expected_phase;  // a phase the protocol must report
};

std::vector<PhaseCase> annotated_cases() {
  std::vector<PhaseCase> cases;
  {
    PhaseCase c;
    c.name = "naive";
    c.scenario.cfg = dr::Config{.n = 1 << 10, .k = 8, .beta = 0.5,
                                .message_bits = 256, .seed = 2};
    c.scenario.honest = make_naive();
    c.expected_phase = "bulk-download";
    cases.push_back(std::move(c));
  }
  {
    PhaseCase c;
    c.name = "crash_one";
    c.scenario.cfg = dr::Config{.n = 4096, .k = 8, .beta = 1.0 / 8,
                                .message_bits = 256, .seed = 3};
    c.scenario.honest = make_crash_one();
    c.scenario.crashes.add_at_time(3, 0.3);
    c.expected_phase = "p1:own-block";
    cases.push_back(std::move(c));
  }
  {
    PhaseCase c;
    c.name = "crash_multi";
    c.scenario.cfg = dr::Config{.n = 4096, .k = 12, .beta = 0.5,
                                .message_bits = 256, .seed = 4};
    c.scenario.honest = make_crash_multi();
    c.scenario.crashes =
        adv::CrashPlan::silent_prefix(c.scenario.cfg.max_faulty());
    c.expected_phase = "round-1";
    cases.push_back(std::move(c));
  }
  {
    PhaseCase c;
    c.name = "committee";
    c.scenario.cfg = dr::Config{.n = 256, .k = 8, .beta = 0.25,
                                .message_bits = 1024, .seed = 5};
    c.scenario.honest = make_committee();
    c.scenario.byzantine =
        make_committee_liar(CommitteeLiarPeer::Mode::kFlipAll);
    c.scenario.byz_ids =
        pick_faulty(c.scenario.cfg, c.scenario.cfg.max_faulty());
    c.expected_phase = "committee-query+vote";
    cases.push_back(std::move(c));
  }
  {
    PhaseCase c;
    c.name = "two_cycle";
    c.scenario.cfg = dr::Config{.n = 1 << 12, .k = 128, .beta = 0.125,
                                .message_bits = 1024, .seed = 6};
    c.scenario.honest = make_two_cycle(2.0);
    c.scenario.byzantine = make_vote_stuffer(2.0, 0);
    c.scenario.byz_ids =
        pick_faulty(c.scenario.cfg, c.scenario.cfg.max_faulty());
    c.expected_phase = "cycle1:sample-report";
    cases.push_back(std::move(c));
  }
  {
    PhaseCase c;
    c.name = "multi_cycle";
    c.scenario.cfg = dr::Config{.n = 1 << 12, .k = 128, .beta = 0.125,
                                .message_bits = 4096, .seed = 7};
    c.scenario.honest = make_multi_cycle(2.0);
    c.expected_phase = "cycle-1";
    cases.push_back(std::move(c));
  }
  return cases;
}

// The load-bearing invariant of the phase layer: summing any measure over
// the reported phases reproduces the run's aggregate exactly, for every
// protocol, because the implicit "unphased" span catches whatever a
// protocol did outside its annotations.
TEST(Phases, BreakdownSumsMatchAggregatesForEveryProtocol) {
  for (PhaseCase& c : annotated_cases()) {
    const dr::RunReport report = run_scenario(c.scenario);
    EXPECT_TRUE(report.ok()) << c.name << ": " << report.to_string();
    ASSERT_FALSE(report.phases.empty()) << c.name;

    std::uint64_t bits = 0, units = 0, payloads = 0;
    bool found_expected = false;
    for (const dr::RunReport::PhaseBreakdown& p : report.phases) {
      EXPECT_FALSE(p.name.empty()) << c.name;
      bits += p.bits_queried;
      units += p.unit_messages;
      payloads += p.payload_messages;
      if (p.name == c.expected_phase) found_expected = true;
    }
    EXPECT_EQ(bits, report.total_queries) << c.name;
    EXPECT_EQ(units, report.message_complexity) << c.name;
    EXPECT_EQ(payloads, report.payload_messages) << c.name;
    EXPECT_TRUE(found_expected)
        << c.name << ": missing phase \"" << c.expected_phase << '"';

    // Raw spans cover at least the nonfaulty peers' reported work.
    ASSERT_FALSE(report.phase_spans.empty()) << c.name;
  }
}

// Small instances push the randomized protocols through their naive
// fallback; that path is annotated too, so the invariant still holds and
// the breakdown names the fallback.
TEST(Phases, RandomizedFallbackIsAnnotated) {
  for (PeerFactory factory : {make_two_cycle(2.0), make_multi_cycle(2.0)}) {
    Scenario s;
    s.cfg = dr::Config{.n = 512, .k = 8, .beta = 0.25, .message_bits = 1024,
                       .seed = 9};
    s.honest = factory;
    const dr::RunReport report = run_scenario(s);
    EXPECT_TRUE(report.ok()) << report.to_string();
    ASSERT_EQ(report.phases.size(), 1u);
    EXPECT_EQ(report.phases[0].name, "bulk-download");
    EXPECT_EQ(report.phases[0].bits_queried, report.total_queries);
  }
}

// Faulty peers are excluded from the aggregated breakdown (matching the
// nonfaulty-only Q/M measures) but their spans stay visible in the raw
// per-peer span list for the timeline exporters.
TEST(Phases, FaultyPeersExcludedFromBreakdownButPresentInSpans) {
  Scenario s;
  s.cfg = dr::Config{.n = 256, .k = 8, .beta = 0.25, .message_bits = 1024,
                     .seed = 11};
  s.honest = make_committee();
  s.byzantine = make_committee_liar(CommitteeLiarPeer::Mode::kFlipAll);
  s.byz_ids = pick_faulty(s.cfg, s.cfg.max_faulty());
  const dr::RunReport report = run_scenario(s);
  ASSERT_TRUE(report.ok()) << report.to_string();

  const std::size_t honest = s.cfg.k - s.byz_ids.size();
  for (const dr::RunReport::PhaseBreakdown& p : report.phases) {
    EXPECT_LE(p.peers, honest) << p.name;
  }
}

// Golden rendering of the phase table under lockstep latency (all message
// delays exactly 1.0), which makes every number in the table — including
// the max spans — independent of latency randomness.
TEST(Phases, PhaseTableGolden) {
  Scenario s;
  s.cfg = dr::Config{.n = 256, .k = 8, .beta = 0.25, .message_bits = 1024,
                     .seed = 1};
  s.honest = make_committee();
  s.latency = fixed_latency(1.0);
  const dr::RunReport report = run_scenario(s);
  ASSERT_TRUE(report.ok()) << report.to_string();

  const std::string expected =
      "| phase                | peers | Q (bits) | M (units) | payloads | T (max span) |\n"
      "|----------------------|-------|----------|-----------|----------|--------------|\n"
      "| committee-query+vote | 8     | 1280     | 56        | 56       | 0.00         |\n"
      "| vote-collection      | 8     | 0        | 0         | 0        | 1.00         |\n";
  EXPECT_EQ(report.phase_table(), expected);

  // The per-peer table lists one committee-query+vote span per peer.
  const std::string peer_table = report.peer_phase_table();
  for (std::size_t p = 0; p < s.cfg.k; ++p) {
    EXPECT_NE(peer_table.find("| " + std::to_string(p) + " "),
              std::string::npos)
        << peer_table;
  }
}

}  // namespace
}  // namespace asyncdr::proto
