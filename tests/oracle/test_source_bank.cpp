#include "oracle/source_bank.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"

namespace asyncdr::oracle {
namespace {

SourceBank::Spec spec() {
  return SourceBank::Spec{.sources = 12,
                          .cells = 8,
                          .value_bits = 16,
                          .psi = 0.25,
                          .noise = 3,
                          .seed = 5};
}

TEST(SourceBank, BuildsRequestedShape) {
  const SourceBank bank = SourceBank::build(spec());
  EXPECT_EQ(bank.count(), 12u);
  EXPECT_EQ(bank.byzantine_count(), 3u);  // floor(0.25 * 12)
  for (std::size_t i = 0; i < bank.count(); ++i) {
    EXPECT_EQ(bank.source(i).cells(), 8u);
    EXPECT_EQ(bank.source(i).value_bits(), 16u);
  }
}

TEST(SourceBank, HonestValuesStayWithinNoiseBand) {
  const SourceBank bank = SourceBank::build(spec());
  for (std::size_t c = 0; c < 8; ++c) {
    const auto [lo, hi] = bank.honest_range(c);
    EXPECT_LE(hi - lo, 2 * 3);  // +- noise around a common base
    for (std::size_t i = 0; i < bank.count(); ++i) {
      if (bank.is_byzantine(i)) continue;
      const auto v = bank.source(i).read(c);
      EXPECT_GE(v, lo);
      EXPECT_LE(v, hi);
    }
  }
}

TEST(SourceBank, ByzantineSourcesLieFarOutside) {
  const SourceBank bank = SourceBank::build(spec());
  std::size_t outside = 0, total = 0;
  for (std::size_t i = 0; i < bank.count(); ++i) {
    if (!bank.is_byzantine(i)) continue;
    for (std::size_t c = 0; c < 8; ++c) {
      ++total;
      if (!bank.in_honest_range(c, bank.source(i).read(c))) ++outside;
    }
  }
  EXPECT_GT(total, 0u);
  // Extreme-value lies are essentially always outside the honest band.
  EXPECT_GE(outside * 10, total * 9);
}

TEST(SourceBank, InHonestRangePredicate) {
  const SourceBank bank = SourceBank::build(spec());
  const auto [lo, hi] = bank.honest_range(0);
  EXPECT_TRUE(bank.in_honest_range(0, lo));
  EXPECT_TRUE(bank.in_honest_range(0, hi));
  EXPECT_FALSE(bank.in_honest_range(0, hi + 1));
  EXPECT_FALSE(bank.in_honest_range(0, lo - 1));
}

TEST(SourceBank, DeterministicForSeed) {
  const SourceBank a = SourceBank::build(spec());
  const SourceBank b = SourceBank::build(spec());
  for (std::size_t i = 0; i < a.count(); ++i) {
    EXPECT_EQ(a.source(i).bits(), b.source(i).bits());
    EXPECT_EQ(a.is_byzantine(i), b.is_byzantine(i));
  }
}

TEST(SourceBank, RejectsMajorityByzantinePsi) {
  auto s = spec();
  s.psi = 0.5;
  EXPECT_THROW(SourceBank::build(s), contract_violation);
}

TEST(SourceBank, ZeroPsiAllHonest) {
  auto s = spec();
  s.psi = 0.0;
  const SourceBank bank = SourceBank::build(s);
  EXPECT_EQ(bank.byzantine_count(), 0u);
}

}  // namespace
}  // namespace asyncdr::oracle
