// Executable form of the paper's open problem: the Download guarantees
// assume static data; these tests verify BOTH directions — the guarantee
// survives trivially when mutations land outside the execution window, and
// genuinely breaks when they land inside it.
#include "oracle/dynamic.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"

namespace asyncdr::oracle {
namespace {

dr::Config cfg(std::uint64_t seed) {
  return dr::Config{.n = 2048, .k = 12, .beta = 0.25, .message_bits = 512,
                    .seed = seed};
}

TEST(DynamicData, MutationAfterTerminationIsHarmlessToAgreement) {
  // A flip scheduled far after every peer has finished: everyone holds the
  // initial snapshot (and therefore agrees), but not the "final" array.
  const auto result = run_dynamic_download(
      cfg(1), proto::make_committee(), {Mutation{1000.0, 7}});
  EXPECT_TRUE(result.all_terminated);
  EXPECT_EQ(result.agree_with_initial, result.nonfaulty);
  EXPECT_TRUE(result.agreement_only());
  EXPECT_FALSE(result.download_guarantee());  // final != what they learned
}

TEST(DynamicData, MidRunMutationsBreakTheGuarantee) {
  // Flips while queries are in flight: some peer read the old value, the
  // array moved on — Download's "output == X" has no X to speak of.
  std::size_t broken = 0;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const auto mutations = periodic_mutations(cfg(seed), 24, 2.0, seed);
    const auto result = run_dynamic_download(cfg(seed), proto::make_committee(),
                                             mutations, /*stagger=*/2.0);
    EXPECT_TRUE(result.all_terminated);
    if (!result.download_guarantee()) ++broken;
  }
  EXPECT_GE(broken, 4u);  // essentially always
}

TEST(DynamicData, CrashFreeSingleReaderStillAgrees) {
  // Interesting nuance: Algorithm 2 crash-free has every bit queried by
  // exactly one peer and distributed, so even with mutations the peers all
  // hold the SAME (torn) array — agreement survives where correctness
  // doesn't.
  std::size_t agreed = 0;
  for (std::uint64_t seed = 10; seed < 14; ++seed) {
    const auto c = cfg(seed);
    const auto result = run_dynamic_download(
        c, proto::make_crash_multi(), periodic_mutations(c, 48, 2.0, seed),
        /*stagger=*/2.0);
    if (result.all_terminated && result.agreement_only()) ++agreed;
  }
  EXPECT_GE(agreed, 3u);
}

TEST(DynamicData, CrashesPlusMutationsDegradeToAgreementWithoutValidity) {
  // Even with mid-broadcast crashes forcing re-queries across mutation
  // boundaries, Algorithm 2's terminating full-array push CONVERGES all
  // outputs onto the first finisher's torn snapshot: the protocol silently
  // degrades from "everyone holds X" to "everyone holds the same array
  // that was never X at any instant" — arguably the most dangerous failure
  // mode for an oracle, and a concrete reason the paper leaves dynamic
  // data open instead of patching the aggregation.
  std::size_t converged_but_torn = 0;
  for (std::uint64_t seed = 10; seed < 18; ++seed) {
    const auto c = cfg(seed);
    const auto mutations = periodic_mutations(c, 64, 6.0, seed);
    const auto result = run_dynamic_download(
        c, proto::make_crash_multi(), mutations, /*stagger=*/2.0,
        /*partial_crashes=*/c.max_faulty());
    EXPECT_TRUE(result.all_terminated);
    if (result.agreement_only() && result.torn == result.nonfaulty) {
      ++converged_but_torn;
    }
  }
  EXPECT_GE(converged_but_torn, 6u);
}

TEST(DynamicData, TornOutputsAppear) {
  // With many scattered flips, outputs that match NEITHER snapshot are the
  // norm — the "torn read" failure mode.
  std::size_t torn_runs = 0;
  for (std::uint64_t seed = 30; seed < 35; ++seed) {
    const auto c = cfg(seed);
    const auto result =
        run_dynamic_download(c, proto::make_committee(),
                             periodic_mutations(c, 64, 1.5, seed),
                             /*stagger=*/1.5);
    if (result.torn > 0) ++torn_runs;
  }
  EXPECT_GE(torn_runs, 3u);
}

TEST(DynamicData, HelpersValidateInput) {
  EXPECT_THROW(periodic_mutations(cfg(1), 0, 1.0), contract_violation);
  EXPECT_THROW(periodic_mutations(cfg(1), 3, 0.0), contract_violation);
  EXPECT_THROW(
      run_dynamic_download(cfg(1), proto::make_naive(), {Mutation{0.1, 99999}}),
      contract_violation);
}

}  // namespace
}  // namespace asyncdr::oracle
