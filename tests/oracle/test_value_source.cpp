#include "oracle/value_source.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"

namespace asyncdr::oracle {
namespace {

TEST(ValueSource, EncodesCellsLsbFirst) {
  const ValueSource src({5, 0, 7}, 3);
  EXPECT_EQ(src.cells(), 3u);
  EXPECT_EQ(src.value_bits(), 3u);
  EXPECT_EQ(src.total_bits(), 9u);
  // 5 = 101 LSB-first "101"; 0 = "000"; 7 = "111".
  EXPECT_EQ(src.bits().to_string(), "101000111");
}

TEST(ValueSource, ReadReturnsCellValue) {
  const ValueSource src({42, 17}, 8);
  EXPECT_EQ(src.read(0), 42);
  EXPECT_EQ(src.read(1), 17);
  EXPECT_THROW((void)src.read(2), contract_violation);
}

TEST(ValueSource, DecodeInvertsEncode) {
  const ValueSource src({1234, 0, 65535, 9}, 16);
  for (std::size_t c = 0; c < src.cells(); ++c) {
    EXPECT_EQ(src.decode(src.bits(), c), src.read(c));
  }
}

TEST(ValueSource, DecodeArbitraryArray) {
  const ValueSource src({0, 0}, 4);
  BitVec alt(8);
  alt.set(0, true);  // cell 0 = 1
  alt.set(5, true);  // cell 1 = 2
  EXPECT_EQ(src.decode(alt, 0), 1);
  EXPECT_EQ(src.decode(alt, 1), 2);
  EXPECT_THROW((void)src.decode(BitVec(7), 0), contract_violation);
}

TEST(ValueSource, RejectsBadConstruction) {
  EXPECT_THROW(ValueSource({}, 8), contract_violation);
  EXPECT_THROW(ValueSource({1}, 0), contract_violation);
  EXPECT_THROW(ValueSource({1}, 64), contract_violation);
  EXPECT_THROW(ValueSource({8}, 3), contract_violation);   // 8 needs 4 bits
  EXPECT_THROW(ValueSource({-1}, 3), contract_violation);  // negative
}

}  // namespace
}  // namespace asyncdr::oracle
