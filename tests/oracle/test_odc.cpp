#include "oracle/odc.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"

namespace asyncdr::oracle {
namespace {

SourceBank::Spec bank_spec(std::uint64_t seed = 5) {
  return SourceBank::Spec{.sources = 8,
                          .cells = 8,
                          .value_bits = 16,
                          .psi = 0.25,
                          .noise = 2,
                          .seed = seed};
}

dr::Config node_cfg(std::size_t k, double beta) {
  return dr::Config{
      .n = 1, .k = k, .beta = beta, .message_bits = 512, .seed = 11};
}

TEST(NaiveOdc, SatisfiesOddAndCostsFullReads) {
  const SourceBank bank = SourceBank::build(bank_spec());
  const OdcResult result = run_naive_odc(bank, /*nodes=*/16);
  EXPECT_TRUE(result.ok());
  ASSERT_EQ(result.published.size(), 16u);
  // Per-node cost: (2*psi*m + 1) full sources = 5 * 8 cells * 16 bits.
  EXPECT_EQ(result.max_node_query_bits, 5u * 8u * 16u);
  EXPECT_EQ(result.message_complexity, 0u);
}

TEST(NaiveOdc, MedianDefeatsByzantineSources) {
  const SourceBank bank = SourceBank::build(bank_spec(9));
  const OdcResult result = run_naive_odc(bank, 4);
  EXPECT_TRUE(result.odd_satisfied);
  for (const auto& node_values : result.published) {
    for (std::size_t c = 0; c < node_values.size(); ++c) {
      EXPECT_TRUE(bank.in_honest_range(c, node_values[c]));
    }
  }
}

TEST(DownloadOdc, HonestNodesAgreeAndSatisfyOdd) {
  const SourceBank bank = SourceBank::build(bank_spec());
  DownloadOdcOptions options;
  options.node_cfg = node_cfg(16, 0.25);
  options.honest = proto::make_committee();
  const OdcResult result = run_download_odc(bank, options);
  EXPECT_TRUE(result.ok()) << result.download_failures;
  ASSERT_EQ(result.published.size(), 16u);
  // Download is exact, so every honest node publishes identical values.
  for (const auto& node_values : result.published) {
    EXPECT_EQ(node_values, result.published[0]);
  }
}

TEST(DownloadOdc, WorksWithByzantineOracleNodes) {
  const SourceBank bank = SourceBank::build(bank_spec(7));
  DownloadOdcOptions options;
  options.node_cfg = node_cfg(13, 0.3);
  options.honest = proto::make_committee();
  options.byzantine = proto::make_committee_liar(
      proto::CommitteeLiarPeer::Mode::kFlipAll);
  options.byz_nodes = {1, 5, 9};
  const OdcResult result = run_download_odc(bank, options);
  EXPECT_TRUE(result.ok());
  EXPECT_EQ(result.published.size(), 10u);  // honest nodes only
}

TEST(DownloadOdc, WorksWithCrashModelNodes) {
  const SourceBank bank = SourceBank::build(bank_spec(13));
  DownloadOdcOptions options;
  options.node_cfg = node_cfg(12, 0.0);
  options.honest = proto::make_crash_multi();
  const OdcResult result = run_download_odc(bank, options);
  EXPECT_TRUE(result.ok());
}

TEST(DownloadOdc, PerNodeCostBeatsNaiveWhenKIsLarge) {
  // Theorem 4.1 vs 4.2: the Download-based collection divides the per-node
  // load across the committee.
  auto spec = bank_spec(21);
  spec.cells = 64;
  const SourceBank bank = SourceBank::build(spec);

  const OdcResult naive = run_naive_odc(bank, 32);

  DownloadOdcOptions options;
  options.node_cfg = node_cfg(32, 0.1);
  options.honest = proto::make_committee();
  const OdcResult dl = run_download_odc(bank, options);

  EXPECT_TRUE(naive.ok());
  EXPECT_TRUE(dl.ok());
  EXPECT_LT(dl.max_node_query_bits, naive.max_node_query_bits);
}

TEST(DownloadOdc, RequiresHonestFactory) {
  const SourceBank bank = SourceBank::build(bank_spec());
  DownloadOdcOptions options;
  options.node_cfg = node_cfg(8, 0.0);
  EXPECT_THROW(run_download_odc(bank, options), contract_violation);
}

}  // namespace
}  // namespace asyncdr::oracle
