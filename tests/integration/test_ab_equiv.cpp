// Golden A/B equivalence: the sparse link layout with bucketed broadcast
// fan-out (LinkMode::kSparse, the default) must be observationally
// IDENTICAL to the legacy dense layout (kDense) — byte-identical traces and
// run reports on the same seeded inputs, across all six protocols and the
// network paths that differ between the modes (mid-broadcast hook crashes,
// delivery stressors, same-arrival buckets). The one legitimate difference
// is RunReport::events: bucketing shrinks the engine event count — that IS
// the optimization — so the comparison normalizes that single field.
#include <gtest/gtest.h>

#include <cstddef>
#include <sstream>
#include <string>
#include <utility>

#include "adversary/crash_plan.hpp"
#include "chaos/stressors.hpp"
#include "common/rng.hpp"
#include "dr/world.hpp"
#include "protocols/runner.hpp"
#include "sim/network.hpp"
#include "sim/trace.hpp"

namespace asyncdr {
namespace {

struct Capture {
  std::string trace_text;
  std::string report_text;
  bool ok = false;
};

Capture run_mode(proto::Scenario s, sim::Network::LinkMode mode) {
  Capture cap;
  auto inner = std::move(s.instrument);
  s.instrument = [mode, inner = std::move(inner)](dr::World& world) {
    world.network().set_link_mode(mode);
    world.enable_trace();
    if (inner) inner(world);
  };
  s.post_run = [&cap](dr::World& world, const dr::RunReport& report) {
    const sim::Trace* trace = world.trace();
    ASSERT_NE(trace, nullptr);
    ASSERT_EQ(trace->dropped_events(), 0u);  // a truncated trace proves nothing
    std::string text;
    for (const sim::TraceEvent& ev : trace->events()) {
      text += ev.to_string();
      text += '\n';
    }
    cap.trace_text = std::move(text);
    dr::RunReport normalized = report;
    normalized.events = 0;  // the only field the modes may legitimately differ in
    cap.report_text = normalized.to_string();
    cap.ok = report.ok();
  };
  proto::run_scenario(s);
  return cap;
}

/// First differing line between two renderings, for a readable failure.
std::string first_diff(const std::string& a, const std::string& b) {
  std::istringstream sa(a), sb(b);
  std::string la, lb;
  std::size_t line = 0;
  while (true) {
    const bool ga = static_cast<bool>(std::getline(sa, la));
    const bool gb = static_cast<bool>(std::getline(sb, lb));
    ++line;
    if (!ga && !gb) return "(no difference found)";
    if (la != lb || ga != gb) {
      std::ostringstream os;
      os << "first difference at line " << line << ":\n  sparse: "
         << (ga ? la : "<end of trace>") << "\n  dense:  "
         << (gb ? lb : "<end of trace>");
      return os.str();
    }
  }
}

void expect_ab_identical(const char* what, const proto::Scenario& s) {
  const Capture sparse = run_mode(s, sim::Network::LinkMode::kSparse);
  const Capture dense = run_mode(s, sim::Network::LinkMode::kDense);
  ASSERT_FALSE(sparse.trace_text.empty()) << what;
  EXPECT_TRUE(sparse.ok) << what;
  EXPECT_EQ(sparse.ok, dense.ok) << what;
  EXPECT_TRUE(sparse.trace_text == dense.trace_text)
      << what << ": " << first_diff(sparse.trace_text, dense.trace_text);
  EXPECT_TRUE(sparse.report_text == dense.report_text)
      << what << ": " << first_diff(sparse.report_text, dense.report_text);
}

dr::Config small_cfg(std::size_t n, std::size_t k, double beta,
                     std::uint64_t seed, std::size_t message_bits = 256) {
  return dr::Config{
      .n = n, .k = k, .beta = beta, .message_bits = message_bits, .seed = seed};
}

// The randomized-committee protocols need k large enough that RandParams
// does not fall back to naive (see test_byz2cycle); everything else runs at
// genuinely small k so the suite stays fast.
dr::Config rand_cfg(std::uint64_t seed) {
  return small_cfg(1 << 12, 128, 0.125, seed, /*message_bits=*/1024);
}

TEST(AbEquivalence, NaiveFaultFree) {
  proto::Scenario s;
  s.cfg = small_cfg(256, 4, 0.0, 101, 128);
  s.honest = proto::make_naive();
  expect_ab_identical("naive", s);
}

TEST(AbEquivalence, CrashOneFixedLatencyBucketsMultipleRecipients) {
  // FixedLatency collapses every broadcast's arrivals onto one instant:
  // maximal bucket occupancy, the sparse path's most aggressive batching.
  proto::Scenario s;
  s.cfg = small_cfg(512, 8, 0.125, 102);
  s.honest = proto::make_crash_one();
  s.latency = proto::fixed_latency(1.0);
  s.crashes.add_at_time(3, 0.7);
  expect_ab_identical("crash_one", s);
}

TEST(AbEquivalence, CrashMultiWithMidBroadcastHookCrash) {
  // add_after_sends drives the pre-send hook: the sender dies between the
  // individual sends of a broadcast, cutting a prefix. Both modes must cut
  // the SAME prefix and burn the same message ids.
  proto::Scenario s;
  s.cfg = small_cfg(1024, 6, 0.34, 103);
  s.honest = proto::make_crash_multi();
  s.crashes.add_after_sends(1, 3);
  s.crashes.add_at_time(4, 1.3);
  expect_ab_identical("crash_multi", s);
}

TEST(AbEquivalence, CommitteeUnderLiarsAndDeliveryStressor) {
  // The stressor samples its RNG per recipient (copies, then extra delay per
  // copy): the bucketed broadcast must consume the stream in exactly the
  // dense per-recipient order or every later delay diverges.
  proto::Scenario s;
  s.cfg = small_cfg(256, 8, 0.25, 104, 1024);
  s.honest = proto::make_committee();
  s.byzantine =
      proto::make_committee_liar(proto::CommitteeLiarPeer::Mode::kFlipAll);
  s.byz_ids = proto::pick_faulty(s.cfg, s.cfg.max_faulty(), 104);
  s.latency = proto::fixed_latency(0.5);
  s.stressor = chaos::make_chaos_stressor(
      {.duplicate_prob = 0.4, .burst_prob = 0.3, .hold_max = 2.0});
  expect_ab_identical("committee", s);
}

TEST(AbEquivalence, TwoCycleUnderVoteStuffing) {
  proto::Scenario s;
  s.cfg = rand_cfg(105);
  s.honest = proto::make_two_cycle(2.0);
  s.byzantine = proto::make_vote_stuffer(2.0, /*target_segment=*/0);
  s.byz_ids = proto::pick_faulty(s.cfg, s.cfg.max_faulty(), 105);
  expect_ab_identical("two_cycle", s);
}

TEST(AbEquivalence, MultiCycleUnderSilentByzantine) {
  proto::Scenario s;
  s.cfg = rand_cfg(106);
  s.honest = proto::make_multi_cycle(2.0);
  s.byzantine = proto::make_silent_byz();
  s.byz_ids = proto::pick_faulty(s.cfg, s.cfg.max_faulty(), 106);
  expect_ab_identical("multi_cycle", s);
}

}  // namespace
}  // namespace asyncdr
