// Randomized scenario fuzzing: compose arbitrary model shapes, adversary
// mixes, and schedules from seeds and assert the Download predicate plus
// the complexity bounds on every one. This is the catch-all net under the
// targeted suites — any violation here is a seed-reproducible bug report.
#include <gtest/gtest.h>

#include "protocols/bounds.hpp"
#include "protocols/runner.hpp"

namespace asyncdr::proto {
namespace {

struct FuzzCase {
  dr::Config cfg;
  std::string description;
  Scenario scenario;
  std::size_t q_bound = 0;
};

/// Derives one full scenario from a seed.
FuzzCase make_case(std::uint64_t seed) {
  Rng rng(seed * 0x9e3779b97f4a7c15ull + 1);
  FuzzCase fuzz;

  dr::Config& cfg = fuzz.cfg;
  cfg.n = 256u << rng.below(5);            // 256 .. 4096
  cfg.k = 6 + 2 * rng.below(10);           // 6 .. 24
  cfg.message_bits = 64u << rng.below(5);  // 64 .. 1024
  cfg.seed = seed;

  // Protocol family first; beta regime must fit it.
  const std::uint64_t family = rng.below(4);
  Scenario& s = fuzz.scenario;
  s.cfg = cfg;

  switch (family) {
    case 0: {  // naive: any beta, any adversary
      s.cfg.beta = rng.uniform(0.0, 0.95);
      s.honest = make_naive();
      fuzz.description = "naive";
      fuzz.q_bound = bounds::naive_q(s.cfg);
      break;
    }
    case 1: {  // crash_one
      s.cfg.k = std::max<std::size_t>(s.cfg.k, 3);
      s.cfg.beta = 1.0 / static_cast<double>(s.cfg.k);
      s.honest = make_crash_one();
      fuzz.description = "crash_one";
      fuzz.q_bound = bounds::crash_one_q(s.cfg);
      break;
    }
    case 2: {  // crash_multi
      s.cfg.beta = rng.uniform(0.0, 0.85);
      s.honest = make_crash_multi({.fast_cancel = rng.flip()});
      fuzz.description = "crash_multi";
      fuzz.q_bound = bounds::crash_multi_q(s.cfg);
      break;
    }
    default: {  // committee
      s.cfg.beta = rng.uniform(0.0, 0.49);
      while (2 * s.cfg.max_faulty() + 1 > s.cfg.k) s.cfg.beta *= 0.8;
      s.honest = make_committee();
      fuzz.description = "committee";
      fuzz.q_bound = bounds::committee_q(s.cfg);
      break;
    }
  }

  // Adversary mix within the fault budget.
  const std::size_t t = s.cfg.max_faulty();
  const bool byzantine_model = family == 0 || family == 3;
  if (t > 0) {
    if (byzantine_model) {
      // Committee liars need the committee structure (2t+1 <= k), which the
      // naive rows' beta can violate — keep them to the committee family.
      switch (family == 3 ? rng.below(3) : rng.below(2)) {
        case 0: s.byzantine = make_silent_byz(); break;
        case 1: s.byzantine = make_garbage_byz(); break;
        default:
          s.byzantine = make_committee_liar(
              rng.flip() ? CommitteeLiarPeer::Mode::kFlipAll
                         : CommitteeLiarPeer::Mode::kEquivocate);
          break;
      }
      s.byz_ids = pick_faulty(s.cfg, 1 + rng.below(t), seed);
      fuzz.description += " + byz";
    } else {
      Rng crash_rng(seed + 17);
      const std::size_t victims = 1 + rng.below(t);
      switch (rng.below(4)) {
        case 0:
          s.crashes = adv::CrashPlan::silent_prefix(victims);
          break;
        case 1:
          s.crashes = adv::CrashPlan::random(s.cfg, crash_rng, victims, 8.0);
          break;
        case 2:
          s.crashes =
              adv::CrashPlan::staggered(s.cfg, crash_rng, victims, 1.5);
          break;
        default:
          s.crashes = adv::CrashPlan::partial_broadcast(
              s.cfg, crash_rng, victims, rng.below(2 * s.cfg.k));
          break;
      }
      fuzz.description += " + crashes";
    }
  }

  // Scheduling adversary.
  switch (rng.below(4)) {
    case 0: break;  // default seeded uniform
    case 1: s.latency = fixed_latency(0.2 + 0.7 * rng.uniform01()); break;
    case 2: s.latency = seniority_latency(); break;
    default: {
      std::vector<sim::PeerId> slow;
      for (sim::PeerId id = 0; id < s.cfg.k; ++id) {
        if (rng.flip(0.3)) slow.push_back(id);
      }
      s.latency = sender_delay_latency(slow, 1.0, 0.05);
      break;
    }
  }

  // Staggered starts for a random subset.
  for (sim::PeerId id = 0; id < s.cfg.k; ++id) {
    if (rng.flip(0.2)) s.start_times[id] = rng.uniform(0.0, 5.0);
  }
  return fuzz;
}

class Fuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Fuzz, ScenarioHoldsDownloadPredicateAndBound) {
  // 8 derived scenarios per top-level seed: 200 scenarios across the suite.
  for (std::uint64_t sub = 0; sub < 8; ++sub) {
    FuzzCase fuzz = make_case(GetParam() * 100 + sub);
    const dr::RunReport report = run_scenario(fuzz.scenario);
    EXPECT_TRUE(report.ok())
        << fuzz.description << " " << fuzz.scenario.cfg.to_string() << " -> "
        << report.to_string();
    EXPECT_LE(report.query_complexity, fuzz.q_bound)
        << fuzz.description << " " << fuzz.scenario.cfg.to_string();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Fuzz, ::testing::Range<std::uint64_t>(1, 26));

}  // namespace
}  // namespace asyncdr::proto
