// Cross-module integration matrix: every protocol against every applicable
// adversary family on a shared instance, plus a full oracle pipeline run —
// the closest thing to the paper's "system" operating end to end.
#include <gtest/gtest.h>

#include <tuple>

#include "oracle/odc.hpp"
#include "protocols/bounds.hpp"
#include "protocols/lowerbound.hpp"
#include "protocols/runner.hpp"

namespace asyncdr::proto {
namespace {

enum Protocol { kNaive, kCrashOne, kCrashMulti, kCommittee, kTwoCycle, kMultiCycle };
enum Adversary { kNone, kCrashes, kByzantine, kByzWithScheduling };

struct Case {
  Protocol protocol;
  Adversary adversary;
};

class Matrix : public ::testing::TestWithParam<std::tuple<int, int, std::uint64_t>> {};

TEST_P(Matrix, ProtocolSurvivesAdversary) {
  const auto [proto_id, adv_id, seed] = GetParam();

  // Instance sized so every protocol is in its comfortable regime.
  dr::Config c;
  c.message_bits = 2048;
  c.seed = seed;
  PeerFactory honest;
  double beta = 0.0;
  switch (proto_id) {
    case kNaive:
      c.n = 1 << 10; c.k = 8; beta = 0.5;
      honest = make_naive();
      break;
    case kCrashOne:
      c.n = 1 << 12; c.k = 8; beta = 1.0 / 8;
      honest = make_crash_one();
      break;
    case kCrashMulti:
      c.n = 1 << 12; c.k = 12; beta = 0.5;
      honest = make_crash_multi();
      break;
    case kCommittee:
      c.n = 1 << 10; c.k = 13; beta = 0.3;
      honest = make_committee();
      break;
    case kTwoCycle:
      c.n = 1 << 12; c.k = 128; beta = 0.125;
      honest = make_two_cycle(2.0);
      break;
    case kMultiCycle:
      c.n = 1 << 12; c.k = 128; beta = 0.125;
      honest = make_multi_cycle(2.0);
      break;
  }
  c.beta = beta;

  Scenario s;
  s.cfg = c;
  s.honest = honest;
  const std::size_t t = c.max_faulty();
  const bool crash_model = proto_id == kCrashOne || proto_id == kCrashMulti;

  switch (adv_id) {
    case kNone:
      break;
    case kCrashes: {
      if (t == 0) GTEST_SKIP() << "no fault budget";
      Rng rng(seed);
      s.crashes = adv::CrashPlan::random(c, rng, t, 6.0);
      break;
    }
    case kByzantine: {
      if (crash_model || t == 0) {
        GTEST_SKIP() << "Byzantine behaviour out of the crash protocols' model";
      }
      s.byzantine = proto_id == kCommittee
                        ? make_committee_liar(CommitteeLiarPeer::Mode::kFlipAll)
                        : make_vote_stuffer(2.0, 0);
      s.byz_ids = pick_faulty(c, t, seed);
      break;
    }
    case kByzWithScheduling: {
      if (crash_model || t == 0) GTEST_SKIP();
      s.byzantine = make_garbage_byz();
      s.byz_ids = pick_faulty(c, t, seed);
      s.latency = seniority_latency();
      break;
    }
  }

  const auto report = run_scenario(s);
  EXPECT_TRUE(report.ok()) << report.to_string();
}

INSTANTIATE_TEST_SUITE_P(
    FullMatrix, Matrix,
    ::testing::Combine(::testing::Values(0, 1, 2, 3, 4, 5),
                       ::testing::Values(0, 1, 2, 3),
                       ::testing::Values<std::uint64_t>(1, 2)));

TEST(Pipeline, OracleWithRandomizedDownloadUnderNodeAttack) {
  // Full §4 pipeline: Byzantine sources AND Byzantine oracle nodes, with
  // the randomized Download protocol doing the collection.
  oracle::SourceBank::Spec spec;
  spec.sources = 6;
  spec.cells = 32;
  spec.value_bits = 8;
  spec.psi = 0.3;
  spec.seed = 3;
  const auto bank = oracle::SourceBank::build(spec);

  oracle::DownloadOdcOptions options;
  options.node_cfg = dr::Config{
      .n = 1, .k = 128, .beta = 0.125, .message_bits = 1024, .seed = 17};
  options.honest = make_two_cycle(2.0);
  options.byzantine = make_vote_stuffer(2.0, 0);
  options.byz_nodes = pick_faulty(options.node_cfg,
                                  options.node_cfg.max_faulty());
  const auto result = oracle::run_download_odc(bank, options);
  EXPECT_TRUE(result.ok());
  EXPECT_EQ(result.published.size(), 128u - 16u);
}

TEST(Pipeline, UpperAndLowerBoundsAreConsistent) {
  // The same Algorithm 2 implementation that passes every crash-model test
  // must fall to the Theorem 3.1 adversary once faults turn Byzantine and
  // beta reaches 1/2 — the paper's dichotomy, end to end.
  dr::Config c{.n = 2048, .k = 10, .beta = 0.5, .message_bits = 512, .seed = 23};

  Scenario crash_side;
  crash_side.cfg = c;
  crash_side.honest = make_crash_multi();
  crash_side.crashes = adv::CrashPlan::silent_prefix(c.max_faulty());
  EXPECT_TRUE(run_scenario(crash_side).ok());

  const auto attack = run_deterministic_majority_attack(c, make_crash_multi());
  EXPECT_TRUE(attack.attackable);
  EXPECT_TRUE(attack.succeeded);
}

}  // namespace
}  // namespace asyncdr::proto
