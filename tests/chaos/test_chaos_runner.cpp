// The sweep runner: green on healthy protocols, byte-deterministic
// regardless of thread count, catches the injected committee bug and
// shrinks it to a small repro, and classifies stalls with diagnostics.
#include "chaos/runner.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/check.hpp"

namespace asyncdr::chaos {
namespace {

TEST(ChaosRunner, SmallSweepOverDefaultGridIsGreen) {
  SweepOptions options;
  options.seeds = 10;
  options.threads = 2;
  options.chaos.n_cap = 512;  // keep the tier-1 suite fast
  const SweepReport report = ChaosRunner(options).run();
  EXPECT_EQ(report.cases, 40u);
  EXPECT_EQ(report.passed, report.cases) << report.to_string(true);
  EXPECT_TRUE(report.failures.empty());
  EXPECT_EQ(report.per_protocol.size(), 4u);
}

TEST(ChaosRunner, ReportIsByteIdenticalAcrossThreadCounts) {
  SweepOptions options;
  options.seeds = 6;
  options.chaos.n_cap = 256;
  options.threads = 1;
  const std::string serial = ChaosRunner(options).run().to_string(true);
  options.threads = 4;
  const std::string threaded = ChaosRunner(options).run().to_string(true);
  EXPECT_EQ(serial, threaded);
  options.threads = 3;
  EXPECT_EQ(serial, ChaosRunner(options).run().to_string(true));
}

TEST(ChaosRunner, BeyondModelFailuresCountAsDegradedNotViolations) {
  SweepOptions options;
  options.protocols = {"naive", "committee"};
  options.seeds = 8;
  options.threads = 2;
  options.chaos.n_cap = 256;
  options.chaos.beyond_model = true;
  const SweepReport report = ChaosRunner(options).run();
  // Beyond the model nothing is a violation; failures (if any) are counted
  // as graceful-degradation data instead.
  EXPECT_TRUE(report.failures.empty()) << report.to_string(true);
  EXPECT_EQ(report.passed, report.cases);
}

TEST(ChaosRunner, InjectedCommitteeBugIsCaughtAndShrunk) {
  SweepOptions options;
  options.protocols = {"committee"};
  options.seeds = 40;
  options.threads = 2;
  options.chaos.inject_committee_bug = true;
  const SweepReport report = ChaosRunner(options).run();
  ASSERT_FALSE(report.failures.empty())
      << "the planted vote-threshold off-by-one was never triggered";
  ASSERT_EQ(report.repros.size(), report.failures.size());
  for (const ShrunkRepro& repro : report.repros) {
    EXPECT_FALSE(repro.violation.empty());
    EXPECT_GT(repro.shrink_runs, 0u);
    EXPECT_NE(repro.command_line.find("--inject-bug committee-threshold"),
              std::string::npos)
        << repro.command_line;
  }
  // The acceptance bar: at least one failure shrinks into the small-repro
  // regime (k <= 10, n <= 512).
  const bool small = std::any_of(
      report.repros.begin(), report.repros.end(), [](const ShrunkRepro& r) {
        return r.cfg.k <= 10 && r.cfg.n <= 512;
      });
  EXPECT_TRUE(small) << report.to_string();
}

TEST(ChaosRunner, ShrunkReproReplaysAsAOneLinerSweep) {
  // Find one failure, shrink it, then replay the shrunk (protocol, seed,
  // options) triple as its own single-case sweep: it must fail again with
  // the same violation — the repro line is self-contained.
  SweepOptions options;
  options.protocols = {"committee"};
  options.seeds = 40;
  options.threads = 2;
  options.chaos.inject_committee_bug = true;
  options.shrink = true;
  const SweepReport report = ChaosRunner(options).run();
  ASSERT_FALSE(report.repros.empty());
  const ShrunkRepro& repro = report.repros.front();

  SweepOptions replay;
  replay.protocols = {repro.protocol};
  replay.seed_base = repro.seed;
  replay.seeds = 1;
  replay.threads = 1;
  replay.shrink = false;
  replay.chaos = repro.options;
  const SweepReport r = ChaosRunner(replay).run();
  ASSERT_EQ(r.failures.size(), 1u);
  EXPECT_EQ(r.failures[0].violation, repro.violation);
}

TEST(ChaosRunner, BudgetExhaustionClassifiesAsStallWithDiagnostics) {
  const ProtocolProfile* committee = find_protocol("committee");
  ASSERT_NE(committee, nullptr);
  // An absurdly small event budget forces a mid-protocol stop; the runner
  // must classify it as a stall and attach the per-peer diagnostics. (The
  // budget is tighter than it looks: bucketed broadcast fan-out delivers a
  // whole same-arrival broadcast in ONE engine event.)
  const CaseResult result =
      ChaosRunner::run_case(*committee, 3, ChaosOptions{}, /*max_events=*/10);
  EXPECT_TRUE(result.report.budget_exhausted);
  EXPECT_NE(result.violation.find("stalled: event budget exhausted"),
            std::string::npos)
      << result.violation;
  EXPECT_FALSE(result.report.stall.empty());
  EXPECT_NE(result.report.stall.find("stuck peer"), std::string::npos)
      << result.report.stall;
}

TEST(ChaosRunner, RecoverySweepOverCrashProtocolsIsGreen) {
  // The recovery chaos campaign CI runs (capped): restarts, crash-point
  // kills, and journal corruption over both recoverable protocols — every
  // case must still satisfy the correctness predicate.
  SweepOptions options;
  options.protocols = {"crash_one", "crash_multi"};
  options.seeds = 12;
  options.threads = 2;
  options.chaos.n_cap = 512;
  options.chaos.recovery = true;
  const SweepReport report = ChaosRunner(options).run();
  EXPECT_EQ(report.cases, 24u);
  EXPECT_EQ(report.passed, report.cases) << report.to_string(true);
  EXPECT_TRUE(report.failures.empty());
}

TEST(ChaosRunner, RecoverySweepIsDeterministicAcrossThreadCounts) {
  SweepOptions options;
  options.protocols = {"crash_multi"};
  options.seeds = 6;
  options.chaos.n_cap = 256;
  options.chaos.recovery = true;
  options.threads = 1;
  const std::string serial = ChaosRunner(options).run().to_string(true);
  options.threads = 4;
  EXPECT_EQ(serial, ChaosRunner(options).run().to_string(true));
}

TEST(ChaosRunner, RejectsUnknownProtocolAndEmptyGrid) {
  SweepOptions bad;
  bad.protocols = {"no_such_protocol"};
  bad.seeds = 1;
  EXPECT_THROW(ChaosRunner(bad).run(), contract_violation);
  SweepOptions zero;
  zero.seeds = 0;
  EXPECT_THROW(ChaosRunner{zero}, contract_violation);
}

}  // namespace
}  // namespace asyncdr::chaos
