// Case sampling: deterministic in (protocol, seed, options), respects the
// shrinkable caps, and marks beyond-model cases as such.
#include "chaos/injectors.hpp"

#include <gtest/gtest.h>

#include <set>

namespace asyncdr::chaos {
namespace {

const ProtocolProfile& profile(const std::string& name) {
  const ProtocolProfile* p = find_protocol(name);
  EXPECT_NE(p, nullptr) << name;
  return *p;
}

TEST(Registry, KnowsTheSweepableProtocols) {
  for (const char* name :
       {"naive", "crash_one", "crash_multi", "committee", "two_cycle",
        "multi_cycle"}) {
    EXPECT_NE(find_protocol(name), nullptr) << name;
  }
  EXPECT_EQ(find_protocol("no_such_protocol"), nullptr);
}

TEST(SampleCase, PureFunctionOfItsInputs) {
  const ChaosOptions options;
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const ChaosCase a = sample_case(profile("committee"), seed, options);
    const ChaosCase b = sample_case(profile("committee"), seed, options);
    EXPECT_EQ(a.description, b.description);
    EXPECT_EQ(a.cfg.n, b.cfg.n);
    EXPECT_EQ(a.cfg.k, b.cfg.k);
    EXPECT_DOUBLE_EQ(a.cfg.beta, b.cfg.beta);
    EXPECT_EQ(a.faults, b.faults);
    EXPECT_EQ(a.q_bound, b.q_bound);
  }
}

TEST(SampleCase, SeedsAndProtocolsDecorrelate) {
  const ChaosOptions options;
  std::set<std::string> descriptions;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    descriptions.insert(sample_case(profile("naive"), seed, options).description);
    descriptions.insert(
        sample_case(profile("committee"), seed, options).description);
  }
  // All 20 sampled cases are distinct adversary compositions.
  EXPECT_EQ(descriptions.size(), 20u);
}

TEST(SampleCase, CapsClampTheSampledShape) {
  ChaosOptions options;
  options.n_cap = 16;
  options.k_cap = 3;
  options.fault_cap = 1;
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    const ChaosCase cs = sample_case(profile("committee"), seed, options);
    EXPECT_EQ(cs.cfg.n, 16u);
    EXPECT_EQ(cs.cfg.k, 3u);
    EXPECT_LE(cs.faults, 1u);
  }
}

TEST(SampleCase, ZeroSpreadCollapsesToTheFaithfulSchedule) {
  ChaosOptions options;
  options.latency_spread = 0.0;
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    const ChaosCase cs = sample_case(profile("committee"), seed, options);
    EXPECT_TRUE(cs.timing_faithful) << cs.description;
    EXPECT_TRUE(cs.scenario.start_times.empty()) << cs.description;
  }
}

TEST(SampleCase, BeyondModelInstallsAStressorAndIsMarked) {
  ChaosOptions options;
  options.beyond_model = true;
  const ChaosCase cs = sample_case(profile("naive"), 5, options);
  EXPECT_TRUE(cs.beyond_model);
  EXPECT_FALSE(cs.timing_faithful);
  EXPECT_TRUE(static_cast<bool>(cs.scenario.stressor));
  EXPECT_NE(cs.description.find("stress{"), std::string::npos);
}

TEST(SampleCase, SingleCrashProtocolPinsBetaToOneCrash) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const ChaosCase cs = sample_case(profile("crash_one"), seed, ChaosOptions{});
    EXPECT_EQ(cs.cfg.max_faulty(), 1u) << cs.description;
    EXPECT_LE(cs.faults, 1u);
  }
}

TEST(SampleCase, CrashOnlyProfilesNeverGoByzantine) {
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    const ChaosCase cs =
        sample_case(profile("crash_multi"), seed, ChaosOptions{});
    EXPECT_TRUE(cs.scenario.byz_ids.empty()) << cs.description;
  }
}

TEST(ToFlags, RendersTheReproFlags) {
  ChaosOptions options;
  options.n_cap = 64;
  options.k_cap = 5;
  options.fault_cap = 2;
  options.latency_spread = 0.25;
  options.inject_committee_bug = true;
  EXPECT_EQ(options.to_flags(),
            "--n-cap 64 --k-cap 5 --fault-cap 2 --latency-spread 0.250 "
            "--inject-bug committee-threshold");
}

TEST(ToFlags, RendersTheRecoveryFlag) {
  ChaosOptions options;
  options.recovery = true;
  EXPECT_NE(options.to_flags().find("--recovery 1"), std::string::npos);
}

TEST(SampleCase, RecoveryOnlyArmsOnRecoverableProfiles) {
  ChaosOptions options;
  options.recovery = true;
  EXPECT_TRUE(profile("crash_one").recoverable);
  EXPECT_TRUE(profile("crash_multi").recoverable);
  EXPECT_FALSE(profile("committee").recoverable);
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const ChaosCase cs = sample_case(profile("committee"), seed, options);
    EXPECT_FALSE(cs.scenario.recovery.enabled()) << cs.description;
    EXPECT_EQ(cs.description.find("recovery{"), std::string::npos);
  }
}

TEST(SampleCase, RecoveryCasesGetAFactoryAndDropTheBounds) {
  ChaosOptions options;
  options.recovery = true;
  std::size_t with_restarts = 0, with_kills = 0, with_corruption = 0;
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    const ChaosCase cs =
        sample_case(profile("crash_multi"), seed, options);
    EXPECT_TRUE(cs.scenario.recovery.enabled()) << cs.description;
    EXPECT_NE(cs.description.find("recovery{"), std::string::npos);
    // Complexity bounds assume crash-stop: recovery cases keep only the
    // correctness predicate.
    EXPECT_EQ(cs.q_bound, 0u);
    EXPECT_EQ(cs.m_bound, 0u);
    EXPECT_DOUBLE_EQ(cs.t_bound, 0.0);
    EXPECT_LE(cs.faults, cs.cfg.max_faulty()) << cs.description;
    if (cs.scenario.crashes.has_restarts()) ++with_restarts;
    if (!cs.scenario.recovery.kills.empty()) ++with_kills;
    if (!cs.scenario.recovery.corruptions.empty()) ++with_corruption;
  }
  // The sampler exercises every recovery flavour across a modest sweep.
  EXPECT_GT(with_restarts, 0u);
  EXPECT_GT(with_kills, 0u);
  EXPECT_GT(with_corruption, 0u);
}

TEST(SampleCase, RecoverySamplingStaysDeterministic) {
  ChaosOptions options;
  options.recovery = true;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const ChaosCase a = sample_case(profile("crash_one"), seed, options);
    const ChaosCase b = sample_case(profile("crash_one"), seed, options);
    EXPECT_EQ(a.description, b.description);
    EXPECT_EQ(a.scenario.recovery.kills.size(),
              b.scenario.recovery.kills.size());
    EXPECT_EQ(a.scenario.crashes.to_string(), b.scenario.crashes.to_string());
  }
}

}  // namespace
}  // namespace asyncdr::chaos
