// Beyond-model stressors: duplication and burst holds at the Network layer,
// and protocol-level tolerance of both under full scenarios.
#include "chaos/stressors.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <type_traits>
#include <vector>

#include "common/check.hpp"
#include "protocols/runner.hpp"
#include "sim/engine.hpp"
#include "sim/network.hpp"

namespace asyncdr::chaos {
namespace {

struct TestPayload final : sim::Payload {
  explicit TestPayload(int tag = 0) : tag_(tag) {}
  std::size_t size_bits() const override { return 8; }
  std::string type_name() const override { return "TestPayload"; }
  int tag_;
};

struct Recorder final : sim::Receiver {
  void deliver(const sim::Message& msg) override {
    tags.push_back(static_cast<const TestPayload&>(*msg.payload).tag_);
  }
  std::vector<int> tags;
};

struct NetFixture : ::testing::Test {
  NetFixture() : net(engine, 3, 64) {
    for (sim::PeerId i = 0; i < 3; ++i) net.attach(i, &peers[i]);
  }
  sim::Engine engine;
  sim::Network net;
  Recorder peers[3];
};

struct AlwaysDuplicate final : sim::DeliveryStressor {
  std::size_t copies(const sim::Message&) override { return 2; }
  sim::Time extra_delay(const sim::Message&, std::size_t copy) override {
    return copy == 0 ? 0.0 : 0.5;
  }
};

TEST_F(NetFixture, StressorDuplicatesDeliveriesButChargesSenderOnce) {
  net.set_delivery_stressor(std::make_unique<AlwaysDuplicate>());
  net.send(0, 1, std::make_shared<TestPayload>(7));
  engine.run();
  // Two deliveries of the same message...
  ASSERT_EQ(peers[1].tags.size(), 2u);
  EXPECT_EQ(peers[1].tags[0], 7);
  EXPECT_EQ(peers[1].tags[1], 7);
  // ...but the retransmission is the network's fault, not the sender's: the
  // sender's message-complexity accounting is charged exactly once.
  EXPECT_EQ(net.sent_units(0), 1u);
  // The duplicate trails the primary.
  EXPECT_DOUBLE_EQ(engine.now(), 1.5);
}

struct HoldFirst final : sim::DeliveryStressor {
  std::size_t copies(const sim::Message&) override { return 1; }
  sim::Time extra_delay(const sim::Message&, std::size_t) override {
    return first_seen++ == 0 ? 2.0 : 0.0;
  }
  int first_seen = 0;
};

TEST_F(NetFixture, BurstHoldReordersAcrossLaterTraffic) {
  net.set_delivery_stressor(std::make_unique<HoldFirst>());
  net.send(0, 1, std::make_shared<TestPayload>(1));
  net.send(0, 1, std::make_shared<TestPayload>(2));
  engine.run();
  // The held first message (arrival 1 + hold 2 = 3) lands after the second
  // (departs 1, arrives 2): a burst reorder the base model never produces.
  ASSERT_EQ(peers[1].tags.size(), 2u);
  EXPECT_EQ(peers[1].tags[0], 2);
  EXPECT_EQ(peers[1].tags[1], 1);
}

struct Replicate final : sim::DeliveryStressor {
  explicit Replicate(std::size_t n) : n_(n) {}
  std::size_t copies(const sim::Message&) override { return n_; }
  sim::Time extra_delay(const sim::Message&, std::size_t) override {
    return 0.0;
  }
  std::size_t n_;
};

// Regression: per-link in-flight counters are 64-bit. A replication
// stressor multiplies copies per message far past what a 32-bit assumption
// tolerates in aggregate; the counters must track every scheduled copy up
// and back down exactly.
TEST_F(NetFixture, HighCopyCountReplicationKeepsCountersExact) {
  static_assert(
      std::is_same_v<decltype(net.in_flight(0, 1)), std::uint64_t>,
      "in-flight counters must be 64-bit for replication stressors");
  static_assert(std::is_same_v<decltype(net.total_in_flight()), std::uint64_t>,
                "total in-flight must be 64-bit");
  constexpr std::size_t kCopies = 1u << 17;  // 131072 copies of one send
  net.set_delivery_stressor(std::make_unique<Replicate>(kCopies));
  net.send(0, 1, std::make_shared<TestPayload>(9));
  EXPECT_EQ(net.in_flight(0, 1), kCopies);
  EXPECT_EQ(net.total_in_flight(), kCopies);
  // The sender is still charged once: copies are the adversary's forgeries.
  EXPECT_EQ(net.sent_units(0), 1u);
  engine.run();
  EXPECT_EQ(peers[1].tags.size(), kCopies);
  EXPECT_EQ(net.total_deliveries(), kCopies);
  EXPECT_EQ(net.in_flight(0, 1), 0u);
  EXPECT_EQ(net.total_in_flight(), 0u);
}

// Same stressor through the bucketed broadcast path: all same-arrival
// copies across all recipients ride one scheduled event per bucket, and the
// counters still reconcile.
TEST_F(NetFixture, HighCopyCountReplicationThroughBroadcastBuckets) {
  constexpr std::size_t kCopies = 4096;
  net.set_delivery_stressor(std::make_unique<Replicate>(kCopies));
  net.broadcast(0, std::make_shared<TestPayload>(5));
  EXPECT_EQ(net.total_in_flight(), 2 * kCopies);  // two recipients
  // Zero extra delay: every copy shares one arrival time -> one bucket.
  EXPECT_EQ(engine.pending(), 1u);
  engine.run();
  EXPECT_EQ(peers[1].tags.size(), kCopies);
  EXPECT_EQ(peers[2].tags.size(), kCopies);
  EXPECT_EQ(net.total_in_flight(), 0u);
}

TEST(ChaosStressorKnobs, RejectsInvalidProbabilities) {
  EXPECT_THROW(ChaosStressor(Rng(1), {.duplicate_prob = 1.5}),
               contract_violation);
  EXPECT_THROW(ChaosStressor(Rng(1), {.burst_prob = -0.1}),
               contract_violation);
  EXPECT_THROW(ChaosStressor(Rng(1), {.hold_max = -1.0}), contract_violation);
}

proto::Scenario committee_scenario(std::size_t n, std::size_t k, double beta,
                                   std::uint64_t seed) {
  proto::Scenario s;
  s.cfg.n = n;
  s.cfg.k = k;
  s.cfg.beta = beta;
  s.cfg.seed = seed;
  s.cfg.message_bits = 64;
  s.honest = proto::make_committee();
  return s;
}

TEST(ChaosStressorProtocol, CommitteeToleratesUniversalDuplication) {
  proto::Scenario s = committee_scenario(256, 9, 0.3, 11);
  s.stressor = make_chaos_stressor(
      {.duplicate_prob = 1.0, .burst_prob = 0.0, .hold_max = 2.0});
  const dr::RunReport report = proto::run_scenario(s);
  EXPECT_TRUE(report.ok()) << report.to_string();
}

TEST(ChaosStressorProtocol, DuplicatedLiarVotesDoNotDoubleCount) {
  // t = 1, so the accept threshold is 2: if a duplicated delivery of the
  // liar's vote were counted twice, one liar could decide wrong bits alone.
  proto::Scenario s = committee_scenario(128, 9, 0.12, 23);
  s.byzantine =
      proto::make_committee_liar(proto::CommitteeLiarPeer::Mode::kFlipAll);
  s.byz_ids = {2};
  s.stressor = make_chaos_stressor(
      {.duplicate_prob = 1.0, .burst_prob = 0.0, .hold_max = 2.0});
  const dr::RunReport report = proto::run_scenario(s);
  EXPECT_TRUE(report.ok()) << report.to_string();
}

TEST(ChaosStressorProtocol, CommitteeSurvivesBurstReordering) {
  proto::Scenario s = committee_scenario(256, 7, 0.25, 31);
  s.stressor = make_chaos_stressor(
      {.duplicate_prob = 0.3, .burst_prob = 0.6, .hold_max = 3.0});
  const dr::RunReport report = proto::run_scenario(s);
  EXPECT_TRUE(report.ok()) << report.to_string();
}

}  // namespace
}  // namespace asyncdr::chaos
