#include "adversary/crash_plan.hpp"

#include <gtest/gtest.h>

#include <set>

#include "common/check.hpp"

namespace asyncdr::adv {
namespace {

dr::Config cfg() {
  return dr::Config{.n = 64, .k = 10, .beta = 0.5, .message_bits = 32,
                    .seed = 1};
}

TEST(CrashPlan, ManualConstruction) {
  CrashPlan plan;
  plan.add_at_time(3, 1.5);
  plan.add_after_sends(7, 4);
  EXPECT_EQ(plan.size(), 2u);
  EXPECT_EQ(plan.specs()[0].peer, 3u);
  EXPECT_EQ(plan.specs()[0].kind, CrashSpec::Kind::kAtTime);
  EXPECT_EQ(plan.specs()[1].sends, 4u);
  EXPECT_NE(plan.to_string().find("p3@t=1.5"), std::string::npos);
  EXPECT_NE(plan.to_string().find("p7@sends=4"), std::string::npos);
}

TEST(CrashPlan, RandomPicksDistinctVictimsWithinBudget) {
  Rng rng(9);
  const CrashPlan plan = CrashPlan::random(cfg(), rng, 5, 10.0);
  EXPECT_EQ(plan.size(), 5u);
  std::set<sim::PeerId> victims;
  for (const auto& spec : plan.specs()) {
    victims.insert(spec.peer);
    if (spec.kind == CrashSpec::Kind::kAtTime) {
      EXPECT_GE(spec.at, 0.0);
      EXPECT_LE(spec.at, 10.0);
    }
  }
  EXPECT_EQ(victims.size(), 5u);
  EXPECT_THROW(CrashPlan::random(cfg(), rng, 6, 10.0), contract_violation);
}

TEST(CrashPlan, SilentPrefixTargetsLowIdsAtZero) {
  const CrashPlan plan = CrashPlan::silent_prefix(3);
  ASSERT_EQ(plan.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(plan.specs()[i].peer, i);
    EXPECT_DOUBLE_EQ(plan.specs()[i].at, 0.0);
  }
}

TEST(CrashPlan, StaggeredSpacing) {
  Rng rng(3);
  const CrashPlan plan = CrashPlan::staggered(cfg(), rng, 4, 2.0);
  ASSERT_EQ(plan.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_DOUBLE_EQ(plan.specs()[i].at, 2.0 * static_cast<double>(i + 1));
  }
}

TEST(CrashPlan, PartialBroadcastUsesSendCounts) {
  Rng rng(4);
  const CrashPlan plan = CrashPlan::partial_broadcast(cfg(), rng, 2, 6);
  ASSERT_EQ(plan.size(), 2u);
  for (const auto& spec : plan.specs()) {
    EXPECT_EQ(spec.kind, CrashSpec::Kind::kAfterSends);
    EXPECT_EQ(spec.sends, 6u);
  }
}

TEST(CrashPlan, ApplyMarksFaultyAndEnforcesBudget) {
  dr::World world(cfg(), BitVec(64));
  CrashPlan plan;
  plan.add_at_time(0, 1.0);
  plan.add_after_sends(1, 2);
  plan.apply(world);
  EXPECT_TRUE(world.is_faulty(0));
  EXPECT_TRUE(world.is_faulty(1));
  EXPECT_EQ(world.faulty_count(), 2u);

  CrashPlan over;
  for (sim::PeerId id = 2; id < 8; ++id) over.add_at_time(id, 0.0);
  EXPECT_THROW(over.apply(world), contract_violation);  // budget t = 5
}

TEST(CrashPlan, DeterministicForSeed) {
  Rng a(42), b(42);
  const CrashPlan plan_a = CrashPlan::random(cfg(), a, 4, 5.0);
  const CrashPlan plan_b = CrashPlan::random(cfg(), b, 4, 5.0);
  EXPECT_EQ(plan_a.to_string(), plan_b.to_string());
}

TEST(CrashPlan, RestartSpecsRenderAndFlag) {
  CrashPlan plan;
  plan.add_at_time(3, 1.0);
  EXPECT_FALSE(plan.has_restarts());
  plan.add_restart_at(3, 2.5);
  plan.add_restart_after(4, 1.0);
  EXPECT_TRUE(plan.has_restarts());
  EXPECT_NE(plan.to_string().find("p3@restart=2.5"), std::string::npos);
  EXPECT_NE(plan.to_string().find("p4@restart+1"), std::string::npos);
}

TEST(CrashPlan, RestartStormCrashesThenRevivesAllVictims) {
  Rng rng(8);
  const CrashPlan plan =
      CrashPlan::restart_storm(cfg(), rng, 3, /*spacing=*/1.0,
                               /*storm_at=*/5.0, /*window=*/2.0);
  ASSERT_EQ(plan.size(), 6u);  // 3 crashes + 3 restarts
  std::set<sim::PeerId> crashed, revived;
  for (const auto& spec : plan.specs()) {
    if (spec.kind == CrashSpec::Kind::kAtTime) {
      crashed.insert(spec.peer);
      EXPECT_LE(spec.at, 3.0);  // staggered, one per spacing
    } else {
      ASSERT_EQ(spec.kind, CrashSpec::Kind::kRestartAfter);
      revived.insert(spec.peer);
      EXPECT_GE(spec.at, 5.0);  // the burst starts at storm_at
      EXPECT_LE(spec.at, 7.0);  // ...and stays inside the window
    }
  }
  EXPECT_EQ(crashed, revived);
  EXPECT_EQ(crashed.size(), 3u);
  // The storm must start after the last crash.
  EXPECT_THROW(CrashPlan::restart_storm(cfg(), rng, 3, 2.0, 5.0, 1.0),
               contract_violation);
}

TEST(CrashPlan, FlappingAlternatesKillAndRevivePerCycle) {
  Rng rng(9);
  const CrashPlan plan = CrashPlan::flapping(cfg(), rng, /*count=*/2,
                                             /*cycles=*/3, /*period=*/4.0,
                                             /*up_delay=*/1.0, /*jitter=*/0.5);
  ASSERT_EQ(plan.size(), 12u);  // 2 victims x 3 cycles x (kill + revive)
  for (std::size_t i = 0; i < plan.size(); i += 2) {
    const CrashSpec& down = plan.specs()[i];
    const CrashSpec& up = plan.specs()[i + 1];
    EXPECT_EQ(down.kind, CrashSpec::Kind::kAtTime);
    EXPECT_EQ(up.kind, CrashSpec::Kind::kRestartAt);
    EXPECT_EQ(down.peer, up.peer);
    EXPECT_GT(up.at, down.at);
    EXPECT_LT(up.at - down.at, 4.0);  // revives before its next kill
  }
  // A flap that cannot revive before the next kill is rejected.
  EXPECT_THROW(CrashPlan::flapping(cfg(), rng, 2, 2, 1.0, 1.0),
               contract_violation);
}

TEST(CrashPlan, RestartInstructionsNeedRecoveryEnabledWorld) {
  dr::World world(cfg(), BitVec(64));
  CrashPlan plan;
  plan.add_at_time(0, 1.0);
  plan.add_restart_after(0, 2.0);
  EXPECT_THROW(plan.apply(world), contract_violation);
}

}  // namespace
}  // namespace asyncdr::adv
