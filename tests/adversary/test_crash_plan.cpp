#include "adversary/crash_plan.hpp"

#include <gtest/gtest.h>

#include <set>

#include "common/check.hpp"

namespace asyncdr::adv {
namespace {

dr::Config cfg() {
  return dr::Config{.n = 64, .k = 10, .beta = 0.5, .message_bits = 32,
                    .seed = 1};
}

TEST(CrashPlan, ManualConstruction) {
  CrashPlan plan;
  plan.add_at_time(3, 1.5);
  plan.add_after_sends(7, 4);
  EXPECT_EQ(plan.size(), 2u);
  EXPECT_EQ(plan.specs()[0].peer, 3u);
  EXPECT_EQ(plan.specs()[0].kind, CrashSpec::Kind::kAtTime);
  EXPECT_EQ(plan.specs()[1].sends, 4u);
  EXPECT_NE(plan.to_string().find("p3@t=1.5"), std::string::npos);
  EXPECT_NE(plan.to_string().find("p7@sends=4"), std::string::npos);
}

TEST(CrashPlan, RandomPicksDistinctVictimsWithinBudget) {
  Rng rng(9);
  const CrashPlan plan = CrashPlan::random(cfg(), rng, 5, 10.0);
  EXPECT_EQ(plan.size(), 5u);
  std::set<sim::PeerId> victims;
  for (const auto& spec : plan.specs()) {
    victims.insert(spec.peer);
    if (spec.kind == CrashSpec::Kind::kAtTime) {
      EXPECT_GE(spec.at, 0.0);
      EXPECT_LE(spec.at, 10.0);
    }
  }
  EXPECT_EQ(victims.size(), 5u);
  EXPECT_THROW(CrashPlan::random(cfg(), rng, 6, 10.0), contract_violation);
}

TEST(CrashPlan, SilentPrefixTargetsLowIdsAtZero) {
  const CrashPlan plan = CrashPlan::silent_prefix(3);
  ASSERT_EQ(plan.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(plan.specs()[i].peer, i);
    EXPECT_DOUBLE_EQ(plan.specs()[i].at, 0.0);
  }
}

TEST(CrashPlan, StaggeredSpacing) {
  Rng rng(3);
  const CrashPlan plan = CrashPlan::staggered(cfg(), rng, 4, 2.0);
  ASSERT_EQ(plan.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_DOUBLE_EQ(plan.specs()[i].at, 2.0 * static_cast<double>(i + 1));
  }
}

TEST(CrashPlan, PartialBroadcastUsesSendCounts) {
  Rng rng(4);
  const CrashPlan plan = CrashPlan::partial_broadcast(cfg(), rng, 2, 6);
  ASSERT_EQ(plan.size(), 2u);
  for (const auto& spec : plan.specs()) {
    EXPECT_EQ(spec.kind, CrashSpec::Kind::kAfterSends);
    EXPECT_EQ(spec.sends, 6u);
  }
}

TEST(CrashPlan, ApplyMarksFaultyAndEnforcesBudget) {
  dr::World world(cfg(), BitVec(64));
  CrashPlan plan;
  plan.add_at_time(0, 1.0);
  plan.add_after_sends(1, 2);
  plan.apply(world);
  EXPECT_TRUE(world.is_faulty(0));
  EXPECT_TRUE(world.is_faulty(1));
  EXPECT_EQ(world.faulty_count(), 2u);

  CrashPlan over;
  for (sim::PeerId id = 2; id < 8; ++id) over.add_at_time(id, 0.0);
  EXPECT_THROW(over.apply(world), contract_violation);  // budget t = 5
}

TEST(CrashPlan, DeterministicForSeed) {
  Rng a(42), b(42);
  const CrashPlan plan_a = CrashPlan::random(cfg(), a, 4, 5.0);
  const CrashPlan plan_b = CrashPlan::random(cfg(), b, 4, 5.0);
  EXPECT_EQ(plan_a.to_string(), plan_b.to_string());
}

}  // namespace
}  // namespace asyncdr::adv
