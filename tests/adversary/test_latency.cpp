#include "adversary/latency.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"

namespace asyncdr::adv {
namespace {

sim::Message msg(sim::PeerId from, sim::PeerId to) {
  sim::Message m;
  m.from = from;
  m.to = to;
  return m;
}

TEST(UniformLatency, StaysInRangeAndIsSeeded) {
  UniformLatency a(Rng(5), 0.2, 0.8);
  UniformLatency b(Rng(5), 0.2, 0.8);
  for (int i = 0; i < 200; ++i) {
    const sim::Time t = a.propagation(msg(0, 1));
    EXPECT_GE(t, 0.2);
    EXPECT_LE(t, 0.8);
    EXPECT_DOUBLE_EQ(t, b.propagation(msg(0, 1)));  // same seed, same stream
  }
}

TEST(UniformLatency, RejectsBadRange) {
  EXPECT_THROW(UniformLatency(Rng(1), 0.0, 0.5), contract_violation);
  EXPECT_THROW(UniformLatency(Rng(1), 0.6, 0.5), contract_violation);
  EXPECT_THROW(UniformLatency(Rng(1), 0.5, 1.5), contract_violation);
}

TEST(SenderDelayLatency, DelaysOnlyTheNamedSenders) {
  SenderDelayLatency policy({1, 3}, 5.0, 0.1);
  EXPECT_DOUBLE_EQ(policy.propagation(msg(1, 0)), 5.0);
  EXPECT_DOUBLE_EQ(policy.propagation(msg(3, 2)), 5.0);
  EXPECT_DOUBLE_EQ(policy.propagation(msg(0, 1)), 0.1);  // TO a slow sender
  EXPECT_DOUBLE_EQ(policy.propagation(msg(2, 0)), 0.1);
}

TEST(SenderDelayLatency, SlowAdjustable) {
  SenderDelayLatency policy({0}, 2.0, 0.5);
  policy.set_slow(9.0);
  EXPECT_DOUBLE_EQ(policy.propagation(msg(0, 1)), 9.0);
  EXPECT_THROW(SenderDelayLatency({0}, 0.1, 0.5), contract_violation);
}

TEST(SeniorityLatency, HigherIdsAreFaster) {
  SeniorityLatency policy(8, 0.1, 1.0);
  sim::Time prev = 2.0;
  for (sim::PeerId from = 0; from < 8; ++from) {
    const sim::Time t = policy.propagation(msg(from, 0));
    EXPECT_LT(t, prev);
    EXPECT_GE(t, 0.1);
    EXPECT_LE(t, 1.0);
    prev = t;
  }
}

TEST(CallbackLatency, ForwardsAndValidates) {
  CallbackLatency policy([](const sim::Message& m) {
    return m.from == 0 ? 3.0 : 0.25;
  });
  EXPECT_DOUBLE_EQ(policy.propagation(msg(0, 1)), 3.0);
  EXPECT_DOUBLE_EQ(policy.propagation(msg(1, 0)), 0.25);
  CallbackLatency bad([](const sim::Message&) { return 0.0; });
  EXPECT_THROW(bad.propagation(msg(0, 1)), contract_violation);
  EXPECT_THROW(CallbackLatency(nullptr), contract_violation);
}

}  // namespace
}  // namespace asyncdr::adv
