#include "dr/world.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/check.hpp"

namespace asyncdr::dr {
namespace {

/// Trivial correct peer: queries everything and finishes.
struct QueryAllPeer final : Peer {
  void on_start() override { finish(query_range(0, n())); }
  void on_message(sim::PeerId, const sim::Payload&) override {}
};

/// Outputs the wrong array.
struct WrongPeer final : Peer {
  void on_start() override { finish(BitVec(n(), true)); }
  void on_message(sim::PeerId, const sim::Payload&) override {}
};

/// Never terminates.
struct StuckPeer final : Peer {
  void on_start() override {}
  void on_message(sim::PeerId, const sim::Payload&) override {}
};

Config small_cfg() {
  return Config{.n = 32, .k = 3, .beta = 0.34, .message_bits = 16, .seed = 1};
}

TEST(World, HappyPathReport) {
  World w(small_cfg(), BitVec(32));
  for (sim::PeerId i = 0; i < 3; ++i) w.set_peer(i, std::make_unique<QueryAllPeer>());
  const RunReport r = w.run();
  EXPECT_TRUE(r.ok());
  EXPECT_TRUE(r.all_terminated);
  EXPECT_TRUE(r.all_correct);
  EXPECT_EQ(r.query_complexity, 32u);
  EXPECT_EQ(r.total_queries, 96u);
  EXPECT_EQ(r.message_complexity, 0u);
  ASSERT_EQ(r.outputs.size(), 3u);
  EXPECT_EQ(r.outputs[0], BitVec(32));
}

TEST(World, DetectsWrongOutput) {
  World w(small_cfg(), BitVec(32));
  w.set_peer(0, std::make_unique<QueryAllPeer>());
  w.set_peer(1, std::make_unique<WrongPeer>());
  w.set_peer(2, std::make_unique<QueryAllPeer>());
  const RunReport r = w.run();
  EXPECT_FALSE(r.ok());
  EXPECT_FALSE(r.all_correct);
  ASSERT_EQ(r.incorrect_peers.size(), 1u);
  EXPECT_EQ(r.incorrect_peers[0], 1u);
}

TEST(World, DetectsNonTermination) {
  World w(small_cfg(), BitVec(32));
  w.set_peer(0, std::make_unique<QueryAllPeer>());
  w.set_peer(1, std::make_unique<StuckPeer>());
  w.set_peer(2, std::make_unique<QueryAllPeer>());
  const RunReport r = w.run();
  EXPECT_FALSE(r.ok());
  EXPECT_FALSE(r.all_terminated);
  ASSERT_EQ(r.unterminated_peers.size(), 1u);
  EXPECT_EQ(r.unterminated_peers[0], 1u);
}

TEST(World, FaultyPeersExcludedFromVerdictAndMetrics) {
  World w(small_cfg(), BitVec(32));
  w.set_peer(0, std::make_unique<QueryAllPeer>());
  w.set_peer(1, std::make_unique<WrongPeer>());
  w.set_peer(2, std::make_unique<QueryAllPeer>());
  w.mark_faulty(1);
  const RunReport r = w.run();
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.total_queries, 64u);  // only the two nonfaulty peers count
}

TEST(World, FaultBudgetEnforced) {
  World w(small_cfg(), BitVec(32));  // t = 1
  w.mark_faulty(0);
  EXPECT_THROW(w.mark_faulty(1), contract_violation);
}

TEST(World, CrashedPeerNeverStarts) {
  World w(small_cfg(), BitVec(32));
  for (sim::PeerId i = 0; i < 3; ++i) w.set_peer(i, std::make_unique<QueryAllPeer>());
  w.schedule_crash_at(2, 0.0);
  const RunReport r = w.run();
  EXPECT_TRUE(r.ok());  // peer 2 is faulty, so its silence is fine
  EXPECT_EQ(r.per_peer_queries[2], 0u);
}

TEST(World, StartTimesRespected) {
  World w(small_cfg(), BitVec(32));
  for (sim::PeerId i = 0; i < 3; ++i) w.set_peer(i, std::make_unique<QueryAllPeer>());
  w.set_start_time(1, 5.0);
  const RunReport r = w.run();
  EXPECT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r.time_complexity, 5.0);  // last termination at its start
}

TEST(World, RunOnlyOnce) {
  World w(small_cfg(), BitVec(32));
  for (sim::PeerId i = 0; i < 3; ++i) w.set_peer(i, std::make_unique<QueryAllPeer>());
  (void)w.run();
  EXPECT_THROW((void)w.run(), contract_violation);
}

TEST(World, MissingPeerRejected) {
  World w(small_cfg(), BitVec(32));
  w.set_peer(0, std::make_unique<QueryAllPeer>());
  EXPECT_THROW((void)w.run(), contract_violation);
}

TEST(World, InputLengthMustMatch) {
  EXPECT_THROW(World(small_cfg(), BitVec(31)), contract_violation);
}

struct Ping final : sim::Payload {
  std::size_t size_bits() const override { return 8; }
  std::string type_name() const override { return "Ping"; }
};

/// Broadcasts once and then idles (never terminates).
struct BroadcastOncePeer final : Peer {
  void on_start() override { broadcast(std::make_shared<Ping>()); }
  void on_message(sim::PeerId, const sim::Payload&) override {}
};

/// Idles and records who it hears from.
struct ListenerPeer final : Peer {
  void on_start() override {}
  void on_message(sim::PeerId from, const sim::Payload&) override {
    heard.push_back(from);
  }
  std::string status() const override { return "listening forever"; }
  std::vector<sim::PeerId> heard;
};

TEST(World, CrashAfterSendsCutsBroadcastToAnExactRecipientPrefix) {
  Config cfg{.n = 32, .k = 6, .beta = 0.2, .message_bits = 16, .seed = 1};
  World w(cfg, BitVec(32));
  w.set_peer(0, std::make_unique<BroadcastOncePeer>());
  std::vector<ListenerPeer*> listeners(6, nullptr);
  for (sim::PeerId i = 1; i < 6; ++i) {
    auto p = std::make_unique<ListenerPeer>();
    listeners[i] = p.get();
    w.set_peer(i, std::move(p));
  }
  sim::Trace& trace = w.enable_trace();
  // Peer 0 dies mid-broadcast with exactly 3 sends out. broadcast() visits
  // recipients in ID order, so peers 1..3 hear it and peers 4..5 never do.
  w.crash_after_sends(0, 3);
  (void)w.run();
  for (sim::PeerId i = 1; i <= 3; ++i) {
    ASSERT_EQ(listeners[i]->heard.size(), 1u) << "peer " << i;
    EXPECT_EQ(listeners[i]->heard[0], 0u);
  }
  EXPECT_TRUE(listeners[4]->heard.empty());
  EXPECT_TRUE(listeners[5]->heard.empty());
  // The trace records the cut: three accepted sends, then the crash.
  const auto sends = trace.filter([](const sim::TraceEvent& ev) {
    return ev.kind == sim::TraceEvent::Kind::kSend && ev.from == 0;
  });
  EXPECT_EQ(sends.size(), 3u);
  EXPECT_EQ(trace.count(sim::TraceEvent::Kind::kCrash), 1u);
}

TEST(World, UnterminatedRunProducesAStallReportNamingTheStuckPeer) {
  World w(small_cfg(), BitVec(32));
  w.set_peer(0, std::make_unique<QueryAllPeer>());
  w.set_peer(1, std::make_unique<ListenerPeer>());
  w.set_peer(2, std::make_unique<QueryAllPeer>());
  const RunReport r = w.run();
  EXPECT_FALSE(r.ok());
  ASSERT_FALSE(r.stall.empty());
  EXPECT_NE(r.stall.find("quiescent but incomplete"), std::string::npos)
      << r.stall;
  EXPECT_NE(r.stall.find("stuck peer 1"), std::string::npos) << r.stall;
  // The peer's own status() line surfaces what it was doing.
  EXPECT_NE(r.stall.find("listening forever"), std::string::npos) << r.stall;
  // Clean runs carry no stall report.
  World ok(small_cfg(), BitVec(32));
  for (sim::PeerId i = 0; i < 3; ++i) {
    ok.set_peer(i, std::make_unique<QueryAllPeer>());
  }
  EXPECT_TRUE(ok.run().stall.empty());
}

/// Ping-pong forever: every delivery is answered, so the run can only end
/// by exhausting the event budget.
struct PingPongPeer final : Peer {
  void on_start() override {
    if (id() == 0) send(1, std::make_shared<Ping>());
  }
  void on_message(sim::PeerId from, const sim::Payload&) override {
    send(from, std::make_shared<Ping>());
  }
  std::string status() const override { return "ping-ponging"; }
};

TEST(World, BudgetExhaustionProducesAStallReportWithBusyLinks) {
  World w(small_cfg(), BitVec(32));
  for (sim::PeerId i = 0; i < 3; ++i) {
    w.set_peer(i, std::make_unique<PingPongPeer>());
  }
  const RunReport r = w.run(/*max_events=*/100);
  EXPECT_TRUE(r.budget_exhausted);
  ASSERT_FALSE(r.stall.empty());
  EXPECT_NE(r.stall.find("event budget exhausted"), std::string::npos)
      << r.stall;
  EXPECT_NE(r.stall.find("ping-ponging"), std::string::npos) << r.stall;
  // The ball was in flight when the budget ran out.
  EXPECT_NE(r.stall.find("in flight"), std::string::npos) << r.stall;
}

TEST(World, ReportToStringMentionsVerdict) {
  World w(small_cfg(), BitVec(32));
  for (sim::PeerId i = 0; i < 3; ++i) w.set_peer(i, std::make_unique<QueryAllPeer>());
  const RunReport r = w.run();
  EXPECT_NE(r.to_string().find("ok=yes"), std::string::npos);
}

}  // namespace
}  // namespace asyncdr::dr
